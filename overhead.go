package repro

import (
	"fmt"
	"time"

	"repro/internal/platform"
	"repro/internal/stats"
)

// OverheadResult reports the footnote-3 measurement (E7): the total
// cost of blacklisting bookkeeping as a fraction of run time, and the
// small-object allocation latency.
type OverheadResult struct {
	RunWithout      time.Duration
	RunWith         time.Duration
	OverheadPct     float64 // (with-without)/without * 100
	AllocNanos      float64 // hot-path 8-byte allocation, ns/op
	BlacklistAdds   uint64
	BlacklistLen    int
	RetainedWith    float64
	RetainedWithout float64
	// HeapWithout/HeapWith are the demand-grown final heap sizes: the
	// paper's observation 6 ("the additional heap size needed to make
	// up for blacklisted pages ... was negligible, and not easily
	// measurable, since it is dominated by the heap expansion
	// increment").
	HeapWithout, HeapWith int
}

// Overhead measures the end-to-end cost of blacklisting on a program-T
// run, the paper's footnote 3: "the total additional overhead
// introduced by blacklisting is usually less than 1%... version 2.5 of
// the collector spends approximately 0.2% of its time dealing with
// blacklisting related bookkeeping", and the hot-path allocation
// latency ("the stand-alone collector can still allocate and collect an
// 8 byte object in around 2 microseconds... on a SPARCStation 2").
//
// Both configurations run the same seed; the with-blacklist run is
// usually *faster* end to end because it retains less and therefore
// marks less, so the bookkeeping cost is also isolated via the marker's
// own counters.
func Overhead(seed uint64) (*OverheadResult, *stats.Table, error) {
	profile := platform.SPARCDynamic(false)

	timeRun := func(bl bool) (time.Duration, float64, error) {
		start := time.Now()
		f, err := platform.RunCell(profile, bl, seed)
		return time.Since(start), f, err
	}
	dWithout, fWithout, err := timeRun(false)
	if err != nil {
		return nil, nil, err
	}
	dWith, fWith, err := timeRun(true)
	if err != nil {
		return nil, nil, err
	}

	// Hot-path allocation latency: 8-byte (2-word) objects, recycling
	// the heap via sweeps so the free lists stay warm.
	w, err := NewWorld(Config{
		InitialHeapBytes: 8 << 20,
		ReserveHeapBytes: 8 << 20,
		Blacklisting:     BlacklistDense,
		GCDivisor:        -1,
	})
	if err != nil {
		return nil, nil, err
	}
	const n = 2_000_000
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := w.Allocate(2, false); err != nil {
			return nil, nil, err
		}
	}
	allocNanos := float64(time.Since(start).Nanoseconds()) / n

	env, err := profile.Build(seed, true)
	if err != nil {
		return nil, nil, err
	}
	blStats := env.World.Blacklist.Stats()

	// Observation 6: start from a tiny heap and let demand grow it, so
	// the space cost of refusing blacklisted pages becomes visible (or,
	// as the paper found, fails to).
	demandHeap := func(bl bool) (int, error) {
		prof := profile
		prof.InitialHeap = 2 << 20
		env, err := prof.Build(seed, bl)
		if err != nil {
			return 0, err
		}
		if _, err := env.RunProgramT(); err != nil {
			return 0, err
		}
		return env.World.Heap.Stats().HeapBytes, nil
	}
	heapWithout, err := demandHeap(false)
	if err != nil {
		return nil, nil, err
	}
	heapWith, err := demandHeap(true)
	if err != nil {
		return nil, nil, err
	}

	res := &OverheadResult{
		RunWithout:      dWithout,
		RunWith:         dWith,
		OverheadPct:     100 * (dWith.Seconds() - dWithout.Seconds()) / dWithout.Seconds(),
		AllocNanos:      allocNanos,
		BlacklistAdds:   blStats.Adds,
		BlacklistLen:    env.World.Blacklist.Len(),
		RetainedWith:    fWith,
		RetainedWithout: fWithout,
		HeapWithout:     heapWithout,
		HeapWith:        heapWith,
	}
	tab := stats.NewTable("Footnote 3: blacklisting overhead and allocation latency",
		"Metric", "Value")
	tab.Add("program T, blacklisting off", fmt.Sprintf("%.2fs (%.1f%% retained)", dWithout.Seconds(), 100*fWithout))
	tab.Add("program T, blacklisting on", fmt.Sprintf("%.2fs (%.1f%% retained)", dWith.Seconds(), 100*fWith))
	tab.Add("end-to-end overhead", fmt.Sprintf("%+.1f%%", res.OverheadPct))
	tab.Add("8-byte allocation", fmt.Sprintf("%.0f ns/op", allocNanos))
	tab.Add("blacklist adds at startup", fmt.Sprint(blStats.Adds))
	tab.Add("pages blacklisted at startup", fmt.Sprint(res.BlacklistLen))
	tab.Add("demand-grown heap, no blacklist", fmt.Sprintf("%.1f MB", float64(heapWithout)/(1<<20)))
	tab.Add("demand-grown heap, blacklist", fmt.Sprintf("%.1f MB", float64(heapWith)/(1<<20)))
	tab.Add("space cost of blacklisted pages", fmt.Sprintf("%+.1f%%",
		100*(float64(heapWith)-float64(heapWithout))/float64(heapWithout)))
	return res, tab, nil
}
