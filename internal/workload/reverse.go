package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/simrand"
)

// ReverseMode selects how the list-reversal benchmark of section 3.1
// is "compiled".
type ReverseMode int

// Reversal modes.
const (
	// ReverseRecursive models the unoptimized compile: one simulated
	// stack frame per recursive call, locals spilled to the frame.
	ReverseRecursive ReverseMode = iota
	// ReverseLoop models the optimized compile: "the list reversal
	// routine is tail recursive, and was optimized to a loop, thus
	// eliminating the problem" — a single frame, locals in registers,
	// overwritten every iteration.
	ReverseLoop
)

func (m ReverseMode) String() string {
	if m == ReverseLoop {
		return "loop"
	}
	return "recursive"
}

// ReverseParams configures the section-3.1 benchmark: "a simple program
// (compiled unoptimized on a SPARC) that recursively and
// nondestructively reverses a 1000 element list 1000 times".
type ReverseParams struct {
	ListLen    int // default 1000
	Iterations int // default 1000
	Mode       ReverseMode
	// ContextMaxWords gives each iteration a random-sized bundle of
	// caller frames (0..ContextMaxWords words) holding loop temporaries
	// such as the previous result pointer. This models the surrounding
	// program's varying stack usage; because those slots are rarely
	// overwritten at the same depth again, old result pointers linger
	// exactly as the paper describes. Default 256; ignored in loop
	// mode (the optimized build keeps temporaries in registers).
	ContextMaxWords int
	// SampleEvery controls how often (in iterations) the apparently-
	// accessible cell count is sampled at the deepest recursion point
	// (default 10).
	SampleEvery int
	// Seed drives the context-size variation.
	Seed uint64
}

func (p *ReverseParams) withDefaults() ReverseParams {
	out := *p
	if out.ListLen == 0 {
		out.ListLen = 1000
	}
	if out.Iterations == 0 {
		out.Iterations = 1000
	}
	if out.ContextMaxWords == 0 {
		out.ContextMaxWords = 256
	}
	if out.SampleEvery == 0 {
		out.SampleEvery = 10
	}
	return out
}

// ReverseResult reports a list-reversal run.
type ReverseResult struct {
	Params       ReverseParams
	MaxLiveCells uint64 // maximum apparently-accessible cons cells
	EndLiveCells uint64 // after the final collection
	Collections  int
	Samples      int
}

func (r ReverseResult) String() string {
	return fmt.Sprintf("reverse(%v): max %d apparently-live cells, %d at end",
		r.Params.Mode, r.MaxLiveCells, r.EndLiveCells)
}

// cons allocates a cons cell (car, cdr).
func cons(w *core.World, car, cdr mem.Word) (mem.Addr, error) {
	cell, err := w.Allocate(2, false)
	if err != nil {
		return 0, err
	}
	if err := w.Store(cell, car); err != nil {
		return 0, err
	}
	return cell, w.Store(cell+mem.WordBytes, cdr)
}

// car and cdr read cons fields.
func car(w *core.World, cell mem.Addr) (mem.Word, error) { return w.Load(cell) }
func cdr(w *core.World, cell mem.Addr) (mem.Word, error) { return w.Load(cell + mem.WordBytes) }

// MakeList builds a list of n cons cells with small-integer cars and
// returns its head. The partial list is held only in Go-side variables,
// which the simulated collector cannot see: callers must either disable
// automatic collection or be building less than one GC trigger's worth
// of cells. Use MakeListRooted when collections may run mid-build.
func MakeList(w *core.World, n int) (mem.Addr, error) {
	var head mem.Word
	for i := n; i >= 1; i-- {
		cell, err := cons(w, mem.Word(i), head)
		if err != nil {
			return 0, err
		}
		head = mem.Word(cell)
	}
	return mem.Addr(head), nil
}

// MakeListRooted builds a list of n cons cells like MakeList, but keeps
// the running head stored in the given root-segment slot so that
// collections triggered mid-build cannot reclaim the partial list.
func MakeListRooted(w *core.World, n int, root *mem.Segment, slot mem.Addr) (mem.Addr, error) {
	var head mem.Word
	for i := n; i >= 1; i-- {
		cell, err := cons(w, mem.Word(i), head)
		if err != nil {
			return 0, err
		}
		head = mem.Word(cell)
		if err := root.Store(slot, head); err != nil {
			return 0, err
		}
	}
	return mem.Addr(head), nil
}

// ListLen walks a list and returns its length (cycles are a client bug
// and will loop; tests use it only on proper lists).
func ListLen(w *core.World, head mem.Addr) (int, error) {
	n := 0
	for p := mem.Word(head); p != 0; {
		next, err := cdr(w, mem.Addr(p))
		if err != nil {
			return 0, err
		}
		p = next
		n++
	}
	return n, nil
}

// reverser holds the benchmark state.
type reverser struct {
	w            *core.World
	m            *machine.Machine
	p            ReverseParams
	rng          *simrand.Rand
	maxLive      uint64
	samples      int
	sampled      bool // sampled this iteration already
	consCount    int  // cons cells allocated this iteration
	sampleTarget int  // sample when consCount reaches this
}

// noteCons counts an allocation and takes the iteration's sample when
// the randomly drawn allocation index is reached. Sampling at a random
// allocation point mirrors the paper's runs, whose collections trigger
// wherever the heap happens to fill, at an arbitrary stack depth.
func (r *reverser) noteCons() {
	r.consCount++
	if r.sampled || r.consCount < r.sampleTarget {
		return
	}
	r.sampled = true
	objs, _ := r.w.MarkOnly()
	r.samples++
	if objs > r.maxLive {
		r.maxLive = objs
	}
}

// revRecursive is the accumulating nondestructive reversal, one
// simulated frame per call: rev(l, acc) = l==nil ? acc :
// rev(cdr l, cons(car l, acc)).
func (r *reverser) revRecursive(l, acc mem.Addr) (mem.Addr, error) {
	if l == 0 {
		return acc, nil
	}
	var out mem.Addr
	err := r.m.WithFrame(2, func(f *machine.Frame) error {
		f.Store(0, mem.Word(l))
		f.Store(1, mem.Word(acc))
		h, err := car(r.w, l)
		if err != nil {
			return err
		}
		cell, err := cons(r.w, h, mem.Word(acc))
		if err != nil {
			return err
		}
		r.noteCons()
		f.Store(1, mem.Word(cell))
		t, err := cdr(r.w, l)
		if err != nil {
			return err
		}
		out, err = r.revRecursive(mem.Addr(t), cell)
		return err
	})
	return out, err
}

// revLoop is the tail-call-optimized form: one frame, two register
// temporaries overwritten per step.
func (r *reverser) revLoop(l mem.Addr) (mem.Addr, error) {
	var acc mem.Addr
	err := r.m.WithFrame(2, func(f *machine.Frame) error {
		for l != 0 {
			h, err := car(r.w, l)
			if err != nil {
				return err
			}
			cell, err := cons(r.w, h, mem.Word(acc))
			if err != nil {
				return err
			}
			r.noteCons()
			acc = cell
			r.m.SetLocal(0, mem.Word(l))
			r.m.SetLocal(1, mem.Word(acc))
			t, err := cdr(r.w, l)
			if err != nil {
				return err
			}
			l = mem.Addr(t)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return acc, nil
}

// RunReversal executes the benchmark and reports the maximum
// apparently-accessible cons-cell count observed, the quantity the
// paper's section 3.1 compares across stack-clearing strategies.
func RunReversal(w *core.World, m *machine.Machine, params ReverseParams) (*ReverseResult, error) {
	p := params.withDefaults()
	r := &reverser{w: w, m: m, p: p, rng: simrand.New(p.Seed)}

	// The original list is held in a global register for the whole run.
	orig, err := MakeList(w, p.ListLen)
	if err != nil {
		return nil, err
	}
	m.SetGlobal(0, mem.Word(orig))

	var prevResult mem.Addr
	for it := 0; it < p.Iterations; it++ {
		r.sampled = it%p.SampleEvery != 0
		r.consCount = 0
		r.sampleTarget = 1 + r.rng.Intn(p.ListLen)
		var result mem.Addr
		if p.Mode == ReverseLoop {
			// Optimized build: the result register is dead at the call
			// and reused by the compiler, so the previous list is
			// unreachable as soon as the new reversal starts.
			m.SetGlobal(1, 0)
			result, err = r.revLoop(orig)
			if err != nil {
				return nil, err
			}
			m.SetGlobal(1, mem.Word(result))
		} else {
			// Unoptimized build: a random-sized run of caller frames
			// precedes the reversal, and the previous result pointer is
			// parked in one of its slots — where it will linger after
			// the pop.
			ctxWords := 1 + r.rng.Intn(p.ContextMaxWords)
			err = m.WithFrame(ctxWords, func(f *machine.Frame) error {
				f.Store(r.rng.Intn(ctxWords), mem.Word(prevResult))
				var err error
				result, err = r.revRecursive(orig, 0)
				return err
			})
			if err != nil {
				return nil, err
			}
		}
		prevResult = result
		// Top-of-loop bookkeeping (IO, counters) allocates a little
		// from a shallow stack, which is when stack clearing earns its
		// keep: "particularly useful when the allocator is invoked on
		// a stack that is much shorter than the largest one
		// encountered so far" (section 3.1).
		for k := 0; k < 4; k++ {
			if _, err := cons(w, 0, 0); err != nil {
				return nil, err
			}
		}
	}

	w.Collect()
	st := w.Heap.Stats()
	return &ReverseResult{
		Params:       p,
		MaxLiveCells: r.maxLive,
		EndLiveCells: st.ObjectsLive,
		Collections:  w.Collections(),
		Samples:      r.samples,
	}, nil
}
