package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func markBase() *repro.MarkBenchResult {
	return &repro.MarkBenchResult{
		GoMaxProcs: 4, NumCPU: 4, Lists: 8, Nodes: 100,
		Rows: []repro.MarkBenchRow{
			{Workers: 1, NsPerMark: 1000, ObjectsMarked: 800, Speedup: 1},
			{Workers: 2, NsPerMark: 600, ObjectsMarked: 800, Speedup: 1.67},
		},
	}
}

func sweepBase() *repro.SweepBenchResult {
	return &repro.SweepBenchResult{
		GoMaxProcs: 1, NumCPU: 1, Lists: 8, Nodes: 100,
		Rows: []repro.SweepBenchRow{
			{Mode: "eager", Cycles: 5, AvgPauseNs: 1000, MaxPauseNs: 2000,
				AvgSweepPauseNs: 100, MaxSweepPauseNs: 200,
				ObjectsFreed: 500, BytesFreed: 4000},
			{Mode: "lazy", Cycles: 5, AvgPauseNs: 900, MaxPauseNs: 1800,
				AvgSweepPauseNs: 20, MaxSweepPauseNs: 40,
				DeferredBlocks: 30, ObjectsFreed: 500, BytesFreed: 4000},
		},
	}
}

func TestIdenticalResultsPass(t *testing.T) {
	if rep := CompareMark(markBase(), markBase(), 2); !rep.Pass {
		t.Fatalf("identical markbench results failed the gate: %+v", rep.Checks)
	}
	if rep := CompareSweep(sweepBase(), sweepBase(), 2); !rep.Pass {
		t.Fatalf("identical sweepbench results failed the gate: %+v", rep.Checks)
	}
}

func TestTimeRegressionFails(t *testing.T) {
	cand := markBase()
	cand.Rows[0].NsPerMark = 2001 // baseline 1000, tolerance 2 -> limit 2000
	rep := CompareMark(markBase(), cand, 2)
	if rep.Pass {
		t.Fatal("2.001x mark-time regression passed a 2x gate")
	}
	var failed string
	for _, c := range rep.Checks {
		if !c.Pass {
			failed = c.Name
		}
	}
	if failed != "workers=1/ns_per_mark" {
		t.Fatalf("wrong failing check %q", failed)
	}
}

func TestWithinTolerancePasses(t *testing.T) {
	cand := markBase()
	cand.Rows[0].NsPerMark = 1999
	if rep := CompareMark(markBase(), cand, 2); !rep.Pass {
		t.Fatalf("1.999x slowdown failed a 2x gate: %+v", rep.Checks)
	}
}

func TestInvariantDivergenceFails(t *testing.T) {
	cand := markBase()
	cand.Rows[1].ObjectsMarked = 799 // deterministic count must match exactly
	if rep := CompareMark(markBase(), cand, 2); rep.Pass {
		t.Fatal("diverged objects_marked passed the gate")
	}
	scand := sweepBase()
	scand.Rows[1].BytesFreed = 3999
	if rep := CompareSweep(sweepBase(), scand, 2); rep.Pass {
		t.Fatal("diverged bytes_freed passed the gate")
	}
}

func TestSweepTimeRegressionFails(t *testing.T) {
	cand := sweepBase()
	cand.Rows[0].MaxPauseNs = 4001 // baseline 2000, limit 4000
	if rep := CompareSweep(sweepBase(), cand, 2); rep.Pass {
		t.Fatal("max-pause regression passed the gate")
	}
}

func TestMissingRowFails(t *testing.T) {
	cand := markBase()
	cand.Rows = cand.Rows[:1]
	if rep := CompareMark(markBase(), cand, 2); rep.Pass {
		t.Fatal("candidate missing a baseline row passed the gate")
	}
}

func TestOversubscribedRowsSkipTimeCheck(t *testing.T) {
	base := markBase()
	base.Rows[1].Oversubscribed = true
	cand := markBase()
	cand.Rows[1].Oversubscribed = true
	cand.Rows[1].NsPerMark = 1e12 // scheduler noise must not gate
	if rep := CompareMark(base, cand, 2); !rep.Pass {
		t.Fatalf("oversubscribed row's time was gated: %+v", rep.Checks)
	}
}

func allocBase() *repro.AllocBenchResult {
	return &repro.AllocBenchResult{
		GoMaxProcs: 1, NumCPU: 1, Allocs: 1000,
		Rows: []repro.AllocBenchRow{
			{Profile: "freelist", Mutators: 1, NsPerAlloc: 80, ObjectsAllocated: 1000, GoMaxProcs: 1},
			{Profile: "line", Mutators: 1, NsPerAlloc: 40, ObjectsAllocated: 1000, GoMaxProcs: 1},
			{Profile: "freelist", Mutators: 8, NsPerAlloc: 50, ObjectsAllocated: 8000,
				Oversubscribed: true, GoMaxProcs: 1},
			{Profile: "line", Mutators: 8, NsPerAlloc: 35, ObjectsAllocated: 8000,
				Oversubscribed: true, GoMaxProcs: 1},
		},
	}
}

// TestCompareAllocGates covers the allocbench schema: rows match on
// (profile, mutators), the object count gates exactly in both
// profiles, timing gates only non-oversubscribed rows, and the schema
// is detected from the "profile" row key.
func TestCompareAllocGates(t *testing.T) {
	if rep := CompareAlloc(allocBase(), allocBase(), 2); !rep.Pass {
		t.Fatalf("identical allocbench results failed the gate: %+v", rep.Checks)
	}
	cand := allocBase()
	cand.Rows[1].NsPerAlloc = 81 // line/mutators=1: baseline 40, limit 80
	if rep := CompareAlloc(allocBase(), cand, 2); rep.Pass {
		t.Fatal("line-profile timing regression passed the gate")
	}
	cand = allocBase()
	cand.Rows[3].NsPerAlloc = 1e9 // oversubscribed: never gated
	if rep := CompareAlloc(allocBase(), cand, 2); !rep.Pass {
		t.Fatalf("oversubscribed allocbench row's time was gated: %+v", rep.Checks)
	}
	cand = allocBase()
	cand.Rows[1].ObjectsAllocated = 999
	if rep := CompareAlloc(allocBase(), cand, 2); rep.Pass {
		t.Fatal("diverged objects_allocated passed the gate")
	}
	cand = allocBase()
	cand.Rows = cand.Rows[:3] // line/mutators=8 missing
	if rep := CompareAlloc(allocBase(), cand, 2); rep.Pass {
		t.Fatal("candidate missing a baseline row passed the gate")
	}

	data, err := json.Marshal(allocBase())
	if err != nil {
		t.Fatal(err)
	}
	schema, err := detectSchema(data)
	if err != nil || schema != "allocbench" {
		t.Fatalf("detectSchema = %q, %v; want allocbench", schema, err)
	}
}

// TestGMPMismatchMakesTimingAdvisory pins satellite behaviour: when
// baseline and candidate rows ran under different GOMAXPROCS, timing
// comparisons are reported as "time-advisory" and never fail the gate,
// while deterministic invariants keep gating exactly.
func TestGMPMismatchMakesTimingAdvisory(t *testing.T) {
	base := markBase() // result-level GoMaxProcs 4, rows carry 0 (legacy)
	cand := markBase()
	for i := range cand.Rows {
		cand.Rows[i].GoMaxProcs = 1 // candidate machine is narrower
	}
	cand.Rows[0].NsPerMark = 1e9 // would fail a 2x gate if gated
	rep := CompareMark(base, cand, 2)
	if !rep.Pass {
		t.Fatalf("cross-GOMAXPROCS timing was gated: %+v", rep.Checks)
	}
	advisory := false
	for _, c := range rep.Checks {
		if c.Kind == "time-advisory" {
			advisory = true
		}
	}
	if !advisory {
		t.Fatalf("no advisory timing check reported: %+v", rep.Checks)
	}

	// Invariants still gate across the same mismatch.
	cand.Rows[0].ObjectsMarked = 1
	if rep := CompareMark(base, cand, 2); rep.Pass {
		t.Fatal("diverged invariant passed under GOMAXPROCS mismatch")
	}

	// Matching widths (per-row falling back to result-level) still gate
	// timing as before.
	cand2 := markBase()
	cand2.Rows[0].NsPerMark = 1e9
	if rep := CompareMark(base, cand2, 2); rep.Pass {
		t.Fatal("same-GOMAXPROCS timing regression passed the gate")
	}
}

func TestNestedMarkResultGated(t *testing.T) {
	base := sweepBase()
	base.Mark = markBase()
	cand := sweepBase()
	cand.Mark = markBase()
	cand.Mark.Rows[0].ObjectsMarked = 1
	rep := CompareSweep(base, cand, 2)
	if rep.Pass {
		t.Fatal("diverged nested markbench invariant passed the gate")
	}
	found := false
	for _, c := range rep.Checks {
		if c.Name == "mark/workers=1/objects_marked" && !c.Pass {
			found = true
		}
	}
	if !found {
		t.Fatalf("nested check not reported: %+v", rep.Checks)
	}
}

// writeJSON marshals v into a temp file and returns its path.
func writeJSON(t *testing.T, name string, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateDetectsSchemaAndCompares(t *testing.T) {
	basePath := writeJSON(t, "base.json", markBase())
	cand := markBase()
	cand.Rows[0].NsPerMark = 5000
	candPath := writeJSON(t, "cand.json", cand)
	rep, err := Gate(basePath, candPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "markbench" {
		t.Fatalf("schema = %q, want markbench", rep.Schema)
	}
	if rep.Pass {
		t.Fatal("5x regression passed the gate")
	}

	sPath := writeJSON(t, "sweep.json", sweepBase())
	rep, err = Gate(sPath, writeJSON(t, "scand.json", sweepBase()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "sweepbench" || !rep.Pass {
		t.Fatalf("identical sweepbench baseline: schema=%q pass=%v", rep.Schema, rep.Pass)
	}
}

func TestGateSchemaMismatch(t *testing.T) {
	if _, err := Gate(writeJSON(t, "b.json", markBase()),
		writeJSON(t, "c.json", sweepBase()), 2); err == nil {
		t.Fatal("markbench baseline vs sweepbench candidate did not error")
	}
}

// TestGateInProcessCandidate runs the real benchmark as the candidate
// against a baseline whose invariants were produced by the same
// parameters, exercising the default CI path end to end. Timing fields
// in the baseline are set absurdly high so only invariants can fail.
func TestGateInProcessCandidate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real markbench")
	}
	base := &repro.MarkBenchResult{
		Lists: 4, Nodes: 50,
		Rows: []repro.MarkBenchRow{
			{Workers: 1, NsPerMark: 1e15, ObjectsMarked: 200},
		},
	}
	rep, err := Gate(writeJSON(t, "b.json", base), "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("in-process candidate failed: %+v", rep.Checks)
	}
}

func serveBase() *repro.ServeBenchResult {
	return &repro.ServeBenchResult{
		GoMaxProcs: 1, NumCPU: 1, Tenants: 64,
		Rows: []repro.ServeBenchRow{
			{Policy: "fail", Tenants: 64, Requests: 24, ObjectsAllocated: 1024,
				ObjectsLive: 1024, Denials: 512, AllocP50Ns: 100, AllocP99Ns: 5000,
				PauseP99Ns: 20000, GoMaxProcs: 1},
			{Policy: "collect-first", Tenants: 64, Requests: 32, ObjectsAllocated: 2048,
				ObjectsLive: 472, ReclaimedObjects: 1576, ForcedCollections: 90,
				AllocP50Ns: 100, AllocP99Ns: 5000, PauseP99Ns: 20000, GoMaxProcs: 1},
			{Policy: "evict", Tenants: 64, Requests: 20, ObjectsAllocated: 1024,
				Evictions: 64, ReclaimedObjects: 1024, AllocP50Ns: 100,
				AllocP99Ns: 5000, PauseP99Ns: 20000, GoMaxProcs: 1},
		},
	}
}

// TestCompareServeGates covers the servebench schema: rows match on
// policy, the budget-contract columns (admissions, denials, evictions,
// reclamation, liveness, fairness) gate exactly, timing gates with the
// usual tolerance, forced-collection counts are never gated, and the
// schema is detected from the "policy" row key.
func TestCompareServeGates(t *testing.T) {
	if rep := CompareServe(serveBase(), serveBase(), 2); !rep.Pass {
		t.Fatalf("identical servebench results failed the gate: %+v", rep.Checks)
	}
	cand := serveBase()
	cand.Rows[0].Denials = 511 // one tenant admitted past its budget
	if rep := CompareServe(serveBase(), cand, 2); rep.Pass {
		t.Fatal("diverged denial count passed the gate")
	}
	cand = serveBase()
	cand.Rows[2].FairnessSpread = 4 // budget enforcement leaked between tenants
	if rep := CompareServe(serveBase(), cand, 2); rep.Pass {
		t.Fatal("nonzero fairness spread passed the gate")
	}
	cand = serveBase()
	cand.Rows[1].ForcedCollections = 9999 // interleaving-dependent: never gated
	if rep := CompareServe(serveBase(), cand, 2); !rep.Pass {
		t.Fatalf("forced-collection count was gated: %+v", rep.Checks)
	}
	cand = serveBase()
	cand.Rows[1].AllocP99Ns = 10001 // baseline 5000, tolerance 2 -> limit 10000
	if rep := CompareServe(serveBase(), cand, 2); rep.Pass {
		t.Fatal("2.0002x allocation-latency regression passed a 2x gate")
	}
	cand = serveBase()
	cand.Rows = cand.Rows[:2] // evict row missing
	if rep := CompareServe(serveBase(), cand, 2); rep.Pass {
		t.Fatal("candidate missing a baseline policy row passed the gate")
	}

	data, err := json.Marshal(serveBase())
	if err != nil {
		t.Fatal(err)
	}
	schema, err := detectSchema(data)
	if err != nil || schema != "servebench" {
		t.Fatalf("detectSchema = %q, %v; want servebench", schema, err)
	}
}

func TestGateServeSchemaMismatch(t *testing.T) {
	if _, err := Gate(writeJSON(t, "b.json", serveBase()),
		writeJSON(t, "c.json", markBase()), 2); err == nil {
		t.Fatal("servebench baseline vs markbench candidate did not error")
	}
	rep, err := Gate(writeJSON(t, "sb.json", serveBase()),
		writeJSON(t, "sc.json", serveBase()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "servebench" || !rep.Pass {
		t.Fatalf("identical servebench baseline: schema=%q pass=%v", rep.Schema, rep.Pass)
	}
}
