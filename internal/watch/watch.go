// Package watch is the online leak-detection mechanism: ring-buffered
// trend series over periodic retention samples, one series per
// attribution key (a root slot, a label, a tenant), with windowed
// growth, an EWMA growth rate, high-water marks, and a deterministic
// alert decision.
//
// The package is pure bookkeeping over plain numbers — it does not know
// about heaps, worlds, or provenance records. The integration layer
// (internal/core, watch.go) builds per-key retained-object totals at
// each collection barrier and feeds them to Observe; everything here is
// a function of those totals, so the alert stream for a deterministic
// workload is bit-for-bit reproducible and the leakbench regression
// gate can pin exact detected/false-positive counts.
//
// The confidence model is count-based, not statistical: confidence is
// the fraction of sampled intervals in the window where the key's
// retained bytes grew. A slow leak grows on (nearly) every interval and
// saturates toward 1; a churning root oscillates and hovers near 1/2;
// a stable root never grows and sits at 0. An alert requires a full
// window, windowed growth of at least MinGrowthBytes, and confidence at
// or above the threshold — and re-arming a key requires another
// MinGrowthBytes of growth past the alerted level, so a leak alerts
// periodically as it grows rather than on every sample.
package watch

import "sort"

// Totals is one sampled measurement for one attribution key: the
// objects and bytes the key retained at the sample's collection cycle.
type Totals struct {
	Objects uint64
	Bytes   uint64
}

// Config parameterises a Watcher. The zero value is completed by
// defaults (see New).
type Config struct {
	// SampleEvery is honoured by the caller (sample every Nth
	// collection); it is carried here so the trend cycle spans are
	// interpretable. Default 1.
	SampleEvery int
	// Window is the trend ring capacity in samples; the growth and
	// confidence tests run over this window, and no alert fires before
	// a key's ring is full. Default 8.
	Window int
	// MinGrowthBytes is the windowed growth an alert requires, and the
	// further growth that re-arms an alerted key. Default 4096.
	MinGrowthBytes uint64
	// Confidence is the minimum fraction of window intervals with
	// positive byte growth. Default 0.75.
	Confidence float64
	// EWMAAlpha is the exponential-moving-average weight for the
	// per-cycle growth rate. Default 0.3.
	EWMAAlpha float64
	// TopSuspects caps Suspects rankings. Default 5.
	TopSuspects int
}

func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	if c.Window <= 1 {
		c.Window = 8
	}
	if c.MinGrowthBytes == 0 {
		c.MinGrowthBytes = 4096
	}
	if c.Confidence == 0 {
		c.Confidence = 0.75
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.3
	}
	if c.TopSuspects == 0 {
		c.TopSuspects = 5
	}
	return c
}

// sample is one ring entry.
type sample struct {
	cycle   int
	objects uint64
	bytes   uint64
}

// series is the per-key trend state: a fixed ring of the last Window
// samples plus running aggregates.
type series struct {
	ring []sample
	head int // next write position
	n    int // filled entries, <= len(ring)

	ewma        float64 // EWMA of bytes-per-cycle growth
	ewmaPrimed  bool
	highBytes   uint64
	highObjects uint64

	// alertedBytes is the byte level at the last alert; a key re-arms
	// only after growing MinGrowthBytes past it.
	alertedBytes uint64
	everAlerted  bool
}

func (s *series) push(sm sample) {
	s.ring[s.head] = sm
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
}

// at returns the i-th oldest retained sample, 0 <= i < n.
func (s *series) at(i int) sample {
	return s.ring[(s.head-s.n+i+2*len(s.ring))%len(s.ring)]
}

func (s *series) last() sample { return s.at(s.n - 1) }

// windowStats computes the window's growth and confidence: growth is
// newest minus oldest, confidence the fraction of adjacent intervals
// with positive byte growth.
func (s *series) windowStats() (growthObjects, growthBytes int64, confidence float64) {
	if s.n < 2 {
		return 0, 0, 0
	}
	first, lastS := s.at(0), s.last()
	growthObjects = int64(lastS.objects) - int64(first.objects)
	growthBytes = int64(lastS.bytes) - int64(first.bytes)
	pos := 0
	for i := 1; i < s.n; i++ {
		if s.at(i).bytes > s.at(i-1).bytes {
			pos++
		}
	}
	confidence = float64(pos) / float64(s.n-1)
	return growthObjects, growthBytes, confidence
}

// Alert is one leak alert: a key whose retained bytes grew by at least
// MinGrowthBytes over a full window with the required confidence.
type Alert struct {
	Key               string
	Cycle             int // the sample cycle that raised the alert
	GrowthObjects     int64
	GrowthBytes       int64 // growth over the window
	Cycles            int   // collection-cycle span of the window
	Confidence        float64
	EWMABytesPerCycle float64
	HighWaterBytes    uint64
	LastObjects       uint64
	LastBytes         uint64
}

// Trend is one key's current trend snapshot, for rendering and
// suspect ranking.
type Trend struct {
	Key               string
	Samples           int
	LastCycle         int
	LastObjects       uint64
	LastBytes         uint64
	GrowthObjects     int64 // over the retained window
	GrowthBytes       int64
	WindowCycles      int
	Confidence        float64
	EWMABytesPerCycle float64
	HighWaterBytes    uint64
	HighWaterObjects  uint64
	Alerted           bool // alerted at least once
}

// Watcher accumulates trend series per attribution key.
type Watcher struct {
	cfg     Config
	series  map[string]*series
	samples int
	alerts  uint64
}

// New creates a watcher with cfg completed by defaults.
func New(cfg Config) *Watcher {
	return &Watcher{cfg: cfg.withDefaults(), series: map[string]*series{}}
}

// Config returns the effective (default-completed) configuration.
func (w *Watcher) Config() Config { return w.cfg }

// Samples returns how many Observe calls have been made.
func (w *Watcher) Samples() int { return w.samples }

// Alerts returns how many alerts have been raised in total.
func (w *Watcher) Alerts() uint64 { return w.alerts }

// Observe folds one retention sample into the trend series and returns
// the alerts it raises, sorted by key. cycle is the collection cycle
// the sample describes. A key absent from totals that has a series is
// recorded as zero (its retention vanished); a series that has decayed
// to all-zero samples is dropped, bounding the series map by the set
// of keys with any recent retention.
func (w *Watcher) Observe(cycle int, totals map[string]Totals) []Alert {
	w.samples++
	keys := make([]string, 0, len(totals)+len(w.series))
	for k := range totals {
		keys = append(keys, k)
	}
	for k := range w.series {
		if _, ok := totals[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var alerts []Alert
	for _, key := range keys {
		t := totals[key]
		s := w.series[key]
		if s == nil {
			if t.Objects == 0 && t.Bytes == 0 {
				continue
			}
			s = &series{ring: make([]sample, w.cfg.Window)}
			w.series[key] = s
		}
		var prev sample
		hadPrev := s.n > 0
		if hadPrev {
			prev = s.last()
		}
		s.push(sample{cycle: cycle, objects: t.Objects, bytes: t.Bytes})
		if t.Bytes > s.highBytes {
			s.highBytes = t.Bytes
		}
		if t.Objects > s.highObjects {
			s.highObjects = t.Objects
		}
		if hadPrev && cycle > prev.cycle {
			rate := (float64(t.Bytes) - float64(prev.bytes)) / float64(cycle-prev.cycle)
			if !s.ewmaPrimed {
				s.ewma, s.ewmaPrimed = rate, true
			} else {
				s.ewma = w.cfg.EWMAAlpha*rate + (1-w.cfg.EWMAAlpha)*s.ewma
			}
		}

		if s.n == len(s.ring) {
			gObj, gBytes, conf := s.windowStats()
			armed := !s.everAlerted || t.Bytes >= s.alertedBytes+w.cfg.MinGrowthBytes
			if armed && gBytes >= int64(w.cfg.MinGrowthBytes) && conf >= w.cfg.Confidence {
				alerts = append(alerts, Alert{
					Key:               key,
					Cycle:             cycle,
					GrowthObjects:     gObj,
					GrowthBytes:       gBytes,
					Cycles:            cycle - s.at(0).cycle,
					Confidence:        conf,
					EWMABytesPerCycle: s.ewma,
					HighWaterBytes:    s.highBytes,
					LastObjects:       t.Objects,
					LastBytes:         t.Bytes,
				})
				s.everAlerted = true
				s.alertedBytes = t.Bytes
				w.alerts++
			}
		}

		if t.Objects == 0 && t.Bytes == 0 && s.n == len(s.ring) {
			dead := true
			for i := 0; i < s.n; i++ {
				if s.at(i).bytes != 0 || s.at(i).objects != 0 {
					dead = false
					break
				}
			}
			if dead {
				delete(w.series, key)
			}
		}
	}
	return alerts
}

// trend builds the snapshot for one series.
func (w *Watcher) trend(key string, s *series) Trend {
	gObj, gBytes, conf := s.windowStats()
	t := Trend{
		Key:               key,
		Samples:           s.n,
		GrowthObjects:     gObj,
		GrowthBytes:       gBytes,
		Confidence:        conf,
		EWMABytesPerCycle: s.ewma,
		HighWaterBytes:    s.highBytes,
		HighWaterObjects:  s.highObjects,
		Alerted:           s.everAlerted,
	}
	if s.n > 0 {
		last := s.last()
		t.LastCycle = last.cycle
		t.LastObjects = last.objects
		t.LastBytes = last.bytes
		t.WindowCycles = last.cycle - s.at(0).cycle
	}
	return t
}

// Trend returns the named key's trend, if it has a series.
func (w *Watcher) Trend(key string) (Trend, bool) {
	s, ok := w.series[key]
	if !ok {
		return Trend{}, false
	}
	return w.trend(key, s), true
}

// Trends returns every key's trend, sorted by key.
func (w *Watcher) Trends() []Trend {
	keys := make([]string, 0, len(w.series))
	for k := range w.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Trend, 0, len(keys))
	for _, k := range keys {
		out = append(out, w.trend(k, w.series[k]))
	}
	return out
}

// Suspects ranks keys with positive windowed byte growth, largest
// first (ties by key), capped at k (k <= 0 uses Config.TopSuspects).
func (w *Watcher) Suspects(k int) []Trend {
	if k <= 0 {
		k = w.cfg.TopSuspects
	}
	var out []Trend
	for key, s := range w.series {
		t := w.trend(key, s)
		if t.GrowthBytes > 0 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GrowthBytes != out[j].GrowthBytes {
			return out[i].GrowthBytes > out[j].GrowthBytes
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
