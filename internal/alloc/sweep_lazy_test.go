package alloc

import (
	"math/bits"
	"testing"

	"repro/internal/mem"
	"repro/internal/simrand"
)

// churnEvent is one observable step of a churn schedule: an allocation
// address handed out, or a sweep's reclamation totals. Lazy and eager
// sweeping must produce identical event streams.
type churnEvent struct {
	kind  string // "alloc", "sweep"
	addr  mem.Addr
	sweep SweepResult
}

// runSweepChurn drives one allocator through a deterministic
// alloc/free/collect schedule and returns the event stream. sticky
// selects SweepSticky (minor-cycle semantics) for every odd collection.
func runSweepChurn(t *testing.T, a *Allocator, seed uint64, typed DescID) []churnEvent {
	t.Helper()
	rng := simrand.New(seed)
	var events []churnEvent
	var live []mem.Addr
	gcs := 0
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(12); {
		case op < 7: // alloc
			var p mem.Addr
			var err error
			if typed >= 0 && rng.Bool(0.4) {
				p, err = a.AllocTyped(typed)
			} else {
				p, err = a.Alloc(1+rng.Intn(80), rng.Bool(0.25))
			}
			if err == ErrNeedMemory {
				if err := a.Expand(mem.PageBytes); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
			events = append(events, churnEvent{kind: "alloc", addr: p})
		case op < 9: // drop some references
			for i := 0; i < 5 && len(live) > 0; i++ {
				j := rng.Intn(len(live))
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		default: // collect: finish deferred sweeps, mark the live set, sweep
			// The collector's pause protocol: pending blocks still carry
			// the previous cycle's liveness bits, so they must be swept
			// before any new marking (core.Collect does the same).
			a.FinishSweep()
			for _, p := range live {
				if !a.Marked(p) {
					a.Mark(p)
				}
			}
			gcs++
			var r SweepResult
			if gcs%2 == 1 {
				r = a.SweepSticky()
			} else {
				r = a.Sweep()
			}
			events = append(events, churnEvent{kind: "sweep", sweep: r})
		}
	}
	// Final cycle plus FinishSweep: the acceptance criterion's
	// observation point.
	a.FinishSweep()
	for _, p := range live {
		if !a.Marked(p) {
			a.Mark(p)
		}
	}
	events = append(events, churnEvent{kind: "sweep", sweep: a.Sweep()})
	a.FinishSweep()
	return events
}

// TestLazySweepDifferential drives an eager and a lazy allocator through
// the same schedule (mixing full and sticky sweeps and typed
// allocations) and requires identical behaviour at every step: the same
// allocation addresses — lazy refills must consume pending blocks in
// exactly the order the eager sweep threads them — and the same
// reclamation totals at every collection barrier.
func TestLazySweepDifferential(t *testing.T) {
	for _, seed := range []uint64{1, 42, 777} {
		cfg := Config{InitialBytes: 32 * mem.PageBytes}
		_, eager := newTestAllocator(t, cfg)
		cfg.LazySweep = true
		_, lazy := newTestAllocator(t, cfg)
		mask := []bool{true, false, true, false, false, true}
		de, err := eager.RegisterDescriptor(mask)
		if err != nil {
			t.Fatal(err)
		}
		dl, err := lazy.RegisterDescriptor(mask)
		if err != nil {
			t.Fatal(err)
		}
		if de != dl {
			t.Fatalf("descriptor ids diverge: %d vs %d", de, dl)
		}
		ev := runSweepChurn(t, eager, seed, de)
		lv := runSweepChurn(t, lazy, seed, dl)
		if len(ev) != len(lv) {
			t.Fatalf("seed %d: event counts diverge: eager %d, lazy %d", seed, len(ev), len(lv))
		}
		for i := range ev {
			if ev[i] != lv[i] {
				t.Fatalf("seed %d: event %d diverges:\neager %+v\nlazy  %+v", seed, i, ev[i], lv[i])
			}
		}
		es, ls := eager.Stats(), lazy.Stats()
		if es.BytesLive != ls.BytesLive || es.ObjectsLive != ls.ObjectsLive ||
			es.BlocksDedicated != ls.BlocksDedicated || es.BlocksFree != ls.BlocksFree {
			t.Fatalf("seed %d: final stats diverge:\neager %+v\nlazy  %+v", seed, es, ls)
		}
		if lazy.SweepPending() != 0 {
			t.Fatalf("seed %d: %d blocks still pending after FinishSweep", seed, lazy.SweepPending())
		}
		efs, lfs := eager.FreeSpans(), lazy.FreeSpans()
		if len(efs) != len(lfs) {
			t.Fatalf("seed %d: free span counts diverge: %v vs %v", seed, efs, lfs)
		}
		for i := range efs {
			if efs[i] != lfs[i] {
				t.Fatalf("seed %d: free spans diverge: %v vs %v", seed, efs, lfs)
			}
		}
	}
}

// TestLazySweepSummariesMatchBitmaps cross-checks the maintained mark
// summaries against independent popcounts of the bitmaps, after marking
// and after sweeping.
func TestLazySweepSummariesMatchBitmaps(t *testing.T) {
	_, a := newTestAllocator(t, Config{LazySweep: true})
	rng := simrand.New(5)
	var objs []mem.Addr
	for i := 0; i < 600; i++ {
		objs = append(objs, mustAlloc(t, a, 1+rng.Intn(40), false))
	}
	check := func(when string) {
		t.Helper()
		for bi := range a.blocks {
			b := &a.blocks[bi]
			if b.state != blockSmall && b.state != blockLargeHead {
				continue
			}
			n := 0
			for _, w := range b.markBits {
				n += bits.OnesCount64(w)
			}
			if n != int(b.markedCount) {
				t.Fatalf("%s: block %d: markedCount %d, bitmap popcount %d", when, bi, b.markedCount, n)
			}
		}
	}
	for _, p := range objs {
		if rng.Bool(0.6) {
			a.Mark(p)
		}
	}
	check("after marking")
	a.SweepSticky()
	a.FinishSweep()
	check("after sticky sweep")
	a.Sweep()
	a.FinishSweep()
	check("after full sweep")
}

// TestLazySweepPendingVisibility pins down how a sweep-pending block is
// observed: dead objects report not-allocated immediately (reclamation
// totals were already accounted at the barrier), live ones stay
// reachable, and FinishSweep reports the deferred blocks it completed.
func TestLazySweepPendingVisibility(t *testing.T) {
	_, a := newTestAllocator(t, Config{LazySweep: true})
	var objs []mem.Addr
	for i := 0; i < 8; i++ {
		objs = append(objs, mustAlloc(t, a, 4, false))
	}
	a.Mark(objs[0]) // one survivor: the block is mixed, so it goes pending
	r := a.Sweep()
	if r.ObjectsFreed != 7 || r.ObjectsLive != 1 {
		t.Fatalf("barrier totals: %+v", r)
	}
	if a.SweepPending() != 1 {
		t.Fatalf("SweepPending = %d, want 1", a.SweepPending())
	}
	if !a.IsAllocated(objs[0]) {
		t.Fatal("survivor reports not allocated while pending")
	}
	for _, p := range objs[1:] {
		if a.IsAllocated(p) {
			t.Fatalf("dead object %#x reports allocated in pending block", uint32(p))
		}
	}
	if n := a.FinishSweep(); n != 1 {
		t.Fatalf("FinishSweep swept %d blocks, want 1", n)
	}
	if a.SweepPending() != 0 {
		t.Fatal("blocks still pending after FinishSweep")
	}
	if got := a.Stats().LazySweptBlocks; got != 1 {
		t.Fatalf("LazySweptBlocks = %d, want 1", got)
	}
	if !a.IsAllocated(objs[0]) {
		t.Fatal("survivor lost by deferred sweep")
	}
}

// TestLazySweepFreeOnPendingBlock: Free must complete a block's deferred
// sweep before freeing into it, and freeing an object the collection
// already classified dead is an error, exactly as it would be after an
// eager sweep.
func TestLazySweepFreeOnPendingBlock(t *testing.T) {
	_, a := newTestAllocator(t, Config{LazySweep: true})
	var objs []mem.Addr
	for i := 0; i < 8; i++ {
		objs = append(objs, mustAlloc(t, a, 4, false))
	}
	a.Mark(objs[0])
	a.Mark(objs[1])
	a.Sweep()
	if a.SweepPending() != 1 {
		t.Fatalf("SweepPending = %d, want 1", a.SweepPending())
	}
	if err := a.Free(objs[0]); err != nil {
		t.Fatalf("Free(live in pending block): %v", err)
	}
	if a.SweepPending() != 0 {
		t.Fatal("Free did not complete the pending sweep")
	}
	if err := a.Free(objs[2]); err == nil {
		t.Fatal("Free(dead object) succeeded; it was reclaimed by the collection")
	}
	if !a.IsAllocated(objs[1]) {
		t.Fatal("unrelated survivor lost")
	}
	// The queue's stale entry for the out-of-band-swept block must not
	// confuse later refills: allocate enough to recycle the block.
	seen := map[mem.Addr]bool{}
	for i := 0; i < 20; i++ {
		p := mustAlloc(t, a, 4, false)
		if seen[p] {
			t.Fatalf("address %#x handed out twice", uint32(p))
		}
		seen[p] = true
	}
}

// TestSweepStickyNeverReleasesOldBlocks (small objects): a minor
// collection must keep every block holding an old-marked object, even
// when every young object in it dies, in both sweep modes.
func TestSweepStickyNeverReleasesOldBlocks(t *testing.T) {
	for _, lazyMode := range []bool{false, true} {
		_, a := newTestAllocator(t, Config{LazySweep: lazyMode})
		// Block A: one old object plus young garbage. Block B (different
		// class): young garbage only.
		old := mustAlloc(t, a, 4, false)
		for i := 0; i < 6; i++ {
			mustAlloc(t, a, 4, false)
		}
		for i := 0; i < 6; i++ {
			mustAlloc(t, a, 8, false)
		}
		a.Mark(old) // promoted by a previous cycle
		before := a.Stats().BlocksDedicated
		r := a.SweepSticky()
		if !a.Marked(old) {
			t.Fatalf("lazy=%v: sticky sweep lost the old mark", lazyMode)
		}
		if r.BlocksKept != 1 || r.BlocksReleased != before-1 {
			t.Fatalf("lazy=%v: kept %d released %d, want 1 and %d",
				lazyMode, r.BlocksKept, r.BlocksReleased, before-1)
		}
		a.FinishSweep()
		if !a.IsAllocated(old) || !a.Marked(old) {
			t.Fatalf("lazy=%v: old object lost by deferred sticky sweep", lazyMode)
		}
		// A full generational cycle starts from a clean slate
		// (core.Collect calls ClearMarks) and reclaims the unmarked old
		// object.
		a.ClearMarks()
		a.Sweep()
		a.FinishSweep()
		if a.IsAllocated(old) {
			t.Fatalf("lazy=%v: full sweep kept unmarked old object", lazyMode)
		}
	}
}

// TestSweepStickyNeverReleasesOldLargeSpans: the same invariant for
// large-object spans, which are classified purely by summary under lazy
// sweeping.
func TestSweepStickyNeverReleasesOldLargeSpans(t *testing.T) {
	for _, lazyMode := range []bool{false, true} {
		_, a := newTestAllocator(t, Config{LazySweep: lazyMode})
		oldSpan := mustAlloc(t, a, mem.PageWords*3, false) // 3-block span
		deadSpan := mustAlloc(t, a, mem.PageWords*2, false)
		a.Mark(oldSpan)
		r := a.SweepSticky()
		if r.BlocksKept != 3 || r.BlocksReleased != 2 {
			t.Fatalf("lazy=%v: kept %d released %d, want 3 and 2", lazyMode, r.BlocksKept, r.BlocksReleased)
		}
		if !a.IsAllocated(oldSpan) || !a.Marked(oldSpan) {
			t.Fatalf("lazy=%v: old large span lost by sticky sweep", lazyMode)
		}
		if a.IsAllocated(deadSpan) {
			t.Fatalf("lazy=%v: dead large span survived", lazyMode)
		}
		a.ClearMarks()
		a.Sweep()
		if a.IsAllocated(oldSpan) {
			t.Fatalf("lazy=%v: full sweep kept unmarked large span", lazyMode)
		}
	}
}

// TestForEachMarkedObjectWordAtATime checks the word-at-a-time iteration
// against a straightforward per-slot reference over random mark
// patterns, in both variants.
func TestForEachMarkedObjectWordAtATime(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	rng := simrand.New(11)
	var objs []mem.Addr
	for i := 0; i < 400; i++ {
		objs = append(objs, mustAlloc(t, a, 1+rng.Intn(12), false))
	}
	for _, p := range objs {
		if rng.Bool(0.5) {
			a.Mark(p)
		}
	}
	for bi := range a.blocks {
		b := &a.blocks[bi]
		if b.state != blockSmall {
			continue
		}
		words := int(b.objWords)
		base := a.blockBase(bi)
		var want []mem.Addr
		for slot := 0; slot < slotsPerBlock(words); slot++ {
			if bitGet(b.allocBits, slot) && bitGet(b.markBits, slot) {
				want = append(want, base+mem.Addr(slot*words*mem.WordBytes))
			}
		}
		var got, gotAtomic []mem.Addr
		a.ForEachMarkedObject(bi, func(p mem.Addr) { got = append(got, p) })
		a.ForEachMarkedObjectAtomic(bi, func(p mem.Addr) { gotAtomic = append(gotAtomic, p) })
		if len(got) != len(want) || len(gotAtomic) != len(want) {
			t.Fatalf("block %d: got %d / atomic %d marked objects, want %d", bi, len(got), len(gotAtomic), len(want))
		}
		for i := range want {
			if got[i] != want[i] || gotAtomic[i] != want[i] {
				t.Fatalf("block %d: iteration order diverges at %d", bi, i)
			}
		}
	}
}

// BenchmarkForEachMarkedObject measures the word-at-a-time marked-object
// iteration over a block with a realistic sparse mark pattern (the
// dirty-block rescan hot path of minor collections).
func BenchmarkForEachMarkedObject(b *testing.B) {
	space := mem.NewAddressSpace()
	a, err := New(space, Config{
		HeapBase:     testHeapBase,
		InitialBytes: 64 * mem.PageBytes,
		ReserveBytes: 1024 * mem.PageBytes,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := simrand.New(3)
	var objs []mem.Addr
	for i := 0; i < 1024; i++ { // one-word objects: 1024 fill exactly one block
		p, err := a.Alloc(1, false)
		if err != nil {
			b.Fatal(err)
		}
		objs = append(objs, p)
	}
	for _, p := range objs {
		if rng.Bool(0.1) {
			a.Mark(p)
		}
	}
	bi := a.blockIndex(objs[0])
	b.Run("plain", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			a.ForEachMarkedObject(bi, func(mem.Addr) { n++ })
		}
	})
	b.Run("atomic", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			a.ForEachMarkedObjectAtomic(bi, func(mem.Addr) { n++ })
		}
	})
}
