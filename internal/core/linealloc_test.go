package core

import (
	"testing"

	"repro/internal/mem"
)

// Differential coverage for Config.LineAlloc (the bump profile): the
// collector's observable behaviour — reclamation totals, heap stats,
// collection counts, and on line-aligned size classes the allocation
// addresses themselves — must match the free-list profile exactly.
// The address-identity argument: the sweep barrier queues partial line
// blocks ascending and the carve pops them from the back (the threaded
// free list's descending-block order), and runs within a block are
// carved ascending (the list's within-block order); on classes whose
// slots are whole lines, free lines ARE free slots, so the two
// profiles hand out the same addresses in the same order.

// lineScript is mutatorScript restricted to line-aligned small classes
// (64/128/256/512 words — slot size a whole number of lines) plus
// large objects, so the bump profile's addresses are comparable to the
// free-list profile's.
func lineScript(t *testing.T, d gcDriver) []mem.Addr {
	t.Helper()
	const dataBase = mem.Addr(0x2000)
	const rootSlots = 64
	var roots [rootSlots]mem.Addr
	sizes := []int{64, 128, 256, 512, 100, 200, 400, 600, 1030}
	// 100 -> class 128, 200 -> 256, 400 -> 512: rounded into aligned
	// classes; 600 and 1030 are large objects, identical in either
	// profile.
	var addrs []mem.Addr
	rng := uint32(0x51f15eed)
	next := func(n uint32) uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng % n
	}
	for i := 0; i < 1600; i++ {
		size := sizes[next(uint32(len(sizes)))]
		atomic := next(7) == 0
		p, err := d.Allocate(size, atomic)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, p)
		switch next(5) {
		case 0:
			slot := next(rootSlots)
			if err := d.Store(dataBase+mem.Addr(4*slot), mem.Word(p)); err != nil {
				t.Fatal(err)
			}
			if atomic {
				roots[slot] = 0
			} else {
				roots[slot] = p
			}
		case 1:
			if slot := next(rootSlots); roots[slot] != 0 {
				if err := d.Store(roots[slot], mem.Word(p)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if next(47) == 0 {
			if slot := next(rootSlots); roots[slot] != 0 {
				if err := d.Store(dataBase+mem.Addr(4*slot), 0); err != nil {
					t.Fatal(err)
				}
				if err := d.Free(roots[slot]); err != nil {
					t.Fatal(err)
				}
				roots[slot] = 0
			}
		}
		if next(509) == 0 {
			d.Collect()
		}
	}
	d.Collect()
	return addrs
}

// lineConfigs are the collector modes the line profile composes with
// (incremental mode disables it; see Config.LineAlloc).
var lineConfigs = map[string]Config{
	"full":         {GCDivisor: 4},
	"generational": {Generational: true, MinorDivisor: 6, FullEvery: 3, GCDivisor: 4},
	"lazy":         {GCDivisor: 4, LazySweep: true},
	"parallel":     {GCDivisor: 4, MarkWorkers: 4},
	"gen-lazy":     {Generational: true, MinorDivisor: 6, FullEvery: 3, LazySweep: true},
	"par-lazy":     {GCDivisor: 4, MarkWorkers: 4, LazySweep: true},
}

// TestLineAllocDifferential is the tentpole's compatibility claim: on
// line-aligned classes the bump profile replays the free-list
// profile's exact history — same addresses, same collection stats up
// to timing, same final heap state — in every collector mode, through
// both the direct World path and a Mutator handle.
func TestLineAllocDifferential(t *testing.T) {
	for name, cfg := range lineConfigs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			type outcome struct {
				addrs []mem.Addr
				stats []CollectionStats
				w     *World
			}
			run := func(line, useHandle bool) outcome {
				c := cfg
				c.LineAlloc = line
				w := newWorld(t, c)
				addData(t, w, "data", 0x2000, 4096)
				var stats []CollectionStats
				w.SetCollectionHook(func(st CollectionStats) { stats = append(stats, st) })
				var d gcDriver
				if useHandle {
					d = w.NewMutator()
				} else {
					d = directDriver{w}
				}
				addrs := lineScript(t, d)
				return outcome{addrs, stats, w}
			}
			compare := func(label string, a, b outcome) {
				t.Helper()
				if len(a.addrs) != len(b.addrs) {
					t.Fatalf("%s: allocation counts diverge: %d vs %d", label, len(a.addrs), len(b.addrs))
				}
				for i := range a.addrs {
					if a.addrs[i] != b.addrs[i] {
						t.Fatalf("%s: allocation %d diverges: %#x vs %#x",
							label, i, uint32(a.addrs[i]), uint32(b.addrs[i]))
					}
				}
				if len(a.stats) != len(b.stats) {
					t.Fatalf("%s: collection counts diverge: %d vs %d", label, len(a.stats), len(b.stats))
				}
				for i := range a.stats {
					x, y := a.stats[i], b.stats[i]
					normalizeTimes(&x, &y)
					if x != y {
						t.Fatalf("%s: cycle %d stats diverge:\nA %+v\nB %+v", label, i, x, y)
					}
				}
				if as, bs := a.w.Heap.Stats(), b.w.Heap.Stats(); as != bs {
					t.Fatalf("%s: final heap stats diverge:\nA %+v\nB %+v", label, as, bs)
				}
			}

			freelist := run(false, false)
			line := run(true, false)
			compare("freelist-vs-line (direct)", freelist, line)
			lineHandle := run(true, true)
			compare("direct-vs-handle (line)", line, lineHandle)

			for _, o := range []outcome{line, lineHandle} {
				if err := o.w.VerifyIntegrity(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestLineAllocIntegrityWithOutstandingSpans audits the world while
// mutator handles hold half-consumed bump spans: VerifyIntegrity must
// account every carved-but-unissued slot (no double-carve, bits set)
// without requiring a flush first.
func TestLineAllocIntegrityWithOutstandingSpans(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1, LineAlloc: true})
	addData(t, w, "data", 0x2000, 4096)
	m1 := w.NewMutator()
	m2 := w.NewMutator()
	// Odd counts leave both handles mid-span.
	for i := 0; i < 7; i++ {
		if _, err := m1.Allocate(64, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := m2.Allocate(128, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity with outstanding spans: %v", err)
	}
	// A collection parks the handles and flushes their spans; the next
	// audit sees a clean heap.
	w.Collect()
	if err := w.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// The handles' spans were invalidated by the safepoint; fresh
	// allocations re-carve and the audit still balances.
	if _, err := m1.Allocate(64, false); err != nil {
		t.Fatal(err)
	}
	if err := w.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestLineAllocGeneralWorkload runs the full mixed-size script (not
// line-aligned: small classes tile lines with waste) under the bump
// profile. Addresses legitimately differ from the free-list profile;
// the invariants are integrity and exact conservation of the object
// count.
func TestLineAllocGeneralWorkload(t *testing.T) {
	for _, useHandle := range []bool{false, true} {
		w := newWorld(t, Config{GCDivisor: 4, LazySweep: true, LineAlloc: true})
		addData(t, w, "data", 0x2000, 4096)
		var d gcDriver
		if useHandle {
			d = w.NewMutator()
		} else {
			d = directDriver{w}
		}
		addrs := mutatorScript(t, d)
		w.Collect()
		w.FinishSweep()
		if err := w.VerifyIntegrity(); err != nil {
			t.Fatalf("handle=%v: %v", useHandle, err)
		}
		if got := w.Heap.Stats().ObjectsAllocated; got != uint64(len(addrs)) {
			t.Fatalf("handle=%v: ObjectsAllocated = %d, script allocated %d", useHandle, got, len(addrs))
		}
	}
}

// TestLineAllocIncrementalComposes replaces the old mode-exclusivity
// pin (incremental worlds used to clear LineAlloc silently): the bump
// profile now survives incremental cycles, because span flushes at the
// cycle boundaries unmark the returned tails — a flushed
// carved-but-unissued slot can no longer masquerade as a live object
// across the finale's sweep. On line-aligned classes the incremental
// line world must replay the incremental free-list world exactly.
func TestLineAllocIncrementalComposes(t *testing.T) {
	type outcome struct {
		addrs []mem.Addr
		stats []CollectionStats
		w     *World
	}
	run := func(line bool) outcome {
		w := newWorld(t, Config{Incremental: true, GCDivisor: 4, LineAlloc: line})
		if !w.Config().LineAlloc && line {
			t.Fatal("incremental world cleared LineAlloc")
		}
		addData(t, w, "data", 0x2000, 4096)
		var stats []CollectionStats
		w.SetCollectionHook(func(st CollectionStats) { stats = append(stats, st) })
		addrs := lineScript(t, directDriver{w})
		return outcome{addrs, stats, w}
	}
	freelist := run(false)
	line := run(true)
	if len(freelist.addrs) != len(line.addrs) {
		t.Fatalf("allocation counts diverge: %d vs %d", len(freelist.addrs), len(line.addrs))
	}
	for i := range freelist.addrs {
		if freelist.addrs[i] != line.addrs[i] {
			t.Fatalf("allocation %d diverges: %#x vs %#x",
				i, uint32(freelist.addrs[i]), uint32(line.addrs[i]))
		}
	}
	if len(freelist.stats) != len(line.stats) {
		t.Fatalf("collection counts diverge: %d vs %d", len(freelist.stats), len(line.stats))
	}
	incremental := false
	for i := range freelist.stats {
		x, y := freelist.stats[i], line.stats[i]
		normalizeTimes(&x, &y)
		if x != y {
			t.Fatalf("cycle %d stats diverge:\nA %+v\nB %+v", i, x, y)
		}
		incremental = incremental || x.Incremental
	}
	if !incremental {
		t.Fatal("no incremental cycle ran; the composition was not exercised")
	}
	if as, bs := freelist.w.Heap.Stats(), line.w.Heap.Stats(); as != bs {
		t.Fatalf("final heap stats diverge:\nA %+v\nB %+v", as, bs)
	}
	if err := line.w.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}
