package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

const stackTop = mem.Addr(0x80000000)

func newMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	if cfg.StackTop == 0 {
		cfg.StackTop = stackTop
	}
	if cfg.StackBytes == 0 {
		cfg.StackBytes = 64 * 1024
	}
	m, err := New(mem.NewAddressSpace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	space := mem.NewAddressSpace()
	if _, err := New(space, Config{StackTop: 0x1001, StackBytes: 4096}); err == nil {
		t.Error("unaligned stack top accepted")
	}
	if _, err := New(space, Config{StackTop: 0x10000, StackBytes: 0}); err == nil {
		t.Error("zero stack accepted")
	}
	if _, err := New(space, Config{StackTop: 0x10000, StackBytes: 6}); err == nil {
		t.Error("non-word stack size accepted")
	}
}

func TestPushPopGeometry(t *testing.T) {
	m := newMachine(t, Config{})
	if m.SP() != stackTop || m.Depth() != 0 {
		t.Fatal("fresh machine state wrong")
	}
	f, err := m.PushFrame(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.SP() != stackTop-16 || m.Depth() != 1 {
		t.Fatalf("after push: sp=%#x depth=%d", uint32(m.SP()), m.Depth())
	}
	if f.Addr(0) != m.SP() || f.Addr(3) != m.SP()+12 {
		t.Fatal("frame addressing wrong")
	}
	if err := m.PopFrame(); err != nil {
		t.Fatal(err)
	}
	if m.SP() != stackTop || m.Depth() != 0 {
		t.Fatal("pop did not restore sp")
	}
	if err := m.PopFrame(); err == nil {
		t.Fatal("pop on empty stack should fail")
	}
}

func TestFrameSlop(t *testing.T) {
	m := newMachine(t, Config{FrameSlopWords: 6})
	f, _ := m.PushFrame(4)
	if m.SP() != stackTop-40 {
		t.Fatalf("slop not applied: sp=%#x", uint32(m.SP()))
	}
	if f.Words() != 4 {
		t.Fatalf("usable words = %d", f.Words())
	}
	// Slop slots are addressable (the collector will scan them).
	_ = f.Addr(9)
}

func TestFrameStoreLoad(t *testing.T) {
	m := newMachine(t, Config{})
	f, _ := m.PushFrame(2)
	if err := f.Store(1, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	v, err := f.Load(1)
	if err != nil || v != 0xCAFE {
		t.Fatalf("Load = %v, %v", v, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slot did not panic")
		}
	}()
	f.Addr(2)
}

func TestStackOverflow(t *testing.T) {
	m := newMachine(t, Config{StackBytes: 1024})
	for i := 0; ; i++ {
		if _, err := m.PushFrame(32); err != nil {
			if i == 0 {
				t.Fatal("immediate overflow")
			}
			return
		}
		if i > 100 {
			t.Fatal("overflow never reported")
		}
	}
}

func TestPopLeavesGarbage(t *testing.T) {
	m := newMachine(t, Config{})
	f, _ := m.PushFrame(2)
	f.Store(0, 0xDEAD0001)
	addr := f.Addr(0)
	m.PopFrame()
	// The popped word is still there.
	v, err := m.Seg().Load(addr)
	if err != nil || v != 0xDEAD0001 {
		t.Fatalf("popped stack cleared: %v %v", v, err)
	}
	// A new frame over the same region sees the garbage until it
	// overwrites it.
	g, _ := m.PushFrame(2)
	if g.Addr(0) != addr {
		t.Fatalf("frame reuse geometry wrong")
	}
	v, _ = g.Load(0)
	if v != 0xDEAD0001 {
		t.Fatal("stale value not visible through new frame")
	}
}

func TestStaleValueInLiveStackScan(t *testing.T) {
	// The precise §3.1 scenario: write pointer deep, pop, grow again
	// with a frame that does not write all slots, scan: value visible.
	m := newMachine(t, Config{FrameSlopWords: 4})
	f, _ := m.PushFrame(1)
	f.Store(0, 0xBEEF0004)
	m.PopFrame()
	m.PushFrame(1) // slop covers old slot; new occupant writes nothing
	live, lo := m.LiveStack()
	if lo != m.SP() {
		t.Fatal("LiveStack base wrong")
	}
	found := false
	for _, w := range live {
		if w == 0xBEEF0004 {
			found = true
		}
	}
	if !found {
		t.Fatal("stale pointer not visible in live stack scan")
	}
}

func TestLiveStackExcludesDeadRegion(t *testing.T) {
	m := newMachine(t, Config{})
	f, _ := m.PushFrame(8)
	f.Store(0, 0xAAAA)
	m.PopFrame()
	// Nothing live: scan sees zero words.
	live, _ := m.LiveStack()
	if len(live) != 0 {
		t.Fatalf("live stack has %d words with no frames", len(live))
	}
	if m.DeadBytes() != 32 {
		t.Fatalf("DeadBytes = %d", m.DeadBytes())
	}
}

func TestWithFrame(t *testing.T) {
	m := newMachine(t, Config{})
	err := m.WithFrame(4, func(f *Frame) error {
		if m.Depth() != 1 {
			t.Fatal("frame not pushed")
		}
		return m.WithFrame(4, func(*Frame) error {
			if m.Depth() != 2 {
				t.Fatal("nested frame not pushed")
			}
			return nil
		})
	})
	if err != nil || m.Depth() != 0 {
		t.Fatalf("WithFrame cleanup wrong: %v depth=%d", err, m.Depth())
	}
}

func TestFrameClear(t *testing.T) {
	m := newMachine(t, Config{FrameSlopWords: 2})
	f, _ := m.PushFrame(2)
	f.Store(0, 0x1234)
	a := f.Addr(0)
	f.Clear()
	m.PopFrame()
	if v, _ := m.Seg().Load(a); v != 0 {
		t.Fatal("Clear did not zero the frame")
	}
}

func TestRegisterWindowResidue(t *testing.T) {
	m := newMachine(t, Config{RegisterWindows: true})
	// Write a "pointer" into window registers at depth 1, then pop.
	m.PushFrame(1)
	m.SetLocal(3, 0xFEED0008)
	m.PopFrame()
	// At depth 0 the value is in a non-current window but still in the
	// register file the collector scans.
	found := false
	for _, r := range m.Registers() {
		if r == 0xFEED0008 {
			found = true
		}
	}
	if !found {
		t.Fatal("window residue not visible to register scan")
	}
	// Pushing until the window ring wraps back onto that window: its
	// contents are NOT cleared (the paper's uncleaned windows). The
	// value was written at depth 1, so depth 1+NumWindows reuses it.
	for i := 0; i < NumWindows+1; i++ {
		m.PushFrame(1)
	}
	if m.Local(3) != 0xFEED0008 {
		t.Fatal("rotated-in window was cleared")
	}
	m.ClearRegisters()
	for _, r := range m.Registers() {
		if r != 0 {
			t.Fatal("ClearRegisters missed a register")
		}
	}
}

func TestGlobalsSurviveCalls(t *testing.T) {
	m := newMachine(t, Config{RegisterWindows: true})
	m.SetGlobal(2, 777)
	m.PushFrame(1)
	m.PushFrame(1)
	if m.Global(2) != 777 {
		t.Fatal("global clobbered by calls")
	}
	if len(m.Registers()) != TotalRegisters {
		t.Fatalf("register count = %d", len(m.Registers()))
	}
}

func TestPolluteRegistersDeterministic(t *testing.T) {
	m1 := newMachine(t, Config{Seed: 5})
	m2 := newMachine(t, Config{Seed: 5})
	vals := []mem.Word{0x400100, 0x400200}
	m1.PolluteRegisters(vals, 20, 0x1000, 0x2000)
	m2.PolluteRegisters(vals, 20, 0x1000, 0x2000)
	r1, r2 := m1.Registers(), m2.Registers()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("pollution not deterministic")
		}
	}
	nonzero := 0
	for _, r := range r1 {
		if r != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("pollution had no effect")
	}
}

func TestClearEager(t *testing.T) {
	m := newMachine(t, Config{Clear: ClearEager})
	f, _ := m.PushFrame(4)
	f.Store(0, 0xAAAA)
	a := f.Addr(0)
	m.PopFrame()
	m.OnAllocate()
	if v, _ := m.Seg().Load(a); v != 0 {
		t.Fatal("eager clear left dead stack dirty")
	}
	if m.DeadBytes() != 0 {
		t.Fatal("eager clear did not reset low water")
	}
}

func TestClearNone(t *testing.T) {
	m := newMachine(t, Config{Clear: ClearNone})
	f, _ := m.PushFrame(4)
	f.Store(0, 0xBBBB)
	a := f.Addr(0)
	m.PopFrame()
	for i := 0; i < 100; i++ {
		m.OnAllocate()
	}
	if v, _ := m.Seg().Load(a); v != 0xBBBB {
		t.Fatal("ClearNone cleared something")
	}
}

func TestClearCheapEventuallyClears(t *testing.T) {
	m := newMachine(t, Config{Clear: ClearCheap, ClearChunkWords: 8, ClearFullEvery: 1 << 30})
	// Dirty a deep region.
	f, _ := m.PushFrame(1000)
	for i := 0; i < 1000; i++ {
		f.Store(i, 0xCCCC)
	}
	m.PopFrame()
	// Bounded bursts eventually sweep the whole dead region.
	for i := 0; i < 1000; i++ {
		m.OnAllocate()
	}
	dirty := 0
	words := m.Seg().Words()
	for _, w := range words {
		if w == 0xCCCC {
			dirty++
		}
	}
	if dirty != 0 {
		t.Fatalf("%d dirty words remain after many cheap bursts", dirty)
	}
}

func TestClearCheapPeriodicFullClear(t *testing.T) {
	m := newMachine(t, Config{Clear: ClearCheap, ClearChunkWords: 1, ClearFullEvery: 4})
	f, _ := m.PushFrame(5000)
	for i := 0; i < 5000; i++ {
		f.Store(i, 0xDDDD)
	}
	m.PopFrame()
	// The 4th hook performs a full clear despite the tiny chunk size.
	for i := 0; i < 4; i++ {
		m.OnAllocate()
	}
	for _, w := range m.Seg().Words() {
		if w == 0xDDDD {
			t.Fatal("periodic full clear did not happen")
		}
	}
}

func TestClearDeadStackForced(t *testing.T) {
	m := newMachine(t, Config{Clear: ClearNone})
	f, _ := m.PushFrame(4)
	f.Store(0, 0xEEEE)
	a := f.Addr(0)
	m.PopFrame()
	m.ClearDeadStack()
	if v, _ := m.Seg().Load(a); v != 0 {
		t.Fatal("forced clear failed")
	}
}

func TestLiveFrameNeverCleared(t *testing.T) {
	// Clearing policies must never touch live frames.
	for _, pol := range []ClearPolicy{ClearCheap, ClearEager} {
		m := newMachine(t, Config{Clear: pol, ClearFullEvery: 1})
		f, _ := m.PushFrame(4)
		f.Store(2, 0x12345678)
		deep, _ := m.PushFrame(8)
		deep.Store(0, 0x55)
		m.PopFrame()
		for i := 0; i < 50; i++ {
			m.OnAllocate()
		}
		if v, _ := f.Load(2); v != 0x12345678 {
			t.Fatalf("policy %v cleared a live frame slot", pol)
		}
	}
}

func TestPushPopBalanceProperty(t *testing.T) {
	// Any balanced sequence of pushes and pops restores SP exactly.
	m := newMachine(t, Config{FrameSlopWords: 3, StackBytes: 1 << 20})
	f := func(sizes []uint8) bool {
		start := m.SP()
		pushed := 0
		for _, sz := range sizes {
			if _, err := m.PushFrame(int(sz) % 64); err != nil {
				break
			}
			pushed++
		}
		for i := 0; i < pushed; i++ {
			if err := m.PopFrame(); err != nil {
				return false
			}
		}
		return m.SP() == start && m.Depth() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLiveStackSizeMatchesDepthProperty(t *testing.T) {
	m := newMachine(t, Config{FrameSlopWords: 0, StackBytes: 1 << 20})
	f := func(sizes []uint8) bool {
		total := 0
		pushed := 0
		for _, sz := range sizes {
			n := 1 + int(sz)%32
			if _, err := m.PushFrame(n); err != nil {
				break
			}
			total += n
			pushed++
		}
		live, base := m.LiveStack()
		ok := len(live) == total && base == m.SP()
		for i := 0; i < pushed; i++ {
			m.PopFrame()
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
