package mark

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/blacklist"
	"repro/internal/mem"
	"repro/internal/simrand"
)

const heapBase = 0x400000

type fixture struct {
	space *mem.AddressSpace
	heap  *alloc.Allocator
	bl    *blacklist.Dense
	m     *Marker
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	space := mem.NewAddressSpace()
	reserve := 1024 * mem.PageBytes
	bl, err := blacklist.NewDense(heapBase, heapBase+mem.Addr(reserve), mem.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Blacklist == nil {
		cfg.Blacklist = bl
	}
	heap, err := alloc.New(space, alloc.Config{
		HeapBase:         heapBase,
		InitialBytes:     64 * mem.PageBytes,
		ReserveBytes:     reserve,
		Blacklist:        cfg.Blacklist,
		InteriorPointers: cfg.Policy == PointerInterior,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{space: space, heap: heap, bl: bl, m: New(heap, cfg)}
}

func (f *fixture) alloc(t *testing.T, words int, atomic bool) mem.Addr {
	t.Helper()
	p, err := f.heap.Alloc(words, atomic)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (f *fixture) store(t *testing.T, a mem.Addr, v mem.Word) {
	t.Helper()
	if err := f.heap.Seg().Store(a, v); err != nil {
		t.Fatal(err)
	}
}

func TestMarkValueValidPointer(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase})
	p := f.alloc(t, 2, false)
	f.m.MarkValue(mem.Word(p))
	f.m.Drain()
	if !f.heap.Marked(p) {
		t.Fatal("object not marked")
	}
	st := f.m.Stats()
	if st.ObjectsMarked != 1 || st.BytesMarked != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMarkTransitive(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase})
	// Chain a -> b -> c.
	a := f.alloc(t, 2, false)
	b := f.alloc(t, 2, false)
	c := f.alloc(t, 2, false)
	d := f.alloc(t, 2, false) // unreachable
	f.store(t, a, mem.Word(b))
	f.store(t, b+4, mem.Word(c))
	f.m.MarkValue(mem.Word(a))
	f.m.Drain()
	for _, obj := range []mem.Addr{a, b, c} {
		if !f.heap.Marked(obj) {
			t.Fatalf("object %#x not marked", uint32(obj))
		}
	}
	if f.heap.Marked(d) {
		t.Fatal("unreachable object marked")
	}
}

func TestMarkCycleTerminates(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase})
	a := f.alloc(t, 1, false)
	b := f.alloc(t, 1, false)
	f.store(t, a, mem.Word(b))
	f.store(t, b, mem.Word(a))
	f.m.MarkValue(mem.Word(a))
	f.m.Drain() // must terminate
	if !f.heap.Marked(a) || !f.heap.Marked(b) {
		t.Fatal("cycle not fully marked")
	}
	if f.m.Stats().ObjectsMarked != 2 {
		t.Fatalf("ObjectsMarked = %d", f.m.Stats().ObjectsMarked)
	}
}

func TestAtomicObjectsNotScanned(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase})
	// An atomic object whose contents point at another object: the
	// pointee must NOT be retained through it.
	atom := f.alloc(t, 2, true)
	victim := f.alloc(t, 2, false)
	f.store(t, atom, mem.Word(victim))
	f.m.MarkValue(mem.Word(atom))
	f.m.Drain()
	if !f.heap.Marked(atom) {
		t.Fatal("atomic object itself not marked")
	}
	if f.heap.Marked(victim) {
		t.Fatal("atomic object's contents were scanned")
	}
	if f.m.Stats().AtomicSkipped != 1 {
		t.Fatalf("AtomicSkipped = %d", f.m.Stats().AtomicSkipped)
	}
}

func TestInteriorPolicy(t *testing.T) {
	// Base-only: interior pointer does not retain, and — critically for
	// the paper — it gets blacklisted as a near-heap false reference.
	f := newFixture(t, Config{Policy: PointerBase})
	p := f.alloc(t, 4, false)
	f.m.MarkValue(mem.Word(p + 8))
	f.m.Drain()
	if f.heap.Marked(p) {
		t.Fatal("interior pointer retained object in base-only mode")
	}
	if !f.bl.Contains(p + 8) {
		t.Fatal("invalid interior candidate not blacklisted")
	}

	// Interior: the same candidate retains the object.
	f2 := newFixture(t, Config{Policy: PointerInterior})
	q := f2.alloc(t, 4, false)
	f2.m.MarkValue(mem.Word(q + 8))
	f2.m.Drain()
	if !f2.heap.Marked(q) {
		t.Fatal("interior pointer ignored in interior mode")
	}
	if f2.m.Stats().InteriorResolved != 1 {
		t.Fatalf("InteriorResolved = %d", f2.m.Stats().InteriorResolved)
	}
}

func TestVicinityBlacklisting(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase})
	limit := f.heap.Limit()
	// A value pointing past the committed heap but inside the
	// reservation: exactly the "could become valid later" case.
	f.m.MarkValue(mem.Word(limit + 0x100))
	if !f.bl.Contains(limit + 0x100) {
		t.Fatal("reserved-region candidate not blacklisted")
	}
	// A value far outside the heap is ignored.
	f.m.MarkValue(0x10)
	if f.bl.Contains(0x10) {
		t.Fatal("distant value blacklisted")
	}
	if f.m.Stats().FalseNearHeap != 1 {
		t.Fatalf("FalseNearHeap = %d", f.m.Stats().FalseNearHeap)
	}
}

func TestFreeSlotCandidateBlacklisted(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase})
	p := f.alloc(t, 2, false)
	q := f.alloc(t, 2, false)
	if err := f.heap.Free(q); err != nil {
		t.Fatal(err)
	}
	f.m.MarkValue(mem.Word(q))
	if f.heap.Marked(p) {
		t.Fatal("unrelated object marked")
	}
	if !f.bl.Contains(q) {
		t.Fatal("pointer to free slot not blacklisted")
	}
}

func TestNilBlacklistDisables(t *testing.T) {
	space := mem.NewAddressSpace()
	heap, err := alloc.New(space, alloc.Config{
		HeapBase:     heapBase,
		InitialBytes: 8 * mem.PageBytes,
		ReserveBytes: 8 * mem.PageBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := New(heap, Config{})
	m.MarkValue(mem.Word(heapBase + 100)) // invalid, in vicinity
	if m.Stats().FalseNearHeap != 1 {
		t.Fatal("near-heap miss not counted")
	}
	// No panic, nothing marked: Disabled blacklist absorbed it.
}

func TestMarkWordsAligned(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase, Alignment: AlignedWords})
	p := f.alloc(t, 2, false)
	words := []mem.Word{0, 12345, mem.Word(p), 0xFFFFFFFF}
	f.m.MarkWords(words)
	f.m.Drain()
	if !f.heap.Marked(p) {
		t.Fatal("aligned candidate missed")
	}
	st := f.m.Stats()
	if st.WordsScanned != 4 || st.Candidates != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMarkWordsUnalignedFindsStraddlingPointer(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase, Alignment: AnyByteOffset})
	p := f.alloc(t, 2, false)
	v := uint32(p)
	// Figure 1: split the pointer across two words at byte offset 2 —
	// low half of word i, high half of word i+1.
	words := []mem.Word{mem.Word(v >> 16), mem.Word(v << 16)}
	f.m.MarkWords(words)
	f.m.Drain()
	if !f.heap.Marked(p) {
		t.Fatal("straddling candidate missed under AnyByteOffset")
	}

	// The aligned marker does not see it.
	f2 := newFixture(t, Config{Policy: PointerBase, Alignment: AlignedWords})
	q := f2.alloc(t, 2, false)
	w := uint32(q)
	f2.m.MarkWords([]mem.Word{mem.Word(w >> 16), mem.Word(w << 16)})
	f2.m.Drain()
	if f2.heap.Marked(q) {
		t.Fatal("aligned marker found straddling candidate")
	}
}

func TestUnalignedCandidateCount(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase, Alignment: AnyByteOffset})
	f.m.MarkWords(make([]mem.Word, 10))
	// 10 aligned + 9*3 straddling.
	if got := f.m.Stats().Candidates; got != 37 {
		t.Fatalf("Candidates = %d, want 37", got)
	}
}

func TestMarkSegmentAndRoots(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase})
	p := f.alloc(t, 2, false)
	data, err := f.space.MapNew("data", mem.KindData, 0x2000, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.Store(0x2004, mem.Word(p)); err != nil {
		t.Fatal(err)
	}
	f.m.MarkRootSegments(f.space)
	f.m.Drain()
	if !f.heap.Marked(p) {
		t.Fatal("root segment pointer missed")
	}

	// Non-root segments are not scanned.
	f2 := newFixture(t, Config{Policy: PointerBase})
	q := f2.alloc(t, 2, false)
	seg2, _ := f2.space.MapNew("buffers", mem.KindOther, 0x2000, 64, 64)
	seg2.Store(0x2004, mem.Word(q))
	f2.m.MarkRootSegments(f2.space)
	f2.m.Drain()
	if f2.heap.Marked(q) {
		t.Fatal("non-root segment was scanned")
	}
}

func TestResetClearsStats(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase})
	p := f.alloc(t, 2, false)
	f.m.MarkValue(mem.Word(p))
	f.m.Reset()
	if f.m.Stats() != (Stats{}) {
		t.Fatal("Reset did not clear stats")
	}
}

func TestMarkSweepIntegration(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase})
	rng := simrand.New(4)
	// Build 50 random singly linked lists; remember the heads of the
	// first 25 in a root segment, drop the rest.
	data, _ := f.space.MapNew("data", mem.KindData, 0x2000, 4096, 4096)
	var all [][]mem.Addr
	for i := 0; i < 50; i++ {
		n := 5 + rng.Intn(20)
		var nodes []mem.Addr
		var prev mem.Addr
		for j := 0; j < n; j++ {
			node := f.alloc(t, 2, false)
			if prev != 0 {
				f.store(t, prev, mem.Word(node))
			}
			nodes = append(nodes, node)
			prev = node
		}
		all = append(all, nodes)
		if i < 25 {
			data.Store(0x2000+mem.Addr(4*i), mem.Word(nodes[0]))
		}
	}
	f.m.MarkRootSegments(f.space)
	f.m.Drain()
	f.heap.Sweep()
	for i, nodes := range all {
		for _, node := range nodes {
			alive := f.heap.IsAllocated(node)
			if i < 25 && !alive {
				t.Fatalf("list %d node %#x wrongly collected", i, uint32(node))
			}
			if i >= 25 && alive {
				t.Fatalf("list %d node %#x wrongly retained", i, uint32(node))
			}
		}
	}
}

func TestEverythingReachableIsMarkedProperty(t *testing.T) {
	// Build a random object graph, mark from a root set, and verify
	// via an exact reachability computation that the conservative
	// marker marks a superset.
	f := newFixture(t, Config{Policy: PointerBase})
	rng := simrand.New(77)
	var objs []mem.Addr
	for i := 0; i < 300; i++ {
		objs = append(objs, f.alloc(t, 4, false))
	}
	edges := map[mem.Addr][]mem.Addr{}
	for _, o := range objs {
		for s := 0; s < 3; s++ {
			if rng.Bool(0.5) {
				target := objs[rng.Intn(len(objs))]
				f.store(t, o+mem.Addr(4*s), mem.Word(target))
				edges[o] = append(edges[o], target)
			}
		}
	}
	var roots []mem.Addr
	for i := 0; i < 10; i++ {
		roots = append(roots, objs[rng.Intn(len(objs))])
	}
	// Exact reachability.
	reach := map[mem.Addr]bool{}
	var stack []mem.Addr
	for _, r := range roots {
		if !reach[r] {
			reach[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, tgt := range edges[o] {
			if !reach[tgt] {
				reach[tgt] = true
				stack = append(stack, tgt)
			}
		}
	}
	// Conservative marking.
	for _, r := range roots {
		f.m.MarkValue(mem.Word(r))
	}
	f.m.Drain()
	for _, o := range objs {
		if reach[o] && !f.heap.Marked(o) {
			t.Fatalf("reachable object %#x not marked", uint32(o))
		}
		// With no non-pointer noise in fields, marking is exact here.
		if !reach[o] && f.heap.Marked(o) {
			t.Fatalf("unreachable object %#x marked without false roots", uint32(o))
		}
	}
}

func BenchmarkMarkListBlacklistOn(b *testing.B)  { benchMarkList(b, true) }
func BenchmarkMarkListBlacklistOff(b *testing.B) { benchMarkList(b, false) }

func benchMarkList(b *testing.B, blacklisting bool) {
	space := mem.NewAddressSpace()
	var bl blacklist.List = blacklist.Disabled{}
	if blacklisting {
		bl, _ = blacklist.NewDense(heapBase, heapBase+64<<20, mem.PageBytes)
	}
	heap, err := alloc.New(space, alloc.Config{
		HeapBase:     heapBase,
		InitialBytes: 16 << 20,
		ReserveBytes: 64 << 20,
		Blacklist:    bl,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := New(heap, Config{Policy: PointerBase, Blacklist: bl})
	// 100k-node list.
	var head, prev mem.Addr
	for i := 0; i < 100000; i++ {
		node, err := heap.Alloc(2, false)
		if err != nil {
			b.Fatal(err)
		}
		if prev != 0 {
			heap.Seg().Store(prev, mem.Word(node))
		} else {
			head = node
		}
		prev = node
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MarkValue(mem.Word(head))
		m.Drain()
		b.StopTimer()
		heap.ClearMarks()
		m.Reset()
		b.StartTimer()
	}
}

func TestTypedObjectScanning(t *testing.T) {
	f := newFixture(t, Config{Policy: PointerBase})
	// Layout: word 0 is a pointer, word 1 is data.
	id, err := f.heap.RegisterDescriptor([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	node, err := f.heap.AllocTyped(id)
	if err != nil {
		t.Fatal(err)
	}
	viaPtr := f.alloc(t, 2, false)
	viaData := f.alloc(t, 2, false)
	f.store(t, node, mem.Word(viaPtr))    // pointer field
	f.store(t, node+4, mem.Word(viaData)) // data field holding an address
	f.m.MarkValue(mem.Word(node))
	f.m.Drain()
	if !f.heap.Marked(viaPtr) {
		t.Fatal("pointer field not followed in typed object")
	}
	if f.heap.Marked(viaData) {
		t.Fatal("data field followed despite exact layout info")
	}
}

func TestTypedChainMarks(t *testing.T) {
	// A typed linked list marks transitively through its pointer field.
	f := newFixture(t, Config{Policy: PointerBase})
	id, _ := f.heap.RegisterDescriptor([]bool{true, false})
	var nodes []mem.Addr
	var prev mem.Addr
	for i := 0; i < 20; i++ {
		n, err := f.heap.AllocTyped(id)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 {
			f.store(t, prev, mem.Word(n))
		}
		f.store(t, n+4, 0xDEADBEEF) // garbage data, never scanned
		nodes = append(nodes, n)
		prev = n
	}
	f.m.MarkValue(mem.Word(nodes[0]))
	f.m.Drain()
	for _, n := range nodes {
		if !f.heap.Marked(n) {
			t.Fatalf("typed chain node %#x unmarked", uint32(n))
		}
	}
}
