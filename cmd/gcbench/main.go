// Command gcbench regenerates every table and figure from "Space
// Efficient Conservative Garbage Collection" (Boehm, PLDI 1993) on the
// simulated-machine reproduction.
//
// Usage:
//
//	gcbench -experiment all
//	gcbench -experiment table1 -seeds 5 -parallel 8
//	gcbench -experiment stackclear
//
// Experiments (see DESIGN.md for the paper mapping):
//
//	table1      E1: program T retention with/without blacklisting
//	figure1     E2: small-integer concatenation misidentification
//	stackclear  E5: apparently-live cells vs stack hygiene
//	grids       E4: embedded vs separate links (figures 3/4)
//	structures  E6: trees, queues, lazy streams
//	overhead    E7: blacklisting cost, allocation latency (footnote 3)
//	largeobj    E8: large objects vs the blacklist (observation 7)
//	pcrsweep    E9: PCR retention vs Cedar world size (appendix B)
//	frag        E10: address-ordered vs LIFO free blocks (conclusions)
//	dualrun     E11: dual-run offset certification (footnote 4)
//	genceiling  E12: stray stack pointers vs generational collection (§3.1)
//	placement   E13: heap placement in the address space (§2)
//	atomic      E14: pointer-free allocation for compressed data (§2)
//	typed       E15: conservative vs exact heap layouts (introduction)
//	pauses      E16: stop-the-world vs incremental vs generational pauses
//	obs5        E17: residual references die under continued execution
//	markbench   parallel mark-phase scaling by worker count
//	sweepbench  collection pauses, eager vs lazy sweeping (plus markbench)
//	mutbench    concurrent-mutator allocation throughput by mutator count
//	allocbench  free-list vs line-heap allocation profiles by mutator count
//	pausebench  stop-the-world vs mostly-concurrent marking pause percentiles
//	servebench  multi-tenant serving: per-tenant budgets under three policies
//	soak        long multi-mutator churn with per-cycle integrity audits
//	tenantsoak  wall-clock-bounded multi-tenant churn with per-round audits
//	retention   spurious-retention attribution on the section-4 lazy stream
//	leakbench   online leak watcher: planted slow leak vs churn control
//	leaksoak    wall-clock-bounded watcher soak on a concurrent-marking world
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/stats"
)

var (
	experiment = flag.String("experiment", "all", "experiment to run (table1|figure1|stackclear|grids|structures|overhead|largeobj|pcrsweep|frag|dualrun|genceiling|placement|atomic|typed|pauses|obs5|markbench|sweepbench|mutbench|allocbench|pausebench|servebench|soak|tenantsoak|retention|leakbench|leaksoak|all)")
	seeds      = flag.Int("seeds", 3, "seeds per table-1 and pcrsweep cell")
	parallel   = flag.Int("parallel", 8, "concurrent runs for table-1 style sweeps")
	seed       = flag.Uint64("seed", 1, "base seed for single-run experiments")
	format     = flag.String("format", "text", "table output format: text|markdown")
	benchJSON  = flag.String("benchjson", "", "write markbench/sweepbench results as JSON to this file")
	workers    = flag.String("workers", "", "comma-separated markbench worker counts (default: powers of two up to GOMAXPROCS)")
	mutators   = flag.String("mutators", "", "comma-separated mutbench mutator counts, or the soak mutator count (default: powers of two up to GOMAXPROCS; soak: 8)")
	soakCycles = flag.Int("soak-cycles", 20, "soak rounds (each ends in a collection and an integrity audit)")
	tenants    = flag.Int("tenants", 0, "servebench/tenantsoak tenant count (servebench default: 1000; tenantsoak: 64)")
	requests   = flag.Int("requests", 0, "servebench collect-first requests per session (default: 12)")
	soakSecs   = flag.Int("soak-seconds", 60, "tenantsoak wall-clock budget in seconds")
	traceOut   = flag.String("trace", "", "write a JSON event trace of markbench/sweepbench collections to this file")
)

// benchTracer returns the shared trace recorder for the bench
// experiments, creating it on first use when -trace is set.
var benchTracer *repro.TraceRecorder

func getBenchTracer() *repro.TraceRecorder {
	if *traceOut != "" && benchTracer == nil {
		benchTracer = repro.NewTraceRecorder(0)
	}
	return benchTracer
}

// writeTrace flushes the recorder to the -trace file, if both exist.
func writeTrace() error {
	if *traceOut == "" || benchTracer == nil {
		return nil
	}
	f, err := os.Create(*traceOut)
	if err != nil {
		return err
	}
	if err := benchTracer.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d events, %d dropped)\n",
		*traceOut, min(benchTracer.Emitted(), uint64(benchTracer.Capacity())), benchTracer.Dropped())
	return nil
}

// printTable renders a result table in the selected format.
func printTable(tab *stats.Table) {
	if *format == "markdown" {
		fmt.Println(tab.Markdown())
		return
	}
	fmt.Println(tab)
}

func main() {
	flag.Parse()
	runners := map[string]func() error{
		"table1":     runTable1,
		"genceiling": runGenCeiling,
		"placement":  runPlacement,
		"typed":      runTyped,
		"pauses":     runPauses,
		"obs5":       runObs5,
		"atomic":     runAtomic,
		"figure1":    runFigure1,
		"stackclear": runStackClear,
		"grids":      runGrids,
		"structures": runStructures,
		"overhead":   runOverhead,
		"largeobj":   runLargeObj,
		"pcrsweep":   runPCRSweep,
		"frag":       runFrag,
		"dualrun":    runDualRun,
		"markbench":  runMarkBench,
		"sweepbench": runSweepBench,
		"mutbench":   runMutBench,
		"allocbench": runAllocBench,
		"pausebench": runPauseBench,
		"servebench": runServeBench,
		"soak":       runSoak,
		"tenantsoak": runTenantSoak,
		"retention":  runRetention,
		"leakbench":  runLeakBench,
		"leaksoak":   runLeakSoak,
	}
	order := []string{
		"table1", "figure1", "stackclear", "grids", "structures",
		"overhead", "largeobj", "pcrsweep", "frag", "dualrun", "genceiling",
		"placement", "atomic", "typed", "pauses", "obs5", "markbench",
		"sweepbench", "mutbench", "allocbench", "pausebench", "servebench",
		"retention", "leakbench",
	}
	var todo []string
	if *experiment == "all" {
		todo = order
	} else if _, ok := runners[*experiment]; ok {
		todo = []string{*experiment}
	} else {
		fmt.Fprintf(os.Stderr, "gcbench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
	for _, name := range todo {
		start := time.Now()
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func runTable1() error {
	fmt.Println("Running table 1: 9 configurations x 2 blacklist modes x",
		*seeds, "seeds (full program T each)...")
	_, tab, err := repro.Table1(repro.Table1Options{Seeds: *seeds, Parallel: *parallel})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println(`Paper (table 1):
  SPARC(static)   79-79.5% / 78-78.5%   -> 0-.5% / .5-1%
  SPARC(dynamic)  8-9.5%   / 9-11.5%    -> .5% / 0-.5%
  SGI(static)     1.5-8%   / 1-4%       -> 0% / 0%
  OS/2(static)    28%      / 26%        -> 3% / 1%
  PCR             44.5-55%              -> 1.5-3.5%`)
	return nil
}

func runFigure1() error {
	_, tab, err := repro.Figure1(repro.Figure1Options{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (figure 1): two small integers concatenate to the address 0x00090000;")
	fmt.Println("word-aligned scanning is immune, unaligned scanning is not, and avoiding")
	fmt.Println("allocation at trailing-zero-rich addresses restores immunity.")
	return nil
}

func runStackClear() error {
	_, tab, err := repro.StackClearing(repro.StackClearOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (section 3.1): 40,000-100,000 max apparently-live cells without")
	fmt.Println("clearing; never above 18,000 with cheap clearing; ~2000 optimized.")
	return nil
}

func runGrids() error {
	_, tab, err := repro.Grids(repro.GridsOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (figures 3/4): embedded links retain a large fraction of the grid;")
	fmt.Println("separate cons cells retain at most a single row or column.")
	return nil
}

func runStructures() error {
	_, trees, err := repro.Trees(nil, 0, *seed)
	if err != nil {
		return err
	}
	printTable(trees)
	_, queues, err := repro.QueuesAndStreams(0, 0, *seed)
	if err != nil {
		return err
	}
	printTable(queues)
	fmt.Println("Paper (section 4): tree retention ~ height; queues and lazy lists grow")
	fmt.Println("without bound under one false reference unless links are cleared on removal.")
	return nil
}

func runOverhead() error {
	_, tab, err := repro.Overhead(*seed)
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (footnote 3): blacklisting bookkeeping ~0.2% of collector time,")
	fmt.Println("total overhead usually below 1%; 8-byte alloc+collect ~2us on a SPARC 2.")
	return nil
}

func runLargeObj() error {
	_, tab, err := repro.LargeObjects(repro.LargeObjectsOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (observation 7): with all interior pointers valid it becomes hard to")
	fmt.Println("allocate objects over ~100 KB; base-pointer-only validity has no trouble.")
	return nil
}

func runPCRSweep() error {
	_, tab, err := repro.PCRSweep(nil, *seeds, *parallel)
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (appendix B): 1.5-13 MB of other live data had minimal effect on the")
	fmt.Println("amount of retained storage.")
	return nil
}

func runFrag() error {
	_, tab, err := repro.Fragmentation(repro.FragmentationOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (conclusions): address-sorted free lists make large adjacent chunks")
	fmt.Println("more likely to reform, decreasing fragmentation.")
	return nil
}

func runDualRun() error {
	_, tab, err := repro.DualRun(repro.DualRunOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (footnote 4): two copies of the program with heap bases differing by n;")
	fmt.Println("corresponding values not differing by n are provably non-pointers.")
	return nil
}

func runGenCeiling() error {
	_, tab, err := repro.GenerationalCeiling(repro.GenerationalOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (section 3.1, end): stray stack pointers lengthen object lifetimes,")
	fmt.Println("\"placing a ceiling on the effectiveness of generational collection\".")
	return nil
}

func runPlacement() error {
	_, tab, err := repro.HeapPlacement(repro.HeapPlacementOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (section 2): position the heap where the high-order address bits are")
	fmt.Println("neither all zeros nor all ones, away from character codes and float values.")
	return nil
}

func runAtomic() error {
	_, tab, err := repro.AtomicData(repro.AtomicDataOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (section 2): large pointer-free data (compressed bitmaps) must be")
	fmt.Println("allocated as such, or its contents introduce false pointers wholesale.")
	return nil
}

func runTyped() error {
	_, tab, err := repro.DegreesOfConservatism(repro.ConservatismOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (introduction): implementations vary in their degree of conservativism;")
	fmt.Println("exact heap layouts eliminate misidentification from non-pointer fields.")
	return nil
}

func runPauses() error {
	_, tab, err := repro.Pauses(repro.PausesOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (introduction): \"concurrent collectors that greatly reduce client")
	fmt.Println("pause times\" [8] and generational conservative collectors [13] both exist;")
	fmt.Println("this reproduces their pause profiles on the same substrate.")
	return nil
}

// parseCounts turns a comma-separated count flag into a list.
func parseCounts(flagName, val string) ([]int, error) {
	if val == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(val, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("gcbench: bad %s entry %q", flagName, part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseWorkers turns the -workers flag into a worker-count list.
func parseWorkers() ([]int, error) { return parseCounts("-workers", *workers) }

// parseMutators turns the -mutators flag into a mutator-count list.
func parseMutators() ([]int, error) { return parseCounts("-mutators", *mutators) }

func runMarkBench() error {
	counts, err := parseWorkers()
	if err != nil {
		return err
	}
	res, tab, err := repro.MarkBench(repro.MarkBenchOptions{Workers: counts, Trace: getBenchTracer()})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Parallel marking is not in the paper; it shards the figure-2 mark phase")
	fmt.Println("with CAS mark bits and work stealing, marking the identical object set.")
	fmt.Println("Speedups require real cores: worker counts above GOMAXPROCS serialise,")
	fmt.Println("so those rows are flagged oversubscribed and measure overhead only.")
	if *benchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	return writeTrace()
}

func runSweepBench() error {
	res, tab, err := repro.SweepBench(repro.SweepBenchOptions{Trace: getBenchTracer()})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Lazy sweeping replaces the pause's per-slot heap walk with an O(blocks)")
	fmt.Println("mark-summary scan; the per-slot work is paid during allocation instead.")
	fmt.Println("Reclamation totals are identical by construction (checked above). Unlike")
	fmt.Println("mark speedups, this needs no extra cores, so GOMAXPROCS=1 is honest here.")
	mark, mtab, err := repro.MarkBench(repro.MarkBenchOptions{Trace: getBenchTracer()})
	if err != nil {
		return err
	}
	res.Mark = mark
	printTable(mtab)
	if *benchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	return writeTrace()
}

func runMutBench() error {
	counts, err := parseMutators()
	if err != nil {
		return err
	}
	res, tab, err := repro.MutBench(repro.MutBenchOptions{Mutators: counts, Trace: getBenchTracer()})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Concurrent mutators are not in the paper's measurements, but its collector")
	fmt.Println("serves multi-threaded PCR programs; this measures the per-mutator allocation")
	fmt.Println("caches and the stop-the-world safepoint protocol under allocation churn.")
	fmt.Println("The object count per row is deterministic and gated by cmd/benchgate;")
	fmt.Println("collection counts depend on goroutine interleaving and are informational.")
	if *benchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	return writeTrace()
}

func runAllocBench() error {
	counts, err := parseMutators()
	if err != nil {
		return err
	}
	res, tab, err := repro.AllocBench(repro.AllocBenchOptions{Mutators: counts, Trace: getBenchTracer()})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("The line heap replaces per-slot free-list threading with bump spans carved")
	fmt.Println("over runs of free 256-byte lines; sweeping reclaims at line granularity and")
	fmt.Println("the waste column is the space stranded in partly-live lines. Object counts")
	fmt.Println("per row are deterministic in both profiles and gated by cmd/benchgate.")
	if *benchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	return writeTrace()
}

func runPauseBench() error {
	counts, err := parseMutators()
	if err != nil {
		return err
	}
	opts := repro.PauseBenchOptions{Trace: getBenchTracer()}
	if len(counts) > 0 {
		opts.Mutators = counts[0]
	}
	res, tab, err := repro.PauseBench(opts)
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Both rows replay the same deterministic no-free workload: the live graph")
	fmt.Println("grows all run, so stop-the-world pauses grow with it while concurrent")
	fmt.Println("cycles pause only for the root snapshot and the bounded dirty-block")
	fmt.Println("finale. Object and live counts are exact and gated by cmd/benchgate;")
	fmt.Printf("pause percentiles are advisory timing (p99 reduction here: %.1fx).\n", res.P99ReductionX)
	if *benchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	return writeTrace()
}

func runServeBench() error {
	res, tab, err := repro.ServeBench(repro.ServeBenchOptions{
		Tenants: *tenants, Requests: *requests, Trace: getBenchTracer(),
	})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Each policy row replays one deterministic session tape per tenant against a")
	fmt.Println("fixed budget, so admissions, denials, evictions, reclamation and liveness")
	fmt.Println("are exact and gated by cmd/benchgate; a zero fairness spread means budget")
	fmt.Println("enforcement never leaked between tenants. Latency and pause percentiles")
	fmt.Println("are timing and stay advisory.")
	if *benchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	return writeTrace()
}

// runTenantSoak churns -tenants collect-first tenants (plus one fresh
// evict tenant per round) against one concurrent-marking world until
// the -soak-seconds wall-clock budget runs out. Every round ends in a
// settling collection, a full allocator integrity audit, and an exact
// attribution check for every tenant ever created, so budget-counter
// drift or a slot freed out from under its owner fails the soak even
// when the heap itself stays consistent.
func runTenantSoak() error {
	nTen := *tenants
	if nTen == 0 {
		nTen = 64
	}
	w, err := repro.NewWorld(repro.Config{
		InitialHeapBytes: 8 << 20, ReserveHeapBytes: 64 << 20,
		GCDivisor: 16, ConcurrentMark: true, MarkQuantum: 4096,
		ConcMarkWorkers: 4, ConcurrentSweep: true,
	})
	if err != nil {
		return err
	}
	w.SetTracer(getBenchTracer())
	const slots = 12
	// One root region per persistent tenant, plus a final region the
	// round's evict tenant uses and a maintenance mutator clears after
	// the eviction (so its dangling roots cannot pin later rounds).
	data, err := w.Space.MapNew("roots", repro.KindData, 0x2000,
		(nTen+1)*slots*4, (nTen+1)*slots*4)
	if err != nil {
		return err
	}
	maint := w.NewMutator()
	evictBase := repro.Addr(0x2000 + nTen*slots*4)
	tens := make([]*repro.Tenant, nTen)
	muts := make([]*repro.Mutator, nTen)
	for i := range tens {
		tens[i] = w.NewTenant(repro.TenantConfig{
			Name:        fmt.Sprintf("t%d", i),
			BudgetBytes: 16 * 32, // sixteen 8-word objects
			Policy:      repro.TenantCollectFirst,
		})
		muts[i] = tens[i].NewMutator()
	}
	fmt.Printf("Tenant soak: %d collect-first tenants + 1 evict tenant/round for %ds...\n",
		nTen, *soakSecs)
	deadline := time.Now().Add(time.Duration(*soakSecs) * time.Second)
	round := 0
	for time.Now().Before(deadline) {
		round++
		// One fresh evict tenant per round: an 8-object budget against a
		// 24-attempt leak tape, so it is always evicted mid-session.
		evt := w.NewTenant(repro.TenantConfig{
			Name:        fmt.Sprintf("evict-r%d", round),
			BudgetBytes: 8 * 32,
			Policy:      repro.TenantEvict,
		})
		evm := evt.NewMutator()
		var wg sync.WaitGroup
		errs := make([]error, nTen+1)
		for i := 0; i < nTen; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = repro.RunServeSession(muts[i], data, repro.Addr(0x2000+i*slots*4),
					repro.ServeSessionParams{
						Kind: repro.ServeScheme, Requests: 6, AllocsPerRequest: 4,
						ObjWords: 8, Slots: slots,
						Seed: uint64(round)*0x9e3779b97f4a7c15 + uint64(i) + 1,
					})
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := repro.RunServeSession(evm, data, evictBase,
				repro.ServeSessionParams{
					Kind: repro.ServeLeak, Requests: 6, AllocsPerRequest: 4,
					ObjWords: 8, Slots: slots, Seed: uint64(round) + 1,
				})
			if err == nil && !res.Evicted {
				err = fmt.Errorf("evict tenant finished un-evicted (allocated %d)", res.Allocated)
			}
			errs[nTen] = err
		}()
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("tenant soak round %d, session %d: %w", round, i, err)
			}
		}
		// Clear the evicted tenant's stale roots from a bare mutator (its
		// own handle is cancelled).
		for j := 0; j < slots; j++ {
			if err := maint.Store(evictBase+repro.Addr(4*j), 0); err != nil {
				return err
			}
		}
		// Settle and audit: heap integrity, eviction exactness, and
		// per-tenant attribution for every tenant ever created.
		w.Collect()
		w.FinishSweep()
		if err := w.VerifyIntegrity(); err != nil {
			return fmt.Errorf("tenant soak round %d: %w", round, err)
		}
		if st := evt.Stats(); !st.Evicted || st.LiveBytes != 0 {
			return fmt.Errorf("tenant soak round %d: evict tenant live=%d evicted=%v",
				round, st.LiveBytes, st.Evicted)
		}
		var total uint64
		for _, t := range w.Tenants() {
			st := t.Stats()
			if owned := t.OwnedBytes(); st.LiveBytes != owned {
				return fmt.Errorf("tenant soak round %d: tenant %s live %d bytes vs %d owned",
					round, t.Name(), st.LiveBytes, owned)
			}
			total += st.AllocatedObjects
		}
		if got := w.Heap.Stats().ObjectsAllocated; got != total {
			return fmt.Errorf("tenant soak round %d: central ObjectsAllocated %d, tenants allocated %d",
				round, got, total)
		}
		if round%25 == 0 {
			hs := w.Heap.Stats()
			fmt.Printf("  round %d: %d objs allocated, %d live, %d collections\n",
				round, hs.ObjectsAllocated, hs.ObjectsLive, w.Collections())
		}
	}
	hs := w.Heap.Stats()
	fmt.Printf("Survived %d rounds: %d objects allocated, %d live, %d collections,\n",
		round, hs.ObjectsAllocated, hs.ObjectsLive, w.Collections())
	fmt.Println("every round audited for heap integrity, eviction exactness and per-tenant")
	fmt.Println("attribution (LiveBytes == owned bytes for every tenant ever created).")
	return writeTrace()
}

// runSoak churns -mutators goroutines against one generational +
// lazy-sweep world for -soak-cycles rounds. Every round ends in a
// collection (minor, periodically full) and a full integrity audit, so
// a slot double-carved or leaked through the safepoint flush fails the
// run even if it would take many cycles to corrupt anything visible.
func runSoak() error {
	counts, err := parseMutators()
	if err != nil {
		return err
	}
	nMut := 8
	if len(counts) > 0 {
		nMut = counts[0]
	}
	w, err := repro.NewWorld(repro.Config{
		InitialHeapBytes: 8 << 20, ReserveHeapBytes: 64 << 20,
		Generational: true, MinorDivisor: 8, FullEvery: 4, LazySweep: true,
	})
	if err != nil {
		return err
	}
	w.SetTracer(getBenchTracer())
	const slots = 16
	data, err := w.Space.MapNew("roots", repro.KindData, 0x2000, nMut*slots*4, nMut*slots*4)
	if err != nil {
		return err
	}
	muts := make([]*repro.Mutator, nMut)
	for g := range muts {
		muts[g] = w.NewMutator()
	}
	const allocsPerRound = 4000
	sizes := []int{2, 3, 5, 8, 16, 32}
	fmt.Printf("Soaking %d mutators x %d rounds x %d allocs (generational + lazy sweep)...\n",
		nMut, *soakCycles, allocsPerRound)
	tab := stats.NewTable(
		fmt.Sprintf("Soak: %d mutators, %d allocs/round", nMut, allocsPerRound),
		"round", "kind", "live objs", "heap KB", "flushed slots", "stop us")
	var lastFlushed uint64
	for round := 0; round < *soakCycles; round++ {
		var wg sync.WaitGroup
		errs := make([]error, nMut)
		for g := 0; g < nMut; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				m := muts[g]
				base := repro.Addr(0x2000 + g*slots*4)
				for i := 0; i < allocsPerRound; i++ {
					size := sizes[(i+round)%len(sizes)]
					if i%8 == 0 {
						slot := repro.Addr(4 * ((i >> 3) % slots))
						p, err := m.AllocateRooted(data, base+slot, size, false)
						if err != nil {
							errs[g] = err
							return
						}
						// Occasionally free the object we just rooted: the
						// root still holds it, so it is provably ours.
						if i%64 == 0 {
							if err := m.Free(p); err != nil {
								errs[g] = err
								return
							}
							if err := m.Store(base+slot, 0); err != nil {
								errs[g] = err
								return
							}
						}
					} else if _, err := m.Allocate(size, i%16 == 1); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				return fmt.Errorf("soak round %d, mutator %d: %w", round, g, err)
			}
		}
		var st repro.CollectionStats
		kind := "minor"
		if (round+1)%4 == 0 {
			st = w.Collect()
			kind = "full"
		} else {
			st = w.CollectMinor()
		}
		if err := w.VerifyIntegrity(); err != nil {
			return fmt.Errorf("soak round %d: %w", round, err)
		}
		var flushed uint64
		for _, m := range muts {
			flushed += m.Stats().FlushedSlots
		}
		tab.AddF(round+1, kind,
			st.Sweep.ObjectsLive,
			st.HeapBytes/1024,
			flushed-lastFlushed,
			fmt.Sprintf("%.1f", float64(st.PauseStopNs)/1e3))
		lastFlushed = flushed
	}
	// Conservation over the whole soak: every allocation every round is
	// visible centrally once the final safepoint published them.
	want := uint64(nMut * *soakCycles * allocsPerRound)
	if got := w.Heap.Stats().ObjectsAllocated; got != want {
		return fmt.Errorf("soak: central ObjectsAllocated = %d, mutators performed %d", got, want)
	}
	printTable(tab)
	fmt.Println("Every round survived a safepoint flush, a sticky-mark collection and a")
	fmt.Println("full allocator integrity audit (conservation: live + free + cached slots).")
	return writeTrace()
}

func runRetention() error {
	res, tab, err := repro.RetentionBench(repro.RetentionBenchOptions{Trace: getBenchTracer()})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println(res.GCTrace)
	fmt.Println("Paper (section 4): one stale stack word holding a lazy stream's first cell")
	fmt.Println("retains the whole memoised chain. The retention report re-marks a censored")
	fmt.Println("copy of the roots to attribute the chain as spurious, and the sole-retention")
	fmt.Println("ranking names the guilty slot without being told. Every count is")
	fmt.Println("deterministic and gated exactly by cmd/benchgate; only report ms is timing.")
	if *benchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	return writeTrace()
}

func runLeakBench() error {
	res, tab, err := repro.LeakBench(repro.LeakBenchOptions{Trace: getBenchTracer()})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Online leak detection: the retention watcher samples every 2nd collection at")
	fmt.Println("the cycle barrier, diffs per-root-slot retention snapshots, and alerts on")
	fmt.Println("sustained windowed growth. The planted leak (one monotone list root among")
	fmt.Println("eight churning roots) must be flagged within a bounded cycle count with zero")
	fmt.Println("false positives; the churn-only control must stay silent. Both outcomes are")
	fmt.Println("exact and gated by cmd/benchgate; only elapsed ms is timing.")
	if *benchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	return writeTrace()
}

// runLeakSoak churns allocation against one concurrent-marking world
// with the retention watcher running until the -soak-seconds budget
// runs out: a planted list leaks from one root slot while -mutators
// goroutines churn rooted and unrooted objects. Every round ends in a
// settling collection and a full integrity audit; at the end the
// watcher must have flagged the planted slot and nothing else.
func runLeakSoak() error {
	counts, err := parseMutators()
	if err != nil {
		return err
	}
	nMut := 4
	if len(counts) > 0 {
		nMut = counts[0]
	}
	w, err := repro.NewWorld(repro.Config{
		InitialHeapBytes: 8 << 20, ReserveHeapBytes: 64 << 20,
		GCDivisor: 16, ConcurrentMark: true, MarkQuantum: 4096,
		ConcMarkWorkers: 4, ConcurrentSweep: true,
	})
	if err != nil {
		return err
	}
	w.SetTracer(getBenchTracer())
	const slots = 16
	data, err := w.Space.MapNew("roots", repro.KindData, 0x2000,
		(nMut*slots+1)*4, (nMut*slots+1)*4)
	if err != nil {
		return err
	}
	leakSlot := repro.Addr(0x2000 + nMut*slots*4)
	leakKey := repro.RootSlotID{
		Kind: repro.RootSegment, Src: 0, Index: int32(nMut * slots), Addr: leakSlot,
	}.String()
	alerts, err := w.StartRetentionWatch(repro.WatchConfig{
		SampleEvery: 1, Window: 8, MinGrowthBytes: 4096, Buffer: 4096,
	})
	if err != nil {
		return err
	}
	maint := w.NewMutator()
	muts := make([]*repro.Mutator, nMut)
	for g := range muts {
		muts[g] = w.NewMutator()
	}
	fmt.Printf("Leak soak: %d churn mutators + 1 planted leak, watcher on every cycle, %ds...\n",
		nMut, *soakSecs)
	deadline := time.Now().Add(time.Duration(*soakSecs) * time.Second)
	var leakAlerts, falsePos int
	var firstLeak string
	drain := func() {
		for {
			select {
			case a, ok := <-alerts:
				if !ok {
					return
				}
				if a.Key == leakKey {
					leakAlerts++
					if firstLeak == "" {
						firstLeak = repro.LeakAlertText(a)
					}
				} else {
					falsePos++
					fmt.Printf("  false positive: %s\n", repro.LeakAlertText(a))
				}
			default:
				return
			}
		}
	}
	round := 0
	const allocsPerRound = 2000
	sizes := []int{2, 3, 5, 8, 16}
	for time.Now().Before(deadline) {
		round++
		// The leak: 1024 cells (8 KiB) prepended to the planted list.
		for i := 0; i < 1024; i++ {
			prev, err := maint.Load(leakSlot)
			if err != nil {
				return err
			}
			cell, err := maint.AllocateRooted(data, leakSlot, 2, false)
			if err != nil {
				return err
			}
			if err := maint.Store(cell+4, prev); err != nil {
				return err
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, nMut)
		for g := 0; g < nMut; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				m := muts[g]
				base := repro.Addr(0x2000 + g*slots*4)
				for i := 0; i < allocsPerRound; i++ {
					size := sizes[(i+round)%len(sizes)]
					if i%8 == 0 {
						slot := repro.Addr(4 * ((i >> 3) % slots))
						if _, err := m.AllocateRooted(data, base+slot, size, false); err != nil {
							errs[g] = err
							return
						}
					} else if _, err := m.Allocate(size, i%16 == 1); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				return fmt.Errorf("leak soak round %d, mutator %d: %w", round, g, err)
			}
		}
		w.Collect()
		w.FinishSweep()
		if err := w.VerifyIntegrity(); err != nil {
			return fmt.Errorf("leak soak round %d: %w", round, err)
		}
		drain()
		if round%25 == 0 {
			hs := w.Heap.Stats()
			fmt.Printf("  round %d: %d objs live, %d collections, %d leak alerts\n",
				round, hs.ObjectsLive, w.Collections(), leakAlerts)
		}
	}
	trends := w.StopRetentionWatch()
	drain()
	if leakAlerts == 0 {
		return fmt.Errorf("leak soak: planted leak never alerted in %d rounds (%d trend keys)",
			round, len(trends))
	}
	if falsePos > 0 {
		return fmt.Errorf("leak soak: %d false-positive alerts", falsePos)
	}
	fmt.Printf("Survived %d rounds: %d leak alerts on the planted slot, 0 false positives.\n",
		round, leakAlerts)
	fmt.Printf("first alert: %s\n", firstLeak)
	fmt.Println(w.GCTraceSummary())
	return writeTrace()
}

func runObs5() error {
	_, tab, err := repro.Observation5(repro.Observation5Options{})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (observation 5): references remaining even with blacklisting come from")
	fmt.Println("stack/register residue and are \"eventually overwritten in a longer running")
	fmt.Println("program with more varied stack frames\".")
	return nil
}
