// Leak detective: the paper notes conservative collectors "have also
// been used as a debugging tool for programs that explicitly deallocate
// storage". This example plays that role on the simulated heap: a
// little cache module forgets to drop entries, and the collector's
// reachability view pinpoints both the leak and — using the
// finalisation queue — the exact objects that should have died.
package main

import (
	"fmt"
	"log"

	"repro"
)

// cache is a deliberately buggy LRU-ish cache: evicted entries are
// removed from the table but their cells stay linked on an "eviction
// history" list someone added for debugging and forgot about — a
// classic unbounded structure of the paper's section 4.
type cache struct {
	w       *repro.World
	table   map[int]repro.Addr
	history repro.Addr // cons list of evicted entries (the leak)
	root    *repro.Segment
}

// entryWords: (key, payload, historyNext).
const entryWords = 3

func (c *cache) put(key int) error {
	e, err := c.w.Allocate(entryWords, false)
	if err != nil {
		return err
	}
	c.w.Store(e, repro.Word(key))
	c.w.Store(e+4, repro.Word(0xC0FFEE))
	c.table[key] = e
	// Track every entry so the collector can tell us its fate.
	c.w.RegisterFinalizable(e)
	return c.sync()
}

func (c *cache) evict(key int) error {
	e, ok := c.table[key]
	if !ok {
		return nil
	}
	delete(c.table, key)
	// BUG: the evicted entry is pushed onto the history list, which is
	// still rooted, so it can never be collected.
	c.w.Store(e+8, repro.Word(c.history))
	c.history = e
	return c.sync()
}

// sync mirrors the Go-side table into root memory, since the collector
// only sees the simulated image: slot 0 holds the history head, slots
// 1.. hold live table entries.
func (c *cache) sync() error {
	if err := c.root.Store(0x2000, repro.Word(c.history)); err != nil {
		return err
	}
	i := 1
	for _, e := range c.table {
		if err := c.root.Store(0x2000+repro.Addr(4*i), repro.Word(e)); err != nil {
			return err
		}
		i++
	}
	for ; i < 256; i++ {
		if err := c.root.Store(0x2000+repro.Addr(4*i), 0); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	w, err := repro.NewWorld(repro.Config{
		InitialHeapBytes: 1 << 20,
		ReserveHeapBytes: 8 << 20,
		Blacklisting:     repro.BlacklistDense,
	})
	if err != nil {
		log.Fatal(err)
	}
	root, err := w.Space.MapNew("cache.roots", repro.KindData, 0x2000, 4096, 4096)
	if err != nil {
		log.Fatal(err)
	}
	c := &cache{w: w, table: map[int]repro.Addr{}, root: root}

	// Churn: insert 200 entries, evict 150.
	for k := 0; k < 200; k++ {
		if err := c.put(k); err != nil {
			log.Fatal(err)
		}
	}
	for k := 0; k < 150; k++ {
		if err := c.evict(k); err != nil {
			log.Fatal(err)
		}
	}

	st := w.Collect()
	reclaimed := w.DrainReclaimed()
	fmt.Printf("after churn: %d entries in table, %d evicted\n", len(c.table), 150)
	fmt.Printf("collector view: %d objects live, %d reclaimed\n",
		st.Sweep.ObjectsLive, len(reclaimed))
	fmt.Printf("=> %d evicted entries are still reachable: a leak!\n",
		150-len(reclaimed))

	// Diagnose: which root still points at a leaked entry? Scan root
	// memory for heap values, exactly as the collector does.
	for i := 0; i < 256; i++ {
		v, _ := root.Load(0x2000 + repro.Addr(4*i))
		if v != 0 {
			if base, ok := w.Heap.FindObject(repro.Addr(v), false); ok {
				key, _ := w.Load(base)
				if _, live := c.table[int(key)]; !live {
					fmt.Printf("root slot %d still references evicted entry (key=%d): "+
						"the eviction-history list\n", i, key)
					break
				}
			}
		}
	}

	// Fix the bug: drop the history list and clear the stale link
	// fields (the paper: "clearing links is much safer than explicit
	// deallocation").
	c.history = 0
	if err := c.sync(); err != nil {
		log.Fatal(err)
	}
	w.Collect()
	fmt.Printf("after dropping the history root: %d more entries reclaimed\n",
		len(w.DrainReclaimed()))
	fmt.Printf("live objects now: %d (the %d entries still in the table)\n",
		w.Heap.Stats().ObjectsLive, len(c.table))
}
