package core

import (
	"testing"

	"repro/internal/mem"
)

// Tests for detached background marking (Config.ConcMarkWorkers > 1):
// the sharded no-world-lock cycle must mark and sweep exactly what the
// single-driver lock-chunked cycle (and hence a stop-the-world
// collection) does, and the insertion barrier must still defeat the
// hide-behind-black race when the hiding store races real background
// workers.

// TestDetachedMarkingDifferential compares a detached cycle (4
// background workers pulling without the world lock) against the
// lock-chunked oracle (ConcMarkWorkers: 1, the pre-detached path) on
// identical quiesced heaps, across the collector modes detachment
// composes with. The CAS mark bits admit one winner per object, so
// the marked object set, byte totals and reclamation must be
// identical even though which shard marks each object is scheduling-
// dependent.
func TestDetachedMarkingDifferential(t *testing.T) {
	configs := map[string]Config{
		"full": {GCDivisor: -1},
		"gen":  {Generational: true, GCDivisor: -1, MinorDivisor: -1},
		"lazy": {GCDivisor: -1, LazySweep: true},
		"line": {GCDivisor: -1, LineAlloc: true},
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			run := func(workers int) (CollectionStats, map[mem.Addr]bool, int) {
				c := cfg
				c.ConcurrentMark = true
				c.ConcMarkWorkers = workers
				w := newWorld(t, c)
				addData(t, w, "data", 0x2000, 4096)
				allocs := concBuildGraph(t, directDriver{w})
				if err := w.StartConcurrentCycle(); err != nil {
					t.Fatal(err)
				}
				// No steps-taken floor here: detached workers may finish
				// the whole gray set before the first explicit step.
				for steps := 0; !w.ConcurrentStep(16); steps++ {
					if steps > 1_000_000 {
						t.Fatal("cycle did not terminate")
					}
				}
				st := w.LastCollection()
				w.FinishSweep()
				return st, liveSet(w), allocs
			}
			oracle, oracleLive, oracleAllocs := run(1)
			det, detLive, detAllocs := run(4)
			if oracleAllocs != detAllocs {
				t.Fatalf("setup diverged: %d vs %d allocations", oracleAllocs, detAllocs)
			}
			if oracle.ConcWorkers != 0 {
				t.Fatalf("lock-chunked cycle reports ConcWorkers=%d, want 0", oracle.ConcWorkers)
			}
			if det.ConcWorkers != 4 {
				t.Fatalf("detached cycle reports ConcWorkers=%d, want 4", det.ConcWorkers)
			}
			if det.Mark.ObjectsMarked != oracle.Mark.ObjectsMarked ||
				det.Mark.BytesMarked != oracle.Mark.BytesMarked {
				t.Fatalf("mark outcome diverges: detached %d objects/%d bytes, oracle %d/%d",
					det.Mark.ObjectsMarked, det.Mark.BytesMarked,
					oracle.Mark.ObjectsMarked, oracle.Mark.BytesMarked)
			}
			if det.Sweep != oracle.Sweep {
				t.Fatalf("sweep diverges:\ndetached %+v\noracle   %+v", det.Sweep, oracle.Sweep)
			}
			if len(detLive) != len(oracleLive) {
				t.Fatalf("live sets diverge: %d vs %d objects", len(detLive), len(oracleLive))
			}
			for a := range oracleLive {
				if !detLive[a] {
					t.Fatalf("object %#x live under oracle, missing under detached cycle", uint32(a))
				}
			}
		})
	}
}

// TestDetachedLostObject is the adversarial barrier test against real
// background workers: hide the only pointer to an object inside a
// possibly-already-scanned object and erase the other path, while 4
// detached workers race the stores. Unlike the lock-chunked variant
// the race window cannot be opened deterministically (a worker may
// mark x before the hide lands), so the assertion is the soundness
// outcome only: x must survive and exactly the one garbage object
// must be reclaimed, every time.
func TestDetachedLostObject(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		w := newWorld(t, Config{ConcurrentMark: true, ConcMarkWorkers: 4, GCDivisor: -1})
		data := addData(t, w, "data", 0x2000, 4096)
		alloc2 := func() mem.Addr {
			p, err := w.Allocate(2, false)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		c1 := alloc2()
		black := alloc2()
		x := alloc2()
		_ = alloc2() // garbage
		if err := data.Store(0x2000, mem.Word(c1)); err != nil {
			t.Fatal(err)
		}
		if err := data.Store(0x2004, mem.Word(black)); err != nil {
			t.Fatal(err)
		}
		if err := w.Store(c1, mem.Word(x)); err != nil {
			t.Fatal(err)
		}
		if err := w.StartConcurrentCycle(); err != nil {
			t.Fatal(err)
		}
		// The hide, racing the workers: x's only pointer moves into
		// `black`, the path through c1 is erased. Both stores dirty
		// their cards under w.mu.
		if err := w.Store(black, mem.Word(x)); err != nil {
			t.Fatal(err)
		}
		if err := w.Store(c1, 0); err != nil {
			t.Fatal(err)
		}
		for steps := 0; !w.ConcurrentStep(1); steps++ {
			if steps > 100_000 {
				t.Fatal("cycle did not terminate")
			}
		}
		st := w.LastCollection()
		if st.Sweep.ObjectsFreed != 1 {
			t.Fatalf("iter %d: sweep freed %d objects, want exactly the 1 garbage object",
				iter, st.Sweep.ObjectsFreed)
		}
		if st.Sweep.ObjectsLive != 3 {
			t.Fatalf("iter %d: sweep saw %d live objects, want 3 (c1, black, x)",
				iter, st.Sweep.ObjectsLive)
		}
	}
}

// TestDetachedConfigValidation pins the knob's edges: negative worker
// counts are rejected at construction, and ConcurrentSweep implies
// LazySweep in the resolved configuration.
func TestDetachedConfigValidation(t *testing.T) {
	if _, err := NewWorld(nil, Config{ConcurrentMark: true, ConcMarkWorkers: -1}); err == nil {
		t.Fatal("NewWorld accepted ConcMarkWorkers: -1")
	}
	w := newWorld(t, Config{ConcurrentSweep: true})
	if !w.Config().LazySweep {
		t.Fatal("ConcurrentSweep did not imply LazySweep")
	}
}
