package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mem"
)

// Concurrency battery: N goroutines allocate, link, free and collect
// through their own Mutator handles while the allocator's slot
// accounting is audited mid-flight. Runs under -race via `make race`.
//
// The liveness discipline mirrors a real mutator: every object a
// goroutine intends to revisit is rooted *atomically with its
// allocation* (AllocateRooted), because between a plain Allocate
// returning and a root store landing, another mutator's collection
// could reclaim — and another handle re-carve — the slot. Objects
// allocated without rooting are pure garbage and never touched again.

// churnMutator is one battery goroutine's script: ops operations mixed
// from rooted allocations, garbage allocations, links between own live
// objects, explicit frees, and collections. Returns how many objects
// it successfully allocated.
func churnMutator(w *World, m *Mutator, data *mem.Segment, base mem.Addr, seed uint32, ops int) (uint64, error) {
	const slots = 16
	var roots [slots]mem.Addr
	var atomicRoot [slots]bool
	sizes := []int{1, 2, 3, 5, 8, 12, 16, 32, 64, 128, 600}
	rng := seed
	next := func(n uint32) uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng % n
	}
	var allocs uint64
	for i := 0; i < ops; i++ {
		size := sizes[next(uint32(len(sizes)))]
		switch next(10) {
		case 0, 1, 2, 3, 4:
			// Allocate rooted into one of this goroutine's private data
			// slots; whatever the slot held becomes garbage.
			j := next(slots)
			atomic := next(5) == 0
			p, err := m.AllocateRooted(data, base+mem.Addr(4*j), size, atomic)
			if err != nil {
				return allocs, err
			}
			allocs++
			roots[j] = p
			atomicRoot[j] = atomic
		case 5, 6, 7:
			// Garbage: allocated, never rooted, never touched again.
			if _, err := m.Allocate(size, next(5) == 0); err != nil {
				return allocs, err
			}
			allocs++
		case 8:
			// Link one of our live objects into another. Both are rooted,
			// so both are guaranteed allocated; the target must not be
			// atomic (pointer-free objects hold no pointers).
			j, k := next(slots), next(slots)
			if roots[j] != 0 && !atomicRoot[j] && roots[k] != 0 {
				if err := m.Store(roots[j], mem.Word(roots[k])); err != nil {
					return allocs, err
				}
			}
		case 9:
			// Free one of our rooted objects: rooted continuously since
			// allocation, so still allocated and owned by us. Free first,
			// clear the root after — the brief stale root is harmless,
			// while the reverse order would leave an unrooted live window.
			j := next(slots)
			if roots[j] != 0 {
				if err := m.Free(roots[j]); err != nil {
					return allocs, err
				}
				if err := m.Store(base+mem.Addr(4*j), 0); err != nil {
					return allocs, err
				}
				roots[j] = 0
			}
		}
		if next(97) == 0 {
			if next(2) == 0 {
				m.Collect()
			} else {
				m.CollectMinor()
			}
		}
		if i%64 == 63 {
			if err := w.VerifyIntegrity(); err != nil {
				return allocs, fmt.Errorf("op %d: %w", i, err)
			}
		}
	}
	return allocs, nil
}

// TestConcurrentMutatorBattery runs the battery across collector
// configurations: every mode's safepoint protocol must flush caches
// and park mutators such that no slot is ever carved twice and the
// central allocation stats stay exact.
func TestConcurrentMutatorBattery(t *testing.T) {
	configs := map[string]Config{
		"full":          {GCDivisor: 6},
		"gen-lazy":      {Generational: true, MinorDivisor: 6, FullEvery: 3, LazySweep: true},
		"par-lazy":      {GCDivisor: 6, MarkWorkers: 4, LazySweep: true},
		"incremental":   {Incremental: true, GCDivisor: 6, MarkQuantum: 64},
		"line":          {GCDivisor: 6, LineAlloc: true},
		"line-gen-lazy": {Generational: true, MinorDivisor: 6, FullEvery: 3, LazySweep: true, LineAlloc: true},
		"line-par-lazy": {GCDivisor: 6, MarkWorkers: 4, LazySweep: true, LineAlloc: true},
		// Concurrent marking: cycles trigger on allocation pressure and
		// mark on a background driver goroutine while the battery's
		// mutators keep storing through the insertion barrier.
		"conc":          {ConcurrentMark: true, GCDivisor: 6},
		"conc-par":      {ConcurrentMark: true, GCDivisor: 6, MarkWorkers: 4, LazySweep: true},
		"conc-gen-lazy": {ConcurrentMark: true, Generational: true, MinorDivisor: 6, FullEvery: 3, LazySweep: true},
		"conc-line":     {ConcurrentMark: true, GCDivisor: 6, LineAlloc: true},
		// Detached background marking plus the background sweeper: four
		// worker goroutines pull the gray set without the world lock
		// while the mutators allocate, store, and free. The race battery
		// entry for the full no-lock machinery (CAS mark bits, atomic
		// heap words, heapMu exclusion, pacer assists).
		"conc-workers": {ConcurrentMark: true, GCDivisor: 6, ConcMarkWorkers: 4, ConcurrentSweep: true},
	}
	const nMut = 8
	ops := 400
	if testing.Short() {
		ops = 120
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, cfg)
			const slotBytes = 16 * 4
			data := addData(t, w, "roots", 0x2000, nMut*slotBytes)
			muts := make([]*Mutator, nMut)
			for g := range muts {
				muts[g] = w.NewMutator()
			}
			var (
				wg     sync.WaitGroup
				counts [nMut]uint64
				errs   [nMut]error
			)
			for g := 0; g < nMut; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := mem.Addr(0x2000 + g*slotBytes)
					counts[g], errs[g] = churnMutator(w, muts[g], data, base, uint32(g)*2654435761+1, ops)
				}(g)
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Fatalf("mutator %d: %v", g, err)
				}
			}
			w.Collect()
			w.FinishSweep()
			if err := w.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
			// Conservation of objects: every successful allocation — fast
			// path or slow — is visible in the central stats after the
			// final safepoint published all local counters.
			var total uint64
			for _, c := range counts {
				total += c
			}
			if got := w.Heap.Stats().ObjectsAllocated; got != total {
				t.Fatalf("central ObjectsAllocated = %d, mutators allocated %d", got, total)
			}
			// No double-carve: the goroutines' surviving roots are
			// pairwise distinct addresses.
			seen := make(map[mem.Addr]int)
			for g := 0; g < nMut; g++ {
				for j := 0; j < 16; j++ {
					v, err := w.Load(mem.Addr(0x2000 + g*slotBytes + 4*j))
					if err != nil {
						t.Fatal(err)
					}
					if v == 0 {
						continue
					}
					if prev, dup := seen[mem.Addr(v)]; dup {
						t.Fatalf("address %#x rooted by mutators %d and %d", uint32(v), prev, g)
					}
					seen[mem.Addr(v)] = g
				}
			}
		})
	}
}

// TestConcurrentMutatorStress is a heavier single-config run with more
// mutators than GOMAXPROCS typically provides, forcing preemption
// inside the fast path and contention on the central lock.
func TestConcurrentMutatorStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress battery skipped in -short")
	}
	cfg := Config{Generational: true, MinorDivisor: 5, FullEvery: 4, MarkWorkers: 4, LazySweep: true}
	w := newWorld(t, cfg)
	const nMut = 16
	const slotBytes = 16 * 4
	data := addData(t, w, "roots", 0x2000, nMut*slotBytes)
	var (
		wg     sync.WaitGroup
		counts [nMut]uint64
		errs   [nMut]error
	)
	for g := 0; g < nMut; g++ {
		m := w.NewMutator()
		wg.Add(1)
		go func(g int, m *Mutator) {
			defer wg.Done()
			base := mem.Addr(0x2000 + g*slotBytes)
			counts[g], errs[g] = churnMutator(w, m, data, base, uint32(g)*0x9e3779b9+7, 500)
		}(g, m)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("mutator %d: %v", g, err)
		}
	}
	w.Collect()
	if err := w.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if got := w.Heap.Stats().ObjectsAllocated; got != total {
		t.Fatalf("central ObjectsAllocated = %d, mutators allocated %d", got, total)
	}
}

// FuzzConcurrentAlloc fuzzes interleavings of allocation sizes, atomic
// flags, frees, links and collection triggers across 2–4 concurrent
// mutators. Each input byte is one operation for one mutator
// (round-robin): 2 op bits, 3 slot bits, 3 size bits. The invariants
// are the battery's: no operation errors, the final integrity audit
// passes, and the object count is conserved.
func FuzzConcurrentAlloc(f *testing.F) {
	f.Add(uint8(2), uint8(0), []byte{0x00, 0x41, 0x9a, 0xe3, 0x07, 0xff, 0x22, 0x6d})
	f.Add(uint8(3), uint8(2), []byte{0xe0, 0xe4, 0xe8, 0x02, 0x03, 0x83, 0x43, 0x23, 0x13, 0x0b})
	f.Add(uint8(4), uint8(3), []byte{0x00, 0x01, 0x02, 0x03, 0x40, 0x41, 0x42, 0x43, 0x80, 0x81, 0x82, 0x83, 0xc0, 0xc1, 0xc2, 0xc3})
	f.Add(uint8(4), uint8(4), []byte{0x07, 0x07, 0x07, 0x07, 0x0f, 0x0f, 0x0f, 0x0f, 0xc3, 0xc7, 0xcb, 0xcf})
	fuzzConcurrent(f, []Config{
		{GCDivisor: 4},
		{GCDivisor: 4, LazySweep: true},
		{Generational: true, MinorDivisor: 5, FullEvery: 2, LazySweep: true},
		{Incremental: true, GCDivisor: 4, MarkQuantum: 32},
		{GCDivisor: 4, MarkWorkers: 2, LazySweep: true},
	})
}

// FuzzLineAlloc is the bump-profile variant: the same interleaving
// fuzz across 2–4 concurrent mutators, with every configuration under
// Config.LineAlloc. Span carves, safepoint span flushes, and the freed
// LIFO replace run carves and free-list threading on these paths.
func FuzzLineAlloc(f *testing.F) {
	f.Add(uint8(2), uint8(0), []byte{0x00, 0x41, 0x9a, 0xe3, 0x07, 0xff, 0x22, 0x6d})
	f.Add(uint8(3), uint8(1), []byte{0xe0, 0xe4, 0xe8, 0x02, 0x03, 0x83, 0x43, 0x23, 0x13, 0x0b})
	f.Add(uint8(4), uint8(2), []byte{0x07, 0x07, 0x07, 0x07, 0x0f, 0x0f, 0x0f, 0x0f, 0xc3, 0xc7, 0xcb, 0xcf})
	fuzzConcurrent(f, []Config{
		{GCDivisor: 4, LineAlloc: true},
		{GCDivisor: 4, LazySweep: true, LineAlloc: true},
		{Generational: true, MinorDivisor: 5, FullEvery: 2, LazySweep: true, LineAlloc: true},
		{GCDivisor: 4, MarkWorkers: 2, LazySweep: true, LineAlloc: true},
	})
}

// fuzzConcurrent is the shared fuzz body; mode selects from cfgs.
func fuzzConcurrent(f *testing.F, cfgs []Config) {
	f.Fuzz(func(t *testing.T, nm, mode uint8, prog []byte) {
		nMut := 2 + int(nm)%3
		if len(prog) > 512 {
			prog = prog[:512]
		}
		cfg := cfgs[int(mode)%len(cfgs)]
		w := newWorld(t, cfg)
		const slots = 8
		const slotBytes = slots * 4
		data := addData(t, w, "roots", 0x2000, 4*slotBytes)

		// Deal the program round-robin: byte i goes to mutator i%nMut.
		progs := make([][]byte, nMut)
		for i, b := range prog {
			progs[i%nMut] = append(progs[i%nMut], b)
		}
		sizes := []int{1, 2, 4, 8, 16, 32, 64, 600}
		var (
			wg     sync.WaitGroup
			counts = make([]uint64, nMut)
			errs   = make([]error, nMut)
		)
		for g := 0; g < nMut; g++ {
			m := w.NewMutator()
			wg.Add(1)
			go func(g int, m *Mutator, ops []byte) {
				defer wg.Done()
				base := mem.Addr(0x2000 + g*slotBytes)
				var roots [slots]mem.Addr
				var atomicRoot [slots]bool
				for _, b := range ops {
					op := b & 3
					j := uint32(b>>2) & 7
					si := int(b >> 5)
					switch op {
					case 0, 1: // rooted allocation (op 1: atomic)
						p, err := m.AllocateRooted(data, base+mem.Addr(4*j), sizes[si], op == 1)
						if err != nil {
							errs[g] = err
							return
						}
						counts[g]++
						roots[j] = p
						atomicRoot[j] = op == 1
					case 2: // free the rooted object, then clear the root
						if roots[j] == 0 {
							continue
						}
						if err := m.Free(roots[j]); err != nil {
							errs[g] = err
							return
						}
						if err := m.Store(base+mem.Addr(4*j), 0); err != nil {
							errs[g] = err
							return
						}
						roots[j] = 0
					case 3: // link, collect, or garbage, by size bits
						switch si % 4 {
						case 0:
							m.Collect()
						case 1:
							m.CollectMinor()
						case 2:
							if _, err := m.Allocate(sizes[si], false); err != nil {
								errs[g] = err
								return
							}
							counts[g]++
						case 3:
							k := (j + 1) % slots
							if roots[j] != 0 && !atomicRoot[j] && roots[k] != 0 {
								if err := m.Store(roots[j], mem.Word(roots[k])); err != nil {
									errs[g] = err
									return
								}
							}
						}
					}
				}
			}(g, m, progs[g])
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				t.Fatalf("mutator %d: %v", g, err)
			}
		}
		w.Collect()
		w.FinishSweep()
		if err := w.VerifyIntegrity(); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, c := range counts {
			total += c
		}
		if got := w.Heap.Stats().ObjectsAllocated; got != total {
			t.Fatalf("central ObjectsAllocated = %d, mutators allocated %d", got, total)
		}
	})
}
