package core

import (
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/simrand"
)

// Tenant battery: budget-enforcement soundness across the collector
// configurations. The contracts under test are exact, not advisory —
// TenantFail denies at precisely the budget boundary, CollectFirst
// fails only after a fresh full collection proved the budget is truly
// exhausted, and Evict reclaims exactly the tenant's objects and
// nothing else.

// tenantBatteryConfigs is the seven-config matrix the ISSUE pins: the
// plain collector, the generational/parallel/lazy combinations, the
// incremental and line-heap profiles, and both concurrent shapes
// (lock-chunked driver and detached workers with background sweep).
var tenantBatteryConfigs = map[string]Config{
	"full":         {GCDivisor: 6},
	"gen-lazy":     {Generational: true, MinorDivisor: 6, FullEvery: 3, LazySweep: true},
	"par-lazy":     {GCDivisor: 6, MarkWorkers: 4, LazySweep: true},
	"incremental":  {Incremental: true, GCDivisor: 6, MarkQuantum: 64},
	"line":         {GCDivisor: 6, LineAlloc: true},
	"conc":         {ConcurrentMark: true, GCDivisor: 6},
	"conc-workers": {ConcurrentMark: true, GCDivisor: 6, ConcMarkWorkers: 4, ConcurrentSweep: true},
}

// settleHeap drives the world to a fully-reconciled state: a fresh
// full collection (landing any in-flight cycle first), the deferred
// sweeps, and one more collection so the barrier reconcile sees the
// final sweep's verdicts.
func settleHeap(w *World) {
	w.Collect()
	w.FinishSweep()
	w.Collect()
	w.FinishSweep()
}

// TestTenantFailBoundary pins the hard-limit contract: a budget of
// exactly K object charges admits exactly K allocations, the K+1st
// fails with a typed *BudgetError, and reclaiming one object's bytes
// re-admits exactly one allocation.
func TestTenantFailBoundary(t *testing.T) {
	const objWords = 8
	const k = 50
	charge := tenantChargeBytes(objWords)
	for name, cfg := range tenantBatteryConfigs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, cfg)
			data := addData(t, w, "roots", 0x2000, (k+1)*4)
			ten := w.NewTenant(TenantConfig{Name: "cap", BudgetBytes: k * charge, Policy: TenantFail})
			m := ten.NewMutator()
			for i := 0; i < k; i++ {
				if _, err := m.AllocateRooted(data, 0x2000+mem.Addr(4*i), objWords, false); err != nil {
					t.Fatalf("allocation %d under budget: %v", i, err)
				}
			}
			if got := ten.Stats().LiveBytes; got != k*charge {
				t.Fatalf("LiveBytes = %d, want %d (budget full)", got, k*charge)
			}
			// The boundary: every object is rooted, so no remedy exists.
			_, err := m.Allocate(objWords, false)
			if !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("over-budget allocation: err = %v, want ErrBudgetExceeded", err)
			}
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("over-budget allocation: err %T does not unwrap to *BudgetError", err)
			}
			if be.Tenant != "cap" || be.Requested != charge || be.Live != k*charge || be.Budget != k*charge {
				t.Fatalf("BudgetError = %+v, want {cap %d %d %d}", be, charge, k*charge, k*charge)
			}
			if st := ten.Stats(); st.BudgetDenials != 1 || st.AllocatedObjects != k {
				t.Fatalf("stats after denial = %+v, want 1 denial, %d allocs", st, k)
			}
			// Unroot one object; after a settled collection its bytes are
			// credited and exactly one more allocation fits.
			if err := w.Store(0x2000, 0); err != nil {
				t.Fatal(err)
			}
			settleHeap(w)
			if got := ten.Stats().ReclaimedObjects; got != 1 {
				t.Fatalf("ReclaimedObjects after unroot+collect = %d, want 1", got)
			}
			if _, err := m.AllocateRooted(data, 0x2000, objWords, false); err != nil {
				t.Fatalf("allocation after reclaim: %v", err)
			}
			if _, err := m.Allocate(objWords, false); !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("second over-budget allocation: err = %v, want ErrBudgetExceeded", err)
			}
			if err := w.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTenantCollectFirst pins the collect-first contract in both
// directions: garbage the tenant already dropped is reclaimed by a
// forced collection instead of denying, and a denial happens only
// after a full collection actually ran and proved the budget is
// exhausted by live objects.
func TestTenantCollectFirst(t *testing.T) {
	const objWords = 8
	const k = 40
	charge := tenantChargeBytes(objWords)
	for name, cfg := range tenantBatteryConfigs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Run("reclaims", func(t *testing.T) {
				w := newWorld(t, cfg)
				data := addData(t, w, "roots", 0x2000, k*4)
				ten := w.NewTenant(TenantConfig{BudgetBytes: k * charge, Policy: TenantCollectFirst})
				m := ten.NewMutator()
				for i := 0; i < k; i++ {
					if _, err := m.AllocateRooted(data, 0x2000+mem.Addr(4*i), objWords, false); err != nil {
						t.Fatal(err)
					}
				}
				// Drop every root: the whole budget is garbage now, but
				// only a collection can prove it.
				for i := 0; i < k; i++ {
					if err := w.Store(0x2000+mem.Addr(4*i), 0); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := m.AllocateRooted(data, 0x2000, objWords, false); err != nil {
					t.Fatalf("allocation with reclaimable garbage: %v", err)
				}
				st := ten.Stats()
				if st.ForcedCollections == 0 {
					t.Fatal("no forced collection recorded")
				}
				if st.BudgetDenials != 0 {
					t.Fatalf("BudgetDenials = %d, want 0", st.BudgetDenials)
				}
				if st.ReclaimedObjects < k {
					t.Fatalf("ReclaimedObjects = %d, want >= %d", st.ReclaimedObjects, k)
				}
				if err := w.VerifyIntegrity(); err != nil {
					t.Fatal(err)
				}
			})
			t.Run("denies-only-after-collection", func(t *testing.T) {
				w := newWorld(t, cfg)
				data := addData(t, w, "roots", 0x2000, k*4)
				ten := w.NewTenant(TenantConfig{BudgetBytes: k * charge, Policy: TenantCollectFirst})
				m := ten.NewMutator()
				for i := 0; i < k; i++ {
					if _, err := m.AllocateRooted(data, 0x2000+mem.Addr(4*i), objWords, false); err != nil {
						t.Fatal(err)
					}
				}
				before := w.Collections()
				_, err := m.Allocate(objWords, false)
				if !errors.Is(err, ErrBudgetExceeded) {
					t.Fatalf("rooted over-budget allocation: err = %v, want ErrBudgetExceeded", err)
				}
				if w.Collections() <= before {
					t.Fatal("denial without a forced full collection")
				}
				if st := ten.Stats(); st.ForcedCollections == 0 || st.BudgetDenials != 1 {
					t.Fatalf("stats = %+v, want forced collection and exactly 1 denial", st)
				}
				if err := w.VerifyIntegrity(); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestTenantEvict pins wholesale eviction: the victim's objects — all
// still rooted — are freed anyway, the bystander's objects survive
// untouched, the victim is cancelled permanently, and the heap stays
// sound (integrity audit plus, on the provenance-capable profiles, a
// retention check that the survivors are root-reachable and the
// evicted objects are gone).
func TestTenantEvict(t *testing.T) {
	const objWords = 8
	const k = 30 // victim budget, in objects
	const b = 20 // bystander objects
	charge := tenantChargeBytes(objWords)
	for name, cfg := range tenantBatteryConfigs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, cfg)
			data := addData(t, w, "roots", 0x2000, (k+b+1)*4)
			victim := w.NewTenant(TenantConfig{Name: "victim", BudgetBytes: k * charge, Policy: TenantEvict})
			stander := w.NewTenant(TenantConfig{Name: "bystander", BudgetBytes: 1 << 20, Policy: TenantFail})
			vm, bm := victim.NewMutator(), stander.NewMutator()
			victims := make([]mem.Addr, k)
			standers := make([]mem.Addr, b)
			for i := 0; i < b; i++ {
				p, err := bm.AllocateRooted(data, 0x2000+mem.Addr(4*(k+i)), objWords, false)
				if err != nil {
					t.Fatal(err)
				}
				standers[i] = p
			}
			for i := 0; i < k; i++ {
				p, err := vm.AllocateRooted(data, 0x2000+mem.Addr(4*i), objWords, false)
				if err != nil {
					t.Fatal(err)
				}
				victims[i] = p
			}
			_, err := vm.Allocate(objWords, false)
			if !errors.Is(err, ErrTenantEvicted) || !errors.Is(err, ErrTenantCancelled) {
				t.Fatalf("over-budget allocation: err = %v, want ErrTenantEvicted (wrapping ErrTenantCancelled)", err)
			}
			st := victim.Stats()
			if !st.Evicted || !st.Cancelled {
				t.Fatalf("victim stats = %+v, want evicted and cancelled", st)
			}
			if st.LiveBytes != 0 {
				t.Fatalf("victim LiveBytes = %d after eviction, want 0", st.LiveBytes)
			}
			if st.ReclaimedObjects != k || st.ReclaimedBytes != k*charge {
				t.Fatalf("victim reclaimed %d objects / %d bytes, want %d / %d",
					st.ReclaimedObjects, st.ReclaimedBytes, k, k*charge)
			}
			// Exactly the victim's objects died; rooting did not save them.
			for i, p := range victims {
				if w.Heap.IsAllocated(p) {
					t.Fatalf("victim object %d (%#x) survived eviction", i, uint32(p))
				}
			}
			for i, p := range standers {
				if !w.Heap.IsAllocated(p) {
					t.Fatalf("bystander object %d (%#x) reclaimed by another tenant's eviction", i, uint32(p))
				}
			}
			if err := w.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
			// The victim is dead for good; the bystander is unaffected.
			if _, err := vm.Allocate(objWords, false); !errors.Is(err, ErrTenantEvicted) {
				t.Fatalf("post-eviction allocation: err = %v, want ErrTenantEvicted", err)
			}
			if _, err := bm.AllocateRooted(data, 0x2000+mem.Addr(4*(k+b)), objWords, false); err != nil {
				t.Fatalf("bystander allocation after eviction: %v", err)
			}
			// Drop the victim's dangling roots, then check retention
			// provenance on the stop-the-world profiles: every surviving
			// bystander object traces to a root, and the evicted
			// addresses are no longer heap objects at all.
			for i := 0; i < k; i++ {
				if err := w.Store(0x2000+mem.Addr(4*i), 0); err != nil {
					t.Fatal(err)
				}
			}
			if name == "full" || name == "line" {
				w.EnableProvenance(true)
				w.Collect()
				for _, p := range standers {
					if _, err := w.WhyLive(p); err != nil {
						t.Fatalf("bystander %#x has no retention path after eviction: %v", uint32(p), err)
					}
				}
				for _, p := range victims {
					if _, err := w.WhyLive(p); err == nil {
						t.Fatalf("evicted object %#x still has a retention path", uint32(p))
					}
				}
			}
		})
	}
}

// TestTenantCancel pins the cancellation token: after Cancel every
// allocation on the tenant's handles fails at its next allocation
// point with ErrTenantCancelled, while existing objects stay live.
func TestTenantCancel(t *testing.T) {
	w := newWorld(t, Config{})
	data := addData(t, w, "roots", 0x2000, 16)
	ten := w.NewTenant(TenantConfig{BudgetBytes: 1 << 20, Policy: TenantFail})
	m := ten.NewMutator()
	p, err := m.AllocateRooted(data, 0x2000, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	ten.Cancel()
	if _, err := m.Allocate(8, false); !errors.Is(err, ErrTenantCancelled) {
		t.Fatalf("post-cancel allocation: err = %v, want ErrTenantCancelled", err)
	}
	if errors.Is(ErrTenantCancelled, ErrTenantEvicted) {
		t.Fatal("cancellation must not imply eviction")
	}
	w.Collect()
	if !w.Heap.IsAllocated(p) {
		t.Fatal("cancellation reclaimed a rooted object (that is eviction's job)")
	}
	if ten.Stats().Evicted {
		t.Fatal("Cancel marked the tenant evicted")
	}
}

// TestTenantExplicitFreeCredits pins the immediate credit path: an
// explicit Free returns the object's bytes to its tenant without
// waiting for a collection barrier.
func TestTenantExplicitFreeCredits(t *testing.T) {
	const objWords = 8
	charge := tenantChargeBytes(objWords)
	w := newWorld(t, Config{})
	data := addData(t, w, "roots", 0x2000, 16)
	ten := w.NewTenant(TenantConfig{BudgetBytes: 2 * charge, Policy: TenantFail})
	m := ten.NewMutator()
	p, err := m.AllocateRooted(data, 0x2000, objWords, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocateRooted(data, 0x2000+4, objWords, false); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate(objWords, false); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("full budget: err = %v, want ErrBudgetExceeded", err)
	}
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Store(0x2000, 0); err != nil {
		t.Fatal(err)
	}
	st := ten.Stats()
	if st.ReclaimedObjects != 1 || st.ReclaimedBytes != charge {
		t.Fatalf("stats after Free = %+v, want 1 object / %d bytes credited", st, charge)
	}
	if _, err := m.Allocate(objWords, false); err != nil {
		t.Fatalf("allocation after Free: %v", err)
	}
}

// TestTenantUnbudgetedDifferential pins the zero-cost claim: a world
// whose allocations run through an unbudgeted Tenant behaves
// bit-identically to a world using a bare Mutator — same addresses,
// same errors, same central heap statistics, same collection count —
// across the freelist and line-heap profiles.
func TestTenantUnbudgetedDifferential(t *testing.T) {
	for _, profile := range []struct {
		name string
		cfg  Config
	}{
		{"freelist", Config{}},
		{"line", Config{LineAlloc: true}},
	} {
		t.Run(profile.name, func(t *testing.T) {
			const slots = 16
			mkWorld := func(tenanted bool) (*World, *Mutator, *mem.Segment) {
				w := newWorld(t, profile.cfg)
				data := addData(t, w, "roots", 0x2000, slots*4)
				if tenanted {
					return w, w.NewTenant(TenantConfig{Name: "free"}).NewMutator(), data
				}
				return w, w.NewMutator(), data
			}
			wa, ma, da := mkWorld(false)
			wb, mb, db := mkWorld(true)

			rng := simrand.New(0x7e43a51)
			sizes := []int{1, 2, 3, 5, 8, 16, 64, 130, 600}
			var roots [slots]mem.Addr
			for i := 0; i < 600; i++ {
				switch rng.Intn(8) {
				case 0, 1, 2, 3:
					j := rng.Intn(slots)
					size := sizes[rng.Intn(len(sizes))]
					at := 0x2000 + mem.Addr(4*j)
					pa, ea := ma.AllocateRooted(da, at, size, false)
					pb, eb := mb.AllocateRooted(db, at, size, false)
					if pa != pb || (ea == nil) != (eb == nil) {
						t.Fatalf("op %d: rooted alloc diverged: bare (%#x, %v) vs tenant (%#x, %v)",
							i, uint32(pa), ea, uint32(pb), eb)
					}
					roots[j] = pa
				case 4, 5:
					size := sizes[rng.Intn(len(sizes))]
					pa, ea := ma.Allocate(size, true)
					pb, eb := mb.Allocate(size, true)
					if pa != pb || (ea == nil) != (eb == nil) {
						t.Fatalf("op %d: garbage alloc diverged: bare (%#x, %v) vs tenant (%#x, %v)",
							i, uint32(pa), ea, uint32(pb), eb)
					}
				case 6:
					j := rng.Intn(slots)
					if roots[j] == 0 {
						continue
					}
					ea, eb := ma.Free(roots[j]), mb.Free(roots[j])
					if (ea == nil) != (eb == nil) {
						t.Fatalf("op %d: free diverged: bare %v vs tenant %v", i, ea, eb)
					}
					ma.Store(0x2000+mem.Addr(4*j), 0)
					mb.Store(0x2000+mem.Addr(4*j), 0)
					roots[j] = 0
				case 7:
					if rng.Bool(0.5) {
						ma.Collect()
						mb.Collect()
					}
				}
			}
			wa.Collect()
			wb.Collect()
			wa.FinishSweep()
			wb.FinishSweep()
			if sa, sb := wa.Heap.Stats(), wb.Heap.Stats(); sa != sb {
				t.Fatalf("heap stats diverged:\nbare   %+v\ntenant %+v", sa, sb)
			}
			if ca, cb := wa.Collections(), wb.Collections(); ca != cb {
				t.Fatalf("collections diverged: bare %d vs tenant %d", ca, cb)
			}
			if sa, sb := ma.Stats(), mb.Stats(); sa != sb {
				t.Fatalf("mutator stats diverged:\nbare   %+v\ntenant %+v", sa, sb)
			}
			for j, p := range roots {
				if p == 0 {
					continue
				}
				if aa, ab := wa.Heap.IsAllocated(p), wb.Heap.IsAllocated(p); aa != ab {
					t.Fatalf("final heap diverged at root %d (%#x): bare %v vs tenant %v",
						j, uint32(p), aa, ab)
				}
			}
			st := wb.Tenants()[0].Stats()
			if st.LiveBytes != 0 || st.BudgetDenials != 0 {
				t.Fatalf("unbudgeted tenant accumulated budget state: %+v", st)
			}
		})
	}
}

// TestTenantServeSLO is the deterministic 200-tenant serve run: a
// simrand-seeded request mix across 200 collect-first tenants under
// concurrent marking, asserting exact objects-allocated conservation,
// zero per-tenant byte-attribution drift after the final settle, and
// a p99 collection pause under the stop-the-world ceiling that the
// BENCH_6 concurrent rows beat by orders of magnitude.
func TestTenantServeSLO(t *testing.T) {
	const nTenants = 200
	const slots = 8
	requests := 40
	if testing.Short() {
		requests = 10
	}
	cfg := Config{ConcurrentMark: true, GCDivisor: 6, ConcMarkWorkers: 2, ConcurrentSweep: true}
	w := newWorld(t, cfg)
	data := addData(t, w, "roots", 0x2000, nTenants*slots*4)

	var pauses []int64
	w.SetCollectionHook(func(st CollectionStats) {
		if st.Concurrent {
			pauses = append(pauses, st.PauseSnapshotNs, st.PauseFinalNs)
		} else {
			pauses = append(pauses, st.Duration.Nanoseconds())
		}
	})

	tens := make([]*Tenant, nTenants)
	muts := make([]*Mutator, nTenants)
	for i := range tens {
		tens[i] = w.NewTenant(TenantConfig{BudgetBytes: 32 << 10, Policy: TenantCollectFirst})
		muts[i] = tens[i].NewMutator()
	}
	rng := simrand.New(0x5e8d71)
	sizes := []int{1, 2, 4, 8, 16, 32}
	var total uint64
	for r := 0; r < requests; r++ {
		for i := 0; i < nTenants; i++ {
			base := mem.Addr(0x2000 + i*slots*4)
			n := 1 + rng.Intn(4)
			for a := 0; a < n; a++ {
				j := rng.Intn(slots)
				if _, err := muts[i].AllocateRooted(data, base+mem.Addr(4*j), sizes[rng.Intn(len(sizes))], false); err != nil {
					t.Fatalf("tenant %d request %d: %v", i, r, err)
				}
				total++
			}
			if rng.Bool(0.25) {
				j := rng.Intn(slots)
				if err := muts[i].Store(base+mem.Addr(4*j), 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	settleHeap(w)
	w.SetCollectionHook(nil)
	if err := w.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Exact conservation: every allocation in the run went through a
	// tenant, and the central counter saw each one exactly once.
	if got := w.Heap.Stats().ObjectsAllocated; got != total {
		t.Fatalf("central ObjectsAllocated = %d, tenants allocated %d", got, total)
	}
	var byTenants uint64
	for i, ten := range tens {
		st := ten.Stats()
		byTenants += st.AllocatedObjects
		// Zero attribution drift: the tenant's budget counter and the
		// allocator's ownership table agree to the byte once settled.
		if owned := ten.OwnedBytes(); st.LiveBytes != owned {
			t.Fatalf("tenant %d: LiveBytes %d != owned bytes %d (attribution drift)",
				i, st.LiveBytes, owned)
		}
		if st.BudgetDenials != 0 {
			t.Fatalf("tenant %d: %d denials under collect-first with headroom", i, st.BudgetDenials)
		}
	}
	if byTenants != total {
		t.Fatalf("sum of tenant AllocatedObjects = %d, want %d", byTenants, total)
	}
	// Pause SLO: p99 under 50ms — the BENCH_6 stop-the-world ceiling;
	// the concurrent rows this config matches sit in the 0.1–20ms
	// band, so this bound has wide margin for race-detector runs.
	if len(pauses) > 0 {
		idx := (99*len(pauses) + 99) / 100
		if idx > len(pauses) {
			idx = len(pauses)
		}
		sorted := append([]int64(nil), pauses...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		if p99 := sorted[idx-1]; p99 > 50e6 {
			t.Fatalf("p99 pause = %dns, want <= 50ms", p99)
		}
	}
}
