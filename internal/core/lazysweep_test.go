package core

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/simrand"
)

// worldChurn drives a world through a deterministic allocate/drop/
// collect schedule and returns every allocation address plus every
// collection's sweep result (automatic collections included, via the
// collection hook). The schedule depends only on the seed, never on
// addresses or timing, so two worlds differing only in sweep strategy
// see the identical mutator.
func worldChurn(t *testing.T, w *World, seed uint64, typed alloc.DescID, minors bool) ([]mem.Addr, []alloc.SweepResult) {
	t.Helper()
	const nslots = 64
	data, err := w.Space.MapNew("roots", mem.KindData, 0x2000, nslots*mem.WordBytes, nslots*mem.WordBytes)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(seed)
	var addrs []mem.Addr
	var sweeps []alloc.SweepResult
	w.SetCollectionHook(func(st CollectionStats) { sweeps = append(sweeps, st.Sweep) })
	defer w.SetCollectionHook(nil)
	for step := 0; step < 2500; step++ {
		switch {
		case rng.Bool(0.72): // allocate and root it
			var p mem.Addr
			if typed >= 0 && rng.Bool(0.3) {
				p, err = w.AllocateTyped(typed)
			} else {
				p, err = w.Allocate(1+rng.Intn(60), rng.Bool(0.2))
			}
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			addrs = append(addrs, p)
			slot := data.Base() + mem.Addr(mem.WordBytes*rng.Intn(nslots))
			if err := data.Store(slot, mem.Word(p)); err != nil {
				t.Fatal(err)
			}
		case rng.Bool(0.5): // drop a root
			slot := data.Base() + mem.Addr(mem.WordBytes*rng.Intn(nslots))
			if err := data.Store(slot, 0); err != nil {
				t.Fatal(err)
			}
		case minors && rng.Bool(0.6):
			w.CollectMinor()
		default:
			w.Collect()
		}
	}
	w.Collect()
	w.FinishSweep()
	return addrs, sweeps
}

// TestCoreLazySweepDifferential is the acceptance criterion at the
// World level: identical mutator schedules against an eager and a lazy
// world produce equal allocation addresses, equal per-collection sweep
// results (freed/live/released totals), and equal final heap
// statistics — across full cycles, generational minor cycles, and
// parallel marking (the latter exercises the atomic mark-summary path
// under -race).
func TestCoreLazySweepDifferential(t *testing.T) {
	variants := []struct {
		name   string
		cfg    Config
		minors bool
	}{
		{"full", Config{}, false},
		{"generational", Config{Generational: true}, true},
		{"parallel", Config{MarkWorkers: 4}, false},
	}
	mask := []bool{true, false, false, true, false}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			lazyCfg := v.cfg
			lazyCfg.LazySweep = true
			we := newWorld(t, v.cfg)
			wl := newWorld(t, lazyCfg)
			te, err := we.RegisterLayout(mask)
			if err != nil {
				t.Fatal(err)
			}
			tl, err := wl.RegisterLayout(mask)
			if err != nil {
				t.Fatal(err)
			}
			if te != tl {
				t.Fatalf("descriptor ids diverge: %d vs %d", te, tl)
			}
			ae, se := worldChurn(t, we, 42, te, v.minors)
			al, sl := worldChurn(t, wl, 42, tl, v.minors)
			if len(ae) != len(al) {
				t.Fatalf("allocation counts diverge: %d vs %d", len(ae), len(al))
			}
			for i := range ae {
				if ae[i] != al[i] {
					t.Fatalf("allocation %d diverges: eager %#x lazy %#x", i, ae[i], al[i])
				}
			}
			if len(se) != len(sl) {
				t.Fatalf("collection counts diverge: %d vs %d", len(se), len(sl))
			}
			for i := range se {
				if se[i] != sl[i] {
					t.Fatalf("sweep %d diverges:\neager %+v\nlazy  %+v", i, se[i], sl[i])
				}
			}
			if n := wl.Heap.SweepPending(); n != 0 {
				t.Fatalf("%d blocks still pending after FinishSweep", n)
			}
			ste, stl := we.Heap.Stats(), wl.Heap.Stats()
			stl.LazySweptBlocks = 0 // the one stat allowed to differ
			if ste != stl {
				t.Fatalf("final stats diverge:\neager %+v\nlazy  %+v", ste, stl)
			}
		})
	}
}

// TestLazySweepDeferredBlocksReported checks the new pause-phase
// statistics: a lazy collection over a mixed heap reports deferred
// blocks, an eager one never does.
func TestLazySweepDeferredBlocksReported(t *testing.T) {
	w := newWorld(t, Config{LazySweep: true})
	data := addData(t, w, "roots", 0x2000, 4096)
	for i := 0; i < 200; i++ {
		p, err := w.Allocate(4, false)
		if err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 { // keep a scattering live so blocks are mixed
			data.Store(0x2000+mem.Addr(4*(i%64)), mem.Word(p))
		}
	}
	st := w.Collect()
	if st.SweepDeferredBlocks == 0 {
		t.Fatal("lazy collection deferred no blocks over a mixed heap")
	}
	if n := w.FinishSweep(); n != st.SweepDeferredBlocks {
		t.Fatalf("FinishSweep swept %d blocks, stats said %d deferred", n, st.SweepDeferredBlocks)
	}
	st = w.Collect()
	if got := w.Heap.SweepPending(); got != st.SweepDeferredBlocks {
		t.Fatalf("SweepPending %d != reported %d", got, st.SweepDeferredBlocks)
	}
}
