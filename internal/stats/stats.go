// Package stats provides the small numeric-aggregation and text-table
// helpers the benchmark harness uses to print paper-style results: the
// paper reports most measurements as ranges over repeated runs
// ("79-79.5%"), so Range reproduces that presentation over seed sweeps.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Range aggregates repeated measurements.
type Range struct {
	Min, Max, Mean float64
	N              int
}

// NewRange aggregates vals; an empty input yields a zero Range.
func NewRange(vals []float64) Range {
	if len(vals) == 0 {
		return Range{}
	}
	r := Range{Min: math.Inf(1), Max: math.Inf(-1), N: len(vals)}
	for i, v := range vals {
		if v < r.Min {
			r.Min = v
		}
		if v > r.Max {
			r.Max = v
		}
		// Incremental mean: immune to the overflow a plain sum hits on
		// extreme inputs.
		r.Mean += (v - r.Mean) / float64(i+1)
	}
	return r
}

// PctString renders the range the way the paper's table 1 does:
// "79-79.5%", collapsing to a single figure when min and max agree.
func (r Range) PctString() string {
	if r.N == 0 {
		return "-"
	}
	lo, hi := Pct(r.Min), Pct(r.Max)
	if lo == hi {
		return lo + "%"
	}
	return lo + "-" + hi + "%"
}

// Pct formats a fraction as a percentage with at most one decimal,
// dropping a trailing ".0" ("0", "0.5", "79.5").
func Pct(f float64) string {
	s := fmt.Sprintf("%.1f", 100*f)
	return strings.TrimSuffix(s, ".0")
}

// Median returns the median of vals (0 for empty input).
func Median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Table is a plain-text table with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddF appends a row built with fmt.Sprint on each value.
func (t *Table) AddF(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, fmt.Sprint(c))
	}
	t.Add(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with a title line, a header row, a rule, and
// aligned columns separated by two spaces.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown, for
// regenerating EXPERIMENTS.md sections with gcbench -format markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	row(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.rows {
		row(r)
	}
	return b.String()
}
