// Detached marking: background workers pulling from the persistent
// gray set without holding the central lock.
//
// The lock-chunked concurrent cycle (bounded.go) interleaves marking
// with mutator execution but never overlaps a mark chunk with a store:
// every chunk runs under the world lock. Detached marking shards the
// background work across goroutines that hold no world lock at all.
// The synchronisation contract, owned by core:
//
//   - mark-bit transitions are CAS (atomicMark), so racing workers
//     admit exactly one winner per object — the fixpoint is the same
//     monotone closure as always;
//   - heap *words* are read atomically (atomicLoad) and the mutator
//     store path writes them atomically, so a torn or stale read is
//     impossible; a stale-but-consistent read is sound because the
//     insertion barrier dirties the stored-to block, and dirty blocks
//     are rescanned before the cycle can finish;
//   - heap *structure* (block table, free lists, extents, bitmaps) is
//     protected by a reader-writer lock in core: each DetachedChunk
//     call runs entirely inside one read-hold, and every allocator
//     mutation takes the write side. The coordinator's quiescence
//     certificate is "write-lock acquired (no chunk in flight) and the
//     shared queue is empty": a chunk ends with spillAll, so between
//     chunks no worker hides gray objects in a local stack.
//
// AssistChunk is the same bounded pull through a dedicated marker
// shard, used by mutator slow-path assists that already hold the world
// lock (the pacer's debt repayment); it needs no read-hold because
// every allocator mutation also holds the world lock.
package mark

// FlushStaged moves staged tasks onto the shared queue immediately, so
// detached workers (which pop the queue directly rather than entering
// through Run/RunBounded) can see work staged by AddGrays or
// AddDirtyBlock. Call under the same exclusion as the staging itself.
func (p *Parallel) FlushStaged() {
	if len(p.staged) == 0 {
		return
	}
	p.queue.mu.Lock()
	p.queue.tasks = append(p.queue.tasks, p.staged...)
	p.queue.size.Store(int32(len(p.queue.tasks)))
	p.queue.mu.Unlock()
	p.staged = p.staged[:0]
}

// QueueSize returns the shared queue's current task count (a lock-free
// hint; exact only under external quiescence).
func (p *Parallel) QueueSize() int { return int(p.queue.size.Load()) }

// SetAtomicLoad switches every shard's heap-word reads between plain
// and atomic loads; core enables it for detached cycles and disables
// it again at the finale (stop-the-world runs don't need it).
func (p *Parallel) SetAtomicLoad(on bool) {
	for _, w := range p.workers {
		w.m.atomicLoad = on
	}
	p.assist.m.atomicLoad = on
}

// DetachedChunk runs worker i for one bounded chunk: pop tasks from the
// shared queue and scan up to budget objects, then spill any remainder
// back. It returns the objects and bytes this chunk marked (first-marks
// won by this shard only). The caller owns the read-hold for the whole
// call and must not run the same worker index concurrently (core spawns
// one goroutine per index).
func (p *Parallel) DetachedChunk(i, budget int) (objects int, bytes uint64) {
	return p.chunkWorker(p.workers[i], budget)
}

// AssistChunk is DetachedChunk through the dedicated assist shard, for
// callers holding the world lock. Safe to run concurrently with
// detached workers: they share only the CAS bits, the task queue and
// the locked blacklist.
func (p *Parallel) AssistChunk(budget int) (objects int, bytes uint64) {
	return p.chunkWorker(p.assist, budget)
}

// chunkWorker is the shared bounded pull: local budget, no shared
// credit pool (unlike RunBounded, concurrent callers must not starve
// each other's pacing), spillAll before returning so the worker holds
// no grays between chunks.
func (p *Parallel) chunkWorker(w *worker, budget int) (objects int, bytes uint64) {
	m := w.m
	before := m.stats
	remaining := budget
	for remaining > 0 {
		for remaining > 0 && len(m.stack) > 0 {
			obj := m.stack[len(m.stack)-1]
			m.stack = m.stack[:len(m.stack)-1]
			m.ScanObject(obj)
			remaining--
		}
		if len(m.stack) > 0 {
			break // budget exhausted with grays left
		}
		t, ok := p.queue.pop()
		if !ok {
			break
		}
		p.steals.Add(1)
		p.process(w, t)
	}
	p.spillAll(w)
	return int(m.stats.ObjectsMarked - before.ObjectsMarked),
		m.stats.BytesMarked - before.BytesMarked
}
