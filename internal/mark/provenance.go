// Retention provenance: an optional mark-time recorder capturing, for
// every object the cycle marks, its *first-marking parent* — the exact
// candidate word that caused the object's mark bit to be set.
//
// The paper diagnoses spurious retention by hand ("quick examination of
// the blacklist", observation 7; the section-4 bounded-workspace
// arguments). The recorder mechanises that examination: each record
// names either a root slot (machine register, stack word, mutator
// handle, or explicit root segment, with its index) or a heap parent
// object plus field offset, and classifies the referencing word as an
// exact pointer, a valid interior pointer, or a misidentified unaligned
// candidate. core.World reconstructs "why is this object live?" paths
// and retention attributions from the records.
//
// Cost model: recording is off by default. When off, the only additions
// to the mark hot path are predictable `if m.rec` branches — no stores,
// no allocation, and a candidate order identical to the unrecorded
// marker's (asserted by the provenance differential tests). When on,
// the marker appends one fixed-size record per first-mark to a
// worker-private slice.
//
// Parallel marking: the mark-bit CAS admits exactly one winner per
// object, and only the winning worker appends a record, so the merged
// record set has one entry per marked object with no synchronisation
// beyond the CAS itself (the "first-CAS-winner records the parent"
// rule).
package mark

import "repro/internal/mem"

// RootKind classifies the origin of a first-marking candidate.
type RootKind uint8

// Root kinds. RootNone means the parent is a heap object (the candidate
// was one of its scanned fields); the other kinds name a root area.
const (
	RootNone RootKind = iota
	RootRegister
	RootStack
	RootSegment
)

func (k RootKind) String() string {
	switch k {
	case RootRegister:
		return "register"
	case RootStack:
		return "stack"
	case RootSegment:
		return "segment"
	default:
		return "heap"
	}
}

// RefKind classifies the referencing word itself.
type RefKind uint8

// Reference kinds.
const (
	// RefExact: the candidate equalled the object's base address.
	RefExact RefKind = iota
	// RefInterior: a valid interior pointer resolved to the base.
	RefInterior
	// RefUnaligned: a byte-straddling candidate under AnyByteOffset — by
	// construction the concatenation of two adjacent words, i.e. a
	// misidentified candidate, never a pointer the program stored.
	RefUnaligned
)

func (k RefKind) String() string {
	switch k {
	case RefInterior:
		return "interior"
	case RefUnaligned:
		return "unaligned"
	default:
		return "exact"
	}
}

// RootOrigin identifies one root area for provenance attribution.
type RootOrigin struct {
	Kind RootKind
	// Src identifies the area's owner: -1 the world's attached
	// RootSource, >= 0 a mutator handle's index (RootRegister and
	// RootStack) or the root segment's ordinal (RootSegment).
	Src int32
	// Base is the simulated address of the area's first word; 0 when
	// the area is not addressable (register files).
	Base mem.Addr
}

// ParentRecord is one first-marking provenance record.
type ParentRecord struct {
	// Obj is the base address of the object this record explains.
	Obj mem.Addr
	// Parent is the referencing word's location: the parent object's
	// base address (Kind == RootNone), the root word's simulated address
	// (RootStack, RootSegment), or 0 (RootRegister, or an area of
	// unknown origin).
	Parent mem.Addr
	// Value is the candidate word as scanned (for unaligned candidates:
	// the straddling concatenation, not either stored word).
	Value mem.Word
	// Kind says whether the parent is a heap object or a root slot.
	Kind RootKind
	// Ref classifies the candidate (exact / interior / unaligned).
	Ref RefKind
	// Declared is true when the candidate came from a typed descriptor's
	// declared pointer field rather than a conservative scan.
	Declared bool
	// Off is the byte offset (1..3) of an unaligned candidate within
	// its first word; 0 for aligned candidates.
	Off uint8
	// Index is the word index within the root area, the register number,
	// or the field index within the parent object.
	Index int32
	// Src is RootOrigin.Src for root kinds; 0 for heap parents.
	Src int32
}

// provOrigin is the marker's current scan context while recording: the
// area or heap parent the candidates now being tested came from. Only
// touched under `if m.rec`, so the unrecorded paths never write it.
type provOrigin struct {
	kind     RootKind
	area     mem.Addr // root-area base address, or heap parent base (RootNone)
	src      int32
	base     int32 // index of words[0] within the original area (chunked scans)
	index    int32 // current absolute word / field / register index
	off      uint8 // unaligned byte offset of the current candidate (0 = aligned)
	declared bool  // current candidate is a declared typed pointer field
}

// StartRecording begins provenance recording: until StopRecording,
// every first-mark appends one ParentRecord. Any records from a
// previous recording are discarded.
func (m *Marker) StartRecording() {
	m.rec = true
	m.recs = m.recs[:0]
	m.org = provOrigin{}
}

// Recording reports whether provenance recording is on.
func (m *Marker) Recording() bool { return m.rec }

// StopRecording ends recording and returns the records captured since
// StartRecording. The slice is reused by the next StartRecording; the
// caller must consume (or copy) it first.
func (m *Marker) StopRecording() []ParentRecord {
	m.rec = false
	return m.recs
}

// recordWin appends the provenance record for an object this marker
// just won the mark bit of. Called only with m.rec set.
func (m *Marker) recordWin(base, p mem.Addr, v mem.Word) {
	o := &m.org
	ref := RefExact
	if o.off != 0 {
		ref = RefUnaligned
	} else if p != base {
		ref = RefInterior
	}
	parent := o.area
	if o.kind != RootNone && o.area != 0 {
		// Root areas with addresses (stacks, segments): record the
		// referencing word's own simulated address.
		parent = o.area + mem.Addr(int(o.index)*mem.WordBytes)
	}
	m.recs = append(m.recs, ParentRecord{
		Obj:      base,
		Parent:   parent,
		Value:    v,
		Kind:     o.kind,
		Ref:      ref,
		Declared: o.declared,
		Off:      o.off,
		Index:    o.index,
		Src:      o.src,
	})
}

// MarkSparseRoots scans a register file as provenance-attributed roots:
// nonzero words are tested individually, with no straddle candidates
// and no WordsScanned accounting — exactly the collector's register
// scan, plus origin bookkeeping when recording.
func (m *Marker) MarkSparseRoots(org RootOrigin, words []mem.Word) {
	if m.rec {
		m.org = provOrigin{kind: org.Kind, area: org.Base, src: org.Src}
	}
	for i, v := range words {
		if v != 0 {
			if m.rec {
				m.org.index = int32(i)
			}
			m.MarkValue(v)
		}
	}
}

// MarkRootArea scans words as a provenance-attributed root area under
// the configured alignment policy. Identical to MarkWords when not
// recording.
func (m *Marker) MarkRootArea(org RootOrigin, words []mem.Word) {
	m.markRootChunk(org, 0, words, 0)
}

// markRootChunk scans one chunk of a root area; off is the index of
// words[0] within the full area (parallel root chunking), tail the
// trailing straddle-context word count (see markWordsChunk).
func (m *Marker) markRootChunk(org RootOrigin, off int32, words []mem.Word, tail int) {
	if m.rec {
		m.org = provOrigin{kind: org.Kind, area: org.Base, src: org.Src, base: off}
	}
	m.markWordsChunk(words, tail)
}
