package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/alloc"
	"repro/internal/mark"
	"repro/internal/trace"
)

// Mostly-concurrent collection (Config.ConcurrentMark), after the
// design the paper cites as its pause-time companion (Boehm, Demers &
// Shenker, PLDI 1991 — reference [8]).
//
// A cycle has three phases:
//
//  1. Snapshot pause. The mutators stop, their caches flush, the roots
//     are scanned (serially, through w.Marker), and the resulting gray
//     set is handed to the marking machinery: the serial marker's own
//     stack at width 1, the parallel workers' shared queue otherwise.
//     The mutators then resume.
//  2. Background marking, in one of two shapes. Lock-chunked (width
//     1, the default on small heaps and single-core schedulers): a
//     driver goroutine repeatedly takes the world lock, drains a
//     bounded chunk of gray objects (MarkQuantum; sharded across the
//     parallel workers via mark.RunBounded when the snapshot's width
//     was > 1), releases the lock and yields. Detached
//     (ConcMarkWorkers > 1, see detached.go): background worker
//     goroutines pull chunks from the shared gray queue without the
//     world lock at all — heap words go atomic, mark bits are CAS,
//     and heap structure is guarded by a reader-writer lock. In both
//     shapes mutators run concurrently: their allocation fast path
//     touches no collector structure, their slow paths and heap stores
//     interleave under the locks above. Stores dirty their block's
//     card (storeLocked); fresh objects are born black at the
//     cache-refill commit point (they are zero-filled, so there is
//     nothing to scan at birth). Slow-path allocations repay marking
//     debt through the rate-based pacer (pacerAssistLocked) instead
//     of a fixed per-allocation chunk.
//  3. Bounded finale. When the gray set drains, the driver decides:
//     if the mutators have dirtied more blocks than the finale budget
//     and rescan passes remain, it stages a concurrent rescan of the
//     dirty set (clearing the cards) and keeps marking without
//     stopping anyone; otherwise it stops the world, rescans every
//     block dirtied since its last rescan, re-scans the (possibly
//     changed) roots, drains to the fixpoint, and sweeps. The pass cap
//     makes the finale provably bounded: the final pause rescans at
//     most the blocks dirtied during one drain interval (≤
//     concFinaleDirtyBudget after a converging pass, and never more
//     than the heap's block count), not the whole cycle's write set.
//
// Tricolor soundness under the lock-chunked model: every heap store
// and every mark chunk runs under w.mu, so stores and scans are
// totally ordered. A store into an already-scanned (black) object
// dirties its block, and a block dirtied after its last rescan is
// always rescanned with the world stopped; a store into an unscanned
// object is seen by that object's later scan; objects allocated during
// the cycle are born black and zero-filled. Hence no reachable-at-
// finale object can be missed — the adversarial lost-object test pins
// exactly the hiding pattern (store the only pointer into a black
// object, erase the gray path).
//
// Under the detached model stores and scans are no longer ordered by
// w.mu, but the argument survives with "totally ordered" weakened to
// "data-race-free and card-visible": a scan racing a store reads
// either value atomically, and the store's card (dirtied under w.mu)
// is rescanned before the cycle can finish, so the published pointer
// is found either by the racing scan or by the rescan. DESIGN.md §5h
// has the full soundness argument; the lost-object battery runs
// against both shapes.

const (
	// concMaxPasses caps the concurrent dirty-rescan passes before the
	// finale runs regardless; with the world stopped one final rescan
	// always suffices, so the cap bounds pause work, not correctness.
	concMaxPasses = 4
	// concFinaleDirtyBudget is the dirty-block count below which the
	// driver stops rescanning concurrently and runs the finale: few
	// enough blocks that their in-pause rescan is cheap.
	concFinaleDirtyBudget = 16
)

// StartConcurrentCycle begins a mostly-concurrent collection and
// returns with the mutators resumed and marking pending: advance it
// with ConcurrentStep (as tests do, deterministically) or let
// allocation-triggered cycles drive themselves on a background
// goroutine. No-op if a cycle is already active. Outside
// ConcurrentMark mode it is an error.
func (w *World) StartConcurrentCycle() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.cfg.ConcurrentMark {
		return fmt.Errorf("core: StartConcurrentCycle outside concurrent-mark mode")
	}
	w.startConcurrentLocked(false)
	return nil
}

// ConcurrentActive reports whether a concurrent cycle is in progress.
func (w *World) ConcurrentActive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.concActive
}

// ConcurrentStep advances an active cycle by one bounded chunk of up
// to quantum objects (MarkQuantum if quantum <= 0) and returns true
// when the cycle completed — the step that finds the gray set drained
// and the dirty backlog small runs the finale itself. Returns true
// immediately if no cycle is active.
func (w *World) ConcurrentStep(quantum int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.concChunkLocked(quantum)
}

// FinishConcurrentCycle forces an active cycle's finale now and
// returns its statistics (the last collection's if none is active).
func (w *World) FinishConcurrentCycle() CollectionStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stwFinishConcurrent()
}

// startConcurrentLocked opens a cycle: the snapshot pause. Callers
// hold w.mu; mutators are stopped and resumed here. No-op if a cycle
// is already active.
func (w *World) startConcurrentLocked(minor bool) {
	if w.concActive {
		return
	}
	minor = minor && w.cfg.Generational
	w.stopMutatorsLocked()
	defer w.resumeMutatorsLocked()
	w.concStart = time.Now()
	kind := int64(3)
	if minor {
		kind = 4
	}
	w.tracer.Emit(trace.EvCycleBegin, int64(w.collections+1), int64(w.Heap.Stats().HeapBytes), kind)
	// Deferred lazy sweeps hold the previous cycle's liveness in their
	// mark bits, and central bump spans hold carved-but-unissued slots;
	// both must land before this cycle observes any bits.
	w.Heap.FinishSweep()
	w.Heap.FlushSpans()
	w.Blacklist.BeginCycle()
	workers := w.effectiveMarkWorkers()
	// Detachment resolution: an explicit ConcMarkWorkers wins, 0 defers
	// to the same adaptive table the mark width uses. Width 1 — small
	// heaps, single-core schedulers, or an explicit pin — keeps the
	// lock-chunked cycle byte-for-byte. A detached cycle needs at least
	// its worker count of marker shards.
	cw := w.cfg.ConcMarkWorkers
	if cw == 0 {
		cw = AutoMarkWorkers(runtime.GOMAXPROCS(0), w.Heap.Stats().BytesLive)
	}
	detached := cw > 1
	if detached && workers < cw {
		workers = cw
	}
	w.lastMarkWorkers = workers
	w.concPar = workers > 1
	w.concWorkers = 0
	if detached {
		w.concWorkers = cw
	}
	if w.concPar {
		w.ensureParLocked(workers)
		w.par.ResetCycle()
		w.concStealsStart = w.par.Steals()
	}
	w.pacerInitLocked(minor)
	if !minor && w.cfg.Generational {
		// Sticky mark bits are the old generation; a full cycle starts
		// from a clean slate.
		w.Heap.ClearMarks()
	}
	w.Marker.Reset()
	if w.prov.enabled {
		w.Marker.StartRecording()
		if w.concPar {
			w.par.StartRecording()
		}
	}
	// Minor cycles rescan the remembered set — blocks dirtied since the
	// last collection. Stage it for the background drain, then clear
	// the cards so the cycle's own barrier records only in-cycle stores.
	w.concDirty = w.concDirty[:0]
	w.concDirtyBlocks = 0
	if minor {
		w.Heap.DirtyBlocks(func(bi int) {
			w.concDirtyBlocks++
			if w.concPar {
				w.par.AddDirtyBlock(bi)
			} else {
				w.concDirty = append(w.concDirty, bi)
			}
		})
	}
	w.Heap.ClearDirty()
	w.tracer.Emit(trace.EvMarkBegin, int64(w.collections+1), int64(workers), kind)
	// Snapshot root scan: serial, under the pause. The gray set it
	// builds is handed to the parallel workers (or left on the serial
	// marker's own stack at width 1).
	w.markRoots()
	if w.concPar {
		w.par.AddGrays(w.Marker.TakePending())
	}
	w.concSnapMarked = w.concMarkStatsLocked().ObjectsMarked
	w.concActive = true
	w.concMinor = minor
	w.concPasses = 0
	w.concGen++
	if detached {
		// Open the detached phase before the mutators resume: heap-word
		// reads go atomic, the snapshot's staged gray set is published to
		// the shared queue (detached workers pop it directly, never
		// entering through RunBounded), and one goroutine per worker
		// index starts pulling chunks. The workers capture this cycle's
		// marker and generation, so a later rebuild or cycle never
		// aliases them; they exit when concGenA stops matching.
		w.concDetached = true
		w.par.SetAtomicLoad(true)
		w.par.FlushStaged()
		w.concGenA.Store(w.concGen)
		for i := 0; i < cw; i++ {
			go w.markWorker(w.par, w.concGen, i)
		}
	}
	w.concSnapNs = time.Since(w.concStart).Nanoseconds()
}

// driveConcurrent is the background marking driver: while its cycle is
// the active one, alternately drain a bounded chunk under the world
// lock and yield the processor to the mutators. A cycle finished by
// anyone else (explicit Collect, allocation-pressure finale) bumps
// concGen, and the stale driver exits on its next look.
func (w *World) driveConcurrent(gen uint64) {
	for {
		w.mu.Lock()
		if !w.concActive || w.concGen != gen {
			w.mu.Unlock()
			return
		}
		done := w.concChunkLocked(w.cfg.MarkQuantum)
		w.mu.Unlock()
		if done {
			return
		}
		runtime.Gosched()
	}
}

// concChunkLocked advances the cycle by one bounded chunk and returns
// whether the cycle is now complete. When the chunk drains the gray
// set it either stages another concurrent rescan pass (dirty backlog
// above the finale budget, passes remaining) or runs the finale.
// Callers hold w.mu.
func (w *World) concChunkLocked(quantum int) bool {
	if !w.concActive {
		return true
	}
	if quantum <= 0 {
		quantum = w.cfg.MarkQuantum
	}
	if w.concDetached {
		// Detached cycles advance through the quiescence-certificate
		// path: the background workers do the marking, this caller
		// contributes an assist chunk and checks for the fixpoint.
		return w.concDetachedAdvanceLocked(quantum)
	}
	before := w.concMarkStatsLocked().BytesMarked
	drained := w.concDrainLocked(quantum)
	// Credit the chunk's marked bytes to the pacer: the background
	// driver and mutator assists share this accounting, so a healthy
	// driver keeps mutator credit positive and assists free.
	if d := w.concMarkStatsLocked().BytesMarked - before; d != 0 {
		w.pacerCredit.Add(int64(d))
	}
	if !drained {
		return false
	}
	// Gray set drained. Rescan concurrently while the backlog is large
	// and passes remain; otherwise stop the world for the finale.
	if w.concPasses < concMaxPasses && w.Heap.CountDirty() > concFinaleDirtyBudget {
		w.concPasses++
		w.stageDirtyRescanLocked()
		return false
	}
	w.stwFinishConcurrent()
	return true
}

// concDrainLocked drains up to quantum objects of gray work and
// reports whether the gray set is now empty. Callers hold w.mu.
func (w *World) concDrainLocked(quantum int) bool {
	if w.concPar {
		return w.par.RunBounded(quantum)
	}
	// Serial width: staged dirty-block rescans first (a whole block per
	// unit of work — coarse, but dirty rescans are rare), then the
	// marker's own stack.
	blocks := quantum/64 + 1
	for len(w.concDirty) > 0 && blocks > 0 {
		bi := w.concDirty[len(w.concDirty)-1]
		w.concDirty = w.concDirty[:len(w.concDirty)-1]
		w.Heap.ForEachMarkedObject(bi, w.Marker.ScanObject)
		blocks--
	}
	if len(w.concDirty) > 0 {
		return false
	}
	return w.Marker.DrainN(quantum)
}

// stageDirtyRescanLocked moves the current dirty set into the cycle's
// gray work and clears the cards, so blocks dirtied after this point
// are caught by the next pass or the finale. Callers hold w.mu.
func (w *World) stageDirtyRescanLocked() int {
	n := 0
	w.Heap.DirtyBlocks(func(bi int) {
		n++
		if w.concPar {
			w.par.AddDirtyBlock(bi)
		} else {
			w.concDirty = append(w.concDirty, bi)
		}
	})
	w.Heap.ClearDirty()
	return n
}

// stwFinishConcurrent stops the mutators and runs the finale. Callers
// hold w.mu with the mutators running.
func (w *World) stwFinishConcurrent() CollectionStats {
	if !w.concActive {
		return w.last
	}
	w.stopMutatorsLocked()
	defer w.resumeMutatorsLocked()
	return w.finishConcurrentLocked()
}

// finishConcurrentLocked is the bounded final pause. Callers hold w.mu
// with every mutator stopped and flushed (the finale sweeps; see
// collectLocked).
func (w *World) finishConcurrentLocked() CollectionStats {
	if !w.concActive {
		return w.last
	}
	finaleStart := time.Now()
	// A detached phase must be fully retired before anything below
	// reads shard statistics or mutates heap structure bare: after
	// this, no background worker touches the heap (see detached.go).
	w.retireDetachedLocked()
	beforeFinale := w.concMarkStatsLocked().ObjectsMarked
	kind := int64(3)
	if w.concMinor {
		kind = 4
	}
	// Rescan every block dirtied since its last rescan, re-scan the
	// (possibly changed) roots, and drain to the fixpoint — with the
	// world stopped, one pass reaches it.
	finalDirty := w.stageDirtyRescanLocked()
	w.markRoots()
	if w.concPar {
		w.par.AddGrays(w.Marker.TakePending())
		w.par.RunBounded(math.MaxInt)
	} else {
		for len(w.concDirty) > 0 {
			bi := w.concDirty[len(w.concDirty)-1]
			w.concDirty = w.concDirty[:len(w.concDirty)-1]
			w.Heap.ForEachMarkedObject(bi, w.Marker.ScanObject)
		}
		w.Marker.Drain()
	}
	pauseMark := time.Since(finaleStart)
	mstats := w.concMarkStatsLocked()
	w.traceMarkEnd(mstats)
	for a := range w.finalizable {
		if !w.Heap.Marked(a) {
			w.reclaimed = append(w.reclaimed, a)
			delete(w.finalizable, a)
		}
	}
	w.traceSweepBegin(kind)
	sweepStart := time.Now()
	// Spans carved during the cycle hold unissued (born-black) slots;
	// returning them also drops their mark bits, so the sweep's survey
	// counts only real objects.
	w.Heap.FlushSpans()
	var sweep alloc.SweepResult
	if w.cfg.Generational {
		sweep = w.Heap.SweepSticky()
	} else {
		sweep = w.Heap.Sweep()
	}
	pauseSweep := time.Since(sweepStart)
	w.Heap.ResetSinceGC()
	w.Heap.ClearDirty()
	if w.cfg.ExpireAge > 0 {
		w.Blacklist.Expire(w.cfg.ExpireAge)
	}
	w.collections++
	if w.concMinor {
		w.minorsSinceFull++
	} else {
		w.minorsSinceFull = 0
	}
	w.concActive = false
	w.concGen++ // retire any background driver still scheduled
	provRecs := w.harvestProvenance(kind)
	if w.concPar {
		w.met.concMarkSteals.Add(w.par.Steals() - w.concStealsStart)
	}
	pauseFinal := time.Since(finaleStart)
	w.tracer.Emit(trace.EvFinalPause, pauseFinal.Nanoseconds(), int64(finalDirty), int64(w.concPasses))
	concPhase := finaleStart.Sub(w.concStart).Nanoseconds() - w.concSnapNs
	if concPhase < 0 {
		concPhase = 0
	}
	w.last = CollectionStats{
		Mark:                mstats,
		Sweep:               sweep,
		Blacklist:           w.Blacklist.Stats(),
		Duration:            time.Duration(w.concSnapNs) + pauseFinal,
		HeapBytes:           w.Heap.Stats().HeapBytes,
		Minor:               w.concMinor,
		DirtyBlocks:         w.concDirtyBlocks,
		Promoted:            mstats.ObjectsMarked,
		Concurrent:          true,
		RescanPasses:        w.concPasses,
		FinalDirtyBlocks:    finalDirty,
		MarkedConcurrent:    beforeFinale - w.concSnapMarked,
		ConcWorkers:         w.concWorkers,
		ConcPhaseNs:         concPhase,
		PauseSnapshotNs:     w.concSnapNs,
		PauseFinalNs:        pauseFinal.Nanoseconds(),
		PauseMarkNs:         pauseMark.Nanoseconds(),
		PauseSweepNs:        pauseSweep.Nanoseconds(),
		PauseStopNs:         w.lastStopNs,
		SweepDeferredBlocks: w.Heap.SweepPending(),
		Provenance:          w.prov.enabled,
		ProvenanceRecords:   provRecs,
	}
	if !w.concMinor {
		w.last.Promoted = 0
	}
	w.traceCycleEnd(w.last)
	w.fireHook()
	return w.last
}

// concMarkStatsLocked sums the cycle's mark statistics: the serial
// marker's (snapshot and finale root scans, serial-width chunks) plus
// the parallel workers' running totals when the cycle is sharded.
func (w *World) concMarkStatsLocked() mark.Stats {
	s := w.Marker.Stats()
	if !w.concPar {
		return s
	}
	p := w.par.AggStats()
	s.WordsScanned += p.WordsScanned
	s.Candidates += p.Candidates
	s.ObjectsMarked += p.ObjectsMarked
	s.BytesMarked += p.BytesMarked
	s.FieldsScanned += p.FieldsScanned
	s.FalseNearHeap += p.FalseNearHeap
	s.AtomicSkipped += p.AtomicSkipped
	s.InteriorResolved += p.InteriorResolved
	return s
}
