// Bounded parallel marking: the concurrent-cycle drain loop.
//
// A mostly-concurrent cycle cannot hand the workers the whole closure
// at once — the driver interleaves bounded mark chunks with mutator
// execution. RunBounded is Run with a shared scan budget: workers claim
// credits from an atomic pool in small chunks and scan local gray
// objects until the pool runs dry, then shed their remaining stack back
// onto the shared queue and retire. Because the queue persists between
// bounded runs (AddGrays and leftover spills accumulate rather than
// overwrite), the cycle's gray set lives in exactly two places at a
// chunk boundary: the shared queue and nowhere else — every worker's
// local stack is empty when RunBounded returns.
//
// Termination of one bounded run reuses the idle-count fixpoint from
// Run, with one extension: a worker that exhausts the budget counts
// itself permanently idle after spilling, so "all idle" is reached even
// when gray objects remain queued. A waiting worker that grabs a task
// it has no credits to scan pushes it straight back and retires, so the
// handoff cannot livelock.
//
// The budget bounds *traced objects*, not tasks: a claimed dirty-block
// or root-chunk task is processed whole (its grays land on the local
// stack and are scanned against the budget), so a chunk may overshoot
// by at most one task's own candidates. Overshoot is a pacing blur,
// never a correctness issue — the fixpoint is monotone.
package mark

import (
	"repro/internal/mem"
)

// boundedClaim is how many scan credits a worker claims at a time:
// large enough that the shared counter is off the hot path, small
// enough that the budget spreads across workers.
const boundedClaim = 64

// ResetCycle prepares the phase for a new concurrent cycle: worker
// stats and stacks reset, shared queue and staged tasks cleared.
// Statistics then accumulate across every bounded run of the cycle.
func (p *Parallel) ResetCycle() {
	p.queue.mu.Lock()
	p.queue.tasks = p.queue.tasks[:0]
	p.queue.size.Store(0)
	p.queue.mu.Unlock()
	p.staged = p.staged[:0]
	for _, w := range p.workers {
		w.m.Reset()
	}
	p.assist.m.Reset()
}

// AddGrays stages already-marked objects for scanning by the next
// bounded run — the snapshot pause hands the root-reachable gray set to
// the background workers this way.
func (p *Parallel) AddGrays(addrs []mem.Addr) {
	for lo := 0; lo < len(addrs); lo += grayChunk {
		hi := lo + grayChunk
		if hi > len(addrs) {
			hi = len(addrs)
		}
		chunk := make([]mem.Addr, hi-lo)
		copy(chunk, addrs[lo:hi])
		p.staged = append(p.staged, task{kind: taskGray, addrs: chunk})
	}
}

// RunBounded drains staged and queued work, scanning at most budget
// objects across all workers, and reports whether the gray set is
// exhausted. Unlike Run it appends staged tasks to the persistent
// queue, does not reset worker statistics, and may return with work
// remaining (done == false). Call with an effectively infinite budget
// to force completion (the finale does).
func (p *Parallel) RunBounded(budget int) (done bool) {
	p.queue.mu.Lock()
	p.queue.tasks = append(p.queue.tasks, p.staged...)
	p.queue.size.Store(int32(len(p.queue.tasks)))
	p.queue.mu.Unlock()
	p.staged = p.staged[:0]
	p.credits.Store(int64(budget))
	p.idle.Store(0)
	p.wg.Add(len(p.workers))
	for _, w := range p.workers {
		go w.runBounded()
	}
	p.wg.Wait()
	if p.queue.size.Load() > 0 {
		return false
	}
	for _, w := range p.workers {
		w.pending.flush()
	}
	p.assist.pending.flush()
	return true
}

// runBounded is one worker goroutine's bounded-run entry point.
func (w *worker) runBounded() {
	defer w.p.wg.Done()
	w.p.runBoundedWorker(w)
}

// runBoundedWorker is runWorker under a budget: scan while credits
// last, then spill the local stack and retire as permanently idle.
func (p *Parallel) runBoundedWorker(w *worker) {
	for {
		if !p.drainBounded(w) {
			p.spillAll(w)
			p.idle.Add(1)
			return
		}
		t, ok := p.queue.pop()
		if !ok {
			if p.goIdle() {
				return
			}
			continue
		}
		p.steals.Add(1)
		p.process(w, t)
	}
}

// drainBounded scans the worker's local stack while credits remain.
// It returns true when the stack emptied and false when the budget ran
// out first (the stack may still hold gray objects).
func (p *Parallel) drainBounded(w *worker) bool {
	m := w.m
	for len(m.stack) > 0 {
		n := p.claim(boundedClaim)
		if n == 0 {
			return false
		}
		used := int64(0)
		for used < n && len(m.stack) > 0 {
			obj := m.stack[len(m.stack)-1]
			m.stack = m.stack[:len(m.stack)-1]
			m.ScanObject(obj)
			used++
		}
		if used < n {
			p.credits.Add(n - used)
		}
	}
	return true
}

// claim takes up to want credits from the shared pool, returning how
// many it got (zero when the pool is dry).
func (p *Parallel) claim(want int64) int64 {
	for {
		c := p.credits.Load()
		if c <= 0 {
			return 0
		}
		n := want
		if n > c {
			n = c
		}
		if p.credits.CompareAndSwap(c, c-n) {
			return n
		}
	}
}

// spillAll sheds the worker's entire local stack onto the shared queue
// in grayChunk pieces, so a budget-exhausted worker leaves no hidden
// gray objects behind.
func (p *Parallel) spillAll(w *worker) {
	m := w.m
	for lo := 0; lo < len(m.stack); lo += grayChunk {
		hi := lo + grayChunk
		if hi > len(m.stack) {
			hi = len(m.stack)
		}
		chunk := make([]mem.Addr, hi-lo)
		copy(chunk, m.stack[lo:hi])
		p.queue.push(task{kind: taskGray, addrs: chunk})
	}
	m.stack = m.stack[:0]
}
