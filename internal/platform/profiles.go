package platform

import "repro/internal/mem"

// Shared geometry. The paper's SunOS executables start at 0x2000 with
// the heap following a ~140 KB image, which is what places the heap
// across the 0x00202020–0x007F7F7F band that unaligned string
// boundaries form (appendix B). We use the same low placement.
const (
	defaultArrayBase  = mem.Addr(0x4000)  // program T's a[]
	defaultStaticBase = mem.Addr(0x8000)  // polluted static data
	defaultHeapBase   = mem.Addr(0x40000) // heap right after the image
)

// SPARCStatic is the statically linked SunOS 4.1.1 profile: "the static
// version of the C library contains several large arrays (totalling
// more than 35K) of seemingly random integer values, apparently used
// for base conversion in the IO library", plus ~25 KB of packed,
// unaligned string constants. This is the paper's worst case: 78–79.5%
// retention without blacklisting.
func SPARCStatic(optimized bool) Profile {
	return Profile{
		Name:            "SPARC(static)",
		Optimized:       optimized,
		HeapBase:        defaultHeapBase,
		HeapReserve:     48 << 20,
		InitialHeap:     24 << 20,
		GCDivisor:       3,
		StaticArrayBase: defaultArrayBase,
		StaticBase:      defaultStaticBase,
		Tables: []TableSpec{
			{Bytes: 36 * 1024, SmallFrac: 0.3, Lo: 0, Hi: 0x21000000},
		},
		StringBytes:     25 * 1024,
		StringsAligned:  false, // "character strings are not word-aligned by the compiler we used"
		RegisterWindows: true,
		FrameSlop:       slop(optimized),
		BuildRegNoise:   NoiseSpec{Count: 24, Lo: 0, Hi: 0x20000000},
		MidRegNoise:     NoiseSpec{Count: 24, Lo: 0, Hi: 0x20000000},
		NLists:          200,
		NodesPerList:    25000,
		NodeWords:       1,
	}
}

// SPARCDynamic is the dynamically linked SunOS profile: the big libc
// tables live in the shared library, outside the scanned image, so only
// a small amount of static data remains. Paper: 8–11.5% without
// blacklisting, 0–0.5% with.
func SPARCDynamic(optimized bool) Profile {
	p := SPARCStatic(optimized)
	p.Name = "SPARC(dynamic)"
	p.Tables = []TableSpec{
		{Bytes: 2 * 1024, SmallFrac: 0.5, Lo: 0, Hi: 0x20000000},
	}
	p.StringBytes = 640
	p.BuildRegNoise = NoiseSpec{Count: 16, Lo: 0, Hi: 0x20000000}
	p.MidRegNoise = NoiseSpec{Count: 12, Lo: 0, Hi: 0x20000000}
	return p
}

// SGI is the SGI 4D/35 IRIX profile: word-aligned strings (the paper
// notes the big-endian fix "is easily avoidable... such as this one"),
// a small static image, and noticeably varying register trash after
// system calls ("the high variation in retained storage is... presumably
// also due to varying register contents after system call or trap
// returns"). Paper: 1–8% without blacklisting, 0% with.
func SGI(optimized bool) Profile {
	return Profile{
		Name:            "SGI(static)",
		Optimized:       optimized,
		HeapBase:        defaultHeapBase,
		HeapReserve:     48 << 20,
		InitialHeap:     24 << 20,
		GCDivisor:       3,
		StaticArrayBase: defaultArrayBase,
		StaticBase:      defaultStaticBase,
		Tables: []TableSpec{
			{Bytes: 3 * 1024, SmallFrac: 0.5, Lo: 0, Hi: 0x40000000},
		},
		StringBytes:     8 * 1024,
		StringsAligned:  true,
		RegisterWindows: false,
		FrameSlop:       slop(optimized),
		BuildRegNoise:   NoiseSpec{Count: 8, Lo: 0, Hi: 0x40000000},
		MidRegNoise:     NoiseSpec{Count: 16, Lo: 0, Hi: 0x40000000},
		NLists:          200,
		NodesPerList:    25000,
		NodeWords:       1,
	}
}

// OS2 is the 80486 OS/2 2.0 profile with the IBM C Set/2 compiler.
// "Program T was modified to only allocate 100 lists totalling 10 MB,
// due to memory constraints"; "measurements appeared completely
// reproducible" (no register-window noise on the 486). Paper: 26–28%
// without blacklisting, 1–3% with.
func OS2(optimized bool) Profile {
	return Profile{
		Name:            "OS/2(static)",
		Optimized:       optimized,
		HeapBase:        defaultHeapBase,
		HeapReserve:     24 << 20,
		InitialHeap:     12 << 20,
		GCDivisor:       3,
		StaticArrayBase: defaultArrayBase,
		StaticBase:      defaultStaticBase,
		Tables: []TableSpec{
			{Bytes: 11 * 1024, SmallFrac: 0.5, Lo: 0, Hi: 0x18000000},
		},
		StringBytes:     4 * 1024,
		StringsAligned:  true, // our simulated machine is big-endian; see DESIGN.md
		RegisterWindows: false,
		FrameSlop:       slop(optimized),
		MutatingStatics: 2,
		NLists:          100,
		NodesPerList:    25000,
		NodeWords:       1,
	}
}

// PCR is the Cedar/PCR profile: program T's lists become 12500 8-byte
// cells, the world carries megabytes of other live data, thread stacks
// are scanned but never cleared, and a few statics (holding heap-size-
// derived values) mutate during the run — appendix B's three persistent
// leak sources. Paper: 44.5–55% without blacklisting, 1.5–3.5% with.
func PCR(otherLiveBytes int) Profile {
	if otherLiveBytes == 0 {
		otherLiveBytes = 4 << 20
	}
	return Profile{
		Name:            "PCR",
		HeapBase:        defaultHeapBase,
		HeapReserve:     64 << 20,
		InitialHeap:     28<<20 + otherLiveBytes,
		GCDivisor:       3,
		StaticArrayBase: defaultArrayBase,
		StaticBase:      defaultStaticBase,
		Tables: []TableSpec{
			{Bytes: 16 * 1024, SmallFrac: 0.4, Lo: 0, Hi: 0x20000000},
		},
		StringBytes:     6 * 1024,
		StringsAligned:  true, // "PCR includes only small fractions of the SunOS C library"
		RegisterWindows: true,
		FrameSlop:       12,
		BuildRegNoise:   NoiseSpec{Count: 32, Lo: 0, Hi: 0x20000000},
		MidRegNoise:     NoiseSpec{Count: 8, Lo: 0, Hi: 0x20000000},
		ThreadStacks: []ThreadStackSpec{
			{Bytes: 32 * 1024, Density: 0.05, Lo: 0, Hi: 0x20000000},
			{Bytes: 32 * 1024, Density: 0.05, Lo: 0, Hi: 0x20000000},
			{Bytes: 32 * 1024, Density: 0.05, Lo: 0, Hi: 0x20000000},
			{Bytes: 32 * 1024, Density: 0.05, Lo: 0, Hi: 0x20000000},
		},
		MidThreadPokes:  3,
		MutatingStatics: 3,
		OtherLiveBytes:  otherLiveBytes,
		NLists:          200,
		NodesPerList:    12500,
		NodeWords:       2,
	}
}

// slop returns the frame slop for the optimization level: the
// unoptimized compiles produce the "unnecessarily large stack frames,
// parts of which are never written" of section 3.1.
func slop(optimized bool) int {
	if optimized {
		return 4
	}
	return 12
}

// Table1Profiles returns the profiles in the paper's table-1 row order.
func Table1Profiles() []Profile {
	return []Profile{
		SPARCStatic(false),
		SPARCStatic(true),
		SPARCDynamic(false),
		SPARCDynamic(true),
		SGI(false),
		SGI(true),
		OS2(false),
		OS2(true),
		PCR(0),
	}
}
