package core

import (
	"runtime"
	"time"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Detached background marking, the rate-based assist pacer, and the
// concurrent sweeper (Config.ConcMarkWorkers, Config.ConcurrentSweep).
//
// The lock-chunked concurrent cycle (concurrent.go) interleaves every
// mark chunk with mutator execution under w.mu, so marking throughput
// is bounded by one driver goroutine's share of the lock. Detached
// marking shards the background phase across ConcMarkWorkers
// goroutines that hold no world lock while scanning:
//
//   - Mark bits are CAS transitions and heap words are read/written
//     atomically (alloc.Config.AtomicWords pairs the mutator's store
//     path with mark.Parallel.SetAtomicLoad), so racing a store
//     against a scan is data-race-free; a scan that reads the
//     pre-store value is sound because the store dirtied its block's
//     card under w.mu and dirty blocks are rescanned before the cycle
//     can finish (the usual insertion-barrier argument).
//   - Heap *structure* — block table, free lists, extents, bitmaps —
//     is guarded by w.heapMu: each DetachedChunk runs inside one
//     read-hold, and every allocator mutation that can run during a
//     detached phase takes the write side through lockHeapLocked.
//     Lock order is w.mu strictly before heapMu, never the reverse.
//   - Retirement never waits for goroutine exit: concGenA is the
//     atomic mirror of the active cycle generation, workers re-check
//     it after acquiring the read-hold, and storing 0 (never an active
//     generation) followed by one write-lock acquisition certifies
//     that no chunk is in flight and none can start. A straggler that
//     acquires its read-hold later sees the stale generation and exits
//     without touching the heap.
//   - The fixpoint certificate is "write-lock held and the shared
//     queue empty": every chunk ends with spillAll, so between chunks
//     no worker hides gray objects in a local stack.
const (
	// pacerMaxRounds bounds how many assist chunks one slow-path
	// allocation runs repaying its debt, so a mutator that fell far
	// behind amortises the repayment over its next few allocations
	// instead of stalling once for all of it.
	pacerMaxRounds = 4
	// pacerSafety scales the assist ratio: marking is provisioned to
	// finish after safety× less allocation than the budget that
	// triggered the cycle, absorbing rate estimation error.
	pacerSafety = 2.0
	// concSweepChunk is how many deferred blocks the background sweeper
	// classifies per world-lock hold.
	concSweepChunk = 8
	// workerIdleSleep and workerIdleAfter pace a detached worker that
	// keeps finding the queue empty (the cycle is waiting on dirty
	// rescans or the finale): back off to a sleep after this many
	// consecutive empty chunks instead of burning a processor.
	workerIdleAfter = 8
	workerIdleSleep = 100 * time.Microsecond
)

// lockHeapLocked runs fn, holding the heap-structure write lock around
// it when a detached phase is active (otherwise fn runs bare: no
// detached reader exists, and w.mu already excludes everything else).
// Callers hold w.mu; fn must not nest another lockHeapLocked and must
// not run a finale (retireDetachedLocked takes the same write lock).
func (w *World) lockHeapLocked(fn func()) {
	if w.concDetached {
		w.heapMu.Lock()
		fn()
		w.heapMu.Unlock()
		return
	}
	fn()
}

// retireDetachedLocked ends the detached phase: workers observe the
// cleared generation and exit, and one write-lock acquisition waits
// out any chunk still in flight — after it, no worker touches the
// heap again. Callers hold w.mu. No-op outside a detached phase.
func (w *World) retireDetachedLocked() {
	if !w.concDetached {
		return
	}
	w.concGenA.Store(0)
	w.heapMu.Lock()
	// All in-flight chunks have completed and spilled; any straggler
	// re-checks the generation under its read-hold and exits.
	w.heapMu.Unlock()
	w.concDetached = false
	w.par.SetAtomicLoad(false)
}

// markWorker is one detached background marking goroutine: pull
// bounded chunks from the shared gray queue under the heap-structure
// read lock until the cycle's generation retires. The marked bytes
// feed the pacer as credit. par and gen are captured at spawn so a
// rebuilt parallel marker or a later cycle never aliases this worker.
func (w *World) markWorker(par parChunker, gen uint64, i int) {
	idle := 0
	for {
		if w.concGenA.Load() != gen {
			return
		}
		w.heapMu.RLock()
		if w.concGenA.Load() != gen {
			w.heapMu.RUnlock()
			return
		}
		objects, bytes := par.DetachedChunk(i, w.cfg.MarkQuantum)
		w.heapMu.RUnlock()
		if bytes > 0 {
			w.pacerCredit.Add(int64(bytes))
		}
		if objects == 0 {
			idle++
			if idle > workerIdleAfter {
				time.Sleep(workerIdleSleep)
			} else {
				runtime.Gosched()
			}
			continue
		}
		idle = 0
		runtime.Gosched()
	}
}

// parChunker is the slice of mark.Parallel a detached worker uses;
// an interface so the worker provably touches nothing else.
type parChunker interface {
	DetachedChunk(i, budget int) (objects int, bytes uint64)
}

// concDetachedAdvanceLocked is concChunkLocked's detached-mode body:
// contribute one assist chunk, then decide whether the cycle can
// advance — the queue must be empty both before and after a write-lock
// acquisition (the quiescence certificate) for the gray set to be
// provably drained. Callers hold w.mu (and no heap read/write hold).
func (w *World) concDetachedAdvanceLocked(quantum int) bool {
	if !w.concActive {
		return true
	}
	if quantum <= 0 {
		quantum = w.cfg.MarkQuantum
	}
	if _, bytes := w.par.AssistChunk(quantum); bytes > 0 {
		w.pacerCredit.Add(int64(bytes))
	}
	if w.par.QueueSize() != 0 {
		return false
	}
	// The queue looks empty. Certify: with the write lock held no chunk
	// is in flight, and chunks end with spillAll, so an empty queue
	// under the lock means the gray set is empty.
	w.heapMu.Lock()
	empty := w.par.QueueSize() == 0
	w.heapMu.Unlock()
	if !empty {
		return false
	}
	if w.concPasses < concMaxPasses && w.Heap.CountDirty() > concFinaleDirtyBudget {
		w.concPasses++
		w.stageDirtyRescanLocked()
		// Staged tasks are invisible to detached workers (they pop the
		// queue directly); publish them.
		w.par.FlushStaged()
		return false
	}
	w.stwFinishConcurrent()
	return true
}

// pacerInitLocked arms the pacer at a cycle's snapshot: zero credit,
// the allocation cursor at the current total, and a ratio provisioning
// the live heap's worth of marking across the allocation budget that
// triggers cycles (heap/GCDivisor, or heap/MinorDivisor for minor
// cycles), scaled by pacerSafety. Callers hold w.mu.
func (w *World) pacerInitLocked(minor bool) {
	st := w.Heap.Stats()
	w.pacerLastAlloc = st.BytesAllocated
	w.pacerCredit.Store(0)
	div := w.cfg.GCDivisor
	if minor && w.cfg.MinorDivisor > 0 {
		div = w.cfg.MinorDivisor
	}
	if div <= 0 {
		// Explicitly driven cycles (tests, benchmarks) have no trigger
		// budget; fall back to the expansion headroom policy.
		div = w.cfg.FreeSpaceDivisor
	}
	budget := st.HeapBytes / div
	if budget < mem.PageBytes {
		budget = mem.PageBytes
	}
	live := st.BytesLive
	if live < 64<<10 {
		live = 64 << 10
	}
	w.pacerRatio = pacerSafety * float64(live) / float64(budget)
	w.met.pacerCreditB.Set(0)
}

// pacerAssistLocked is the allocation slow path's assist: debit the
// pacer by the marking debt the allocation since its last look implies
// (bytes allocated × ratio) and, while the credit is negative, repay
// it with bounded mark chunks. Marking done by the background workers
// and driver accrues as credit, so a mutator allocating against a
// healthy background phase never assists; an allocation burst that
// outruns the workers assists proportionally. Callers hold w.mu with
// a concurrent cycle active.
func (w *World) pacerAssistLocked() {
	alloced := w.Heap.Stats().BytesAllocated
	if alloced > w.pacerLastAlloc {
		debt := float64(alloced-w.pacerLastAlloc) * w.pacerRatio
		w.pacerLastAlloc = alloced
		w.pacerCredit.Add(-int64(debt))
	}
	owed := -w.pacerCredit.Load()
	if owed <= 0 {
		w.met.pacerCreditB.Set(w.pacerCredit.Load())
		return
	}
	start := time.Now()
	for round := 0; round < pacerMaxRounds && w.pacerCredit.Load() < 0; round++ {
		if w.concDetached {
			_, bytes := w.par.AssistChunk(w.cfg.MarkQuantum)
			if bytes == 0 {
				// Nothing to pull: the gray set may be drained. Advance
				// the cycle state (rescan staging or the finale) once and
				// stop repaying — the debt is against work that no longer
				// exists.
				w.concDetachedAdvanceLocked(w.cfg.MarkQuantum)
				break
			}
			w.pacerCredit.Add(int64(bytes))
		} else {
			// Lock-chunked cycles credit marked bytes inside
			// concChunkLocked itself (the background driver shares the
			// same accounting path).
			if w.concChunkLocked(w.cfg.MarkQuantum) {
				break // the chunk completed the cycle
			}
		}
	}
	ns := time.Since(start).Nanoseconds()
	w.met.pacerAssistNs.Add(uint64(ns))
	w.met.pacerCreditB.Set(w.pacerCredit.Load())
	if w.tracer.Enabled() {
		w.tracer.Emit(trace.EvPacerAssist, ns, int64(owed), w.pacerCredit.Load())
	}
}

// driveSweep is the background sweeper (Config.ConcurrentSweep): after
// a cycle's finale resumes the world, classify deferred lazy-sweep
// blocks a chunk at a time under the world lock until the backlog is
// drained, the cycle generation moves on, or the allocator's free
// lists are all stocked (SweepChunk then yields to the demand drain,
// which keeps allocation addresses bit-identical to the eager sweep).
func (w *World) driveSweep(gen int) {
	for {
		w.mu.Lock()
		if w.collections != gen || w.Heap.SweepPending() == 0 {
			w.mu.Unlock()
			return
		}
		n := 0
		w.lockHeapLocked(func() { n = w.Heap.SweepChunk(concSweepChunk) })
		if n > 0 {
			w.met.concSweepBlocks.Add(uint64(n))
		}
		w.mu.Unlock()
		if n == 0 {
			return
		}
		runtime.Gosched()
	}
}
