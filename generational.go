package repro

import (
	"repro/internal/simrand"
	"repro/internal/stats"
)

// GenerationalRow is one stack-hygiene configuration of the
// generational-ceiling experiment (E12).
type GenerationalRow struct {
	Clear          ClearPolicy
	MinorCycles    int
	TotalPromoted  uint64 // objects promoted to the old generation by minors
	TrueLive       uint64 // objects actually reachable at the end
	GarbageTenured uint64 // promoted objects the final full collection freed
}

// GenerationalOptions configures the experiment.
type GenerationalOptions struct {
	Iterations int // default 400
	BatchCells int // temporary cells per iteration (default 200)
	KeepEvery  int // one cell per this many iterations is really kept (default 10)
	Seed       uint64
}

// GenerationalCeiling measures the paper's closing section-3.1
// observation: "we also observed that stray stack pointers can
// significantly lengthen the lifetime of some objects, thus placing a
// ceiling on the effectiveness of generational collection."
//
// A generational (sticky-mark-bit) world runs a churn of short-lived
// lists built in oversized stack frames. At each minor collection, any
// stale pointer still visible in the live stack resurrects a dead list
// and the minor cycle promotes it; the promoted garbage then survives
// every later minor, inflating the old generation until a full
// collection pays to remove it. Stack clearing attacks exactly this.
func GenerationalCeiling(opt GenerationalOptions) ([]GenerationalRow, *stats.Table, error) {
	if opt.Iterations == 0 {
		opt.Iterations = 400
	}
	if opt.BatchCells == 0 {
		opt.BatchCells = 200
	}
	if opt.KeepEvery == 0 {
		opt.KeepEvery = 10
	}

	var rows []GenerationalRow
	for _, clear := range []ClearPolicy{ClearNone, ClearCheap, ClearEager} {
		row, err := generationalRun(opt, clear)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, *row)
	}
	tab := stats.NewTable("Section 3.1 (end): stray stack pointers vs generational collection",
		"Stack clearing", "Minor cycles", "Objects promoted", "Truly live at end", "Garbage tenured")
	for _, r := range rows {
		tab.AddF(r.Clear, r.MinorCycles, r.TotalPromoted, r.TrueLive, r.GarbageTenured)
	}
	return rows, tab, nil
}

func generationalRun(opt GenerationalOptions, clear ClearPolicy) (*GenerationalRow, error) {
	w, err := NewWorld(Config{
		InitialHeapBytes: 4 << 20,
		ReserveHeapBytes: 64 << 20,
		Generational:     true,
		GCDivisor:        -1,
		MinorDivisor:     -1, // minors are driven explicitly below
		AllocatorResidue: true,
	})
	if err != nil {
		return nil, err
	}
	m, err := NewMachine(w, MachineConfig{
		StackTop:        0xF0000000,
		StackBytes:      1 << 20,
		FrameSlopWords:  12,
		RegisterWindows: true,
		Clear:           clear,
		ClearChunkWords: 24,
		ClearFullEvery:  64,
		Seed:            opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	keepRoot, err := w.Space.MapNew("kept", KindData, 0x2000, 4096, 4096)
	if err != nil {
		return nil, err
	}
	rng := simrand.New(opt.Seed)

	w.Collect() // establish the (empty) old generation

	var kept Word // head of the truly-retained list
	var promoted uint64
	minors := 0
	for it := 0; it < opt.Iterations; it++ {
		ctxWords := 1 + rng.Intn(256)
		err := m.WithFrame(ctxWords, func(ctx *Frame) error {
			// Build this iteration's short-lived list in a subframe. Its
			// locals (the running head, the allocator's residue) are
			// left behind by the pop, at depths that later iterations'
			// context frames cover as never-written slop.
			err := m.WithFrame(4, func(f *Frame) error {
				var head Word
				for i := 0; i < opt.BatchCells; i++ {
					cell, err := w.Allocate(2, false)
					if err != nil {
						return err
					}
					w.Store(cell, Word(i))
					w.Store(cell+4, head)
					head = Word(cell)
					f.Store(0, head)
				}
				if it%opt.KeepEvery == 0 {
					// Genuinely retain one cell: append through the old
					// structure (write barrier path).
					cell, err := w.Allocate(2, false)
					if err != nil {
						return err
					}
					w.Store(cell, 0xCAFE)
					w.Store(cell+4, kept)
					kept = Word(cell)
					keepRoot.Store(0x2000, kept)
				}
				return nil
			})
			if err != nil {
				return err
			}
			// The minor collection runs after the batch has died, while
			// the context frame is live: anything it promotes beyond
			// the kept cell was resurrected by a stale stack pointer.
			st := w.CollectMinor()
			promoted += st.Promoted
			minors++
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Top-of-loop shallow allocations give the clearing hook its
		// shot at the dead region, as in the reversal benchmark.
		for k := 0; k < 4; k++ {
			if _, err := w.Allocate(2, false); err != nil {
				return nil, err
			}
		}
	}

	// The old generation now holds every promoted object; a final full
	// collection reveals how much of it was garbage.
	beforeFull := w.Heap.Stats().ObjectsLive
	m.ClearDeadStack()
	m.ClearRegisters()
	st := w.Collect()
	return &GenerationalRow{
		Clear:          clear,
		MinorCycles:    minors,
		TotalPromoted:  promoted,
		TrueLive:       st.Sweep.ObjectsLive,
		GarbageTenured: beforeFull - st.Sweep.ObjectsLive,
	}, nil
}
