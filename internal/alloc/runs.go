package alloc

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// Batched free-list carve-out for per-mutator allocation caches
// (core.Mutator). The paper's collector serves multi-threaded PCR
// programs; the standard recipe — used by the Boehm collector's
// thread-local free lists and by nofl-style block allocators alike —
// is to hand each mutator a private run of free slots in one locked
// operation, so the common allocation is a lock-free pointer bump
// along the run.
//
// The contract that keeps the single-mutator path bit-for-bit
// identical to per-object Alloc calls:
//
//   - AllocRun pops slots off the same threaded free list, in the same
//     order, with the same refill trigger (an empty list at entry) that
//     a sequence of Alloc calls would use, and stops early when the
//     list runs dry rather than refilling mid-run — so block
//     dedication and lazy-sweep drains happen at exactly the same
//     allocation index as the unbatched path.
//   - Carved slots get their alloc bits and liveSlots accounting
//     immediately (the bitmaps are shared, word-granular state that a
//     lock-free consumer must not touch), but the allocation *stats*
//     are deferred: the mutator counts consumed slots locally and
//     publishes them with CommitAllocs at its next slow path or
//     safepoint, so BytesSinceGC — the collection trigger — reflects
//     only objects actually handed out.
//   - ReturnRun restores the unconsumed tail of a run exactly: pushed
//     back in reverse, the rebuilt list has the same head, the same
//     link words, and the same bits as if the tail had never been
//     carved. A flush at a safepoint is therefore invisible to the
//     sweep that follows it.
//
// A carved slot's link word is zeroed at carve time (under the
// caller's lock); the consumer never writes heap memory, which keeps
// the fast path free of any shared-memory access.

// AllocRun carves up to max free slots of the small size class for
// nwords into out (appended and returned). The first slot may refill
// the free list — sweeping lazy-pending blocks or dedicating a fresh
// block — exactly as a single Alloc would; ErrNeedMemory propagates to
// the caller's collect/expand retry policy with nothing carved. The
// run ends early when the list empties: the next AllocRun refills at
// the same point per-object allocation would have.
func (a *Allocator) AllocRun(nwords int, atomic bool, max int, out []mem.Addr) ([]mem.Addr, error) {
	if nwords < 1 {
		return out, fmt.Errorf("alloc: bad size %d", nwords)
	}
	if IsLarge(nwords) {
		return out, fmt.Errorf("alloc: AllocRun of large object (%d words)", nwords)
	}
	if a.cfg.LineAlloc {
		// Under the line profile small untyped slots are never threaded;
		// mixing list carves with bump spans would corrupt both.
		return out, fmt.Errorf("alloc: AllocRun under LineAlloc (use AllocSpan)")
	}
	if max < 1 {
		max = 1
	}
	class, words := ClassFor(nwords)
	idx := class
	if atomic {
		idx += NumClasses
	}
	if a.freeList[idx] == 0 {
		if err := a.refill(class, atomic, idx, false); err != nil {
			return out, err
		}
	}
	for n := 0; n < max && a.freeList[idx] != 0; n++ {
		p := a.freeList[idx]
		next, err := a.loadWord(p)
		if err != nil {
			return out, fmt.Errorf("alloc: corrupt free list for class %d: %v", class, err)
		}
		a.freeList[idx] = mem.Addr(next)
		if err := a.storeWord(p, 0); err != nil {
			return out, err
		}
		bi := a.blockIndex(p)
		b := &a.blocks[bi]
		bitSet(b.allocBits, int(p-a.blockBase(bi))/(words*mem.WordBytes))
		b.liveSlots++
		out = append(out, p)
	}
	return out, nil
}

// ReturnRun gives the unconsumed tail of a carved run back to its free
// list, restoring exactly the list a sequence of per-object Allocs
// would have left: slots are pushed in reverse so run[0] becomes the
// head again with its original links rebuilt. Stats are untouched —
// AllocRun never counted the slots (see CommitAllocs).
func (a *Allocator) ReturnRun(nwords int, atomic bool, run []mem.Addr) {
	if len(run) == 0 {
		return
	}
	class, words := ClassFor(nwords)
	idx := class
	if atomic {
		idx += NumClasses
	}
	for i := len(run) - 1; i >= 0; i-- {
		p := run[i]
		bi := a.blockIndex(p)
		b := &a.blocks[bi]
		slot := int(p-a.blockBase(bi)) / (words * mem.WordBytes)
		bitClear(b.allocBits, slot)
		// A returned slot may carry a mark bit: born-grey allocation
		// marks whole carved runs during a concurrent cycle, and a
		// conservative root can mark an outstanding slot mid-cycle.
		// Clear it, or markedCount would overstate the live survey the
		// next sweep bases its accounting on.
		if bitGet(b.markBits, slot) {
			bitClear(b.markBits, slot)
			b.markedCount--
		}
		b.liveSlots--
		a.storeWord(p, mem.Word(a.freeList[idx]))
		a.freeList[idx] = p
	}
}

// CommitAllocs folds a mutator's locally-counted consumed-slot totals
// into the allocator's statistics. Callers hold the central lock; the
// per-slot carve bookkeeping already happened in AllocRun, so this is
// the only accounting a cached allocation defers.
func (a *Allocator) CommitAllocs(objects, bytes uint64) {
	a.stats.ObjectsAllocated += objects
	a.stats.BytesAllocated += bytes
	a.stats.BytesSinceGC += bytes
}

// CheckIntegrity audits the allocator's slot accounting against the
// given set of slots currently carved into mutator caches. It verifies
// the concurrency battery's core invariants:
//
//   - no double-carve: no slot appears twice across the free lists and
//     the caches, and no free-list slot has its alloc bit set;
//   - cached slots are live: every cached slot is a small-block slot
//     with its alloc bit set (so a sweep that ran now without flushing
//     would misclassify it — which is why safepoints flush first);
//   - conservation of slots: for every swept small block,
//     alloc-bit population == liveSlots and live + free == usable, so
//     live (including cached) + free + unusable = total;
//   - conservation of blocks: free spans hold exactly the blockFree
//     blocks and the dedicated/free counts match Stats.
//
// It returns nil when consistent and a descriptive error otherwise.
// It is read-only and single-threaded: callers stop the world (or own
// every lock) first.
func (a *Allocator) CheckIntegrity(cached []mem.Addr) error {
	type slotRef struct {
		bi   int
		slot int
	}
	seen := make(map[mem.Addr]string, len(cached))
	cachedSet := make(map[mem.Addr]bool, len(cached))
	freePerBlock := make(map[int]int)

	locate := func(p mem.Addr, from string) (slotRef, *blockDesc, error) {
		if !a.InCommitted(p) {
			return slotRef{}, nil, fmt.Errorf("alloc: integrity: %s slot %#x outside committed heap", from, uint32(p))
		}
		bi := a.blockIndex(p)
		b := &a.blocks[bi]
		if b.state != blockSmall {
			return slotRef{}, nil, fmt.Errorf("alloc: integrity: %s slot %#x in non-small block %d (state %d)", from, uint32(p), bi, b.state)
		}
		span := int(b.objWords) * mem.WordBytes
		off := int(p - a.blockBase(bi))
		if off%span != 0 {
			return slotRef{}, nil, fmt.Errorf("alloc: integrity: %s slot %#x misaligned for class %d", from, uint32(p), b.class)
		}
		return slotRef{bi: bi, slot: off / span}, b, nil
	}

	for _, p := range cached {
		if cachedSet[p] {
			return fmt.Errorf("alloc: integrity: slot %#x carved into two mutator caches", uint32(p))
		}
		cachedSet[p] = true
		seen[p] = "cache"
		ref, b, err := locate(p, "cached")
		if err != nil {
			return err
		}
		if b.pendingSweep {
			return fmt.Errorf("alloc: integrity: cached slot %#x in sweep-pending block %d", uint32(p), ref.bi)
		}
		if !bitGet(b.allocBits, ref.slot) {
			return fmt.Errorf("alloc: integrity: cached slot %#x has a clear alloc bit", uint32(p))
		}
	}

	walk := func(head mem.Addr, label string) error {
		for p := head; p != 0; {
			if prev, dup := seen[p]; dup {
				return fmt.Errorf("alloc: integrity: slot %#x on %s already accounted to %s", uint32(p), label, prev)
			}
			seen[p] = label
			ref, b, err := locate(p, label)
			if err != nil {
				return err
			}
			if b.pendingSweep {
				return fmt.Errorf("alloc: integrity: free-list slot %#x in sweep-pending block %d", uint32(p), ref.bi)
			}
			if bitGet(b.allocBits, ref.slot) {
				return fmt.Errorf("alloc: integrity: slot %#x on %s has its alloc bit set", uint32(p), label)
			}
			freePerBlock[ref.bi]++
			next, err := a.loadWord(p)
			if err != nil {
				return fmt.Errorf("alloc: integrity: %s: %v", label, err)
			}
			p = mem.Addr(next)
		}
		return nil
	}
	// Central bump spans (LineAlloc) hold carved-but-unissued slots;
	// account them exactly like mutator-cached slots.
	var spanErr error
	a.lineSpanSlots(func(p mem.Addr) {
		if spanErr != nil {
			return
		}
		if prev, dup := seen[p]; dup {
			spanErr = fmt.Errorf("alloc: integrity: slot %#x in a central span already accounted to %s", uint32(p), prev)
			return
		}
		seen[p] = "central span"
		ref, b, err := locate(p, "central span")
		if err != nil {
			spanErr = err
			return
		}
		if b.pendingSweep {
			spanErr = fmt.Errorf("alloc: integrity: central-span slot %#x in sweep-pending block %d", uint32(p), ref.bi)
			return
		}
		if !bitGet(b.allocBits, ref.slot) {
			spanErr = fmt.Errorf("alloc: integrity: central-span slot %#x has a clear alloc bit", uint32(p))
		}
	})
	if spanErr != nil {
		return spanErr
	}

	for idx, head := range a.freeList {
		if err := walk(head, fmt.Sprintf("freeList[%d]", idx)); err != nil {
			return err
		}
	}
	for key, head := range a.typedFree {
		if err := walk(head, fmt.Sprintf("typedFree[%d/%d]", key.class, key.desc)); err != nil {
			return err
		}
	}

	freeBlocks, dedicated := 0, 0
	for bi := range a.blocks {
		b := &a.blocks[bi]
		if b.state == blockFree {
			freeBlocks++
			continue
		}
		dedicated++
		if b.state != blockSmall {
			continue
		}
		if b.pendingSweep {
			// A sweep-pending block's bits are the previous cycle's and
			// its slots are on no list; nothing to reconcile until
			// sweepBlock runs.
			continue
		}
		live := 0
		for _, w := range b.allocBits {
			live += bits.OnesCount64(w)
		}
		if live != int(b.liveSlots) {
			return fmt.Errorf("alloc: integrity: block %d alloc bits %d != liveSlots %d", bi, live, b.liveSlots)
		}
		words := int(b.objWords)
		usable := slotsPerBlock(words) - a.firstSlot(words)
		if a.isLineBlock(b) {
			// Line blocks thread nothing: free space is the lines' affair.
			// The cached line mask must agree with the alloc bits.
			if freePerBlock[bi] != 0 {
				return fmt.Errorf("alloc: integrity: line block %d has %d threaded slots", bi, freePerBlock[bi])
			}
			if b.lineLive != a.lineLiveOf(bi) {
				return fmt.Errorf("alloc: integrity: line block %d lineLive %#x != derived %#x", bi, b.lineLive, a.lineLiveOf(bi))
			}
			continue
		}
		if live+freePerBlock[bi] != usable {
			return fmt.Errorf("alloc: integrity: block %d live %d + free %d != usable %d", bi, live, freePerBlock[bi], usable)
		}
	}
	spanFree := 0
	for _, sp := range a.free {
		for j := 0; j < sp.n; j++ {
			if st := a.blocks[sp.start+j].state; st != blockFree {
				return fmt.Errorf("alloc: integrity: free span holds block %d with state %d", sp.start+j, st)
			}
		}
		spanFree += sp.n
	}
	if spanFree != freeBlocks {
		return fmt.Errorf("alloc: integrity: free spans cover %d blocks, %d blocks are free", spanFree, freeBlocks)
	}
	if freeBlocks != a.stats.BlocksFree || dedicated != a.stats.BlocksDedicated {
		return fmt.Errorf("alloc: integrity: stats say %d free/%d dedicated, heap has %d/%d",
			a.stats.BlocksFree, a.stats.BlocksDedicated, freeBlocks, dedicated)
	}
	return nil
}
