package repro

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/stats"
)

// LeakBenchOptions parameterises the leak-detection measurement.
type LeakBenchOptions struct {
	Rounds      int // collection rounds per workload (default 24)
	LeakCells   int // cons cells the leak appends per round (default 64)
	ChurnSlots  int // root slots holding churning lists (default 8)
	SampleEvery int // watcher sampling divisor (default 2)
	Window      int // watcher trend window in samples (default 6)
	// MinGrowthBytes is the watcher alert floor (default 2048).
	MinGrowthBytes uint64
	// Trace, when non-nil, records collector events (cycles, provenance
	// harvests, leak alerts) from the measured world.
	Trace *TraceRecorder
}

// LeakBenchRow is one workload's outcome. Every count is deterministic
// — the workloads are single-threaded with automatic collection off,
// the watcher's confidence model is pure arithmetic over retained
// totals, and attribution keys come from fixed root-segment slots — so
// the regression gate checks the detection counts exactly: a watcher
// change that fires one alert late, or attributes growth to the wrong
// slot, diverges here.
type LeakBenchRow struct {
	Workload       string `json:"workload"` // "leak" or "churn"
	Rounds         int    `json:"rounds"`
	Collections    int    `json:"collections"`
	WatchedSamples uint64 `json:"watched_samples"`
	AlertsTotal    int    `json:"alerts_total"`
	// LeakKeyAlerts counts alerts attributed to the planted leak slot;
	// FalsePositives counts alerts on any other key.
	LeakKeyAlerts   int `json:"leak_key_alerts"`
	FalsePositives  int `json:"false_positives"`
	FirstAlertCycle int `json:"first_alert_cycle"` // 0: never alerted
	// LeakGrowthBytes sums the windowed growth the leak key's alerts
	// reported; LeakLastBytes is its final trend level.
	LeakGrowthBytes int64   `json:"leak_growth_bytes"`
	LeakLastBytes   uint64  `json:"leak_last_bytes"`
	TrendKeys       int     `json:"trend_keys"` // series live at stop
	LiveObjects     uint64  `json:"live_objects"`
	ElapsedMs       float64 `json:"elapsed_ms"`
	// GoMaxProcs records the scheduler width the row ran under; the
	// regression gate treats timing columns as advisory when baseline
	// and candidate rows disagree here.
	GoMaxProcs int `json:"gomaxprocs"`
}

// LeakBenchResult is the full measurement.
type LeakBenchResult struct {
	GoMaxProcs     int            `json:"gomaxprocs"`
	NumCPU         int            `json:"numcpu"`
	Rounds         int            `json:"rounds"`
	SampleEvery    int            `json:"sample_every"`
	Window         int            `json:"window"`
	MinGrowthBytes uint64         `json:"min_growth_bytes"`
	Rows           []LeakBenchRow `json:"rows"`
}

// leakBenchWorld runs one leak-detection workload: a root segment with
// a leak slot (slot 0) and ChurnSlots churning slots; each round
// appends LeakCells cons cells to the leak list (when leaking),
// rebuilds every churn list at a length that oscillates sample-to-
// sample far above MinGrowthBytes, and collects manually. The watcher
// samples at the collection barrier; its alert stream decides the row.
func leakBenchWorld(opts LeakBenchOptions, leaking bool, tr *TraceRecorder) (LeakBenchRow, error) {
	row := LeakBenchRow{Workload: "churn", Rounds: opts.Rounds, GoMaxProcs: runtime.GOMAXPROCS(0)}
	if leaking {
		row.Workload = "leak"
	}
	// Automatic collection off (GCDivisor < 0): collections happen only
	// at the per-round barrier, so sample cycles are reproducible.
	w, err := NewWorld(Config{Blacklisting: BlacklistDense, LazySweep: true, GCDivisor: -1})
	if err != nil {
		return row, err
	}
	w.SetTracer(tr)
	const rootBase = Addr(0x2000)
	roots, err := w.Space.MapNew("roots", KindData, rootBase, 4096, 4096)
	if err != nil {
		return row, err
	}
	alerts, err := w.StartRetentionWatch(WatchConfig{
		SampleEvery:    opts.SampleEvery,
		Window:         opts.Window,
		MinGrowthBytes: opts.MinGrowthBytes,
		Buffer:         4 * opts.Rounds,
	})
	if err != nil {
		return row, err
	}
	// The planted leak's attribution key: root-segment slot 0.
	leakKey := RootSlotID{Kind: RootSegment, Src: 0, Index: 0, Addr: rootBase}.String()

	cons := func(car, cdr Word) (Addr, error) {
		cell, err := w.Allocate(2, false)
		if err != nil {
			return 0, err
		}
		if err := w.Store(cell, car); err != nil {
			return 0, err
		}
		return cell, w.Store(cell+WordBytes, cdr)
	}
	list := func(n int) (Addr, error) {
		var head Word
		for i := n; i >= 1; i-- {
			cell, err := cons(Word(i), head)
			if err != nil {
				return 0, err
			}
			head = Word(cell)
		}
		return Addr(head), nil
	}

	start := time.Now()
	var leakHead Word
	for round := 1; round <= opts.Rounds; round++ {
		if leaking {
			for i := 0; i < opts.LeakCells; i++ {
				cell, err := cons(Word(round), leakHead)
				if err != nil {
					return row, err
				}
				leakHead = Word(cell)
				if err := roots.Store(rootBase, leakHead); err != nil {
					return row, err
				}
			}
		}
		// Churn: every slot drops its old list and takes a fresh one whose
		// length flips between samples (round/SampleEvery parity), so the
		// retained level oscillates by ~ChurnSlots*40*8 bytes — well above
		// MinGrowthBytes, but with zero sustained growth.
		churnLen := 20
		if (round/opts.SampleEvery)%2 == 1 {
			churnLen = 60
		}
		for s := 1; s <= opts.ChurnSlots; s++ {
			head, err := list(churnLen)
			if err != nil {
				return row, err
			}
			if err := roots.Store(rootBase+Addr(s*WordBytes), Word(head)); err != nil {
				return row, err
			}
		}
		w.Collect()
		row.Collections++
	}
	row.ElapsedMs = float64(time.Since(start).Nanoseconds()) / 1e6

	trends := w.StopRetentionWatch()
	row.TrendKeys = len(trends)
	for _, t := range trends {
		if t.Key == leakKey {
			row.LeakLastBytes = t.LastBytes
		}
	}
	for a := range alerts { // closed by StopRetentionWatch
		row.AlertsTotal++
		if a.Key == leakKey {
			row.LeakKeyAlerts++
			row.LeakGrowthBytes += a.GrowthBytes
			if row.FirstAlertCycle == 0 {
				row.FirstAlertCycle = a.Cycle
			}
		} else {
			row.FalsePositives++
		}
	}
	row.WatchedSamples = w.Metrics().Counter("leak_watched_cycles").Load()
	st := w.Collect()
	row.LiveObjects = st.Sweep.ObjectsLive

	// Self-check: the planted leak must be flagged within one extra
	// window of the earliest possible cycle, with no alerts on the
	// churning or stable keys; the control must stay silent.
	detectBy := 2 * opts.SampleEvery * opts.Window
	if leaking {
		switch {
		case row.LeakKeyAlerts == 0:
			return row, fmt.Errorf("leakbench: planted leak never alerted (%d trend keys)", row.TrendKeys)
		case row.FirstAlertCycle > detectBy:
			return row, fmt.Errorf("leakbench: first alert at cycle %d, want <= %d", row.FirstAlertCycle, detectBy)
		case row.FalsePositives > 0:
			return row, fmt.Errorf("leakbench: %d false-positive alerts", row.FalsePositives)
		}
	} else if row.AlertsTotal != 0 {
		return row, fmt.Errorf("leakbench: churn-only control raised %d alerts", row.AlertsTotal)
	}
	return row, nil
}

// LeakBench measures the online retention watcher on a planted
// slow-leak-plus-churn scenario: the "leak" workload grows a linked
// list from one root slot while eight other slots churn whole lists
// every round; the "churn" workload is the same world without the
// leak. The watcher must flag the leaking slot within a bounded number
// of collections and stay silent on everything else — both outcomes
// are exact and self-checked, and the regression gate pins them.
func LeakBench(opts LeakBenchOptions) (*LeakBenchResult, *stats.Table, error) {
	if opts.Rounds == 0 {
		opts.Rounds = 24
	}
	if opts.LeakCells == 0 {
		opts.LeakCells = 64
	}
	if opts.ChurnSlots == 0 {
		opts.ChurnSlots = 8
	}
	if opts.SampleEvery == 0 {
		opts.SampleEvery = 2
	}
	if opts.Window == 0 {
		opts.Window = 6
	}
	if opts.MinGrowthBytes == 0 {
		opts.MinGrowthBytes = 2048
	}
	res := &LeakBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Rounds: opts.Rounds, SampleEvery: opts.SampleEvery,
		Window: opts.Window, MinGrowthBytes: opts.MinGrowthBytes,
	}
	for _, leaking := range []bool{true, false} {
		row, err := leakBenchWorld(opts, leaking, opts.Trace)
		if err != nil {
			return nil, nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	tab := stats.NewTable(
		fmt.Sprintf("Leak watch: planted leak vs churn control (%d rounds, sample every %d, window %d)",
			opts.Rounds, opts.SampleEvery, opts.Window),
		"workload", "samples", "alerts", "leak-key", "false-pos", "first@cycle", "growth KB", "elapsed ms")
	for _, r := range res.Rows {
		tab.AddF(r.Workload, r.WatchedSamples, r.AlertsTotal, r.LeakKeyAlerts, r.FalsePositives,
			r.FirstAlertCycle,
			fmt.Sprintf("%.1f", float64(r.LeakGrowthBytes)/1024),
			fmt.Sprintf("%.2f", r.ElapsedMs))
	}
	return res, tab, nil
}
