package blacklist

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newDense(t *testing.T, base, limit mem.Addr, granule uint32) *Dense {
	t.Helper()
	d, err := NewDense(base, limit, granule)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGranuleValidation(t *testing.T) {
	if _, err := NewDense(0x1000, 0x2000, 3000); err == nil {
		t.Error("non-power-of-two granule accepted")
	}
	if _, err := NewDense(0x1000, 0x2000, 2); err == nil {
		t.Error("sub-word granule accepted")
	}
	if _, err := NewDense(0x2000, 0x1000, 4096); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHashed(100, 1); err == nil {
		t.Error("hashed sub-word granule accepted")
	}
}

func TestDenseAddContains(t *testing.T) {
	d := newDense(t, 0x10000, 0x20000, mem.PageBytes)
	if d.Contains(0x10100) {
		t.Fatal("fresh list contains something")
	}
	d.Add(0x10104)
	if !d.Contains(0x10100) || !d.Contains(0x10FFC) {
		t.Fatal("same-page addresses should be blacklisted together")
	}
	if d.Contains(0x11000) {
		t.Fatal("next page should not be blacklisted")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Adding to the same page is idempotent for Len.
	d.Add(0x10108)
	if d.Len() != 1 {
		t.Fatalf("Len after duplicate add = %d", d.Len())
	}
}

func TestDenseOutOfRangeIgnored(t *testing.T) {
	d := newDense(t, 0x10000, 0x20000, mem.PageBytes)
	d.Add(0x0FFFC) // below range
	d.Add(0x20000) // at limit
	d.Add(0xFFFFFFFC)
	if d.Len() != 0 {
		t.Fatalf("out-of-range adds changed Len: %d", d.Len())
	}
	if d.Contains(0x0FFFC) || d.Contains(0x20000) {
		t.Fatal("out-of-range Contains should be false")
	}
}

func TestDenseContainsRange(t *testing.T) {
	d := newDense(t, 0x10000, 0x40000, mem.PageBytes)
	d.Add(0x23000)
	tests := []struct {
		lo, hi mem.Addr
		want   bool
	}{
		{0x10000, 0x20000, false},
		{0x20000, 0x30000, true},
		{0x23000, 0x24000, true},
		{0x22000, 0x23001, true}, // touches first byte of bad page
		{0x22000, 0x23000, false},
		{0x24000, 0x40000, false},
		{0x23500, 0x23500, false}, // empty range
		{0x0, 0x10000, false},     // wholly below
		{0x40000, 0x50000, false}, // wholly above
		{0x0, 0xFFFFFFFF, true},   // spans everything
	}
	for _, tt := range tests {
		if got := d.ContainsRange(tt.lo, tt.hi); got != tt.want {
			t.Errorf("ContainsRange(%#x,%#x) = %v, want %v",
				uint32(tt.lo), uint32(tt.hi), got, tt.want)
		}
	}
}

func TestDenseRangeMatchesPointQueries(t *testing.T) {
	d := newDense(t, 0x10000, 0x30000, mem.PageBytes)
	f := func(addSel, lo16, hi16 uint16) bool {
		d.Clear()
		a := mem.Addr(0x10000 + uint32(addSel)%0x20000)
		d.Add(a)
		lo := mem.Addr(0x10000 + uint32(lo16)%0x20000)
		hi := mem.Addr(0x10000 + uint32(hi16)%0x20000)
		if hi < lo {
			lo, hi = hi, lo
		}
		want := false
		for p := lo &^ (mem.PageBytes - 1); p < hi; p += mem.PageBytes {
			if d.Contains(p) {
				want = true
				break
			}
		}
		return d.ContainsRange(lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDenseClear(t *testing.T) {
	d := newDense(t, 0x10000, 0x20000, mem.PageBytes)
	d.Add(0x11000)
	d.Add(0x12000)
	d.Clear()
	if d.Len() != 0 || d.Contains(0x11000) {
		t.Fatal("Clear did not clear")
	}
}

func TestDenseExpire(t *testing.T) {
	d := newDense(t, 0x10000, 0x20000, mem.PageBytes)
	d.Add(0x11000) // seen in cycle 1
	d.BeginCycle() // cycle 2
	d.Add(0x12000)
	d.BeginCycle() // cycle 3
	d.BeginCycle() // cycle 4

	// 0x11000 was last seen 3 cycles ago, 0x12000 two cycles ago.
	if n := d.Expire(2); n != 1 {
		t.Fatalf("Expire removed %d, want 1", n)
	}
	if d.Contains(0x11000) {
		t.Fatal("stale entry survived Expire")
	}
	if !d.Contains(0x12000) {
		t.Fatal("fresh entry removed by Expire")
	}
	// Re-adding refreshes the stamp.
	d.Add(0x12000)
	d.BeginCycle()
	if n := d.Expire(5); n != 0 {
		t.Fatalf("Expire removed %d, want 0", n)
	}
}

func TestDenseGranules(t *testing.T) {
	d := newDense(t, 0x10000, 0x20000, mem.PageBytes)
	d.Add(0x13004)
	d.Add(0x11FFC)
	got := SortedAddrs(d.Granules())
	if len(got) != 2 || got[0] != 0x11000 || got[1] != 0x13000 {
		t.Fatalf("Granules = %#v", got)
	}
}

func TestDenseFineGranule(t *testing.T) {
	// 256-byte granule: the ablation configuration.
	d := newDense(t, 0x10000, 0x20000, 256)
	d.Add(0x10080)
	if !d.Contains(0x100FF) {
		t.Fatal("same 256-granule should be blacklisted")
	}
	if d.Contains(0x10100) {
		t.Fatal("fine granule pinned a whole page")
	}
}

func TestDenseUnalignedBase(t *testing.T) {
	// Range not granule-aligned: covering granules still work.
	d := newDense(t, 0x10100, 0x1F100, mem.PageBytes)
	d.Add(0x10104)
	if !d.Contains(0x10100) {
		t.Fatal("address near unaligned base not covered")
	}
	d.Add(0x1F0FC)
	if !d.Contains(0x1F000) {
		t.Fatal("address near unaligned limit not covered")
	}
}

func TestDenseStats(t *testing.T) {
	d := newDense(t, 0x10000, 0x20000, mem.PageBytes)
	d.Add(0x11000)
	d.Contains(0x11000) // hit
	d.Contains(0x12000) // miss
	d.ContainsRange(0x10000, 0x20000)
	s := d.Stats()
	if s.Adds != 1 || s.Hits != 2 || s.Queries != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestHashedBasics(t *testing.T) {
	h, err := NewHashed(1024, mem.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0x11000)
	if !h.Contains(0x11000) || !h.Contains(0x11FFC) {
		t.Fatal("hashed Contains wrong")
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
	if !h.ContainsRange(0x10000, 0x20000) {
		t.Fatal("hashed ContainsRange missed entry")
	}
	if h.ContainsRange(0x11000, 0x11000) {
		t.Fatal("empty range should be false")
	}
	h.Clear()
	if h.Len() != 0 || h.Contains(0x11000) {
		t.Fatal("Clear did not clear")
	}
}

func TestHashedCollisionsConflate(t *testing.T) {
	// With a tiny table, distinct pages collide; the paper accepts that
	// colliding pages are "effectively blacklisted" together.
	h, _ := NewHashed(64, mem.PageBytes)
	for p := mem.Addr(0); p < 64*4*mem.PageBytes; p += mem.PageBytes {
		h.Add(p)
	}
	if h.Len() > 64 {
		t.Fatalf("Len %d exceeds bucket count", h.Len())
	}
	// Everything added must still be contained (no false negatives).
	for p := mem.Addr(0); p < 64*4*mem.PageBytes; p += mem.PageBytes {
		if !h.Contains(p) {
			t.Fatalf("false negative at %#x", uint32(p))
		}
	}
}

func TestHashedNoFalseNegativesProperty(t *testing.T) {
	h, _ := NewHashed(4096, mem.PageBytes)
	f := func(addrs []uint32) bool {
		h.Clear()
		for _, a := range addrs {
			h.Add(mem.Addr(a))
		}
		for _, a := range addrs {
			if !h.Contains(mem.Addr(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHashedExpire(t *testing.T) {
	h, _ := NewHashed(256, mem.PageBytes)
	h.Add(0x5000)
	h.BeginCycle()
	h.BeginCycle()
	if n := h.Expire(1); n != 1 {
		t.Fatalf("Expire = %d", n)
	}
	if h.Contains(0x5000) {
		t.Fatal("expired entry still present")
	}
	if h.Stats().Expired != 1 {
		t.Fatal("Expired counter wrong")
	}
}

func TestDisabled(t *testing.T) {
	var d Disabled
	d.Add(0x1000)
	if d.Contains(0x1000) || d.ContainsRange(0, 0xFFFFFFFF) || d.Len() != 0 {
		t.Fatal("Disabled should never contain anything")
	}
	d.Clear()
	d.BeginCycle()
	if d.Expire(0) != 0 {
		t.Fatal("Disabled Expire should return 0")
	}
	if d.Stats() != (Stats{}) {
		t.Fatal("Disabled stats should be zero")
	}
}

func BenchmarkDenseAddContains(b *testing.B) {
	d, _ := NewDense(0x100000, 0x4100000, mem.PageBytes)
	for i := 0; i < b.N; i++ {
		a := mem.Addr(0x100000 + uint32(i*4096)%(0x4000000))
		d.Add(a)
		d.Contains(a)
	}
}

func BenchmarkHashedAddContains(b *testing.B) {
	h, _ := NewHashed(1<<14, mem.PageBytes)
	for i := 0; i < b.N; i++ {
		a := mem.Addr(uint32(i) * 4096)
		h.Add(a)
		h.Contains(a)
	}
}

// TestHashedIsSupersetOfDense: on the same Add stream, anything a dense
// blacklist reports is also reported by the hashed form — the hashed
// form only loses precision in one direction (collisions conflate).
func TestHashedIsSupersetOfDense(t *testing.T) {
	d := newDense(t, 0x10000, 0x100000, mem.PageBytes)
	h, err := NewHashed(512, mem.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	f := func(adds []uint16, probe uint16) bool {
		d.Clear()
		h.Clear()
		for _, a16 := range adds {
			a := mem.Addr(0x10000 + uint32(a16)*16)
			d.Add(a)
			h.Add(a)
		}
		p := mem.Addr(0x10000 + uint32(probe)*16)
		if d.Contains(p) && !h.Contains(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
