package repro

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/stats"
)

// AllocBenchOptions parameterises the allocation-profile comparison:
// the free-list profile against the Immix-style line heap
// (Config.LineAlloc), at each requested mutator count.
type AllocBenchOptions struct {
	Mutators []int // mutator counts to measure (default {1, 8})
	Allocs   int   // allocations per mutator (default 40000)
	// Trace, when non-nil, records collector events (span refills,
	// safepoints, cycles) from every measured world (cmd/gcbench -trace).
	Trace *TraceRecorder
}

// AllocBenchRow is one (profile, mutator count) measurement.
type AllocBenchRow struct {
	Profile      string  `json:"profile"` // "freelist" | "line"
	Mutators     int     `json:"mutators"`
	NsPerAlloc   float64 `json:"ns_per_alloc"`
	AllocsPerSec float64 `json:"allocs_per_sec"`
	// ObjectsAllocated is deterministic — every goroutine performs
	// exactly Allocs allocations — so the regression gate checks it
	// exactly, in both profiles: a span double-carved or a slot lost
	// through a safepoint flush breaks conservation here.
	ObjectsAllocated uint64 `json:"objects_allocated"`
	// FastFraction is the share of allocations served from the
	// per-mutator cache (free-list runs or bump spans) without the
	// central lock.
	FastFraction float64 `json:"fast_fraction"`
	Collections  int     `json:"collections"`
	// Line-heap space accounting after the final collection; zero for
	// the free-list profile. WasteBytes is the paper-style overhead
	// figure: free slots stranded inside live lines, unreachable by any
	// bump span until the rest of the line dies. Informational (cycle
	// timing decides which objects die together), not gated.
	LineLiveLines  int    `json:"line_live_lines"`
	LineFreeLines  int    `json:"line_free_lines"`
	LineWasteBytes uint64 `json:"line_waste_bytes"`
	// Speedup is the free-list profile's ns/alloc over this row's at
	// the same mutator count (>1 means the line heap is faster); only
	// meaningful with real cores, so oversubscribed rows report 0.
	Speedup        float64 `json:"speedup_vs_freelist"`
	Oversubscribed bool    `json:"oversubscribed"`
	// GoMaxProcs records the scheduler width the row ran under; the
	// regression gate treats timing columns as advisory when baseline
	// and candidate rows disagree here.
	GoMaxProcs int `json:"gomaxprocs"`
}

// AllocBenchResult is the full measurement with the environment it ran
// in.
type AllocBenchResult struct {
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	Allocs     int             `json:"allocs_per_mutator"`
	Rows       []AllocBenchRow `json:"rows"`
}

// allocBenchProfiles orders the comparison; "freelist" must come first
// so each line row can report its speedup against the matching
// free-list row.
var allocBenchProfiles = []string{"freelist", "line"}

// AllocBench measures allocation throughput of the free-list profile
// against the line heap under the MutBench churn script (mostly
// garbage, every eighth object rooted), at each mutator count. The
// workload and collector configuration are identical across profiles;
// only Config.LineAlloc differs, so the ns/alloc gap is the cost of
// free-list threading versus bump-span carving.
func AllocBench(opts AllocBenchOptions) (*AllocBenchResult, *stats.Table, error) {
	if len(opts.Mutators) == 0 {
		opts.Mutators = []int{1, 8}
	}
	if opts.Allocs == 0 {
		opts.Allocs = 40000
	}
	res := &AllocBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Allocs:     opts.Allocs,
	}
	freelistNs := make(map[int]float64) // mutator count -> freelist ns/alloc
	for _, profile := range allocBenchProfiles {
		for _, n := range opts.Mutators {
			w, err := NewWorld(Config{
				InitialHeapBytes: 16 << 20, ReserveHeapBytes: 64 << 20,
				GCDivisor: 8, LazySweep: true, LineAlloc: profile == "line",
			})
			if err != nil {
				return nil, nil, err
			}
			w.SetTracer(opts.Trace)
			const slots = 8
			data, err := w.Space.MapNew("roots", KindData, 0x2000, n*slots*4, n*slots*4)
			if err != nil {
				return nil, nil, err
			}
			muts := make([]*Mutator, n)
			for g := range muts {
				muts[g] = w.NewMutator()
			}
			sizes := []int{2, 4, 8, 16}
			var wg sync.WaitGroup
			errs := make([]error, n)
			start := time.Now()
			for g := 0; g < n; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					m := muts[g]
					base := Addr(0x2000 + g*slots*4)
					for i := 0; i < opts.Allocs; i++ {
						size := sizes[i&3]
						if i&7 == 0 {
							slot := Addr(4 * ((i >> 3) % slots))
							if _, err := m.AllocateRooted(data, base+slot, size, false); err != nil {
								errs[g] = err
								return
							}
						} else if _, err := m.Allocate(size, false); err != nil {
							errs[g] = err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			elapsed := time.Since(start)
			for g, err := range errs {
				if err != nil {
					return nil, nil, fmt.Errorf("allocbench %s: mutator %d: %w", profile, g, err)
				}
			}
			// The final collection publishes every handle's counters and
			// flushes outstanding bump spans; the integrity audit would
			// catch a double-carved or leaked slot in either profile.
			w.Collect()
			w.FinishSweep()
			if err := w.VerifyIntegrity(); err != nil {
				return nil, nil, fmt.Errorf("allocbench %s: %w", profile, err)
			}
			total := uint64(n * opts.Allocs)
			if got := w.Heap.Stats().ObjectsAllocated; got != total {
				return nil, nil, fmt.Errorf("allocbench %s: %d objects allocated centrally, mutators performed %d",
					profile, got, total)
			}
			var fast uint64
			for _, m := range muts {
				fast += m.Stats().FastAllocs
			}
			ns := float64(elapsed.Nanoseconds()) / float64(total)
			over := n > res.GoMaxProcs
			speedup := 0.0
			if profile == "freelist" {
				freelistNs[n] = ns
			} else if base := freelistNs[n]; base > 0 && !over {
				speedup = base / ns
			}
			ls := w.Heap.LineStats()
			res.Rows = append(res.Rows, AllocBenchRow{
				Profile:          profile,
				Mutators:         n,
				NsPerAlloc:       ns,
				AllocsPerSec:     1e9 / ns,
				ObjectsAllocated: total,
				FastFraction:     float64(fast) / float64(total),
				Collections:      w.Collections(),
				LineLiveLines:    ls.LiveLines,
				LineFreeLines:    ls.FreeLines,
				LineWasteBytes:   ls.WasteBytes,
				Speedup:          speedup,
				Oversubscribed:   over,
				GoMaxProcs:       runtime.GOMAXPROCS(0),
			})
		}
	}
	tab := stats.NewTable(
		fmt.Sprintf("Allocation profiles: free list vs line heap (%d allocs each, GOMAXPROCS=%d, NumCPU=%d)",
			opts.Allocs, res.GoMaxProcs, res.NumCPU),
		"profile", "mutators", "ns/alloc", "Mallocs/s", "fast%", "waste KB", "vs freelist")
	for _, r := range res.Rows {
		speedup := "-"
		if r.Profile == "line" {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
			if r.Oversubscribed {
				speedup = "n/a (oversubscribed)"
			}
		}
		tab.AddF(r.Profile, r.Mutators,
			fmt.Sprintf("%.1f", r.NsPerAlloc),
			fmt.Sprintf("%.2f", r.AllocsPerSec/1e6),
			fmt.Sprintf("%.1f", r.FastFraction*100),
			fmt.Sprintf("%.1f", float64(r.LineWasteBytes)/1024),
			speedup)
	}
	return res, tab, nil
}
