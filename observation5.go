package repro

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// Observation5Result reports the continued-execution experiment (E17).
type Observation5Result struct {
	Seed              uint64
	RetainedInitially int // lists still pinned right after program T
	RetainedByRound   []int
	RoundsToZero      int // -1 if some lists never died
}

// Observation5Options configures the experiment.
type Observation5Options struct {
	Rounds int // continued-execution rounds (default 12)
	Seeds  int // seeds tried to find runs with residual retention (default 8)
}

// Observation5 reproduces the paper's observation 5: "it is likely that
// the references that remain even with blacklisting are not truly
// permanent, and instead originated from a portion of the stack where
// they would be eventually overwritten in a longer running program with
// more varied stack frames. Whenever we have managed to track down
// similar references, this has been the case."
//
// Program T runs with blacklisting on the SPARC(static) profile; runs
// that retain lists (mid-run register/stack residue) then continue with
// rounds of varied stack and register activity. The residual references
// are overwritten and the pinned lists die.
func Observation5(opt Observation5Options) ([]Observation5Result, *stats.Table, error) {
	if opt.Rounds == 0 {
		opt.Rounds = 12
	}
	if opt.Seeds == 0 {
		opt.Seeds = 8
	}
	var results []Observation5Result
	for seed := uint64(1); seed <= uint64(opt.Seeds); seed++ {
		res, err := observation5Run(seed, opt.Rounds)
		if err != nil {
			return nil, nil, err
		}
		if res.RetainedInitially == 0 {
			continue // nothing pinned this run; the paper's 0% rows
		}
		results = append(results, *res)
	}
	tab := stats.NewTable("Observation 5: residual references die under continued execution",
		"Seed", "Lists pinned after T", "Rounds until all reclaimed")
	for _, r := range results {
		rounds := fmt.Sprint(r.RoundsToZero)
		if r.RoundsToZero < 0 {
			rounds = fmt.Sprintf("> %d (still pinned: %d)",
				len(r.RetainedByRound), r.RetainedByRound[len(r.RetainedByRound)-1])
		}
		tab.AddF(r.Seed, r.RetainedInitially, rounds)
	}
	return results, tab, nil
}

func observation5Run(seed uint64, rounds int) (*Observation5Result, error) {
	profile := platform.SPARCStatic(false)
	env, err := profile.Build(seed, true)
	if err != nil {
		return nil, err
	}
	res, err := env.RunProgramT()
	if err != nil {
		return nil, err
	}
	out := &Observation5Result{
		Seed:              seed,
		RetainedInitially: res.RetainedLists,
		RoundsToZero:      -1,
	}
	if res.RetainedLists == 0 {
		out.RoundsToZero = 0
		return out, nil
	}

	// Continued execution: varied call activity that writes ordinary
	// values through the register windows and stack frames, exactly what
	// a longer-running program does to its residue.
	w, m := env.World, env.Machine
	rng := simrand.New(seed ^ 0xC0117111)
	remaining := res.RetainedLists
	for round := 0; round < rounds && remaining > 0; round++ {
		var churn func(depth int) error
		churn = func(depth int) error {
			if depth == 0 {
				return nil
			}
			return m.WithFrame(1+rng.Intn(24), func(f *Frame) error {
				for r := 0; r < 16; r++ {
					m.SetLocal(r, Word(rng.Uint32n(4096)))
				}
				for s := 0; s < f.Words(); s++ {
					f.Store(s, Word(rng.Uint32n(4096)))
				}
				if _, err := w.Allocate(2, false); err != nil {
					return err
				}
				return churn(depth - 1)
			})
		}
		if err := churn(8 + rng.Intn(24)); err != nil {
			return nil, err
		}
		w.Collect()
		remaining -= len(w.DrainReclaimed())
		out.RetainedByRound = append(out.RetainedByRound, remaining)
		if remaining == 0 {
			out.RoundsToZero = round + 1
		}
	}
	return out, nil
}
