package repro

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// DualRunResult reports the footnote-4 experiment (E11).
type DualRunResult struct {
	Lists              int
	SingleRunRetained  int // lists retained by a plain conservative mark
	DualRunRetained    int // lists retained with offset certification
	CandidatesRejected uint64
}

// DualRunOptions configures the experiment.
type DualRunOptions struct {
	Lists        int // default 100
	NodesPerList int // default 2000
	FalseRoots   int // static false references (default 400)
	DeltaBytes   int // heap-base offset between the twin worlds (default 16 MiB)
	Seed         uint64
}

// DualRun implements the paper's footnote 4: "under suitable conditions,
// we could run two copies of the same program with heap starting
// addresses that differ by n. Any two corresponding locations whose
// values do not differ by n are then known not to be pointers."
//
// Two identical worlds are built whose heaps differ by DeltaBytes; the
// same deterministic program runs in both. A plain conservative mark of
// world 1's polluted roots retains many dead lists; the certified mark
// — which accepts a root word only when the twin world's corresponding
// word differs by exactly DeltaBytes — rejects every static false
// reference and retains none.
func DualRun(opt DualRunOptions) (*DualRunResult, *stats.Table, error) {
	if opt.Lists == 0 {
		opt.Lists = 100
	}
	if opt.NodesPerList == 0 {
		opt.NodesPerList = 2000
	}
	if opt.FalseRoots == 0 {
		opt.FalseRoots = 400
	}
	if opt.DeltaBytes == 0 {
		opt.DeltaBytes = 16 << 20
	}
	delta := mem.Addr(opt.DeltaBytes)

	heapBytes := opt.Lists*opt.NodesPerList*WordBytes*2 + (4 << 20)
	build := func(base Addr) (*World, [][]Addr, error) {
		w, err := NewWorld(Config{
			HeapBase:         base,
			InitialHeapBytes: heapBytes,
			ReserveHeapBytes: heapBytes,
			Pointer:          PointerInterior,
			GCDivisor:        -1,
		})
		if err != nil {
			return nil, nil, err
		}
		// Identical pollution in both worlds: values relative to each
		// world's own static data are the same absolute numbers, so a
		// false reference into world 1's heap is NOT shifted in world 2
		// — that asymmetry is what certification detects.
		seg, err := w.Space.MapNew("polluted", KindData, 0x2000,
			opt.FalseRoots*WordBytes, opt.FalseRoots*WordBytes)
		if err != nil {
			return nil, nil, err
		}
		rng := simrand.New(opt.Seed)
		for i := 0; i < opt.FalseRoots; i++ {
			v := 0x400000 + rng.Uint32n(uint32(heapBytes))
			if err := seg.Store(0x2000+Addr(4*i), Word(v)); err != nil {
				return nil, nil, err
			}
		}
		// The deterministic program: build dead circular lists.
		var lists [][]Addr
		for i := 0; i < opt.Lists; i++ {
			var nodes []Addr
			var prev Addr
			var first Addr
			for j := 0; j < opt.NodesPerList; j++ {
				n, err := w.Allocate(1, false)
				if err != nil {
					return nil, nil, err
				}
				if prev != 0 {
					w.Store(prev, Word(n))
				} else {
					first = n
				}
				nodes = append(nodes, n)
				prev = n
			}
			w.Store(prev, Word(first))
			lists = append(lists, nodes)
		}
		return w, lists, nil
	}

	w1, lists1, err := build(0x400000)
	if err != nil {
		return nil, nil, err
	}
	w2, _, err := build(0x400000 + delta)
	if err != nil {
		return nil, nil, err
	}

	countRetained := func() int {
		retained := 0
		for _, nodes := range lists1 {
			if w1.Heap.Marked(nodes[0]) {
				retained++
			}
		}
		return retained
	}

	// Plain conservative mark of world 1.
	single, _ := func() (int, uint64) {
		w1.Marker.Reset()
		w1.Marker.MarkRootSegments(w1.Space)
		w1.Marker.Drain()
		n := countRetained()
		w1.Heap.ClearMarks()
		return n, 0
	}()

	// Certified mark: zip the twin root segments.
	s1 := w1.Space.Segment("polluted")
	s2 := w2.Space.Segment("polluted")
	if s1 == nil || s2 == nil {
		return nil, nil, fmt.Errorf("dualrun: root segments missing")
	}
	w1.Marker.Reset()
	var rejected uint64
	words1, words2 := s1.Words(), s2.Words()
	for i := range words1 {
		v1, v2 := words1[i], words2[i]
		if v2-v1 == Word(delta) {
			w1.Marker.MarkValue(v1)
		} else if w1.Heap.InVicinity(Addr(v1)) {
			rejected++
		}
	}
	w1.Marker.Drain()
	dual := countRetained()
	w1.Heap.ClearMarks()

	res := &DualRunResult{
		Lists:              opt.Lists,
		SingleRunRetained:  single,
		DualRunRetained:    dual,
		CandidatesRejected: rejected,
	}
	tab := stats.NewTable("Footnote 4: dual-run offset certification",
		"Configuration", "Lists retained", "Candidates rejected")
	tab.AddF("single run, conservative", res.SingleRunRetained, "-")
	tab.AddF(fmt.Sprintf("dual run, delta=%d MB", opt.DeltaBytes>>20), res.DualRunRetained, res.CandidatesRejected)
	return res, tab, nil
}
