package repro

import (
	"fmt"

	"repro/internal/simrand"
	"repro/internal/stats"
)

// Figure1Row is one configuration of the figure-1 experiment (E2).
type Figure1Row struct {
	Alignment        AlignPolicy
	SkipBoundarySlot bool
	Candidates       uint64 // candidate values tested during the root scan
	Misidentified    uint64 // garbage objects retained by false references
	BytesRetained    uint64
	Blacklisted      int // pages blacklisted by near-heap misses
}

// Figure1Options configures the experiment.
type Figure1Options struct {
	// StaticWords of small integers (< 4096) scanned as roots
	// (default 16384 = 64 KiB of counters and table entries).
	StaticWords int
	// HeapFillBytes of garbage 1-word objects to expose (default 3 MiB).
	HeapFillBytes int
	Seed          uint64
}

// Figure1 reproduces the paper's figure 1: "two small integers turn
// into the address (hex) 00090000". A static segment holds only small
// integers — harmless to a word-aligned scan — yet when the collector
// must consider every byte offset, the concatenation of the low half
// of one integer with the high half of the next forms addresses of the
// form h<<16, which land in the heap.
//
// The experiment scans the same polluted roots over a garbage-filled
// heap under three configurations: word-aligned candidates, any byte
// offset, and any byte offset with the allocator declining to place
// objects at block boundaries — the paper's observation that the
// "impact of this problem can be greatly reduced if objects are not
// allocated at addresses containing a large number of trailing zeroes"
// (all the concatenated addresses here end in 16 zero bits).
func Figure1(opt Figure1Options) ([]Figure1Row, *stats.Table, error) {
	if opt.StaticWords == 0 {
		opt.StaticWords = 16384
	}
	if opt.HeapFillBytes == 0 {
		opt.HeapFillBytes = 3 << 20
	}

	configs := []struct {
		align AlignPolicy
		skip  bool
	}{
		{AlignedWords, false},
		{AnyByteOffset, false},
		{AnyByteOffset, true},
	}
	var rows []Figure1Row
	for _, cfg := range configs {
		row, err := figure1Run(opt, cfg.align, cfg.skip)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, *row)
	}

	tab := stats.NewTable("Figure 1: small-integer concatenation misidentification",
		"Candidate alignment", "Skip boundary slots", "Candidates", "Objects retained", "Pages blacklisted")
	for _, r := range rows {
		tab.AddF(r.Alignment, r.SkipBoundarySlot, r.Candidates, r.Misidentified, r.Blacklisted)
	}
	return rows, tab, nil
}

func figure1Run(opt Figure1Options, align AlignPolicy, skip bool) (*Figure1Row, error) {
	// Heap at 1 MiB: with all static values < 4096, only the offset-2
	// concatenation h<<16 can reach it (h<<8 stays below 1 MiB, h<<24
	// overshoots a sub-16 MiB heap), which is exactly figure 1's shape.
	w, err := NewWorld(Config{
		HeapBase:             0x100000,
		InitialHeapBytes:     4 << 20,
		ReserveHeapBytes:     8 << 20,
		Pointer:              PointerBase,
		Alignment:            align,
		Blacklisting:         BlacklistDense,
		GCDivisor:            -1,
		SkipPageBoundarySlot: skip,
	})
	if err != nil {
		return nil, err
	}
	seg, err := w.Space.MapNew("smallints", KindData, 0x2000,
		opt.StaticWords*WordBytes, opt.StaticWords*WordBytes)
	if err != nil {
		return nil, err
	}
	rng := simrand.New(opt.Seed)
	for i := 0; i < opt.StaticWords; i++ {
		if err := seg.Store(0x2000+Addr(4*i), Word(rng.Uint32n(4096))); err != nil {
			return nil, err
		}
	}
	// Fill the heap with unreferenced 1-word objects.
	for allocated := 0; allocated < opt.HeapFillBytes; allocated += WordBytes {
		if _, err := w.Allocate(1, false); err != nil {
			return nil, fmt.Errorf("figure1 fill: %w", err)
		}
	}
	// One marking pass over the roots.
	objs, bytes := w.MarkOnly()
	st := w.Marker.Stats()
	return &Figure1Row{
		Alignment:        align,
		SkipBoundarySlot: skip,
		Candidates:       st.Candidates,
		Misidentified:    objs,
		BytesRetained:    bytes,
		Blacklisted:      w.Blacklist.Len(),
	}, nil
}
