// Command gcbench regenerates every table and figure from "Space
// Efficient Conservative Garbage Collection" (Boehm, PLDI 1993) on the
// simulated-machine reproduction.
//
// Usage:
//
//	gcbench -experiment all
//	gcbench -experiment table1 -seeds 5 -parallel 8
//	gcbench -experiment stackclear
//
// Experiments (see DESIGN.md for the paper mapping):
//
//	table1      E1: program T retention with/without blacklisting
//	figure1     E2: small-integer concatenation misidentification
//	stackclear  E5: apparently-live cells vs stack hygiene
//	grids       E4: embedded vs separate links (figures 3/4)
//	structures  E6: trees, queues, lazy streams
//	overhead    E7: blacklisting cost, allocation latency (footnote 3)
//	largeobj    E8: large objects vs the blacklist (observation 7)
//	pcrsweep    E9: PCR retention vs Cedar world size (appendix B)
//	frag        E10: address-ordered vs LIFO free blocks (conclusions)
//	dualrun     E11: dual-run offset certification (footnote 4)
//	genceiling  E12: stray stack pointers vs generational collection (§3.1)
//	placement   E13: heap placement in the address space (§2)
//	atomic      E14: pointer-free allocation for compressed data (§2)
//	typed       E15: conservative vs exact heap layouts (introduction)
//	pauses      E16: stop-the-world vs incremental vs generational pauses
//	obs5        E17: residual references die under continued execution
//	markbench   parallel mark-phase scaling by worker count
//	sweepbench  collection pauses, eager vs lazy sweeping (plus markbench)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/stats"
)

var (
	experiment = flag.String("experiment", "all", "experiment to run (table1|figure1|stackclear|grids|structures|overhead|largeobj|pcrsweep|frag|dualrun|genceiling|placement|atomic|typed|pauses|obs5|markbench|sweepbench|all)")
	seeds      = flag.Int("seeds", 3, "seeds per table-1 and pcrsweep cell")
	parallel   = flag.Int("parallel", 8, "concurrent runs for table-1 style sweeps")
	seed       = flag.Uint64("seed", 1, "base seed for single-run experiments")
	format     = flag.String("format", "text", "table output format: text|markdown")
	benchJSON  = flag.String("benchjson", "", "write markbench/sweepbench results as JSON to this file")
	workers    = flag.String("workers", "", "comma-separated markbench worker counts (default: powers of two up to GOMAXPROCS)")
	traceOut   = flag.String("trace", "", "write a JSON event trace of markbench/sweepbench collections to this file")
)

// benchTracer returns the shared trace recorder for the bench
// experiments, creating it on first use when -trace is set.
var benchTracer *repro.TraceRecorder

func getBenchTracer() *repro.TraceRecorder {
	if *traceOut != "" && benchTracer == nil {
		benchTracer = repro.NewTraceRecorder(0)
	}
	return benchTracer
}

// writeTrace flushes the recorder to the -trace file, if both exist.
func writeTrace() error {
	if *traceOut == "" || benchTracer == nil {
		return nil
	}
	f, err := os.Create(*traceOut)
	if err != nil {
		return err
	}
	if err := benchTracer.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d events, %d dropped)\n",
		*traceOut, min(benchTracer.Emitted(), uint64(benchTracer.Capacity())), benchTracer.Dropped())
	return nil
}

// printTable renders a result table in the selected format.
func printTable(tab *stats.Table) {
	if *format == "markdown" {
		fmt.Println(tab.Markdown())
		return
	}
	fmt.Println(tab)
}

func main() {
	flag.Parse()
	runners := map[string]func() error{
		"table1":     runTable1,
		"genceiling": runGenCeiling,
		"placement":  runPlacement,
		"typed":      runTyped,
		"pauses":     runPauses,
		"obs5":       runObs5,
		"atomic":     runAtomic,
		"figure1":    runFigure1,
		"stackclear": runStackClear,
		"grids":      runGrids,
		"structures": runStructures,
		"overhead":   runOverhead,
		"largeobj":   runLargeObj,
		"pcrsweep":   runPCRSweep,
		"frag":       runFrag,
		"dualrun":    runDualRun,
		"markbench":  runMarkBench,
		"sweepbench": runSweepBench,
	}
	order := []string{
		"table1", "figure1", "stackclear", "grids", "structures",
		"overhead", "largeobj", "pcrsweep", "frag", "dualrun", "genceiling",
		"placement", "atomic", "typed", "pauses", "obs5", "markbench",
		"sweepbench",
	}
	var todo []string
	if *experiment == "all" {
		todo = order
	} else if _, ok := runners[*experiment]; ok {
		todo = []string{*experiment}
	} else {
		fmt.Fprintf(os.Stderr, "gcbench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
	for _, name := range todo {
		start := time.Now()
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func runTable1() error {
	fmt.Println("Running table 1: 9 configurations x 2 blacklist modes x",
		*seeds, "seeds (full program T each)...")
	_, tab, err := repro.Table1(repro.Table1Options{Seeds: *seeds, Parallel: *parallel})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println(`Paper (table 1):
  SPARC(static)   79-79.5% / 78-78.5%   -> 0-.5% / .5-1%
  SPARC(dynamic)  8-9.5%   / 9-11.5%    -> .5% / 0-.5%
  SGI(static)     1.5-8%   / 1-4%       -> 0% / 0%
  OS/2(static)    28%      / 26%        -> 3% / 1%
  PCR             44.5-55%              -> 1.5-3.5%`)
	return nil
}

func runFigure1() error {
	_, tab, err := repro.Figure1(repro.Figure1Options{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (figure 1): two small integers concatenate to the address 0x00090000;")
	fmt.Println("word-aligned scanning is immune, unaligned scanning is not, and avoiding")
	fmt.Println("allocation at trailing-zero-rich addresses restores immunity.")
	return nil
}

func runStackClear() error {
	_, tab, err := repro.StackClearing(repro.StackClearOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (section 3.1): 40,000-100,000 max apparently-live cells without")
	fmt.Println("clearing; never above 18,000 with cheap clearing; ~2000 optimized.")
	return nil
}

func runGrids() error {
	_, tab, err := repro.Grids(repro.GridsOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (figures 3/4): embedded links retain a large fraction of the grid;")
	fmt.Println("separate cons cells retain at most a single row or column.")
	return nil
}

func runStructures() error {
	_, trees, err := repro.Trees(nil, 0, *seed)
	if err != nil {
		return err
	}
	printTable(trees)
	_, queues, err := repro.QueuesAndStreams(0, 0, *seed)
	if err != nil {
		return err
	}
	printTable(queues)
	fmt.Println("Paper (section 4): tree retention ~ height; queues and lazy lists grow")
	fmt.Println("without bound under one false reference unless links are cleared on removal.")
	return nil
}

func runOverhead() error {
	_, tab, err := repro.Overhead(*seed)
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (footnote 3): blacklisting bookkeeping ~0.2% of collector time,")
	fmt.Println("total overhead usually below 1%; 8-byte alloc+collect ~2us on a SPARC 2.")
	return nil
}

func runLargeObj() error {
	_, tab, err := repro.LargeObjects(repro.LargeObjectsOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (observation 7): with all interior pointers valid it becomes hard to")
	fmt.Println("allocate objects over ~100 KB; base-pointer-only validity has no trouble.")
	return nil
}

func runPCRSweep() error {
	_, tab, err := repro.PCRSweep(nil, *seeds, *parallel)
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (appendix B): 1.5-13 MB of other live data had minimal effect on the")
	fmt.Println("amount of retained storage.")
	return nil
}

func runFrag() error {
	_, tab, err := repro.Fragmentation(repro.FragmentationOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (conclusions): address-sorted free lists make large adjacent chunks")
	fmt.Println("more likely to reform, decreasing fragmentation.")
	return nil
}

func runDualRun() error {
	_, tab, err := repro.DualRun(repro.DualRunOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (footnote 4): two copies of the program with heap bases differing by n;")
	fmt.Println("corresponding values not differing by n are provably non-pointers.")
	return nil
}

func runGenCeiling() error {
	_, tab, err := repro.GenerationalCeiling(repro.GenerationalOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (section 3.1, end): stray stack pointers lengthen object lifetimes,")
	fmt.Println("\"placing a ceiling on the effectiveness of generational collection\".")
	return nil
}

func runPlacement() error {
	_, tab, err := repro.HeapPlacement(repro.HeapPlacementOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (section 2): position the heap where the high-order address bits are")
	fmt.Println("neither all zeros nor all ones, away from character codes and float values.")
	return nil
}

func runAtomic() error {
	_, tab, err := repro.AtomicData(repro.AtomicDataOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (section 2): large pointer-free data (compressed bitmaps) must be")
	fmt.Println("allocated as such, or its contents introduce false pointers wholesale.")
	return nil
}

func runTyped() error {
	_, tab, err := repro.DegreesOfConservatism(repro.ConservatismOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (introduction): implementations vary in their degree of conservativism;")
	fmt.Println("exact heap layouts eliminate misidentification from non-pointer fields.")
	return nil
}

func runPauses() error {
	_, tab, err := repro.Pauses(repro.PausesOptions{Seed: *seed})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (introduction): \"concurrent collectors that greatly reduce client")
	fmt.Println("pause times\" [8] and generational conservative collectors [13] both exist;")
	fmt.Println("this reproduces their pause profiles on the same substrate.")
	return nil
}

// parseWorkers turns the -workers flag into a worker-count list.
func parseWorkers() ([]int, error) {
	if *workers == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("gcbench: bad -workers entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func runMarkBench() error {
	counts, err := parseWorkers()
	if err != nil {
		return err
	}
	res, tab, err := repro.MarkBench(repro.MarkBenchOptions{Workers: counts, Trace: getBenchTracer()})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Parallel marking is not in the paper; it shards the figure-2 mark phase")
	fmt.Println("with CAS mark bits and work stealing, marking the identical object set.")
	fmt.Println("Speedups require real cores: worker counts above GOMAXPROCS serialise,")
	fmt.Println("so those rows are flagged oversubscribed and measure overhead only.")
	if *benchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	return writeTrace()
}

func runSweepBench() error {
	res, tab, err := repro.SweepBench(repro.SweepBenchOptions{Trace: getBenchTracer()})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Lazy sweeping replaces the pause's per-slot heap walk with an O(blocks)")
	fmt.Println("mark-summary scan; the per-slot work is paid during allocation instead.")
	fmt.Println("Reclamation totals are identical by construction (checked above). Unlike")
	fmt.Println("mark speedups, this needs no extra cores, so GOMAXPROCS=1 is honest here.")
	mark, mtab, err := repro.MarkBench(repro.MarkBenchOptions{Trace: getBenchTracer()})
	if err != nil {
		return err
	}
	res.Mark = mark
	printTable(mtab)
	if *benchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	return writeTrace()
}

func runObs5() error {
	_, tab, err := repro.Observation5(repro.Observation5Options{})
	if err != nil {
		return err
	}
	printTable(tab)
	fmt.Println("Paper (observation 5): references remaining even with blacklisting come from")
	fmt.Println("stack/register residue and are \"eventually overwritten in a longer running")
	fmt.Println("program with more varied stack frames\".")
	return nil
}
