// Package workload implements the client programs the paper measures:
// program T from appendix A, the recursive list-reversal benchmark of
// section 3.1, and the data structures of section 4 (grids with
// embedded versus separate links, balanced binary trees, queues and
// lazy lists).
//
// Every workload runs against a core.World, allocating from the
// simulated collected heap and, where relevant, mirroring its call
// structure on the simulated machine stack so that the stack-hygiene
// effects the paper describes actually occur.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
)

// ProgramTParams configures program T (appendix A): "Allocate a cycle
// of n 4 byte objects... 200 circular linked lists containing 100
// Kbytes each", then drop every reference and ask what fraction of the
// lists fails to be collected.
type ProgramTParams struct {
	// NLists is N in the paper (200; the OS/2 run used 100).
	NLists int
	// NodesPerList is S in the paper (25000 nodes of 4 bytes each; the
	// PCR variant used 12500 8-byte cells).
	NodesPerList int
	// NodeWords is the node size in words (1 for the C runs, 2 for the
	// PCR variant).
	NodeWords int
	// StaticArrayBase places the program's static pointer array a[N]
	// (it is scanned as a root until cleared, exactly like the C
	// global). 0 picks a default below the heap.
	StaticArrayBase mem.Addr
	// MidRun, if non-nil, runs after the big lists have been allocated
	// and dropped, before the collections that measure retention. The
	// paper's platforms acquire root noise throughout a run ("register
	// values left over from kernel calls and/or context switches",
	// concurrently running clients); this is where profiles inject it.
	MidRun func() error
}

func (p *ProgramTParams) withDefaults() ProgramTParams {
	out := *p
	if out.NLists == 0 {
		out.NLists = 200
	}
	if out.NodesPerList == 0 {
		out.NodesPerList = 25000
	}
	if out.NodeWords == 0 {
		out.NodeWords = 1
	}
	if out.StaticArrayBase == 0 {
		out.StaticArrayBase = 0x300000
	}
	return out
}

// ListBytes returns the payload size of one list.
func (p ProgramTParams) ListBytes() int { return p.NodesPerList * p.NodeWords * mem.WordBytes }

// ProgramTResult reports one program-T run.
type ProgramTResult struct {
	Params        ProgramTParams
	RetainedLists int // lists never reclaimed
	TotalLists    int
	Collections   int // collections needed until no further lists died
	HeapBytes     int
}

// RetainedFraction returns the fraction of lists retained, the paper's
// table-1 metric.
func (r ProgramTResult) RetainedFraction() float64 {
	return float64(r.RetainedLists) / float64(r.TotalLists)
}

func (r ProgramTResult) String() string {
	return fmt.Sprintf("programT: %d/%d lists retained (%.1f%%)",
		r.RetainedLists, r.TotalLists, 100*r.RetainedFraction())
}

// allocCycle builds one circular list of n nodes of nodeWords words and
// returns a pointer into it, mirroring the paper's alloc_cycle. The
// local variables (first, prev, the loop counter) live in a simulated
// stack frame, so their values persist as dead-stack garbage after
// return — one of the paper's observed sources of retention.
func allocCycle(w *core.World, m *machine.Machine, n, nodeWords int) (mem.Addr, error) {
	var first mem.Addr
	body := func(f *machine.Frame) error {
		var prev mem.Addr
		for i := 0; i < n; i++ {
			node, err := w.Allocate(nodeWords, false)
			if err != nil {
				return err
			}
			if prev == 0 {
				first = node
				if f != nil {
					f.Store(0, mem.Word(first))
				}
			} else if err := w.Store(prev, mem.Word(node)); err != nil {
				return err
			}
			prev = node
			if f != nil {
				f.Store(1, mem.Word(prev))
			}
		}
		// Close the cycle.
		return w.Store(prev, mem.Word(first))
	}
	if m == nil {
		return first, body(nil)
	}
	return first, m.WithFrame(3, body)
}

// RunProgramT executes program T in the world:
//
//	test(S);            // allocate and drop N big lists
//	GC_gcollect();
//	test(2);            // "simulate further program execution to
//	GC_gcollect();      //  clear stack garbage; not terribly effective"
//
// and then, following the paper's PCR methodology, collects repeatedly
// "until no more lists were finalized as the result of further
// invocations", using the finalisation queue to count reclaimed lists
// exactly. m may be nil to run without a simulated mutator stack.
func RunProgramT(w *core.World, m *machine.Machine, params ProgramTParams) (*ProgramTResult, error) {
	p := params.withDefaults()
	aBytes := p.NLists * mem.WordBytes
	aSeg, err := w.Space.MapNew("programT.a", mem.KindData, p.StaticArrayBase, aBytes, aBytes)
	if err != nil {
		return nil, err
	}

	test := func(n int) error {
		run := func(f *machine.Frame) error {
			for i := 0; i < p.NLists; i++ {
				head, err := allocCycle(w, m, n, p.NodeWords)
				if err != nil {
					return err
				}
				if err := aSeg.Store(p.StaticArrayBase+mem.Addr(i*mem.WordBytes), mem.Word(head)); err != nil {
					return err
				}
				if n == p.NodesPerList {
					w.RegisterFinalizable(head)
				}
				if f != nil {
					f.Store(0, mem.Word(head)) // register copy spilled to frame
				}
			}
			for i := 0; i < p.NLists; i++ {
				if err := aSeg.Store(p.StaticArrayBase+mem.Addr(i*mem.WordBytes), 0); err != nil {
					return err
				}
			}
			return nil
		}
		if m == nil {
			return run(nil)
		}
		return m.WithFrame(2, run)
	}

	if err := test(p.NodesPerList); err != nil {
		return nil, err
	}
	if p.MidRun != nil {
		if err := p.MidRun(); err != nil {
			return nil, err
		}
	}
	w.Collect()
	if err := test(2); err != nil {
		return nil, err
	}
	w.Collect()

	reclaimed := len(w.DrainReclaimed())
	collections := 2
	// "The garbage collector was manually invoked until no more lists
	// were finalized as the result of further invocations. (Once was
	// usually enough.)"
	for {
		w.Collect()
		collections++
		more := len(w.DrainReclaimed())
		reclaimed += more
		if more == 0 || collections > 20 {
			break
		}
	}

	return &ProgramTResult{
		Params:        p,
		RetainedLists: p.NLists - reclaimed,
		TotalLists:    p.NLists,
		Collections:   collections,
		HeapBytes:     w.Heap.Stats().HeapBytes,
	}, nil
}
