package watch

import (
	"math"
	"testing"
)

// feed runs rounds of Observe with per-key byte levels produced by fn
// (objects = bytes/32 for simplicity), collecting all alerts.
func feed(t *testing.T, w *Watcher, cycles []int, fn func(cycle int) map[string]uint64) []Alert {
	t.Helper()
	var alerts []Alert
	for _, c := range cycles {
		totals := map[string]Totals{}
		for k, b := range fn(c) {
			totals[k] = Totals{Objects: b / 32, Bytes: b}
		}
		alerts = append(alerts, w.Observe(c, totals)...)
	}
	return alerts
}

func cycles(n, every int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = (i + 1) * every
	}
	return out
}

// A monotone leak must alert once the window fills, and re-alert only
// after another MinGrowthBytes of growth.
func TestLeakAlertsAndRearm(t *testing.T) {
	w := New(Config{Window: 4, MinGrowthBytes: 1000, Confidence: 0.75})
	alerts := feed(t, w, cycles(12, 2), func(c int) map[string]uint64 {
		return map[string]uint64{"leak": uint64(c) * 500} // +1000 B per sample
	})
	if len(alerts) == 0 {
		t.Fatal("monotone leak never alerted")
	}
	// Window fills at the 4th sample (cycle 8): growth over the window
	// is 3000 >= 1000, confidence 1.0.
	if alerts[0].Cycle != 8 {
		t.Errorf("first alert at cycle %d, want 8", alerts[0].Cycle)
	}
	if alerts[0].Confidence != 1.0 {
		t.Errorf("confidence %v, want 1.0", alerts[0].Confidence)
	}
	if alerts[0].GrowthBytes != 3000 {
		t.Errorf("growth %d, want 3000", alerts[0].GrowthBytes)
	}
	// Growth is 1000 B per sample = exactly the re-arm threshold, so
	// every subsequent sample re-alerts: 9 alerts across 12 samples.
	if len(alerts) != 9 {
		t.Errorf("got %d alerts, want 9 (one per sample from the 4th)", len(alerts))
	}
	for _, a := range alerts {
		if a.Key != "leak" {
			t.Errorf("alert on key %q", a.Key)
		}
	}
}

// A stable root (constant retention) and a churning root (oscillating
// retention) must never alert.
func TestStableAndChurnStaySilent(t *testing.T) {
	w := New(Config{Window: 4, MinGrowthBytes: 100, Confidence: 0.75})
	alerts := feed(t, w, cycles(40, 1), func(c int) map[string]uint64 {
		churn := uint64(4000)
		if c%2 == 0 {
			churn = 9000 // oscillates far above MinGrowthBytes
		}
		return map[string]uint64{"stable": 5000, "churn": churn}
	})
	if len(alerts) != 0 {
		t.Fatalf("got %d alerts on stable/churn keys: %+v", len(alerts), alerts)
	}
}

// Ramp-then-plateau (a cache filling up) must not alert after the
// plateau dominates the window, and the confidence must decay.
func TestPlateauConfidenceDecays(t *testing.T) {
	w := New(Config{Window: 4, MinGrowthBytes: 100, Confidence: 0.75})
	level := func(c int) uint64 {
		if c > 3 {
			return 3000 // plateau after a 3-sample ramp
		}
		return uint64(c) * 1000
	}
	var lastConf float64
	for _, c := range cycles(10, 1) {
		w.Observe(c, map[string]Totals{"cache": {Objects: 1, Bytes: level(c)}})
		tr, ok := w.Trend("cache")
		if !ok {
			t.Fatal("no trend for cache")
		}
		lastConf = tr.Confidence
	}
	if lastConf != 0 {
		t.Errorf("plateau confidence %v, want 0", lastConf)
	}
}

func TestEWMATracksRate(t *testing.T) {
	w := New(Config{Window: 4, EWMAAlpha: 0.5})
	feed(t, w, cycles(10, 2), func(c int) map[string]uint64 {
		return map[string]uint64{"k": uint64(c) * 100} // 100 B/cycle
	})
	tr, _ := w.Trend("k")
	if math.Abs(tr.EWMABytesPerCycle-100) > 1e-9 {
		t.Errorf("EWMA %v, want 100 B/cycle", tr.EWMABytesPerCycle)
	}
}

func TestHighWaterAndVanishedKey(t *testing.T) {
	w := New(Config{Window: 3})
	w.Observe(1, map[string]Totals{"k": {Objects: 2, Bytes: 800}})
	w.Observe(2, map[string]Totals{"k": {Objects: 1, Bytes: 400}})
	tr, _ := w.Trend("k")
	if tr.HighWaterBytes != 800 || tr.HighWaterObjects != 2 {
		t.Errorf("high water %d B / %d objs, want 800/2", tr.HighWaterBytes, tr.HighWaterObjects)
	}
	// Key disappears: zero samples accumulate, then the series drops.
	for c := 3; c <= 6; c++ {
		w.Observe(c, map[string]Totals{})
	}
	if _, ok := w.Trend("k"); ok {
		t.Error("all-zero series was not dropped")
	}
	if len(w.Trends()) != 0 {
		t.Errorf("Trends() = %v, want empty", w.Trends())
	}
}

func TestSuspectsRanking(t *testing.T) {
	w := New(Config{Window: 3, TopSuspects: 2})
	feed(t, w, cycles(5, 1), func(c int) map[string]uint64 {
		return map[string]uint64{
			"big":    uint64(c) * 1000,
			"small":  uint64(c) * 10,
			"stable": 500,
		}
	})
	sus := w.Suspects(0)
	if len(sus) != 2 {
		t.Fatalf("got %d suspects, want 2 (TopSuspects cap)", len(sus))
	}
	if sus[0].Key != "big" || sus[1].Key != "small" {
		t.Errorf("ranking %q,%q, want big,small", sus[0].Key, sus[1].Key)
	}
	if sus[0].GrowthBytes != 2000 { // window of 3 samples: c3..c5
		t.Errorf("big growth %d, want 2000", sus[0].GrowthBytes)
	}
}

// Alert order must be deterministic (sorted by key) regardless of map
// iteration order.
func TestAlertOrderDeterministic(t *testing.T) {
	mk := func() []Alert {
		w := New(Config{Window: 2, MinGrowthBytes: 1, Confidence: 0.5})
		return feed(t, w, cycles(4, 1), func(c int) map[string]uint64 {
			return map[string]uint64{"b": uint64(c) * 100, "a": uint64(c) * 100, "c": uint64(c) * 100}
		})
	}
	first := mk()
	for i := 0; i < 10; i++ {
		again := mk()
		if len(again) != len(first) {
			t.Fatalf("run %d: %d alerts vs %d", i, len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("run %d alert %d: %+v vs %+v", i, j, again[j], first[j])
			}
		}
	}
	// And within one sample, keys come out sorted.
	w := New(Config{Window: 2, MinGrowthBytes: 1, Confidence: 0.5})
	var last []Alert
	for _, c := range cycles(3, 1) {
		last = w.Observe(c, map[string]Totals{
			"z": {Bytes: uint64(c) * 100}, "a": {Bytes: uint64(c) * 100},
		})
	}
	if len(last) != 2 || last[0].Key != "a" || last[1].Key != "z" {
		t.Fatalf("alerts %+v, want a then z", last)
	}
}

func TestDefaults(t *testing.T) {
	w := New(Config{})
	c := w.Config()
	if c.SampleEvery != 1 || c.Window != 8 || c.MinGrowthBytes != 4096 ||
		c.Confidence != 0.75 || c.EWMAAlpha != 0.3 || c.TopSuspects != 5 {
		t.Errorf("defaults = %+v", c)
	}
}
