package alloc

import (
	"testing"

	"repro/internal/blacklist"
	"repro/internal/mem"
)

func TestRegisterDescriptor(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	id, err := a.RegisterDescriptor([]bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.Descriptor(id)
	if err != nil {
		t.Fatal(err)
	}
	if d.Words != 3 || !d.PointerAt(0) || d.PointerAt(1) || !d.PointerAt(2) {
		t.Fatalf("descriptor wrong: %+v", d)
	}
	if d.PointerAt(99) {
		t.Error("out-of-range PointerAt should be false")
	}
	if _, err := a.RegisterDescriptor(nil); err == nil {
		t.Error("empty descriptor accepted")
	}
	if _, err := a.RegisterDescriptor(make([]bool, MaxSmallWords+1)); err == nil {
		t.Error("oversized descriptor accepted")
	}
	if _, err := a.Descriptor(DescID(42)); err == nil {
		t.Error("unknown descriptor id accepted")
	}
}

func TestAllocTypedBasics(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	id, _ := a.RegisterDescriptor([]bool{true, false})
	p, err := a.AllocTyped(id)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsAllocated(p) {
		t.Fatal("typed object not allocated")
	}
	// Delivered zeroed.
	for i := 0; i < 2; i++ {
		if v, _ := a.Seg().Load(p + mem.Addr(4*i)); v != 0 {
			t.Fatalf("word %d = %#x", i, uint32(v))
		}
	}
	words, kind, d := a.ScanInfo(p)
	if words != 2 || kind != ScanTyped || !d.PointerAt(0) || d.PointerAt(1) {
		t.Fatalf("ScanInfo = %d %v %+v", words, kind, d)
	}
	if _, err := a.AllocTyped(DescID(77)); err == nil {
		t.Error("alloc with unknown descriptor accepted")
	}
}

func TestTypedBlocksAreSeparate(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	id1, _ := a.RegisterDescriptor([]bool{true, false})
	id2, _ := a.RegisterDescriptor([]bool{false, true})
	p1, _ := a.AllocTyped(id1)
	p2, _ := a.AllocTyped(id2)
	p3, _ := a.Alloc(2, false)
	if mem.PageOf(p1) == mem.PageOf(p2) {
		t.Fatal("different descriptors share a block")
	}
	if mem.PageOf(p1) == mem.PageOf(p3) || mem.PageOf(p2) == mem.PageOf(p3) {
		t.Fatal("typed and conservative objects share a block")
	}
}

func TestScanInfoKinds(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	cons := mustAlloc(t, a, 2, false)
	atom := mustAlloc(t, a, 2, true)
	big := mustAlloc(t, a, 2*mem.PageWords, false)
	id, _ := a.RegisterDescriptor([]bool{true})
	typed, _ := a.AllocTyped(id)
	check := func(p mem.Addr, want ScanKind) {
		t.Helper()
		if _, kind, _ := a.ScanInfo(p); kind != want {
			t.Fatalf("ScanInfo(%#x) kind = %v, want %v", uint32(p), kind, want)
		}
	}
	check(cons, ScanConservative)
	check(atom, ScanAtomic)
	check(big, ScanConservative)
	check(typed, ScanTyped)
}

func TestTypedSweepAndFreeRecycle(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	id, _ := a.RegisterDescriptor([]bool{true, false, false})
	var objs []mem.Addr
	for i := 0; i < 50; i++ {
		p, err := a.AllocTyped(id)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, p)
	}
	// Keep half, sweep, then reallocate: freed typed slots are reused
	// from the typed free list.
	for i := 0; i < 25; i++ {
		a.Mark(objs[i])
	}
	a.Sweep()
	before := a.Stats().HeapBytes
	freed := map[mem.Addr]bool{}
	for _, p := range objs[25:] {
		freed[p] = true
	}
	reused := 0
	for i := 0; i < 25; i++ {
		p, err := a.AllocTyped(id)
		if err != nil {
			t.Fatal(err)
		}
		if freed[p] {
			reused++
		}
	}
	if reused != 25 {
		t.Fatalf("only %d/25 typed slots reused", reused)
	}
	if a.Stats().HeapBytes != before {
		t.Fatal("heap grew despite typed free slots")
	}
	// Explicit Free of a typed object also recycles through its list.
	if err := a.Free(objs[0]); err != nil {
		t.Fatal(err)
	}
	p, _ := a.AllocTyped(id)
	if p != objs[0] {
		t.Fatalf("freed typed slot not first on list: %#x != %#x", uint32(p), uint32(objs[0]))
	}
}

func TestTypedSweepReleasesEmptyBlock(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	id, _ := a.RegisterDescriptor([]bool{true})
	if _, err := a.AllocTyped(id); err != nil {
		t.Fatal(err)
	}
	ded := a.Stats().BlocksDedicated
	a.Sweep() // nothing marked: block emptied and released
	if a.Stats().BlocksDedicated != ded-1 {
		t.Fatal("empty typed block not released")
	}
}

func TestAllocIgnoreOffPage(t *testing.T) {
	bl, _ := blacklist.NewDense(testHeapBase, testHeapBase+1024*mem.PageBytes, mem.PageBytes)
	_, a := newTestAllocator(t, Config{
		Blacklist:        bl,
		InteriorPointers: true,
		InitialBytes:     16 * mem.PageBytes,
	})
	// Blacklist a middle page: a regular 4-block interior-pointer object
	// must avoid it, but an ignore-off-page object may span it.
	bl.Add(testHeapBase + 2*mem.PageBytes)
	p, err := a.AllocIgnoreOffPage(4*mem.PageWords, false)
	if err != nil {
		t.Fatal(err)
	}
	if p != testHeapBase {
		t.Fatalf("ignore-off-page object at %#x, expected %#x (spanning the blacklisted page)",
			uint32(p), uint32(testHeapBase))
	}
	// First-page pointers are valid, deep interiors are not.
	if base, ok := a.FindObject(p, true); !ok || base != p {
		t.Fatal("base pointer rejected")
	}
	if base, ok := a.FindObject(p+100, true); !ok || base != p {
		t.Fatal("first-page interior rejected")
	}
	if _, ok := a.FindObject(p+mem.PageBytes+100, true); ok {
		t.Fatal("off-page interior accepted despite the client promise")
	}
	// Marking and sweeping work normally.
	if !a.Mark(p) {
		t.Fatal("mark failed")
	}
	a.Sweep()
	if !a.IsAllocated(p) {
		t.Fatal("marked ignore-off-page object swept")
	}
	a.Sweep()
	if a.IsAllocated(p) {
		t.Fatal("unmarked ignore-off-page object survived")
	}
}

func TestAllocIgnoreOffPageSmallFallsThrough(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	p, err := a.AllocIgnoreOffPage(4, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, kind, _ := a.ScanInfo(p); kind != ScanConservative {
		t.Fatal("small ignore-off-page object should be ordinary")
	}
}
