// Command heapdump runs program T on a platform profile and prints the
// resulting heap map, collection summary and blacklist — the textual
// version of the paper's "quick examination of the blacklist in a
// statically linked SPARC executable" (observation 7).
//
// With the retention-provenance flags it also answers the questions the
// paper answers by hand: which root keeps an object alive (-whylive),
// how much of the heap is spuriously retained (-retention), and a full
// JSON export of objects, edges and first-marking records (-snapshot).
//
// Usage:
//
//	heapdump -platform sparc-static -seed 1
//	heapdump -platform sparc-dynamic -blacklist=false -width 96
//	heapdump -platform sparc-static -retention -whylive 0x400010
//	heapdump -platform pcr -snapshot heap.json
//	heapdump -plantfalse            # self-checking false-reference demo
//	heapdump -watch                 # self-checking streaming leak-watch demo
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/inspect"
)

var (
	platformName = flag.String("platform", "sparc-dynamic", "sparc-static|sparc-dynamic|sgi|os2|pcr")
	blacklist    = flag.Bool("blacklist", true, "enable page blacklisting")
	seed         = flag.Uint64("seed", 1, "random seed")
	width        = flag.Int("width", 96, "heap map blocks per line")
	showPages    = flag.Bool("pages", false, "list blacklisted page addresses")
	whyLive      = flag.String("whylive", "", "hex heap address: print the root->object retention path")
	retention    = flag.Bool("retention", false, "print the retention report (sole-retention ranking)")
	snapshotOut  = flag.String("snapshot", "", "write a JSON heap snapshot to this file")
	plantFalse   = flag.Bool("plantfalse", false, "run the self-checking false-stack-reference scenario instead of program T")
	watchMode    = flag.Bool("watch", false, "run the streaming leak-watch scenario instead of program T")
	watchRounds  = flag.Int("watch-rounds", 40, "collection rounds for -watch")
)

func main() {
	flag.Parse()
	if *plantFalse {
		if err := runPlantFalse(); err != nil {
			fmt.Fprintf(os.Stderr, "heapdump: plantfalse: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *watchMode {
		if err := runWatch(); err != nil {
			fmt.Fprintf(os.Stderr, "heapdump: watch: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var profile repro.Profile
	switch strings.ToLower(*platformName) {
	case "sparc-static":
		profile = repro.SPARCStatic(false)
	case "sparc-dynamic":
		profile = repro.SPARCDynamic(false)
	case "sgi":
		profile = repro.SGI(false)
	case "os2":
		profile = repro.OS2(false)
	case "pcr":
		profile = repro.PCR(0)
	default:
		fmt.Fprintf(os.Stderr, "heapdump: unknown platform %q\n", *platformName)
		flag.Usage()
		os.Exit(2)
	}

	env, err := profile.Build(*seed, *blacklist)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heapdump: %v\n", err)
		os.Exit(1)
	}
	// WhyLive and the snapshot's provenance section need first-marking
	// records, which only exist for collections run while recording.
	if *whyLive != "" || *snapshotOut != "" {
		env.World.EnableProvenance(true)
	}
	res, err := env.RunProgramT()
	if err != nil {
		fmt.Fprintf(os.Stderr, "heapdump: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s after program T (blacklisting=%v, seed=%d): %s\n\n",
		profile.Name, *blacklist, *seed, res)
	fmt.Println(inspect.Summary(env.World))
	fmt.Println(inspect.HeapMap(env.World.Heap, env.World.Blacklist, *width))
	if *showPages {
		pages := inspect.BlacklistedPages(env.World.Blacklist)
		fmt.Printf("\n%d blacklisted pages:\n", len(pages))
		for i, p := range pages {
			if i%8 == 0 && i > 0 {
				fmt.Println()
			}
			fmt.Printf("  %#08x", uint32(p))
		}
		fmt.Println()
	}

	if *whyLive != "" {
		addr, err := parseAddr(*whyLive)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapdump: -whylive: %v\n", err)
			os.Exit(2)
		}
		path, err := env.World.WhyLive(addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapdump: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(inspect.WhyLivePath(addr, path))
	}
	if *retention {
		rep := env.World.GetRetentionReport(repro.RetentionOptions{})
		fmt.Println()
		fmt.Print(inspect.RetentionText(rep))
	}
	if *snapshotOut != "" {
		if err := writeSnapshot(env.World, *snapshotOut); err != nil {
			fmt.Fprintf(os.Stderr, "heapdump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *snapshotOut)
	}
}

// parseAddr accepts "0x400010" or "400010".
func parseAddr(s string) (repro.Addr, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "0x"), 16, 32)
	if err != nil {
		return 0, fmt.Errorf("bad hex address %q", s)
	}
	return repro.Addr(v), nil
}

func writeSnapshot(w *repro.World, path string) error {
	snap := w.BuildHeapSnapshot(nil)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := inspect.WriteHeapSnapshot(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runWatch demonstrates the online retention watcher as a stream: a
// planted list leaks from one root slot while four other slots churn
// whole lists every round, the watcher samples each collection, and
// every alert prints as it fires — what a long-running embedder sees
// on the StartRetentionWatch channel. Self-checking like -plantfalse:
// exits nonzero unless the leak slot (and only the leak slot) alerts,
// which makes it a CI smoke test (make heapdump-smoke).
func runWatch() error {
	w, err := repro.NewWorld(repro.Config{
		Blacklisting: repro.BlacklistDense, LazySweep: true, GCDivisor: -1,
	})
	if err != nil {
		return err
	}
	const rootBase = repro.Addr(0x2000)
	roots, err := w.Space.MapNew("roots", repro.KindData, rootBase, 4096, 4096)
	if err != nil {
		return err
	}
	alerts, err := w.StartRetentionWatch(repro.WatchConfig{
		SampleEvery: 1, Window: 8, MinGrowthBytes: 1024, Buffer: 4 * *watchRounds,
	})
	if err != nil {
		return err
	}
	leakKey := repro.RootSlotID{
		Kind: repro.RootSegment, Src: 0, Index: 0, Addr: rootBase,
	}.String()
	fmt.Printf("watching %d rounds (sample every cycle, window 8, alert floor 1 KiB);\n",
		*watchRounds)
	fmt.Printf("slot 0 leaks 32 cells/round, slots 1-4 churn whole lists:\n\n")

	cons := func(car, cdr repro.Word) (repro.Addr, error) {
		cell, err := w.Allocate(2, false)
		if err != nil {
			return 0, err
		}
		if err := w.Store(cell, car); err != nil {
			return 0, err
		}
		return cell, w.Store(cell+repro.WordBytes, cdr)
	}
	var leakHead repro.Word
	var leakAlerts, falsePos int
	for round := 1; round <= *watchRounds; round++ {
		for i := 0; i < 32; i++ {
			cell, err := cons(repro.Word(round), leakHead)
			if err != nil {
				return err
			}
			leakHead = repro.Word(cell)
			if err := roots.Store(rootBase, leakHead); err != nil {
				return err
			}
		}
		churnLen := 20
		if round%2 == 1 {
			churnLen = 50
		}
		for s := 1; s <= 4; s++ {
			var head repro.Word
			for i := 0; i < churnLen; i++ {
				cell, err := cons(repro.Word(i), head)
				if err != nil {
					return err
				}
				head = repro.Word(cell)
			}
			if err := roots.Store(rootBase+repro.Addr(s)*repro.WordBytes, head); err != nil {
				return err
			}
		}
		w.Collect()
		for drained := false; !drained; {
			select {
			case a := <-alerts:
				fmt.Println(repro.LeakAlertText(a))
				if a.Key == leakKey {
					leakAlerts++
				} else {
					falsePos++
				}
			default:
				drained = true
			}
		}
	}
	trends := w.StopRetentionWatch()
	fmt.Println()
	fmt.Print(repro.LeakTrendsText(trends))

	if leakAlerts == 0 {
		return fmt.Errorf("planted leak never alerted over %d rounds", *watchRounds)
	}
	if falsePos > 0 {
		return fmt.Errorf("%d alerts on non-leak keys", falsePos)
	}
	fmt.Printf("\nwatch OK: %d alerts, all on the planted slot %s\n", leakAlerts, leakKey)
	return nil
}

// runPlantFalse reproduces the paper's section-4 lazy-stream scenario
// with a planted false stack reference, then checks that the retention
// report finds it: a stale stack word holding the stream's first cell
// retains the entire memoised chain, the sole-retention ranking names
// that exact slot without being told, and declaring it false attributes
// the chain as spurious. Exits nonzero if any of that fails, which
// makes it a CI smoke test (make heapdump-smoke).
func runPlantFalse() error {
	const steps = 3000
	w, err := repro.NewWorld(repro.Config{Blacklisting: repro.BlacklistDense})
	if err != nil {
		return err
	}
	roots, err := w.Space.MapNew("roots", repro.KindData, 0x2000, 4096, 4096)
	if err != nil {
		return err
	}
	mach, err := repro.NewMachine(w, repro.MachineConfig{
		StackTop: 0x100000, StackBytes: 64 << 10, Clear: repro.ClearNone,
	})
	if err != nil {
		return err
	}
	frame, err := mach.PushFrame(8)
	if err != nil {
		return err
	}

	s := repro.NewLazyStream(w)
	first, err := s.First()
	if err != nil {
		return err
	}
	// The planted false reference: a stack slot the program never reads
	// again, still holding the first cell.
	if err := frame.Store(0, repro.Word(first)); err != nil {
		return err
	}
	cur := first
	for i := 0; i < steps; i++ {
		if err := roots.Store(0x2000, repro.Word(cur)); err != nil {
			return err
		}
		if cur, err = s.Force(cur); err != nil {
			return err
		}
		if i%1000 == 999 {
			w.Collect()
		}
	}

	w.EnableProvenance(true)
	st := w.Collect()
	fmt.Printf("plantfalse: %d stream steps, %d objects live after collection (%d provenance records)\n\n",
		steps, st.Sweep.ObjectsLive, st.ProvenanceRecords)

	slotAddr := frame.Addr(0)
	rep := w.GetRetentionReport(repro.RetentionOptions{
		FalseRefs: []repro.Addr{slotAddr},
	})
	fmt.Print(repro.RetentionText(rep))

	path, err := w.WhyLive(first)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(repro.WhyLivePath(first, path))

	// The smoke assertions: the declared slot resolved, the chain it
	// retains dominates the live set, and the no-oracle ranking put the
	// same slot first.
	if rep.CensoredRoots != 1 {
		return fmt.Errorf("censored %d roots, want 1", rep.CensoredRoots)
	}
	if rep.SpuriousObjects <= rep.LiveObjects/2 {
		return fmt.Errorf("only %d of %d live objects spurious; the planted chain should dominate",
			rep.SpuriousObjects, rep.LiveObjects)
	}
	if len(rep.SoleRetainers) == 0 {
		return fmt.Errorf("sole-retention ranking is empty")
	}
	if top := rep.SoleRetainers[0]; top.Slot.Addr != slotAddr {
		return fmt.Errorf("top sole retainer is %s, want the planted slot @%#x", top.Slot, slotAddr)
	}
	fmt.Printf("\nplantfalse OK: slot @%#x censored, %d/%d objects (%d B) attributed spurious\n",
		uint32(slotAddr), rep.SpuriousObjects, rep.LiveObjects, rep.SpuriousBytes)
	return nil
}
