// Package trace is the collector's structured event trace: a fixed
// capacity ring buffer of typed, timestamped events emitted from the
// collection pipeline (internal/core), the marker (internal/mark) and
// the allocator (internal/alloc).
//
// The design constraints come from where the emit sites sit:
//
//   - Hot paths. Emit sites include the marker's blacklist branch and
//     the lazy sweep's per-block drain, so an emit must not allocate:
//     events are fixed-size values copied into a preallocated buffer.
//   - Always compiled in, usually off. A disabled recorder is a nil
//     *Recorder; every method nil-checks its receiver, so the disabled
//     fast path is a single compare and emits from un-traced worlds
//     cost (and allocate) nothing. The allocation tests assert this.
//   - Parallel marking. Several mark workers share one recorder, so
//     Emit is guarded by a mutex. A lock per event is cheap against the
//     per-object marking work it annotates, and keeps the buffer free
//     of torn events under the race detector.
//
// The buffer wraps: once Emitted exceeds the capacity, the oldest
// events are overwritten and counted as dropped. Events returns the
// survivors in emission order; WriteJSON exports them with symbolic
// kind names for offline analysis (cmd/gcbench -trace).
package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Kind identifies an event type. The three argument words A0..A2 are
// interpreted per kind, as documented on the constants (and in
// DESIGN.md's event schema table).
type Kind uint8

// Event kinds. Cycle kinds (the "cycle kind" argument below) are
// 0 = full, 1 = generational minor, 2 = incremental, 3 = concurrent
// full, 4 = concurrent minor.
const (
	// EvNone is the zero Kind; it is never emitted.
	EvNone Kind = iota
	// EvCycleBegin opens a collection. A0 cycle number (1-based, the
	// cycle being started), A1 committed heap bytes, A2 cycle kind.
	EvCycleBegin
	// EvCycleEnd closes a collection. A0 cycle number, A1 objects
	// live after the sweep, A2 bytes live after the sweep.
	EvCycleEnd
	// EvMarkBegin opens the mark phase. A0 cycle number, A1 mark
	// workers, A2 cycle kind.
	EvMarkBegin
	// EvMarkEnd closes the mark phase. A0 objects marked, A1 bytes
	// marked, A2 root words scanned.
	EvMarkEnd
	// EvSweepBegin opens the sweep phase (the in-pause part). A0 cycle
	// number, A1 1 under lazy sweeping else 0, A2 cycle kind.
	EvSweepBegin
	// EvSweepEnd closes the sweep phase. A0 objects freed, A1 bytes
	// freed, A2 blocks deferred to the lazy sweep (0 when eager).
	EvSweepEnd
	// EvWorkerMark reports one parallel mark worker's cycle totals at
	// the barrier. A0 worker index, A1 objects marked, A2 bytes marked.
	EvWorkerMark
	// EvMarkSpill records a worker shedding mark-stack entries onto the
	// shared overflow queue. A0 objects shed.
	EvMarkSpill
	// EvBlacklistPage records a near-heap false reference being
	// blacklisted (figure 2's bold lines). A0 the candidate address.
	EvBlacklistPage
	// EvSweepDrain records the deferred sweep of one block completing
	// outside the pause (allocator refill or FinishSweep). A0 block
	// index, A1 blocks still pending.
	EvSweepDrain
	// EvAllocTrigger records an allocation crossing the collection
	// threshold, immediately before the cycle it triggers. A0 bytes
	// allocated since the last collection, A1 committed heap bytes,
	// A2 cycle kind about to run.
	EvAllocTrigger
	// EvHeapExpand records heap growth. A0 bytes added, A1 new
	// committed heap bytes, A2 cumulative expansion count.
	EvHeapExpand
	// EvDesperateAlloc records an allocation forced onto blacklisted
	// pages (the real collector's "needed to allocate blacklisted
	// block" warning). A0 the span's base address.
	EvDesperateAlloc
	// EvIncStep records one bounded incremental marking step. A0 step
	// number within the cycle, A1 mark-stack entries remaining.
	EvIncStep
	// EvSafepoint records a stop-the-world safepoint: every registered
	// mutator parked and its allocation caches flushed. A0 mutators
	// stopped, A1 cached slots flushed back to the free lists, A2 stop
	// duration in nanoseconds.
	EvSafepoint
	// EvCacheRefill records a mutator allocation cache refilling from
	// the central free lists in one batched carve. A0 free-list index
	// (class, +NumClasses when atomic), A1 slots carved, A2 object
	// words per slot.
	EvCacheRefill
	// EvProvenance records the harvest of a provenance-recording mark
	// phase. A0 first-mark records captured this cycle, A1 total records
	// now held (after a minor-cycle merge), A2 cycle kind.
	EvProvenance
	// EvRetention records a retention report. A0 live objects, A1
	// objects attributed as spuriously retained, A2 root slots analysed
	// for sole retention.
	EvRetention
	// EvSpanRefill records the carve of one bump span over a run of free
	// lines (Config.LineAlloc). A0 span base address, A1 slots in the
	// span, A2 object words per slot.
	EvSpanRefill
	// EvBarrierDirty records the concurrent-mark write barrier newly
	// dirtying a block (first store into it since its last rescan). A0
	// the stored-to address, A1 blocks currently dirty.
	EvBarrierDirty
	// EvFinalPause records a concurrent cycle's bounded final pause. A0
	// pause duration in nanoseconds, A1 dirty blocks rescanned in the
	// pause, A2 concurrent rescan passes run before it.
	EvFinalPause
	// EvPacerAssist records one mutator slow-path assist repaying mark
	// debt to the pacer. A0 assist duration in nanoseconds, A1 bytes of
	// debt that triggered it, A2 the pacer credit after repayment.
	EvPacerAssist
	// EvBudgetExceeded records a tenant allocation denied by its heap
	// budget after the over-budget policy ran out of remedies. A0 tenant
	// id, A1 requested bytes, A2 the tenant's live bytes at denial.
	EvBudgetExceeded
	// EvTenantEvict records a tenant eviction: every object the tenant
	// still owned was freed and the tenant was cancelled. A0 tenant id,
	// A1 objects freed, A2 bytes freed.
	EvTenantEvict
	// EvLeakAlert records the retention watcher raising a leak alert
	// for one attribution key. A0 collection cycle, A1 windowed growth
	// bytes, A2 confidence in per-mille (750 = 0.75).
	EvLeakAlert

	numKinds // sentinel: keep last
)

var kindNames = [numKinds]string{
	EvNone:           "none",
	EvCycleBegin:     "cycle_begin",
	EvCycleEnd:       "cycle_end",
	EvMarkBegin:      "mark_begin",
	EvMarkEnd:        "mark_end",
	EvSweepBegin:     "sweep_begin",
	EvSweepEnd:       "sweep_end",
	EvWorkerMark:     "worker_mark",
	EvMarkSpill:      "mark_spill",
	EvBlacklistPage:  "blacklist_page",
	EvSweepDrain:     "sweep_drain",
	EvAllocTrigger:   "alloc_trigger",
	EvHeapExpand:     "heap_expand",
	EvDesperateAlloc: "desperate_alloc",
	EvIncStep:        "inc_step",
	EvSafepoint:      "safepoint",
	EvCacheRefill:    "cache_refill",
	EvProvenance:     "provenance",
	EvRetention:      "retention",
	EvSpanRefill:     "span_refill",
	EvBarrierDirty:   "barrier_dirty",
	EvFinalPause:     "final_pause",
	EvPacerAssist:    "pacer_assist",
	EvBudgetExceeded: "budget_exceeded",
	EvTenantEvict:    "tenant_evict",
	EvLeakAlert:      "leak_alert",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record: a kind, a nanosecond timestamp relative
// to the recorder's creation, and three kind-interpreted arguments.
type Event struct {
	TimeNs int64
	Kind   Kind
	A0     int64
	A1     int64
	A2     int64
}

// Recorder is a concurrency-safe ring buffer of events. The zero
// *Recorder (nil) is the disabled state: Emit and the accessors are
// nil-receiver no-ops, so call sites need no separate enabled flag.
type Recorder struct {
	mu    sync.Mutex
	buf   []Event
	count uint64 // total events emitted, including overwritten ones
	epoch time.Time
	// histSrc, when set, is consulted at WriteJSON time for the
	// distribution metrics to embed alongside the events (core wires it
	// to the traced world's Registry.HistogramSnapshot, so a -trace
	// dump carries the pause histograms of the last world traced).
	histSrc func() []metrics.HistogramSample
}

// DefaultCapacity is the buffer size New uses for capacity <= 0.
const DefaultCapacity = 1 << 14

// New creates a recorder holding the last capacity events
// (DefaultCapacity if capacity <= 0).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity), epoch: time.Now()}
}

// Enabled reports whether the recorder records (i.e. is non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Emit records one event. On a nil recorder it is a no-op; in both
// cases it performs no heap allocation.
func (r *Recorder) Emit(k Kind, a0, a1, a2 int64) {
	if r == nil {
		return
	}
	now := time.Since(r.epoch).Nanoseconds()
	r.mu.Lock()
	r.buf[r.count%uint64(len(r.buf))] = Event{TimeNs: now, Kind: k, A0: a0, A1: a1, A2: a2}
	r.count++
	r.mu.Unlock()
}

// Emitted returns the total number of events emitted, including any
// that have been overwritten.
func (r *Recorder) Emitted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Dropped returns how many events were overwritten by wraparound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := uint64(len(r.buf)); r.count > c {
		return r.count - c
	}
	return 0
}

// Capacity returns the buffer capacity (0 for a nil recorder).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Reset discards all recorded events (the drop count included).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.count = 0
	r.mu.Unlock()
}

// Events returns the surviving events in emission order (oldest
// first). The result is a copy; it is safe to retain.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := uint64(len(r.buf))
	if r.count <= c {
		out := make([]Event, r.count)
		copy(out, r.buf[:r.count])
		return out
	}
	// Wrapped: the oldest surviving event sits at the write cursor.
	out := make([]Event, c)
	i := r.count % c
	n := copy(out, r.buf[i:])
	copy(out[n:], r.buf[:i])
	return out
}

// jsonEvent is the export form of one event: symbolic kind, relative
// timestamp, raw argument words.
type jsonEvent struct {
	TimeNs int64    `json:"t_ns"`
	Kind   string   `json:"kind"`
	Args   [3]int64 `json:"args"`
}

// SetHistogramSource registers fn as the provider of histogram
// snapshots for WriteJSON (nil detaches). A nil recorder no-ops.
func (r *Recorder) SetHistogramSource(fn func() []metrics.HistogramSample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.histSrc = fn
	r.mu.Unlock()
}

// jsonTrace is the export envelope.
type jsonTrace struct {
	Capacity int         `json:"capacity"`
	Emitted  uint64      `json:"emitted"`
	Dropped  uint64      `json:"dropped"`
	Events   []jsonEvent `json:"events"`
	// Histograms carries the traced world's distribution metrics
	// (pause, final-pause, snapshot-diff) when a histogram source is
	// attached; omitted otherwise for backward compatibility.
	Histograms []metrics.HistogramSample `json:"histograms,omitempty"`
}

// WriteJSON exports the surviving events as one indented JSON
// document: {"capacity":..,"emitted":..,"dropped":..,"events":[...]}.
// A nil recorder exports an empty trace.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := jsonTrace{
		Capacity: r.Capacity(),
		Emitted:  r.Emitted(),
		Dropped:  r.Dropped(),
		Events:   []jsonEvent{},
	}
	if r != nil {
		r.mu.Lock()
		src := r.histSrc
		r.mu.Unlock()
		if src != nil {
			doc.Histograms = src()
		}
	}
	for _, ev := range r.Events() {
		doc.Events = append(doc.Events, jsonEvent{
			TimeNs: ev.TimeNs,
			Kind:   ev.Kind.String(),
			Args:   [3]int64{ev.A0, ev.A1, ev.A2},
		})
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
