package inspect

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mark"
	"repro/internal/mem"
)

func TestWhyLivePathRendering(t *testing.T) {
	// A two-hop chain: root segment slot -> parent object -> object.
	path := []mark.ParentRecord{
		{Obj: 0x400010, Parent: 0x400000, Value: 0x400011, Kind: mark.RootNone,
			Ref: mark.RefInterior, Index: 1},
		{Obj: 0x400000, Parent: 0x2004, Value: 0x400000, Kind: mark.RootSegment,
			Ref: mark.RefExact, Index: 1, Src: 0},
	}
	out := WhyLivePath(0x400010, path)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 hops, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "why live: 0x00400010") || !strings.Contains(lines[0], "2 hops") {
		t.Fatalf("header = %q", lines[0])
	}
	// Root-first: the segment slot renders before the heap hop.
	if !strings.Contains(lines[1], "segment word 1") || !strings.Contains(lines[1], "@0x00002004") {
		t.Fatalf("root line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "field 1") || !strings.Contains(lines[2], "interior") {
		t.Fatalf("heap hop line = %q", lines[2])
	}
}

func TestWhyLivePathRegisterAndUnaligned(t *testing.T) {
	path := []mark.ParentRecord{
		{Obj: 0x400000, Value: 0x400002, Kind: mark.RootRegister,
			Ref: mark.RefUnaligned, Index: 5, Src: 2, Off: 2},
	}
	out := WhyLivePath(0x400000, path)
	for _, want := range []string{"register 5", "src 2", "unaligned", "byte offset 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRetentionTextRendering(t *testing.T) {
	rep := core.RetentionReport{
		LiveObjects: 100, LiveBytes: 800,
		GenuineObjects: 40, GenuineBytes: 320,
		SpuriousObjects: 60, SpuriousBytes: 480,
		CensoredRoots: 1, RootSlots: 3,
		BySize: []core.SizeClassRetention{
			{Words: 2, LiveObjects: 100, LiveBytes: 800, SpuriousObjects: 60, SpuriousBytes: 480},
		},
		ByLabel: []core.LabelRetention{
			{Label: "stream", LiveObjects: 100, LiveBytes: 800, SpuriousObjects: 60, SpuriousBytes: 480},
		},
		SoleRetainers: []core.RootRetention{
			{Slot: core.RootSlotID{Kind: mark.RootStack, Src: -1, Index: 0, Addr: 0xfffe0},
				Value: 0x400000, Ref: mark.RefExact, Objects: 60, Bytes: 480},
		},
	}
	out := RetentionText(rep)
	for _, want := range []string{
		"100 objects live (800 B)",
		"40 genuine (320 B)",
		"60 spurious (480 B)",
		"1 declared false root(s) censored",
		"by size class:",
		"2 words:",
		"by label:",
		"stream",
		"top sole retainers (3 root slots analysed):",
		"stack[world+0] @0xfffe0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRetentionTextNoCensoring(t *testing.T) {
	out := RetentionText(core.RetentionReport{LiveObjects: 5, LiveBytes: 40})
	if strings.Contains(out, "genuine") || strings.Contains(out, "censored") {
		t.Fatalf("undeclared report should not mention censoring:\n%s", out)
	}
	if !strings.Contains(out, "5 objects live (40 B)") {
		t.Fatalf("headline missing:\n%s", out)
	}
}

// TestWriteHeapSnapshotJSON exports a real lazy-sweep world with
// provenance and checks the JSON document's shape and symbolic kinds.
func TestWriteHeapSnapshotJSON(t *testing.T) {
	w, err := core.NewWorld(nil, core.Config{
		InitialHeapBytes: 64 * 1024, ReserveHeapBytes: 1 << 20,
		GCDivisor: -1, LazySweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.Space.MapNew("d", mem.KindData, 0x2000, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := w.Allocate(2, false)
	b, _ := w.Allocate(2, false)
	w.Store(a, mem.Word(b)) // heap edge a[0] -> b
	data.Store(0x2000, mem.Word(a))
	w.EnableProvenance(true)
	w.Collect() // deferred sweeps left pending on purpose

	var buf bytes.Buffer
	snap := w.BuildHeapSnapshot(func(mem.Addr) string { return "pair" })
	if err := WriteHeapSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		HeapBase        uint32 `json:"heap_base"`
		Collections     int    `json:"collections"`
		ProvenanceValid bool   `json:"provenance_valid"`
		Objects         []struct {
			Addr  uint32 `json:"addr"`
			Words int    `json:"words"`
			Label string `json:"label"`
		} `json:"objects"`
		Edges []struct {
			Src uint32 `json:"src"`
			Dst uint32 `json:"dst"`
		} `json:"edges"`
		Provenance []struct {
			Obj  uint32 `json:"obj"`
			Kind string `json:"kind"`
			Ref  string `json:"ref"`
		} `json:"provenance"`
		Blacklist map[string]any `json:"blacklist"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if !doc.ProvenanceValid || doc.Collections != 1 {
		t.Fatalf("header = %+v", doc)
	}
	if len(doc.Objects) != 2 || doc.Objects[0].Label != "pair" {
		t.Fatalf("objects = %+v", doc.Objects)
	}
	foundEdge := false
	for _, e := range doc.Edges {
		if e.Src == uint32(a) && e.Dst == uint32(b) {
			foundEdge = true
		}
	}
	if !foundEdge {
		t.Fatalf("edge %#x -> %#x missing: %+v", uint32(a), uint32(b), doc.Edges)
	}
	if len(doc.Provenance) != 2 {
		t.Fatalf("provenance = %+v", doc.Provenance)
	}
	kinds := map[string]bool{}
	for _, r := range doc.Provenance {
		kinds[r.Kind] = true
		if r.Ref != "exact" {
			t.Fatalf("ref = %q, want symbolic \"exact\"", r.Ref)
		}
	}
	if !kinds["segment"] || !kinds["heap"] {
		t.Fatalf("kinds = %v, want symbolic segment + heap", kinds)
	}
}

// TestRenderingLazySweepWorld drives the text renderers against a
// world with deferred sweep work still pending: the heap map and
// summary must render the in-between state without forcing the drain.
func TestRenderingLazySweepWorld(t *testing.T) {
	w, err := core.NewWorld(nil, core.Config{
		InitialHeapBytes: 64 * 1024, ReserveHeapBytes: 1 << 20,
		Blacklisting: core.BlacklistDense, GCDivisor: -1, LazySweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.Space.MapNew("d", mem.KindData, 0x2000, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		a, err := w.Allocate(2, false)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			data.Store(0x2000+mem.Addr(4*(i/2)), mem.Word(a))
		}
	}
	st := w.Collect()
	if st.SweepDeferredBlocks == 0 {
		t.Skip("workload produced no deferred blocks")
	}
	pendingMap := HeapMap(w.Heap, w.Blacklist, 16)
	if !strings.Contains(pendingMap, "a") {
		t.Fatalf("pending-sweep map lost the small blocks:\n%s", pendingMap)
	}
	s := Summary(w)
	if !strings.Contains(s, "collections: 1") {
		t.Fatalf("pending-sweep summary:\n%s", s)
	}
	// Draining must not change the object glyphs for surviving blocks.
	w.FinishSweep()
	if m := HeapMap(w.Heap, w.Blacklist, 16); !strings.Contains(m, "a") {
		t.Fatalf("post-drain map lost the small blocks:\n%s", m)
	}
}

// TestRenderingMutatorCachedWorld drives the renderers against a world
// whose mutator handles still hold cached allocation runs: maps,
// summaries and snapshots must render while slots are parked in
// caches, and agree with the post-safepoint state afterwards.
func TestRenderingMutatorCachedWorld(t *testing.T) {
	w, err := core.NewWorld(nil, core.Config{
		InitialHeapBytes: 64 * 1024, ReserveHeapBytes: 1 << 20,
		GCDivisor: -1, LazySweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.Space.MapNew("d", mem.KindData, 0x2000, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	m := w.NewMutator()
	for i := 0; i < 24; i++ {
		if _, err := m.AllocateRooted(data, mem.Addr(0x2000+4*i), 2, false); err != nil {
			t.Fatal(err)
		}
	}
	// Caches hold unconsumed slots here; every renderer must cope.
	if s := Summary(w); !strings.Contains(s, "heap:") {
		t.Fatalf("cached-world summary:\n%s", s)
	}
	if hm := HeapMap(w.Heap, w.Blacklist, 16); !strings.Contains(hm, "a") {
		t.Fatalf("cached-world map:\n%s", hm)
	}
	w.EnableProvenance(true)
	m.Collect() // safepoint: flush caches, then collect recording
	snap := w.BuildHeapSnapshot(nil)
	if len(snap.Objects) != 24 {
		t.Fatalf("snapshot holds %d objects, want the 24 rooted survivors", len(snap.Objects))
	}
	var buf bytes.Buffer
	if err := WriteHeapSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("cached-world snapshot is not valid JSON")
	}
}
