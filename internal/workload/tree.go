package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/simrand"
)

// Tree is a balanced binary tree built in the simulated heap; node
// layout is (left, right, value).
type Tree struct {
	Root  mem.Addr
	Nodes []mem.Addr
	Depth int
}

// BuildBalancedTree allocates a perfect binary tree of the given depth
// (2^depth - 1 nodes).
func BuildBalancedTree(w *core.World, depth int) (*Tree, error) {
	if depth < 1 || depth > 24 {
		return nil, fmt.Errorf("workload: bad tree depth %d", depth)
	}
	t := &Tree{Depth: depth}
	var build func(d int) (mem.Addr, error)
	build = func(d int) (mem.Addr, error) {
		node, err := w.Allocate(3, false)
		if err != nil {
			return 0, err
		}
		t.Nodes = append(t.Nodes, node)
		if err := w.Store(node+8, mem.Word(len(t.Nodes))); err != nil {
			return 0, err
		}
		if d > 1 {
			l, err := build(d - 1)
			if err != nil {
				return 0, err
			}
			r, err := build(d - 1)
			if err != nil {
				return 0, err
			}
			if err := w.Store(node, mem.Word(l)); err != nil {
				return 0, err
			}
			if err := w.Store(node+4, mem.Word(r)); err != nil {
				return 0, err
			}
		}
		return node, nil
	}
	root, err := build(depth)
	if err != nil {
		return nil, err
	}
	t.Root = root
	return t, nil
}

// TreeRetentionStats summarises false-reference trials against a tree.
type TreeRetentionStats struct {
	Depth        int
	Nodes        int
	Trials       int
	MeanRetained float64
	// TheoryRetained is the paper's prediction: "the expected number of
	// vertices retained as a result of a false reference to a balanced
	// binary tree with child links is approximately equal to the height
	// of the tree" (the average subtree size over uniformly random
	// nodes is depth-ish: sum of subtree sizes / n ≈ log2 n).
	TheoryRetained float64
}

// MeasureTreeRetention builds a balanced tree and measures the expected
// retention from a single false reference to a uniformly random node.
func MeasureTreeRetention(w *core.World, depth, trials int, seed uint64) (*TreeRetentionStats, error) {
	t, err := BuildBalancedTree(w, depth)
	if err != nil {
		return nil, err
	}
	rng := simrand.New(seed)
	var sum uint64
	for i := 0; i < trials; i++ {
		objs, _ := FalseRefTrial(w, t.Nodes, rng)
		sum += objs
	}
	n := len(t.Nodes)
	// Exact expectation: sum over nodes of their subtree size, over n.
	// For a perfect tree of depth d: sum_{k=1..d} k-th level subtree
	// sizes = sum_{j=1..d} 2^(d-j) * (2^j - 1).
	var subtreeSum float64
	for j := 1; j <= depth; j++ {
		subtreeSum += math.Exp2(float64(depth-j)) * (math.Exp2(float64(j)) - 1)
	}
	return &TreeRetentionStats{
		Depth:          depth,
		Nodes:          n,
		Trials:         trials,
		MeanRetained:   float64(sum) / float64(trials),
		TheoryRetained: subtreeSum / float64(n),
	}, nil
}

// Queue is the section-4 pathological structure: "queues and lazy
// lists in particular have the problem that they grow without bound,
// but typically only a section of bounded length is accessible at any
// point. A false reference can result in retention of all the
// inaccessible elements, and thus unbounded heap growth."
//
// Cells are cons pairs (value, next). head/tail are the live window.
type Queue struct {
	w          *core.World
	head, tail mem.Addr
	// ClearLinks applies the paper's fix: "queues no longer grow
	// without bound if the queue link field is cleared when an item is
	// removed".
	ClearLinks bool
	Enqueued   uint64
	Dequeued   uint64
}

// NewQueue creates an empty queue in the world.
func NewQueue(w *core.World, clearLinks bool) *Queue {
	return &Queue{w: w, ClearLinks: clearLinks}
}

// Head returns the current head cell (0 when empty). The caller is
// responsible for keeping it visible to the collector via a root.
func (q *Queue) Head() mem.Addr { return q.head }

// Len returns the live window length.
func (q *Queue) Len() int { return int(q.Enqueued - q.Dequeued) }

// Enqueue appends a value.
func (q *Queue) Enqueue(v mem.Word) (mem.Addr, error) {
	cell, err := cons(q.w, v, 0)
	if err != nil {
		return 0, err
	}
	if q.tail != 0 {
		if err := q.w.Store(q.tail+4, mem.Word(cell)); err != nil {
			return 0, err
		}
	} else {
		q.head = cell
	}
	q.tail = cell
	q.Enqueued++
	return cell, nil
}

// Dequeue removes and returns the head value.
func (q *Queue) Dequeue() (mem.Word, error) {
	if q.head == 0 {
		return 0, fmt.Errorf("workload: dequeue on empty queue")
	}
	v, err := car(q.w, q.head)
	if err != nil {
		return 0, err
	}
	next, err := cdr(q.w, q.head)
	if err != nil {
		return 0, err
	}
	if q.ClearLinks {
		// "Note that clearing links is much safer than explicit
		// deallocation, since an error cannot result in random
		// overwrites of unrelated modules' data."
		if err := q.w.Store(q.head+4, 0); err != nil {
			return 0, err
		}
	}
	q.head = mem.Addr(next)
	if q.head == 0 {
		q.tail = 0
	}
	q.Dequeued++
	return v, nil
}

// QueueChurnResult reports the queue false-reference experiment.
type QueueChurnResult struct {
	ClearLinks       bool
	Window           int
	Steps            int
	PeakLiveObjects  uint64 // apparently-live objects at the worst collection
	FinalLiveObjects uint64
	HeapBytes        int
}

// RunQueueChurn drives a bounded-window queue through steps
// enqueue/dequeue pairs while a false reference to one early cell sits
// in a root segment, collecting periodically. Without link clearing the
// false reference retains every cell enqueued after it; with clearing
// it retains one cell.
func RunQueueChurn(w *core.World, window, steps int, clearLinks bool, rootSeg *mem.Segment, rootSlot mem.Addr) (*QueueChurnResult, error) {
	q := NewQueue(w, clearLinks)
	// Fill the window.
	for i := 0; i < window; i++ {
		if _, err := q.Enqueue(mem.Word(i)); err != nil {
			return nil, err
		}
	}
	// Plant the false reference: an early interior cell, as if an
	// integer somewhere happened to hold its address.
	victim, err := q.Enqueue(0xFEED)
	if err != nil {
		return nil, err
	}
	if err := rootSeg.Store(rootSlot, mem.Word(victim)); err != nil {
		return nil, err
	}

	headSlot := rootSlot + 4 // the queue's real root
	var peak uint64
	for i := 0; i < steps; i++ {
		if _, err := q.Enqueue(mem.Word(i)); err != nil {
			return nil, err
		}
		if _, err := q.Dequeue(); err != nil {
			return nil, err
		}
		if err := rootSeg.Store(headSlot, mem.Word(q.Head())); err != nil {
			return nil, err
		}
		if i%1000 == 999 {
			st := w.Collect()
			if st.Sweep.ObjectsLive > peak {
				peak = st.Sweep.ObjectsLive
			}
		}
	}
	st := w.Collect()
	return &QueueChurnResult{
		ClearLinks:       clearLinks,
		Window:           window,
		Steps:            steps,
		PeakLiveObjects:  peak,
		FinalLiveObjects: st.Sweep.ObjectsLive,
		HeapBytes:        w.Heap.Stats().HeapBytes,
	}, nil
}
