// Package alloc implements the garbage-collected heap allocator, closely
// following the organisation of the collector the paper measures
// (Boehm & Weiser 1988; Boehm, PLDI 1993).
//
// The heap is a contiguous reserved region of the simulated address
// space, committed on demand in block (page) units of 4 KiB. Each
// dedicated block holds objects of a single size class; a block's
// metadata records, per object slot, whether the slot is allocated and
// whether it is marked. Objects larger than half a block occupy a
// contiguous span of blocks. Free objects of each size class are
// threaded through their first word into per-class free lists, which the
// sweep phase rebuilds after every collection.
//
// Two of the paper's space-efficiency techniques live here:
//
//   - Blacklist avoidance (section 3): before dedicating fresh blocks,
//     the allocator consults the blacklist. A blacklisted page is never
//     used for ordinary objects; it may optionally be used for small
//     pointer-free objects, "because the objects are small and known not
//     to contain pointers". When interior pointers are recognised, large
//     objects additionally must not span any blacklisted page.
//
//   - Address-ordered free block management (conclusions): keeping free
//     blocks sorted by address and coalescing neighbours "increases the
//     probability that related objects are allocated together, and thus
//     increases the probability of large chunks of adjacent space
//     becoming available in the future, decreasing fragmentation". A
//     LIFO policy is provided for the ablation benchmark.
//
// The allocator never collects; when it cannot satisfy a request it
// returns ErrNeedMemory, and the collector (internal/core) decides
// whether to collect, expand the heap, or give up.
package alloc

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/blacklist"
	"repro/internal/mem"
	"repro/internal/trace"
)

// ErrNeedMemory reports that a request cannot be satisfied from the
// current free lists and free blocks; the caller should collect and/or
// expand the heap and retry.
var ErrNeedMemory = errors.New("alloc: need memory (collect or expand)")

// ErrHeapExhausted reports that the heap's reserved region is fully
// committed, so no further expansion is possible.
var ErrHeapExhausted = errors.New("alloc: heap reservation exhausted")

// MaxSmallWords is the largest object size, in words, served from
// size-class blocks. Larger requests get contiguous block spans.
const MaxSmallWords = 512

// classWords lists the object sizes (in words) of the small size
// classes, the same geometric-ish progression used by the paper's
// collector.
var classWords = []int{
	1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64,
	80, 96, 128, 170, 256, 341, 512,
}

// NumClasses is the number of small size classes.
var NumClasses = len(classWords)

// classOf maps a request size in words to a size-class index.
var classOf [MaxSmallWords + 1]uint8

func init() {
	c := 0
	for w := 1; w <= MaxSmallWords; w++ {
		if w > classWords[c] {
			c++
		}
		classOf[w] = uint8(c)
	}
}

// ClassFor returns the size-class index and the rounded object size in
// words for a small request. It panics if nwords is out of range; use
// IsLarge first.
func ClassFor(nwords int) (class int, words int) {
	if nwords < 1 || nwords > MaxSmallWords {
		panic(fmt.Sprintf("alloc: ClassFor(%d) out of small range", nwords))
	}
	c := int(classOf[nwords])
	return c, classWords[c]
}

// IsLarge reports whether a request of nwords words is served as a
// large (block-span) object.
func IsLarge(nwords int) bool { return nwords > MaxSmallWords }

// FreeBlockPolicy selects how free blocks are kept.
type FreeBlockPolicy int

// Free block policies.
const (
	// AddressOrdered keeps free spans sorted by address with coalescing
	// (the paper's recommendation).
	AddressOrdered FreeBlockPolicy = iota
	// LIFO pushes released spans on a stack without coalescing, like a
	// naive malloc; used by the fragmentation ablation.
	LIFO
)

// Config parameterises the allocator.
type Config struct {
	// HeapBase is the first address of the heap region. It must be
	// page-aligned and nonzero.
	HeapBase mem.Addr
	// InitialBytes is the initially committed heap size (rounded up to
	// pages).
	InitialBytes int
	// ReserveBytes is the maximum heap size (rounded up to pages). The
	// whole reserved region counts as "the vicinity of the heap" for
	// blacklisting purposes.
	ReserveBytes int
	// ExpandIncrement is the minimum expansion unit in bytes (default
	// 256 KiB). The paper notes that blacklisting's space cost "is
	// dominated by the heap expansion increment".
	ExpandIncrement int
	// Blacklist is consulted before dedicating blocks. nil means
	// blacklist.Disabled.
	Blacklist blacklist.List
	// InteriorPointers must mirror the collector's pointer policy: when
	// true, large objects must not span any blacklisted page; when
	// false, only an object's first page matters (paper, observation 7).
	InteriorPointers bool
	// AllowAtomicOnBlacklisted lets small pointer-free objects be
	// allocated on blacklisted pages (paper, observation 6: in PCedar
	// "there are enough allocations of small objects known to be
	// pointer-free that blacklisted pages can still be allocated").
	AllowAtomicOnBlacklisted bool
	// AtomicBlacklistMaxWords bounds "small" for the previous knob
	// (default 16 words).
	AtomicBlacklistMaxWords int
	// FreeBlocks selects the free block policy (default AddressOrdered).
	FreeBlocks FreeBlockPolicy
	// SkipPageBoundarySlot avoids handing out objects whose address is a
	// block boundary (12 trailing zero bits) for 1- and 2-word classes,
	// implementing the paper's observation that misidentification drops
	// "if objects are not allocated at addresses containing a large
	// number of trailing zeroes". The first slot of such blocks is
	// sacrificed.
	SkipPageBoundarySlot bool
	// DiscontiguousGrowth lets the heap grow by mapping additional
	// extents at non-adjacent addresses once the first reservation is
	// exhausted — the configuration of the paper's second collector,
	// whose "heap is discontinuous" and whose blacklist is therefore
	// the hashed form. Callers pairing this with a blacklist must use
	// blacklist.Hashed: a Dense list covers only the first extent.
	DiscontiguousGrowth bool
	// ExtentGapBytes separates a new extent's base from the previous
	// extent's reserved limit (default 16 MiB).
	ExtentGapBytes int
	// ExtentReserveBytes is each additional extent's reservation
	// (default: ReserveBytes).
	ExtentReserveBytes int
	// LazySweep defers per-slot sweep work out of the collection barrier.
	// Sweep/SweepSticky then only classify blocks from their mark
	// summaries — releasing empty blocks, skipping fully-live ones, and
	// queueing mixed blocks — and refill sweeps queued blocks on demand;
	// FinishSweep completes any remainder. Reclamation totals (the
	// SweepResult) are identical to the eager sweep's, computed from the
	// summaries at the barrier. Default off: the eager path, unchanged.
	LazySweep bool
	// LineAlloc switches small untyped allocation to the line-structured
	// bump profile (see lines.go): blocks are partitioned into
	// LineWords-sized lines, sweep classifies them by line occupancy
	// instead of threading free lists, and allocation carves {cursor,
	// limit} bump spans over runs of wholly-free lines (AllocSpan /
	// ReturnSpan for mutator caches, the central spans for Alloc).
	// Reclamation totals and — on line-aligned size classes — allocation
	// addresses are identical to the free-list profile; the differential
	// tests assert both. Typed and large objects are unaffected. Default
	// off: the threaded free lists, unchanged.
	LineAlloc bool
	// AtomicWords puts every heap segment (the initial one and any
	// discontiguous extents) in atomic-store mode: mutator stores to
	// heap words become atomic writes, pairing with the atomic reads of
	// detached mark workers that scan while holding no allocation lock.
	// Structure-level synchronisation is still the caller's affair; this
	// only removes the word-level data race. Default off.
	AtomicWords bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ExpandIncrement <= 0 {
		out.ExpandIncrement = 256 * 1024
	}
	if out.Blacklist == nil {
		out.Blacklist = blacklist.Disabled{}
	}
	if out.AtomicBlacklistMaxWords <= 0 {
		out.AtomicBlacklistMaxWords = 16
	}
	out.InitialBytes = mem.PageCount(out.InitialBytes) * mem.PageBytes
	out.ReserveBytes = mem.PageCount(out.ReserveBytes) * mem.PageBytes
	if out.ExtentGapBytes <= 0 {
		out.ExtentGapBytes = 16 << 20
	}
	out.ExtentGapBytes = mem.PageCount(out.ExtentGapBytes) * mem.PageBytes
	if out.ExtentReserveBytes <= 0 {
		out.ExtentReserveBytes = out.ReserveBytes
	}
	out.ExtentReserveBytes = mem.PageCount(out.ExtentReserveBytes) * mem.PageBytes
	return out
}

// blockState classifies a committed block.
type blockState uint8

const (
	blockFree blockState = iota
	blockSmall
	blockLargeHead
	blockLargeCont
)

// blockDesc is the per-block metadata ("block header" in the paper's
// collector, kept off to the side here).
type blockDesc struct {
	state     blockState
	atomic    bool
	class     uint8  // small: size-class index
	desc      DescID // small: layout descriptor, or descConservative/descAtomic
	objWords  int32  // small: words per object; large head: object words
	spanLen   int32  // large head: blocks in span; cont: offset to head
	liveSlots int32  // small: allocated slot count
	// markedCount is the block's mark summary: how many of its objects
	// are marked (small: marked slots; large head: 0 or 1). Maintained
	// at every mark-bit transition — plainly by Mark, with an atomic add
	// by MarkAtomic — so after a mark phase the sweeper classifies the
	// block as empty / mixed / fully live in O(1) without reading the
	// bitmap. The byte half of the summary is derived, not stored:
	// blocks hold a single size class, so marked bytes are always
	// markedCount × objWords × WordBytes (see markedBytes).
	markedCount int32
	// pendingSweep marks a block whose sweep was deferred past the
	// collection barrier (Config.LazySweep): its alloc/mark bits still
	// describe the last cycle's liveness, and its free slots are on no
	// free list until sweepBlock runs.
	pendingSweep bool
	// lineLive caches which lines hold an allocated slot (LineAlloc
	// small untyped blocks only): bit l set iff some allocated slot
	// overlaps words [l*LineWords, (l+1)*LineWords). Derived from
	// allocBits — recomputed by the line sweep and ReturnSpan, extended
	// by carveRun — never maintained on the mark path.
	lineLive uint16
	// bumpQueued marks a block currently on its class's linePartial
	// queue, so requeues after frees cannot create duplicate entries.
	bumpQueued bool
	// ignoreOffPage marks a large object whose client promises to keep
	// a pointer to its first page: interior pointers past that page are
	// treated as invalid (GC_malloc_ignore_off_page in the original
	// collector; the paper's observation 7).
	ignoreOffPage bool
	allocBits     []uint64
	markBits      []uint64
}

// span is a run of free blocks [start, start+n).
type span struct {
	start int // block index
	n     int
}

// Stats reports allocator activity.
type Stats struct {
	BytesAllocated   uint64 // cumulative
	ObjectsAllocated uint64 // cumulative
	BytesLive        uint64 // after the last sweep
	ObjectsLive      uint64 // after the last sweep
	HeapBytes        int    // committed heap size
	BlocksDedicated  int
	BlocksFree       int
	BlacklistSkips   uint64 // blocks passed over because blacklisted
	Expansions       int
	BytesSinceGC     uint64 // allocation since the last ResetSinceGC
	// DesperateAllocs counts allocations that had to use blacklisted
	// pages because nothing else was available (see AllocDesperate) —
	// the real collector's "needed to allocate blacklisted block"
	// warning.
	DesperateAllocs uint64
	// LazySweptBlocks counts blocks whose sweep was deferred past a
	// collection barrier and completed later, by refill or FinishSweep
	// (LazySweep only).
	LazySweptBlocks uint64
}

// extent is one contiguous run of heap. The default heap is a single
// extent; with Config.DiscontiguousGrowth further extents are mapped at
// non-adjacent addresses as the heap grows. Only the newest extent may
// grow, so an extent's blocks occupy a contiguous range of the global
// block index space starting at startBlock.
type extent struct {
	seg        *mem.Segment
	startBlock int
}

// Allocator manages the simulated collected heap.
type Allocator struct {
	cfg     Config
	space   *mem.AddressSpace
	extents []extent
	blocks  []blockDesc
	free    []span // per FreeBlocks policy
	// freeList[class] heads the threaded free list of each size class;
	// 0 means empty (address 0 is never a heap address).
	freeList [64]mem.Addr
	// dirty holds one bit per committed block, set by MarkDirty (the
	// generational write barrier) and consumed by minor collections.
	dirty []uint64
	// typedFree heads the free lists of typed (class, descriptor)
	// blocks; descriptors registers object layouts.
	typedFree   map[typedKey]mem.Addr
	descriptors []Descriptor
	stats       Stats
	// Lazy sweeping state (Config.LazySweep). sweepPending[idx] queues
	// the sweep-pending mixed blocks whose free slots belong on
	// freeList[idx]; sweepPendingTyped does the same for typed lists.
	// Queues are filled in ascending block order by the classification
	// barrier and drained from the back, so lazy refills consume blocks
	// in exactly the order the eager sweep would have handed their slots
	// out (descending block index) — allocation addresses are identical
	// between the two modes. pendingBlocks counts blocks still flagged
	// pendingSweep (queue entries for already-swept blocks are skipped
	// on pop). lazyClearMarks records whether deferred sweeps clear mark
	// bits (full cycle) or preserve them (sticky minor cycle).
	sweepPending      [64][]int
	sweepPendingTyped map[typedKey][]int
	pendingBlocks     int
	lazyClearMarks    bool
	// Line-structured allocation state (Config.LineAlloc, lines.go).
	// lineSpans[idx] is the central bump span Alloc consumes for each
	// free-list index; linePartial[idx] queues partially-free blocks as
	// carve targets, filled in ascending block order by the sweep
	// barrier and popped from the back — the same order the rebuilt
	// free lists would hand blocks out, which is what keeps allocation
	// addresses identical to the free-list profile on line-aligned
	// classes.
	// lineFreed[idx] is the explicit-free LIFO: Free pushes the slot
	// (alloc bit kept set, memory zeroed) and allocation pops it before
	// consuming any span — the analogue of the threaded list's
	// push-to-head, which is what keeps Free/realloc address order
	// identical too. FlushSpans drains it at every barrier.
	lineSpans   [64]Span
	linePartial [64][]int
	lineFreed   [64][]mem.Addr
	// Per-tenant ownership attribution (owners.go): owned maps object
	// base addresses to the tenant that allocated them, ownerCredit
	// returns a dead object's bytes to its tenant. nil/unused until the
	// first budgeted tenant tags an object — untenanted worlds pay
	// nothing.
	owned       map[mem.Addr]ownerRec
	ownerCredit func(id int32, objects, bytes uint64)
	// hullLo/hullHi cache the reserved-range hull over all extents:
	// every address any extent could ever commit lies in [hullLo,
	// hullHi). The marker's candidate fast path rejects the common
	// non-pointer root word with these two compares before paying for
	// an extent search. Maintained by New and addExtent.
	hullLo, hullHi mem.Addr
	// lastExtent caches the extent index of the most recent successful
	// extentOfAddr lookup. Pointer candidates cluster, so the cache
	// turns the multi-extent search into one bounds check in the common
	// case. Atomic because parallel mark workers share the allocator
	// read-only except for this hint.
	lastExtent atomic.Int32
	// tracer receives heap-expansion, desperate-allocation and lazy
	// sweep-drain events; nil (the default) disables them.
	tracer *trace.Recorder
}

// typedKey identifies a typed free list.
type typedKey struct {
	class int
	desc  DescID
}

// New creates an allocator, mapping the heap segment into space.
func New(space *mem.AddressSpace, cfg Config) (*Allocator, error) {
	c := cfg.withDefaults()
	if c.HeapBase == 0 || c.HeapBase%mem.PageBytes != 0 {
		return nil, fmt.Errorf("alloc: heap base %#x not page-aligned", uint32(c.HeapBase))
	}
	if c.ReserveBytes < mem.PageBytes || c.InitialBytes > c.ReserveBytes {
		return nil, fmt.Errorf("alloc: bad sizes initial=%d reserve=%d", c.InitialBytes, c.ReserveBytes)
	}
	seg, err := space.MapNew("heap", mem.KindHeap, c.HeapBase, c.InitialBytes, c.ReserveBytes)
	if err != nil {
		return nil, err
	}
	seg.SetAtomicStore(c.AtomicWords)
	a := &Allocator{
		cfg:               c,
		space:             space,
		extents:           []extent{{seg: seg, startBlock: 0}},
		typedFree:         map[typedKey]mem.Addr{},
		sweepPendingTyped: map[typedKey][]int{},
		hullLo:            seg.Base(),
		hullHi:            seg.ReservedLimit(),
	}
	n := c.InitialBytes / mem.PageBytes
	a.blocks = make([]blockDesc, n)
	a.dirty = make([]uint64, (n+63)/64)
	if n > 0 {
		a.releaseSpan(0, n)
	}
	a.stats.HeapBytes = c.InitialBytes
	a.stats.BlocksFree = n
	return a, nil
}

// Seg returns the heap's first (and, by default, only) extent segment.
func (a *Allocator) Seg() *mem.Segment { return a.extents[0].seg }

// Extents returns the number of heap extents (1 unless
// DiscontiguousGrowth has added more).
func (a *Allocator) Extents() int { return len(a.extents) }

// Base returns the heap's lowest address.
func (a *Allocator) Base() mem.Addr { return a.extents[0].seg.Base() }

// Limit returns the first address past the committed heap's highest
// extent.
func (a *Allocator) Limit() mem.Addr { return a.extents[len(a.extents)-1].seg.Limit() }

// Hull returns the reserved-range hull of the heap: every address in
// any extent's reserved region lies in [lo, hi). A value outside the
// hull can be neither a valid object address nor "in the vicinity of
// the heap", so the marker rejects it with two compares.
func (a *Allocator) Hull() (lo, hi mem.Addr) { return a.hullLo, a.hullHi }

// InVicinity reports whether p falls in any extent's reserved region —
// the paper's test for values that "could conceivably become valid
// object addresses as a result of later allocation".
func (a *Allocator) InVicinity(p mem.Addr) bool {
	if p < a.hullLo || p >= a.hullHi {
		return false
	}
	if len(a.extents) == 1 {
		return true
	}
	// Binary search over the extents (sorted by base); p may fall into
	// the unreserved gap between two extents.
	i := sort.Search(len(a.extents), func(i int) bool { return a.extents[i].seg.Base() > p }) - 1
	return i >= 0 && a.extents[i].seg.InReserved(p)
}

// InCommitted reports whether p falls in the committed heap.
func (a *Allocator) InCommitted(p mem.Addr) bool {
	return a.extentOfAddr(p) != nil
}

// extentOfAddr returns the extent whose committed region holds p, or
// nil. The common single-extent case is one bounds check; the
// multi-extent case first consults the last-hit cache and then binary
// searches the (base-sorted) extents.
func (a *Allocator) extentOfAddr(p mem.Addr) *extent {
	if len(a.extents) == 1 {
		if a.extents[0].seg.Contains(p) {
			return &a.extents[0]
		}
		return nil
	}
	if i := int(a.lastExtent.Load()); i < len(a.extents) && a.extents[i].seg.Contains(p) {
		return &a.extents[i]
	}
	i := sort.Search(len(a.extents), func(i int) bool { return a.extents[i].seg.Base() > p }) - 1
	if i >= 0 && a.extents[i].seg.Contains(p) {
		a.lastExtent.Store(int32(i))
		return &a.extents[i]
	}
	return nil
}

// extentOfBlock returns the extent owning global block index bi.
func (a *Allocator) extentOfBlock(bi int) *extent {
	for i := len(a.extents) - 1; i >= 0; i-- {
		if bi >= a.extents[i].startBlock {
			return &a.extents[i]
		}
	}
	panic(fmt.Sprintf("alloc: block %d has no extent", bi))
}

// blockWords returns the PageWords-long word slice backing block bi.
func (a *Allocator) blockWords(bi int) []mem.Word {
	e := a.extentOfBlock(bi)
	off := (bi - e.startBlock) * mem.PageWords
	return e.seg.Words()[off : off+mem.PageWords]
}

// ObjectWords returns the word slice of the object at base (which must
// be a valid object base of the given size). Objects never span
// extents, so the slice is contiguous; the marker scans through it.
func (a *Allocator) ObjectWords(base mem.Addr, words int) []mem.Word {
	if len(a.extents) == 1 {
		off := int(base-a.extents[0].seg.Base()) / mem.WordBytes
		return a.extents[0].seg.Words()[off : off+words]
	}
	e := a.extentOfAddr(base)
	off := int(base-e.seg.Base()) / mem.WordBytes
	return e.seg.Words()[off : off+words]
}

// loadWord and storeWord access heap memory by address.
func (a *Allocator) loadWord(p mem.Addr) (mem.Word, error) {
	if e := a.extentOfAddr(p); e != nil {
		return e.seg.Load(p)
	}
	return 0, fmt.Errorf("alloc: load outside heap at %#x", uint32(p))
}

func (a *Allocator) storeWord(p mem.Addr, v mem.Word) error {
	if e := a.extentOfAddr(p); e != nil {
		return e.seg.Store(p, v)
	}
	return fmt.Errorf("alloc: store outside heap at %#x", uint32(p))
}

// NumBlocks returns the number of committed blocks.
func (a *Allocator) NumBlocks() int { return len(a.blocks) }

// blockBase returns the address of block i.
func (a *Allocator) blockBase(i int) mem.Addr {
	if len(a.extents) == 1 {
		return a.extents[0].seg.Base() + mem.Addr(i*mem.PageBytes)
	}
	e := a.extentOfBlock(i)
	return e.seg.Base() + mem.Addr((i-e.startBlock)*mem.PageBytes)
}

// blockIndex returns the index of the block containing p, which must be
// in the committed heap.
func (a *Allocator) blockIndex(p mem.Addr) int {
	if len(a.extents) == 1 {
		return int(p-a.extents[0].seg.Base()) / mem.PageBytes
	}
	e := a.extentOfAddr(p)
	return e.startBlock + int(p-e.seg.Base())/mem.PageBytes
}

func bitGet(bits []uint64, i int) bool { return bits[i>>6]&(1<<(uint(i)&63)) != 0 }
func bitSet(bits []uint64, i int)      { bits[i>>6] |= 1 << (uint(i) & 63) }
func bitClear(bits []uint64, i int)    { bits[i>>6] &^= 1 << (uint(i) & 63) }

// slotsPerBlock returns how many objects of w words fit in one block.
func slotsPerBlock(w int) int { return mem.PageWords / w }

// firstSlot returns the first usable slot index of a small block of the
// given class under the SkipPageBoundarySlot option.
func (a *Allocator) firstSlot(objWords int) int {
	if a.cfg.SkipPageBoundarySlot && objWords <= 2 {
		return 1
	}
	return 0
}

// Alloc allocates an object of nwords words (nwords ≥ 1). atomic marks
// the object as pointer-free: the collector will not scan its contents,
// the paper's defence against "large amounts of compressed data"
// introducing false pointers. The object's words are zero on return.
//
// Alloc returns ErrNeedMemory when the request cannot be satisfied
// without collecting or expanding; the caller retries after doing so.
func (a *Allocator) Alloc(nwords int, atomic bool) (mem.Addr, error) {
	return a.alloc(nwords, atomic, false)
}

// AllocDesperate is Alloc with the blacklist constraint relaxed: when
// no clean placement exists, a blacklisted page is used rather than
// failing. The real collector falls back the same way (with a
// "needed to allocate blacklisted block" warning) when the alternative
// is unbounded heap growth; the paper permits it for objects from
// which "very little memory will ever be reachable", and the caller is
// expected to have exhausted collection and expansion first.
func (a *Allocator) AllocDesperate(nwords int, atomic bool) (mem.Addr, error) {
	return a.alloc(nwords, atomic, true)
}

// AllocIgnoreOffPage allocates a large object under the client promise
// that a pointer to its first page is kept while it is live. Interior
// pointers beyond the first page are then treated as invalid, so the
// object neither needs a blacklist-free span nor suffers observation
// 7's placement difficulty — GC_malloc_ignore_off_page in the original
// collector ("this is never a problem if addresses that do not point
// to the first page of an object can be considered invalid").
func (a *Allocator) AllocIgnoreOffPage(nwords int, atomic bool) (mem.Addr, error) {
	if !IsLarge(nwords) {
		// Small objects never span pages; the promise is vacuous.
		return a.alloc(nwords, atomic, false)
	}
	p, err := a.allocLargeCommon(nwords, atomic, false, true)
	if err != nil {
		return 0, err
	}
	return p, nil
}

func (a *Allocator) alloc(nwords int, atomic, desperate bool) (mem.Addr, error) {
	if nwords < 1 {
		return 0, fmt.Errorf("alloc: bad size %d", nwords)
	}
	if IsLarge(nwords) {
		return a.allocLarge(nwords, atomic, desperate)
	}
	class, words := ClassFor(nwords)
	// The paper's collector keeps separate free lists for atomic and
	// composite objects; we fold atomicity into the class index.
	idx := class
	if atomic {
		idx += NumClasses
	}
	if a.cfg.LineAlloc {
		return a.allocLine(class, words, atomic, idx, desperate)
	}
	if a.freeList[idx] == 0 {
		if err := a.refill(class, atomic, idx, desperate); err != nil {
			return 0, err
		}
	}
	p := a.freeList[idx]
	next, err := a.loadWord(p)
	if err != nil {
		return 0, fmt.Errorf("alloc: corrupt free list for class %d: %v", class, err)
	}
	a.freeList[idx] = mem.Addr(next)
	if err := a.storeWord(p, 0); err != nil {
		return 0, err
	}
	b := &a.blocks[a.blockIndex(p)]
	slot := int(p-a.blockBase(a.blockIndex(p))) / (words * mem.WordBytes)
	bitSet(b.allocBits, slot)
	b.liveSlots++
	a.stats.ObjectsAllocated++
	a.stats.BytesAllocated += uint64(words * mem.WordBytes)
	a.stats.BytesSinceGC += uint64(words * mem.WordBytes)
	return p, nil
}

// refill replenishes freeList[idx], first by sweeping pending blocks of
// the class (lazy sweeping), then by dedicating a fresh block and
// threading its slots.
func (a *Allocator) refill(class int, atomic bool, idx int, desperate bool) error {
	for a.freeList[idx] == 0 {
		bi, ok := a.popPending(&a.sweepPending[idx])
		if !ok {
			break
		}
		a.sweepBlock(bi)
	}
	if a.freeList[idx] != 0 {
		return nil
	}
	words := classWords[class]
	anyPageOK := desperate || (atomic && a.cfg.AllowAtomicOnBlacklisted &&
		words <= a.cfg.AtomicBlacklistMaxWords)
	bi, ok := a.acquireSpan(1, anyPageOK)
	if !ok {
		return ErrNeedMemory
	}
	if desperate && a.cfg.Blacklist.Contains(a.blockBase(bi)) {
		a.stats.DesperateAllocs++
		a.tracer.Emit(trace.EvDesperateAlloc, int64(a.blockBase(bi)), 0, 0)
	}
	nslots := slotsPerBlock(words)
	b := &a.blocks[bi]
	nbitWords := (nslots + 63) / 64
	desc := descConservative
	if atomic {
		desc = descAtomic
	}
	*b = blockDesc{
		state:     blockSmall,
		atomic:    atomic,
		class:     uint8(class),
		desc:      desc,
		objWords:  int32(words),
		allocBits: make([]uint64, nbitWords),
		markBits:  make([]uint64, nbitWords),
	}
	// Zero the block so objects are delivered clean, then thread the
	// slots in address order.
	base := a.blockBase(bi)
	hw := a.blockWords(bi)
	for i := range hw {
		hw[i] = 0
	}
	head := a.freeList[idx]
	for slot := nslots - 1; slot >= a.firstSlot(words); slot-- {
		p := base + mem.Addr(slot*words*mem.WordBytes)
		hw[slot*words] = mem.Word(head)
		head = p
	}
	a.freeList[idx] = head
	return nil
}

// allocLarge allocates an object spanning one or more whole blocks.
func (a *Allocator) allocLarge(nwords int, atomic, desperate bool) (mem.Addr, error) {
	return a.allocLargeCommon(nwords, atomic, desperate, false)
}

func (a *Allocator) allocLargeCommon(nwords int, atomic, desperate, ignoreOffPage bool) (mem.Addr, error) {
	nblocks := mem.PageCount(nwords * mem.WordBytes)
	bi, ok := a.acquireSpanLarge(nblocks, desperate, ignoreOffPage)
	if !ok {
		return 0, ErrNeedMemory
	}
	if desperate {
		lo := a.blockBase(bi)
		if a.cfg.Blacklist.ContainsRange(lo, lo+mem.Addr(nblocks*mem.PageBytes)) {
			a.stats.DesperateAllocs++
			a.tracer.Emit(trace.EvDesperateAlloc, int64(lo), 0, 0)
		}
	}
	a.blocks[bi] = blockDesc{
		state:         blockLargeHead,
		atomic:        atomic,
		desc:          descConservative,
		objWords:      int32(nwords),
		spanLen:       int32(nblocks),
		ignoreOffPage: ignoreOffPage,
		markBits:      make([]uint64, 1),
	}
	for j := 1; j < nblocks; j++ {
		a.blocks[bi+j] = blockDesc{state: blockLargeCont, spanLen: int32(j)}
	}
	base := a.blockBase(bi)
	remaining := nwords
	for j := 0; j < nblocks && remaining > 0; j++ {
		hw := a.blockWords(bi + j)
		n := len(hw)
		if n > remaining {
			n = remaining
		}
		for i := 0; i < n; i++ {
			hw[i] = 0
		}
		remaining -= n
	}
	a.stats.ObjectsAllocated++
	a.stats.BytesAllocated += uint64(nwords * mem.WordBytes)
	a.stats.BytesSinceGC += uint64(nwords * mem.WordBytes)
	return base, nil
}

// spanOK reports whether a candidate span may be dedicated, given the
// blacklist and the request kind.
func (a *Allocator) spanOK(start, n int, smallAtomicOK bool) bool {
	if smallAtomicOK {
		return true
	}
	lo := a.blockBase(start)
	if n == 1 || !a.cfg.InteriorPointers {
		// Only the first page matters: "this is never a problem if
		// addresses that do not point to the first page of an object can
		// be considered invalid" (observation 7).
		if a.cfg.Blacklist.Contains(lo) {
			return false
		}
		return true
	}
	return !a.cfg.Blacklist.ContainsRange(lo, lo+mem.Addr(n*mem.PageBytes))
}

// acquireSpanLarge acquires a span for a large object; ignoreOffPage
// spans only need a blacklist-free first page regardless of the
// interior-pointer policy.
func (a *Allocator) acquireSpanLarge(nblocks int, desperate, ignoreOffPage bool) (int, bool) {
	if ignoreOffPage && !desperate {
		for si := range a.free {
			sp := a.free[si]
			if sp.n < nblocks {
				continue
			}
			for off := 0; off+nblocks <= sp.n; off++ {
				if a.cfg.Blacklist.Contains(a.blockBase(sp.start + off)) {
					a.stats.BlacklistSkips++
					continue
				}
				a.carve(si, off, nblocks)
				return sp.start + off, true
			}
		}
		return 0, false
	}
	return a.acquireSpan(nblocks, desperate)
}

// acquireSpan finds and removes a span of nblocks consecutive free
// blocks honouring the blacklist, returning its first block index.
func (a *Allocator) acquireSpan(nblocks int, smallAtomicOK bool) (int, bool) {
	for si := range a.free {
		sp := a.free[si]
		if sp.n < nblocks {
			continue
		}
		// Slide a window through the span looking for an acceptable
		// placement; blacklisted pages are skipped but remain free.
		for off := 0; off+nblocks <= sp.n; off++ {
			if !a.spanOK(sp.start+off, nblocks, smallAtomicOK) {
				a.stats.BlacklistSkips++
				continue
			}
			a.carve(si, off, nblocks)
			return sp.start + off, true
		}
	}
	return 0, false
}

// carve removes [off, off+n) from free span si, reinserting remainders.
func (a *Allocator) carve(si, off, n int) {
	sp := a.free[si]
	a.free = append(a.free[:si], a.free[si+1:]...)
	if off > 0 {
		a.insertSpan(span{sp.start, off})
	}
	if rem := sp.n - off - n; rem > 0 {
		a.insertSpan(span{sp.start + off + n, rem})
	}
	a.stats.BlocksFree -= n
	a.stats.BlocksDedicated += n
}

// insertSpan adds a span to the free structure per policy, without
// adjusting statistics.
func (a *Allocator) insertSpan(sp span) {
	if a.cfg.FreeBlocks == LIFO {
		a.free = append(a.free, sp)
		return
	}
	// Address ordered with coalescing. Adjacent block indices may
	// belong to different extents (the index space is dense even when
	// the address space is not), so never coalesce across extents.
	i := 0
	for i < len(a.free) && a.free[i].start < sp.start {
		i++
	}
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = sp
	sameExtent := func(x, y int) bool { return a.extentOfBlock(x) == a.extentOfBlock(y) }
	if i+1 < len(a.free) && a.free[i].start+a.free[i].n == a.free[i+1].start &&
		sameExtent(a.free[i].start, a.free[i+1].start) {
		a.free[i].n += a.free[i+1].n
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].start+a.free[i-1].n == a.free[i].start &&
		sameExtent(a.free[i-1].start, a.free[i].start) {
		a.free[i-1].n += a.free[i].n
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// releaseSpan returns blocks [start, start+n) to the free structure.
func (a *Allocator) releaseSpan(start, n int) {
	for j := 0; j < n; j++ {
		a.blocks[start+j] = blockDesc{state: blockFree}
	}
	a.insertSpan(span{start, n})
}

// Expand commits at least bytes more heap (rounded up to the expansion
// increment and page size), growing the newest extent or — under
// DiscontiguousGrowth — mapping a fresh extent at a non-adjacent
// address once the current reservation is spent. It returns
// ErrHeapExhausted when no growth is possible.
func (a *Allocator) Expand(bytes int) error {
	if bytes < a.cfg.ExpandIncrement {
		bytes = a.cfg.ExpandIncrement
	}
	bytes = mem.PageCount(bytes) * mem.PageBytes
	last := &a.extents[len(a.extents)-1]
	avail := last.seg.ReservedSize() - last.seg.Size()
	if avail <= 0 {
		if err := a.addExtent(); err != nil {
			return err
		}
		last = &a.extents[len(a.extents)-1]
		avail = last.seg.ReservedSize() - last.seg.Size()
	}
	if bytes > avail {
		bytes = avail
	}
	if err := last.seg.Grow(bytes); err != nil {
		return err
	}
	start := len(a.blocks)
	n := bytes / mem.PageBytes
	a.blocks = append(a.blocks, make([]blockDesc, n)...)
	for len(a.dirty)*64 < len(a.blocks) {
		a.dirty = append(a.dirty, 0)
	}
	a.releaseSpan(start, n)
	a.stats.HeapBytes += bytes
	a.stats.BlocksFree += n
	a.stats.Expansions++
	a.tracer.Emit(trace.EvHeapExpand, int64(bytes), int64(a.stats.HeapBytes), int64(a.stats.Expansions))
	return nil
}

// nextExtentBase computes where the next extent would start, in 64-bit
// arithmetic so a heap near the top of the address space cannot wrap.
func (a *Allocator) nextExtentBase() (mem.Addr, bool) {
	last := a.extents[len(a.extents)-1].seg
	base := uint64(last.Base()) + uint64(last.ReservedSize()) + uint64(a.cfg.ExtentGapBytes)
	base = (base + mem.PageBytes - 1) &^ (mem.PageBytes - 1)
	if base+uint64(a.cfg.ExtentReserveBytes) > 1<<32 {
		return 0, false
	}
	return mem.Addr(base), true
}

// addExtent maps a new heap extent past the previous one.
func (a *Allocator) addExtent() error {
	if !a.cfg.DiscontiguousGrowth {
		return ErrHeapExhausted
	}
	base, ok := a.nextExtentBase()
	if !ok {
		return ErrHeapExhausted
	}
	name := fmt.Sprintf("heap%d", len(a.extents))
	seg, err := a.space.MapNew(name, mem.KindHeap, base, 0, a.cfg.ExtentReserveBytes)
	if err != nil {
		return fmt.Errorf("alloc: mapping extent %s: %w", name, err)
	}
	seg.SetAtomicStore(a.cfg.AtomicWords)
	a.extents = append(a.extents, extent{seg: seg, startBlock: len(a.blocks)})
	a.hullHi = seg.ReservedLimit()
	return nil
}

// CanExpand reports whether the heap can still grow.
func (a *Allocator) CanExpand() bool {
	last := a.extents[len(a.extents)-1].seg
	if last.Size() < last.ReservedSize() {
		return true
	}
	if !a.cfg.DiscontiguousGrowth {
		return false
	}
	_, ok := a.nextExtentBase()
	return ok
}

// FindObject resolves a candidate pointer value to an object base
// address. interior selects the pointer-validity policy: when true, any
// address strictly inside an allocated object (any byte offset) is
// valid; when false only the exact base address is. ok is false for
// free slots, block-interior waste, unmapped candidates, and (in
// base-only mode) interior addresses.
//
// This is the paper's "pointer validity check"; the caller is
// responsible for the companion "heap proximity check" (InVicinity) and
// for blacklisting failures.
func (a *Allocator) FindObject(p mem.Addr, interior bool) (mem.Addr, bool) {
	var bi int
	if len(a.extents) == 1 {
		// Fast path: the candidate test runs for every root word, so
		// the common single-extent heap avoids the extent search.
		seg := a.extents[0].seg
		if !seg.Contains(p) {
			return 0, false
		}
		bi = int(p-seg.Base()) / mem.PageBytes
	} else {
		e := a.extentOfAddr(p)
		if e == nil {
			return 0, false
		}
		bi = e.startBlock + int(p-e.seg.Base())/mem.PageBytes
	}
	b := &a.blocks[bi]
	switch b.state {
	case blockFree:
		return 0, false
	case blockLargeCont:
		if !interior {
			return 0, false
		}
		bi -= int(b.spanLen)
		b = &a.blocks[bi]
		if b.ignoreOffPage {
			// The client promised to keep a first-page pointer; deep
			// interior candidates are invalid (observation 7).
			return 0, false
		}
		fallthrough
	case blockLargeHead:
		base := a.blockBase(bi)
		if p == base {
			return base, true
		}
		if !interior {
			return 0, false
		}
		if p < base+mem.Addr(int(b.objWords)*mem.WordBytes) {
			return base, true
		}
		return 0, false
	case blockSmall:
		words := int(b.objWords)
		bb := a.blockBase(bi)
		slot := int(p-bb) / (words * mem.WordBytes)
		if slot >= slotsPerBlock(words) {
			return 0, false // block-tail waste
		}
		if !bitGet(b.allocBits, slot) {
			return 0, false
		}
		base := bb + mem.Addr(slot*words*mem.WordBytes)
		if p != base && !interior {
			return 0, false
		}
		return base, true
	}
	return 0, false
}

// IsAllocated reports whether base is the base address of a currently
// allocated object. Experiments use it to measure retention after a
// collection. An object in a sweep-pending block whose mark bit is
// clear was classified dead by the last collection — only its
// reclamation is deferred — so it reports as not allocated, keeping
// retention measurements identical between lazy and eager sweeping.
func (a *Allocator) IsAllocated(base mem.Addr) bool {
	b, ok := a.FindObject(base, false)
	if !ok || b != base {
		return false
	}
	if a.blocks[a.blockIndex(base)].pendingSweep && !a.Marked(base) {
		return false
	}
	return true
}

// Mark sets the mark bit for the object with the given base address,
// returning true if it was not previously marked. The base must come
// from FindObject.
func (a *Allocator) Mark(base mem.Addr) bool {
	bi := a.blockIndex(base)
	b := &a.blocks[bi]
	switch b.state {
	case blockLargeHead:
		if b.markBits[0]&1 != 0 {
			return false
		}
		b.markBits[0] |= 1
		b.markedCount++
		return true
	case blockSmall:
		slot := int(base-a.blockBase(bi)) / (int(b.objWords) * mem.WordBytes)
		if bitGet(b.markBits, slot) {
			return false
		}
		bitSet(b.markBits, slot)
		b.markedCount++
		return true
	}
	panic(fmt.Sprintf("alloc: Mark(%#x) on non-object block", uint32(base)))
}

// atomicSetBit sets bit i of bits with a CAS loop, returning true if
// this call changed it from 0 to 1 (exactly one of any set of
// concurrent callers wins).
func atomicSetBit(bits []uint64, i int) bool {
	w := &bits[i>>6]
	m := uint64(1) << (uint(i) & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&m != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|m) {
			return true
		}
	}
}

// MarkAtomic is Mark with the bit set by compare-and-swap, safe for
// concurrent use by parallel mark workers: for any object exactly one
// concurrent caller observes true. The serial Mark path is kept
// non-atomic so MarkWorkers=1 pays nothing for the capability.
func (a *Allocator) MarkAtomic(base mem.Addr) bool {
	bi := a.blockIndex(base)
	b := &a.blocks[bi]
	switch b.state {
	case blockLargeHead:
		if atomicSetBit(b.markBits, 0) {
			atomic.AddInt32(&b.markedCount, 1)
			return true
		}
		return false
	case blockSmall:
		slot := int(base-a.blockBase(bi)) / (int(b.objWords) * mem.WordBytes)
		if atomicSetBit(b.markBits, slot) {
			// The CAS admits exactly one marker per object, so the add
			// runs once per mark transition and the summary equals the
			// bitmap's population count at the barrier.
			atomic.AddInt32(&b.markedCount, 1)
			return true
		}
		return false
	}
	panic(fmt.Sprintf("alloc: MarkAtomic(%#x) on non-object block", uint32(base)))
}

// Marked reports whether the object at base is marked.
func (a *Allocator) Marked(base mem.Addr) bool {
	bi := a.blockIndex(base)
	b := &a.blocks[bi]
	switch b.state {
	case blockLargeHead:
		return b.markBits[0]&1 != 0
	case blockSmall:
		slot := int(base-a.blockBase(bi)) / (int(b.objWords) * mem.WordBytes)
		return bitGet(b.markBits, slot)
	}
	return false
}

// ObjectSpan returns the size in words and atomicity of the object at
// base (which must be an object base address).
func (a *Allocator) ObjectSpan(base mem.Addr) (words int, atomic bool) {
	b := &a.blocks[a.blockIndex(base)]
	return int(b.objWords), b.atomic
}

// Stats returns a copy of the allocator statistics.
func (a *Allocator) Stats() Stats { return a.stats }

// SetTracer attaches r to receive heap-expansion, desperate-allocation
// and lazy sweep-drain events (nil detaches). Set it outside an active
// mark phase: the allocator reads it unsynchronised.
func (a *Allocator) SetTracer(r *trace.Recorder) { a.tracer = r }

// ResetSinceGC zeroes the allocation-since-collection counter; the
// collector calls it after each cycle.
func (a *Allocator) ResetSinceGC() { a.stats.BytesSinceGC = 0 }

// FreeSpans returns the current free spans (for tests and fragmentation
// measurements) as (startBlock, nBlocks) pairs in storage order.
func (a *Allocator) FreeSpans() [][2]int {
	out := make([][2]int, len(a.free))
	for i, sp := range a.free {
		out[i] = [2]int{sp.start, sp.n}
	}
	return out
}

// LargestFreeSpan returns the largest free span length in blocks.
func (a *Allocator) LargestFreeSpan() int {
	best := 0
	for _, sp := range a.free {
		if sp.n > best {
			best = sp.n
		}
	}
	return best
}

// BlockState is the inspection-facing classification of a block.
type BlockState int

// Block states, as reported by BlockInfo.
const (
	BlockFree BlockState = iota
	BlockSmall
	BlockLargeHead
	BlockLargeCont
)

func (s BlockState) String() string {
	switch s {
	case BlockSmall:
		return "small"
	case BlockLargeHead:
		return "large"
	case BlockLargeCont:
		return "cont"
	default:
		return "free"
	}
}

// BlockInfo describes one committed block for inspection tools
// (cmd/heapdump).
type BlockInfo struct {
	Index      int
	Base       mem.Addr
	State      BlockState
	ObjWords   int // small: per object; large head: whole object
	Atomic     bool
	LiveSlots  int // small only
	TotalSlots int // small only
	SpanLen    int // large head only
}

// BlockInfo returns the description of block i.
func (a *Allocator) BlockInfo(i int) BlockInfo {
	b := &a.blocks[i]
	info := BlockInfo{
		Index:    i,
		Base:     a.blockBase(i),
		ObjWords: int(b.objWords),
		Atomic:   b.atomic,
	}
	switch b.state {
	case blockSmall:
		info.State = BlockSmall
		info.LiveSlots = int(b.liveSlots)
		info.TotalSlots = slotsPerBlock(int(b.objWords))
	case blockLargeHead:
		info.State = BlockLargeHead
		info.SpanLen = int(b.spanLen)
	case blockLargeCont:
		info.State = BlockLargeCont
		info.SpanLen = int(b.spanLen)
	default:
		info.State = BlockFree
	}
	return info
}
