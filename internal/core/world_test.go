package core

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/machine"
	"repro/internal/mark"
	"repro/internal/mem"
)

func newWorld(t *testing.T, cfg Config) *World {
	t.Helper()
	w, err := NewWorld(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func withMachine(t *testing.T, w *World, mcfg machine.Config) *machine.Machine {
	t.Helper()
	if mcfg.StackTop == 0 {
		mcfg.StackTop = 0x80000000
	}
	if mcfg.StackBytes == 0 {
		mcfg.StackBytes = 256 * 1024
	}
	m, err := machine.New(w.Space, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	w.SetMutator(m)
	return m
}

func addData(t *testing.T, w *World, name string, base mem.Addr, bytes int) *mem.Segment {
	t.Helper()
	s, err := w.Space.MapNew(name, mem.KindData, base, bytes, bytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAllocateAndCollectBasic(t *testing.T) {
	w := newWorld(t, Config{})
	data := addData(t, w, "data", 0x2000, 4096)
	live, err := w.Allocate(2, false)
	if err != nil {
		t.Fatal(err)
	}
	dead, err := w.Allocate(2, false)
	if err != nil {
		t.Fatal(err)
	}
	data.Store(0x2000, mem.Word(live))
	st := w.Collect()
	if st.Sweep.ObjectsLive != 1 || st.Sweep.ObjectsFreed != 1 {
		t.Fatalf("sweep = %+v", st.Sweep)
	}
	if !w.Heap.IsAllocated(live) || w.Heap.IsAllocated(dead) {
		t.Fatal("retention wrong")
	}
	if w.Collections() != 1 {
		t.Fatalf("Collections = %d", w.Collections())
	}
}

func TestRegistersAreRoots(t *testing.T) {
	w := newWorld(t, Config{})
	m := withMachine(t, w, machine.Config{RegisterWindows: true})
	p, _ := w.Allocate(2, false)
	m.SetGlobal(1, mem.Word(p))
	w.Collect()
	if !w.Heap.IsAllocated(p) {
		t.Fatal("register-referenced object collected")
	}
	m.SetGlobal(1, 0)
	w.Collect()
	if w.Heap.IsAllocated(p) {
		t.Fatal("unreferenced object retained")
	}
}

func TestLiveStackIsRoot(t *testing.T) {
	w := newWorld(t, Config{})
	m := withMachine(t, w, machine.Config{})
	p, _ := w.Allocate(2, false)
	err := m.WithFrame(2, func(f *machine.Frame) error {
		f.Store(0, mem.Word(p))
		w.Collect()
		if !w.Heap.IsAllocated(p) {
			t.Fatal("stack-referenced object collected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Frame popped; without clearing the value is dead-stack garbage,
	// which is NOT scanned (it is below SP).
	w.Collect()
	if w.Heap.IsAllocated(p) {
		t.Fatal("dead-stack value retained object")
	}
}

func TestStaleStackValueRetainsThroughNewFrame(t *testing.T) {
	// The §3.1 pathology end-to-end: pointer in popped frame, new
	// oversized frame grows over it, collection sees it.
	w := newWorld(t, Config{})
	m := withMachine(t, w, machine.Config{FrameSlopWords: 8})
	p, _ := w.Allocate(2, false)
	m.WithFrame(1, func(f *machine.Frame) error {
		f.Store(0, mem.Word(p))
		return nil
	})
	// Regrow without writing anything.
	m.WithFrame(1, func(f *machine.Frame) error {
		w.Collect()
		return nil
	})
	if !w.Heap.IsAllocated(p) {
		t.Fatal("stale stack pointer did not retain object (slop should expose it)")
	}
}

func TestAutomaticCollectionTrigger(t *testing.T) {
	w := newWorld(t, Config{
		InitialHeapBytes: 64 * 1024,
		ReserveHeapBytes: 1 << 20,
		GCDivisor:        2,
	})
	// Allocate and drop many objects; automatic GCs must keep the heap
	// bounded well below the total allocation volume.
	for i := 0; i < 20000; i++ {
		if _, err := w.Allocate(4, false); err != nil {
			t.Fatal(err)
		}
	}
	if w.Collections() == 0 {
		t.Fatal("no automatic collections happened")
	}
	if hb := w.Heap.Stats().HeapBytes; hb > 512*1024 {
		t.Fatalf("heap grew to %d despite collectable garbage", hb)
	}
}

func TestNoAutomaticCollectionWhenDisabled(t *testing.T) {
	w := newWorld(t, Config{
		InitialHeapBytes: 64 * 1024,
		ReserveHeapBytes: 8 << 20,
		GCDivisor:        -1, // negative disables; 0 means default
	})
	// 20000 4-word objects of garbage in a 64 KiB heap: the trigger
	// path must not fire, but the allocation-failure path still
	// collects when the heap is actually full, so the heap stays small
	// and collections are roughly one per heap-fill.
	for i := 0; i < 20000; i++ {
		if _, err := w.Allocate(4, false); err != nil {
			t.Fatal(err)
		}
	}
	if w.Collections() == 0 {
		t.Fatal("failure-path collections should still happen")
	}
	// With the divisor trigger (GCDivisor=2) collections fire twice as
	// often (at half-heap allocation); compare.
	w2 := newWorld(t, Config{
		InitialHeapBytes: 64 * 1024,
		ReserveHeapBytes: 8 << 20,
		GCDivisor:        2,
	})
	for i := 0; i < 20000; i++ {
		if _, err := w2.Allocate(4, false); err != nil {
			t.Fatal(err)
		}
	}
	if w2.Collections() <= w.Collections() {
		t.Fatalf("trigger path did not collect more often: %d vs %d",
			w2.Collections(), w.Collections())
	}
}

func TestAllocateExpandsWhenLiveDataGrows(t *testing.T) {
	w := newWorld(t, Config{
		InitialHeapBytes: 64 * 1024,
		ReserveHeapBytes: 4 << 20,
	})
	data := addData(t, w, "data", 0x2000, 64*1024)
	// Keep everything alive via the root segment.
	for i := 0; i < 10000; i++ {
		p, err := w.Allocate(4, false)
		if err != nil {
			t.Fatal(err)
		}
		data.Store(0x2000+mem.Addr(4*(i%16384)), mem.Word(p))
	}
	if w.Heap.Stats().BlocksDedicated == 0 {
		t.Fatal("nothing allocated?")
	}
	if w.Heap.Stats().HeapBytes <= 64*1024 {
		t.Fatal("heap failed to expand under live pressure")
	}
}

func TestHeapExhaustion(t *testing.T) {
	w := newWorld(t, Config{
		InitialHeapBytes: 16 * 1024,
		ReserveHeapBytes: 32 * 1024,
		ExpandIncrement:  4096,
	})
	data := addData(t, w, "data", 0x2000, 16*1024)
	var err error
	for i := 0; i < 10000; i++ {
		var p mem.Addr
		p, err = w.Allocate(4, false)
		if err != nil {
			break
		}
		data.Store(0x2000+mem.Addr(4*i), mem.Word(p))
	}
	if err == nil {
		t.Fatal("exhaustion never reported")
	}
}

func TestBlacklistPreventsFutureRetention(t *testing.T) {
	// The paper's headline mechanism: a static false reference is
	// blacklisted by an early collection, so later allocation avoids
	// that page and the false reference pins nothing.
	mk := func(mode BlacklistMode) (retained int) {
		w, err := NewWorld(nil, Config{
			Blacklisting:     mode,
			InitialHeapBytes: 256 * 1024,
			ReserveHeapBytes: 1 << 20,
			GCDivisor:        -1,
		})
		if err != nil {
			panic(err)
		}
		data, err := w.Space.MapNew("data", mem.KindData, 0x2000, 4096, 4096)
		if err != nil {
			panic(err)
		}
		// A false reference into the middle of the initial heap.
		falseRef := w.Heap.Base() + 0x10000 + 0x10
		data.Store(0x2000, mem.Word(falseRef))
		// Startup collection (before any allocation), per the paper.
		w.Collect()
		// Allocate dead lists; count objects surviving a final GC.
		var objs []mem.Addr
		for i := 0; i < 20000; i++ {
			p, err := w.Allocate(1, false)
			if err != nil {
				panic(err)
			}
			objs = append(objs, p)
		}
		w.Collect()
		for _, p := range objs {
			if w.Heap.IsAllocated(p) {
				retained++
			}
		}
		return retained
	}
	without := mk(BlacklistOff)
	with := mk(BlacklistDense)
	if without == 0 {
		t.Fatal("false reference retained nothing even without blacklisting")
	}
	if with != 0 {
		t.Fatalf("blacklisting left %d objects retained", with)
	}
}

func TestHashedBlacklistWorksToo(t *testing.T) {
	w := newWorld(t, Config{Blacklisting: BlacklistHashed, GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	falseRef := w.Heap.Base() + 0x4000
	data.Store(0x2000, mem.Word(falseRef))
	w.Collect()
	if !w.Blacklist.Contains(falseRef) {
		t.Fatal("hashed blacklist missed the false reference")
	}
}

func TestMarkOnly(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	p, _ := w.Allocate(2, false)
	w.Allocate(2, false) // dead
	data.Store(0x2000, mem.Word(p))
	objs, bytes := w.MarkOnly()
	if objs != 1 || bytes != 8 {
		t.Fatalf("MarkOnly = %d, %d", objs, bytes)
	}
	// MarkOnly must not free or leave marks.
	objs2, _ := w.MarkOnly()
	if objs2 != 1 {
		t.Fatalf("second MarkOnly = %d", objs2)
	}
	st := w.Collect()
	if st.Sweep.ObjectsFreed != 1 {
		t.Fatalf("sweep after MarkOnly = %+v", st.Sweep)
	}
}

func TestFinalization(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	kept, _ := w.Allocate(2, false)
	dropped, _ := w.Allocate(2, false)
	data.Store(0x2000, mem.Word(kept))
	w.RegisterFinalizable(kept)
	w.RegisterFinalizable(dropped)
	w.Collect()
	got := w.DrainReclaimed()
	if len(got) != 1 || got[0] != dropped {
		t.Fatalf("reclaimed = %v", got)
	}
	if len(w.DrainReclaimed()) != 0 {
		t.Fatal("drain not idempotent")
	}
	// The kept object stays registered and is reported when dropped.
	data.Store(0x2000, 0)
	w.Collect()
	got = w.DrainReclaimed()
	if len(got) != 1 || got[0] != kept {
		t.Fatalf("second reclaimed = %v", got)
	}
}

func TestAllocatorResidue(t *testing.T) {
	// With residue on and no clearing, the allocator's own frame leaves
	// the last allocation's address on the dead stack; if a later frame
	// grows over it the object is retained.
	run := func(selfClean bool) bool {
		w, err := NewWorld(nil, Config{
			GCDivisor:          -1,
			AllocatorResidue:   true,
			AllocatorSelfClean: selfClean,
		})
		if err != nil {
			panic(err)
		}
		m, err := machine.New(w.Space, machine.Config{
			StackTop: 0x80000000, StackBytes: 64 * 1024, FrameSlopWords: 8,
		})
		if err != nil {
			panic(err)
		}
		w.SetMutator(m)
		p, err := w.Allocate(2, false)
		if err != nil {
			panic(err)
		}
		// Grow the stack over the residue without writing.
		var retained bool
		m.WithFrame(4, func(*machine.Frame) error {
			w.Collect()
			retained = w.Heap.IsAllocated(p)
			return nil
		})
		return retained
	}
	if !run(false) {
		t.Fatal("dirty allocator residue did not retain the object")
	}
	if run(true) {
		t.Fatal("self-cleaning allocator still retained the object")
	}
}

func TestInteriorPointerConfigPlumbs(t *testing.T) {
	w := newWorld(t, Config{Pointer: mark.PointerInterior, GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	p, _ := w.Allocate(16, false)
	data.Store(0x2000, mem.Word(p+20)) // interior
	w.Collect()
	if !w.Heap.IsAllocated(p) {
		t.Fatal("interior pointer did not retain under PointerInterior")
	}

	w2 := newWorld(t, Config{Pointer: mark.PointerBase, GCDivisor: -1})
	data2 := addData(t, w2, "data", 0x2000, 4096)
	q, _ := w2.Allocate(16, false)
	data2.Store(0x2000, mem.Word(q+20))
	w2.Collect()
	if w2.Heap.IsAllocated(q) {
		t.Fatal("interior pointer retained under PointerBase")
	}
}

func TestBlacklistExpiry(t *testing.T) {
	w := newWorld(t, Config{Blacklisting: BlacklistDense, ExpireAge: 2, GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	falseRef := w.Heap.Base() + 0x3000
	data.Store(0x2000, mem.Word(falseRef))
	w.Collect()
	if !w.Blacklist.Contains(falseRef) {
		t.Fatal("not blacklisted")
	}
	// Remove the false reference; after enough cycles the entry expires.
	data.Store(0x2000, 0)
	w.Collect()
	w.Collect()
	w.Collect()
	if w.Blacklist.Contains(falseRef) {
		t.Fatal("stale blacklist entry did not expire")
	}
}

func TestCollectionStatsPopulated(t *testing.T) {
	w := newWorld(t, Config{Blacklisting: BlacklistDense, GCDivisor: -1})
	addData(t, w, "data", 0x2000, 4096)
	w.Allocate(2, false)
	st := w.Collect()
	if st.Mark.WordsScanned == 0 {
		t.Error("no root words scanned")
	}
	if st.HeapBytes == 0 {
		t.Error("heap bytes missing")
	}
	if st != w.LastCollection() {
		t.Error("LastCollection mismatch")
	}
}

func TestLoadStoreConvenience(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	p, _ := w.Allocate(2, false)
	if err := w.Store(p, 99); err != nil {
		t.Fatal(err)
	}
	v, err := w.Load(p)
	if err != nil || v != 99 {
		t.Fatalf("Load = %v, %v", v, err)
	}
}

func TestLargeAllocationThroughWorld(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1, InitialHeapBytes: 64 * 1024})
	p, err := w.Allocate(alloc.MaxSmallWords*4, false)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Heap.IsAllocated(p) {
		t.Fatal("large object not allocated")
	}
	w.Collect()
	if w.Heap.IsAllocated(p) {
		t.Fatal("unreferenced large object survived")
	}
}

func TestDesperateFallback(t *testing.T) {
	run := func(fallback bool) error {
		w := newWorld(t, Config{
			Blacklisting:      BlacklistDense,
			InitialHeapBytes:  8 * mem.PageBytes,
			ReserveHeapBytes:  8 * mem.PageBytes,
			GCDivisor:         -1,
			DesperateFallback: fallback,
		})
		// Blacklist the whole heap via false references.
		data := addData(t, w, "data", 0x2000, 8*mem.PageBytes)
		for i := 0; i < 8*mem.PageWords; i++ {
			data.Store(0x2000+mem.Addr(4*i), mem.Word(uint32(w.Heap.Base())+uint32(4*i)+2))
		}
		w.Collect()
		data.SetRoot(false) // stop retaining what we allocate next
		_, err := w.Allocate(2, false)
		return err
	}
	if err := run(false); err == nil {
		t.Fatal("fully blacklisted heap should exhaust without fallback")
	}
	if err := run(true); err != nil {
		t.Fatalf("desperate fallback failed: %v", err)
	}
}

func TestGenerationalStickyMarks(t *testing.T) {
	w := newWorld(t, Config{Generational: true, GCDivisor: -1, MinorDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	old, _ := w.Allocate(2, false)
	data.Store(0x2000, mem.Word(old))
	w.Collect() // full: old is now marked sticky
	data.Store(0x2000, 0)
	// A minor collection does not reclaim old objects, even unreachable
	// ones: their sticky mark bit protects them until the next full GC.
	st := w.CollectMinor()
	if !st.Minor {
		t.Fatal("CollectMinor did not run a minor cycle")
	}
	if !w.Heap.IsAllocated(old) {
		t.Fatal("minor collection freed an old object")
	}
	w.Collect()
	if w.Heap.IsAllocated(old) {
		t.Fatal("full collection failed to free unreachable old object")
	}
}

func TestGenerationalMinorFreesYoungGarbage(t *testing.T) {
	w := newWorld(t, Config{Generational: true, GCDivisor: -1, MinorDivisor: -1})
	w.Collect() // establish a full cycle
	young, _ := w.Allocate(2, false)
	st := w.CollectMinor()
	if w.Heap.IsAllocated(young) {
		t.Fatal("minor collection failed to free young garbage")
	}
	if st.Sweep.ObjectsFreed == 0 {
		t.Fatal("no objects freed")
	}
}

func TestGenerationalWriteBarrier(t *testing.T) {
	w := newWorld(t, Config{Generational: true, GCDivisor: -1, MinorDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	old, _ := w.Allocate(2, false)
	data.Store(0x2000, mem.Word(old))
	w.Collect() // old generation established

	// A young object reachable ONLY through the old object.
	young, _ := w.Allocate(2, false)
	if err := w.Store(old, mem.Word(young)); err != nil { // barrier fires
		t.Fatal(err)
	}
	st := w.CollectMinor()
	if !w.Heap.IsAllocated(young) {
		t.Fatal("write barrier missed an old-to-young pointer")
	}
	if st.DirtyBlocks == 0 {
		t.Fatal("no dirty blocks recorded")
	}
	if st.Promoted == 0 {
		t.Fatal("young survivor not counted as promoted")
	}
	// The promoted object is now old: a further minor keeps it without
	// rescanning roots for it.
	w.CollectMinor()
	if !w.Heap.IsAllocated(young) {
		t.Fatal("promoted object lost by later minor collection")
	}
}

func TestGenerationalBarrierIsLoadBearing(t *testing.T) {
	// Writing through the raw address space (bypassing World.Store)
	// skips the barrier, and the minor collection then misses the
	// old-to-young pointer. This documents the barrier contract.
	w := newWorld(t, Config{Generational: true, GCDivisor: -1, MinorDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	old, _ := w.Allocate(2, false)
	data.Store(0x2000, mem.Word(old))
	w.Collect()
	young, _ := w.Allocate(2, false)
	if err := w.Space.Store(old, mem.Word(young)); err != nil { // no barrier
		t.Fatal(err)
	}
	w.CollectMinor()
	if w.Heap.IsAllocated(young) {
		t.Fatal("young object survived without a barrier record (test premise broken)")
	}
	// A full collection repairs the world view (old is still rooted and
	// now points at a freed slot, which the full mark simply re-treats
	// as invalid).
	w.Collect()
}

func TestGenerationalAutoTrigger(t *testing.T) {
	w := newWorld(t, Config{
		Generational:     true,
		InitialHeapBytes: 64 * 1024,
		ReserveHeapBytes: 8 << 20,
		MinorDivisor:     4,
		FullEvery:        4,
	})
	minors, fulls := 0, 0
	for i := 0; i < 30000; i++ {
		if _, err := w.Allocate(4, false); err != nil {
			t.Fatal(err)
		}
		if w.Collections() > minors+fulls {
			if w.LastCollection().Minor {
				minors++
			} else {
				fulls++
			}
		}
	}
	if minors == 0 {
		t.Fatal("no minor collections triggered")
	}
	if fulls == 0 {
		t.Fatal("no periodic full collections")
	}
	if minors < fulls {
		t.Fatalf("expected minors (%d) to outnumber fulls (%d)", minors, fulls)
	}
}

func TestCollectMinorWithoutGenerationalFallsBack(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	p, _ := w.Allocate(2, false)
	st := w.CollectMinor()
	if st.Minor {
		t.Fatal("non-generational world ran a minor cycle")
	}
	if w.Heap.IsAllocated(p) {
		t.Fatal("fallback full collection did not sweep")
	}
}

func TestIncrementalExclusiveWithGenerational(t *testing.T) {
	if _, err := NewWorld(nil, Config{Generational: true, Incremental: true}); err == nil {
		t.Fatal("generational+incremental accepted")
	}
}

func TestIncrementalCycleSoundUnderMutation(t *testing.T) {
	w := newWorld(t, Config{Incremental: true, GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	// A chain a->b->c rooted at a; plus d rooted directly.
	mkObj := func() mem.Addr {
		p, err := w.Allocate(2, false)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b, c, d := mkObj(), mkObj(), mkObj(), mkObj()
	w.Store(a, mem.Word(b))
	w.Store(b, mem.Word(c))
	data.Store(0x2000, mem.Word(a))
	data.Store(0x2004, mem.Word(d))

	if err := w.StartIncrementalCycle(); err != nil {
		t.Fatal(err)
	}
	// Mutate mid-cycle: move c so it is reachable only through d, and
	// allocate a new object e linked from c.
	w.Store(b, 0)
	w.Store(d, mem.Word(c)) // write barrier dirties d's page
	e := mkObj()
	w.Store(c, mem.Word(e))

	for !w.IncrementalStep(1) {
	}
	st := w.FinishIncrementalCycle()
	if !st.Incremental {
		t.Fatal("stats not marked incremental")
	}
	for _, obj := range []mem.Addr{a, b, c, d, e} {
		if !w.Heap.IsAllocated(obj) {
			t.Fatalf("live object %#x lost by incremental cycle", uint32(obj))
		}
	}
	// Drop everything; a following cycle reclaims it all.
	data.Store(0x2000, 0)
	data.Store(0x2004, 0)
	w.StartIncrementalCycle()
	w.FinishIncrementalCycle()
	for _, obj := range []mem.Addr{a, b, c, d, e} {
		if w.Heap.IsAllocated(obj) {
			t.Fatalf("dead object %#x survived", uint32(obj))
		}
	}
}

func TestIncrementalAutoTrigger(t *testing.T) {
	w := newWorld(t, Config{
		Incremental:      true,
		InitialHeapBytes: 128 * 1024,
		ReserveHeapBytes: 8 << 20,
		GCDivisor:        2,
		MarkQuantum:      16,
	})
	data := addData(t, w, "data", 0x2000, 64*1024)
	// Keep a rotating window of live objects so cycles have real work.
	window := make([]mem.Addr, 512)
	for i := 0; i < 50000; i++ {
		p, err := w.Allocate(4, false)
		if err != nil {
			t.Fatal(err)
		}
		window[i%len(window)] = p
		data.Store(0x2000+mem.Addr(4*(i%len(window))), mem.Word(p))
	}
	if w.Collections() == 0 {
		t.Fatal("no incremental collections completed")
	}
	if !w.LastCollection().Incremental {
		t.Fatal("collections were not incremental")
	}
	if w.LastCollection().Steps == 0 {
		t.Fatal("no bounded steps recorded")
	}
	// The window must have survived every cycle.
	for i, p := range window {
		if p != 0 && !w.Heap.IsAllocated(p) {
			t.Fatalf("window object %d lost", i)
		}
	}
}

func TestFullCollectSupersedesIncremental(t *testing.T) {
	w := newWorld(t, Config{Incremental: true, GCDivisor: -1})
	p, _ := w.Allocate(2, false)
	w.StartIncrementalCycle()
	st := w.Collect() // must finish the in-flight cycle, not restart
	if !st.Incremental {
		t.Fatal("superseding collect did not complete the incremental cycle")
	}
	if w.IncrementalActive() {
		t.Fatal("cycle still active")
	}
	if w.Heap.IsAllocated(p) {
		t.Fatal("garbage survived")
	}
}

func TestIncrementalStepOutsideCycle(t *testing.T) {
	w := newWorld(t, Config{Incremental: true, GCDivisor: -1})
	if !w.IncrementalStep(8) {
		t.Fatal("step outside a cycle should report done")
	}
	if err := w.StartIncrementalCycle(); err != nil {
		t.Fatal(err)
	}
	if err := w.StartIncrementalCycle(); err != nil {
		t.Fatal("restarting an active cycle should be a no-op, not an error")
	}
	w.FinishIncrementalCycle()
}

func TestStartIncrementalOutsideMode(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	if err := w.StartIncrementalCycle(); err == nil {
		t.Fatal("incremental cycle started outside incremental mode")
	}
}

func TestAllocateTypedThroughWorld(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	id, err := w.RegisterLayout([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	node, err := w.AllocateTyped(id)
	if err != nil {
		t.Fatal(err)
	}
	pointee, _ := w.Allocate(2, false)
	hidden, _ := w.Allocate(2, false)
	w.Store(node, mem.Word(pointee))
	w.Store(node+4, mem.Word(hidden)) // data field
	data.Store(0x2000, mem.Word(node))
	w.Collect()
	if !w.Heap.IsAllocated(node) || !w.Heap.IsAllocated(pointee) {
		t.Fatal("typed object or pointee lost")
	}
	if w.Heap.IsAllocated(hidden) {
		t.Fatal("data field retained an object despite exact layout")
	}
	if _, err := w.AllocateTyped(alloc.DescID(99)); err == nil {
		t.Fatal("unknown layout accepted")
	}
}

func TestDiscontiguousWorldRequiresHashedBlacklist(t *testing.T) {
	if _, err := NewWorld(nil, Config{DiscontiguousGrowth: true, Blacklisting: BlacklistDense}); err == nil {
		t.Fatal("discontinuous heap with dense blacklist accepted")
	}
	if _, err := NewWorld(nil, Config{DiscontiguousGrowth: true, Blacklisting: BlacklistHashed}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscontiguousWorldEndToEnd(t *testing.T) {
	// The paper's second collector: discontinuous heap, hashed
	// blacklist. Fill past the first reservation, keep a rotating live
	// set, verify collection and blacklisting still work everywhere.
	w := newWorld(t, Config{
		InitialHeapBytes:    64 * 1024,
		ReserveHeapBytes:    64 * 1024,
		ExpandIncrement:     16 * 1024,
		DiscontiguousGrowth: true,
		Blacklisting:        BlacklistHashed,
		GCDivisor:           -1, // exercise the expand path, not collection
	})
	data := addData(t, w, "data", 0x2000, 64*1024)
	// 15000 rooted 4-word objects = 240 KiB live, far beyond the 64 KiB
	// first reservation: growth is forced, and with it new extents.
	var objs []mem.Addr
	for i := 0; i < 15000; i++ {
		p, err := w.Allocate(4, false)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, p)
		data.Store(0x2000+mem.Addr(4*i), mem.Word(p))
	}
	if w.Heap.Extents() < 2 {
		t.Fatalf("heap stayed contiguous: %d extents", w.Heap.Extents())
	}
	// A false reference into the SECOND extent's vicinity gets hash-
	// blacklisted.
	falseRef := w.Heap.Limit() - 2 // committed, near the top extent
	_, ok := w.Heap.FindObject(falseRef, false)
	_ = ok
	vic := w.Heap.Limit() + 0x100 // uncommitted, in the top reservation
	if !w.Heap.InVicinity(vic) {
		t.Fatal("top extent reservation not in vicinity")
	}
	data.Store(0x2000+4*15000, mem.Word(vic))
	w.Collect()
	if !w.Blacklist.Contains(vic) {
		t.Fatal("hashed blacklist missed a second-extent vicinity reference")
	}
	// Every rooted object survives, wherever its extent.
	for i, p := range objs {
		if !w.Heap.IsAllocated(p) {
			t.Fatalf("rooted object %d lost", i)
		}
	}
	// Dropping the roots frees across all extents.
	for i := 0; i < 15000; i++ {
		data.Store(0x2000+mem.Addr(4*i), 0)
	}
	w.Collect()
	if live := w.Heap.Stats().ObjectsLive; live != 0 {
		t.Fatalf("%d objects survived after dropping all roots", live)
	}
}
