package repro

import (
	"repro/internal/alloc"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// DescID identifies a registered typed-object layout.
type DescID = alloc.DescID

// ConservatismRow is one heap-scanning regime's result (E15).
type ConservatismRow struct {
	Regime        string
	DeadRetained  uint64 // garbage pinned by the live structure's data words
	FieldsScanned uint64 // heap words examined during the mark
	LiveObjects   uint64
}

// ConservatismOptions configures the experiment.
type ConservatismOptions struct {
	Nodes     int // live list nodes (default 30000)
	DeadCells int // dead objects exposed (default 30000)
	Seed      uint64
}

// DegreesOfConservatism measures the spectrum the paper's introduction
// describes: implementations "vary greatly in their degree of
// conservativism, i.e. in how much information about data structure
// layout they maintain. Some maintain complete information on the
// location of pointers in the heap, and only scan the stack
// conservatively. Others also treat the heap conservatively."
//
// A live linked structure whose nodes carry a pointer and a random
// integer payload shares the heap with a large dead structure. Under
// fully conservative heap scanning the payloads act as false
// references into the dead structure; with registered layout
// descriptors (typed allocation) the payload words are never examined.
func DegreesOfConservatism(opt ConservatismOptions) ([]ConservatismRow, *stats.Table, error) {
	if opt.Nodes == 0 {
		opt.Nodes = 30000
	}
	if opt.DeadCells == 0 {
		opt.DeadCells = 30000
	}
	var rows []ConservatismRow
	for _, typed := range []bool{false, true} {
		row, err := conservatismRun(opt, typed)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, *row)
	}
	tab := stats.NewTable("Introduction: degrees of conservativism (heap scanning)",
		"Heap regime", "Dead objects retained", "Heap words scanned")
	for _, r := range rows {
		tab.AddF(r.Regime, r.DeadRetained, r.FieldsScanned)
	}
	return rows, tab, nil
}

func conservatismRun(opt ConservatismOptions, typed bool) (*ConservatismRow, error) {
	heapBytes := (opt.Nodes*3+opt.DeadCells)*2*WordBytes + (2 << 20)
	w, err := NewWorld(Config{
		InitialHeapBytes: heapBytes,
		ReserveHeapBytes: 2 * heapBytes,
		Pointer:          PointerInterior,
		GCDivisor:        -1,
	})
	if err != nil {
		return nil, err
	}
	root, err := w.Space.MapNew("roots", KindData, 0x2000, 4096, 4096)
	if err != nil {
		return nil, err
	}
	rng := simrand.New(opt.Seed)

	// The dead structure, exposed first so its addresses are in range
	// of the live payloads.
	var dead []Addr
	for i := 0; i < opt.DeadCells; i++ {
		cell, err := w.Allocate(2, false)
		if err != nil {
			return nil, err
		}
		dead = append(dead, cell)
	}

	// The live structure: node = (next pointer, integer payload drawn
	// from a range that overlaps the heap).
	var layout DescID
	if typed {
		layout, err = w.RegisterLayout([]bool{true, false})
		if err != nil {
			return nil, err
		}
	}
	heapLo, heapHi := uint32(w.Heap.Base()), uint32(w.Heap.Limit())
	var head Addr
	for i := 0; i < opt.Nodes; i++ {
		var node Addr
		if typed {
			node, err = w.AllocateTyped(layout)
		} else {
			node, err = w.Allocate(2, false)
		}
		if err != nil {
			return nil, err
		}
		if err := w.Store(node, Word(head)); err != nil {
			return nil, err
		}
		// The payload: "seemingly random integer values" that often
		// land heap-shaped, like sizes, hashes, packed flags.
		payload := rng.Uint32()
		if payload%2 == 0 {
			payload = heapLo + payload%(heapHi-heapLo)
		}
		if err := w.Store(node+4, Word(payload)); err != nil {
			return nil, err
		}
		head = node
	}
	if err := root.Store(0x2000, Word(head)); err != nil {
		return nil, err
	}

	st := w.Collect()
	var retained uint64
	for _, cell := range dead {
		if w.Heap.IsAllocated(cell) {
			retained++
		}
	}
	regime := "conservative heap"
	if typed {
		regime = "typed heap (exact layouts)"
	}
	return &ConservatismRow{
		Regime:        regime,
		DeadRetained:  retained,
		FieldsScanned: st.Mark.FieldsScanned,
		LiveObjects:   st.Sweep.ObjectsLive,
	}, nil
}
