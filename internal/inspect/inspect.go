// Package inspect renders human-readable views of a collected world:
// a block-by-block heap map and a statistics summary. It backs the
// cmd/heapdump tool and is handy when debugging retention experiments —
// the textual equivalent of the paper's "quick examination of the
// blacklist" (observation 7).
package inspect

import (
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/blacklist"
	"repro/internal/core"
	"repro/internal/mem"
)

// Map legend:
//
//	.   free block
//	!   free block on a blacklisted page
//	a-z small-object block (a = 1-word class, later letters = larger),
//	    uppercase when the block is pointer-free (atomic)
//	#   large-object head block
//	=   large-object continuation block
//	*   dedicated block on a blacklisted page (desperate allocation)
const legend = ".  free   !  blacklisted free   a-z  small (A-Z atomic)   #  large   =  cont   *  dedicated+blacklisted"

// classLetter maps an object size in words to a map letter.
func classLetter(words int, atomic bool) byte {
	c, _ := alloc.ClassFor(words)
	l := byte('a' + min(c, 25))
	if atomic {
		l = l - 'a' + 'A'
	}
	return l
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// HeapMap renders one character per committed block, width blocks per
// line, each line prefixed with its starting address.
func HeapMap(heap *alloc.Allocator, bl blacklist.List, width int) string {
	if width <= 0 {
		width = 64
	}
	var sb strings.Builder
	n := heap.NumBlocks()
	for i := 0; i < n; i++ {
		info := heap.BlockInfo(i)
		if i%width == 0 {
			if i > 0 {
				sb.WriteByte('\n')
			}
			// The row prefix is the first block's own address: correct
			// even when the heap is discontinuous and block indices jump
			// between extents.
			fmt.Fprintf(&sb, "%#08x ", uint32(info.Base))
		}
		listed := bl.Contains(info.Base)
		switch info.State {
		case alloc.BlockFree:
			if listed {
				sb.WriteByte('!')
			} else {
				sb.WriteByte('.')
			}
		case alloc.BlockSmall:
			if listed {
				sb.WriteByte('*')
			} else {
				sb.WriteByte(classLetter(info.ObjWords, info.Atomic))
			}
		case alloc.BlockLargeHead:
			sb.WriteByte('#')
		case alloc.BlockLargeCont:
			sb.WriteByte('=')
		}
	}
	sb.WriteByte('\n')
	sb.WriteString(legend)
	sb.WriteByte('\n')
	return sb.String()
}

// Summary renders the world's allocator, blacklist and collection
// statistics as text.
func Summary(w *core.World) string {
	st := w.Heap.Stats()
	bl := w.Blacklist.Stats()
	last := w.LastCollection()
	var sb strings.Builder
	fmt.Fprintf(&sb, "heap:        %d KiB committed at %#08x (%d blocks: %d dedicated, %d free)\n",
		st.HeapBytes/1024, uint32(w.Heap.Base()), w.Heap.NumBlocks(), st.BlocksDedicated, st.BlocksFree)
	fmt.Fprintf(&sb, "live:        %d objects, %d KiB (after last sweep)\n",
		st.ObjectsLive, st.BytesLive/1024)
	fmt.Fprintf(&sb, "allocated:   %d objects, %d KiB lifetime; %d expansions; %d desperate\n",
		st.ObjectsAllocated, st.BytesAllocated/1024, st.Expansions, st.DesperateAllocs)
	fmt.Fprintf(&sb, "collections: %d (last freed %d objects, marked %d, scanned %d root words)\n",
		w.Collections(), last.Sweep.ObjectsFreed, last.Mark.ObjectsMarked, last.Mark.WordsScanned)
	fmt.Fprintf(&sb, "blacklist:   %d pages listed; %d adds, %d hits, %d expired; %d placement skips\n",
		w.Blacklist.Len(), bl.Adds, bl.Hits, bl.Expired, st.BlacklistSkips)
	return sb.String()
}

// BlacklistedPages returns the blacklisted page addresses of a dense
// blacklist, or nil for other kinds.
func BlacklistedPages(bl blacklist.List) []mem.Addr {
	if d, ok := bl.(*blacklist.Dense); ok {
		return d.Granules()
	}
	return nil
}

// TraceLine renders one collection in the style of the Go runtime's
// gctrace lines, for SetCollectionHook logging:
//
//	gc 3: full 1.2ms: 5000 live (40 KiB), 120 freed, heap 1024 KiB
//	gc 4: minor 0.1ms: 5100 live, 80 freed, 3 dirty blocks, 12 promoted
func TraceLine(n int, st core.CollectionStats) string {
	kind := "full"
	switch {
	case st.Minor:
		kind = "minor"
	case st.Incremental:
		kind = fmt.Sprintf("incremental(%d steps)", st.Steps)
	}
	line := fmt.Sprintf("gc %d: %s %.2fms: %d live (%d KiB), %d freed, heap %d KiB",
		n, kind, float64(st.Duration.Microseconds())/1000,
		st.Sweep.ObjectsLive, st.Sweep.BytesLive/1024,
		st.Sweep.ObjectsFreed, st.HeapBytes/1024)
	if st.Minor {
		line += fmt.Sprintf(", %d dirty blocks, %d promoted", st.DirtyBlocks, st.Promoted)
	}
	return line
}
