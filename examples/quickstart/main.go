// Quickstart: build a collected world, allocate objects, root them in
// static data and on the simulated stack, and watch the collector
// reclaim exactly what becomes unreachable — including the paper's
// headline behaviour, where a false reference from static data pins a
// dead object unless page blacklisting is enabled.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A world is one simulated 32-bit process image: a heap (here 1 MiB
	// committed, 16 MiB reserved), plus whatever segments we map.
	w, err := repro.NewWorld(repro.Config{
		InitialHeapBytes: 1 << 20,
		ReserveHeapBytes: 16 << 20,
		Blacklisting:     repro.BlacklistDense,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Static data is scanned conservatively as a root area.
	globals, err := w.Space.MapNew("globals", repro.KindData, 0x2000, 4096, 4096)
	if err != nil {
		log.Fatal(err)
	}

	// A mutator machine provides registers and a stack, also roots.
	m, err := repro.NewMachine(w, repro.MachineConfig{
		StackTop:   0x80000000,
		StackBytes: 64 * 1024,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Allocate a three-node list: each node is (value, next).
	var head repro.Addr
	for i := 3; i >= 1; i-- {
		node, err := w.Allocate(2, false)
		if err != nil {
			log.Fatal(err)
		}
		w.Store(node, repro.Word(i*100))
		w.Store(node+4, repro.Word(head))
		head = node
	}
	globals.Store(0x2000, repro.Word(head)) // root the list

	// An unreferenced object, doomed at the next collection.
	doomed, _ := w.Allocate(16, false)

	st := w.Collect()
	fmt.Printf("collection 1: %d objects live, %d freed\n",
		st.Sweep.ObjectsLive, st.Sweep.ObjectsFreed)
	fmt.Printf("  list head alive: %v, doomed object alive: %v\n",
		w.Heap.IsAllocated(head), w.Heap.IsAllocated(doomed))

	// Stack references keep objects alive too.
	err = m.WithFrame(1, func(f *repro.Frame) error {
		tmp, err := w.Allocate(2, false)
		if err != nil {
			return err
		}
		f.Store(0, repro.Word(tmp))
		st := w.Collect()
		fmt.Printf("collection 2 (stack ref live): %d objects live\n", st.Sweep.ObjectsLive)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's problem: an *integer* in static data that happens to
	// equal a heap address. Without blacklisting it would pin whatever
	// is later allocated there; the startup-style collection below
	// records it, and the allocator then refuses that page.
	falseRef := w.Heap.Base() + 0x8000 + 4
	globals.Store(0x2004, repro.Word(falseRef))
	w.Collect()
	fmt.Printf("blacklist now holds %d page(s) near the false reference\n",
		w.Blacklist.Len())

	var onBadPage int
	for i := 0; i < 5000; i++ {
		p, err := w.Allocate(2, false)
		if err != nil {
			log.Fatal(err)
		}
		if repro.PageBytes*(uint32(p)/repro.PageBytes) == uint32(falseRef)/repro.PageBytes*repro.PageBytes {
			onBadPage++
		}
	}
	fmt.Printf("objects later placed on the blacklisted page: %d\n", onBadPage)

	fmt.Printf("heap: %d KiB committed, %d collections total\n",
		w.Heap.Stats().HeapBytes/1024, w.Collections())
}
