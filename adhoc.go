package repro

import (
	"fmt"

	"repro/internal/simrand"
	"repro/internal/stats"
)

// PlacementRow is one heap position's misidentification result (E13).
type PlacementRow struct {
	Label         string
	HeapBase      Addr
	Misidentified uint64 // garbage objects retained by the polluted roots
	BytesRetained uint64
}

// HeapPlacementOptions configures the experiment.
type HeapPlacementOptions struct {
	RootWords     int // polluted root words per category (default 16384)
	HeapFillBytes int // garbage objects exposed to the roots (default 4 MiB)
	Seed          uint64
}

// HeapPlacement reproduces section 2's ad-hoc advice: "an adequate
// solution sometimes consists of properly positioning the heap in the
// address space. If the high order bits of addresses are neither all
// zeros or all ones, then conflicts with integer data are unlikely.
// Similarly, likely character codes and floating point values can be
// avoided."
//
// The same root pollution — small integers, negative counters, ASCII
// text, and common IEEE-754 floats — is scanned against a garbage heap
// placed at four different bases. Each base collides with exactly one
// category, except the recommended high placement, which collides with
// none.
func HeapPlacement(opt HeapPlacementOptions) ([]PlacementRow, *stats.Table, error) {
	if opt.RootWords == 0 {
		opt.RootWords = 8192
	}
	if opt.HeapFillBytes == 0 {
		opt.HeapFillBytes = 4 << 20
	}
	placements := []struct {
		label string
		base  Addr
	}{
		{"low (integer range)", 0x00040000},
		{"float range (1.0..64.0)", 0x3F800000},
		{"ASCII text range", 0x61000000},
		{"high, mixed bits (recommended)", 0xA0000000},
	}
	var rows []PlacementRow
	for _, pl := range placements {
		row, err := placementRun(opt, pl.label, pl.base)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, *row)
	}
	tab := stats.NewTable("Section 2: heap placement vs misidentification from typical data",
		"Heap base", "Address", "Objects retained", "KB retained")
	for _, r := range rows {
		tab.AddF(r.Label, fmt.Sprintf("%#08x", uint32(r.HeapBase)), r.Misidentified, r.BytesRetained/1024)
	}
	return rows, tab, nil
}

func placementRun(opt HeapPlacementOptions, label string, base Addr) (*PlacementRow, error) {
	w, err := NewWorld(Config{
		HeapBase:         base,
		InitialHeapBytes: opt.HeapFillBytes + (1 << 20),
		ReserveHeapBytes: opt.HeapFillBytes + (8 << 20),
		Pointer:          PointerInterior, // the unfavourable operating point
		GCDivisor:        -1,
	})
	if err != nil {
		return nil, err
	}
	seg, err := w.Space.MapNew("typicaldata", KindData, 0x2000,
		4*opt.RootWords*WordBytes, 4*opt.RootWords*WordBytes)
	if err != nil {
		return nil, err
	}
	rng := simrand.New(opt.Seed)
	off := Addr(0x2000)
	store := func(v uint32) error {
		err := seg.Store(off, Word(v))
		off += WordBytes
		return err
	}
	for i := 0; i < opt.RootWords; i++ {
		// Small counters and sizes.
		if err := store(rng.Uint32n(1 << 20)); err != nil {
			return nil, err
		}
		// Small negative numbers (two's complement: 0xFFFF....).
		if err := store(uint32(-(1 + int32(rng.Uint32n(1<<20))))); err != nil {
			return nil, err
		}
		// Four printable ASCII characters.
		text := uint32(rng.PrintableByte())<<24 | uint32(rng.PrintableByte())<<16 |
			uint32(rng.PrintableByte())<<8 | uint32(rng.PrintableByte())
		if err := store(text); err != nil {
			return nil, err
		}
		// Common float magnitudes: 1.0..64.0 single precision, whose bit
		// patterns occupy 0x3F800000..0x42800000.
		f := uint32(0x3F800000) + rng.Uint32n(0x03000000)
		if err := store(f); err != nil {
			return nil, err
		}
	}
	// Garbage heap for the roots to falsely retain.
	for n := 0; n < opt.HeapFillBytes; n += WordBytes {
		if _, err := w.Allocate(1, false); err != nil {
			return nil, err
		}
	}
	objs, bytes := w.MarkOnly()
	return &PlacementRow{
		Label:         label,
		HeapBase:      base,
		Misidentified: objs,
		BytesRetained: bytes,
	}, nil
}

// AtomicRow is one configuration of the pointer-free allocation
// experiment (E14).
type AtomicRow struct {
	Atomic        bool
	DeadRetained  uint64 // dead list cells pinned by bitmap contents
	FieldsScanned uint64 // heap words the marker had to examine
	BytesRetained uint64
}

// AtomicDataOptions configures the experiment.
type AtomicDataOptions struct {
	Bitmaps     int // number of "compressed bitmaps" (default 16)
	BitmapBytes int // size of each (default 128 KiB)
	DeadCells   int // dead cons cells exposed (default 50000)
	Seed        uint64
}

// AtomicData reproduces section 2's requirement that "it is essential
// to provide some way to communicate to the collector at least the
// fact that an entire large object contains no pointers. Otherwise
// certain kinds of objects (most notably large amounts of compressed
// data, such as compressed bitmaps) introduce false pointers with
// excessively high probability."
//
// Live "compressed bitmaps" full of random bytes share the heap with a
// large dead structure. Allocated as ordinary objects their contents
// are scanned and pin much of the dead structure; allocated atomically
// they pin nothing and the marker does far less work.
func AtomicData(opt AtomicDataOptions) ([]AtomicRow, *stats.Table, error) {
	if opt.Bitmaps == 0 {
		opt.Bitmaps = 16
	}
	if opt.BitmapBytes == 0 {
		opt.BitmapBytes = 128 * 1024
	}
	if opt.DeadCells == 0 {
		opt.DeadCells = 50000
	}
	var rows []AtomicRow
	for _, atomic := range []bool{false, true} {
		row, err := atomicRun(opt, atomic)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, *row)
	}
	tab := stats.NewTable("Section 2: compressed data as ordinary vs pointer-free objects",
		"Allocation", "Dead cells retained", "Heap words scanned", "KB retained")
	for _, r := range rows {
		label := "ordinary (scanned)"
		if r.Atomic {
			label = "atomic (pointer-free)"
		}
		tab.AddF(label, r.DeadRetained, r.FieldsScanned, r.BytesRetained/1024)
	}
	return rows, tab, nil
}

func atomicRun(opt AtomicDataOptions, atomic bool) (*AtomicRow, error) {
	heapBytes := opt.Bitmaps*opt.BitmapBytes + opt.DeadCells*8 + (4 << 20)
	w, err := NewWorld(Config{
		InitialHeapBytes: heapBytes,
		ReserveHeapBytes: heapBytes * 2,
		Pointer:          PointerInterior,
		GCDivisor:        -1,
	})
	if err != nil {
		return nil, err
	}
	root, err := w.Space.MapNew("bitmaps", KindData, 0x2000, 4096, 4096)
	if err != nil {
		return nil, err
	}
	rng := simrand.New(opt.Seed)

	// The dead structure: cons cells chained into lists, then dropped.
	var dead []Addr
	var prev Addr
	for i := 0; i < opt.DeadCells; i++ {
		cell, err := w.Allocate(2, false)
		if err != nil {
			return nil, err
		}
		if prev != 0 {
			w.Store(prev+4, Word(cell))
		}
		dead = append(dead, cell)
		prev = cell
	}

	// Live compressed bitmaps: high-entropy words, exactly the content
	// the paper warns about. Their values are drawn uniformly over the
	// committed heap's span so that, when scanned, they point everywhere.
	heapLo, heapHi := uint32(w.Heap.Base()), uint32(w.Heap.Limit())
	for i := 0; i < opt.Bitmaps; i++ {
		bm, err := w.Allocate(opt.BitmapBytes/WordBytes, atomic)
		if err != nil {
			return nil, err
		}
		for wd := 0; wd < opt.BitmapBytes/WordBytes; wd++ {
			v := rng.Uint32()
			if v%4 == 0 { // a quarter of the entropy lands heap-shaped
				v = heapLo + v%(heapHi-heapLo)
			}
			if err := w.Store(bm+Addr(4*wd), Word(v)); err != nil {
				return nil, err
			}
		}
		if err := root.Store(0x2000+Addr(4*i), Word(bm)); err != nil {
			return nil, err
		}
	}

	w.Collect()
	st := w.LastCollection()
	var retained uint64
	for _, cell := range dead {
		if w.Heap.IsAllocated(cell) {
			retained++
		}
	}
	return &AtomicRow{
		Atomic:        atomic,
		DeadRetained:  retained,
		FieldsScanned: st.Mark.FieldsScanned,
		BytesRetained: st.Sweep.BytesLive,
	}, nil
}
