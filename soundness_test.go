package repro

import (
	"fmt"
	"testing"

	"repro/internal/simrand"
)

// The soundness harness drives random mutator behaviour against every
// collector mode and checks the one property a conservative collector
// must never violate: an object reachable in the exact (shadow) object
// graph is never reclaimed. (The converse — unreachable objects may be
// retained — is precisely the paper's subject.)

type shadowKind int

const (
	shadowCons   shadowKind = iota // 4 fields, all traced
	shadowAtomic                   // 2 fields, never traced
	shadowTyped                    // 4 fields, only 0 and 2 traced
)

type shadowObj struct {
	kind   shadowKind
	fields [4]Addr // 0 = nil
}

type soundnessHarness struct {
	t      *testing.T
	w      *World
	rng    *simrand.Rand
	objs   map[Addr]*shadowObj
	order  []Addr // deterministic iteration order (allocation order)
	roots  []Addr // mirrored into the root segment
	seg    *Segment
	layout DescID
}

func newSoundnessHarness(t *testing.T, cfg Config, seed uint64) *soundnessHarness {
	t.Helper()
	cfg.InitialHeapBytes = 256 * 1024
	cfg.ReserveHeapBytes = 32 << 20
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := w.Space.MapNew("roots", KindData, 0x2000, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := w.RegisterLayout([]bool{true, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	return &soundnessHarness{
		t:      t,
		w:      w,
		rng:    simrand.New(seed),
		objs:   map[Addr]*shadowObj{},
		seg:    seg,
		layout: layout,
	}
}

func (h *soundnessHarness) alloc() {
	var p Addr
	var err error
	var kind shadowKind
	switch h.rng.Intn(3) {
	case 0:
		kind = shadowCons
		p, err = h.w.Allocate(4, false)
	case 1:
		kind = shadowAtomic
		p, err = h.w.Allocate(2, true)
	default:
		kind = shadowTyped
		p, err = h.w.AllocateTyped(h.layout)
	}
	if err != nil {
		h.t.Fatal(err)
	}
	h.objs[p] = &shadowObj{kind: kind}
	h.order = append(h.order, p)
	// Fresh objects start rooted, or they could be collected before
	// they are linked anywhere.
	h.roots = append(h.roots, p)
	h.syncRoots()
}

// tracedFields returns which field indices are pointer-traced for kind.
func tracedFields(kind shadowKind) []int {
	switch kind {
	case shadowCons:
		return []int{0, 1, 2, 3}
	case shadowTyped:
		return []int{0, 2}
	default:
		return nil
	}
}

func (h *soundnessHarness) fieldCount(kind shadowKind) int {
	if kind == shadowAtomic {
		return 2
	}
	return 4
}

func (h *soundnessHarness) randomObj() (Addr, *shadowObj) {
	if len(h.order) == 0 {
		return 0, nil
	}
	p := h.order[h.rng.Intn(len(h.order))]
	return p, h.objs[p]
}

func (h *soundnessHarness) link() {
	src, so := h.randomObj()
	dst, _ := h.randomObj()
	if so == nil || dst == 0 {
		return
	}
	f := h.rng.Intn(h.fieldCount(so.kind))
	if err := h.w.Store(src+Addr(4*f), Word(dst)); err != nil {
		h.t.Fatal(err)
	}
	// Shadow tracks the edge only if the collector is entitled to see
	// it: atomic contents and typed data fields retain nothing.
	traced := false
	for _, tf := range tracedFields(so.kind) {
		if tf == f {
			traced = true
		}
	}
	if traced {
		so.fields[f] = dst
	} else {
		so.fields[f] = 0
	}
}

func (h *soundnessHarness) unroot() {
	if len(h.roots) == 0 {
		return
	}
	i := h.rng.Intn(len(h.roots))
	h.roots = append(h.roots[:i], h.roots[i+1:]...)
	h.syncRoots()
}

func (h *soundnessHarness) syncRoots() {
	for i := 0; i < 256; i++ {
		var v Word
		if i < len(h.roots) {
			v = Word(h.roots[i])
		}
		if err := h.seg.Store(0x2000+Addr(4*i), v); err != nil {
			h.t.Fatal(err)
		}
	}
	if len(h.roots) > 256 {
		h.t.Fatal("root overflow")
	}
}

// reachable computes exact shadow reachability.
func (h *soundnessHarness) reachable() map[Addr]bool {
	seen := map[Addr]bool{}
	stack := append([]Addr(nil), h.roots...)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p == 0 || seen[p] {
			continue
		}
		seen[p] = true
		if o := h.objs[p]; o != nil {
			for _, f := range tracedFields(o.kind) {
				if o.fields[f] != 0 {
					stack = append(stack, o.fields[f])
				}
			}
		}
	}
	return seen
}

func (h *soundnessHarness) step() {
	switch op := h.rng.Intn(12); {
	case op < 4:
		h.alloc()
	case op < 8:
		h.link()
	case op < 9 && len(h.roots) > 2:
		h.unroot()
	case op < 10:
		h.w.Collect()
	case op < 11 && h.w.Config().Generational:
		h.w.CollectMinor()
	case op < 11 && h.w.Config().Incremental:
		if !h.w.IncrementalActive() {
			h.w.StartIncrementalCycle()
		} else if h.w.IncrementalStep(8) {
			h.w.FinishIncrementalCycle()
		}
	}
	// Prune after EVERY step: any allocation may trigger a collection
	// internally, and the shadow must drop reclaimed objects before the
	// mutator can (illegally) resurrect a stale address via link().
	h.prune()
}

// prune removes shadow entries for objects the collector reclaimed —
// legal only when they were shadow-unreachable.
func (h *soundnessHarness) prune() {
	reach := h.reachable()
	kept := h.order[:0]
	for _, p := range h.order {
		if !h.w.Heap.IsAllocated(p) {
			if reach[p] {
				h.t.Fatalf("SOUNDNESS: reachable object %#x reclaimed", uint32(p))
			}
			delete(h.objs, p)
			continue
		}
		kept = append(kept, p)
	}
	h.order = kept
}

func (h *soundnessHarness) finalCheck() {
	// An in-flight incremental cycle retains its snapshot's liveness
	// (floating garbage) — finish it, then run a genuinely fresh full
	// collection so the exactness assertion below is fair.
	if h.w.IncrementalActive() {
		h.w.FinishIncrementalCycle()
	}
	h.w.Collect()
	reach := h.reachable()
	for p := range reach {
		if p == 0 {
			continue
		}
		if !h.w.Heap.IsAllocated(p) {
			h.t.Fatalf("SOUNDNESS: reachable object %#x missing after final collect", uint32(p))
		}
	}
	// With a noise-free root segment and base pointers, retention is
	// exact for non-generational modes after a full collect: everything
	// still allocated among our objects must be reachable.
	for p := range h.objs {
		if h.w.Heap.IsAllocated(p) && !reach[p] {
			h.t.Fatalf("unreachable object %#x retained after full collect "+
				"(no false roots exist in this harness)", uint32(p))
		}
	}
}

func TestSoundnessAcrossModes(t *testing.T) {
	modes := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{}},
		{"blacklist", Config{Blacklisting: BlacklistDense}},
		{"interior", Config{Pointer: PointerInterior, Blacklisting: BlacklistDense}},
		{"generational", Config{Generational: true, MinorDivisor: 4}},
		{"incremental", Config{Incremental: true, MarkQuantum: 8}},
		{"lifo-frag", Config{FreeBlocks: LIFO}},
		{"skip-boundary", Config{SkipPageBoundarySlot: true}},
		{"discontiguous", Config{DiscontiguousGrowth: true, Blacklisting: BlacklistHashed}},
		{"gen-discontiguous", Config{Generational: true, MinorDivisor: 4,
			DiscontiguousGrowth: true, Blacklisting: BlacklistHashed}},
		{"lazy", Config{LazySweep: true}},
		{"gen-lazy", Config{Generational: true, MinorDivisor: 4, LazySweep: true}},
		{"inc-lazy", Config{Incremental: true, MarkQuantum: 8, LazySweep: true}},
	}
	for _, mode := range modes {
		mode := mode
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", mode.name, seed), func(t *testing.T) {
				h := newSoundnessHarness(t, mode.cfg, seed)
				for i := 0; i < 4000; i++ {
					h.step()
					if len(h.roots) > 200 {
						h.unroot()
					}
				}
				h.finalCheck()
			})
		}
	}
}
