package repro

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// LargeObjectRow is one size's allocatability under a polluted
// blacklist (E8, the paper's observation 7).
type LargeObjectRow struct {
	ObjectKB         int
	CapacityInterior int // objects placed before the heap refused
	CapacityOffPage  int // interior policy + AllocIgnoreOffPage promise
	CapacityBase     int // with base-pointers-only validity
	CapacityIdeal    int // with an empty blacklist
}

// LargeObjectsOptions configures the experiment.
type LargeObjectsOptions struct {
	HeapBytes int   // fixed heap size (default 8 MiB)
	FalseRefs int   // static false references into the heap (default 100)
	SizesKB   []int // object sizes to probe (default 50..800 KB)
	Seed      uint64
}

// LargeObjects reproduces observation 7: "a quick examination of the
// blacklist in a statically linked SPARC executable suggests that if
// all interior pointers are considered valid, it becomes difficult to
// allocate individual objects larger than about 100 Kbytes... This is
// never a problem if addresses that do not point to the first page of
// an object can be considered invalid."
//
// A fixed-size heap is salted with static false references (about one
// blacklisted page per 80 KB, the density the paper describes), then
// packed with objects of one size until allocation fails. Interior
// mode must avoid whole spans; base mode only first pages; the ideal
// column uses no blacklist at all.
func LargeObjects(opt LargeObjectsOptions) ([]LargeObjectRow, *stats.Table, error) {
	if opt.HeapBytes == 0 {
		opt.HeapBytes = 8 << 20
	}
	if opt.FalseRefs == 0 {
		opt.FalseRefs = opt.HeapBytes / (80 * 1024) // ~1 per 80 KB
	}
	if len(opt.SizesKB) == 0 {
		opt.SizesKB = []int{50, 100, 200, 400, 800}
	}

	capacity := func(sizeKB int, pointer PointerPolicy, pollute, offPage bool) (int, error) {
		w, err := NewWorld(Config{
			HeapBase:         0x400000,
			InitialHeapBytes: opt.HeapBytes,
			ReserveHeapBytes: opt.HeapBytes,
			Pointer:          pointer,
			Blacklisting:     BlacklistDense,
			GCDivisor:        -1,
		})
		if err != nil {
			return 0, err
		}
		if pollute {
			seg, err := w.Space.MapNew("falserefs", KindData, 0x2000,
				opt.FalseRefs*WordBytes, opt.FalseRefs*WordBytes)
			if err != nil {
				return 0, err
			}
			rng := simrand.New(opt.Seed)
			for i := 0; i < opt.FalseRefs; i++ {
				v := uint32(w.Heap.Base()) + rng.Uint32n(uint32(opt.HeapBytes))
				if err := seg.Store(0x2000+Addr(4*i), Word(v)); err != nil {
					return 0, err
				}
			}
			w.Collect() // startup collection blacklists them
		}
		words := sizeKB * 1024 / WordBytes
		n := 0
		for {
			var err error
			if offPage {
				_, err = w.Heap.AllocIgnoreOffPage(words, false)
			} else {
				_, err = w.Heap.Alloc(words, false)
			}
			if errors.Is(err, alloc.ErrNeedMemory) {
				return n, nil
			}
			if err != nil {
				return 0, err
			}
			n++
		}
	}

	var rows []LargeObjectRow
	for _, kb := range opt.SizesKB {
		interior, err := capacity(kb, PointerInterior, true, false)
		if err != nil {
			return nil, nil, err
		}
		offPage, err := capacity(kb, PointerInterior, true, true)
		if err != nil {
			return nil, nil, err
		}
		base, err := capacity(kb, PointerBase, true, false)
		if err != nil {
			return nil, nil, err
		}
		ideal, err := capacity(kb, PointerInterior, false, false)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, LargeObjectRow{
			ObjectKB:         kb,
			CapacityInterior: interior,
			CapacityOffPage:  offPage,
			CapacityBase:     base,
			CapacityIdeal:    ideal,
		})
	}
	tab := stats.NewTable("Observation 7: large objects vs a polluted blacklist (objects placed in an 8 MiB heap)",
		"Object size", "Interior pointers", "Interior + ignore-off-page", "Base pointers only", "No blacklist")
	for _, r := range rows {
		tab.AddF(fmt.Sprintf("%d KB", r.ObjectKB), r.CapacityInterior, r.CapacityOffPage, r.CapacityBase, r.CapacityIdeal)
	}
	return rows, tab, nil
}
