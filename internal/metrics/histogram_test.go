package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// One value per bucket boundary region: 0 → bucket 0, 1 → bucket 1,
	// [2,3] → bucket 2, [4,7] → bucket 3, ...
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{math.MaxUint64, histBuckets - 1}, // clamped
	}
	for _, c := range cases {
		h.Record(c.v)
	}
	got := h.Buckets()
	want := make([]uint64, histBuckets)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	var sum uint64
	for _, c := range cases {
		sum += c.v
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %d, want %d", h.Sum(), sum)
	}
	if h.Max() != math.MaxUint64 {
		t.Fatalf("max = %d, want MaxUint64", h.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 9 values of 100 and 1 of 100000: the p50 bound must cover 100's
	// bucket but not 100000's, p99/p100 must be capped by the max.
	for i := 0; i < 9; i++ {
		h.Record(100)
	}
	h.Record(100000)
	p50 := h.Quantile(0.5)
	if p50 < 100 || p50 >= 128 {
		t.Fatalf("p50 = %d, want within 100's bucket [100,128)", p50)
	}
	if got := h.Quantile(1.0); got != 100000 {
		t.Fatalf("p100 = %d, want the max 100000", got)
	}
	if got := h.Quantile(0); got != h.Quantile(0.0001) {
		t.Fatalf("q=0 (%d) must behave like the first observation (%d)", got, h.Quantile(0.0001))
	}
	// Out-of-range q clamps instead of panicking.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("out-of-range quantiles do not clamp")
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(42) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Buckets() != nil {
		t.Fatal("nil histogram reports observations")
	}
	var r *Registry
	if r.Histogram("x") != nil || r.HistogramNames() != nil {
		t.Fatal("nil registry returned a histogram")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(uint64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	if h.Max() != goroutines*per-1 {
		t.Fatalf("max = %d, want %d", h.Max(), goroutines*per-1)
	}
	var total uint64
	for _, b := range h.Buckets() {
		total += b
	}
	if total != goroutines*per {
		t.Fatalf("bucket total = %d, want %d", total, goroutines*per)
	}
}

func TestHistogramRecordZeroAlloc(t *testing.T) {
	var h Histogram
	avg := testing.AllocsPerRun(100, func() { h.Record(12345) })
	if avg != 0 {
		t.Fatalf("Record allocates %v times, want 0", avg)
	}
}

func TestRegistryHistogramNamespace(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("mark_hist")
	if b := r.Histogram("mark_hist"); a != b {
		t.Fatal("same name returned distinct histograms")
	}
	r.Histogram("sweep_hist")
	names := r.HistogramNames()
	if len(names) != 2 || names[0] != "mark_hist" || names[1] != "sweep_hist" {
		t.Fatalf("names = %v, want registration order", names)
	}
	// Histograms stay out of the scalar snapshot: its shape is stable
	// for scrapers that predate them.
	for _, s := range r.Snapshot() {
		if s.Name == "mark_hist" || s.Name == "sweep_hist" {
			t.Fatalf("histogram %q leaked into the scalar snapshot", s.Name)
		}
	}
	a.Record(7)
	if a.Count() != 1 {
		t.Fatal("registered histogram does not record")
	}
}
