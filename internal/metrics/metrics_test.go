package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("objects_swept")
	c.Inc()
	c.Add(9)
	if c.Load() != 10 {
		t.Fatalf("counter = %d, want 10", c.Load())
	}
	g := r.Gauge("heap_bytes")
	g.Set(1 << 20)
	g.Add(-512)
	if g.Load() != (1<<20)-512 {
		t.Fatalf("gauge = %d", g.Load())
	}
}

func TestGetOrCreateSharesByName(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("steals")
	b := r.Counter("steals")
	if a != b {
		t.Fatal("same name produced distinct counters")
	}
	a.Add(3)
	if b.Load() != 3 {
		t.Fatal("shared counter not shared")
	}
}

func TestKindClashDetaches(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(7)
	g := r.Gauge("x") // wrong kind: detached, must not corrupt the counter
	g.Set(99)
	if v, ok := r.Value("x"); !ok || v != 7 {
		t.Fatalf("Value(x) = %d,%v; want 7,true", v, ok)
	}
}

func TestSnapshotOrderAndValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("gc_cycles").Add(4)
	r.Gauge("pending_sweep_blocks").Set(12)
	r.Counter("blacklist_adds").Add(2)
	snap := r.Snapshot()
	want := []Sample{
		{Name: "gc_cycles", Kind: "counter", Value: 4},
		{Name: "pending_sweep_blocks", Kind: "gauge", Value: 12},
		{Name: "blacklist_adds", Kind: "counter", Value: 2},
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %+v", snap)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, snap[i], want[i])
		}
	}
}

func TestValueMissing(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Value("absent"); ok {
		t.Fatal("absent metric reported present")
	}
}

func TestNilReceiversNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	c.Inc()
	g := r.Gauge("b")
	g.Set(1)
	if c.Load() != 0 || g.Load() != 0 {
		t.Fatal("nil-registry metrics retained values")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	if _, ok := r.Value("a"); ok {
		t.Fatal("nil registry Value reported present")
	}
	var nc *Counter
	nc.Add(1) // must not panic
	var ng *Gauge
	ng.Add(1)
	if nc.Load() != 0 || ng.Load() != 0 {
		t.Fatal("nil metrics retained values")
	}
}

func TestUpdatesZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	g := r.Gauge("level")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
	})
	if allocs != 0 {
		t.Fatalf("metric updates allocate %.1f per run, want 0", allocs)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("gc_cycles").Add(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap []Sample
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(snap) != 1 || snap[0] != (Sample{Name: "gc_cycles", Kind: "counter", Value: 2}) {
		t.Fatalf("export = %+v", snap)
	}
}
