package repro

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/stats"
)

// PauseBenchOptions parameterises the concurrent-marking pause
// measurement.
type PauseBenchOptions struct {
	Mutators int // allocating goroutines (default 8)
	Ops      int // allocations per mutator (default 40000)
	// Widths are the GOMAXPROCS values to measure both modes under
	// (default 1 and 4): width 1 shows the allocation-proportional
	// assists carrying a starved background driver, wider runs show
	// the driver overlapping the mutators. Each width is set with
	// runtime.GOMAXPROCS for its rows and restored afterwards.
	Widths []int
	// Trace, when non-nil, records collector events (snapshot pauses,
	// barrier dirtying, final pauses) from every measured world.
	Trace *TraceRecorder
}

// PauseBenchRow is one collector mode's pause profile. The workload is
// a deterministic tape — every goroutine performs exactly Ops rooted
// allocations into its private data slots and links between its own
// rooted objects, and never frees — so objects_allocated and
// objects_live are exact invariants the regression gate compares
// bit-for-bit, while the pause percentiles are timing and stay
// advisory.
type PauseBenchRow struct {
	// PauseMode is "stw" (every cycle a full stop-the-world
	// collection), "concurrent" (Config.ConcurrentMark pinned to the
	// single lock-chunked driver: mutators paused only for the snapshot
	// and the bounded finale), or "concurrent-workers" (detached
	// marking on ConcMarkWorkers goroutines plus the background
	// sweeper).
	PauseMode        string `json:"pause_mode"`
	Mutators         int    `json:"mutators"`
	ObjectsAllocated uint64 `json:"objects_allocated"`
	ObjectsLive      uint64 `json:"objects_live"`
	// Collections (cycles sampled during the measurement window, before
	// teardown) and MarkedConcurrent are informational: automatic
	// triggers and barrier traffic depend on goroutine interleaving.
	Collections      int    `json:"collections"`
	MarkedConcurrent uint64 `json:"marked_concurrent"`
	// The mutator-visible stop-the-world pause distribution, in
	// nanoseconds. For stw rows each sample is a full collection's
	// Duration; for concurrent rows each sample is one cycle's final
	// pause (the bounded rescan-drain-sweep stop). Timing columns —
	// advisory in the gate.
	PauseP50Ns float64 `json:"pause_p50_ns"`
	PauseP99Ns float64 `json:"pause_p99_ns"`
	PauseMaxNs float64 `json:"pause_max_ns"`
	// SnapshotP99Ns is the concurrent rows' other, shorter pause (root
	// scan at cycle start); 0 for stw rows.
	SnapshotP99Ns float64 `json:"snapshot_p99_ns"`
	// GoMaxProcs records the scheduler width the row ran under; the
	// regression gate treats timing columns as advisory when baseline
	// and candidate rows disagree here.
	GoMaxProcs     int  `json:"gomaxprocs"`
	Oversubscribed bool `json:"oversubscribed"`
	// ConcWorkers is the detached background-marking width the row's
	// cycles ran with (0: lock-chunked single driver). ConcPhaseNs
	// totals the cycles' concurrent-phase wall time and ConcMarkObjsPerMs
	// is MarkedConcurrent over that time — the background mark
	// throughput the CI matrix compares across rows. Timing-derived,
	// hence advisory in the gate like the pause columns.
	ConcWorkers       int     `json:"conc_workers"`
	ConcPhaseNs       int64   `json:"conc_phase_ns"`
	ConcMarkObjsPerMs float64 `json:"conc_mark_objs_per_ms"`
}

// PauseBenchResult is the full measurement with the environment it
// ran in.
type PauseBenchResult struct {
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	Mutators   int `json:"mutators"`
	Ops        int `json:"ops_per_mutator"`
	// P99ReductionX is the headline: the stw row's p99 full-collection
	// pause over the concurrent row's p99 final pause at the widest
	// measured width (0 when either is unmeasured). Advisory, like all
	// timing.
	P99ReductionX float64         `json:"p99_reduction_x"`
	Rows          []PauseBenchRow `json:"rows"`
}

// pausePercentile returns the p-th percentile (nearest-rank) of ns.
func pausePercentile(ns []float64, p float64) float64 {
	if len(ns) == 0 {
		return 0
	}
	s := append([]float64(nil), ns...)
	sort.Float64s(s)
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// PauseBench measures the pause profile of mostly-concurrent marking
// against the same collector run fully stop-the-world. The workload
// keeps a growing linked structure live (rooted allocations plus links
// between rooted objects, no frees), so full collections mark an
// ever-larger graph while the concurrent finale only rescans dirty
// blocks and roots — the gap between the two p99 columns is the
// tentpole's payoff.
func PauseBench(opts PauseBenchOptions) (*PauseBenchResult, *stats.Table, error) {
	if opts.Mutators == 0 {
		opts.Mutators = 8
	}
	if opts.Ops == 0 {
		opts.Ops = 40000
	}
	if len(opts.Widths) == 0 {
		opts.Widths = []int{1, 4}
	}
	res := &PauseBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Mutators:   opts.Mutators,
		Ops:        opts.Ops,
	}
	modes := []struct {
		label string
		cfg   Config
	}{
		{"stw", Config{
			InitialHeapBytes: 8 << 20, ReserveHeapBytes: 64 << 20,
			GCDivisor: 16,
		}},
		// MarkQuantum is the background driver's chunk and the
		// slow-path assist budget: 4096 keeps each lock hold short
		// (~0.1ms) while letting the cycle keep pace with allocation
		// even when the driver goroutine is scheduled rarely.
		// ConcMarkWorkers is pinned to 1 so this row stays the
		// lock-chunked single-driver cycle regardless of the machine —
		// the baseline the detached row is compared against.
		{"concurrent", Config{
			InitialHeapBytes: 8 << 20, ReserveHeapBytes: 64 << 20,
			GCDivisor: 16, ConcurrentMark: true, MarkQuantum: 4096,
			ConcMarkWorkers: 1,
		}},
		// Detached marking: four background workers pull the gray set
		// without the world lock, the pacer sizes assists from the
		// allocation rate, and the sweep backlog drains on a background
		// goroutine. On fewer than 4 processors the workers oversubscribe
		// the scheduler and the timing columns are advisory (the
		// Oversubscribed flag marks such rows); the CI matrix runs the
		// widths that measure it for real.
		{"concurrent-workers", Config{
			InitialHeapBytes: 8 << 20, ReserveHeapBytes: 64 << 20,
			GCDivisor: 16, ConcurrentMark: true, MarkQuantum: 4096,
			ConcMarkWorkers: 4, ConcurrentSweep: true,
		}},
	}
	for _, width := range opts.Widths {
		prev := runtime.GOMAXPROCS(width)
		for _, mode := range modes {
			row, err := pauseBenchRun(opts, mode.label, mode.cfg)
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return nil, nil, err
			}
			res.Rows = append(res.Rows, *row)
		}
		runtime.GOMAXPROCS(prev)
	}
	// Every row replays the same deterministic tape; liveness is a
	// property of the tape, not of when cycles fired or how wide the
	// scheduler ran, so the live counts must all agree exactly — a
	// divergence means the barrier or the finale lost or floated an
	// object past teardown.
	for _, r := range res.Rows[1:] {
		if r.ObjectsLive != res.Rows[0].ObjectsLive {
			return nil, nil, fmt.Errorf("pausebench: live sets diverge: %d (%s@%d) vs %d (%s@%d)",
				res.Rows[0].ObjectsLive, res.Rows[0].PauseMode, res.Rows[0].GoMaxProcs,
				r.ObjectsLive, r.PauseMode, r.GoMaxProcs)
		}
	}
	// Headline ratio from the widest width's mode pair.
	byKey := make(map[string]PauseBenchRow)
	for _, r := range res.Rows {
		byKey[fmt.Sprintf("%s@%d", r.PauseMode, r.GoMaxProcs)] = r
	}
	widest := opts.Widths[len(opts.Widths)-1]
	stw := byKey[fmt.Sprintf("stw@%d", widest)]
	conc := byKey[fmt.Sprintf("concurrent@%d", widest)]
	if stw.PauseP99Ns > 0 && conc.PauseP99Ns > 0 {
		res.P99ReductionX = stw.PauseP99Ns / conc.PauseP99Ns
	}
	tab := stats.NewTable(
		fmt.Sprintf("Mutator-visible pauses: stop-the-world vs concurrent marking (%d mutators x %d allocs, NumCPU=%d)",
			opts.Mutators, opts.Ops, res.NumCPU),
		"mode", "gomaxprocs", "workers", "cycles", "pause p50", "pause p99", "pause max", "snapshot p99", "mark obj/ms", "live at end")
	ms := func(ns float64) string { return fmt.Sprintf("%.3fms", ns/1e6) }
	for _, r := range res.Rows {
		snap, tput := "-", "-"
		if r.PauseMode != "stw" {
			snap = ms(r.SnapshotP99Ns)
		}
		if r.ConcMarkObjsPerMs > 0 {
			tput = fmt.Sprintf("%.0f", r.ConcMarkObjsPerMs)
		}
		tab.AddF(r.PauseMode, r.GoMaxProcs, r.ConcWorkers, r.Collections,
			ms(r.PauseP50Ns), ms(r.PauseP99Ns), ms(r.PauseMaxNs),
			snap, tput, r.ObjectsLive)
	}
	return res, tab, nil
}

func pauseBenchRun(opts PauseBenchOptions, label string, cfg Config) (*PauseBenchRow, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	w.SetTracer(opts.Trace)
	n := opts.Mutators
	const slots = 8
	data, err := w.Space.MapNew("roots", KindData, 0x2000, n*slots*4, n*slots*4)
	if err != nil {
		return nil, err
	}
	// Pause sampling: the hook fires under the central lock, so the
	// appends are serialized. For a concurrent cycle the mutators were
	// stopped twice (snapshot, finale); for everything else Duration is
	// the whole stop.
	var finals, snaps []float64
	var markedConc uint64
	var concPhaseNs int64
	concWorkers := 0
	w.SetCollectionHook(func(st CollectionStats) {
		if st.Concurrent {
			finals = append(finals, float64(st.PauseFinalNs))
			snaps = append(snaps, float64(st.PauseSnapshotNs))
			markedConc += st.MarkedConcurrent
			concPhaseNs += st.ConcPhaseNs
			if st.ConcWorkers > concWorkers {
				concWorkers = st.ConcWorkers
			}
		} else {
			finals = append(finals, float64(st.Duration.Nanoseconds()))
		}
	})
	muts := make([]*Mutator, n)
	for g := range muts {
		muts[g] = w.NewMutator()
	}
	sizes := []int{2, 4, 8, 16}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := muts[g]
			base := Addr(0x2000 + g*slots*4)
			// Every allocation is rooted in one of this goroutine's
			// private slots and points back at the object in the next
			// slot over (rooted, hence certainly still allocated — and
			// the store writes into the brand-new object, so it can
			// never land in reclaimed memory). The stride-7 backward
			// chains from the 8 final roots cover every residue class,
			// so the whole allocation history stays reachable: the live
			// graph grows throughout the run, full stop-the-world marks
			// get steadily more expensive, and the concurrent finale's
			// rescan stays bounded. Liveness is a property of the tape
			// alone and replays identically in either mode.
			var roots [slots]Addr
			for i := 0; i < opts.Ops; i++ {
				slot := i % slots
				p, err := m.AllocateRooted(data, base+Addr(4*slot), sizes[i&3], false)
				if err != nil {
					errs[g] = err
					return
				}
				if prev := roots[(slot+1)%slots]; prev != 0 {
					if err := m.Store(p, Word(prev)); err != nil {
						errs[g] = err
						return
					}
				}
				roots[slot] = p
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pausebench: mutator %d: %w", g, err)
		}
	}
	// Teardown: finish any in-flight concurrent cycle while the hook is
	// still attached (its finale is a genuine bounded pause and belongs
	// in the sample), then stop sampling and run two full collections —
	// the first may inherit the finished cycle's floating garbage, the
	// second leaves exactly the tape-reachable objects.
	w.FinishConcurrentCycle()
	cycles := len(finals)
	w.SetCollectionHook(nil)
	w.Collect()
	w.Collect()
	// Deferred-sweep modes (ConcurrentSweep implies LazySweep) may still
	// hold a backlog; land it so the integrity walk and the live counts
	// see a fully swept heap. No-op for eager rows.
	w.FinishSweep()
	if err := w.VerifyIntegrity(); err != nil {
		return nil, fmt.Errorf("pausebench: %w", err)
	}
	total := uint64(n * opts.Ops)
	hs := w.Heap.Stats()
	if hs.ObjectsAllocated != total {
		return nil, fmt.Errorf("pausebench: %d objects allocated centrally, mutators performed %d",
			hs.ObjectsAllocated, total)
	}
	return &PauseBenchRow{
		PauseMode:        label,
		Mutators:         n,
		ObjectsAllocated: total,
		ObjectsLive:      hs.ObjectsLive,
		Collections:      cycles,
		MarkedConcurrent: markedConc,
		PauseP50Ns:       pausePercentile(finals, 50),
		PauseP99Ns:       pausePercentile(finals, 99),
		PauseMaxNs:       pausePercentile(finals, 100),
		SnapshotP99Ns:    pausePercentile(snaps, 99),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Oversubscribed:   n > runtime.GOMAXPROCS(0),
		ConcWorkers:      concWorkers,
		ConcPhaseNs:      concPhaseNs,
		ConcMarkObjsPerMs: func() float64 {
			if concPhaseNs <= 0 {
				return 0
			}
			return float64(markedConc) / (float64(concPhaseNs) / 1e6)
		}(),
	}, nil
}
