package repro

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeQuickstart(t *testing.T) {
	w, err := NewWorld(Config{Blacklisting: BlacklistDense})
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.Space.MapNew("globals", KindData, 0x2000, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := w.Allocate(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.Store(0x2000, Word(obj)); err != nil {
		t.Fatal(err)
	}
	w.Collect()
	if !w.Heap.IsAllocated(obj) {
		t.Fatal("rooted object collected")
	}
	data.Store(0x2000, 0)
	w.Collect()
	if w.Heap.IsAllocated(obj) {
		t.Fatal("dropped object retained")
	}
}

func TestFigure1Experiment(t *testing.T) {
	rows, tab, err := Figure1(Figure1Options{StaticWords: 8192, HeapFillBytes: 2 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	aligned, unaligned, defended := rows[0], rows[1], rows[2]
	// Word-aligned scanning of small integers misidentifies nothing.
	if aligned.Misidentified != 0 {
		t.Errorf("aligned scan misidentified %d", aligned.Misidentified)
	}
	// Any-byte-offset scanning forms h<<16 addresses: misidentification.
	if unaligned.Misidentified == 0 {
		t.Error("unaligned scan found no figure-1 misidentifications")
	}
	if unaligned.Candidates <= aligned.Candidates {
		t.Error("unaligned scan should consider more candidates")
	}
	// Declining block-boundary slots defends completely here: every
	// concatenated address has 16 trailing zero bits.
	if defended.Misidentified != 0 {
		t.Errorf("trailing-zeros defence failed: %d retained", defended.Misidentified)
	}
	if !strings.Contains(tab.String(), "Figure 1") {
		t.Error("table title missing")
	}
}

func TestStackClearingExperiment(t *testing.T) {
	rows, tab, err := StackClearing(StackClearOptions{ListLen: 300, Iterations: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	none, cheap, eager, loop := rows[0], rows[1], rows[2], rows[3]
	if !(none.MaxLiveCells > cheap.MaxLiveCells) {
		t.Errorf("no-clearing (%d) should exceed cheap clearing (%d)",
			none.MaxLiveCells, cheap.MaxLiveCells)
	}
	if !(cheap.MaxLiveCells >= eager.MaxLiveCells) {
		t.Errorf("cheap (%d) should be >= eager (%d)", cheap.MaxLiveCells, eager.MaxLiveCells)
	}
	if !(none.MaxLiveCells > 2*loop.MaxLiveCells) {
		t.Errorf("no-clearing (%d) should far exceed the optimized loop (%d)",
			none.MaxLiveCells, loop.MaxLiveCells)
	}
	// The optimized loop never holds much more than original + current
	// + previous list.
	if loop.MaxLiveCells > 4*300 {
		t.Errorf("loop max live = %d", loop.MaxLiveCells)
	}
	_ = tab.String()
}

func TestGridsExperiment(t *testing.T) {
	rows, _, err := Grids(GridsOptions{Rows: 30, Cols: 30, Trials: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	emb, sep := rows[0], rows[1]
	if emb.Kind != GridEmbedded || sep.Kind != GridSeparate {
		t.Fatal("row order wrong")
	}
	if emb.MeanFractionPct < 3*sep.MeanFractionPct {
		t.Errorf("embedded (%.1f%%) should dwarf separate (%.1f%%)",
			emb.MeanFractionPct, sep.MeanFractionPct)
	}
}

func TestTreesExperiment(t *testing.T) {
	rows, _, err := Trees([]int{8, 12}, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MeanRetained < r.TheoryRetained*0.6 || r.MeanRetained > r.TheoryRetained*1.4 {
			t.Errorf("depth %d: measured %.1f vs theory %.1f", r.Depth, r.MeanRetained, r.TheoryRetained)
		}
	}
}

func TestQueuesAndStreamsExperiment(t *testing.T) {
	rows, _, err := QueuesAndStreams(50, 8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Mitigated && r.FinalLiveObjects > 300 {
			t.Errorf("%s mitigated but retained %d", r.Structure, r.FinalLiveObjects)
		}
		if !r.Mitigated && r.FinalLiveObjects < 4000 {
			t.Errorf("%s unmitigated but retained only %d", r.Structure, r.FinalLiveObjects)
		}
	}
}

func TestLargeObjectsExperiment(t *testing.T) {
	rows, _, err := LargeObjects(LargeObjectsOptions{
		HeapBytes: 4 << 20,
		SizesKB:   []int{40, 100, 400},
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CapacityBase < r.CapacityInterior {
			t.Errorf("%d KB: base-only (%d) should fit at least as many as interior (%d)",
				r.ObjectKB, r.CapacityBase, r.CapacityInterior)
		}
		if r.CapacityIdeal < r.CapacityBase {
			t.Errorf("%d KB: ideal (%d) below base (%d)", r.ObjectKB, r.CapacityIdeal, r.CapacityBase)
		}
	}
	// Interior-pointer capacity collapses with size much faster than
	// base-only capacity: compare utilisation at the largest size.
	last := rows[len(rows)-1]
	if last.CapacityInterior*2 > last.CapacityBase && last.CapacityBase > 0 {
		t.Errorf("interior capacity (%d) did not collapse vs base (%d) at %d KB",
			last.CapacityInterior, last.CapacityBase, last.ObjectKB)
	}
	// The ignore-off-page promise restores base-level capacity even
	// under the interior policy.
	for _, r := range rows {
		if r.CapacityOffPage != r.CapacityBase {
			t.Errorf("%d KB: ignore-off-page capacity (%d) != base capacity (%d)",
				r.ObjectKB, r.CapacityOffPage, r.CapacityBase)
		}
	}
}

func TestFragmentationExperiment(t *testing.T) {
	rows, _, err := Fragmentation(FragmentationOptions{HeapBytes: 8 << 20, Rounds: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ao, lifo := rows[0], rows[1]
	if ao.Policy != AddressOrdered || lifo.Policy != LIFO {
		t.Fatal("row order wrong")
	}
	if ao.LargestFreeSpan < lifo.LargestFreeSpan {
		t.Errorf("address-ordered largest span (%d) below LIFO (%d)",
			ao.LargestFreeSpan, lifo.LargestFreeSpan)
	}
	if ao.MaxAllocatableKB < lifo.MaxAllocatableKB {
		t.Errorf("address-ordered max allocatable (%d) below LIFO (%d)",
			ao.MaxAllocatableKB, lifo.MaxAllocatableKB)
	}
}

func TestDualRunExperiment(t *testing.T) {
	res, tab, err := DualRun(DualRunOptions{Lists: 40, NodesPerList: 800, FalseRoots: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleRunRetained == 0 {
		t.Fatal("single run retained nothing; pollution ineffective")
	}
	if res.DualRunRetained != 0 {
		t.Errorf("dual-run certification left %d lists", res.DualRunRetained)
	}
	if res.CandidatesRejected == 0 {
		t.Error("no candidates rejected")
	}
	if !strings.Contains(tab.String(), "Footnote 4") {
		t.Error("table title missing")
	}
}

func TestTable1Small(t *testing.T) {
	if testing.Short() {
		t.Skip("full program-T runs")
	}
	// One cheap profile, one seed: exercises the full Table1 machinery.
	rows, tab, err := Table1(Table1Options{
		Seeds:    1,
		Profiles: []Profile{SPARCDynamic(false)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.NoBlacklisting.Mean <= r.Blacklisting.Mean {
		t.Errorf("blacklisting did not reduce retention: %v vs %v",
			r.NoBlacklisting.Mean, r.Blacklisting.Mean)
	}
	if !strings.Contains(tab.String(), "SPARC(dynamic)") {
		t.Error("table content missing")
	}
}

func TestGenerationalCeilingExperiment(t *testing.T) {
	rows, tab, err := GenerationalCeiling(GenerationalOptions{
		Iterations: 150, BatchCells: 100, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	none, cheap, eager := rows[0], rows[1], rows[2]
	if none.Clear != ClearNone || eager.Clear != ClearEager {
		t.Fatal("row order wrong")
	}
	// All configurations retain the same truly-live set.
	if none.TrueLive != cheap.TrueLive || cheap.TrueLive != eager.TrueLive {
		t.Fatalf("true-live differs: %d/%d/%d", none.TrueLive, cheap.TrueLive, eager.TrueLive)
	}
	// The ceiling: without clearing, minors tenure far more garbage.
	if none.GarbageTenured < 4*eager.GarbageTenured {
		t.Errorf("no-clearing (%d) should tenure far more than eager (%d)",
			none.GarbageTenured, eager.GarbageTenured)
	}
	if cheap.GarbageTenured > none.GarbageTenured {
		t.Errorf("cheap (%d) should not exceed none (%d)",
			cheap.GarbageTenured, none.GarbageTenured)
	}
	if !strings.Contains(tab.String(), "generational") {
		t.Error("table title missing")
	}
}

func TestHeapPlacementExperiment(t *testing.T) {
	rows, _, err := HeapPlacement(HeapPlacementOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	low, float, ascii, high := rows[0], rows[1], rows[2], rows[3]
	// Each colliding placement retains something; severity ordering
	// integers > floats > ascii; the recommended placement is immune.
	if low.Misidentified == 0 || float.Misidentified == 0 {
		t.Error("colliding placements retained nothing")
	}
	if !(low.Misidentified > float.Misidentified && float.Misidentified > ascii.Misidentified) {
		t.Errorf("severity ordering wrong: %d / %d / %d",
			low.Misidentified, float.Misidentified, ascii.Misidentified)
	}
	if high.Misidentified != 0 {
		t.Errorf("recommended placement retained %d", high.Misidentified)
	}
}

func TestAtomicDataExperiment(t *testing.T) {
	rows, _, err := AtomicData(AtomicDataOptions{
		Bitmaps: 4, BitmapBytes: 64 * 1024, DeadCells: 10000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ordinary, atomic := rows[0], rows[1]
	if ordinary.DeadRetained < 5000 {
		t.Errorf("scanned bitmaps retained only %d dead cells", ordinary.DeadRetained)
	}
	if atomic.DeadRetained != 0 {
		t.Errorf("atomic bitmaps retained %d dead cells", atomic.DeadRetained)
	}
	if atomic.FieldsScanned != 0 {
		t.Errorf("atomic bitmaps were scanned: %d words", atomic.FieldsScanned)
	}
	if ordinary.FieldsScanned == 0 {
		t.Error("ordinary bitmaps were not scanned")
	}
}

func TestDegreesOfConservatismExperiment(t *testing.T) {
	rows, _, err := DegreesOfConservatism(ConservatismOptions{
		Nodes: 8000, DeadCells: 8000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cons, typed := rows[0], rows[1]
	if typed.DeadRetained != 0 {
		t.Errorf("typed heap retained %d dead objects", typed.DeadRetained)
	}
	if cons.DeadRetained < 50 {
		t.Errorf("conservative heap retained only %d dead objects", cons.DeadRetained)
	}
	// Typed scanning examines roughly half the words (pointer field
	// only) of the conservative scan of live nodes — and none of the
	// falsely retained garbage.
	if typed.FieldsScanned >= cons.FieldsScanned {
		t.Errorf("typed scan (%d words) not cheaper than conservative (%d)",
			typed.FieldsScanned, cons.FieldsScanned)
	}
	// Both retain the same live structure.
	if typed.LiveObjects >= cons.LiveObjects {
		t.Errorf("conservative live (%d) should exceed typed live (%d) via false retention",
			cons.LiveObjects, typed.LiveObjects)
	}
}

func TestPausesExperiment(t *testing.T) {
	rows, tab, err := Pauses(PausesOptions{LiveObjects: 150000, Churn: 200000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stw, inc := rows[0], rows[1]
	// Every mode must retain the long-lived structure and actually
	// collect; these are the correctness claims. The pause *ordering*
	// is asserted only when the stop-the-world pause is large enough to
	// stand clear of scheduler noise (wall-clock tests are otherwise
	// flaky); the full-scale numbers live in EXPERIMENTS.md.
	for _, r := range rows {
		if r.FinalLiveObj < 150000 {
			t.Errorf("%s lost live data: %d", r.Mode, r.FinalLiveObj)
		}
		if r.Collections == 0 {
			t.Errorf("%s never collected", r.Mode)
		}
	}
	if stw.MaxPause > 4*time.Millisecond && inc.MaxPause*2 >= stw.MaxPause {
		t.Errorf("incremental worst pause %v not well below stop-the-world %v",
			inc.MaxPause, stw.MaxPause)
	}
	if !strings.Contains(tab.String(), "stop-the-world") {
		t.Error("table content missing")
	}
}

func TestPublicInspection(t *testing.T) {
	w, err := NewWorld(Config{
		InitialHeapBytes: 64 * 1024,
		ReserveHeapBytes: 1 << 20,
		Blacklisting:     BlacklistDense,
		GCDivisor:        -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Allocate(2, false); err != nil {
		t.Fatal(err)
	}
	st := w.Collect()
	if !strings.Contains(HeapMap(w, 16), "0x") {
		t.Error("HeapMap missing content")
	}
	if !strings.Contains(Summary(w), "collections: 1") {
		t.Error("Summary missing content")
	}
	if !strings.Contains(TraceLine(1, st), "gc 1: full") {
		t.Error("TraceLine missing content")
	}
}

func TestOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("several full program-T runs")
	}
	res, tab, err := Overhead(1)
	if err != nil {
		t.Fatal(err)
	}
	// Blacklisting eliminates nearly all retention...
	if res.RetainedWith > res.RetainedWithout/4 {
		t.Errorf("retention %.3f -> %.3f: blacklisting ineffective",
			res.RetainedWithout, res.RetainedWith)
	}
	// ...and the demand-grown heap pays (at most) a trivial space cost
	// for refusing blacklisted pages (observation 6).
	growth := float64(res.HeapWith-res.HeapWithout) / float64(res.HeapWithout)
	if growth > 0.05 {
		t.Errorf("blacklisted-page space cost %.1f%%", 100*growth)
	}
	if !strings.Contains(tab.String(), "8-byte allocation") {
		t.Error("table content missing")
	}
}

func TestObservation5Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("several full program-T runs")
	}
	results, tab, err := Observation5(Observation5Options{Seeds: 4, Rounds: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Skip("no seed produced residual retention (all 0% rows)")
	}
	for _, r := range results {
		if r.RoundsToZero < 0 {
			t.Errorf("seed %d: %d lists still pinned after continued execution",
				r.Seed, r.RetainedByRound[len(r.RetainedByRound)-1])
		}
	}
	if !strings.Contains(tab.String(), "Observation 5") {
		t.Error("table title missing")
	}
}

func TestServeBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("three 32-tenant serving worlds")
	}
	res, tab, err := ServeBench(ServeBenchOptions{Tenants: 32, Requests: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d policy rows, want 3", len(res.Rows))
	}
	want := map[string]struct {
		allocated, denials, evictions, live uint64
	}{
		"fail":          {allocated: 32 * 16, denials: 32 * 8, live: 32 * 16},
		"collect-first": {allocated: 32 * 24, denials: 0},
		"evict":         {allocated: 32 * 16, evictions: 32, live: 0},
	}
	for _, r := range res.Rows {
		exp, ok := want[r.Policy]
		if !ok {
			t.Fatalf("unexpected policy row %q", r.Policy)
		}
		delete(want, r.Policy)
		if r.ObjectsAllocated != exp.allocated {
			t.Errorf("%s: allocated %d, want %d", r.Policy, r.ObjectsAllocated, exp.allocated)
		}
		if r.Denials != exp.denials {
			t.Errorf("%s: denials %d, want %d", r.Policy, r.Denials, exp.denials)
		}
		if r.Evictions != exp.evictions {
			t.Errorf("%s: evictions %d, want %d", r.Policy, r.Evictions, exp.evictions)
		}
		if r.Policy != "collect-first" && r.ObjectsLive != exp.live {
			t.Errorf("%s: live %d, want %d", r.Policy, r.ObjectsLive, exp.live)
		}
		if r.FairnessSpread != 0 {
			t.Errorf("%s: fairness spread %d, want 0", r.Policy, r.FairnessSpread)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing policy rows: %v", want)
	}
	if !strings.Contains(tab.String(), "Multi-tenant serving") {
		t.Error("table title missing")
	}
}
