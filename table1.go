package repro

import (
	"fmt"
	"sync"

	"repro/internal/platform"
	"repro/internal/stats"
)

// Table1Options configures the table-1 reproduction (experiment E1 in
// DESIGN.md).
type Table1Options struct {
	// Seeds is how many seeds each cell is run with (default 3); the
	// result is reported as a min-max range like the paper's.
	Seeds int
	// Parallel bounds concurrent runs (default 8). Runs are in
	// independent worlds, so parallelism only affects wall time.
	Parallel int
	// Profiles defaults to platform.Table1Profiles().
	Profiles []Profile
}

// Table1Row is one row of the reproduced table.
type Table1Row struct {
	Machine        string
	Optimized      bool
	NoBlacklisting stats.Range // retained fraction
	Blacklisting   stats.Range
}

// Table1 reruns program T under every table-1 configuration and returns
// the reproduced rows plus a formatted table: "storage retention with
// and without blacklisting".
func Table1(opt Table1Options) ([]Table1Row, *stats.Table, error) {
	if opt.Seeds <= 0 {
		opt.Seeds = 3
	}
	if opt.Parallel <= 0 {
		opt.Parallel = 8
	}
	profiles := opt.Profiles
	if profiles == nil {
		profiles = platform.Table1Profiles()
	}

	type cellKey struct {
		row       int
		blacklist bool
	}
	results := make(map[cellKey][]float64)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Parallel)
	for i, p := range profiles {
		for _, bl := range []bool{false, true} {
			for s := 0; s < opt.Seeds; s++ {
				wg.Add(1)
				go func(i int, p Profile, bl bool, seed uint64) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					f, err := platform.RunCell(p, bl, seed)
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						if firstErr == nil {
							firstErr = fmt.Errorf("%s (blacklist=%v): %w", p.Name, bl, err)
						}
						return
					}
					k := cellKey{i, bl}
					results[k] = append(results[k], f)
				}(i, p, bl, uint64(s)+1)
			}
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	rows := make([]Table1Row, len(profiles))
	tab := stats.NewTable("Table 1: storage retention with and without blacklisting",
		"Machine", "Optimized?", "No Blacklisting", "Blacklisting")
	for i, p := range profiles {
		rows[i] = Table1Row{
			Machine:        p.Name,
			Optimized:      p.Optimized,
			NoBlacklisting: stats.NewRange(results[cellKey{i, false}]),
			Blacklisting:   stats.NewRange(results[cellKey{i, true}]),
		}
		optStr := "no"
		if p.Optimized {
			optStr = "yes"
		}
		if p.Name == "PCR" {
			optStr = "mixed"
		}
		tab.Add(p.Name, optStr, rows[i].NoBlacklisting.PctString(), rows[i].Blacklisting.PctString())
	}
	return rows, tab, nil
}
