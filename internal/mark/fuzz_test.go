package mark

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/blacklist"
	"repro/internal/mem"
)

// FuzzMarkValue throws arbitrary words at the marker over a mixed heap
// (small, large, atomic, typed, freed objects) and checks that marking
// never panics, never marks a non-object, and is idempotent.
func FuzzMarkValue(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0x400000))
	f.Add(uint32(0x400001))
	f.Add(uint32(0x4FFFFF))
	f.Add(uint32(0xFFFFFFFF))
	f.Add(uint32(0x400000 + 4096))

	space := mem.NewAddressSpace()
	bl, err := blacklist.NewDense(0x400000, 0x400000+(1<<20), mem.PageBytes)
	if err != nil {
		f.Fatal(err)
	}
	heap, err := alloc.New(space, alloc.Config{
		HeapBase:     0x400000,
		InitialBytes: 256 * 1024,
		ReserveBytes: 1 << 20,
		Blacklist:    bl,
	})
	if err != nil {
		f.Fatal(err)
	}
	var objs []mem.Addr
	for i := 0; i < 64; i++ {
		p, err := heap.Alloc(1+i%7, i%3 == 0)
		if err != nil {
			f.Fatal(err)
		}
		objs = append(objs, p)
	}
	big, err := heap.Alloc(2*mem.PageWords, false)
	if err != nil {
		f.Fatal(err)
	}
	objs = append(objs, big)
	id, err := heap.RegisterDescriptor([]bool{true, false})
	if err != nil {
		f.Fatal(err)
	}
	tp, err := heap.AllocTyped(id)
	if err != nil {
		f.Fatal(err)
	}
	objs = append(objs, tp)
	// A freed slot: candidates hitting it must be rejected.
	freed := objs[3]
	if err := heap.Free(freed); err != nil {
		f.Fatal(err)
	}

	m := New(heap, Config{Policy: PointerInterior, Blacklist: bl})
	f.Fuzz(func(t *testing.T, v uint32) {
		m.MarkValue(mem.Word(v))
		m.Drain()
		if heap.IsAllocated(freed) {
			t.Fatal("freed slot resurrected")
		}
		// Idempotence: a second pass adds no marks.
		before, _ := heap.CountMarked()
		m.MarkValue(mem.Word(v))
		m.Drain()
		after, _ := heap.CountMarked()
		if after != before {
			t.Fatalf("marking not idempotent: %d -> %d", before, after)
		}
		heap.ClearMarks()
		m.Reset()
	})
}

// FuzzMarkWords scans arbitrary byte strings as root areas under the
// unaligned policy, checking for panics and for the candidate-count
// arithmetic.
func FuzzMarkWords(f *testing.F) {
	f.Add([]byte{0, 0, 64, 0, 0, 0, 0, 16})
	f.Add([]byte("hello world, this is static data"))

	space := mem.NewAddressSpace()
	heap, err := alloc.New(space, alloc.Config{
		HeapBase:     0x400000,
		InitialBytes: 64 * 1024,
		ReserveBytes: 256 * 1024,
	})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := heap.Alloc(2, false); err != nil {
			f.Fatal(err)
		}
	}
	m := New(heap, Config{Policy: PointerInterior, Alignment: AnyByteOffset})
	f.Fuzz(func(t *testing.T, raw []byte) {
		words := make([]mem.Word, len(raw)/4)
		for i := range words {
			words[i] = mem.Word(uint32(raw[4*i])<<24 | uint32(raw[4*i+1])<<16 |
				uint32(raw[4*i+2])<<8 | uint32(raw[4*i+3]))
		}
		m.MarkWords(words)
		m.Drain()
		st := m.Stats()
		want := uint64(len(words))
		if len(words) > 1 {
			want += uint64(3 * (len(words) - 1))
		}
		if st.Candidates < want {
			t.Fatalf("candidates %d < expected minimum %d", st.Candidates, want)
		}
		heap.ClearMarks()
		m.Reset()
	})
}
