// Package core assembles the conservative collector: the simulated
// address space, the mutator machine, the block allocator, the marker
// with blacklisting, and the collection policy.
//
// A World is the analogue of one process image in the paper: static
// data segments, a mutator stack and register file, and a collected
// heap. Collection scans registers, the live stack, and every root
// segment conservatively, then scans reached heap objects
// conservatively (except pointer-free "atomic" objects), then sweeps.
//
// The collection-ordering technique of the paper's section 3 is
// honoured: "we ensure that garbage collections take place at regular
// intervals, with at least one (normally very fast) garbage collection
// occurring just after system start up before any allocation has taken
// place" — platform profiles call Collect immediately after
// constructing and polluting a world, so false references from static
// data are blacklisted before they can pin anything.
package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/blacklist"
	"repro/internal/mark"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// BlacklistMode selects the blacklist representation.
type BlacklistMode int

// Blacklist modes.
const (
	// BlacklistOff disables blacklisting (the paper's comparison rows).
	BlacklistOff BlacklistMode = iota
	// BlacklistDense uses the bit-array form ("implemented as a bit
	// array, indexed by page numbers").
	BlacklistDense
	// BlacklistHashed uses the hash-table form recommended "if the heap
	// is discontinuous".
	BlacklistHashed
)

func (m BlacklistMode) String() string {
	switch m {
	case BlacklistDense:
		return "dense"
	case BlacklistHashed:
		return "hashed"
	default:
		return "off"
	}
}

// Config parameterises a World. The zero value is completed by
// reasonable defaults (see withDefaults).
type Config struct {
	// HeapBase, InitialHeapBytes, ReserveHeapBytes and ExpandIncrement
	// configure the heap geometry (see alloc.Config).
	HeapBase         mem.Addr
	InitialHeapBytes int
	ReserveHeapBytes int
	ExpandIncrement  int

	// Pointer and Alignment select the conservativism operating point.
	Pointer   mark.PointerPolicy
	Alignment mark.AlignPolicy

	// Blacklisting selects the blacklist mode; Granule its granularity
	// in bytes (default one page); HashBuckets the hashed table size.
	Blacklisting BlacklistMode
	Granule      uint32
	HashBuckets  int
	// ExpireAge removes blacklist entries not re-observed within this
	// many collections; 0 keeps them forever.
	ExpireAge uint32

	// AllowAtomicOnBlacklisted and AtomicBlacklistMaxWords, FreeBlocks,
	// SkipPageBoundarySlot pass through to the allocator.
	AllowAtomicOnBlacklisted bool
	AtomicBlacklistMaxWords  int
	FreeBlocks               alloc.FreeBlockPolicy
	SkipPageBoundarySlot     bool
	// DiscontiguousGrowth lets the heap grow by mapping extents at
	// non-adjacent addresses once the first reservation is spent — the
	// paper's second collector, whose discontinuous heap is why "it
	// makes sense to implement [the blacklist] as a hash table". It
	// therefore requires BlacklistHashed (or BlacklistOff): a dense
	// list covers only the first extent.
	DiscontiguousGrowth bool

	// GCDivisor triggers a collection when allocation since the last
	// one exceeds heapSize/GCDivisor (default 2; 0 disables automatic
	// collection).
	GCDivisor int
	// FreeSpaceDivisor expands the heap after a collection that leaves
	// less than heapSize/FreeSpaceDivisor free (default 4), so that a
	// mostly-live heap does not thrash.
	FreeSpaceDivisor int

	// AllocatorResidue simulates the allocator's own call frames: each
	// allocation briefly pushes a frame holding the fresh pointer and
	// pops it, leaving the pointer as stack residue — "often the
	// initial pointer value that is then accidentally preserved is
	// stored by the allocator or collector itself" (section 3.1).
	AllocatorResidue bool
	// AllocatorSelfClean makes that frame clear itself before exit,
	// the paper's countermeasure.
	AllocatorSelfClean bool

	// DesperateFallback lets an allocation use blacklisted pages when
	// collection and expansion have both failed, instead of reporting
	// exhaustion — the real collector's behaviour (it warns "needed to
	// allocate blacklisted block" and proceeds).
	DesperateFallback bool

	// Generational enables sticky-mark-bit minor collections in the
	// style of the paper's reference [13] (Demers et al., POPL 1990):
	// marked objects are "old" and are only rescanned when their page
	// was written since the last collection; unmarked objects are
	// "young" and are collected by cheap minor cycles. The paper's
	// section 3.1 observes that stray stack pointers place "a ceiling
	// on the effectiveness" of exactly this scheme — experiment E12.
	Generational bool
	// MinorDivisor triggers a minor collection when allocation since
	// the last collection exceeds heapSize/MinorDivisor (default 8).
	MinorDivisor int
	// FullEvery makes every n-th collection a full one in generational
	// mode (default 8).
	FullEvery int

	// Incremental enables incremental cycles (see incremental.go):
	// marking proceeds in bounded steps piggybacked on allocations and
	// only a short finale stops the world. Mutually exclusive with
	// Generational.
	Incremental bool
	// MarkQuantum bounds the marking work per allocation during an
	// active incremental cycle, in objects (default 64). Concurrent
	// cycles use it twice over: as the background driver's per-chunk
	// scan budget, and as the allocation-proportional assist each
	// slow-path allocation contributes to an in-flight cycle, which
	// keeps marking paced with allocation even when the driver
	// goroutine is starved of processor time. The cached fast path
	// never assists.
	MarkQuantum int

	// ConcurrentMark enables mostly-concurrent cycles (see
	// concurrent.go): a cycle opens with a short snapshot pause that
	// scans the roots and resumes the mutators, marking then runs on a
	// background goroutine (parallel across MarkWorkers when the width
	// allows) while mutators keep allocating, and a bounded final pause
	// rescans write-barrier-dirtied blocks, re-scans the roots, drains,
	// and sweeps. Composes with Generational (minor cycles run
	// concurrently too), LazySweep and LineAlloc. Mutually exclusive
	// with Incremental, which is the single-threaded ancestor of the
	// same state machine.
	ConcurrentMark bool

	// ConcMarkWorkers sets how many detached background goroutines mark
	// during a concurrent cycle (see detached.go). Values above 1 pull
	// from the shared gray queue without holding the world lock: heap
	// words are then accessed atomically, mark bits are CAS, and heap
	// structure is guarded by a reader-writer lock only the allocator's
	// mutations take exclusively. 1 pins the lock-chunked single-driver
	// cycle (the pre-detached code path, unchanged). 0 — the default —
	// is adaptive via AutoMarkWorkers, so small heaps and single-core
	// schedulers keep the cheaper lock-chunked form. Only meaningful
	// with ConcurrentMark.
	ConcMarkWorkers int

	// ConcurrentSweep moves deferred sweep work onto a background
	// goroutine after each cycle's finale (implies LazySweep): blocks
	// are classified a chunk at a time under the world lock while the
	// mutators run, with the allocator's demand drain still covering
	// any block the sweeper has not reached — allocation addresses and
	// reclamation totals stay bit-identical to the eager sweep's.
	ConcurrentSweep bool

	// MarkWorkers sets the number of mark-phase workers. Values above 1
	// shard the stop-the-world mark phase across that many goroutines
	// with CAS-set mark bits and work stealing (see internal/mark,
	// parallel.go); the marked object set, byte counts and blacklisted
	// pages are identical to a serial cycle's. 1 forces serial marking
	// (the original code path, unchanged). 0 — the default — is
	// adaptive: each mark phase picks a count from runtime.GOMAXPROCS
	// and the live heap size via AutoMarkWorkers, so small heaps mark
	// serially (coordination would dominate) and large heaps on big
	// machines parallelise without configuration. Incremental cycles
	// always mark serially: their bounded steps run inside the mutator.
	MarkWorkers int

	// LazySweep moves sweep work out of the stop-the-world pause: after
	// marking, blocks are classified in O(1) each from their mark
	// summaries — empty blocks released at the barrier, fully-live
	// blocks left untouched, mixed blocks queued — and the allocator
	// sweeps queued blocks on demand as it refills free lists, finishing
	// any remainder before the next cycle's mark phase. Reclamation
	// totals (CollectionStats.Sweep) are identical to the eager sweep's;
	// only the timing of the per-slot work moves. Default off: the
	// original eager sweep, unchanged.
	LazySweep bool

	// LineAlloc switches small untyped allocation to the line-structured
	// bump profile (see alloc.Config.LineAlloc and alloc/lines.go):
	// mutator caches hold {cursor, limit} bump spans carved over runs of
	// wholly-free lines instead of slot runs, so the allocation fast
	// path is a pointer increment with no heap access, and the sweep
	// classifies blocks by line occupancy instead of threading free
	// lists. Reclamation totals are identical to the free-list profile;
	// on line-aligned size classes allocation addresses are too (the
	// differential tests assert both). Composes with every cycle shape,
	// including incremental and concurrent cycles: outstanding central
	// spans are flushed at each cycle's start and finale, and returned
	// span slots drop any conservative mark they picked up mid-cycle.
	// Default off.
	LineAlloc bool
}

func (c Config) withDefaults() Config {
	if c.HeapBase == 0 {
		c.HeapBase = 0x400000
	}
	if c.InitialHeapBytes == 0 {
		c.InitialHeapBytes = 1 << 20
	}
	if c.ReserveHeapBytes == 0 {
		c.ReserveHeapBytes = 64 << 20
	}
	if c.Granule == 0 {
		c.Granule = mem.PageBytes
	}
	if c.HashBuckets == 0 {
		c.HashBuckets = 1 << 14
	}
	if c.GCDivisor == 0 {
		c.GCDivisor = 2
	}
	if c.FreeSpaceDivisor == 0 {
		c.FreeSpaceDivisor = 4
	}
	if c.MinorDivisor == 0 {
		c.MinorDivisor = 8
	}
	if c.FullEvery == 0 {
		c.FullEvery = 8
	}
	if c.MarkQuantum == 0 {
		c.MarkQuantum = 64
	}
	if c.ConcurrentSweep {
		// The background sweeper classifies the lazy sweep's deferred
		// blocks; without the deferral there is nothing to sweep outside
		// the pause.
		c.LazySweep = true
	}
	// MarkWorkers 0 stays 0: the adaptive per-phase selection.
	return c
}

// AutoMarkWorkers is the adaptive mark-worker selection used when
// Config.MarkWorkers is 0: given the scheduler's processor count and
// the live heap size (bytes live after the previous sweep), it returns
// how many workers the next mark phase should use. Small heaps mark
// serially — sharding a sub-8 MiB mark loses more to worker startup
// and stealing than it gains — and larger heaps scale in powers of two
// up to 8 workers, never beyond the processor count. The selection
// table is pinned by TestAutoMarkWorkersTable.
func AutoMarkWorkers(procs int, liveBytes uint64) int {
	if procs <= 1 {
		return 1
	}
	atMost := func(n int) int {
		if n > procs {
			return procs
		}
		return n
	}
	switch {
	case liveBytes < 8<<20:
		return 1
	case liveBytes < 32<<20:
		return atMost(2)
	case liveBytes < 128<<20:
		return atMost(4)
	default:
		return atMost(8)
	}
}

// RootSource is the machine state the collector scans in addition to
// the root segments: a register file and a live stack.
// internal/machine.Machine implements it. A world scans the source
// attached with SetMutator plus one per Mutator handle (see
// mutator.go).
type RootSource interface {
	// Registers returns the full register file.
	Registers() []mem.Word
	// LiveStack returns the live stack words [SP, stack top) and the
	// address of the first word.
	LiveStack() ([]mem.Word, mem.Addr)
	// OnAllocate is invoked on every allocation (stack-clearing hook).
	OnAllocate()
}

// residueSimulator is implemented by mutators that can simulate the
// allocator's own transient stack frames.
type residueSimulator interface {
	SimulateCallResidue(clean bool, vals ...mem.Word)
}

// CollectionStats describes one collection.
type CollectionStats struct {
	Mark      mark.Stats
	Sweep     alloc.SweepResult
	Blacklist blacklist.Stats // cumulative at end of cycle
	Duration  time.Duration
	HeapBytes int
	// Minor is true for generational minor collections.
	Minor bool
	// DirtyBlocks is how many heap blocks the write barrier recorded
	// (minor collections only).
	DirtyBlocks int
	// Promoted counts objects newly marked by a minor collection: young
	// survivors promoted to the old generation.
	Promoted uint64
	// Incremental is true when the cycle ran incrementally; Steps is
	// how many bounded marking steps preceded the finale.
	Incremental bool
	Steps       int
	// Concurrent is true when the cycle ran mostly-concurrently:
	// a snapshot pause, background marking, a bounded final pause.
	// RescanPasses is how many concurrent dirty-block rescan passes ran
	// before the finale; FinalDirtyBlocks how many dirty blocks the
	// final pause itself rescanned; MarkedConcurrent how many objects
	// were marked outside the two pauses (the >90% acceptance metric).
	Concurrent       bool
	RescanPasses     int
	FinalDirtyBlocks int
	MarkedConcurrent uint64
	// ConcWorkers is how many detached background mark workers the
	// cycle ran (0 for a lock-chunked cycle); ConcPhaseNs is the
	// wall-clock length of the concurrent marking phase between the
	// snapshot and final pauses.
	ConcWorkers int
	ConcPhaseNs int64
	// PauseSnapshotNs and PauseFinalNs are the concurrent cycle's two
	// stop-the-world windows; Duration is their sum for such cycles.
	PauseSnapshotNs int64
	PauseFinalNs    int64
	// PauseMarkNs is the part of the pause spent in the mark phase
	// (for incremental cycles: the finale's rescan and drain only).
	PauseMarkNs int64
	// PauseSweepNs is the part of the pause spent in the sweep phase:
	// the O(blocks) classification barrier under LazySweep, the full
	// per-slot heap walk otherwise.
	PauseSweepNs int64
	// PauseStopNs is the time spent stopping registered Mutator
	// handles before the cycle: parking each at its next allocation
	// point and flushing its caches back to the free lists. Zero when
	// no Mutator handles exist (Duration covers the pause from the
	// point the world is stopped).
	PauseStopNs int64
	// SweepDeferredBlocks is how many blocks this cycle's sweep left
	// pending for lazy sweeping (always 0 with LazySweep off).
	SweepDeferredBlocks int
	// Provenance is true when the cycle recorded retention provenance
	// (World.EnableProvenance); ProvenanceRecords is how many
	// first-marking parent records its mark phase captured.
	Provenance        bool
	ProvenanceRecords uint64
}

// World is one simulated process image under garbage collection.
type World struct {
	Space     *mem.AddressSpace
	Heap      *alloc.Allocator
	Marker    *mark.Marker
	Blacklist blacklist.List

	// mu is the central lock: it guards every collector structure —
	// the allocator, marker, blacklist, address space, and all the
	// fields below. Single-threaded use never contends on it. Mutator
	// handles (mutator.go) take it only on their slow path; their
	// common allocation is a pointer bump under the handle's own lock.
	// Lock order: mu strictly before any Mutator.mu.
	mu sync.Mutex
	// muts holds every Mutator handle ever created on this world, in
	// creation order. stopMutatorsLocked parks them all (locking each
	// handle in order) before any phase that marks, sweeps, or
	// reclassifies blocks.
	muts []*Mutator
	// lastStopNs is the duration of the most recent safepoint stop,
	// recorded into the next cycle's CollectionStats.
	lastStopNs int64

	cfg Config
	mut RootSource
	// par is the cached parallel marker: non-nil once any mark phase
	// has run with more than one worker. parWorkers is its worker
	// count; with cfg.MarkWorkers == 0 (adaptive) the marker is
	// rebuilt whenever AutoMarkWorkers picks a different count.
	// lastMarkWorkers is what the most recent mark phase actually used
	// (the mark_workers gauge).
	par             *mark.Parallel
	parWorkers      int
	lastMarkWorkers int
	// mcfg is the mark configuration NewWorld resolved; kept so the
	// adaptive path can build parallel markers after construction.
	mcfg            mark.Config
	collections     int
	minorsSinceFull int
	incActive       bool
	incSteps        int
	// Concurrent-cycle state (concurrent.go). concActive marks a cycle
	// in flight; concMinor its generational kind; concPar whether it
	// marks through w.par (width was > 1 at the snapshot); concGen is a
	// staleness counter so a background driver from a finished cycle
	// exits instead of driving the next one; concPasses counts the
	// concurrent rescan passes run so far; concDirty is the serial
	// width's staged dirty-block rescan queue; concDirtyBlocks the
	// minor snapshot's remembered-set size; concSnapMarked the objects
	// marked inside the snapshot pause; concStart/concSnapNs anchor the
	// cycle's pause accounting; concStealsStart snapshots the parallel
	// marker's cumulative steal count at the cycle start.
	concActive      bool
	concMinor       bool
	concPar         bool
	concGen         uint64
	concPasses      int
	concDirty       []int
	concDirtyBlocks int
	concSnapMarked  uint64
	concStart       time.Time
	concSnapNs      int64
	concStealsStart uint64
	// Detached-marking state (detached.go). heapMu guards heap
	// *structure* against the detached workers: workers hold the read
	// side per chunk, allocator mutations take the write side through
	// lockHeapLocked; lock order is mu strictly before heapMu.
	// concDetached marks a detached phase in flight (mutated under mu);
	// concGenA atomically mirrors concGen for the workers' staleness
	// checks (0 = retired); concWorkers is the cycle's detached worker
	// count. The pacer fields implement the rate-based assist:
	// pacerCredit is marked bytes banked (negative = debt), pacerRatio
	// converts allocated bytes to owed mark bytes, pacerLastAlloc is
	// the allocation cursor of the pacer's last look.
	heapMu         sync.RWMutex
	concDetached   bool
	concGenA       atomic.Uint64
	concWorkers    int
	pacerCredit    atomic.Int64
	pacerRatio     float64
	pacerLastAlloc uint64
	last           CollectionStats
	finalizable    map[mem.Addr]struct{}
	reclaimed      []mem.Addr
	hook           func(CollectionStats)
	// Multi-tenant serving state (tenant.go): tenants in creation order
	// (a Tenant's id is its 1-based index here); ownerCreditSet records
	// that the allocator's owner-credit callback was installed (done
	// lazily by the first budgeted tenant, so untenanted worlds keep a
	// nil ownership table).
	tenants        []*Tenant
	ownerCreditSet bool

	// Observability (see DESIGN.md section 5c). tracer is nil unless
	// SetTracer/EnableTracing installed one: every emit site nil-checks,
	// so un-traced collections pay one compare per site and allocate
	// nothing. gctrace, when set, receives one text line per cycle.
	// met is the always-on metrics view; epoch anchors gctrace
	// timestamps; prevSteals turns the parallel marker's cumulative
	// steal count into per-cycle deltas.
	tracer     *trace.Recorder
	gctrace    io.Writer
	met        worldMetrics
	epoch      time.Time
	prevSteals uint64

	// prov is the retention-provenance state (provenance.go): enabled
	// turns recording on for subsequent collections, records maps each
	// marked object to its first-marking parent as of the cycle in
	// provCycle (rebuilt by full cycles, merged by minors), valid says
	// the map describes a completed cycle.
	prov struct {
		enabled bool
		valid   bool
		cycle   int
		records map[mem.Addr]mark.ParentRecord
	}

	// watch is the online retention watcher (watch.go), nil unless
	// StartRetentionWatch installed one: the collection barrier
	// nil-checks it, so an unwatched collection pays one compare and
	// allocates nothing (asserted by TestCollectZeroAllocsUnwatched).
	watch *retWatch
}

// worldMetrics is the world's registry plus direct handles to every
// metric it maintains, so the per-cycle recording path is plain atomic
// adds with no map lookups (and no allocation).
type worldMetrics struct {
	reg *metrics.Registry

	// Cycle counters, accumulated from each CollectionStats as it is
	// produced: the registry is a running sum of the per-cycle view
	// (asserted by TestMetricsMatchCollectionStats).
	cycles, minorCycles, incCycles *metrics.Counter
	allocTriggered, incSteps       *metrics.Counter
	objectsMarked, bytesMarked     *metrics.Counter
	objectsSwept, bytesSwept       *metrics.Counter
	pauseNs, markPauseNs, sweepNs  *metrics.Counter
	markSteals                     *metrics.Counter

	// Concurrent-mark counters: cycles run concurrently, the summed
	// bounded final pauses, blocks newly dirtied by the write barrier,
	// and queue steals by the background bounded runs.
	concCycles, finalPauseNs     *metrics.Counter
	barrierDirty, concMarkSteals *metrics.Counter

	// Pacer and background-sweep observability: time mutators spent in
	// slow-path assists, the pacer's current credit (negative = debt),
	// and blocks the background sweeper classified outside any pause.
	pacerAssistNs   *metrics.Counter
	pacerCreditB    *metrics.Gauge
	concSweepBlocks *metrics.Counter

	// Safepoint and mutator-cache counters, maintained at the stop and
	// refill sites rather than per cycle (a safepoint can also close a
	// MarkOnly measurement, and refills happen between cycles).
	stwStops, stwPauseNs           *metrics.Counter
	cacheRefills, cacheRefillSlots *metrics.Counter
	cacheFlushSlots                *metrics.Counter
	// Bump-span refill counters (Config.LineAlloc), the line profile's
	// analogue of the cache refill counters above.
	spanRefills, spanRefillSlots *metrics.Counter

	// Provenance counters: cycles that recorded, and the first-mark
	// records they captured (running sums of CollectionStats.Provenance
	// and .ProvenanceRecords, like the cycle counters above).
	provCycles, provRecords *metrics.Counter

	// Retention-watch observability (watch.go): collections the watcher
	// sampled, alerts raised and their summed windowed growth, alerts
	// dropped by a slow subscriber, and the current positive-growth
	// suspect count. leakDiffHist is the snapshot-diff cost
	// distribution (build totals + trend update, nanoseconds).
	leakWatched, leakAlerts *metrics.Counter
	leakAlertBytes          *metrics.Counter
	leakDropped             *metrics.Counter
	leakSuspects            *metrics.Gauge
	leakDiffHist            *metrics.Histogram

	// Multi-tenant serving (tenant.go): registered tenants, the bytes
	// currently charged against their budgets, allocations denied over
	// budget, and wholesale evictions.
	tenants, tenantLiveBytes       *metrics.Gauge
	budgetDenials, tenantEvictions *metrics.Counter

	// Pause-time histograms (log₂ buckets, nanoseconds): the
	// distribution complement to the *_pause_ns running sums. Not part
	// of Snapshot; see Registry.Histogram. finalHist is the concurrent
	// cycles' bounded-final-pause distribution (the pausebench p99).
	markHist, sweepHist, stopHist *metrics.Histogram
	finalHist                     *metrics.Histogram

	// Level gauges, refreshed from the allocator and blacklist at each
	// cycle barrier and on Metrics()/MetricsSnapshot().
	heapBytes, liveBytes, liveObjects *metrics.Gauge
	pendingSweepBlocks, lazySweptBlk  *metrics.Gauge
	blacklistPages, blAdds, blHits    *metrics.Gauge
	bytesAllocated, objectsAllocated  *metrics.Gauge
	heapExpansions, desperateAllocs   *metrics.Gauge
	markWorkers, mutators             *metrics.Gauge
	// Line-heap utilization gauges (zero unless Config.LineAlloc):
	// wholly-free (carvable) lines, lines holding an allocated slot,
	// and the bytes stranded in partially-occupied lines — the
	// paper-style space-overhead view of bump allocation.
	lineLiveLines, lineFreeLines *metrics.Gauge
	lineWasteBytes               *metrics.Gauge
}

func newWorldMetrics() worldMetrics {
	reg := metrics.NewRegistry()
	return worldMetrics{
		reg:                reg,
		cycles:             reg.Counter("gc_cycles"),
		minorCycles:        reg.Counter("gc_minor_cycles"),
		incCycles:          reg.Counter("gc_incremental_cycles"),
		allocTriggered:     reg.Counter("gc_alloc_triggered"),
		incSteps:           reg.Counter("gc_incremental_steps"),
		objectsMarked:      reg.Counter("objects_marked"),
		bytesMarked:        reg.Counter("bytes_marked"),
		objectsSwept:       reg.Counter("objects_swept"),
		bytesSwept:         reg.Counter("bytes_swept"),
		pauseNs:            reg.Counter("pause_ns"),
		markPauseNs:        reg.Counter("mark_pause_ns"),
		sweepNs:            reg.Counter("sweep_pause_ns"),
		markSteals:         reg.Counter("mark_steals"),
		concCycles:         reg.Counter("gc_concurrent_cycles"),
		finalPauseNs:       reg.Counter("stw_final_pause_ns"),
		barrierDirty:       reg.Counter("barrier_dirty_blocks"),
		concMarkSteals:     reg.Counter("conc_mark_steals"),
		pacerAssistNs:      reg.Counter("pacer_assist_ns"),
		pacerCreditB:       reg.Gauge("pacer_credit_bytes"),
		concSweepBlocks:    reg.Counter("conc_sweep_blocks"),
		stwStops:           reg.Counter("stw_stops"),
		stwPauseNs:         reg.Counter("stw_pause_ns"),
		cacheRefills:       reg.Counter("cache_refills"),
		cacheRefillSlots:   reg.Counter("cache_refill_slots"),
		cacheFlushSlots:    reg.Counter("cache_flush_slots"),
		spanRefills:        reg.Counter("span_refills"),
		spanRefillSlots:    reg.Counter("span_refill_slots"),
		provCycles:         reg.Counter("provenance_cycles"),
		provRecords:        reg.Counter("provenance_records"),
		leakWatched:        reg.Counter("leak_watched_cycles"),
		leakAlerts:         reg.Counter("leak_alerts"),
		leakAlertBytes:     reg.Counter("leak_alerted_bytes"),
		leakDropped:        reg.Counter("leak_alerts_dropped"),
		leakSuspects:       reg.Gauge("leak_suspects"),
		tenants:            reg.Gauge("tenants"),
		tenantLiveBytes:    reg.Gauge("tenant_live_bytes"),
		budgetDenials:      reg.Counter("budget_denials"),
		tenantEvictions:    reg.Counter("tenant_evictions"),
		markHist:           reg.Histogram("mark_pause_ns_hist"),
		sweepHist:          reg.Histogram("sweep_pause_ns_hist"),
		stopHist:           reg.Histogram("stop_pause_ns_hist"),
		finalHist:          reg.Histogram("final_pause_ns_hist"),
		leakDiffHist:       reg.Histogram("leak_snapshot_diff_ns_hist"),
		heapBytes:          reg.Gauge("heap_bytes"),
		liveBytes:          reg.Gauge("live_bytes"),
		liveObjects:        reg.Gauge("live_objects"),
		pendingSweepBlocks: reg.Gauge("pending_sweep_blocks"),
		lazySweptBlk:       reg.Gauge("lazy_swept_blocks"),
		blacklistPages:     reg.Gauge("blacklist_pages"),
		blAdds:             reg.Gauge("blacklist_adds"),
		blHits:             reg.Gauge("blacklist_hits"),
		bytesAllocated:     reg.Gauge("bytes_allocated"),
		objectsAllocated:   reg.Gauge("objects_allocated"),
		heapExpansions:     reg.Gauge("heap_expansions"),
		desperateAllocs:    reg.Gauge("desperate_allocs"),
		markWorkers:        reg.Gauge("mark_workers"),
		mutators:           reg.Gauge("mutators"),
		lineLiveLines:      reg.Gauge("line_live_lines"),
		lineFreeLines:      reg.Gauge("line_free_lines"),
		lineWasteBytes:     reg.Gauge("line_waste_bytes"),
	}
}

// SetCollectionHook registers fn to be invoked after every collection
// (full, minor, or incremental finale) with its statistics; nil
// unregisters. The inspect package provides a gctrace-style formatter
// for the common logging case.
func (w *World) SetCollectionHook(fn func(CollectionStats)) { w.hook = fn }

// SetTracer attaches a structured event trace to the whole collection
// pipeline: the world's phase spans, the marker's blacklist additions
// and spills, the allocator's expansions and lazy sweep drains. nil
// detaches. Set it outside an active cycle.
func (w *World) SetTracer(r *trace.Recorder) {
	w.tracer = r
	w.Marker.SetTracer(r)
	if w.par != nil {
		w.par.SetTracer(r)
	}
	w.Heap.SetTracer(r)
	// The recorder's JSON dump carries this world's histogram
	// distributions (pause times, snapshot-diff costs) alongside the
	// events; when worlds share a recorder the last attach wins, same
	// as the events themselves.
	r.SetHistogramSource(w.met.reg.HistogramSnapshot)
}

// Tracer returns the attached trace recorder (nil when disabled).
func (w *World) Tracer() *trace.Recorder { return w.tracer }

// EnableTracing attaches a fresh recorder holding the last capacity
// events (trace.DefaultCapacity if capacity <= 0) and returns it.
func (w *World) EnableTracing(capacity int) *trace.Recorder {
	r := trace.New(capacity)
	w.SetTracer(r)
	return r
}

// SetGCTrace directs a one-line-per-cycle text trace to out (nil
// disables), in the spirit of the Go runtime's GODEBUG=gctrace=1:
//
//	gc 3 @0.412s full: 1.84ms pause (mark 1.72ms, sweep 0.06ms): 5000 live (40 KiB), 120 freed, heap 1024 KiB, 14 blacklisted
func (w *World) SetGCTrace(out io.Writer) { w.gctrace = out }

// Metrics returns the world's counter/gauge registry, with the level
// gauges freshly synchronised. The counters are running sums of every
// cycle's CollectionStats; the gauges mirror the allocator's and
// blacklist's current state.
func (w *World) Metrics() *metrics.Registry {
	w.mu.Lock()
	w.syncGauges()
	w.mu.Unlock()
	return w.met.reg
}

// MetricsSnapshot synchronises the gauges and returns every metric's
// current value in registration order.
func (w *World) MetricsSnapshot() []metrics.Sample {
	w.mu.Lock()
	w.syncGauges()
	w.mu.Unlock()
	return w.met.reg.Snapshot()
}

// syncGauges refreshes the level gauges from their owning subsystems.
// The allocator and blacklist reads are excluded against detached mark
// workers (whose chunks flush blacklist batches and bump mark
// summaries), hence the write-side hold.
func (w *World) syncGauges() {
	w.lockHeapLocked(func() { w.syncGaugesExcluded() })
}

func (w *World) syncGaugesExcluded() {
	st := w.Heap.Stats()
	bl := w.Blacklist.Stats()
	m := &w.met
	m.heapBytes.Set(int64(st.HeapBytes))
	m.liveBytes.Set(int64(st.BytesLive))
	m.liveObjects.Set(int64(st.ObjectsLive))
	m.pendingSweepBlocks.Set(int64(w.Heap.SweepPending()))
	m.lazySweptBlk.Set(int64(st.LazySweptBlocks))
	m.blacklistPages.Set(int64(w.Blacklist.Len()))
	m.blAdds.Set(int64(bl.Adds))
	m.blHits.Set(int64(bl.Hits))
	m.bytesAllocated.Set(int64(st.BytesAllocated))
	m.objectsAllocated.Set(int64(st.ObjectsAllocated))
	m.heapExpansions.Set(int64(st.Expansions))
	m.desperateAllocs.Set(int64(st.DesperateAllocs))
	m.markWorkers.Set(int64(w.lastMarkWorkers))
	m.pacerCreditB.Set(w.pacerCredit.Load())
	if w.cfg.LineAlloc {
		ls := w.Heap.LineStats()
		m.lineLiveLines.Set(int64(ls.LiveLines))
		m.lineFreeLines.Set(int64(ls.FreeLines))
		m.lineWasteBytes.Set(int64(ls.WasteBytes))
	}
	if len(w.tenants) > 0 {
		var live uint64
		for _, t := range w.tenants {
			live += t.live.Load()
		}
		m.tenantLiveBytes.Set(int64(live))
	}
}

// recordCycle folds one completed collection into the counters. Plain
// atomic adds on pre-registered metrics: no allocation, so an un-traced
// collection stays allocation-free.
func (w *World) recordCycle(st CollectionStats) {
	m := &w.met
	switch {
	case st.Concurrent:
		m.concCycles.Inc()
		m.finalPauseNs.Add(uint64(st.PauseFinalNs))
		m.finalHist.Record(uint64(st.PauseFinalNs))
	case st.Minor:
		m.minorCycles.Inc()
	case st.Incremental:
		m.incCycles.Inc()
		m.incSteps.Add(uint64(st.Steps))
	default:
		m.cycles.Inc()
	}
	m.objectsMarked.Add(st.Mark.ObjectsMarked)
	m.bytesMarked.Add(st.Mark.BytesMarked)
	m.objectsSwept.Add(st.Sweep.ObjectsFreed)
	m.bytesSwept.Add(st.Sweep.BytesFreed)
	m.pauseNs.Add(uint64(st.Duration.Nanoseconds()))
	m.markPauseNs.Add(uint64(st.PauseMarkNs))
	m.sweepNs.Add(uint64(st.PauseSweepNs))
	m.markHist.Record(uint64(st.PauseMarkNs))
	m.sweepHist.Record(uint64(st.PauseSweepNs))
	if st.Provenance {
		m.provCycles.Inc()
		m.provRecords.Add(st.ProvenanceRecords)
	}
	if w.par != nil {
		s := w.par.Steals()
		m.markSteals.Add(s - w.prevSteals)
		w.prevSteals = s
	}
}

// writeGCTrace renders the one-line cycle summary to w.gctrace.
func (w *World) writeGCTrace(st CollectionStats) {
	kind := "full"
	switch {
	case st.Concurrent && st.Minor:
		kind = fmt.Sprintf("concurrent-minor(%d passes)", st.RescanPasses)
	case st.Concurrent:
		kind = fmt.Sprintf("concurrent(%d passes)", st.RescanPasses)
	case st.Minor:
		kind = "minor"
	case st.Incremental:
		kind = fmt.Sprintf("incremental(%d steps)", st.Steps)
	}
	fmt.Fprintf(w.gctrace,
		"gc %d @%.3fs %s: %.2fms pause (mark %.2fms, sweep %.2fms): %d live (%d KiB), %d freed, heap %d KiB, %d blacklisted",
		w.collections, time.Since(w.epoch).Seconds(), kind,
		float64(st.Duration.Nanoseconds())/1e6,
		float64(st.PauseMarkNs)/1e6, float64(st.PauseSweepNs)/1e6,
		st.Sweep.ObjectsLive, st.Sweep.BytesLive/1024,
		st.Sweep.ObjectsFreed, st.HeapBytes/1024, w.Blacklist.Len())
	if st.Minor {
		fmt.Fprintf(w.gctrace, ", %d dirty blocks, %d promoted", st.DirtyBlocks, st.Promoted)
	}
	if st.SweepDeferredBlocks > 0 {
		fmt.Fprintf(w.gctrace, ", %d deferred", st.SweepDeferredBlocks)
	}
	if st.Concurrent {
		fmt.Fprintf(w.gctrace, ", snap %.2fms final %.2fms (%d dirty rescanned)",
			float64(st.PauseSnapshotNs)/1e6, float64(st.PauseFinalNs)/1e6,
			st.FinalDirtyBlocks)
	}
	if st.PauseStopNs > 0 {
		fmt.Fprintf(w.gctrace, ", stop %.2fms", float64(st.PauseStopNs)/1e6)
	}
	fmt.Fprintln(w.gctrace)
}

// GCTraceSummary renders a one-line pause-distribution summary from
// the world's histograms — the complement to the per-cycle gctrace
// line, typically printed once at the end of a run:
//
//	gc summary: 12 cycles: mark p50 0.42ms p95 1.84ms max 2.10ms; sweep ...; stop 3 stops p50 ...
func (w *World) GCTraceSummary() string {
	m := &w.met
	dist := func(h *metrics.Histogram) string {
		return fmt.Sprintf("p50 %.2fms p95 %.2fms max %.2fms",
			float64(h.Quantile(0.5))/1e6, float64(h.Quantile(0.95))/1e6, float64(h.Max())/1e6)
	}
	s := fmt.Sprintf("gc summary: %d cycles: mark %s; sweep %s; stop %d stops %s",
		m.markHist.Count(), dist(m.markHist), dist(m.sweepHist),
		m.stopHist.Count(), dist(m.stopHist))
	if n := m.finalHist.Count(); n > 0 {
		s += fmt.Sprintf("; final %d pauses %s", n, dist(m.finalHist))
	}
	if n := m.tenants.Load(); n > 0 {
		s += fmt.Sprintf("; tenants %d (%d KiB live)", n, m.tenantLiveBytes.Load()/1024)
	}
	if c := m.pacerCreditB.Load(); c != 0 {
		s += fmt.Sprintf("; pacer credit %d KiB", c/1024)
	}
	if n := m.leakDiffHist.Count(); n > 0 {
		s += fmt.Sprintf("; leakwatch %d samples diff %s", n, dist(m.leakDiffHist))
	}
	return s
}

// fireHook finalises the completed collection: fold it into the
// metrics, render the gctrace line, report it to the registered hook,
// and — under ConcurrentSweep — hand the cycle's deferred sweep
// backlog to a background sweeper once the world resumes.
func (w *World) fireHook() {
	if w.Heap.HasOwners() {
		// Tenant policy hook at the collection barrier: credit each
		// tenant for the owned objects this cycle reclaimed (a lazy
		// barrier's pending blocks reconcile from their mark bits), so
		// budgets free up without waiting for the owner's next
		// over-budget slow path. No-op for untenanted worlds.
		w.lockHeapLocked(func() { w.Heap.ReconcileOwners() })
	}
	if w.watch != nil {
		// Online retention watcher (watch.go): snapshot-diff this cycle's
		// provenance if it is a sampled one. Nil for unwatched worlds, so
		// the barrier pays one pointer compare and allocates nothing.
		w.watchSampleLocked()
	}
	w.recordCycle(w.last)
	w.syncGauges()
	if w.gctrace != nil {
		w.writeGCTrace(w.last)
	}
	if w.hook != nil {
		w.hook(w.last)
	}
	if w.cfg.ConcurrentSweep && w.Heap.SweepPending() > 0 {
		go w.driveSweep(w.collections)
	}
}

// NewWorld builds a world in the given address space (a fresh one if
// space is nil).
func NewWorld(space *mem.AddressSpace, cfg Config) (*World, error) {
	c := cfg.withDefaults()
	if space == nil {
		space = mem.NewAddressSpace()
	}
	var bl blacklist.List
	var err error
	switch c.Blacklisting {
	case BlacklistOff:
		bl = blacklist.Disabled{}
	case BlacklistDense:
		bl, err = blacklist.NewDense(c.HeapBase, c.HeapBase+mem.Addr(c.ReserveHeapBytes), c.Granule)
	case BlacklistHashed:
		bl, err = blacklist.NewHashed(c.HashBuckets, c.Granule)
	default:
		err = fmt.Errorf("core: unknown blacklist mode %d", c.Blacklisting)
	}
	if err != nil {
		return nil, err
	}
	if c.Generational && c.Incremental {
		return nil, fmt.Errorf("core: generational and incremental modes are mutually exclusive")
	}
	if c.ConcurrentMark && c.Incremental {
		return nil, fmt.Errorf("core: concurrent and incremental modes are mutually exclusive (concurrent marking subsumes the incremental state machine)")
	}
	if c.DiscontiguousGrowth && c.Blacklisting == BlacklistDense {
		return nil, fmt.Errorf("core: a discontinuous heap needs the hashed blacklist (paper, section 3)")
	}
	if c.ConcMarkWorkers < 0 {
		return nil, fmt.Errorf("core: ConcMarkWorkers must be >= 0, got %d", c.ConcMarkWorkers)
	}
	heap, err := alloc.New(space, alloc.Config{
		HeapBase:                 c.HeapBase,
		InitialBytes:             c.InitialHeapBytes,
		ReserveBytes:             c.ReserveHeapBytes,
		ExpandIncrement:          c.ExpandIncrement,
		Blacklist:                bl,
		InteriorPointers:         c.Pointer == mark.PointerInterior,
		AllowAtomicOnBlacklisted: c.AllowAtomicOnBlacklisted,
		AtomicBlacklistMaxWords:  c.AtomicBlacklistMaxWords,
		FreeBlocks:               c.FreeBlocks,
		SkipPageBoundarySlot:     c.SkipPageBoundarySlot,
		DiscontiguousGrowth:      c.DiscontiguousGrowth,
		LazySweep:                c.LazySweep,
		LineAlloc:                c.LineAlloc,
		// Heap-word stores go atomic whenever a cycle *could* detach
		// (adaptive selection can pick any width at any cycle); explicit
		// width 1 pins the plain-store lock-chunked path.
		AtomicWords: c.ConcurrentMark && c.ConcMarkWorkers != 1,
	})
	if err != nil {
		return nil, err
	}
	mcfg := mark.Config{Policy: c.Pointer, Alignment: c.Alignment, Blacklist: bl}
	w := &World{
		Space:       space,
		Heap:        heap,
		Marker:      mark.New(heap, mcfg),
		Blacklist:   bl,
		cfg:         c,
		mcfg:        mcfg,
		finalizable: map[mem.Addr]struct{}{},
		met:         newWorldMetrics(),
		epoch:       time.Now(),
	}
	if c.MarkWorkers > 1 {
		w.par = mark.NewParallel(heap, mcfg, c.MarkWorkers)
		w.parWorkers = c.MarkWorkers
	}
	w.lastMarkWorkers = w.effectiveMarkWorkers()
	return w, nil
}

// effectiveMarkWorkers resolves the worker count the next mark phase
// will use: the configured count when pinned, otherwise the adaptive
// pick from the scheduler's processor count and the live bytes the
// previous sweep measured (so a world's first cycle marks serially).
func (w *World) effectiveMarkWorkers() int {
	if w.cfg.MarkWorkers > 0 {
		return w.cfg.MarkWorkers
	}
	return AutoMarkWorkers(runtime.GOMAXPROCS(0), w.Heap.Stats().BytesLive)
}

// Config returns the world's effective configuration.
func (w *World) Config() Config { return w.cfg }

// SetMutator attaches the root source whose registers and stack are
// scanned (concurrent mutator goroutines attach theirs through their
// Mutator handle instead; see World.NewMutator).
func (w *World) SetMutator(m RootSource) {
	w.mu.Lock()
	w.mut = m
	w.mu.Unlock()
}

// RootSource returns the root source attached with SetMutator
// (possibly nil).
func (w *World) RootSource() RootSource { return w.mut }

// Allocate allocates an object of nwords words, collecting and/or
// expanding the heap as needed. atomic marks the object pointer-free.
func (w *World) Allocate(nwords int, atomic bool) (mem.Addr, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.mut != nil {
		w.mut.OnAllocate()
	}
	return w.allocateLocked(nwords, w.mut,
		func() (mem.Addr, error) { return w.Heap.Alloc(nwords, atomic) },
		func() (mem.Addr, error) { return w.Heap.AllocDesperate(nwords, atomic) })
}

// RegisterLayout registers an object layout (one pointer flag per
// word) for typed allocation; see AllocateTyped.
func (w *World) RegisterLayout(ptrMask []bool) (alloc.DescID, error) {
	return w.Heap.RegisterDescriptor(ptrMask)
}

// AllocateTyped allocates an object with exact layout information: the
// collector scans only the registered pointer words. This is the
// "complete information on the location of pointers in the heap"
// operating point of the paper's introduction.
func (w *World) AllocateTyped(id alloc.DescID) (mem.Addr, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	d, err := w.Heap.Descriptor(id)
	if err != nil {
		return 0, err
	}
	if w.mut != nil {
		w.mut.OnAllocate()
	}
	return w.allocateLocked(d.Words, w.mut,
		func() (mem.Addr, error) { return w.Heap.AllocTyped(id) },
		nil)
}

// AllocateIgnoreOffPage allocates a large object under the client
// promise that a pointer to its first page is kept while it is live;
// deep interior pointers are then invalid and the blacklist only
// constrains the first page (observation 7 / the original collector's
// GC_malloc_ignore_off_page).
func (w *World) AllocateIgnoreOffPage(nwords int, atomic bool) (mem.Addr, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.mut != nil {
		w.mut.OnAllocate()
	}
	return w.allocateLocked(nwords, w.mut,
		func() (mem.Addr, error) { return w.Heap.AllocIgnoreOffPage(nwords, atomic) },
		nil)
}

// allocateLocked runs the collection/expansion retry policy around one
// allocation primitive. Callers hold w.mu and have already invoked the
// OnAllocate hook; src is the root source of the allocating mutator
// (for allocator-residue simulation) — the attached RootSource for the
// direct World entry points, the handle's source for Mutator ones.
func (w *World) allocateLocked(nwords int, src RootSource, try, desperate func() (mem.Addr, error)) (mem.Addr, error) {
	if w.cfg.ConcurrentMark {
		// The allocation primitives mutate heap structure (free-list
		// threading, block claims, extent mapping); during a detached
		// phase they must exclude the background workers' read-holds.
		// lockHeapLocked is a bare call outside one, so the wrap costs
		// lock-chunked and stop-the-world cycles nothing but a closure.
		tryRaw, desperateRaw := try, desperate
		try = func() (p mem.Addr, err error) {
			w.lockHeapLocked(func() { p, err = tryRaw() })
			return p, err
		}
		if desperateRaw != nil {
			desperate = func() (p mem.Addr, err error) {
				w.lockHeapLocked(func() { p, err = desperateRaw() })
				return p, err
			}
		}
	}
	// Regular-interval trigger. Incremental mode starts a cycle and
	// advances it in bounded steps; concurrent mode starts a cycle and
	// hands it to a background driver goroutine; generational mode
	// prefers the cheaper minor cycle with a periodic full cycle.
	if w.cfg.ConcurrentMark {
		if !w.concActive {
			st := w.Heap.Stats()
			if w.cfg.Generational && w.cfg.MinorDivisor > 0 &&
				st.BytesSinceGC > uint64(st.HeapBytes/w.cfg.MinorDivisor) {
				minor := w.minorsSinceFull < w.cfg.FullEvery-1
				kind := int64(3)
				if minor {
					kind = 4
				}
				w.allocTrigger(kind)
				w.startConcurrentLocked(minor)
				go w.driveConcurrent(w.concGen)
			} else if !w.cfg.Generational && w.cfg.GCDivisor > 0 &&
				st.BytesSinceGC > uint64(st.HeapBytes/w.cfg.GCDivisor) {
				w.allocTrigger(3)
				w.startConcurrentLocked(false)
				go w.driveConcurrent(w.concGen)
			}
		} else {
			// Rate-based assist (detached.go): the pacer debits this
			// allocation's share of the cycle's marking and repays it with
			// bounded chunks only when the background workers (or the
			// lock-chunked driver) have fallen behind, so marking keeps
			// pace with allocation without taxing every slow path the way
			// the old fixed per-allocation chunk did. A repayment chunk
			// that drains the gray set runs the finale right here —
			// completing a cycle from an allocation slow path is already
			// the ErrNeedMemory path's behaviour.
			w.pacerAssistLocked()
		}
	} else if w.cfg.Incremental {
		st := w.Heap.Stats()
		if !w.incActive && w.cfg.GCDivisor > 0 &&
			st.BytesSinceGC > uint64(st.HeapBytes/w.cfg.GCDivisor) {
			w.allocTrigger(2)
			w.stwStartIncremental()
		}
		if w.incActive && w.incrementalStepLocked(w.cfg.MarkQuantum) {
			w.stwFinishIncremental()
			w.expandIfTight()
		}
	} else if w.cfg.Generational && w.cfg.MinorDivisor > 0 &&
		w.Heap.Stats().BytesSinceGC > uint64(w.Heap.Stats().HeapBytes/w.cfg.MinorDivisor) {
		if w.minorsSinceFull >= w.cfg.FullEvery-1 {
			w.allocTrigger(0)
			w.stwCollect()
			w.expandIfTight()
		} else {
			w.allocTrigger(1)
			w.stwCollectMinor()
		}
	} else if w.cfg.GCDivisor > 0 &&
		w.Heap.Stats().BytesSinceGC > uint64(w.Heap.Stats().HeapBytes/w.cfg.GCDivisor) {
		w.allocTrigger(0)
		w.stwCollect()
		w.expandIfTight()
	}
	p, err := try()
	if err == alloc.ErrNeedMemory {
		if w.concActive {
			// Complete the in-flight concurrent cycle: its finale sweeps.
			w.stwFinishConcurrent()
			p, err = try()
		} else if w.incActive {
			// Complete the in-flight incremental cycle: it will sweep.
			w.stwFinishIncremental()
			p, err = try()
		}
	}
	if err == alloc.ErrNeedMemory {
		// Collect only if enough allocation has happened since the last
		// cycle to make one worthwhile; otherwise the heap is simply too
		// small for the live data and must grow (the real collector's
		// GC_collect_or_expand makes the same distinction).
		st := w.Heap.Stats()
		if st.BytesSinceGC > uint64(st.HeapBytes/8) {
			w.stwCollect()
			p, err = try()
		}
	}
	for err == alloc.ErrNeedMemory {
		grow := nwords * mem.WordBytes
		if amortized := w.Heap.Stats().HeapBytes / 8; grow < amortized {
			grow = amortized
		}
		var eerr error
		w.lockHeapLocked(func() { eerr = w.Heap.Expand(grow) })
		if eerr != nil {
			if w.cfg.DesperateFallback && desperate != nil {
				if p, derr := desperate(); derr == nil {
					return p, nil
				}
			}
			return 0, fmt.Errorf("allocating %d words: %w", nwords, eerr)
		}
		p, err = try()
	}
	if err != nil {
		return 0, err
	}
	if w.concActive {
		// Born black: the fresh object is zero-filled, so there is
		// nothing to scan at birth, and the mark bit keeps this cycle's
		// sweep off it. Later stores into it are caught by the write
		// barrier like stores into any other black object. Against
		// detached workers the bit must be set with the same CAS they
		// race on.
		if w.concDetached {
			w.Heap.MarkAtomic(p)
		} else {
			w.Heap.Mark(p)
		}
	}
	if w.cfg.AllocatorResidue {
		if rs, ok := src.(residueSimulator); ok {
			rs.SimulateCallResidue(w.cfg.AllocatorSelfClean, mem.Word(p), mem.Word(nwords))
		}
	}
	return p, nil
}

// allocTrigger records an allocation crossing the collection
// threshold, immediately before the cycle it triggers; kind is the
// cycle-kind argument (0 full, 1 minor, 2 incremental start, 3
// concurrent full, 4 concurrent minor).
func (w *World) allocTrigger(kind int64) {
	w.met.allocTriggered.Inc()
	if w.tracer.Enabled() {
		st := w.Heap.Stats()
		w.tracer.Emit(trace.EvAllocTrigger, int64(st.BytesSinceGC), int64(st.HeapBytes), kind)
	}
}

// expandIfTight grows the heap when a collection left too little free
// space, per the FreeSpaceDivisor policy.
func (w *World) expandIfTight() {
	st := w.Heap.Stats()
	free := uint64(st.HeapBytes) - st.BytesLive
	if free < uint64(st.HeapBytes/w.cfg.FreeSpaceDivisor) && w.Heap.CanExpand() {
		w.Heap.Expand(st.HeapBytes / 2)
	}
}

// markRoots performs the root-scanning half of a collection: the
// attached root source, each stopped mutator's registers and simulated
// stack, then the root segments. Callers hold w.mu with every mutator
// stopped, so the sources are quiescent.
func (w *World) markRoots() {
	if w.mut != nil {
		w.Marker.MarkSparseRoots(mark.RootOrigin{Kind: mark.RootRegister, Src: -1}, w.mut.Registers())
		stackWords, stackBase := w.mut.LiveStack()
		w.Marker.MarkRootArea(mark.RootOrigin{Kind: mark.RootStack, Src: -1, Base: stackBase}, stackWords)
	}
	for i, m := range w.muts {
		if m.src == nil {
			continue
		}
		w.Marker.MarkSparseRoots(mark.RootOrigin{Kind: mark.RootRegister, Src: int32(i)}, m.src.Registers())
		stackWords, stackBase := m.src.LiveStack()
		w.Marker.MarkRootArea(mark.RootOrigin{Kind: mark.RootStack, Src: int32(i), Base: stackBase}, stackWords)
	}
	for i, s := range w.Space.Roots() {
		w.Marker.MarkRootArea(mark.RootOrigin{Kind: mark.RootSegment, Src: int32(i), Base: s.Base()}, s.Words())
	}
}

// markPhase runs one stop-the-world mark phase — serial through
// w.Marker, or sharded across w.par's workers when MarkWorkers > 1 —
// and returns its statistics plus the dirty-block count (minor cycles
// only). Parallel cycles mark exactly the serial object set: the CAS
// on each mark bit admits one winner, so ObjectsMarked, BytesMarked
// and the blacklisted pages match the serial run bit for bit.
func (w *World) markPhase(minor bool) (mark.Stats, int) {
	dirty := 0
	workers := w.effectiveMarkWorkers()
	w.lastMarkWorkers = workers
	if workers <= 1 {
		w.Marker.Reset()
		if w.prov.enabled {
			w.Marker.StartRecording()
		}
		if minor {
			// Rescan old objects on dirty pages first: at this point
			// every marked object is old, so the scan is exactly the
			// remembered set.
			w.Heap.DirtyBlocks(func(bi int) {
				dirty++
				w.Heap.ForEachMarkedObject(bi, w.Marker.ScanObject)
			})
		}
		w.markRoots()
		w.Marker.Drain()
		return w.Marker.Stats(), dirty
	}
	w.ensureParLocked(workers)
	if w.prov.enabled {
		w.par.StartRecording()
	}
	if minor {
		w.Heap.DirtyBlocks(func(bi int) {
			dirty++
			w.par.AddDirtyBlock(bi)
		})
	}
	if w.mut != nil {
		w.par.AddSparseRootsOrigin(mark.RootOrigin{Kind: mark.RootRegister, Src: -1}, w.mut.Registers())
		stackWords, stackBase := w.mut.LiveStack()
		w.par.AddRootsOrigin(mark.RootOrigin{Kind: mark.RootStack, Src: -1, Base: stackBase}, stackWords)
	}
	for i, m := range w.muts {
		if m.src == nil {
			continue
		}
		w.par.AddSparseRootsOrigin(mark.RootOrigin{Kind: mark.RootRegister, Src: int32(i)}, m.src.Registers())
		stackWords, stackBase := m.src.LiveStack()
		w.par.AddRootsOrigin(mark.RootOrigin{Kind: mark.RootStack, Src: int32(i), Base: stackBase}, stackWords)
	}
	for i, s := range w.Space.Roots() {
		w.par.AddRootsOrigin(mark.RootOrigin{Kind: mark.RootSegment, Src: int32(i), Base: s.Base()}, s.Words())
	}
	return w.par.Run(), dirty
}

// ensureParLocked (re)builds the sharded marker at the given width.
// Rebuilding happens when the adaptive selection changed its mind (the
// live heap crossed a band, or GOMAXPROCS moved); steal counters start
// over with the new marker.
func (w *World) ensureParLocked(workers int) {
	if w.par == nil || w.parWorkers != workers {
		w.par = mark.NewParallel(w.Heap, w.mcfg, workers)
		w.parWorkers = workers
		w.prevSteals = 0
		w.par.SetTracer(w.tracer)
	}
}

// Collect runs a full stop-the-world collection: park every mutator
// handle at its next allocation point and flush its caches, then mark
// from registers, live stacks and root segments; drain; handle
// finalisable objects; sweep; age the blacklist.
func (w *World) Collect() CollectionStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stwCollect()
}

// stwCollect stops the mutators and runs a full collection. Callers
// hold w.mu.
func (w *World) stwCollect() CollectionStats {
	w.stopMutatorsLocked()
	defer w.resumeMutatorsLocked()
	return w.collectLocked()
}

// collectLocked is the full collection body. Callers hold w.mu with
// every mutator stopped and flushed: the sweep classifies blocks from
// their bitmaps, so a cached (allocated-but-unreachable) slot that was
// not flushed back to its free list would be reclaimed and then carved
// a second time.
func (w *World) collectLocked() CollectionStats {
	if w.incActive {
		// A full collection supersedes the in-flight incremental cycle.
		return w.finishIncrementalLocked()
	}
	if w.concActive {
		// Likewise for an in-flight concurrent cycle: run its finale now.
		return w.finishConcurrentLocked()
	}
	start := time.Now()
	w.tracer.Emit(trace.EvCycleBegin, int64(w.collections+1), int64(w.Heap.Stats().HeapBytes), 0)
	// Any sweep work the previous lazy cycle deferred must complete
	// before mark bits change: a pending block's bits still encode that
	// cycle's liveness. No-op with LazySweep off.
	w.Heap.FinishSweep()
	// Central bump spans hold carved-but-unissued slots whose alloc bits
	// would read as live objects; return them before any bit changes.
	w.Heap.FlushSpans()
	w.Blacklist.BeginCycle()
	if w.cfg.Generational {
		// Mark bits are sticky between minor cycles; a full collection
		// starts from a clean slate.
		w.Heap.ClearMarks()
	}
	w.tracer.Emit(trace.EvMarkBegin, int64(w.collections+1), int64(w.effectiveMarkWorkers()), 0)
	markStart := time.Now()
	mstats, _ := w.markPhase(false)
	pauseMark := time.Since(markStart)
	w.traceMarkEnd(mstats)
	// Finalisation, as used by the paper's PCR experiment: "selected
	// otherwise unreachable heap cells to be enqueued for further
	// action". Unmarked registered objects are queued before the sweep
	// frees them.
	for a := range w.finalizable {
		if !w.Heap.Marked(a) {
			w.reclaimed = append(w.reclaimed, a)
			delete(w.finalizable, a)
		}
	}
	w.traceSweepBegin(0)
	sweepStart := time.Now()
	var sweep alloc.SweepResult
	if w.cfg.Generational {
		// Survivors of a full cycle keep their mark bits: they are the
		// old generation. The bits were cleared at the top of this
		// collection, so they reflect exactly this cycle's liveness.
		sweep = w.Heap.SweepSticky()
	} else {
		sweep = w.Heap.Sweep()
	}
	pauseSweep := time.Since(sweepStart)
	w.Heap.ResetSinceGC()
	if w.cfg.ExpireAge > 0 {
		w.Blacklist.Expire(w.cfg.ExpireAge)
	}
	w.collections++
	w.minorsSinceFull = 0
	w.Heap.ClearDirty()
	provRecs := w.harvestProvenance(0)
	w.last = CollectionStats{
		Mark:                mstats,
		Sweep:               sweep,
		Blacklist:           w.Blacklist.Stats(),
		Duration:            time.Since(start),
		HeapBytes:           w.Heap.Stats().HeapBytes,
		PauseMarkNs:         pauseMark.Nanoseconds(),
		PauseSweepNs:        pauseSweep.Nanoseconds(),
		PauseStopNs:         w.lastStopNs,
		SweepDeferredBlocks: w.Heap.SweepPending(),
		Provenance:          w.prov.enabled,
		ProvenanceRecords:   provRecs,
	}
	w.traceCycleEnd(w.last)
	w.fireHook()
	return w.last
}

// traceMarkEnd emits the mark-phase closing events: the phase totals
// plus, under parallel marking, each worker's share.
func (w *World) traceMarkEnd(mstats mark.Stats) {
	if !w.tracer.Enabled() {
		return
	}
	w.tracer.Emit(trace.EvMarkEnd,
		int64(mstats.ObjectsMarked), int64(mstats.BytesMarked), int64(mstats.WordsScanned))
	if w.par != nil {
		w.par.EachWorkerStats(func(i int, s mark.Stats) {
			w.tracer.Emit(trace.EvWorkerMark, int64(i), int64(s.ObjectsMarked), int64(s.BytesMarked))
		})
	}
}

// traceSweepBegin emits the sweep-phase opening event.
func (w *World) traceSweepBegin(kind int64) {
	if !w.tracer.Enabled() {
		return
	}
	lazy := int64(0)
	if w.cfg.LazySweep {
		lazy = 1
	}
	w.tracer.Emit(trace.EvSweepBegin, int64(w.collections+1), lazy, kind)
}

// traceCycleEnd emits the sweep-phase and cycle closing events.
func (w *World) traceCycleEnd(st CollectionStats) {
	if !w.tracer.Enabled() {
		return
	}
	w.tracer.Emit(trace.EvSweepEnd,
		int64(st.Sweep.ObjectsFreed), int64(st.Sweep.BytesFreed), int64(st.SweepDeferredBlocks))
	w.tracer.Emit(trace.EvCycleEnd,
		int64(w.collections), int64(st.Sweep.ObjectsLive), int64(st.Sweep.BytesLive))
}

// CollectMinor runs a generational minor collection: old (marked)
// objects on pages written since the last collection are rescanned for
// old-to-young pointers, the roots are scanned as usual, and the sweep
// preserves mark bits, so every young survivor is promoted to the old
// generation (the sticky-mark-bit scheme of the paper's reference
// [13]). Outside generational mode it behaves like Collect.
func (w *World) CollectMinor() CollectionStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stwCollectMinor()
}

// stwCollectMinor stops the mutators and runs a minor collection.
// Callers hold w.mu.
func (w *World) stwCollectMinor() CollectionStats {
	w.stopMutatorsLocked()
	defer w.resumeMutatorsLocked()
	return w.collectMinorLocked()
}

// collectMinorLocked is the minor collection body. Callers hold w.mu
// with every mutator stopped and flushed (see collectLocked).
func (w *World) collectMinorLocked() CollectionStats {
	if !w.cfg.Generational {
		return w.collectLocked()
	}
	if w.concActive {
		// An explicit collection completes the in-flight concurrent cycle.
		return w.finishConcurrentLocked()
	}
	start := time.Now()
	w.tracer.Emit(trace.EvCycleBegin, int64(w.collections+1), int64(w.Heap.Stats().HeapBytes), 1)
	// See Collect: the previous cycle's deferred sweeps must land before
	// this cycle's marks, and central bump spans must be returned.
	w.Heap.FinishSweep()
	w.Heap.FlushSpans()
	w.Blacklist.BeginCycle()
	w.tracer.Emit(trace.EvMarkBegin, int64(w.collections+1), int64(w.effectiveMarkWorkers()), 1)
	markStart := time.Now()
	mstats, dirty := w.markPhase(true)
	pauseMark := time.Since(markStart)
	w.traceMarkEnd(mstats)
	for a := range w.finalizable {
		if !w.Heap.Marked(a) {
			w.reclaimed = append(w.reclaimed, a)
			delete(w.finalizable, a)
		}
	}
	w.traceSweepBegin(1)
	sweepStart := time.Now()
	sweep := w.Heap.SweepSticky()
	pauseSweep := time.Since(sweepStart)
	w.Heap.ResetSinceGC()
	w.Heap.ClearDirty()
	if w.cfg.ExpireAge > 0 {
		w.Blacklist.Expire(w.cfg.ExpireAge)
	}
	w.collections++
	w.minorsSinceFull++
	provRecs := w.harvestProvenance(1)
	w.last = CollectionStats{
		Mark:                mstats,
		Sweep:               sweep,
		Blacklist:           w.Blacklist.Stats(),
		Duration:            time.Since(start),
		HeapBytes:           w.Heap.Stats().HeapBytes,
		Minor:               true,
		DirtyBlocks:         dirty,
		Promoted:            mstats.ObjectsMarked,
		PauseMarkNs:         pauseMark.Nanoseconds(),
		PauseSweepNs:        pauseSweep.Nanoseconds(),
		PauseStopNs:         w.lastStopNs,
		SweepDeferredBlocks: w.Heap.SweepPending(),
		Provenance:          w.prov.enabled,
		ProvenanceRecords:   provRecs,
	}
	w.traceCycleEnd(w.last)
	w.fireHook()
	return w.last
}

// MarkOnly marks from the roots and returns the apparently-accessible
// object count and bytes, then clears the marks without sweeping. The
// paper's section 3.1 reports exactly this quantity ("apparently
// accessible cons-cells").
func (w *World) MarkOnly() (objects, bytes uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stopMutatorsLocked()
	defer w.resumeMutatorsLocked()
	if w.incActive {
		// Mark-only measurement would clobber the in-flight cycle's
		// mark bits; complete the cycle first.
		w.finishIncrementalLocked()
	}
	if w.concActive {
		w.finishConcurrentLocked()
	}
	w.Heap.FinishSweep() // pending bits are the previous cycle's, not this one's
	w.Heap.FlushSpans()  // carved-but-unissued span slots are not accessible objects
	w.tracer.Emit(trace.EvMarkBegin, int64(w.collections+1), int64(w.effectiveMarkWorkers()), 0)
	mstats, _ := w.markPhase(false)
	w.traceMarkEnd(mstats)
	objects, bytes = w.Heap.CountMarked()
	w.Heap.ClearMarks()
	// The measurement's marks are gone, so any provenance it recorded
	// describes nothing; drop it rather than harvesting.
	w.discardRecording()
	return objects, bytes
}

// Collections returns how many collections have run.
func (w *World) Collections() int { return w.collections }

// LastCollection returns statistics for the most recent collection.
func (w *World) LastCollection() CollectionStats { return w.last }

// RegisterFinalizable registers an object base address for reclamation
// tracking: when a collection finds it unreachable, it is queued and
// reported by DrainReclaimed.
func (w *World) RegisterFinalizable(a mem.Addr) { w.finalizable[a] = struct{}{} }

// FinishSweep completes any deferred (lazy) sweep work immediately and
// returns the number of blocks swept; a no-op with LazySweep off.
// Collections finish the remainder automatically before marking, so
// explicit calls are only needed by tests and measurements that must
// observe final reclamation state without running another cycle.
// Deferred sweeps rebuild free lists but never touch carved runs (a
// cached slot is never in a sweep-pending block), so mutators need not
// stop.
func (w *World) FinishSweep() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	w.lockHeapLocked(func() { n = w.Heap.FinishSweep() })
	return n
}

// DrainReclaimed returns and clears the queue of reclaimed registered
// objects.
func (w *World) DrainReclaimed() []mem.Addr {
	out := w.reclaimed
	w.reclaimed = nil
	return out
}

// Load reads a heap or segment word (convenience for workloads).
func (w *World) Load(a mem.Addr) (mem.Word, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.Space.Load(a)
}

// Store writes a heap or segment word (convenience for workloads). In
// generational mode it doubles as the write barrier: heap stores dirty
// their page, like the VM-dirty-bit barrier of the PCR collector.
func (w *World) Store(a mem.Addr, v mem.Word) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.storeLocked(a, v)
}

// storeLocked is the write barrier + store body; callers hold w.mu.
// During a concurrent cycle it is the Dijkstra-style insertion barrier
// at dirty-card granularity: the written-to block is re-greyed, so the
// finale (or an earlier rescan pass) re-scans its marked objects and
// finds whatever pointer this store published.
func (w *World) storeLocked(a mem.Addr, v mem.Word) error {
	if w.cfg.Generational || w.incActive || w.concActive {
		if w.Heap.MarkDirty(a) && w.concActive {
			w.met.barrierDirty.Inc()
			if w.tracer.Enabled() {
				w.tracer.Emit(trace.EvBarrierDirty, int64(a), int64(w.Heap.CountDirty()), 0)
			}
		}
	}
	return w.Space.Store(a, v)
}
