# CI entry points. `make ci` is what a pipeline should run; the
# individual targets exist for local iteration.

GO ?= go

.PHONY: ci vet build test race bench markbench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel mark phase must be clean under the race detector; the
# internal packages hold all of its tests (differential, fuzz seeds).
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

# Regenerates BENCH_1.json (parallel mark scaling, machine-readable).
markbench:
	$(GO) run ./cmd/gcbench -experiment markbench -benchjson BENCH_1.json
