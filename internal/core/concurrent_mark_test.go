package core

import (
	"testing"

	"repro/internal/mem"
)

// Tests for Config.ConcurrentMark: the mostly-concurrent cycle must
// reclaim exactly what a stop-the-world collection reclaims on a
// quiesced heap, must never lose an object to the classic
// hide-behind-black race (the insertion barrier's whole job), and must
// do almost all of its marking outside the pauses.

// concBuildGraph runs a deterministic quiesced workload: allocations
// rooted in a data segment, links between live objects, explicit frees
// and abandoned (garbage) objects — no collections. Identical worlds
// replaying it end in identical heaps, so a concurrent cycle on one
// and a STW collection on the other are directly comparable.
func concBuildGraph(t *testing.T, d gcDriver) int {
	t.Helper()
	const dataBase = mem.Addr(0x2000)
	const rootSlots = 48
	var roots [rootSlots]mem.Addr
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 600}
	rng := uint32(0xc0ffee11)
	next := func(n uint32) uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng % n
	}
	allocs := 0
	for i := 0; i < 900; i++ {
		size := sizes[next(uint32(len(sizes)))]
		atomic := next(6) == 0
		p, err := d.Allocate(size, atomic)
		if err != nil {
			t.Fatal(err)
		}
		allocs++
		switch next(4) {
		case 0, 1:
			slot := next(rootSlots)
			if err := d.Store(dataBase+mem.Addr(4*slot), mem.Word(p)); err != nil {
				t.Fatal(err)
			}
			if atomic {
				roots[slot] = 0
			} else {
				roots[slot] = p
			}
		case 2:
			if slot := next(rootSlots); roots[slot] != 0 {
				if err := d.Store(roots[slot], mem.Word(p)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if next(31) == 0 {
			if slot := next(rootSlots); roots[slot] != 0 {
				if err := d.Store(dataBase+mem.Addr(4*slot), 0); err != nil {
					t.Fatal(err)
				}
				if err := d.Free(roots[slot]); err != nil {
					t.Fatal(err)
				}
				roots[slot] = 0
			}
		}
	}
	return allocs
}

// liveSet returns every allocated base address (after FinishSweep, the
// surviving objects).
func liveSet(w *World) map[mem.Addr]bool {
	out := make(map[mem.Addr]bool)
	w.Heap.ForEachObject(func(base mem.Addr) { out[base] = true })
	return out
}

// TestConcurrentMarkDifferential is the tentpole's correctness claim:
// on a quiesced world (no mutation between snapshot and finale) a
// concurrent cycle — snapshot, bounded background chunks, bounded
// finale — marks and sweeps exactly what a stop-the-world collection
// does, across the collector modes the concurrent cycle composes with.
// Scan-volume fields legitimately differ (the finale re-scans roots),
// so the comparison is marking outcome and reclamation, not effort.
func TestConcurrentMarkDifferential(t *testing.T) {
	// Every trigger is disabled (MinorDivisor defaults on in
	// generational mode): a mid-build automatic cycle would overlap the
	// build's own allocations and legitimately diverge the two heaps.
	configs := map[string]Config{
		"full":      {GCDivisor: -1},
		"gen":       {Generational: true, GCDivisor: -1, MinorDivisor: -1},
		"lazy":      {GCDivisor: -1, LazySweep: true},
		"gen-lazy":  {Generational: true, GCDivisor: -1, MinorDivisor: -1, LazySweep: true},
		"line":      {GCDivisor: -1, LineAlloc: true},
		"line-lazy": {GCDivisor: -1, LineAlloc: true, LazySweep: true},
		"par":       {GCDivisor: -1, MarkWorkers: 4},
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			run := func(concurrent bool) (CollectionStats, map[mem.Addr]bool, int) {
				c := cfg
				c.ConcurrentMark = concurrent
				w := newWorld(t, c)
				addData(t, w, "data", 0x2000, 4096)
				allocs := concBuildGraph(t, directDriver{w})
				var st CollectionStats
				if concurrent {
					if err := w.StartConcurrentCycle(); err != nil {
						t.Fatal(err)
					}
					steps := 0
					for !w.ConcurrentStep(16) {
						steps++
						if steps > 1_000_000 {
							t.Fatal("concurrent cycle did not terminate")
						}
					}
					if steps == 0 {
						t.Fatal("cycle finished without any background chunk")
					}
					st = w.LastCollection()
				} else {
					st = w.Collect()
				}
				w.FinishSweep()
				return st, liveSet(w), allocs
			}
			stw, stwLive, stwAllocs := run(false)
			conc, concLive, concAllocs := run(true)
			if stwAllocs != concAllocs {
				t.Fatalf("setup diverged: %d vs %d allocations", stwAllocs, concAllocs)
			}
			if !conc.Concurrent {
				t.Fatal("concurrent cycle's stats not flagged Concurrent")
			}
			if conc.Mark.ObjectsMarked != stw.Mark.ObjectsMarked ||
				conc.Mark.BytesMarked != stw.Mark.BytesMarked {
				t.Fatalf("mark outcome diverges: concurrent %d objects/%d bytes, stw %d/%d",
					conc.Mark.ObjectsMarked, conc.Mark.BytesMarked,
					stw.Mark.ObjectsMarked, stw.Mark.BytesMarked)
			}
			if conc.Sweep != stw.Sweep {
				t.Fatalf("sweep diverges:\nconcurrent %+v\nstw        %+v", conc.Sweep, stw.Sweep)
			}
			if len(concLive) != len(stwLive) {
				t.Fatalf("live sets diverge: %d vs %d objects", len(concLive), len(stwLive))
			}
			for a := range stwLive {
				if !concLive[a] {
					t.Fatalf("object %#x live after STW, missing after concurrent cycle", uint32(a))
				}
			}
		})
	}
}

// TestConcurrentMarkMinorDifferential is the generational variant: a
// concurrent minor cycle — the remembered set staged at the snapshot,
// drained in the background, finished in a bounded pause — promotes
// and reclaims exactly what a stop-the-world minor does on a quiesced
// world. Both worlds first run an identical STW full collection (the
// old generation), then the same mutation epoch, then the minor under
// comparison.
func TestConcurrentMarkMinorDifferential(t *testing.T) {
	run := func(concurrent bool) (CollectionStats, map[mem.Addr]bool) {
		w := newWorld(t, Config{
			Generational: true, GCDivisor: -1, MinorDivisor: -1,
			ConcurrentMark: concurrent,
		})
		data := addData(t, w, "data", 0x2000, 4096)
		concBuildGraph(t, directDriver{w})
		w.Collect() // identical STW full in both modes: the old generation
		// Mutation epoch: new objects linked from old ones (dirtying
		// their cards), new roots, and fresh garbage.
		var keep [8]mem.Addr
		for i := range keep {
			p, err := w.Allocate(4, false)
			if err != nil {
				t.Fatal(err)
			}
			keep[i] = p
			if err := data.Store(0x2000+mem.Addr(4*i), mem.Word(p)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 40; i++ {
			p, err := w.Allocate(2, false)
			if err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 { // reachable only through a dirtied old root
				if err := w.Store(keep[i%8], mem.Word(p)); err != nil {
					t.Fatal(err)
				}
			}
		}
		var st CollectionStats
		if concurrent {
			w.mu.Lock()
			w.startConcurrentLocked(true) // minor; no background driver
			w.mu.Unlock()
			for steps := 0; !w.ConcurrentStep(8); steps++ {
				if steps > 1_000_000 {
					t.Fatal("concurrent minor did not terminate")
				}
			}
			st = w.LastCollection()
			if !st.Concurrent || !st.Minor {
				t.Fatalf("expected a concurrent minor, got %+v", st)
			}
		} else {
			st = w.CollectMinor()
		}
		w.FinishSweep()
		return st, liveSet(w)
	}
	stw, stwLive := run(false)
	conc, concLive := run(true)
	if conc.Promoted != stw.Promoted {
		t.Fatalf("promotion diverges: concurrent %d, stw %d", conc.Promoted, stw.Promoted)
	}
	if conc.Sweep != stw.Sweep {
		t.Fatalf("minor sweep diverges:\nconcurrent %+v\nstw        %+v", conc.Sweep, stw.Sweep)
	}
	if len(concLive) != len(stwLive) {
		t.Fatalf("live sets diverge: %d vs %d objects", len(concLive), len(stwLive))
	}
	for a := range stwLive {
		if !concLive[a] {
			t.Fatalf("object %#x live after STW minor, missing after concurrent minor", uint32(a))
		}
	}
}

// TestConcurrentMarkLostObject is the adversarial barrier test: hide
// the only pointer to an object inside an already-scanned (black)
// object and erase the gray path to it, mid-cycle. Without the
// insertion barrier the finale would sweep the object; the dirty card
// forces its holder's block to be rescanned in the final pause.
func TestConcurrentMarkLostObject(t *testing.T) {
	w := newWorld(t, Config{ConcurrentMark: true, MarkWorkers: 1, GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)

	alloc2 := func() mem.Addr {
		p, err := w.Allocate(2, false)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	c1 := alloc2()      // rooted chain head, holds the gray path to x
	black := alloc2()   // rooted; will be scanned first (black)
	x := alloc2()       // the object to hide
	garbage := alloc2() // never referenced; proves the sweep still works
	_ = garbage
	if err := data.Store(0x2000, mem.Word(c1)); err != nil {
		t.Fatal(err)
	}
	if err := data.Store(0x2004, mem.Word(black)); err != nil {
		t.Fatal(err)
	}
	if err := w.Store(c1, mem.Word(x)); err != nil { // pre-cycle: no barrier needed
		t.Fatal(err)
	}

	if err := w.StartConcurrentCycle(); err != nil {
		t.Fatal(err)
	}
	// The serial marker pops LIFO, and the root scan pushed c1 then
	// black: one one-object step scans exactly `black` (empty), turning
	// it black while c1 — and through it x — is still gray.
	if w.ConcurrentStep(1) {
		t.Fatal("cycle completed in one step; the race window never opened")
	}
	// The hide: x's only pointer moves into the black object, and the
	// gray path to it is erased. Both stores go through the barrier.
	if err := w.Store(black, mem.Word(x)); err != nil {
		t.Fatal(err)
	}
	if err := w.Store(c1, 0); err != nil {
		t.Fatal(err)
	}
	if w.Heap.Marked(x) {
		t.Fatal("x already marked; the adversarial window did not open as constructed")
	}
	var steps int
	for !w.ConcurrentStep(1) {
		if steps++; steps > 10000 {
			t.Fatal("cycle did not terminate")
		}
	}
	// The sweep consumed the cycle's mark bits, so liveness is asserted
	// through its counts: x survived iff exactly the one garbage object
	// was freed and three objects (c1, black, x) remain.
	st := w.LastCollection()
	if st.Sweep.ObjectsFreed != 1 {
		t.Fatalf("sweep freed %d objects, want exactly the 1 garbage object", st.Sweep.ObjectsFreed)
	}
	if st.Sweep.ObjectsLive != 3 {
		t.Fatalf("sweep saw %d live objects, want 3 (c1, black, x)", st.Sweep.ObjectsLive)
	}
	if st.FinalDirtyBlocks == 0 {
		t.Fatal("finale rescanned no dirty blocks; the barrier never fired")
	}
}

// TestConcurrentMarkMostlyOutsideSTW pins the design's load-shifting
// claim: on a deep structure (a 2000-node list, reachable only
// link-by-link) the snapshot pause marks just the root-referenced
// head, the finale marks nothing new, and the background chunks do
// everything in between — more than 90% of the cycle's marking.
func TestConcurrentMarkMostlyOutsideSTW(t *testing.T) {
	w := newWorld(t, Config{ConcurrentMark: true, GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	const nodes = 2000
	var head, prev mem.Addr
	for i := 0; i < nodes; i++ {
		p, err := w.Allocate(2, false)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 {
			if err := w.Store(prev, mem.Word(p)); err != nil {
				t.Fatal(err)
			}
		} else {
			head = p
		}
		prev = p
	}
	if err := data.Store(0x2000, mem.Word(head)); err != nil {
		t.Fatal(err)
	}
	if err := w.StartConcurrentCycle(); err != nil {
		t.Fatal(err)
	}
	for steps := 0; !w.ConcurrentStep(64); steps++ {
		if steps > 1_000_000 {
			t.Fatal("concurrent cycle did not terminate")
		}
	}
	st := w.LastCollection()
	if st.Mark.ObjectsMarked < nodes {
		t.Fatalf("marked %d objects, want at least the %d list nodes", st.Mark.ObjectsMarked, nodes)
	}
	if st.MarkedConcurrent*10 < st.Mark.ObjectsMarked*9 {
		t.Fatalf("only %d of %d objects marked outside the pauses, want > 90%%",
			st.MarkedConcurrent, st.Mark.ObjectsMarked)
	}
}

// TestConcurrentMarkBornBlack pins allocation-during-marking: objects
// allocated mid-cycle — through a mutator handle's cache carves and
// the direct path alike — are born black and survive the in-flight
// cycle even when nothing roots them (floating garbage); the next
// collection reclaims the unrooted ones.
func TestConcurrentMarkBornBlack(t *testing.T) {
	w := newWorld(t, Config{ConcurrentMark: true, GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	m := w.NewMutator()
	if err := w.StartConcurrentCycle(); err != nil {
		t.Fatal(err)
	}
	const rooted, floating = 20, 30
	for i := 0; i < rooted; i++ {
		if _, err := m.AllocateRooted(data, 0x2000+mem.Addr(4*i), 4, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < floating; i++ {
		if _, err := m.Allocate(4, i%2 == 0); err != nil { // cache fast path
			t.Fatal(err)
		}
		if _, err := w.Allocate(600, false); err != nil { // direct, large
			t.Fatal(err)
		}
	}
	for steps := 0; !w.ConcurrentStep(16); steps++ {
		if steps > 1_000_000 {
			t.Fatal("concurrent cycle did not terminate")
		}
	}
	if freed := w.LastCollection().Sweep.ObjectsFreed; freed != 0 {
		t.Fatalf("in-flight cycle freed %d mid-cycle allocations, want 0 (born black)", freed)
	}
	// The next, fully-observed collection reclaims the floating garbage.
	st := w.Collect()
	if st.Sweep.ObjectsFreed != 2*floating {
		t.Fatalf("follow-up collection freed %d, want the %d unrooted mid-cycle objects",
			st.Sweep.ObjectsFreed, 2*floating)
	}
	if st.Sweep.ObjectsLive != rooted {
		t.Fatalf("follow-up collection kept %d, want the %d rooted objects", st.Sweep.ObjectsLive, rooted)
	}
}

// TestConcurrentMarkFastPathZeroAlloc pins the fast path's cost while
// a concurrent cycle is marking: an untraced world's cached mutator
// allocation is still a pointer bump — zero Go allocations — because
// the cycle's work (born-black carves, the write barrier) lives
// entirely on the slow paths.
func TestConcurrentMarkFastPathZeroAlloc(t *testing.T) {
	w := newWorld(t, Config{ConcurrentMark: true, GCDivisor: -1})
	m := w.NewMutator()
	// Warm the cache, then open a cycle (no background driver: the
	// explicit entry point keeps every goroutine's allocations out of
	// the measurement).
	for i := 0; i < 8; i++ {
		if _, err := m.Allocate(2, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.StartConcurrentCycle(); err != nil {
		t.Fatal(err)
	}
	if !w.ConcurrentActive() {
		t.Fatal("cycle not active")
	}
	// The snapshot flushed the cache; refill mid-cycle (born-black
	// carve), then measure the in-cycle fast path.
	if _, err := m.Allocate(2, false); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := m.Allocate(2, false); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("in-cycle cached Allocate allocates %v times per call, want 0", avg)
	}
	w.FinishConcurrentCycle()
}

// FuzzConcurrentMark fuzzes interleavings of mutator work with the
// concurrent cycle's own control points: stores, explicit frees,
// rooted and garbage allocations, cycle starts, bounded steps, and
// forced finales, on one deterministic goroutine. Invariants: no
// operation errors, every cycle terminates, rooted objects are never
// lost (their roots still resolve to allocated objects at the end),
// the final audit balances, and the object count is conserved.
func FuzzConcurrentMark(f *testing.F) {
	f.Add(uint8(0), []byte{0x00, 0x41, 0x9a, 0xe3, 0x07, 0xff, 0x22, 0x6d})
	f.Add(uint8(1), []byte{0x05, 0x25, 0x45, 0x65, 0x85, 0xa5, 0xc5, 0xe5, 0x06, 0x06})
	f.Add(uint8(2), []byte{0xe0, 0xe4, 0xe8, 0x02, 0x03, 0x83, 0x43, 0x23, 0x13, 0x0b})
	f.Add(uint8(3), []byte{0x07, 0x07, 0x07, 0x07, 0x0f, 0x0f, 0x0f, 0x0f, 0xc3, 0xc7})
	cfgs := []Config{
		{ConcurrentMark: true, GCDivisor: -1},
		{ConcurrentMark: true, GCDivisor: -1, MarkWorkers: 4},
		{ConcurrentMark: true, GCDivisor: -1, LineAlloc: true, LazySweep: true},
		{ConcurrentMark: true, GCDivisor: -1, Generational: true, LazySweep: true},
	}
	f.Fuzz(func(t *testing.T, mode uint8, prog []byte) {
		if len(prog) > 512 {
			prog = prog[:512]
		}
		w := newWorld(t, cfgs[int(mode)%len(cfgs)])
		const slots = 8
		data := addData(t, w, "roots", 0x2000, 4*slots)
		m := w.NewMutator()
		sizes := []int{1, 2, 4, 8, 16, 64, 600}
		var roots [slots]mem.Addr
		var atomicRoot [slots]bool
		var total uint64
		for _, b := range prog {
			op := b & 7
			j := uint32(b>>3) & 7
			si := int(b>>6) % len(sizes)
			switch op {
			case 0, 1: // rooted allocation (op 1: atomic)
				p, err := m.AllocateRooted(data, 0x2000+mem.Addr(4*j), sizes[si], op == 1)
				if err != nil {
					t.Fatal(err)
				}
				total++
				roots[j] = p
				atomicRoot[j] = op == 1
			case 2: // garbage allocation
				if _, err := m.Allocate(sizes[(si+int(j))%len(sizes)], false); err != nil {
					t.Fatal(err)
				}
				total++
			case 3: // barrier-visible store: link root j into root j+1
				k := (j + 1) % slots
				if roots[j] != 0 && !atomicRoot[j] && roots[k] != 0 {
					if err := m.Store(roots[j], mem.Word(roots[k])); err != nil {
						t.Fatal(err)
					}
				}
			case 4: // free the rooted object, then clear the root
				if roots[j] == 0 {
					continue
				}
				if err := m.Free(roots[j]); err != nil {
					t.Fatal(err)
				}
				if err := m.Store(0x2000+mem.Addr(4*j), 0); err != nil {
					t.Fatal(err)
				}
				roots[j] = 0
			case 5: // open a cycle (no-op if one is active)
				if err := w.StartConcurrentCycle(); err != nil {
					t.Fatal(err)
				}
			case 6: // one bounded chunk
				w.ConcurrentStep(int(j)*8 + 1)
			case 7: // forced finale (or a plain collection when idle)
				if w.ConcurrentActive() {
					w.FinishConcurrentCycle()
				} else if j == 0 {
					m.Collect()
				}
			}
		}
		w.FinishConcurrentCycle()
		w.Collect()
		w.FinishSweep()
		if err := w.VerifyIntegrity(); err != nil {
			t.Fatal(err)
		}
		if got := w.Heap.Stats().ObjectsAllocated; got != total {
			t.Fatalf("central ObjectsAllocated = %d, script allocated %d", got, total)
		}
		// Every root that survived the tape still resolves to an
		// allocated object: nothing rooted was lost to a cycle.
		for j, p := range roots {
			if p == 0 {
				continue
			}
			if base, ok := w.Heap.FindObject(p, false); !ok || base != p {
				t.Fatalf("root %d: object %#x lost", j, uint32(p))
			}
		}
	})
}
