package platform

import (
	"sync"
	"testing"
)

// TestParallelMarkingMatchesSerialAcrossProfiles runs program T once
// per table-1 profile with serial marking and again with 4 mark
// workers, same seed, and requires identical results: retained lists,
// collection count, final heap size, and final blacklist size. The
// parallel mark phase marks exactly the serial object set (CAS admits
// one winner per mark bit), so every downstream quantity the paper
// reports must be unchanged.
func TestParallelMarkingMatchesSerialAcrossProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full program-T runs")
	}
	profiles := []Profile{SPARCStatic(false), SPARCDynamic(false), SGI(false), OS2(false), PCR(0)}
	type outcome struct {
		retained, total, collections, heapBytes, blLen int
	}
	runOne := func(p Profile, workers int) (outcome, error) {
		p.MarkWorkers = workers
		env, err := p.Build(7, true)
		if err != nil {
			return outcome{}, err
		}
		res, err := env.RunProgramT()
		if err != nil {
			return outcome{}, err
		}
		return outcome{
			retained:    res.RetainedLists,
			total:       res.TotalLists,
			collections: res.Collections,
			heapBytes:   res.HeapBytes,
			blLen:       env.World.Blacklist.Len(),
		}, nil
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, p := range profiles {
		wg.Add(1)
		go func(p Profile) {
			defer wg.Done()
			serial, err := runOne(p, 1)
			if err == nil {
				var par outcome
				par, err = runOne(p, 4)
				if err == nil && par != serial {
					mu.Lock()
					t.Errorf("%s: parallel %+v, serial %+v", p.Name, par, serial)
					mu.Unlock()
					return
				}
			}
			if err != nil {
				mu.Lock()
				t.Error(p.Name, err)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
}
