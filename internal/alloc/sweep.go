package alloc

import (
	"fmt"

	"repro/internal/mem"
)

// SweepResult reports what one sweep reclaimed and retained.
type SweepResult struct {
	ObjectsFreed   uint64
	BytesFreed     uint64
	ObjectsLive    uint64
	BytesLive      uint64
	BlocksReleased int // blocks returned to the free structure
	BlocksKept     int // dedicated blocks retained
}

// sweep reclaims every unmarked object and rebuilds the size-class free
// lists, as the paper's collector does after each mark phase. When
// clearMarks is true (full collections) survivors' mark bits are
// cleared for the next cycle; when false (SweepSticky, minor
// collections) they are preserved as the "old" flag.
//
// Wholly empty blocks are returned to the free block structure (address
// ordered with coalescing by default), which both lets the blacklist
// steer future placement and implements the paper's fragmentation
// argument for sorted free lists.
func (a *Allocator) sweep(clearMarks bool) SweepResult {
	var r SweepResult
	// Free lists are rebuilt from scratch: the threaded slots live in
	// blocks that may be released below.
	for i := range a.freeList {
		a.freeList[i] = 0
	}
	for k := range a.typedFree {
		delete(a.typedFree, k)
	}
	for bi := 0; bi < len(a.blocks); bi++ {
		b := &a.blocks[bi]
		switch b.state {
		case blockFree, blockLargeCont:
			continue
		case blockLargeHead:
			n := int(b.spanLen)
			if b.markBits[0]&1 != 0 {
				if clearMarks {
					b.markBits[0] = 0
				}
				r.ObjectsLive++
				r.BytesLive += uint64(int(b.objWords) * mem.WordBytes)
				r.BlocksKept += n
			} else {
				r.ObjectsFreed++
				r.BytesFreed += uint64(int(b.objWords) * mem.WordBytes)
				a.releaseSpan(bi, n)
				r.BlocksReleased += n
				a.stats.BlocksDedicated -= n
				a.stats.BlocksFree += n
			}
			bi += n - 1
		case blockSmall:
			words := int(b.objWords)
			nslots := slotsPerBlock(words)
			objBytes := uint64(words * mem.WordBytes)
			live := 0
			for slot := a.firstSlot(words); slot < nslots; slot++ {
				if bitGet(b.allocBits, slot) && bitGet(b.markBits, slot) {
					live++
				}
			}
			if live == 0 {
				freed := int(b.liveSlots)
				r.ObjectsFreed += uint64(freed)
				r.BytesFreed += uint64(freed) * objBytes
				a.releaseSpan(bi, 1)
				r.BlocksReleased++
				a.stats.BlocksDedicated--
				a.stats.BlocksFree++
				continue
			}
			// Rebuild this block's contribution to its free list,
			// threading in address order, and clear mark bits. Typed
			// blocks thread onto their (class, descriptor) list.
			typed := b.desc >= 0
			idx := int(b.class)
			if b.atomic {
				idx += NumClasses
			}
			tkey := typedKey{class: int(b.class), desc: b.desc}
			base := a.blockBase(bi)
			hw := a.blockWords(bi)
			var head mem.Addr
			if typed {
				head = a.typedFree[tkey]
			} else {
				head = a.freeList[idx]
			}
			for slot := nslots - 1; slot >= a.firstSlot(words); slot-- {
				if bitGet(b.allocBits, slot) {
					if bitGet(b.markBits, slot) {
						if clearMarks {
							bitClear(b.markBits, slot)
						}
						continue
					}
					// Newly freed: zero the body so the next owner gets
					// clean memory.
					bitClear(b.allocBits, slot)
					for w := 1; w < words; w++ {
						hw[slot*words+w] = 0
					}
					r.ObjectsFreed++
					r.BytesFreed += objBytes
				}
				hw[slot*words] = mem.Word(head)
				head = base + mem.Addr(slot*words*mem.WordBytes)
			}
			if typed {
				a.typedFree[tkey] = head
			} else {
				a.freeList[idx] = head
			}
			b.liveSlots = int32(live)
			r.ObjectsLive += uint64(live)
			r.BytesLive += uint64(live) * objBytes
			r.BlocksKept++
		}
	}
	a.stats.BytesLive = r.BytesLive
	a.stats.ObjectsLive = r.ObjectsLive
	return r
}

// ClearMarks clears every mark bit without sweeping. The collector uses
// it for mark-only experiments (e.g. measuring apparently-live data
// without disturbing the heap).
func (a *Allocator) ClearMarks() {
	for bi := range a.blocks {
		b := &a.blocks[bi]
		switch b.state {
		case blockLargeHead:
			b.markBits[0] = 0
		case blockSmall:
			for i := range b.markBits {
				b.markBits[i] = 0
			}
		}
	}
}

// CountMarked returns the number and total bytes of marked objects; it
// is used by mark-only experiments ("apparently accessible" counts in
// the paper's section 3.1).
func (a *Allocator) CountMarked() (objects uint64, bytes uint64) {
	for bi := range a.blocks {
		b := &a.blocks[bi]
		switch b.state {
		case blockLargeHead:
			if b.markBits[0]&1 != 0 {
				objects++
				bytes += uint64(int(b.objWords) * mem.WordBytes)
			}
		case blockSmall:
			words := int(b.objWords)
			for slot := 0; slot < slotsPerBlock(words); slot++ {
				if bitGet(b.markBits, slot) {
					objects++
					bytes += uint64(words * mem.WordBytes)
				}
			}
		}
	}
	return objects, bytes
}

// Free explicitly deallocates the object at base, like the original
// collector's GC_free. The paper's leak-detection usage mixes explicit
// deallocation with collection; tests also use Free to construct
// specific heap shapes.
func (a *Allocator) Free(base mem.Addr) error {
	if !a.InCommitted(base) {
		return fmt.Errorf("alloc: Free(%#x): not a heap address", uint32(base))
	}
	bi := a.blockIndex(base)
	b := &a.blocks[bi]
	hw := a.blockWords(bi)
	switch b.state {
	case blockLargeHead:
		if base != a.blockBase(bi) {
			return fmt.Errorf("alloc: Free(%#x): not an object base", uint32(base))
		}
		n := int(b.spanLen)
		a.releaseSpan(bi, n)
		a.stats.BlocksDedicated -= n
		a.stats.BlocksFree += n
		return nil
	case blockSmall:
		words := int(b.objWords)
		off := int(base - a.blockBase(bi))
		if off%(words*mem.WordBytes) != 0 {
			return fmt.Errorf("alloc: Free(%#x): not an object base", uint32(base))
		}
		slot := off / (words * mem.WordBytes)
		if slot >= slotsPerBlock(words) || !bitGet(b.allocBits, slot) {
			return fmt.Errorf("alloc: Free(%#x): not allocated", uint32(base))
		}
		bitClear(b.allocBits, slot)
		bitClear(b.markBits, slot)
		b.liveSlots--
		for w := 1; w < words; w++ {
			hw[slot*words+w] = 0
		}
		if b.desc >= 0 {
			tkey := typedKey{class: int(b.class), desc: b.desc}
			hw[slot*words] = mem.Word(a.typedFree[tkey])
			a.typedFree[tkey] = base
			return nil
		}
		idx := int(b.class)
		if b.atomic {
			idx += NumClasses
		}
		hw[slot*words] = mem.Word(a.freeList[idx])
		a.freeList[idx] = base
		return nil
	}
	return fmt.Errorf("alloc: Free(%#x): not an object", uint32(base))
}
