package repro

import (
	"repro/internal/stats"
	"repro/internal/workload"
)

// GridsOptions configures the figure-3/4 experiment (E4).
type GridsOptions struct {
	Rows, Cols int // default 100x100
	Trials     int // default 500
	Seed       uint64
}

// GridRow is one grid representation's retention summary.
type GridRow struct {
	Kind            GridKind
	TotalObjects    int
	MeanRetained    float64
	MaxRetained     uint64
	MeanFractionPct float64
}

// Grids reproduces figures 3 and 4: the expected consequence of a
// single false reference into a rectangular grid represented with
// embedded links versus separate cons cells. "In the former case, a
// false reference can be expected to result in the retention of a
// large fraction of the structure. In the latter case, at most a
// single row or column is affected."
func Grids(opt GridsOptions) ([]GridRow, *stats.Table, error) {
	if opt.Rows == 0 {
		opt.Rows = 100
	}
	if opt.Cols == 0 {
		opt.Cols = 100
	}
	if opt.Trials == 0 {
		opt.Trials = 500
	}
	var rows []GridRow
	for _, kind := range []GridKind{GridEmbedded, GridSeparate} {
		w, err := NewWorld(Config{
			InitialHeapBytes: 8 << 20,
			ReserveHeapBytes: 32 << 20,
			GCDivisor:        -1,
		})
		if err != nil {
			return nil, nil, err
		}
		st, err := workload.MeasureGridRetention(w, opt.Rows, opt.Cols, kind, opt.Trials, opt.Seed)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, GridRow{
			Kind:            kind,
			TotalObjects:    st.TotalObjects,
			MeanRetained:    st.MeanRetained,
			MaxRetained:     st.MaxRetained,
			MeanFractionPct: st.MeanFractionPct,
		})
	}
	tab := stats.NewTable("Figures 3/4: retention from one false reference into a grid",
		"Representation", "Objects", "Mean retained", "Max retained", "Mean % of structure")
	for _, r := range rows {
		tab.AddF(r.Kind, r.TotalObjects, int(r.MeanRetained+0.5), r.MaxRetained,
			stats.Pct(r.MeanFractionPct/100))
	}
	return rows, tab, nil
}

// TreeRow is one tree depth's retention summary (E6).
type TreeRow struct {
	Depth          int
	Nodes          int
	MeanRetained   float64
	TheoryRetained float64
}

// Trees measures the expected retention from a single false reference
// into balanced binary trees of several depths, against the paper's
// prediction that it is "approximately equal to the height of the
// tree".
func Trees(depths []int, trials int, seed uint64) ([]TreeRow, *stats.Table, error) {
	if len(depths) == 0 {
		depths = []int{8, 12, 16}
	}
	if trials == 0 {
		trials = 2000
	}
	var rows []TreeRow
	for _, d := range depths {
		w, err := NewWorld(Config{
			InitialHeapBytes: 16 << 20,
			ReserveHeapBytes: 64 << 20,
			GCDivisor:        -1,
		})
		if err != nil {
			return nil, nil, err
		}
		st, err := workload.MeasureTreeRetention(w, d, trials, seed)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, TreeRow{
			Depth:          d,
			Nodes:          st.Nodes,
			MeanRetained:   st.MeanRetained,
			TheoryRetained: st.TheoryRetained,
		})
	}
	tab := stats.NewTable("Section 4: balanced-tree retention from one false reference",
		"Depth", "Nodes", "Mean retained", "Theory (~height)")
	for _, r := range rows {
		tab.AddF(r.Depth, r.Nodes, fmtF(r.MeanRetained), fmtF(r.TheoryRetained))
	}
	return rows, tab, nil
}

// QueueRow summarises one queue-churn configuration (E6).
type QueueRow struct {
	Structure        string
	Mitigated        bool // links cleared / no false ref
	PeakLiveObjects  uint64
	FinalLiveObjects uint64
}

// QueuesAndStreams reproduces section 4's unbounded-growth pathologies:
// a bounded-window queue and a memoising lazy stream, each pinned by a
// single false reference, with and without the paper's mitigation
// (clearing the link field on removal).
func QueuesAndStreams(window, steps int, seed uint64) ([]QueueRow, *stats.Table, error) {
	if window == 0 {
		window = 100
	}
	if steps == 0 {
		steps = 50000
	}
	var rows []QueueRow
	for _, clear := range []bool{false, true} {
		w, err := NewWorld(Config{
			InitialHeapBytes: 4 << 20,
			ReserveHeapBytes: 64 << 20,
			GCDivisor:        -1,
		})
		if err != nil {
			return nil, nil, err
		}
		root, err := w.Space.MapNew("roots", KindData, 0x2000, 4096, 4096)
		if err != nil {
			return nil, nil, err
		}
		res, err := workload.RunQueueChurn(w, window, steps, clear, root, 0x2000)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, QueueRow{
			Structure:        "queue + false ref",
			Mitigated:        clear,
			PeakLiveObjects:  res.PeakLiveObjects,
			FinalLiveObjects: res.FinalLiveObjects,
		})
	}
	for _, falseRef := range []bool{true, false} {
		w, err := NewWorld(Config{
			InitialHeapBytes: 4 << 20,
			ReserveHeapBytes: 64 << 20,
			GCDivisor:        -1,
		})
		if err != nil {
			return nil, nil, err
		}
		root, err := w.Space.MapNew("roots", KindData, 0x2000, 4096, 4096)
		if err != nil {
			return nil, nil, err
		}
		res, err := workload.RunLazyStream(w, steps, falseRef, root, 0x2000)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, QueueRow{
			Structure:        "lazy stream",
			Mitigated:        !falseRef,
			PeakLiveObjects:  res.PeakLiveObjects,
			FinalLiveObjects: res.FinalLiveObjects,
		})
	}
	tab := stats.NewTable("Section 4: unbounded structures pinned by one false reference",
		"Structure", "Mitigated?", "Peak live objects", "Final live objects")
	for _, r := range rows {
		tab.AddF(r.Structure, r.Mitigated, r.PeakLiveObjects, r.FinalLiveObjects)
	}
	return rows, tab, nil
}

func fmtF(f float64) string {
	return stats.Pct(f / 100) // reuse the 1-decimal formatter
}
