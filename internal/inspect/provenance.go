package inspect

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/mark"
	"repro/internal/mem"
)

// Renderers for the retention-provenance subsystem: "why is this
// object live?" paths, retention reports, and the JSON heap-snapshot
// export behind cmd/heapdump -snapshot.

// describeSlot names a record's referencing location.
func describeSlot(r mark.ParentRecord) string {
	switch r.Kind {
	case mark.RootNone:
		if r.Parent == 0 {
			return "(unattributed root)"
		}
		return fmt.Sprintf("%#08x field %d (@%#08x)",
			uint32(r.Parent), r.Index, uint32(r.Parent)+uint32(r.Index)*mem.WordBytes)
	case mark.RootRegister:
		return fmt.Sprintf("register %d (%s)", r.Index, srcName(r.Src))
	default: // stack, segment
		return fmt.Sprintf("%s word %d (%s, @%#08x)", r.Kind, r.Index, srcName(r.Src), uint32(r.Parent))
	}
}

func srcName(src int32) string {
	if src < 0 {
		return "world"
	}
	return fmt.Sprintf("src %d", src)
}

// refNote annotates a record's reference classification.
func refNote(r mark.ParentRecord) string {
	note := r.Ref.String()
	if r.Declared {
		note += ", declared"
	}
	if r.Off != 0 {
		note += fmt.Sprintf(", byte offset %d", r.Off)
	}
	return note
}

// WhyLivePath renders a World.WhyLive chain root-first: the first line
// is the root slot that ultimately retains the object, each following
// line one heap hop, the last line the object itself.
func WhyLivePath(addr mem.Addr, path []mark.ParentRecord) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "why live: %#08x (%d hops)\n", uint32(addr), len(path))
	for i := len(path) - 1; i >= 0; i-- {
		r := path[i]
		fmt.Fprintf(&sb, "  %s holds %#08x [%s] -> %#08x\n",
			describeSlot(r), uint32(r.Value), refNote(r), uint32(r.Obj))
	}
	return sb.String()
}

// RetentionText renders a retention report as text: the headline
// genuine/spurious split, the per-size and per-label breakdowns, and
// the sole-retention ranking.
func RetentionText(rep core.RetentionReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "retention: %d objects live (%d B)", rep.LiveObjects, rep.LiveBytes)
	if rep.CensoredRoots > 0 {
		fmt.Fprintf(&sb, ": %d genuine (%d B), %d spurious (%d B) with %d declared false root(s) censored",
			rep.GenuineObjects, rep.GenuineBytes, rep.SpuriousObjects, rep.SpuriousBytes, rep.CensoredRoots)
	}
	sb.WriteByte('\n')
	if len(rep.BySize) > 0 {
		sb.WriteString("by size class:\n")
		for _, sc := range rep.BySize {
			fmt.Fprintf(&sb, "  %4d words: %6d live (%d B)", sc.Words, sc.LiveObjects, sc.LiveBytes)
			if sc.SpuriousObjects > 0 {
				fmt.Fprintf(&sb, ", %d spurious (%d B)", sc.SpuriousObjects, sc.SpuriousBytes)
			}
			sb.WriteByte('\n')
		}
	}
	if len(rep.ByLabel) > 0 {
		sb.WriteString("by label:\n")
		for _, lc := range rep.ByLabel {
			fmt.Fprintf(&sb, "  %-16s %6d live (%d B)", lc.Label, lc.LiveObjects, lc.LiveBytes)
			if lc.SpuriousObjects > 0 {
				fmt.Fprintf(&sb, ", %d spurious (%d B)", lc.SpuriousObjects, lc.SpuriousBytes)
			}
			sb.WriteByte('\n')
		}
	}
	if len(rep.SoleRetainers) > 0 {
		fmt.Fprintf(&sb, "top sole retainers (%d root slots analysed):\n", rep.RootSlots)
		for i, rr := range rep.SoleRetainers {
			fmt.Fprintf(&sb, "  %2d. %s holds %#08x [%s]: %d objects, %d B\n",
				i+1, rr.Slot, uint32(rr.Value), rr.Ref, rr.Objects, rr.Bytes)
		}
	}
	return sb.String()
}

// JSON export forms: lower-case stable field names, symbolic kinds.

type jsonSnapshotObject struct {
	Addr   uint32 `json:"addr"`
	Words  int    `json:"words"`
	Atomic bool   `json:"atomic,omitempty"`
	Marked bool   `json:"marked,omitempty"`
	Label  string `json:"label,omitempty"`
}

type jsonSnapshotEdge struct {
	Src      uint32 `json:"src"`
	Index    int    `json:"index"`
	Dst      uint32 `json:"dst"`
	Interior bool   `json:"interior,omitempty"`
}

type jsonProvenanceRecord struct {
	Obj      uint32 `json:"obj"`
	Parent   uint32 `json:"parent"`
	Value    uint32 `json:"value"`
	Kind     string `json:"kind"`
	Ref      string `json:"ref"`
	Declared bool   `json:"declared,omitempty"`
	Off      uint8  `json:"off,omitempty"`
	Index    int32  `json:"index"`
	Src      int32  `json:"src"`
}

type jsonBlacklist struct {
	Pages int    `json:"pages"`
	Adds  uint64 `json:"adds"`
	Hits  uint64 `json:"hits"`
}

type jsonSnapshot struct {
	HeapBase        uint32                 `json:"heap_base"`
	HeapBytes       int                    `json:"heap_bytes"`
	Collections     int                    `json:"collections"`
	ProvenanceValid bool                   `json:"provenance_valid"`
	ProvenanceCycle int                    `json:"provenance_cycle"`
	Objects         []jsonSnapshotObject   `json:"objects"`
	Edges           []jsonSnapshotEdge     `json:"edges"`
	Provenance      []jsonProvenanceRecord `json:"provenance"`
	Blacklist       jsonBlacklist          `json:"blacklist"`
}

// WriteHeapSnapshot exports a World.BuildHeapSnapshot result as one
// indented JSON document.
func WriteHeapSnapshot(w io.Writer, snap core.HeapSnapshot) error {
	doc := jsonSnapshot{
		HeapBase:        uint32(snap.HeapBase),
		HeapBytes:       snap.HeapBytes,
		Collections:     snap.Collections,
		ProvenanceValid: snap.ProvenanceValid,
		ProvenanceCycle: snap.ProvenanceCycle,
		Objects:         []jsonSnapshotObject{},
		Edges:           []jsonSnapshotEdge{},
		Provenance:      []jsonProvenanceRecord{},
		Blacklist: jsonBlacklist{
			Pages: snap.Blacklist.Pages,
			Adds:  snap.Blacklist.Adds,
			Hits:  snap.Blacklist.Hits,
		},
	}
	for _, o := range snap.Objects {
		doc.Objects = append(doc.Objects, jsonSnapshotObject{
			Addr: uint32(o.Addr), Words: o.Words, Atomic: o.Atomic, Marked: o.Marked, Label: o.Label,
		})
	}
	for _, e := range snap.Edges {
		doc.Edges = append(doc.Edges, jsonSnapshotEdge{
			Src: uint32(e.Src), Index: e.Index, Dst: uint32(e.Dst), Interior: e.Interior,
		})
	}
	for _, r := range snap.Provenance {
		doc.Provenance = append(doc.Provenance, jsonProvenanceRecord{
			Obj: uint32(r.Obj), Parent: uint32(r.Parent), Value: uint32(r.Value),
			Kind: r.Kind.String(), Ref: r.Ref.String(),
			Declared: r.Declared, Off: r.Off, Index: r.Index, Src: r.Src,
		})
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
