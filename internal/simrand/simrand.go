// Package simrand provides the deterministic pseudo-random source used
// by every workload and platform profile in this reproduction.
//
// The paper reports its results as ranges because the scanned process
// image is polluted nondeterministically (environment variables,
// register values left by kernel calls, context switches). We reproduce
// the ranges by sweeping seeds of a deterministic generator instead, so
// every experiment in this repository is exactly repeatable.
//
// The generator is SplitMix64 (Steele, Lea & Flood 2014), which is tiny,
// fast, and passes BigCrush; math/rand would also do, but a local
// implementation keeps the stream stable across Go releases.
package simrand

// Rand is a deterministic random source. The zero value is valid and
// behaves as New(0).
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Seed resets the generator to the given seed.
func (r *Rand) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next value of the SplitMix64 stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint32 returns a uniform 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint32n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("simrand: Uint32n with zero n")
	}
	return uint32(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi). It panics if hi <= lo.
func (r *Rand) Range(lo, hi uint32) uint32 {
	if hi <= lo {
		panic("simrand: empty range")
	}
	return lo + r.Uint32n(hi-lo)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Byte returns a uniform byte.
func (r *Rand) Byte() byte { return byte(r.Uint64()) }

// PrintableByte returns a uniform printable ASCII byte in [0x20, 0x7E].
// Printable bytes are what the paper's static C library strings are made
// of; runs of them form the figure-1 style false pointers.
func (r *Rand) PrintableByte() byte { return byte(0x20 + r.Intn(0x7F-0x20)) }

// Shuffle randomly permutes the first n elements using swap, in the
// manner of rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Split returns a new generator whose stream is independent of r's
// continued use. It is used to give each subsystem (registers, static
// data, workload) its own stream so that adding draws to one does not
// perturb the others.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xA5A5A5A5DEADBEEF)
}
