package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
)

// gcDriver abstracts the two ways to drive a world — the direct World
// entry points and a Mutator handle — so one deterministic script can
// be replayed through both and compared bit for bit.
type gcDriver interface {
	Allocate(nwords int, atomic bool) (mem.Addr, error)
	Store(a mem.Addr, v mem.Word) error
	Free(base mem.Addr) error
	Collect() CollectionStats
}

type directDriver struct{ w *World }

func (d directDriver) Allocate(nwords int, atomic bool) (mem.Addr, error) {
	return d.w.Allocate(nwords, atomic)
}
func (d directDriver) Store(a mem.Addr, v mem.Word) error { return d.w.Store(a, v) }
func (d directDriver) Free(base mem.Addr) error           { return d.w.Heap.Free(base) }
func (d directDriver) Collect() CollectionStats           { return d.w.Collect() }

// mutatorScript drives one deterministic allocation history: mixed
// small/large sizes, atomic objects, data-segment roots, heap links
// into rooted (live) objects, explicit frees of rooted objects, and
// periodic explicit collections. Automatic triggers fire along the way
// per the world's config. Returns every allocated address in order.
func mutatorScript(t *testing.T, d gcDriver) []mem.Addr {
	t.Helper()
	const dataBase = mem.Addr(0x2000)
	const rootSlots = 64
	var roots [rootSlots]mem.Addr
	sizes := []int{1, 2, 3, 5, 8, 12, 17, 32, 64, 100, 130, 256, 520, 600}
	var addrs []mem.Addr
	rng := uint32(0x9e3779b9)
	next := func(n uint32) uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng % n
	}
	for i := 0; i < 2500; i++ {
		size := sizes[next(uint32(len(sizes)))]
		atomic := next(7) == 0
		p, err := d.Allocate(size, atomic)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, p)
		switch next(5) {
		case 0:
			// Root it in static data (pointer-free objects too: the
			// conservative marker must handle both).
			slot := next(rootSlots)
			if err := d.Store(dataBase+mem.Addr(4*slot), mem.Word(p)); err != nil {
				t.Fatal(err)
			}
			if atomic {
				roots[slot] = 0 // never link into or free atomic objects
			} else {
				roots[slot] = p
			}
		case 1:
			// Link the new object from a rooted (guaranteed live) one.
			if slot := next(rootSlots); roots[slot] != 0 {
				if err := d.Store(roots[slot], mem.Word(p)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if next(53) == 0 {
			// Explicitly free a rooted object (rooted ⇒ still allocated),
			// clearing the root first.
			if slot := next(rootSlots); roots[slot] != 0 {
				if err := d.Store(dataBase+mem.Addr(4*slot), 0); err != nil {
					t.Fatal(err)
				}
				if err := d.Free(roots[slot]); err != nil {
					t.Fatal(err)
				}
				roots[slot] = 0
			}
		}
		if next(701) == 0 {
			d.Collect()
		}
	}
	d.Collect()
	return addrs
}

// normalizeTimes zeroes a CollectionStats pair's wall-clock fields so
// the remaining fields compare exactly.
func normalizeTimes(a, b *CollectionStats) {
	a.Duration, b.Duration = 0, 0
	a.PauseMarkNs, b.PauseMarkNs = 0, 0
	a.PauseSweepNs, b.PauseSweepNs = 0, 0
	a.PauseStopNs, b.PauseStopNs = 0, 0
	a.PauseSnapshotNs, b.PauseSnapshotNs = 0, 0
	a.PauseFinalNs, b.PauseFinalNs = 0, 0
}

// TestMutatorDifferential proves the tentpole's compatibility claim: a
// single Mutator handle produces allocation addresses, collection
// statistics, and final heap state bit-identical to the direct
// World.Allocate path, in every collector mode. Batched carves hand
// out the same slots in the same order, safepoint flushes restore free
// lists exactly, and the handle's trigger mirror diverts to the slow
// path at precisely the allocations where the direct path collects.
func TestMutatorDifferential(t *testing.T) {
	configs := map[string]Config{
		"full":         {GCDivisor: 4},
		"generational": {Generational: true, MinorDivisor: 6, FullEvery: 3, GCDivisor: 4},
		"parallel":     {GCDivisor: 4, MarkWorkers: 4},
		"lazy":         {GCDivisor: 4, LazySweep: true},
		"gen-lazy":     {Generational: true, MinorDivisor: 6, FullEvery: 3, LazySweep: true},
		"par-lazy":     {GCDivisor: 4, MarkWorkers: 4, LazySweep: true},
		"incremental":  {Incremental: true, GCDivisor: 4, MarkQuantum: 32},
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			run := func(useHandle bool) ([]mem.Addr, []CollectionStats, *World) {
				w := newWorld(t, cfg)
				addData(t, w, "data", 0x2000, 4096)
				var stats []CollectionStats
				w.SetCollectionHook(func(st CollectionStats) { stats = append(stats, st) })
				var d gcDriver
				if useHandle {
					d = w.NewMutator()
				} else {
					d = directDriver{w}
				}
				addrs := mutatorScript(t, d)
				return addrs, stats, w
			}
			directAddrs, directStats, dw := run(false)
			handleAddrs, handleStats, hw := run(true)

			if len(directAddrs) != len(handleAddrs) {
				t.Fatalf("allocation counts diverge: %d direct, %d handle", len(directAddrs), len(handleAddrs))
			}
			for i := range directAddrs {
				if directAddrs[i] != handleAddrs[i] {
					t.Fatalf("allocation %d diverges: %#x direct, %#x handle",
						i, uint32(directAddrs[i]), uint32(handleAddrs[i]))
				}
			}
			if len(directStats) != len(handleStats) {
				t.Fatalf("collection counts diverge: %d direct, %d handle", len(directStats), len(handleStats))
			}
			for i := range directStats {
				a, b := directStats[i], handleStats[i]
				normalizeTimes(&a, &b)
				if a != b {
					t.Fatalf("cycle %d stats diverge:\ndirect %+v\nhandle %+v", i, a, b)
				}
			}
			if got, want := hw.Collections(), dw.Collections(); got != want {
				t.Fatalf("collections diverge: %d direct, %d handle", want, got)
			}
			if ds, hs := dw.Heap.Stats(), hw.Heap.Stats(); ds != hs {
				t.Fatalf("final heap stats diverge:\ndirect %+v\nhandle %+v", ds, hs)
			}
			if err := hw.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMutatorDifferentialMachine repeats the differential with a
// simulated machine attached — registers and stack as roots, allocator
// residue frames — comparing World.SetMutator against
// Mutator.SetRootSource.
func TestMutatorDifferentialMachine(t *testing.T) {
	cfg := Config{GCDivisor: 4, AllocatorResidue: true}
	mcfg := machine.Config{StackTop: 0x80000000, StackBytes: 256 * 1024}
	run := func(useHandle bool) ([]mem.Addr, []CollectionStats) {
		w := newWorld(t, cfg)
		addData(t, w, "data", 0x2000, 4096)
		var stats []CollectionStats
		w.SetCollectionHook(func(st CollectionStats) { stats = append(stats, st) })
		var d gcDriver
		if useHandle {
			mach, err := machine.New(w.Space, mcfg)
			if err != nil {
				t.Fatal(err)
			}
			m := w.NewMutator()
			m.SetRootSource(mach)
			d = m
		} else {
			withMachine(t, w, mcfg)
			d = directDriver{w}
		}
		return mutatorScript(t, d), stats
	}
	directAddrs, directStats := run(false)
	handleAddrs, handleStats := run(true)
	if len(directAddrs) != len(handleAddrs) {
		t.Fatalf("allocation counts diverge: %d direct, %d handle", len(directAddrs), len(handleAddrs))
	}
	for i := range directAddrs {
		if directAddrs[i] != handleAddrs[i] {
			t.Fatalf("allocation %d diverges: %#x direct, %#x handle",
				i, uint32(directAddrs[i]), uint32(handleAddrs[i]))
		}
	}
	if len(directStats) != len(handleStats) {
		t.Fatalf("collection counts diverge: %d direct, %d handle", len(directStats), len(handleStats))
	}
	for i := range directStats {
		a, b := directStats[i], handleStats[i]
		normalizeTimes(&a, &b)
		if a != b {
			t.Fatalf("cycle %d stats diverge:\ndirect %+v\nhandle %+v", i, a, b)
		}
	}
}

// TestMutatorCollectZeroAllocsUntraced extends the zero-allocation
// guarantee to the safepoint protocol: an untraced collection through
// a Mutator handle — stop, cache flush, publish, mark, sweep, resume —
// performs no Go heap allocations.
func TestMutatorCollectZeroAllocsUntraced(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	m := w.NewMutator()
	data := addData(t, w, "data", 0x2000, 4096)
	for i := 0; i < 200; i++ {
		p, err := m.Allocate(2, false)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := data.Store(0x2000+mem.Addr(4*(i/2)), mem.Word(p)); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Collect()
	m.Collect()
	w.FinishSweep()
	// Warm the cache so the warm-up run's safepoint flushes a live run;
	// later runs flush empty caches but walk the same protocol.
	if _, err := m.Allocate(3, false); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		m.Collect()
		w.FinishSweep()
	})
	if avg != 0 {
		t.Fatalf("untraced mutator Collect allocates %v times per cycle, want 0", avg)
	}
	// The cached fast path is allocation-free too: a pointer bump under
	// the handle lock. (Refill slow paths may allocate closure frames,
	// like the direct path always has.)
	if _, err := m.Allocate(2, false); err != nil {
		t.Fatal(err)
	}
	avg = testing.AllocsPerRun(10, func() {
		if _, err := m.Allocate(2, false); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("cached fast-path Allocate allocates %v times per call, want 0", avg)
	}
}

// TestMutatorStatsCounters sanity-checks the handle's own accounting:
// cached allocations dominate, refills batch, and safepoints flush.
func TestMutatorStatsCounters(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	m := w.NewMutator()
	for i := 0; i < 100; i++ {
		if _, err := m.Allocate(4, false); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.FastAllocs+st.SlowAllocs != 100 {
		t.Fatalf("fast %d + slow %d != 100", st.FastAllocs, st.SlowAllocs)
	}
	if st.FastAllocs < 90 {
		t.Fatalf("only %d of 100 allocations hit the cache", st.FastAllocs)
	}
	if st.Refills == 0 || st.RunSlots < st.Refills {
		t.Fatalf("refills %d / run slots %d look wrong", st.Refills, st.RunSlots)
	}
	m.Collect()
	if st = m.Stats(); st.FlushedSlots == 0 {
		t.Fatalf("safepoint flushed no slots despite a warm cache")
	}
	if err := w.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// The central stats see exactly the objects handed out.
	if got := w.Heap.Stats().ObjectsAllocated; got != 100 {
		t.Fatalf("central ObjectsAllocated = %d, want 100", got)
	}
}
