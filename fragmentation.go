package repro

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// FragmentationRow summarises one free-block policy's state after churn
// (E10).
type FragmentationRow struct {
	Policy           FreeBlockPolicy
	FreeSpans        int
	LargestFreeSpan  int // blocks
	MaxAllocatableKB int // largest single object placeable afterwards
	// Space buckets every committed byte (live, free slots, free
	// blocks, headers, large-object slack); Space.Sum() equals
	// Space.HeapBytes identically in both allocation profiles.
	Space alloc.SpaceBreakdown
	// Lines is the line-heap accounting (zero under free lists); its
	// WasteBytes — free slots stranded in partly-live lines — is a
	// subdivision of Space.FreeSlotBytes.
	Lines alloc.LineStats
}

// FragmentationOptions configures the churn.
type FragmentationOptions struct {
	HeapBytes int // default 16 MiB
	Rounds    int // default 8
	Seed      uint64
	// LineAlloc runs the churn under the line-heap profile
	// (Config.LineAlloc) instead of free lists.
	LineAlloc bool
	// SmallWords, when non-empty, interleaves small objects of these
	// word sizes with the block-span churn, so dedicated small blocks
	// (and, under LineAlloc, partly-live lines) appear in the space
	// accounting. Empty keeps the paper's pure block-span churn.
	SmallWords []int
}

// Fragmentation operationalises the paper's concluding argument: "even
// a completely nonmoving conservative collector should gain a slight
// advantage over a malloc/free implementation, in that it is usually
// much less expensive to keep free lists sorted by address. This
// increases the probability that related objects are allocated
// together, and thus increases the probability of large chunks of
// adjacent space becoming available in the future, decreasing
// fragmentation."
//
// Both allocators run the same random allocate/free churn of block-
// sized objects; afterwards we compare the shape of the free store and
// the largest object each can still place.
func Fragmentation(opt FragmentationOptions) ([]FragmentationRow, *stats.Table, error) {
	if opt.HeapBytes == 0 {
		opt.HeapBytes = 16 << 20
	}
	if opt.Rounds == 0 {
		opt.Rounds = 8
	}

	run := func(policy FreeBlockPolicy) (*FragmentationRow, error) {
		space := mem.NewAddressSpace()
		a, err := alloc.New(space, alloc.Config{
			HeapBase:     0x400000,
			InitialBytes: opt.HeapBytes,
			ReserveBytes: opt.HeapBytes,
			FreeBlocks:   policy,
			LineAlloc:    opt.LineAlloc,
		})
		if err != nil {
			return nil, err
		}
		rng := simrand.New(opt.Seed)
		var live, small []mem.Addr
		for round := 0; round < opt.Rounds; round++ {
			// Allocate block-span objects of 1..4 blocks until ~70% full,
			// interleaving small objects when requested.
			for {
				if len(opt.SmallWords) > 0 {
					p, err := a.Alloc(opt.SmallWords[rng.Intn(len(opt.SmallWords))], false)
					if err != nil && !errors.Is(err, alloc.ErrNeedMemory) {
						return nil, err
					}
					if err == nil {
						small = append(small, p)
					}
				}
				blocks := 1 + rng.Intn(4)
				p, err := a.Alloc(blocks*mem.PageWords, false)
				if errors.Is(err, alloc.ErrNeedMemory) {
					break
				}
				if err != nil {
					return nil, err
				}
				live = append(live, p)
			}
			// Free a random 60% of each population.
			rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
			keep := len(live) * 2 / 5
			for _, p := range live[keep:] {
				if err := a.Free(p); err != nil {
					return nil, err
				}
			}
			live = live[:keep]
			rng.Shuffle(len(small), func(i, j int) { small[i], small[j] = small[j], small[i] })
			keepSmall := len(small) * 2 / 5
			for _, p := range small[keepSmall:] {
				if err := a.Free(p); err != nil {
					return nil, err
				}
			}
			small = small[:keepSmall]
		}
		// Probe the largest object still placeable.
		maxKB := 0
		for kb := 4; kb <= opt.HeapBytes/1024; kb *= 2 {
			p, err := a.Alloc(kb*1024/mem.WordBytes, false)
			if errors.Is(err, alloc.ErrNeedMemory) {
				break
			}
			if err != nil {
				return nil, err
			}
			maxKB = kb
			if err := a.Free(p); err != nil {
				return nil, err
			}
		}
		return &FragmentationRow{
			Policy:           policy,
			FreeSpans:        len(a.FreeSpans()),
			LargestFreeSpan:  a.LargestFreeSpan(),
			MaxAllocatableKB: maxKB,
			Space:            a.SpaceBreakdown(),
			Lines:            a.LineStats(),
		}, nil
	}

	var rows []FragmentationRow
	for _, policy := range []FreeBlockPolicy{AddressOrdered, LIFO} {
		r, err := run(policy)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, *r)
	}
	tab := stats.NewTable("Conclusions: free-block policy vs fragmentation after churn",
		"Policy", "Free spans", "Largest span (blocks)", "Max allocatable")
	for _, r := range rows {
		name := "address-ordered"
		if r.Policy == LIFO {
			name = "LIFO (malloc-like)"
		}
		tab.AddF(name, r.FreeSpans, r.LargestFreeSpan, fmt.Sprintf("%d KB", r.MaxAllocatableKB))
	}
	return rows, tab, nil
}
