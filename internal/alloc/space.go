package alloc

import "repro/internal/mem"

// SpaceBreakdown is an exact byte accounting of the committed heap:
// every committed byte lands in exactly one bucket, so
//
//	HeapBytes = FreeBlockBytes + LiveBytes + CachedBytes +
//	            FreeSlotBytes + OverheadBytes + LargeSlackBytes
//
// holds identically in both allocation profiles. It is the experiment-
// facing companion to CheckIntegrity: the audit proves slot-count
// conservation, this exposes where the bytes are so fragmentation and
// space-overhead claims can be checked against the whole heap.
type SpaceBreakdown struct {
	HeapBytes      int // committed heap (every block, any state)
	FreeBlockBytes int // wholly-free blocks awaiting dedication
	// LiveBytes counts allocated slots and large objects. Slots carved
	// into mutator caches are indistinguishable from live here (their
	// alloc bits are set); pass their addresses to CheckIntegrity for
	// the exact audit.
	LiveBytes int
	// CachedBytes counts slots carved but not yet issued that the
	// allocator itself holds: central bump spans and the explicit-free
	// LIFO (line profile only; zero under free lists).
	CachedBytes int
	// FreeSlotBytes counts free slots inside dedicated small blocks:
	// free-list-threaded slots, or line-profile space reachable by a
	// future carve plus the slots stranded in partly-live lines (the
	// LineStats waste is a subdivision of this bucket).
	FreeSlotBytes int
	// OverheadBytes counts per-block space no slot can occupy: the
	// block-start offset reserved against off-by-one block straddles
	// (firstSlot) and the tail remainder when the class does not tile
	// the block exactly.
	OverheadBytes int
	// LargeSlackBytes is rounding inside large-object block spans: the
	// span is whole blocks, the object is not.
	LargeSlackBytes int
}

// SpaceBreakdown walks the block table and buckets every committed
// byte. Sweep-pending blocks are accounted by their current bitmaps,
// which still describe the previous cycle — the identity holds, but
// Live/Free splits for those blocks move once the deferred sweep runs.
func (a *Allocator) SpaceBreakdown() SpaceBreakdown {
	var sb SpaceBreakdown
	sb.HeapBytes = len(a.blocks) * mem.PageBytes

	// Central spans and the explicit-free LIFO hold carved slots whose
	// alloc bits are set; reclassify them from Live to Cached.
	carved := make(map[mem.Addr]bool)
	a.lineSpanSlots(func(p mem.Addr) { carved[p] = true })

	for bi := range a.blocks {
		b := &a.blocks[bi]
		switch b.state {
		case blockFree:
			sb.FreeBlockBytes += mem.PageBytes
		case blockSmall:
			words := int(b.objWords)
			nslots := slotsPerBlock(words)
			first := a.firstSlot(words)
			sb.OverheadBytes += (first*words + mem.PageWords - nslots*words) * mem.WordBytes
			base := a.blockBase(bi)
			for slot := first; slot < nslots; slot++ {
				bytes := words * mem.WordBytes
				switch {
				case !bitGet(b.allocBits, slot):
					sb.FreeSlotBytes += bytes
				case carved[base+mem.Addr(slot*words*mem.WordBytes)]:
					sb.CachedBytes += bytes
				default:
					sb.LiveBytes += bytes
				}
			}
		case blockLargeHead:
			// A large head IS an allocated object (freeing releases the
			// span back to blockFree); there are no alloc bits to consult.
			spanBytes := int(b.spanLen) * mem.PageBytes
			objBytes := int(b.objWords) * mem.WordBytes
			sb.LiveBytes += objBytes
			sb.LargeSlackBytes += spanBytes - objBytes
		case blockLargeCont:
			// Counted by the head block's span.
		}
	}
	return sb
}

// Sum re-adds the buckets; callers assert Sum() == HeapBytes.
func (sb SpaceBreakdown) Sum() int {
	return sb.FreeBlockBytes + sb.LiveBytes + sb.CachedBytes +
		sb.FreeSlotBytes + sb.OverheadBytes + sb.LargeSlackBytes
}
