// Package repro is a reproduction of "Space Efficient Conservative
// Garbage Collection" (Hans-J. Boehm, PLDI 1993) as a Go library.
//
// The paper's collector manages the malloc heap of a real 32-bit
// process and scans its registers, stack and static data
// conservatively. Go's runtime owns the real stack and heap, so this
// library builds the collector on a faithful substrate instead: a
// simulated 32-bit word-addressed address space (internal/mem), a
// mutator machine with SPARC-style register windows and a downward
// stack (internal/machine), a Boehm-Weiser block allocator
// (internal/alloc), and a conservative marker implementing the paper's
// figure-2 blacklisting algorithm (internal/mark). See DESIGN.md for
// the full inventory and EXPERIMENTS.md for paper-versus-measured
// results.
//
// # Quick start
//
//	w, err := repro.NewWorld(repro.Config{Blacklisting: repro.BlacklistDense})
//	if err != nil { ... }
//	data, _ := w.Space.MapNew("globals", repro.KindData, 0x2000, 4096, 4096)
//	obj, _ := w.Allocate(2, false)      // a two-word object
//	data.Store(0x2000, repro.Word(obj)) // root it
//	w.Collect()                         // obj survives
//
// The experiment drivers (Table1, Figure1, StackClearing, ...) each
// regenerate one of the paper's tables or figures; cmd/gcbench wraps
// them in a command-line tool.
package repro

import (
	"io"

	"repro/internal/alloc"
	"repro/internal/blacklist"
	"repro/internal/core"
	"repro/internal/inspect"
	"repro/internal/machine"
	"repro/internal/mark"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Core simulated-memory types.
type (
	// Addr is a byte address in the simulated 32-bit address space.
	Addr = mem.Addr
	// Word is the contents of one 32-bit memory word.
	Word = mem.Word
	// Segment is a contiguous run of simulated memory.
	Segment = mem.Segment
	// AddressSpace is an ordered collection of segments.
	AddressSpace = mem.AddressSpace
	// Kind classifies a segment (text, data, stack, heap).
	Kind = mem.Kind
)

// Segment kinds.
const (
	KindText  = mem.KindText
	KindData  = mem.KindData
	KindStack = mem.KindStack
	KindHeap  = mem.KindHeap
	KindOther = mem.KindOther
)

// Fundamental sizes of the simulated machine.
const (
	WordBytes = mem.WordBytes
	PageBytes = mem.PageBytes
)

// Collector types.
type (
	// World is one simulated process image under garbage collection.
	World = core.World
	// Config parameterises a World.
	Config = core.Config
	// CollectionStats describes one collection.
	CollectionStats = core.CollectionStats
	// BlacklistMode selects the blacklist representation.
	BlacklistMode = core.BlacklistMode
	// PointerPolicy selects pointer-validity rules.
	PointerPolicy = mark.PointerPolicy
	// AlignPolicy selects candidate extraction alignment.
	AlignPolicy = mark.AlignPolicy
	// BlacklistStats counts blacklist activity.
	BlacklistStats = blacklist.Stats
	// AllocStats reports allocator activity.
	AllocStats = alloc.Stats
	// LineStats is the line-heap space accounting (Config.LineAlloc).
	LineStats = alloc.LineStats
	// SpaceBreakdown buckets every committed heap byte exactly.
	SpaceBreakdown = alloc.SpaceBreakdown
	// FreeBlockPolicy selects free-block management.
	FreeBlockPolicy = alloc.FreeBlockPolicy
)

// Blacklist modes (paper, section 3).
const (
	BlacklistOff    = core.BlacklistOff
	BlacklistDense  = core.BlacklistDense
	BlacklistHashed = core.BlacklistHashed
)

// Pointer-validity policies (paper, section 2).
const (
	PointerBase     = mark.PointerBase
	PointerInterior = mark.PointerInterior
)

// Candidate alignment policies (paper, section 2 and figure 1).
const (
	AlignedWords  = mark.AlignedWords
	AnyByteOffset = mark.AnyByteOffset
)

// Free-block policies (paper, conclusions).
const (
	AddressOrdered = alloc.AddressOrdered
	LIFO           = alloc.LIFO
)

// NewWorld builds a collected world with the given configuration.
func NewWorld(cfg Config) (*World, error) { return core.NewWorld(nil, cfg) }

// NewWorldIn builds a collected world inside an existing address space.
func NewWorldIn(space *AddressSpace, cfg Config) (*World, error) {
	return core.NewWorld(space, cfg)
}

// Mutator machine types.
type (
	// Machine is a simulated mutator (registers + stack).
	Machine = machine.Machine
	// MachineConfig parameterises a Machine.
	MachineConfig = machine.Config
	// Frame is a live activation record.
	Frame = machine.Frame
	// ClearPolicy selects the stack-hygiene strategy (section 3.1).
	ClearPolicy = machine.ClearPolicy
)

// Stack clearing policies (paper, section 3.1).
const (
	ClearNone  = machine.ClearNone
	ClearCheap = machine.ClearCheap
	ClearEager = machine.ClearEager
)

// NewMachine creates a mutator machine in the world's address space and
// attaches it as the world's root source.
func NewMachine(w *World, cfg MachineConfig) (*Machine, error) {
	m, err := machine.New(w.Space, cfg)
	if err != nil {
		return nil, err
	}
	w.SetMutator(m)
	return m, nil
}

// Concurrent mutator handles (DESIGN.md section 5d). Create one per
// allocating goroutine:
//
//	m := w.NewMutator()
//	obj, _ := m.Allocate(2, false)           // usually lock-free of the central lock
//	obj, _ = m.AllocateRooted(data, 0x2000, 2, false) // allocate + root atomically
//	m.Collect()                              // stops and flushes every handle
type (
	// Mutator is one goroutine's allocation handle onto a World.
	Mutator = core.Mutator
	// MutatorStats counts one handle's fast/slow-path activity.
	MutatorStats = core.MutatorStats
)

// Multi-tenant serving (DESIGN.md section 5i). A Tenant wraps mutator
// handles with a heap budget and an over-budget policy:
//
//	t := w.NewTenant(TenantConfig{BudgetBytes: 64 << 10, Policy: TenantCollectFirst})
//	m := t.NewMutator()
//	_, err := m.Allocate(8, false) // errors.Is(err, ErrBudgetExceeded) once over budget
type (
	// Tenant is one budgeted session sharing a world's heap.
	Tenant = core.Tenant
	// TenantConfig declares a tenant's budget and policy.
	TenantConfig = core.TenantConfig
	// TenantStats is a snapshot of a tenant's accounting.
	TenantStats = core.TenantStats
	// TenantPolicy selects what an over-budget allocation does.
	TenantPolicy = core.TenantPolicy
	// BudgetError is the typed denial a fail-policy tenant returns.
	BudgetError = core.BudgetError
	// ServeSessionParams scripts one request-driven tenant session.
	ServeSessionParams = workload.ServeSessionParams
	// ServeSessionResult is one session's outcome.
	ServeSessionResult = workload.ServeSessionResult
	// ServeKind selects a session body (scheme churn or leak).
	ServeKind = workload.ServeKind
)

// Over-budget policies and serve-session kinds.
const (
	TenantFail         = core.TenantFail
	TenantCollectFirst = core.TenantCollectFirst
	TenantEvict        = core.TenantEvict
	ServeScheme        = workload.ServeScheme
	ServeLeak          = workload.ServeLeak
)

// Tenant sentinel errors (match with errors.Is) and the session entry
// point.
var (
	ErrBudgetExceeded  = core.ErrBudgetExceeded
	ErrTenantCancelled = core.ErrTenantCancelled
	ErrTenantEvicted   = core.ErrTenantEvicted
	RunServeSession    = workload.RunServeSession
)

// NewMutatorMachine creates a machine in the world's address space and
// attaches it as a mutator handle's root source: the machine's
// registers and stack are scanned as that mutator's roots at every
// safepoint.
func NewMutatorMachine(w *World, m *Mutator, cfg MachineConfig) (*Machine, error) {
	mach, err := machine.New(w.Space, cfg)
	if err != nil {
		return nil, err
	}
	m.SetRootSource(mach)
	return mach, nil
}

// Platform profiles (paper, table 1 and appendix B).
type (
	// Profile describes one table-1 environment.
	Profile = platform.Profile
	// Env is a built environment ready to run program T.
	Env = platform.Env
)

// Table-1 environment constructors.
var (
	SPARCStatic  = platform.SPARCStatic
	SPARCDynamic = platform.SPARCDynamic
	SGI          = platform.SGI
	OS2          = platform.OS2
	PCR          = platform.PCR
)

// Workload types (paper, appendix A and sections 3.1 and 4).
type (
	// ProgramTParams configures program T.
	ProgramTParams = workload.ProgramTParams
	// ProgramTResult reports a program-T run.
	ProgramTResult = workload.ProgramTResult
	// ReverseParams configures the list-reversal benchmark.
	ReverseParams = workload.ReverseParams
	// ReverseMode selects recursive vs loop compilation.
	ReverseMode = workload.ReverseMode
	// GridKind selects embedded vs separate grid links.
	GridKind = workload.GridKind
	// Queue is the section-4 bounded-window queue.
	Queue = workload.Queue
	// LazyStream is the section-4 memoising stream.
	LazyStream = workload.LazyStream
	// LazyStreamResult reports a lazy-stream false-reference run.
	LazyStreamResult = workload.LazyStreamResult
)

// Workload constants and constructors.
const (
	ReverseRecursive = workload.ReverseRecursive
	ReverseLoop      = workload.ReverseLoop
	GridEmbedded     = workload.GridEmbedded
	GridSeparate     = workload.GridSeparate
)

// Workload entry points.
var (
	RunProgramT    = workload.RunProgramT
	RunReversal    = workload.RunReversal
	RunLazyStream  = workload.RunLazyStream
	BuildGrid      = workload.BuildGrid
	NewQueue       = workload.NewQueue
	NewLazyStream  = workload.NewLazyStream
	MakeList       = workload.MakeList
	MakeListRooted = workload.MakeListRooted
)

// Observability types (see DESIGN.md section 5c). A TraceRecorder is
// attached with World.SetTracer or World.EnableTracing; a nil recorder
// is a valid, allocation-free no-op, so tracing costs nothing when off.
type (
	// TraceRecorder is a fixed-capacity ring buffer of collector events.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded collector event.
	TraceEvent = trace.Event
	// TraceKind identifies the type of a trace event.
	TraceKind = trace.Kind
	// MetricsRegistry is the world's counter/gauge registry, returned by
	// World.Metrics.
	MetricsRegistry = metrics.Registry
	// MetricSample is one metric's name, kind and value in a snapshot.
	MetricSample = metrics.Sample
	// Histogram is a log₂-bucketed pause-time distribution, returned by
	// MetricsRegistry.Histogram.
	Histogram = metrics.Histogram
	// HistogramSample is one histogram's JSON-exportable snapshot,
	// returned by MetricsRegistry.HistogramSnapshot and carried in the
	// trace JSON dump.
	HistogramSample = metrics.HistogramSample
)

// Online leak-detection types (DESIGN.md section 5j). Start a watcher
// with World.StartRetentionWatch; alerts stream on the returned
// channel and trends are read back with World.RetentionTrends.
type (
	// WatchConfig parameterises World.StartRetentionWatch.
	WatchConfig = core.WatchConfig
	// LeakAlert is one sustained-growth detection.
	LeakAlert = core.LeakAlert
	// LeakTrend is one attribution key's trend snapshot.
	LeakTrend = core.LeakTrend
)

// Retention-provenance types (DESIGN.md section 5e). Enable recording
// with World.EnableProvenance(true), collect, then ask World.WhyLive /
// World.GetRetentionReport / World.BuildHeapSnapshot.
type (
	// ParentRecord is one first-marking provenance record.
	ParentRecord = mark.ParentRecord
	// RootKind classifies a record's origin (register/stack/segment/heap).
	RootKind = mark.RootKind
	// RefKind classifies the referencing word (exact/interior/unaligned).
	RefKind = mark.RefKind
	// RetentionOptions parameterises World.GetRetentionReport.
	RetentionOptions = core.RetentionOptions
	// RetentionReport is the genuine-versus-spurious attribution.
	RetentionReport = core.RetentionReport
	// RootRetention is one root slot's sole-retention entry.
	RootRetention = core.RootRetention
	// RootSlotID names one root slot.
	RootSlotID = core.RootSlotID
	// SizeClassRetention is the per-object-size breakdown row.
	SizeClassRetention = core.SizeClassRetention
	// LabelRetention is the per-label breakdown row.
	LabelRetention = core.LabelRetention
	// HeapSnapshot is World.BuildHeapSnapshot's export.
	HeapSnapshot = core.HeapSnapshot
	// SnapshotObject is one object in a heap snapshot.
	SnapshotObject = core.SnapshotObject
	// SnapshotEdge is one heap→heap reference in a snapshot.
	SnapshotEdge = core.SnapshotEdge
)

// Root kinds (ParentRecord.Kind).
const (
	RootNone     = mark.RootNone
	RootRegister = mark.RootRegister
	RootStack    = mark.RootStack
	RootSegment  = mark.RootSegment
)

// Reference kinds (ParentRecord.Ref).
const (
	RefExact     = mark.RefExact
	RefInterior  = mark.RefInterior
	RefUnaligned = mark.RefUnaligned
)

// WhyLivePath renders a World.WhyLive chain root-first as text.
func WhyLivePath(addr Addr, path []ParentRecord) string {
	return inspect.WhyLivePath(addr, path)
}

// RetentionText renders a retention report as text.
func RetentionText(rep RetentionReport) string { return inspect.RetentionText(rep) }

// LeakAlertText renders one leak alert as a single line.
func LeakAlertText(a LeakAlert) string { return inspect.LeakAlertText(a) }

// LeakTrendsText renders a trend series as an aligned table.
func LeakTrendsText(trends []LeakTrend) string { return inspect.LeakTrendsText(trends) }

// WriteHeapSnapshot exports a heap snapshot as indented JSON.
func WriteHeapSnapshot(out io.Writer, snap HeapSnapshot) error {
	return inspect.WriteHeapSnapshot(out, snap)
}

// NewTraceRecorder creates a trace ring buffer holding up to capacity
// events (<= 0 selects the default capacity).
var NewTraceRecorder = trace.New

// HeapMap renders the world's heap as one character per block (see
// cmd/heapdump for the legend), width blocks per line.
func HeapMap(w *World, width int) string {
	return inspect.HeapMap(w.Heap, w.Blacklist, width)
}

// Summary renders the world's allocator, blacklist and collection
// statistics as text.
func Summary(w *World) string { return inspect.Summary(w) }

// TraceLine renders one collection in the style of the Go runtime's
// gctrace lines; pair it with World.SetCollectionHook.
func TraceLine(n int, st CollectionStats) string { return inspect.TraceLine(n, st) }
