package repro

import (
	"fmt"
	"testing"

	"repro/internal/simrand"
)

// TestSoakHeapBounded models the paper's deployment claim — "the Xerox
// Portable Common Runtime system is used routinely to run more than a
// million lines of Cedar/Mesa code" — as a long-running mixed workload:
// under every collector mode, a program whose live set is bounded must
// see a bounded heap, no matter how much it allocates.
func TestSoakHeapBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	modes := []struct {
		name string
		cfg  Config
	}{
		{"stop-the-world", Config{Blacklisting: BlacklistDense}},
		{"generational", Config{Generational: true, MinorDivisor: 4, FullEvery: 8}},
		{"incremental", Config{Incremental: true, MarkQuantum: 32}},
		{"lazy", Config{Blacklisting: BlacklistDense, LazySweep: true}},
		{"gen-lazy", Config{Generational: true, MinorDivisor: 4, FullEvery: 8,
			LazySweep: true}},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			cfg := mode.cfg
			cfg.InitialHeapBytes = 256 * 1024
			cfg.ReserveHeapBytes = 32 << 20
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			roots, err := w.Space.MapNew("roots", KindData, 0x2000, 4096, 4096)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(w, MachineConfig{
				StackTop: 0xF0000000, StackBytes: 256 * 1024,
				FrameSlopWords: 4, Clear: ClearCheap,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := simrand.New(7)

			// A rotating window of live structures: lists, trees of cons
			// cells, atomic buffers. Window size bounds the live set.
			const window = 64
			heads := make([]Addr, window)
			var peakHeap int
			for i := 0; i < 60000; i++ {
				var head Addr
				err := m.WithFrame(2, func(f *Frame) error {
					n := 1 + rng.Intn(30)
					for j := 0; j < n; j++ {
						cell, err := w.Allocate(2, rng.Bool(0.2))
						if err != nil {
							return err
						}
						if !rng.Bool(0.2) { // composite: link it
							w.Store(cell+4, Word(head))
						}
						head = cell
						f.Store(0, Word(head))
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				slot := rng.Intn(window)
				heads[slot] = head
				roots.Store(0x2000+Addr(4*slot), Word(head))
				if hb := w.Heap.Stats().HeapBytes; hb > peakHeap {
					peakHeap = hb
				}
			}
			// Live set ≤ 64 windows × ~30 cells × 8 B ≈ 15 KiB; anything
			// above a few MiB of heap would mean runaway retention.
			if peakHeap > 8<<20 {
				t.Fatalf("heap grew to %d MiB under a bounded live set", peakHeap>>20)
			}
			if w.Collections() < 10 {
				t.Fatalf("only %d collections in the soak", w.Collections())
			}
			// The window survives.
			for slot, h := range heads {
				if h != 0 && !w.Heap.IsAllocated(h) {
					t.Fatalf("window slot %d lost", slot)
				}
			}
			t.Log(fmt.Sprintf("%s: peak heap %d KiB over %d collections",
				mode.name, peakHeap/1024, w.Collections()))
		})
	}
}
