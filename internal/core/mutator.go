package core

import (
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Concurrent mutators. The paper's collector serves multi-threaded PCR
// programs — section 5 scans "all thread stacks" — and the original
// Boehm collector gives each thread free-list caches refilled in
// batches from the central size-class lists. The same design here:
//
//   - A Mutator handle holds one cached run of carved free slots per
//     (size class, atomic) pair. The common allocation is a pointer
//     bump along the run under the handle's own mutex: no central
//     lock, no heap-memory access at all (carve time already zeroed
//     the link word), so concurrent mutators never contend.
//   - The slow path — an empty cache, a large or typed object, heap
//     expansion, any collection — takes the world's central lock and
//     runs the original single-threaded code, with the cache refilled
//     by one batched alloc.AllocRun carve.
//   - Collections stop the world: stopMutatorsLocked parks every
//     handle at its next allocation point (by acquiring its mutex),
//     flushes its caches back to the free lists, and publishes its
//     locally-counted allocation stats. The sweep that follows
//     classifies blocks from their bitmaps, so an unflushed cached
//     slot — allocated bits set, reachable from nothing — would be
//     reclaimed and later carved a second time; flushing first is what
//     makes the caches invisible to every collector mode (full,
//     generational, incremental, parallel, lazy).
//
// Single-mutator equivalence. With one handle, every address and every
// CollectionStats is bit-for-bit what the direct World entry points
// produce (asserted by TestMutatorDifferential): AllocRun pops the
// same slots in the same order per-object allocation would, ReturnRun
// restores the untouched tail exactly, stats are published before any
// point that reads them, and the fast path diverts to the slow path at
// precisely the allocation where the direct path would trigger a
// collection — the handle mirrors the central BytesSinceGC trigger in
// sinceGC/trigger, resynchronised after every slow path.

// runSlots is how many free slots one batched refill carves. Refills
// happen under the central lock, so the value trades contention (small
// runs lock often) against flush latency and cache-held memory (large
// runs strand more slots at a safepoint). It never affects allocation
// addresses: carved runs hand out exactly the slots the central list
// would have.
const runSlots = 32

// allocCache is one size class's cached run: run[next:] are the carved
// slots not yet handed out. Under Config.LineAlloc the cache holds a
// bump span instead — [cursor, limit) in steps of the object size —
// and run stays empty; the two forms never coexist in one cache.
// words is the class's padded object size, recorded at refill for
// local byte accounting and for returning the tail to the right list.
type allocCache struct {
	run           []mem.Addr
	next          int
	words         int
	cursor, limit mem.Addr
}

// MutatorStats counts one handle's allocation activity.
type MutatorStats struct {
	// FastAllocs is how many allocations were served from a cached run
	// without taking the central lock.
	FastAllocs uint64
	// SlowAllocs is how many allocations took the central lock: cache
	// refills, large/typed objects, incremental-mode allocations, and
	// collection-trigger diversions.
	SlowAllocs uint64
	// Refills counts batched cache refills; RunSlots the slots they
	// carved.
	Refills  uint64
	RunSlots uint64
	// FlushedSlots counts unconsumed cached slots returned to the
	// central free lists by safepoint flushes.
	FlushedSlots uint64
}

// Mutator is one allocating goroutine's handle onto a World. Create
// one per goroutine with World.NewMutator; a handle must not be shared
// between goroutines (the collector may use any goroutine's handle —
// that is what the safepoint protocol synchronises — but each handle
// has at most one owner issuing calls on it).
//
// All methods are safe to call while other mutators allocate and
// collect concurrently.
type Mutator struct {
	w *World
	// src is the simulated machine scanned as this mutator's roots
	// (nil for a pure allocation handle). Guarded by both w.mu and
	// m.mu: the fast path reads it under m.mu; root scans read it
	// under w.mu with the mutator stopped.
	src RootSource
	// ten is the tenant this handle charges (nil for an untenanted
	// handle; see tenant.go). Immutable after creation, so both the
	// fast path (under m.mu) and the slow path (under w.mu) read it
	// without further coordination.
	ten *Tenant

	// mu makes the owner goroutine's fast path visible to the
	// safepoint protocol: stopMutatorsLocked acquires it (after w.mu —
	// always that order) to park the mutator at an allocation
	// boundary. The fast path holds it alone; the slow path holds only
	// w.mu, which is safe because every other-goroutine access to this
	// struct holds w.mu too.
	mu     sync.Mutex
	caches []allocCache
	// unpubObjects/unpubBytes count fast-path allocations not yet
	// folded into the central allocator stats; published (under w.mu)
	// at every slow path and safepoint, so the stats are exact at
	// every point the collector reads them.
	unpubObjects uint64
	unpubBytes   uint64
	// sinceGC mirrors the central BytesSinceGC as of the last slow
	// path, advanced locally by fast-path consumption; trigger is the
	// byte threshold at which the world would start a collection
	// (hasTrigger false: none — incremental mode diverts every
	// allocation instead). When sinceGC crosses trigger the fast path
	// diverts to the slow path, which re-evaluates the trigger
	// centrally — with one mutator this reproduces the direct path's
	// collection points exactly; with several it is a slightly stale
	// heuristic that the next refill corrects.
	sinceGC    uint64
	trigger    uint64
	hasTrigger bool
	stats      MutatorStats
}

// NewMutator registers and returns a new mutator handle. Handles are
// permanent: they stay registered (and their stacks stay roots) for
// the world's lifetime.
func (w *World) NewMutator() *Mutator { return w.newMutator(nil) }

// newMutator is the shared body of World.NewMutator and
// Tenant.NewMutator: t non-nil binds the handle to that tenant.
func (w *World) newMutator(t *Tenant) *Mutator {
	m := &Mutator{w: w, ten: t, caches: make([]allocCache, 2*alloc.NumClasses)}
	w.mu.Lock()
	w.muts = append(w.muts, m)
	if t != nil {
		t.muts = append(t.muts, m)
	}
	m.resyncLocked()
	w.met.mutators.Set(int64(len(w.muts)))
	w.mu.Unlock()
	return m
}

// SetRootSource attaches the simulated machine whose registers and
// stack are scanned as this mutator's roots (nil detaches).
func (m *Mutator) SetRootSource(src RootSource) {
	m.w.mu.Lock()
	m.mu.Lock()
	m.src = src
	m.mu.Unlock()
	m.w.mu.Unlock()
}

// RootSource returns the attached machine (possibly nil).
func (m *Mutator) RootSource() RootSource { return m.src }

// Allocate allocates an object of nwords words, like World.Allocate.
// Small objects are usually served from the handle's cached run
// without touching the central lock.
func (m *Mutator) Allocate(nwords int, atomic bool) (mem.Addr, error) {
	return m.allocate(nwords, atomic, nil, 0)
}

// AllocateRooted allocates like Allocate and stores the new object's
// address at dst[at] before returning — atomically with respect to
// safepoints, so there is no window in which the object exists but no
// root reaches it. This is the simulated equivalent of an allocation
// whose result lands directly in a register or rooted stack slot;
// concurrent drivers need it to keep objects provably live (a root
// written after Allocate returns could come too late: another
// mutator's collection may already have reclaimed the object).
//
// dst must be a mapped non-heap segment (typically a root data
// segment) and the slot at `at` must be owned by this mutator's
// goroutine. Root segments are rescanned in full by every collector
// mode, so the store needs no write barrier.
func (m *Mutator) AllocateRooted(dst *mem.Segment, at mem.Addr, nwords int, atomic bool) (mem.Addr, error) {
	return m.allocate(nwords, atomic, dst, at)
}

// allocate is the shared body of Allocate and AllocateRooted: dst nil
// means no rooting store.
func (m *Mutator) allocate(nwords int, atomic bool, dst *mem.Segment, at mem.Addr) (mem.Addr, error) {
	m.mu.Lock()
	if m.src != nil {
		m.src.OnAllocate()
	}
	if nwords >= 1 && !alloc.IsLarge(nwords) && !m.w.cfg.Incremental {
		class, words := alloc.ClassFor(nwords)
		idx := class
		if atomic {
			idx += alloc.NumClasses
		}
		c := &m.caches[idx]
		// Divert to the slow path at the allocation where the central
		// trigger would fire: the collection must happen now, not when
		// the cache next empties. A tenant handle also charges its
		// budget here with one CAS — a failed charge (or a cancelled
		// tenant) diverts to the slow path, which resolves the
		// over-budget policy under the central lock.
		fromSpan := c.cursor < c.limit
		bytes := uint64(words) * mem.WordBytes
		if (fromSpan || c.next < len(c.run)) && !(m.hasTrigger && m.sinceGC > m.trigger) &&
			(m.ten == nil || m.ten.fastCharge(bytes)) {
			p := c.cursor // line profile: bump the cached span's cursor
			if !fromSpan {
				p = c.run[c.next]
			}
			// Root before consuming: m.mu is held, so no safepoint can
			// intervene between the store and the hand-out. The store
			// touches only the caller's own segment slot, never shared
			// heap structures (see the fast-path rules above).
			if dst != nil {
				if err := dst.Store(at, mem.Word(p)); err != nil {
					if m.ten != nil && m.ten.budgeted() {
						m.ten.uncharge(bytes)
					}
					m.mu.Unlock()
					return 0, err
				}
			}
			if fromSpan {
				c.cursor += mem.Addr(words * mem.WordBytes)
			} else {
				c.next++
			}
			m.sinceGC += bytes
			m.unpubObjects++
			m.unpubBytes += bytes
			if m.ten != nil {
				m.ten.noteAlloc(bytes)
			}
			m.stats.FastAllocs++
			if m.w.cfg.AllocatorResidue {
				if rs, ok := m.src.(residueSimulator); ok {
					rs.SimulateCallResidue(m.w.cfg.AllocatorSelfClean, mem.Word(p), mem.Word(nwords))
				}
			}
			m.mu.Unlock()
			return p, nil
		}
	}
	m.mu.Unlock()
	return m.allocateSlow(nwords, atomic, dst, at)
}

// allocateSlow is every allocation that needs the central lock. The
// owner goroutine holds no locks on entry (never m.mu — a collection
// triggered here re-acquires it through the safepoint protocol).
func (m *Mutator) allocateSlow(nwords int, atomic bool, dst *mem.Segment, at mem.Addr) (mem.Addr, error) {
	w := m.w
	w.mu.Lock()
	defer w.mu.Unlock()
	m.publishLocked()
	defer m.resyncLocked()
	m.stats.SlowAllocs++

	// Tenant accounting: resolve cancellation and the budget before
	// touching the heap — an over-budget allocation runs the tenant's
	// policy (tenant.go) and may collect, evict, or deny right here.
	// The charge is undone if the allocation below fails.
	var tenCharge uint64
	if t := m.ten; t != nil {
		tenCharge = tenantChargeBytes(nwords)
		if terr := w.tenantChargeLocked(t, tenCharge); terr != nil {
			return 0, terr
		}
	}

	var p mem.Addr
	var err error
	// tagged records that p already carries its owner tag (the carve
	// paths tag every carved slot, including the one handed out now).
	tagged := false
	if nwords >= 1 && !alloc.IsLarge(nwords) && !w.cfg.Incremental {
		class, words := alloc.ClassFor(nwords)
		idx := class
		if atomic {
			idx += alloc.NumClasses
		}
		// Return any cached remainder first: the batched carve must
		// start from exactly the free-list state per-object allocation
		// would see (the cache may be non-empty on a trigger diversion).
		m.returnCacheLocked(idx)
		c := &m.caches[idx]
		carved := false
		var try func() (mem.Addr, error)
		if w.cfg.LineAlloc {
			try = func() (mem.Addr, error) {
				// Line profile: carve one bump span over a run of free
				// lines and consume its first slot; the rest is the
				// fast path's [cursor, limit).
				s, err := w.Heap.AllocSpan(nwords, atomic)
				if err != nil {
					return 0, err
				}
				slotBytes := mem.Addr(words * mem.WordBytes)
				c.cursor = s.Cursor + slotBytes
				c.limit = s.Limit
				carved = true
				if w.concActive {
					// Born black: a concurrent cycle is marking while this
					// span sits in the cache, and the finale must not sweep
					// slots the fast path hands out after the snapshot.
					// Carved slots are zeroed, so marking without scanning
					// is sound; ReturnSpan unmarks whatever the flush gives
					// back.
					for p := s.Cursor; p < s.Limit; p += slotBytes {
						w.Heap.Mark(p)
					}
				}
				if m.ten != nil && m.ten.budgeted() {
					// Tag every carved slot with the owning tenant: the
					// first is consumed now (charged above), the rest as
					// the fast path hands them out. Safepoint flushes
					// untag whatever returns unconsumed.
					for p := s.Cursor; p < s.Limit; p += slotBytes {
						w.Heap.TagOwner(p, m.ten.id, uint64(words)*mem.WordBytes)
					}
					tagged = true
				}
				m.recordSpanRefillLocked(idx, int((s.Limit-s.Cursor)/slotBytes), words)
				return s.Cursor, nil
			}
		} else {
			try = func() (mem.Addr, error) {
				run, err := w.Heap.AllocRun(nwords, atomic, runSlots, c.run[:0])
				if err != nil {
					return 0, err
				}
				c.run = run
				c.next = 1
				carved = true
				if w.concActive {
					// Born black (see the span carve above): carved slots
					// are zeroed, so the finale's sweep must not reclaim
					// what the fast path hands out mid-cycle; ReturnRun
					// unmarks the flushed remainder.
					for _, s := range run {
						w.Heap.Mark(s)
					}
				}
				if m.ten != nil && m.ten.budgeted() {
					// Tag every carved slot (see the span carve above).
					for _, s := range run {
						w.Heap.TagOwner(s, m.ten.id, uint64(words)*mem.WordBytes)
					}
					tagged = true
				}
				m.recordRefillLocked(idx, len(run), words)
				return run[0], nil
			}
		}
		desperate := func() (mem.Addr, error) {
			carved = false
			tagged = false
			c.run = c.run[:0]
			c.next = 0
			c.cursor, c.limit = 0, 0
			return w.Heap.AllocDesperate(nwords, atomic)
		}
		p, err = w.allocateLocked(nwords, m.src, try, desperate)
		if err == nil && carved {
			// AllocRun defers stats to consumption; run[0] was just
			// handed out.
			w.Heap.CommitAllocs(1, uint64(words)*mem.WordBytes)
		}
	} else {
		// Large objects, and every allocation in incremental mode
		// (whose bounded marking steps piggyback on each allocation):
		// the original per-object path, uncached.
		p, err = w.allocateLocked(nwords, m.src,
			func() (mem.Addr, error) { return w.Heap.Alloc(nwords, atomic) },
			func() (mem.Addr, error) { return w.Heap.AllocDesperate(nwords, atomic) })
	}
	if err != nil {
		if t := m.ten; t != nil && t.budgeted() && tenCharge > 0 {
			t.uncharge(tenCharge)
		}
		return 0, err
	}
	if t := m.ten; t != nil {
		t.noteAlloc(tenCharge)
		if t.budgeted() && !tagged {
			// Large, incremental-mode and desperate allocations come
			// from no carve; tag the object itself.
			w.Heap.TagOwner(p, t.id, tenCharge)
		}
	}
	if dst != nil {
		// Root while still holding w.mu: no collection can run before
		// the store lands. storeLocked keeps the write barrier exact for
		// in-flight incremental cycles.
		if serr := w.storeLocked(at, mem.Word(p)); serr != nil {
			return 0, serr
		}
	}
	return p, nil
}

// AllocateTyped allocates an object with exact layout information,
// like World.AllocateTyped. Typed allocation always takes the central
// lock: its free lists are shared per (class, descriptor).
func (m *Mutator) AllocateTyped(id alloc.DescID) (mem.Addr, error) {
	w := m.w
	w.mu.Lock()
	defer w.mu.Unlock()
	d, err := w.Heap.Descriptor(id)
	if err != nil {
		return 0, err
	}
	if m.src != nil {
		m.src.OnAllocate()
	}
	m.publishLocked()
	defer m.resyncLocked()
	m.stats.SlowAllocs++
	var tenCharge uint64
	if t := m.ten; t != nil {
		tenCharge = tenantChargeBytes(d.Words)
		if terr := w.tenantChargeLocked(t, tenCharge); terr != nil {
			return 0, terr
		}
	}
	p, err := w.allocateLocked(d.Words, m.src,
		func() (mem.Addr, error) { return w.Heap.AllocTyped(id) },
		nil)
	m.settleTenantLocked(p, err, tenCharge)
	return p, err
}

// AllocateIgnoreOffPage allocates a large object under the first-page
// promise, like World.AllocateIgnoreOffPage.
func (m *Mutator) AllocateIgnoreOffPage(nwords int, atomic bool) (mem.Addr, error) {
	w := m.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if m.src != nil {
		m.src.OnAllocate()
	}
	m.publishLocked()
	defer m.resyncLocked()
	m.stats.SlowAllocs++
	var tenCharge uint64
	if t := m.ten; t != nil {
		tenCharge = tenantChargeBytes(nwords)
		if terr := w.tenantChargeLocked(t, tenCharge); terr != nil {
			return 0, terr
		}
	}
	p, err := w.allocateLocked(nwords, m.src,
		func() (mem.Addr, error) { return w.Heap.AllocIgnoreOffPage(nwords, atomic) },
		nil)
	m.settleTenantLocked(p, err, tenCharge)
	return p, err
}

// settleTenantLocked finishes an uncached tenant allocation: uncharge
// on failure, count and tag on success. Callers hold w.mu and have
// charged tenCharge via tenantChargeLocked.
func (m *Mutator) settleTenantLocked(p mem.Addr, err error, tenCharge uint64) {
	t := m.ten
	if t == nil {
		return
	}
	if err != nil {
		if t.budgeted() && tenCharge > 0 {
			t.uncharge(tenCharge)
		}
		return
	}
	t.noteAlloc(tenCharge)
	if t.budgeted() {
		m.w.Heap.TagOwner(p, t.id, tenCharge)
	}
}

// Free explicitly frees an object, like Allocator.Free. The handle's
// caches flush first so the freed slot lands on top of exactly the
// list per-object allocation would have left — the next allocation of
// its class returns it, as in single-threaded use.
func (m *Mutator) Free(base mem.Addr) error {
	w := m.w
	w.mu.Lock()
	defer w.mu.Unlock()
	m.flushLocked()
	defer m.resyncLocked()
	var err error
	var ownerID int32
	var ownerBytes uint64
	var owned bool
	w.lockHeapLocked(func() {
		if err = w.Heap.Free(base); err == nil {
			ownerID, ownerBytes, owned = w.Heap.TakeOwner(base)
		}
	})
	if owned {
		// An explicit free credits the owning tenant immediately — no
		// need to wait for a collection barrier to reconcile it.
		w.creditTenant(ownerID, 1, ownerBytes)
	}
	return err
}

// Store writes a heap or segment word through the write barrier, like
// World.Store.
func (m *Mutator) Store(a mem.Addr, v mem.Word) error {
	m.w.mu.Lock()
	defer m.w.mu.Unlock()
	return m.w.storeLocked(a, v)
}

// Load reads a heap or segment word, like World.Load.
func (m *Mutator) Load(a mem.Addr) (mem.Word, error) {
	m.w.mu.Lock()
	defer m.w.mu.Unlock()
	return m.w.Space.Load(a)
}

// Collect runs a full collection, like World.Collect (which is equally
// safe to call from any goroutine; this is a convenience).
func (m *Mutator) Collect() CollectionStats {
	return m.w.Collect()
}

// CollectMinor runs a minor collection, like World.CollectMinor.
func (m *Mutator) CollectMinor() CollectionStats {
	return m.w.CollectMinor()
}

// Stats returns the handle's allocation counters.
func (m *Mutator) Stats() MutatorStats {
	m.w.mu.Lock()
	m.mu.Lock()
	st := m.stats
	m.mu.Unlock()
	m.w.mu.Unlock()
	return st
}

// publishLocked folds the fast path's locally-counted allocations into
// the central allocator stats. Callers hold w.mu (the owner goroutine
// additionally guarantees its own fast path is not running).
func (m *Mutator) publishLocked() {
	if m.unpubObjects != 0 || m.unpubBytes != 0 {
		m.w.Heap.CommitAllocs(m.unpubObjects, m.unpubBytes)
		m.unpubObjects, m.unpubBytes = 0, 0
	}
}

// resyncLocked re-mirrors the central trigger state after a slow path
// or safepoint: sinceGC restarts from the true central count, and
// trigger becomes the smallest threshold at which allocateLocked would
// start any collection. Callers hold w.mu.
func (m *Mutator) resyncLocked() {
	st := m.w.Heap.Stats()
	m.sinceGC = st.BytesSinceGC
	m.hasTrigger = false
	m.trigger = 0
	cfg := &m.w.cfg
	if cfg.Incremental {
		// Incremental mode never uses the fast path; no trigger needed.
		return
	}
	if m.w.concActive {
		// A concurrent cycle is in flight: BytesSinceGC keeps growing
		// until the finale resets it, so any trigger armed now would fire
		// on the very next fast-path allocation and divert every
		// allocation to the slow path for the rest of the cycle. The
		// barrier and born-black carves keep the fast path sound without
		// a trigger; the first slow path after the finale re-arms it.
		return
	}
	if cfg.Generational && cfg.MinorDivisor > 0 {
		m.hasTrigger = true
		m.trigger = uint64(st.HeapBytes / cfg.MinorDivisor)
		if cfg.GCDivisor > 0 {
			if t := uint64(st.HeapBytes / cfg.GCDivisor); t < m.trigger {
				m.trigger = t
			}
		}
	} else if cfg.GCDivisor > 0 {
		m.hasTrigger = true
		m.trigger = uint64(st.HeapBytes / cfg.GCDivisor)
	}
}

// returnCacheLocked flushes one class's cached remainder back to its
// central free list and empties the cache, returning how many slots
// went back. Callers hold w.mu.
func (m *Mutator) returnCacheLocked(idx int) int {
	c := &m.caches[idx]
	rest := len(c.run) - c.next
	if rest > 0 {
		if m.ten != nil && m.ten.budgeted() {
			// Unconsumed slots were tagged at carve but never charged;
			// drop the tags without credit before the slots rejoin the
			// free lists.
			for _, s := range c.run[c.next:] {
				m.w.Heap.UntagOwner(s)
			}
		}
		// Free-list threading is a heap-structure mutation: exclude any
		// detached mark workers (bare call outside a detached phase).
		m.w.lockHeapLocked(func() {
			m.w.Heap.ReturnRun(c.words, idx >= alloc.NumClasses, c.run[c.next:])
		})
	}
	c.run = c.run[:0]
	c.next = 0
	if c.cursor < c.limit {
		if m.ten != nil && m.ten.budgeted() {
			for p, step := c.cursor, mem.Addr(c.words*mem.WordBytes); p < c.limit; p += step {
				m.w.Heap.UntagOwner(p)
			}
		}
		// Line profile: clear the span tail's alloc bits and requeue its
		// block, so the very next carve re-issues the same cursor.
		m.w.lockHeapLocked(func() {
			rest += m.w.Heap.ReturnSpan(c.cursor, c.limit)
		})
	}
	c.cursor, c.limit = 0, 0
	return rest
}

// flushLocked publishes the handle's pending stats and returns every
// cached slot to the central free lists. Called under w.mu — by the
// safepoint protocol with m.mu also held, or by the owner goroutine's
// own slow path.
func (m *Mutator) flushLocked() int {
	m.publishLocked()
	flushed := 0
	for idx := range m.caches {
		flushed += m.returnCacheLocked(idx)
	}
	m.stats.FlushedSlots += uint64(flushed)
	return flushed
}

// recordRefillLocked notes one batched cache refill in the handle and
// world observability. Callers hold w.mu.
func (m *Mutator) recordRefillLocked(idx, n, words int) {
	c := &m.caches[idx]
	c.words = words
	m.stats.Refills++
	m.stats.RunSlots += uint64(n)
	w := m.w
	w.met.cacheRefills.Inc()
	w.met.cacheRefillSlots.Add(uint64(n))
	if w.tracer.Enabled() {
		w.tracer.Emit(trace.EvCacheRefill, int64(idx), int64(n), int64(words))
	}
}

// recordSpanRefillLocked notes one bump-span refill (Config.LineAlloc)
// in the handle and world observability. The trace event (EvSpanRefill)
// is emitted by the allocator's carve itself — a central-span hand-over
// re-issues an already-carved span, which must not double-count there.
// Callers hold w.mu.
func (m *Mutator) recordSpanRefillLocked(idx, n, words int) {
	c := &m.caches[idx]
	c.words = words
	m.stats.Refills++
	m.stats.RunSlots += uint64(n)
	m.w.met.spanRefills.Inc()
	m.w.met.spanRefillSlots.Add(uint64(n))
}

// stopMutatorsLocked is the stop-the-world safepoint: acquire every
// mutator's lock — parking each owner goroutine at its next allocation
// point — then flush every cache and publish every handle's stats, so
// the collector sees exact central state and bitmaps that classify
// every slot correctly. Callers hold w.mu; resumeMutatorsLocked must
// follow. With no handles registered this is free (single-threaded
// worlds pay nothing).
func (w *World) stopMutatorsLocked() {
	w.lastStopNs = 0
	if len(w.muts) == 0 {
		return
	}
	start := time.Now()
	flushed := 0
	for _, m := range w.muts {
		m.mu.Lock()
		flushed += m.flushLocked()
	}
	w.lastStopNs = time.Since(start).Nanoseconds()
	w.met.stwStops.Inc()
	w.met.stwPauseNs.Add(uint64(w.lastStopNs))
	w.met.stopHist.Record(uint64(w.lastStopNs))
	w.met.cacheFlushSlots.Add(uint64(flushed))
	if w.tracer.Enabled() {
		w.tracer.Emit(trace.EvSafepoint, int64(len(w.muts)), int64(flushed), w.lastStopNs)
	}
}

// resumeMutatorsLocked releases the mutators parked by
// stopMutatorsLocked, in reverse order.
func (w *World) resumeMutatorsLocked() {
	for i := len(w.muts) - 1; i >= 0; i-- {
		w.muts[i].mu.Unlock()
	}
}

// VerifyIntegrity stops every mutator WITHOUT flushing its caches and
// audits the allocator's slot accounting against them (no double-carve
// of any slot; conservation: live + cached + free slots account for
// every block — see alloc.CheckIntegrity). Not flushing is the point:
// the check must see the mid-flight cached state the concurrency
// battery wants validated.
func (w *World) VerifyIntegrity() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, m := range w.muts {
		m.mu.Lock()
	}
	var cached []mem.Addr
	for _, m := range w.muts {
		for idx := range m.caches {
			c := &m.caches[idx]
			cached = append(cached, c.run[c.next:]...)
			if c.cursor < c.limit {
				// Line profile: the cached span's unconsumed slots.
				for p, step := c.cursor, mem.Addr(c.words*mem.WordBytes); p < c.limit; p += step {
					cached = append(cached, p)
				}
			}
		}
	}
	// The audit walks every block's bitmaps; detached mark workers
	// flip mark bits and summaries concurrently, so exclude them for
	// the read (bare call outside a detached phase).
	var err error
	w.lockHeapLocked(func() { err = w.Heap.CheckIntegrity(cached) })
	for i := len(w.muts) - 1; i >= 0; i-- {
		w.muts[i].mu.Unlock()
	}
	return err
}
