// Command heapdump runs program T on a platform profile and prints the
// resulting heap map, collection summary and blacklist — the textual
// version of the paper's "quick examination of the blacklist in a
// statically linked SPARC executable" (observation 7).
//
// Usage:
//
//	heapdump -platform sparc-static -seed 1
//	heapdump -platform sparc-dynamic -blacklist=false -width 96
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/inspect"
)

var (
	platformName = flag.String("platform", "sparc-dynamic", "sparc-static|sparc-dynamic|sgi|os2|pcr")
	blacklist    = flag.Bool("blacklist", true, "enable page blacklisting")
	seed         = flag.Uint64("seed", 1, "random seed")
	width        = flag.Int("width", 96, "heap map blocks per line")
	showPages    = flag.Bool("pages", false, "list blacklisted page addresses")
)

func main() {
	flag.Parse()
	var profile repro.Profile
	switch strings.ToLower(*platformName) {
	case "sparc-static":
		profile = repro.SPARCStatic(false)
	case "sparc-dynamic":
		profile = repro.SPARCDynamic(false)
	case "sgi":
		profile = repro.SGI(false)
	case "os2":
		profile = repro.OS2(false)
	case "pcr":
		profile = repro.PCR(0)
	default:
		fmt.Fprintf(os.Stderr, "heapdump: unknown platform %q\n", *platformName)
		flag.Usage()
		os.Exit(2)
	}

	env, err := profile.Build(*seed, *blacklist)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heapdump: %v\n", err)
		os.Exit(1)
	}
	res, err := env.RunProgramT()
	if err != nil {
		fmt.Fprintf(os.Stderr, "heapdump: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s after program T (blacklisting=%v, seed=%d): %s\n\n",
		profile.Name, *blacklist, *seed, res)
	fmt.Println(inspect.Summary(env.World))
	fmt.Println(inspect.HeapMap(env.World.Heap, env.World.Blacklist, *width))
	if *showPages {
		pages := inspect.BlacklistedPages(env.World.Blacklist)
		fmt.Printf("\n%d blacklisted pages:\n", len(pages))
		for i, p := range pages {
			if i%8 == 0 && i > 0 {
				fmt.Println()
			}
			fmt.Printf("  %#08x", uint32(p))
		}
		fmt.Println()
	}
}
