package mark

import (
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/blacklist"
	"repro/internal/mem"
	"repro/internal/simrand"
)

// parallelFixture builds a heap with a deterministic object graph plus
// a root word area, so serial and parallel marks can be compared. The
// graph mixes: linked chains, a wide fan-out object big enough to
// trigger stack spilling, atomic objects, dead objects, interior
// references, and near-heap junk that must be blacklisted.
type parallelFixture struct {
	heap  *alloc.Allocator
	bl    *blacklist.Dense
	roots []mem.Word
	objs  []mem.Addr // every allocated object, live or dead
}

func newParallelFixture(t *testing.T, interior bool) *parallelFixture {
	t.Helper()
	space := mem.NewAddressSpace()
	reserve := 4096 * mem.PageBytes
	bl, err := blacklist.NewDense(heapBase, heapBase+mem.Addr(reserve), mem.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := alloc.New(space, alloc.Config{
		HeapBase:         heapBase,
		InitialBytes:     1024 * mem.PageBytes,
		ReserveBytes:     reserve,
		Blacklist:        bl,
		InteriorPointers: interior,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &parallelFixture{heap: heap, bl: bl}
	allocObj := func(words int, atomic bool) mem.Addr {
		p, err := heap.Alloc(words, atomic)
		if err != nil {
			t.Fatal(err)
		}
		f.objs = append(f.objs, p)
		return p
	}
	store := func(a mem.Addr, v mem.Word) {
		if err := heap.Seg().Store(a, v); err != nil {
			t.Fatal(err)
		}
	}
	rng := simrand.New(0xD1FF)
	// 32 chains of 100 nodes, interleaved with dead objects.
	for c := 0; c < 32; c++ {
		var head mem.Addr
		for i := 0; i < 100; i++ {
			n := allocObj(4, false)
			store(n, mem.Word(head))
			head = n
			if rng.Uint32()%3 == 0 {
				allocObj(2+int(rng.Uint32()%8), false) // dead
			}
		}
		f.roots = append(f.roots, mem.Word(head))
	}
	// A wide fan-out: one large object pointing at 10000 leaves, so a
	// single worker's stack exceeds spillThreshold and sheds work.
	fan := allocObj(10000, false)
	for i := 0; i < 10000; i++ {
		leaf := allocObj(2, false)
		store(fan+mem.Addr(i*mem.WordBytes), mem.Word(leaf))
	}
	f.roots = append(f.roots, mem.Word(fan))
	// Atomic objects: marked, never scanned.
	for i := 0; i < 8; i++ {
		f.roots = append(f.roots, mem.Word(allocObj(16, true)))
	}
	// Interior references (resolve only under PointerInterior).
	inner := allocObj(32, false)
	f.roots = append(f.roots, mem.Word(inner+20))
	// Near-heap junk: committed-but-free and reserved-but-uncommitted
	// addresses, which blacklist their pages.
	f.roots = append(f.roots, mem.Word(heap.Limit()-2), mem.Word(heap.Limit()+0x100))
	// Plenty of non-pointer noise so roots span several chunks.
	for len(f.roots) < 3*rootChunkWords+17 {
		f.roots = append(f.roots, mem.Word(rng.Uint32()))
	}
	return f
}

// markedSet returns the marked subset of the fixture's objects.
func (f *parallelFixture) markedSet() map[mem.Addr]bool {
	set := map[mem.Addr]bool{}
	for _, p := range f.objs {
		if f.heap.Marked(p) {
			set[p] = true
		}
	}
	return set
}

// runSerial marks the fixture's roots with a plain Marker.
func (f *parallelFixture) runSerial(cfg Config) Stats {
	cfg.Blacklist = f.bl
	m := New(f.heap, cfg)
	m.MarkWords(f.roots)
	m.Drain()
	return m.Stats()
}

// runParallel marks the fixture's roots with n workers.
func (f *parallelFixture) runParallel(cfg Config, n int) Stats {
	cfg.Blacklist = f.bl
	p := NewParallel(f.heap, cfg, n)
	p.AddRoots(f.roots)
	return p.Run()
}

func granules(d *blacklist.Dense) []mem.Addr { return d.Granules() }

func TestParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name     string
		interior bool
		cfg      Config
	}{
		{"base-aligned", false, Config{Policy: PointerBase, Alignment: AlignedWords}},
		{"interior-aligned", true, Config{Policy: PointerInterior, Alignment: AlignedWords}},
		{"base-unaligned", false, Config{Policy: PointerBase, Alignment: AnyByteOffset}},
		{"interior-unaligned", true, Config{Policy: PointerInterior, Alignment: AnyByteOffset}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := newParallelFixture(t, tc.interior)
			want := ref.runSerial(tc.cfg)
			wantSet := ref.markedSet()
			wantBL := granules(ref.bl)
			if want.ObjectsMarked == 0 || want.FalseNearHeap == 0 || want.AtomicSkipped == 0 {
				t.Fatalf("fixture not exercising enough: %+v", want)
			}
			for _, n := range []int{2, 4, 8} {
				t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
					f := newParallelFixture(t, tc.interior)
					got := f.runParallel(tc.cfg, n)
					if got != want {
						t.Errorf("stats diverge:\nserial   %+v\nparallel %+v", want, got)
					}
					gotSet := f.markedSet()
					if len(gotSet) != len(wantSet) {
						t.Fatalf("marked %d objects, serial marked %d", len(gotSet), len(wantSet))
					}
					for i, p := range f.objs {
						if gotSet[p] != wantSet[ref.objs[i]] {
							t.Fatalf("object %d (%#x) marked=%v, serial %v",
								i, uint32(p), gotSet[p], wantSet[ref.objs[i]])
						}
					}
					gotBL := granules(f.bl)
					if len(gotBL) != len(wantBL) {
						t.Fatalf("blacklist granules %d, serial %d", len(gotBL), len(wantBL))
					}
					for i := range gotBL {
						if gotBL[i] != wantBL[i] {
							t.Fatalf("blacklist granule %d = %#x, serial %#x",
								i, uint32(gotBL[i]), uint32(wantBL[i]))
						}
					}
				})
			}
		})
	}
}

func TestParallelChunkStraddle(t *testing.T) {
	// A candidate that straddles the boundary between two root chunks
	// must still be extracted exactly once under AnyByteOffset: the
	// first chunk carries one word of context, and the context word is
	// excluded from the second chunk's aligned scan. Both the marked
	// object and the Candidates count must match a serial scan.
	space := mem.NewAddressSpace()
	heap, err := alloc.New(space, alloc.Config{
		HeapBase:     heapBase,
		InitialBytes: 64 * mem.PageBytes,
		ReserveBytes: 64 * mem.PageBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := heap.Alloc(2, false)
	if err != nil {
		t.Fatal(err)
	}
	// Split the pointer across words rootChunkWords-1 and rootChunkWords
	// at byte offset 2: big-endian, candidate = hi<<16 | lo>>16.
	roots := make([]mem.Word, rootChunkWords+8)
	roots[rootChunkWords-1] = mem.Word(uint32(p) >> 16)
	roots[rootChunkWords] = mem.Word(uint32(p) << 16)
	cfg := Config{Policy: PointerBase, Alignment: AnyByteOffset}

	serial := New(heap, cfg)
	serial.MarkWords(roots)
	serial.Drain()
	want := serial.Stats()
	if want.ObjectsMarked != 1 {
		t.Fatalf("serial straddle missed: %+v", want)
	}
	heap.ClearMarks()

	par := NewParallel(heap, cfg, 2)
	par.AddRoots(roots)
	got := par.Run()
	if got != want {
		t.Fatalf("stats diverge:\nserial   %+v\nparallel %+v", want, got)
	}
	if !heap.Marked(p) {
		t.Fatal("straddling candidate lost at chunk boundary")
	}
}

func TestParallelReusableAcrossCycles(t *testing.T) {
	f := newParallelFixture(t, false)
	cfg := Config{Policy: PointerBase, Alignment: AlignedWords, Blacklist: f.bl}
	p := NewParallel(f.heap, cfg, 4)
	p.AddRoots(f.roots)
	first := p.Run()
	f.heap.ClearMarks()
	p.AddRoots(f.roots)
	second := p.Run()
	if first != second {
		t.Fatalf("cycles diverge:\nfirst  %+v\nsecond %+v", first, second)
	}
}

func TestParallelSparseRoots(t *testing.T) {
	f := newParallelFixture(t, false)
	cfg := Config{Policy: PointerBase, Alignment: AlignedWords}

	serial := New(f.heap, Config{Policy: PointerBase, Alignment: AlignedWords, Blacklist: f.bl})
	for _, v := range f.roots {
		if v != 0 {
			serial.MarkValue(v)
		}
	}
	serial.Drain()
	want := serial.Stats()
	f.heap.ClearMarks()

	cfg.Blacklist = f.bl
	p := NewParallel(f.heap, cfg, 4)
	p.AddSparseRoots(f.roots)
	got := p.Run()
	if got != want {
		t.Fatalf("stats diverge:\nserial   %+v\nparallel %+v", want, got)
	}
}
