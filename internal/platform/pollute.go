package platform

import (
	"repro/internal/mem"
	"repro/internal/simrand"
)

// TableSpec describes a block of "seemingly random integer values" in
// static data, like the ">35K of arrays... apparently used for base
// conversion in the IO library" that the paper identifies as the main
// source of false references in statically linked SPARC executables.
type TableSpec struct {
	// Bytes of table data.
	Bytes int
	// SmallFrac of entries are small integers (harmless); the rest are
	// uniform in [Lo, Hi), the band that may intersect the heap.
	SmallFrac float64
	Lo, Hi    uint32
}

// fillIntTables writes table data into seg starting at off, returning
// the offset just past it.
func fillIntTables(seg *mem.Segment, off mem.Addr, spec TableSpec, rng *simrand.Rand) mem.Addr {
	words := spec.Bytes / mem.WordBytes
	for i := 0; i < words; i++ {
		var v uint32
		if rng.Float64() < spec.SmallFrac {
			v = rng.Uint32n(65536)
		} else if spec.Hi > spec.Lo {
			v = rng.Range(spec.Lo, spec.Hi)
		}
		seg.Store(off, mem.Word(v))
		off += mem.WordBytes
	}
	return off
}

// fillStrings writes NUL-terminated printable ASCII strings into seg
// starting at off, covering the given byte count, and returns the
// offset just past them.
//
// When aligned is false, strings are packed back to back, so "a
// trailing NUL character of one string, followed by the first three
// characters of the next may appear to be a pointer" — a big-endian
// value 0x00XXYYZZ with printable XX,YY,ZZ, i.e. an address between
// about 2.1 MB and 8.4 MB (figure-1 territory). When aligned is true
// each string starts on a word boundary, the compiler behaviour that
// the paper notes "is easily avoidable on big-endian machines" and
// that the SGI compiler exhibits.
func fillStrings(seg *mem.Segment, off mem.Addr, bytes int, aligned bool, rng *simrand.Rand) mem.Addr {
	end := off + mem.Addr(bytes)
	for off < end {
		n := 3 + rng.Intn(10) // string length
		for i := 0; i < n && off < end; i++ {
			seg.StoreByte(off, rng.PrintableByte())
			off++
		}
		if off < end {
			seg.StoreByte(off, 0) // terminating NUL
			off++
		}
		if aligned {
			next := mem.AlignWordUp(off)
			for off < next && off < end {
				seg.StoreByte(off, 0)
				off++
			}
		}
	}
	return off
}

// fillStaleStack fills a root segment with a mixture of zeros, small
// integers, and values uniform in [lo, hi), modelling an uncleared
// thread stack or IO buffer.
func fillStaleStack(seg *mem.Segment, density float64, lo, hi uint32, rng *simrand.Rand) {
	words := seg.Words()
	for i := range words {
		switch {
		case rng.Float64() >= density:
			words[i] = 0
		case rng.Bool(0.5):
			words[i] = mem.Word(rng.Uint32n(65536))
		default:
			words[i] = mem.Word(rng.Range(lo, hi))
		}
	}
}
