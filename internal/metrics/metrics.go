// Package metrics is the collector's counter/gauge registry: the
// always-on, numbers-only complement to the event trace
// (internal/trace). A production collector must explain itself in the
// field without a postmortem heap dump, so the registry keeps cheap
// atomic aggregates — bytes allocated, objects swept, blacklist hits,
// steal counts, pending-block depth — that a scraper can snapshot at
// any time, while CollectionStats remains the per-cycle view of the
// same accounting (the core tests assert the two agree).
//
// Counters are monotonic (cycle totals, pause nanoseconds); gauges
// track current levels (heap bytes, live objects, pending blocks) and
// mirrors of cumulative figures owned elsewhere (allocator and
// blacklist stats, refreshed by core on snapshot). All operations are
// lock-free atomics, safe for parallel mark workers, and nil receivers
// no-op so optional metrics cost one compare when absent.
package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move in both directions.
type Gauge struct{ v atomic.Int64 }

// Set stores the current level.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Sample is one metric's name, kind and value at snapshot time.
type Sample struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // "counter" | "gauge"
	Value int64  `json:"value"`
}

// Registry is a named collection of counters and gauges. Counter and
// Gauge are get-or-create, so independent subsystems can share a
// metric by name; Snapshot reports in registration order.
type Registry struct {
	mu       sync.Mutex
	order    []string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	// Histograms (histogram.go) keep their own namespace and ordering:
	// Snapshot stays scalar-only, so its shape is stable for scrapers.
	hists  map[string]*Histogram
	horder []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use. A name holds either a counter or a gauge, never both; a
// kind clash returns a detached metric rather than corrupting the
// registered one.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if _, clash := r.gauges[name]; clash {
		return &Counter{}
	}
	c := &Counter{}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use (see Counter for the kind-clash rule).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if _, clash := r.counters[name]; clash {
		return &Gauge{}
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Value returns the named metric's current value and whether it
// exists.
func (r *Registry) Value(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return int64(c.Load()), true
	}
	if g, ok := r.gauges[name]; ok {
		return g.Load(), true
	}
	return 0, false
}

// Snapshot returns every metric's current value in registration order.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.order))
	for _, name := range r.order {
		if c, ok := r.counters[name]; ok {
			out = append(out, Sample{Name: name, Kind: "counter", Value: int64(c.Load())})
		} else if g, ok := r.gauges[name]; ok {
			out = append(out, Sample{Name: name, Kind: "gauge", Value: g.Load()})
		}
	}
	return out
}

// WriteJSON exports the snapshot as one indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Sample{}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
