package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
)

// LazyStream models the second of the paper's section-4 pathological
// structures: a memoising lazy list, as produced by lazy functional
// languages or generator idioms. Each cell is (value, next); next is 0
// until the cell is forced, at which point the successor is allocated
// and memoised. A consumer that folds over the stream keeps only its
// current cell reachable — but a single false reference to an early
// cell retains the entire memoised chain from that point on, because
// forcing keeps appending to it: unbounded growth from one stray word.
type LazyStream struct {
	w        *core.World
	Produced uint64
}

// NewLazyStream returns a stream generator over the world.
func NewLazyStream(w *core.World) *LazyStream { return &LazyStream{w: w} }

// First allocates and returns the first cell.
func (s *LazyStream) First() (mem.Addr, error) {
	return s.makeCell()
}

func (s *LazyStream) makeCell() (mem.Addr, error) {
	cell, err := cons(s.w, mem.Word(s.Produced), 0)
	if err != nil {
		return 0, err
	}
	s.Produced++
	return cell, nil
}

// Force returns the successor of cell, allocating and memoising it on
// first use.
func (s *LazyStream) Force(cell mem.Addr) (mem.Addr, error) {
	next, err := cdr(s.w, cell)
	if err != nil {
		return 0, err
	}
	if next != 0 {
		return mem.Addr(next), nil
	}
	nc, err := s.makeCell()
	if err != nil {
		return 0, err
	}
	return nc, s.w.Store(cell+4, mem.Word(nc))
}

// LazyStreamResult reports the lazy-stream false-reference experiment.
type LazyStreamResult struct {
	FalseRef         bool
	Steps            int
	PeakLiveObjects  uint64
	FinalLiveObjects uint64
}

// RunLazyStream folds a consumer over steps stream elements, holding
// only the current cell in a root slot. When falseRef is true, a stray
// reference to the first cell is planted in the root segment,
// reproducing the paper's unbounded-retention scenario; when false the
// collector reclaims the consumed prefix and the live set stays O(1).
func RunLazyStream(w *core.World, steps int, falseRef bool, rootSeg *mem.Segment, rootSlot mem.Addr) (*LazyStreamResult, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("workload: bad step count %d", steps)
	}
	s := NewLazyStream(w)
	cur, err := s.First()
	if err != nil {
		return nil, err
	}
	if falseRef {
		if err := rootSeg.Store(rootSlot, mem.Word(cur)); err != nil {
			return nil, err
		}
	}
	curSlot := rootSlot + 4
	var peak uint64
	for i := 0; i < steps; i++ {
		if err := rootSeg.Store(curSlot, mem.Word(cur)); err != nil {
			return nil, err
		}
		cur, err = s.Force(cur)
		if err != nil {
			return nil, err
		}
		if i%1000 == 999 {
			st := w.Collect()
			if st.Sweep.ObjectsLive > peak {
				peak = st.Sweep.ObjectsLive
			}
		}
	}
	st := w.Collect()
	return &LazyStreamResult{
		FalseRef:         falseRef,
		Steps:            steps,
		PeakLiveObjects:  peak,
		FinalLiveObjects: st.Sweep.ObjectsLive,
	}, nil
}
