// Multi-tenant serving: three tenants share one conservatively
// collected heap, each with a byte budget and an over-budget policy
// (DESIGN.md section 5i). A "fail" tenant is denied at the boundary
// with a typed error naming the shortfall, a "collect-first" tenant
// gets a collection run on its behalf and sails on because its garbage
// covers the charge, and an "evict" tenant is cancelled wholesale —
// its objects reclaimed even though they are still rooted — without
// disturbing its neighbours.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
)

const objWords = 8 // one 32-byte size class: budgets below are exact

func main() {
	w, err := repro.NewWorld(repro.Config{GCDivisor: 8})
	if err != nil {
		log.Fatal(err)
	}
	// Root slots: 16 per tenant, side by side in one data segment.
	const slots = 16
	data, err := w.Space.MapNew("roots", repro.KindData, 0x2000, 3*slots*4, 3*slots*4)
	if err != nil {
		log.Fatal(err)
	}
	base := func(i int) repro.Addr { return repro.Addr(0x2000 + i*slots*4) }

	budget := uint64(8 * objWords * 4) // eight objects each
	pols := []repro.TenantPolicy{repro.TenantFail, repro.TenantCollectFirst, repro.TenantEvict}
	tens := make([]*repro.Tenant, len(pols))
	muts := make([]*repro.Mutator, len(pols))
	for i, pol := range pols {
		tens[i] = w.NewTenant(repro.TenantConfig{
			Name: pol.String(), BudgetBytes: budget, Policy: pol,
		})
		muts[i] = tens[i].NewMutator()
	}

	// The fail tenant hoards: every object stays rooted, so the ninth
	// allocation is denied at the exact budget boundary.
	for i := 0; ; i++ {
		_, err := muts[0].AllocateRooted(data, base(0)+repro.Addr(4*(i%slots)), objWords, false)
		if err != nil {
			var be *repro.BudgetError
			if !errors.As(err, &be) {
				log.Fatal(err)
			}
			fmt.Printf("fail tenant denied after %d objects: need %d bytes, %d/%d used\n",
				i, be.Requested, be.Live, be.Budget)
			break
		}
	}

	// The collect-first tenant churns: it overwrites one root slot, so
	// all but one object is garbage. Forced collections cover every
	// over-budget charge and it allocates far past its budget.
	for i := 0; i < 64; i++ {
		if _, err := muts[1].AllocateRooted(data, base(1), objWords, false); err != nil {
			log.Fatal(err)
		}
	}
	st := tens[1].Stats()
	fmt.Printf("collect-first tenant allocated %d objects on a %d-object budget (%d forced collections, %d denials)\n",
		st.AllocatedObjects, budget/(objWords*4), st.ForcedCollections, st.BudgetDenials)

	// The evict tenant hoards like the first, but its policy cancels the
	// whole tenant: rooted or not, its objects are reclaimed.
	var victim repro.Addr
	for i := 0; ; i++ {
		p, err := muts[2].AllocateRooted(data, base(2)+repro.Addr(4*(i%slots)), objWords, false)
		if err != nil {
			if !errors.Is(err, repro.ErrTenantEvicted) {
				log.Fatal(err)
			}
			fmt.Printf("evict tenant removed at object %d\n", i)
			break
		}
		victim = p
	}
	est := tens[2].Stats()
	fmt.Printf("evicted: %d objects / %d bytes reclaimed, live now %d bytes\n",
		est.ReclaimedObjects, est.ReclaimedBytes, est.LiveBytes)
	if w.Heap.IsAllocated(victim) {
		log.Fatal("victim object survived eviction")
	}

	// The neighbours are untouched: the fail tenant's hoard is still
	// live, byte for byte, and the heap still audits clean.
	w.Collect()
	w.FinishSweep()
	if err := w.VerifyIntegrity(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bystander check: fail tenant still owns %d bytes (budget %d)\n",
		tens[0].OwnedBytes(), budget)
}
