// Data-structure style advisor: the paper's section 4 argues that
// programming style governs how much damage a single false reference
// can do. This example measures it directly on three structures —
// an embedded-link grid vs a separate-cons grid (figures 3 and 4), and
// a sliding-window queue with and without link clearing — and prints
// the style advice the numbers support.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/simrand"
	"repro/internal/workload"
)

func newWorld() *repro.World {
	w, err := repro.NewWorld(repro.Config{
		InitialHeapBytes: 8 << 20,
		ReserveHeapBytes: 64 << 20,
		GCDivisor:        -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	return w
}

func main() {
	const rows, cols, trials = 80, 80, 300

	fmt.Println("== Grids: embedded links (figure 3) vs separate cons cells (figure 4) ==")
	for _, kind := range []repro.GridKind{repro.GridEmbedded, repro.GridSeparate} {
		st, err := workload.MeasureGridRetention(newWorld(), rows, cols, kind, trials, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %6d objects; one false ref retains %6.0f objects on average (%.1f%%), worst %d\n",
			kind, st.TotalObjects, st.MeanRetained, st.MeanFractionPct, st.MaxRetained)
	}
	fmt.Println(`advice: "the introduction of explicit cons-cells conveys more information
to the garbage collector than the use of embedded link fields, and should be
encouraged, in the presence of any garbage collector."`)

	fmt.Println("\n== Queue with a stray pointer to one old element ==")
	for _, clear := range []bool{false, true} {
		w := newWorld()
		root, err := w.Space.MapNew("roots", repro.KindData, 0x2000, 4096, 4096)
		if err != nil {
			log.Fatal(err)
		}
		res, err := workload.RunQueueChurn(w, 100, 30000, clear, root, 0x2000)
		if err != nil {
			log.Fatal(err)
		}
		mode := "links left dirty"
		if clear {
			mode = "links cleared on dequeue"
		}
		fmt.Printf("%-26s window=100, steps=30000: %6d cells still live at the end\n",
			mode, res.FinalLiveObjects)
	}
	fmt.Println(`advice: "queues no longer grow without bound if the queue link field is
cleared when an item is removed... clearing links is much safer than explicit
deallocation."`)

	fmt.Println("\n== Balanced tree: the benign case ==")
	w := newWorld()
	tree, err := workload.BuildBalancedTree(w, 16)
	if err != nil {
		log.Fatal(err)
	}
	rng := simrand.New(7)
	var sum uint64
	for i := 0; i < trials; i++ {
		objs, _ := workload.FalseRefTrial(w, tree.Nodes, rng)
		sum += objs
	}
	fmt.Printf("depth-16 tree, %d nodes: one false ref retains %.1f nodes on average\n",
		len(tree.Nodes), float64(sum)/trials)
	fmt.Println(`advice: tree-shaped data tolerates misidentification — expected retention
is about the height of the tree, so "a large number of false references to
such structures can usually be tolerated."`)
}
