package alloc

import (
	"testing"

	"repro/internal/mem"
)

// FuzzAllocatorOps interprets the fuzz input as an operation tape over
// the allocator — allocate (several kinds), free, mark, sweep, expand —
// and checks structural invariants after every operation.
func FuzzAllocatorOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 20, 2, 0, 3, 4})
	f.Add([]byte{0, 200, 0, 200, 5, 0, 4, 0, 0, 1})
	f.Add([]byte{6, 0, 6, 1, 2, 0, 4, 0})

	f.Fuzz(func(t *testing.T, tape []byte) {
		space := mem.NewAddressSpace()
		a, err := New(space, Config{
			HeapBase:     0x400000,
			InitialBytes: 64 * 1024,
			ReserveBytes: 512 * 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		id, err := a.RegisterDescriptor([]bool{true, false, true})
		if err != nil {
			t.Fatal(err)
		}
		var live []mem.Addr
		marked := map[mem.Addr]bool{}
		for i := 0; i+1 < len(tape) && i < 512; i += 2 {
			op, arg := tape[i], int(tape[i+1])
			switch op % 7 {
			case 0: // small alloc
				p, err := a.Alloc(1+arg%MaxSmallWords, arg%5 == 0)
				if err == nil {
					live = append(live, p)
				} else if err != ErrNeedMemory {
					t.Fatalf("alloc: %v", err)
				}
			case 1: // large alloc
				p, err := a.Alloc(MaxSmallWords+1+arg*8, false)
				if err == nil {
					live = append(live, p)
				} else if err != ErrNeedMemory {
					t.Fatalf("large alloc: %v", err)
				}
			case 2: // typed alloc
				p, err := a.AllocTyped(id)
				if err == nil {
					live = append(live, p)
				} else if err != ErrNeedMemory {
					t.Fatalf("typed alloc: %v", err)
				}
			case 3: // free one
				if len(live) > 0 {
					idx := arg % len(live)
					if err := a.Free(live[idx]); err != nil {
						t.Fatalf("free: %v", err)
					}
					delete(marked, live[idx])
					live = append(live[:idx], live[idx+1:]...)
				}
			case 4: // mark one
				if len(live) > 0 {
					p := live[arg%len(live)]
					a.Mark(p)
					marked[p] = true
				}
			case 5: // sweep: unmarked die, marked survive unmarked
				a.Sweep()
				var still []mem.Addr
				for _, p := range live {
					if marked[p] {
						if !a.IsAllocated(p) {
							t.Fatalf("marked object %#x swept", uint32(p))
						}
						still = append(still, p)
					} else if a.IsAllocated(p) {
						t.Fatalf("unmarked object %#x survived sweep", uint32(p))
					}
				}
				live = still
				marked = map[mem.Addr]bool{}
			case 6: // expand
				if a.CanExpand() {
					if err := a.Expand(4096); err != nil {
						t.Fatalf("expand: %v", err)
					}
				}
			}
			// Invariant: every live object resolves to itself.
			for _, p := range live {
				if base, ok := a.FindObject(p, false); !ok || base != p {
					t.Fatalf("live object %#x lost (ok=%v base=%#x)", uint32(p), ok, uint32(base))
				}
			}
			// Invariant: block accounting is consistent.
			st := a.Stats()
			if st.BlocksDedicated+st.BlocksFree != a.NumBlocks() {
				t.Fatalf("block accounting: %d + %d != %d",
					st.BlocksDedicated, st.BlocksFree, a.NumBlocks())
			}
		}
	})
}
