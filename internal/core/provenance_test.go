package core

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mark"
	"repro/internal/mem"
)

// provConfigs are the collector configurations the provenance
// subsystem must compose with — the same seven modes the mutator
// differential covers.
var provConfigs = map[string]Config{
	"full":         {GCDivisor: -1},
	"generational": {Generational: true, MinorDivisor: 6, FullEvery: 3, GCDivisor: -1},
	"parallel":     {GCDivisor: -1, MarkWorkers: 4},
	"lazy":         {GCDivisor: -1, LazySweep: true},
	"gen-lazy":     {Generational: true, MinorDivisor: 6, FullEvery: 3, GCDivisor: -1, LazySweep: true},
	"par-lazy":     {GCDivisor: -1, MarkWorkers: 4, LazySweep: true},
	"incremental":  {Incremental: true, GCDivisor: -1, MarkQuantum: 32},
}

// provCollect runs one collection appropriate to the configuration:
// incremental worlds run a full step-driven cycle, generational worlds
// alternate minors and fulls, everything else collects normally.
func provCollect(t *testing.T, w *World, cfg Config, round int) CollectionStats {
	t.Helper()
	switch {
	case cfg.Incremental:
		if err := w.StartIncrementalCycle(); err != nil {
			t.Fatal(err)
		}
		for !w.IncrementalStep(16) {
		}
		return w.FinishIncrementalCycle()
	case cfg.Generational && round%2 == 1:
		return w.CollectMinor()
	default:
		return w.Collect()
	}
}

// TestProvenanceOffDifferential is the zero-cost-when-off guarantee:
// the same workload with provenance recording on and off yields
// identical allocation addresses and identical CollectionStats up to
// timing and the provenance fields themselves, in every collector
// mode.
func TestProvenanceOffDifferential(t *testing.T) {
	for name, cfg := range provConfigs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			run := func(record bool) ([]mem.Addr, []CollectionStats) {
				w := newWorld(t, cfg)
				data := addData(t, w, "data", 0x2000, 4096)
				w.EnableProvenance(record)
				var addrs []mem.Addr
				var stats []CollectionStats
				for round := 0; round < 4; round++ {
					addrs = append(addrs, churn(t, w, data, 0x2000, 48)...)
					stats = append(stats, provCollect(t, w, cfg, round))
				}
				return addrs, stats
			}
			offAddrs, offStats := run(false)
			onAddrs, onStats := run(true)
			if len(offAddrs) != len(onAddrs) {
				t.Fatalf("allocation counts diverge: %d off, %d on", len(offAddrs), len(onAddrs))
			}
			for i := range offAddrs {
				if offAddrs[i] != onAddrs[i] {
					t.Fatalf("allocation %d diverges: %#x off, %#x on",
						i, uint32(offAddrs[i]), uint32(onAddrs[i]))
				}
			}
			for i := range offStats {
				a, b := offStats[i], onStats[i]
				if !b.Provenance || b.ProvenanceRecords == 0 {
					t.Fatalf("cycle %d recorded no provenance: %+v", i, b)
				}
				if a.Provenance || a.ProvenanceRecords != 0 {
					t.Fatalf("cycle %d leaked provenance with recording off: %+v", i, a)
				}
				normalizeTimes(&a, &b)
				b.Provenance, b.ProvenanceRecords = false, 0
				if a != b {
					t.Fatalf("cycle %d stats diverge:\noff %+v\non  %+v", i, a, b)
				}
			}
		})
	}
}

// TestProvenanceOffZeroAlloc extends the observability overhead budget:
// after recording has been used and turned off again, steady-state
// collections must be allocation-free, exactly like a world that never
// enabled it.
func TestProvenanceOffZeroAlloc(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	churn(t, w, data, 0x2000, 64)
	w.EnableProvenance(true)
	w.Collect()
	w.EnableProvenance(false)
	w.Collect()
	avg := testing.AllocsPerRun(10, func() { w.Collect() })
	if avg != 0 {
		t.Fatalf("provenance-off Collect allocates %v times per cycle, want 0", avg)
	}
}

// TestProvenanceParallelUnique checks the first-CAS-winner rule: with
// sharded marking, the merged record set holds exactly one record per
// marked object — no duplicates from lost races, no missing winners.
// `make race` runs this under the race detector.
func TestProvenanceParallelUnique(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1, MarkWorkers: 4})
	data := addData(t, w, "data", 0x2000, 8192)
	w.EnableProvenance(true)
	var totalRecs uint64
	for round := 0; round < 3; round++ {
		churn(t, w, data, 0x2000, 256)
		st := w.Collect()
		if st.ProvenanceRecords != st.Mark.ObjectsMarked {
			t.Fatalf("round %d: %d records for %d marked objects",
				round, st.ProvenanceRecords, st.Mark.ObjectsMarked)
		}
		if got := w.ProvenanceRecordCount(); uint64(got) != st.Mark.ObjectsMarked {
			t.Fatalf("round %d: map holds %d records for %d marked objects (duplicate wins?)",
				round, got, st.Mark.ObjectsMarked)
		}
		totalRecs += st.ProvenanceRecords
	}
	// The registry counters are the running sums of the same accounting.
	if v, ok := w.Metrics().Value("provenance_cycles"); !ok || v != 3 {
		t.Fatalf("provenance_cycles = %d (ok=%v), want 3", v, ok)
	}
	if v, ok := w.Metrics().Value("provenance_records"); !ok || uint64(v) != totalRecs {
		t.Fatalf("provenance_records = %d (ok=%v), want %d", v, ok, totalRecs)
	}
}

// provChain allocates a linked chain of n two-word cells (next pointer
// in the first word) and roots its head at slot.
func provChain(t *testing.T, w *World, data *mem.Segment, slot mem.Addr, n int) []mem.Addr {
	t.Helper()
	addrs := make([]mem.Addr, n)
	var next mem.Addr
	for i := n - 1; i >= 0; i-- {
		a, err := w.Allocate(2, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Store(a, mem.Word(next)); err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
		next = a
	}
	if err := data.Store(slot, mem.Word(next)); err != nil {
		t.Fatal(err)
	}
	return addrs
}

// TestWhyLiveSoundness sweeps every live object after a recorded
// collection: each must have a WhyLive path whose hops are consistent
// (each record's parent is the next record's object) and whose terminal
// record names a root slot.
func TestWhyLiveSoundness(t *testing.T) {
	for name, cfg := range provConfigs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, cfg)
			data := addData(t, w, "data", 0x2000, 4096)
			provChain(t, w, data, 0x2000, 40)
			provChain(t, w, data, 0x2004, 17)
			churn(t, w, data, 0x2100, 32)
			w.EnableProvenance(true)
			provCollect(t, w, cfg, 0)
			w.FinishSweep()
			if ok, _ := w.ProvenanceValid(); !ok {
				t.Fatal("no valid provenance map after a recorded collection")
			}
			checked := 0
			w.Heap.ForEachObject(func(base mem.Addr) {
				checked++
				path, err := w.WhyLive(base)
				if err != nil {
					t.Fatalf("WhyLive(%#x): %v", uint32(base), err)
				}
				if len(path) == 0 {
					t.Fatalf("WhyLive(%#x): empty path", uint32(base))
				}
				if path[0].Obj != base {
					t.Fatalf("WhyLive(%#x): first record explains %#x", uint32(base), uint32(path[0].Obj))
				}
				for i := 0; i < len(path)-1; i++ {
					if path[i].Kind != mark.RootNone {
						t.Fatalf("WhyLive(%#x): interior record %d is a root: %+v", uint32(base), i, path[i])
					}
					if path[i].Parent != path[i+1].Obj {
						t.Fatalf("WhyLive(%#x): hop %d parent %#x but next record explains %#x",
							uint32(base), i, uint32(path[i].Parent), uint32(path[i+1].Obj))
					}
				}
				if last := path[len(path)-1]; last.Kind == mark.RootNone {
					t.Fatalf("WhyLive(%#x): path ends in the heap: %+v", uint32(base), last)
				}
			})
			if checked == 0 {
				t.Fatal("no live objects to check")
			}
		})
	}
}

// TestRetentionReportFalseRef plants a false root-segment reference
// retaining a chain and checks the report's attribution: declaring the
// slot censors exactly it, the chain becomes spurious, the rest stays
// genuine, and the sole-retention ranking names the slot unprompted.
func TestRetentionReportFalseRef(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	const chainLen, genuineLen = 60, 9
	provChain(t, w, data, 0x2000, chainLen)   // retained only by the "false" slot
	provChain(t, w, data, 0x2004, genuineLen) // genuinely live
	w.Collect()

	rep := w.GetRetentionReport(RetentionOptions{
		FalseRefs: []mem.Addr{0x2000},
		Label:     func(base mem.Addr) string { return "cell" },
	})
	if rep.CensoredRoots != 1 {
		t.Fatalf("censored %d roots, want 1", rep.CensoredRoots)
	}
	if rep.LiveObjects != chainLen+genuineLen {
		t.Fatalf("live = %d, want %d", rep.LiveObjects, chainLen+genuineLen)
	}
	if rep.SpuriousObjects != chainLen {
		t.Fatalf("spurious = %d, want %d", rep.SpuriousObjects, chainLen)
	}
	if rep.GenuineObjects != genuineLen {
		t.Fatalf("genuine = %d, want %d", rep.GenuineObjects, genuineLen)
	}
	if rep.SpuriousBytes != uint64(chainLen*2*mem.WordBytes) {
		t.Fatalf("spurious bytes = %d, want %d", rep.SpuriousBytes, chainLen*2*mem.WordBytes)
	}
	if len(rep.SoleRetainers) == 0 {
		t.Fatal("sole-retention ranking is empty")
	}
	top := rep.SoleRetainers[0]
	if top.Slot.Kind != mark.RootSegment || top.Slot.Addr != 0x2000 {
		t.Fatalf("top sole retainer = %s, want the planted segment slot @0x2000", top.Slot)
	}
	if top.Objects != chainLen {
		t.Fatalf("top sole retainer holds %d objects, want %d", top.Objects, chainLen)
	}
	if len(rep.BySize) != 1 || rep.BySize[0].Words != 2 ||
		rep.BySize[0].SpuriousObjects != chainLen {
		t.Fatalf("by-size breakdown = %+v", rep.BySize)
	}
	if len(rep.ByLabel) != 1 || rep.ByLabel[0].Label != "cell" ||
		rep.ByLabel[0].LiveObjects != chainLen+genuineLen {
		t.Fatalf("by-label breakdown = %+v", rep.ByLabel)
	}
}

// TestRetentionReportStackRef is the acceptance scenario at the core
// level: a stale machine-stack word (not a root segment) retains the
// chain, and both the declared censoring and the no-oracle ranking
// attribute it.
func TestRetentionReportStackRef(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	mach := withMachine(t, w, machine.Config{Clear: machine.ClearNone})
	frame, err := mach.PushFrame(4)
	if err != nil {
		t.Fatal(err)
	}
	const chainLen = 30
	chain := provChain(t, w, data, 0x2000, chainLen)
	// Move the chain's only named root onto the stack.
	if err := frame.Store(0, mem.Word(chain[0])); err != nil {
		t.Fatal(err)
	}
	if err := data.Store(0x2000, 0); err != nil {
		t.Fatal(err)
	}
	w.EnableProvenance(true)
	w.Collect()

	path, err := w.WhyLive(chain[len(chain)-1])
	if err != nil {
		t.Fatal(err)
	}
	if last := path[len(path)-1]; last.Kind != mark.RootStack || last.Parent != frame.Addr(0) {
		t.Fatalf("chain tail's root = %+v, want the stack slot @%#x", last, uint32(frame.Addr(0)))
	}

	rep := w.GetRetentionReport(RetentionOptions{FalseRefs: []mem.Addr{frame.Addr(0)}})
	if rep.CensoredRoots != 1 {
		t.Fatalf("censored %d roots, want 1", rep.CensoredRoots)
	}
	if rep.SpuriousObjects != chainLen {
		t.Fatalf("spurious = %d of %d live, want %d",
			rep.SpuriousObjects, rep.LiveObjects, chainLen)
	}
	if len(rep.SoleRetainers) == 0 || rep.SoleRetainers[0].Slot.Addr != frame.Addr(0) {
		t.Fatalf("sole retainers = %+v, want the stack slot first", rep.SoleRetainers)
	}
}

// TestProvenanceMinorMergeAndPrune checks the generational harvest
// rule: minors merge newly promoted objects into the map without
// disturbing older records, and prune records whose objects a sweep
// freed. Sticky mark bits mean a minor alone never frees a recorded
// object; the prune path exists for mark-state perturbations like
// MarkOnly between minors, so that is what the test does.
func TestProvenanceMinorMergeAndPrune(t *testing.T) {
	w := newWorld(t, Config{Generational: true, MinorDivisor: -1, GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	oldChain := provChain(t, w, data, 0x2000, 10)
	w.EnableProvenance(true)
	w.Collect()
	if got := w.ProvenanceRecordCount(); got != 10 {
		t.Fatalf("records after full = %d, want 10", got)
	}

	young := provChain(t, w, data, 0x2004, 5)
	st := w.CollectMinor()
	if st.ProvenanceRecords != 5 {
		t.Fatalf("minor recorded %d, want only the 5 young objects", st.ProvenanceRecords)
	}
	if got := w.ProvenanceRecordCount(); got != 15 {
		t.Fatalf("records after minor = %d, want 15 (merged)", got)
	}
	for _, a := range append(append([]mem.Addr{}, oldChain...), young...) {
		if _, ok := w.ProvenanceFor(a); !ok {
			t.Fatalf("no record for %#x after the minor merge", uint32(a))
		}
	}

	// Drop the young chain's root and clear every mark bit with a
	// mark-only measurement (which must itself discard, not harvest, its
	// recording): the next minor sees the whole heap as young, frees the
	// unreachable chain, and must prune its records while re-recording
	// the survivors it re-marks.
	if err := data.Store(0x2004, 0); err != nil {
		t.Fatal(err)
	}
	w.MarkOnly()
	if got := w.ProvenanceRecordCount(); got != 15 {
		t.Fatalf("records after MarkOnly = %d, want 15 (measurement must not harvest)", got)
	}
	st = w.CollectMinor()
	if st.ProvenanceRecords != 10 {
		t.Fatalf("post-clear minor recorded %d, want the 10 re-marked survivors", st.ProvenanceRecords)
	}
	if got := w.ProvenanceRecordCount(); got != 10 {
		t.Fatalf("records after pruning minor = %d, want 10", got)
	}
	if _, ok := w.ProvenanceFor(young[0]); ok {
		t.Fatalf("freed object %#x still has a record", uint32(young[0]))
	}
	// A full cycle rebuilds from scratch rather than merging.
	w.Collect()
	if got := w.ProvenanceRecordCount(); got != 10 {
		t.Fatalf("records after full rebuild = %d, want 10", got)
	}
}

// TestProvenanceMutatorSafepoints checks recording composes with
// concurrent mutator handles: a collection from a handle stops the
// world, scans every handle's roots, and the harvested map explains
// every surviving rooted object.
func TestProvenanceMutatorSafepoints(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1, LazySweep: true})
	data := addData(t, w, "data", 0x2000, 4096)
	w.EnableProvenance(true)
	const nMut = 4
	muts := make([]*Mutator, nMut)
	roots := make([]mem.Addr, nMut)
	for g := range muts {
		muts[g] = w.NewMutator()
		slot := mem.Addr(0x2000 + 4*g)
		a, err := muts[g].AllocateRooted(data, slot, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		roots[g] = a
	}
	muts[0].Collect()
	if ok, _ := w.ProvenanceValid(); !ok {
		t.Fatal("no provenance map after a mutator-driven collection")
	}
	for g, a := range roots {
		path, err := w.WhyLive(a)
		if err != nil {
			t.Fatalf("mutator %d root: %v", g, err)
		}
		last := path[len(path)-1]
		if last.Kind != mark.RootSegment || last.Parent != mem.Addr(0x2000+4*g) {
			t.Fatalf("mutator %d root attributed to %+v, want segment slot %#x",
				g, last, 0x2000+4*g)
		}
	}
}

// TestHeapSnapshotConsistency checks the exported snapshot against the
// world it describes: one entry per allocated object, edges that point
// at real objects, and a provenance section sorted by address with one
// record per live object.
func TestHeapSnapshotConsistency(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	provChain(t, w, data, 0x2000, 20)
	churn(t, w, data, 0x2100, 16)
	w.EnableProvenance(true)
	w.Collect()

	snap := w.BuildHeapSnapshot(func(mem.Addr) string { return "obj" })
	objs := make(map[mem.Addr]bool, len(snap.Objects))
	count := 0
	w.Heap.ForEachObject(func(mem.Addr) { count++ })
	if len(snap.Objects) != count {
		t.Fatalf("snapshot holds %d objects, heap has %d", len(snap.Objects), count)
	}
	for _, o := range snap.Objects {
		if o.Words <= 0 || o.Label != "obj" {
			t.Fatalf("bad snapshot object %+v", o)
		}
		objs[o.Addr] = true
	}
	if len(snap.Edges) == 0 {
		t.Fatal("snapshot has no edges despite a linked chain")
	}
	for _, e := range snap.Edges {
		if !objs[e.Src] || !objs[e.Dst] {
			t.Fatalf("edge %+v references an unknown object", e)
		}
	}
	if !snap.ProvenanceValid || len(snap.Provenance) != len(snap.Objects) {
		t.Fatalf("snapshot provenance: valid=%v records=%d objects=%d",
			snap.ProvenanceValid, len(snap.Provenance), len(snap.Objects))
	}
	for i := 1; i < len(snap.Provenance); i++ {
		if snap.Provenance[i-1].Obj >= snap.Provenance[i].Obj {
			t.Fatal("snapshot provenance is not sorted by object address")
		}
	}
}

// TestRetentionLabelMayCallWorld is the deadlock regression for the
// RetentionOptions.Label contract: the callback runs with the world
// lock released, so a Label that calls back into the World (here
// World.Load, which takes w.mu) must complete rather than deadlock.
// Before the fix the labeling loop ran inside GetRetentionReport's
// critical section and this test hung.
func TestRetentionLabelMayCallWorld(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	const n = 24
	provChain(t, w, data, 0x2000, n)
	w.Collect()

	done := make(chan RetentionReport, 1)
	go func() {
		done <- w.GetRetentionReport(RetentionOptions{
			TopRoots: -1,
			Label: func(base mem.Addr) string {
				// Re-enter the world: Load locks w.mu.
				v, err := w.Load(base)
				if err != nil {
					return "err"
				}
				if v == 0 {
					return "tail"
				}
				return "cons"
			},
		})
	}()
	var rep RetentionReport
	select {
	case rep = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("GetRetentionReport deadlocked: Label called back into the World")
	}
	if rep.LiveObjects != n {
		t.Fatalf("live = %d, want %d", rep.LiveObjects, n)
	}
	var cons, tail uint64
	for _, lc := range rep.ByLabel {
		switch lc.Label {
		case "cons":
			cons = lc.LiveObjects
		case "tail":
			tail = lc.LiveObjects
		default:
			t.Fatalf("unexpected label %q", lc.Label)
		}
	}
	if cons != n-1 || tail != 1 {
		t.Fatalf("by-label = %d cons + %d tail, want %d + 1", cons, tail, n-1)
	}
}
