package core

import (
	"sort"

	"repro/internal/mark"
	"repro/internal/mem"
)

// Heap snapshots: a stop-the-world export of every allocated object,
// every heap→heap reference, the harvested provenance records, and the
// blacklist state — the raw material for offline "why is my heap this
// big?" analysis. internal/inspect renders a snapshot as JSON
// (WriteHeapSnapshot); cmd/heapdump exposes it as -snapshot.

// SnapshotObject is one allocated object.
type SnapshotObject struct {
	Addr   mem.Addr
	Words  int
	Atomic bool
	Marked bool // current mark bit (sticky "old" bit in generational worlds)
	Label  string
}

// SnapshotEdge is one heap word that resolves to an allocated object
// under the world's pointer policy.
type SnapshotEdge struct {
	Src      mem.Addr // source object base
	Index    int      // word index within the source object
	Dst      mem.Addr // destination object base
	Interior bool     // the word pointed inside Dst, not at its base
}

// SnapshotBlacklist is the blacklist's state at snapshot time.
type SnapshotBlacklist struct {
	Pages int
	Adds  uint64
	Hits  uint64
}

// HeapSnapshot is one consistent view of the heap.
type HeapSnapshot struct {
	HeapBase        mem.Addr
	HeapBytes       int
	Collections     int
	ProvenanceValid bool
	ProvenanceCycle int
	Objects         []SnapshotObject
	Edges           []SnapshotEdge
	// Provenance holds the harvested first-marking records, sorted by
	// object address (empty without EnableProvenance).
	Provenance []mark.ParentRecord
	Blacklist  SnapshotBlacklist
}

// BuildHeapSnapshot stops the world and exports every allocated
// object, the reference edges between them, the harvested provenance
// map, and the blacklist state. label, when non-nil, classifies each
// object (same contract as RetentionOptions.Label).
func (w *World) BuildHeapSnapshot(label func(base mem.Addr) string) HeapSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stopMutatorsLocked()
	defer w.resumeMutatorsLocked()

	bl := w.Blacklist.Stats()
	snap := HeapSnapshot{
		HeapBase:        w.cfg.HeapBase,
		HeapBytes:       w.Heap.Stats().HeapBytes,
		Collections:     w.collections,
		ProvenanceValid: w.prov.valid,
		ProvenanceCycle: w.prov.cycle,
		Objects:         []SnapshotObject{},
		Edges:           []SnapshotEdge{},
		Provenance:      []mark.ParentRecord{},
		Blacklist:       SnapshotBlacklist{Pages: w.Blacklist.Len(), Adds: bl.Adds, Hits: bl.Hits},
	}
	interior := w.cfg.Pointer == mark.PointerInterior
	w.Heap.ForEachObject(func(base mem.Addr) {
		words, atomic := w.Heap.ObjectSpan(base)
		obj := SnapshotObject{Addr: base, Words: words, Atomic: atomic, Marked: w.Heap.Marked(base)}
		if label != nil {
			obj.Label = label(base)
		}
		snap.Objects = append(snap.Objects, obj)
		if atomic {
			return // pointer-free: the collector never scans it
		}
		for i := 0; i < words; i++ {
			v, err := w.Space.Load(base + mem.Addr(i*mem.WordBytes))
			if err != nil || v == 0 {
				continue
			}
			dst, ok := w.Heap.FindObject(mem.Addr(v), interior)
			if !ok {
				continue
			}
			snap.Edges = append(snap.Edges, SnapshotEdge{
				Src: base, Index: i, Dst: dst, Interior: mem.Addr(v) != dst,
			})
		}
	})
	for _, rec := range w.prov.records {
		snap.Provenance = append(snap.Provenance, rec)
	}
	sort.Slice(snap.Provenance, func(i, j int) bool {
		return snap.Provenance[i].Obj < snap.Provenance[j].Obj
	})
	return snap
}
