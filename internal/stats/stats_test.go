package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRange(t *testing.T) {
	r := NewRange([]float64{0.795, 0.79, 0.792})
	if r.Min != 0.79 || r.Max != 0.795 || r.N != 3 {
		t.Fatalf("range = %+v", r)
	}
	if r.Mean < 0.79 || r.Mean > 0.795 {
		t.Fatalf("mean = %v", r.Mean)
	}
	if z := NewRange(nil); z.N != 0 || z.PctString() != "-" {
		t.Fatalf("empty range = %+v %q", z, z.PctString())
	}
}

func TestRangeInvariants(t *testing.T) {
	// Inputs are restricted to the library's domain (fractions and
	// small magnitudes); astronomically large floats overflow any
	// single-pass mean.
	f := func(raw []uint32) bool {
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)/float64(1<<32) - 0.5
		}
		r := NewRange(vals)
		if len(vals) == 0 {
			return r.N == 0
		}
		const eps = 1e-12
		return r.Min <= r.Mean+eps && r.Mean <= r.Max+eps && r.N == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPctString(t *testing.T) {
	tests := []struct {
		vals []float64
		want string
	}{
		{[]float64{0.79, 0.795}, "79-79.5%"},
		{[]float64{0, 0.005}, "0-0.5%"},
		{[]float64{0, 0}, "0%"},
		{[]float64{0.28}, "28%"},
		{[]float64{0.445, 0.55}, "44.5-55%"},
	}
	for _, tt := range tests {
		if got := NewRange(tt.vals).PctString(); got != tt.want {
			t.Errorf("PctString(%v) = %q, want %q", tt.vals, got, tt.want)
		}
	}
}

func TestPct(t *testing.T) {
	if Pct(0.79) != "79" || Pct(0.795) != "79.5" || Pct(0) != "0" {
		t.Fatalf("Pct wrong: %q %q %q", Pct(0.79), Pct(0.795), Pct(0))
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("Table 1: retention", "Machine", "Optimized?", "No Blacklisting", "Blacklisting")
	tab.Add("SPARC(static)", "no", "79-79.5%", "0-.5%")
	tab.AddF("SGI", "yes", 1, 0)
	out := tab.String()
	if !strings.Contains(out, "Table 1: retention") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "SPARC(static)") || !strings.Contains(out, "79-79.5%") {
		t.Error("row content missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: every data line at least as long as the header.
	if len(lines[3]) < len("SPARC(static)") {
		t.Error("row too short")
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.Add("x")
	if !strings.Contains(tab.String(), "x") {
		t.Fatal("short row lost")
	}
}

func TestMarkdown(t *testing.T) {
	tab := NewTable("Results", "a", "b")
	tab.Add("x|y", "1")
	out := tab.Markdown()
	for _, want := range []string{"**Results**", "| a | b |", "| --- | --- |", `x\|y`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 5 { // title, blank, header, sep, row
		t.Fatalf("line count = %d:\n%s", lines, out)
	}
}
