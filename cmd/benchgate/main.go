// Command benchgate is the CI benchmark regression gate: it compares a
// candidate markbench/sweepbench result (a fresh in-process run by
// default, or a -candidate JSON file) against a checked-in baseline and
// fails when a timing metric regresses beyond the tolerance or a
// deterministic invariant (objects marked, objects/bytes freed,
// deferred blocks) diverges at all.
//
// Usage:
//
//	benchgate -baseline BENCH_1.json                  # run candidate in-process
//	benchgate -baseline BENCH_2.json -tolerance 2
//	benchgate -baseline old.json -candidate new.json  # compare two files
//
// The baseline schema is detected from its rows: rows keyed by
// "workers" are a markbench result, rows keyed by "mode" are a
// sweepbench result, rows keyed by "mutators" are a mutbench result,
// rows keyed by "pause_mode" are a pausebench result, rows keyed by
// "policy" are a servebench result, rows keyed by "round" are a
// retention result, rows keyed by "leak_key_alerts" are a leakwatch
// result. The detected schema of every input file is named on stderr
// before the comparison runs.
// A machine-readable JSON report goes to stdout.
// Exit status: 0 pass, 1 regression, 2 usage or I/O error.
//
// Timing checks are gated as candidate <= baseline * tolerance, so the
// default tolerance of 2 tolerates a 2x slowdown: CI machines differ
// from the baseline machine, and the gate exists to catch order-of-
// magnitude regressions and broken invariants, not jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
)

var (
	baselinePath  = flag.String("baseline", "", "baseline benchmark JSON (required)")
	candidatePath = flag.String("candidate", "", "candidate benchmark JSON; empty runs the matching benchmark in-process")
	tolerance     = flag.Float64("tolerance", 2.0, "allowed candidate/baseline ratio for timing metrics")
)

// Check is one metric comparison in the report. Kind "time-advisory"
// marks a timing comparison whose two sides ran under different
// GOMAXPROCS: the numbers are reported for the record but never gated,
// because wall-clock comparisons across scheduler widths measure the
// machine, not the collector.
type Check struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"` // "time" | "time-advisory" | "invariant"
	Baseline  float64 `json:"baseline"`
	Candidate float64 `json:"candidate"`
	// Limit is the largest candidate value that passes (baseline *
	// tolerance for time checks, baseline exactly for invariants).
	Limit float64 `json:"limit"`
	Pass  bool    `json:"pass"`
}

// Report is the gate's machine-readable verdict.
type Report struct {
	Schema    string  `json:"schema"` // "markbench" | "sweepbench"
	Tolerance float64 `json:"tolerance"`
	Checks    []Check `json:"checks"`
	Pass      bool    `json:"pass"`
}

func (r *Report) timeCheck(name string, base, cand float64) {
	limit := base * r.Tolerance
	r.Checks = append(r.Checks, Check{
		Name: name, Kind: "time",
		Baseline: base, Candidate: cand, Limit: limit,
		Pass: cand <= limit,
	})
}

// timeCheckGMP gates a timing metric like timeCheck unless the
// baseline and candidate rows ran under different GOMAXPROCS, in which
// case the comparison is downgraded to advisory (always passing).
func (r *Report) timeCheckGMP(name string, base, cand float64, baseGMP, candGMP int) {
	if baseGMP != candGMP {
		r.Checks = append(r.Checks, Check{
			Name: name, Kind: "time-advisory",
			Baseline: base, Candidate: cand, Limit: 0, Pass: true,
		})
		return
	}
	r.timeCheck(name, base, cand)
}

// effGMP resolves a row's effective GOMAXPROCS: the per-row value when
// recorded, else the result-level one (baselines predating per-row
// recording carry 0 in every row).
func effGMP(row, result int) int {
	if row > 0 {
		return row
	}
	return result
}

func (r *Report) invariantCheck(name string, base, cand float64) {
	r.Checks = append(r.Checks, Check{
		Name: name, Kind: "invariant",
		Baseline: base, Candidate: cand, Limit: base,
		Pass: cand == base,
	})
}

func (r *Report) finish() *Report {
	r.Pass = true
	for _, c := range r.Checks {
		if !c.Pass {
			r.Pass = false
		}
	}
	return r
}

// CompareMark gates a candidate markbench result against a baseline.
// Rows are matched by worker count; a baseline row missing from the
// candidate fails. Timing rows are only gated when neither side is
// oversubscribed — an oversubscribed row measures scheduler contention,
// not the collector.
func CompareMark(base, cand *repro.MarkBenchResult, tol float64) *Report {
	rep := &Report{Schema: "markbench", Tolerance: tol}
	byWorkers := make(map[int]repro.MarkBenchRow)
	for _, row := range cand.Rows {
		byWorkers[row.Workers] = row
	}
	for _, b := range base.Rows {
		c, ok := byWorkers[b.Workers]
		name := fmt.Sprintf("workers=%d", b.Workers)
		if !ok {
			rep.Checks = append(rep.Checks, Check{
				Name: name + "/present", Kind: "invariant",
				Baseline: 1, Candidate: 0, Limit: 1, Pass: false,
			})
			continue
		}
		rep.invariantCheck(name+"/objects_marked",
			float64(b.ObjectsMarked), float64(c.ObjectsMarked))
		if !b.Oversubscribed && !c.Oversubscribed {
			rep.timeCheckGMP(name+"/ns_per_mark", b.NsPerMark, c.NsPerMark,
				effGMP(b.GoMaxProcs, base.GoMaxProcs), effGMP(c.GoMaxProcs, cand.GoMaxProcs))
		}
	}
	return rep.finish()
}

// CompareSweep gates a candidate sweepbench result against a baseline.
// Rows are matched by mode ("eager"/"lazy"); reclamation totals and
// deferred-block counts are deterministic and must match exactly. The
// nested markbench result is gated too when both sides carry one.
func CompareSweep(base, cand *repro.SweepBenchResult, tol float64) *Report {
	rep := &Report{Schema: "sweepbench", Tolerance: tol}
	byMode := make(map[string]repro.SweepBenchRow)
	for _, row := range cand.Rows {
		byMode[row.Mode] = row
	}
	for _, b := range base.Rows {
		c, ok := byMode[b.Mode]
		if !ok {
			rep.Checks = append(rep.Checks, Check{
				Name: b.Mode + "/present", Kind: "invariant",
				Baseline: 1, Candidate: 0, Limit: 1, Pass: false,
			})
			continue
		}
		rep.invariantCheck(b.Mode+"/objects_freed",
			float64(b.ObjectsFreed), float64(c.ObjectsFreed))
		rep.invariantCheck(b.Mode+"/bytes_freed",
			float64(b.BytesFreed), float64(c.BytesFreed))
		rep.invariantCheck(b.Mode+"/deferred_blocks",
			float64(b.DeferredBlocks), float64(c.DeferredBlocks))
		bg := effGMP(b.GoMaxProcs, base.GoMaxProcs)
		cg := effGMP(c.GoMaxProcs, cand.GoMaxProcs)
		rep.timeCheckGMP(b.Mode+"/avg_pause_ns", b.AvgPauseNs, c.AvgPauseNs, bg, cg)
		rep.timeCheckGMP(b.Mode+"/max_pause_ns",
			float64(b.MaxPauseNs), float64(c.MaxPauseNs), bg, cg)
		rep.timeCheckGMP(b.Mode+"/avg_sweep_pause_ns", b.AvgSweepPauseNs, c.AvgSweepPauseNs, bg, cg)
		rep.timeCheckGMP(b.Mode+"/max_sweep_pause_ns",
			float64(b.MaxSweepPauseNs), float64(c.MaxSweepPauseNs), bg, cg)
	}
	if base.Mark != nil && cand.Mark != nil {
		sub := CompareMark(base.Mark, cand.Mark, tol)
		for _, c := range sub.Checks {
			c.Name = "mark/" + c.Name
			rep.Checks = append(rep.Checks, c)
		}
	}
	return rep.finish()
}

// CompareMut gates a candidate mutbench result against a baseline.
// Rows are matched by mutator count. The per-row object count is
// deterministic (mutators x allocs) and must match exactly; timing is
// gated only when neither side is oversubscribed. Collection and
// safepoint counts depend on goroutine interleaving, so they are
// reported in the JSON but never gated.
func CompareMut(base, cand *repro.MutBenchResult, tol float64) *Report {
	rep := &Report{Schema: "mutbench", Tolerance: tol}
	byMutators := make(map[int]repro.MutBenchRow)
	for _, row := range cand.Rows {
		byMutators[row.Mutators] = row
	}
	for _, b := range base.Rows {
		c, ok := byMutators[b.Mutators]
		name := fmt.Sprintf("mutators=%d", b.Mutators)
		if !ok {
			rep.Checks = append(rep.Checks, Check{
				Name: name + "/present", Kind: "invariant",
				Baseline: 1, Candidate: 0, Limit: 1, Pass: false,
			})
			continue
		}
		rep.invariantCheck(name+"/objects_allocated",
			float64(b.ObjectsAllocated), float64(c.ObjectsAllocated))
		if !b.Oversubscribed && !c.Oversubscribed {
			rep.timeCheckGMP(name+"/ns_per_alloc", b.NsPerAlloc, c.NsPerAlloc,
				effGMP(b.GoMaxProcs, base.GoMaxProcs), effGMP(c.GoMaxProcs, cand.GoMaxProcs))
		}
	}
	return rep.finish()
}

// CompareAlloc gates a candidate allocbench result against a baseline.
// Rows are matched by (profile, mutator count). The per-row object
// count is deterministic in both profiles and must match exactly;
// timing is gated only when neither side is oversubscribed. Line-waste
// figures depend on which objects happen to die in the same cycle, so
// they are reported in the JSON but never gated.
func CompareAlloc(base, cand *repro.AllocBenchResult, tol float64) *Report {
	rep := &Report{Schema: "allocbench", Tolerance: tol}
	type key struct {
		profile  string
		mutators int
	}
	byKey := make(map[key]repro.AllocBenchRow)
	for _, row := range cand.Rows {
		byKey[key{row.Profile, row.Mutators}] = row
	}
	for _, b := range base.Rows {
		c, ok := byKey[key{b.Profile, b.Mutators}]
		name := fmt.Sprintf("%s/mutators=%d", b.Profile, b.Mutators)
		if !ok {
			rep.Checks = append(rep.Checks, Check{
				Name: name + "/present", Kind: "invariant",
				Baseline: 1, Candidate: 0, Limit: 1, Pass: false,
			})
			continue
		}
		rep.invariantCheck(name+"/objects_allocated",
			float64(b.ObjectsAllocated), float64(c.ObjectsAllocated))
		if !b.Oversubscribed && !c.Oversubscribed {
			rep.timeCheckGMP(name+"/ns_per_alloc", b.NsPerAlloc, c.NsPerAlloc,
				effGMP(b.GoMaxProcs, base.GoMaxProcs), effGMP(c.GoMaxProcs, cand.GoMaxProcs))
		}
	}
	return rep.finish()
}

// CompareRetention gates a candidate retention result against a
// baseline. Rows are matched by round. The workload is single-threaded
// and fully deterministic, so every count column is an exact invariant
// — live/genuine/spurious attribution, censored roots, root slots, the
// top sole-retention count, and the provenance record count. Only the
// report wall time is gated as a timing metric.
func CompareRetention(base, cand *repro.RetentionBenchResult, tol float64) *Report {
	rep := &Report{Schema: "retention", Tolerance: tol}
	byRound := make(map[int]repro.RetentionBenchRow)
	for _, row := range cand.Rows {
		byRound[row.Round] = row
	}
	for _, b := range base.Rows {
		c, ok := byRound[b.Round]
		name := fmt.Sprintf("round=%d", b.Round)
		if !ok {
			rep.Checks = append(rep.Checks, Check{
				Name: name + "/present", Kind: "invariant",
				Baseline: 1, Candidate: 0, Limit: 1, Pass: false,
			})
			continue
		}
		rep.invariantCheck(name+"/steps", float64(b.Steps), float64(c.Steps))
		rep.invariantCheck(name+"/live_objects",
			float64(b.LiveObjects), float64(c.LiveObjects))
		rep.invariantCheck(name+"/live_bytes",
			float64(b.LiveBytes), float64(c.LiveBytes))
		rep.invariantCheck(name+"/genuine_objects",
			float64(b.GenuineObjects), float64(c.GenuineObjects))
		rep.invariantCheck(name+"/spurious_objects",
			float64(b.SpuriousObjects), float64(c.SpuriousObjects))
		rep.invariantCheck(name+"/spurious_bytes",
			float64(b.SpuriousBytes), float64(c.SpuriousBytes))
		rep.invariantCheck(name+"/censored_roots",
			float64(b.CensoredRoots), float64(c.CensoredRoots))
		rep.invariantCheck(name+"/root_slots",
			float64(b.RootSlots), float64(c.RootSlots))
		rep.invariantCheck(name+"/top_sole_objects",
			float64(b.TopSoleObjects), float64(c.TopSoleObjects))
		rep.invariantCheck(name+"/provenance_records",
			float64(b.ProvenanceRecords), float64(c.ProvenanceRecords))
		rep.timeCheckGMP(name+"/report_ms", b.ReportMs, c.ReportMs,
			effGMP(b.GoMaxProcs, base.GoMaxProcs), effGMP(c.GoMaxProcs, cand.GoMaxProcs))
	}
	return rep.finish()
}

// ComparePause gates a candidate pausebench result against a
// baseline. Rows are matched by pause mode ("stw"/"concurrent"). The
// workload is a deterministic no-free tape, so the per-row object and
// live counts are exact invariants; pause percentiles are timing,
// gated only when neither side is oversubscribed. The concurrent p99
// reduction over stop-the-world — the tentpole's headline — is
// reported as an always-advisory check (candidate ratio against the
// 5x design target): pause ratios measure the machine's scheduler as
// much as the collector, so they never hard-fail CI.
func ComparePause(base, cand *repro.PauseBenchResult, tol float64) *Report {
	rep := &Report{Schema: "pausebench", Tolerance: tol}
	type key struct {
		mode  string
		width int
	}
	byKey := make(map[key]repro.PauseBenchRow)
	var widths []int
	for _, row := range cand.Rows {
		if _, seen := byKey[key{"stw", row.GoMaxProcs}]; !seen {
			if _, seen := byKey[key{"concurrent", row.GoMaxProcs}]; !seen {
				widths = append(widths, row.GoMaxProcs)
			}
		}
		byKey[key{row.PauseMode, row.GoMaxProcs}] = row
	}
	sort.Ints(widths)
	for _, b := range base.Rows {
		c, ok := byKey[key{b.PauseMode, b.GoMaxProcs}]
		name := fmt.Sprintf("%s/gomaxprocs=%d", b.PauseMode, b.GoMaxProcs)
		if !ok {
			rep.Checks = append(rep.Checks, Check{
				Name: name + "/present", Kind: "invariant",
				Baseline: 1, Candidate: 0, Limit: 1, Pass: false,
			})
			continue
		}
		rep.invariantCheck(name+"/objects_allocated",
			float64(b.ObjectsAllocated), float64(c.ObjectsAllocated))
		rep.invariantCheck(name+"/objects_live",
			float64(b.ObjectsLive), float64(c.ObjectsLive))
		if !b.Oversubscribed && !c.Oversubscribed {
			rep.timeCheckGMP(name+"/pause_p50_ns", b.PauseP50Ns, c.PauseP50Ns, b.GoMaxProcs, c.GoMaxProcs)
			rep.timeCheckGMP(name+"/pause_p99_ns", b.PauseP99Ns, c.PauseP99Ns, b.GoMaxProcs, c.GoMaxProcs)
			rep.timeCheckGMP(name+"/pause_max_ns", b.PauseMaxNs, c.PauseMaxNs, b.GoMaxProcs, c.GoMaxProcs)
		}
	}
	for _, w := range widths {
		stw, conc := byKey[key{"stw", w}], byKey[key{"concurrent", w}]
		if stw.PauseP99Ns > 0 && conc.PauseP99Ns > 0 {
			rep.Checks = append(rep.Checks, Check{
				Name:     fmt.Sprintf("concurrent/gomaxprocs=%d/p99_reduction_x", w),
				Kind:     "time-advisory",
				Baseline: 5, Candidate: stw.PauseP99Ns / conc.PauseP99Ns,
				Limit: 0, Pass: true,
			})
		}
	}
	return rep.finish()
}

// CompareServe gates a candidate servebench result against a baseline.
// Rows are matched by policy ("fail"/"collect-first"/"evict"). Every
// tenant replays a deterministic session tape against a deterministic
// budget, so the admission, denial, eviction, reclamation, liveness
// and fairness columns are exact invariants; allocation-latency and
// pause percentiles are timing, gated only when neither side is
// oversubscribed. Forced-collection and cycle counts depend on which
// tenant's charge happens to trip the collector first, so they are
// reported in the JSON but never gated.
func CompareServe(base, cand *repro.ServeBenchResult, tol float64) *Report {
	rep := &Report{Schema: "servebench", Tolerance: tol}
	byPolicy := make(map[string]repro.ServeBenchRow)
	for _, row := range cand.Rows {
		byPolicy[row.Policy] = row
	}
	for _, b := range base.Rows {
		c, ok := byPolicy[b.Policy]
		name := b.Policy
		if !ok {
			rep.Checks = append(rep.Checks, Check{
				Name: name + "/present", Kind: "invariant",
				Baseline: 1, Candidate: 0, Limit: 1, Pass: false,
			})
			continue
		}
		rep.invariantCheck(name+"/tenants", float64(b.Tenants), float64(c.Tenants))
		rep.invariantCheck(name+"/requests", float64(b.Requests), float64(c.Requests))
		rep.invariantCheck(name+"/objects_allocated",
			float64(b.ObjectsAllocated), float64(c.ObjectsAllocated))
		rep.invariantCheck(name+"/objects_live",
			float64(b.ObjectsLive), float64(c.ObjectsLive))
		rep.invariantCheck(name+"/denials", float64(b.Denials), float64(c.Denials))
		rep.invariantCheck(name+"/evictions", float64(b.Evictions), float64(c.Evictions))
		rep.invariantCheck(name+"/reclaimed_objects",
			float64(b.ReclaimedObjects), float64(c.ReclaimedObjects))
		rep.invariantCheck(name+"/fairness_spread",
			float64(b.FairnessSpread), float64(c.FairnessSpread))
		if !b.Oversubscribed && !c.Oversubscribed {
			bg := effGMP(b.GoMaxProcs, base.GoMaxProcs)
			cg := effGMP(c.GoMaxProcs, cand.GoMaxProcs)
			rep.timeCheckGMP(name+"/alloc_p50_ns", b.AllocP50Ns, c.AllocP50Ns, bg, cg)
			rep.timeCheckGMP(name+"/alloc_p99_ns", b.AllocP99Ns, c.AllocP99Ns, bg, cg)
			rep.timeCheckGMP(name+"/pause_p99_ns", b.PauseP99Ns, c.PauseP99Ns, bg, cg)
		}
	}
	return rep.finish()
}

// CompareLeak gates a candidate leakwatch result against a baseline.
// Rows are matched by workload ("leak"/"churn"). The workloads are
// single-threaded with automatic collection off and the watcher's
// decision is pure arithmetic over retained totals, so every detection
// column is an exact invariant — alert counts, the attribution split,
// the first-alert cycle, the alerted growth, and the final retention
// levels. Only the elapsed wall time is gated as a timing metric.
func CompareLeak(base, cand *repro.LeakBenchResult, tol float64) *Report {
	rep := &Report{Schema: "leakwatch", Tolerance: tol}
	byWorkload := make(map[string]repro.LeakBenchRow)
	for _, row := range cand.Rows {
		byWorkload[row.Workload] = row
	}
	for _, b := range base.Rows {
		c, ok := byWorkload[b.Workload]
		name := b.Workload
		if !ok {
			rep.Checks = append(rep.Checks, Check{
				Name: name + "/present", Kind: "invariant",
				Baseline: 1, Candidate: 0, Limit: 1, Pass: false,
			})
			continue
		}
		rep.invariantCheck(name+"/rounds", float64(b.Rounds), float64(c.Rounds))
		rep.invariantCheck(name+"/collections",
			float64(b.Collections), float64(c.Collections))
		rep.invariantCheck(name+"/watched_samples",
			float64(b.WatchedSamples), float64(c.WatchedSamples))
		rep.invariantCheck(name+"/alerts_total",
			float64(b.AlertsTotal), float64(c.AlertsTotal))
		rep.invariantCheck(name+"/leak_key_alerts",
			float64(b.LeakKeyAlerts), float64(c.LeakKeyAlerts))
		rep.invariantCheck(name+"/false_positives",
			float64(b.FalsePositives), float64(c.FalsePositives))
		rep.invariantCheck(name+"/first_alert_cycle",
			float64(b.FirstAlertCycle), float64(c.FirstAlertCycle))
		rep.invariantCheck(name+"/leak_growth_bytes",
			float64(b.LeakGrowthBytes), float64(c.LeakGrowthBytes))
		rep.invariantCheck(name+"/leak_last_bytes",
			float64(b.LeakLastBytes), float64(c.LeakLastBytes))
		rep.invariantCheck(name+"/trend_keys",
			float64(b.TrendKeys), float64(c.TrendKeys))
		rep.invariantCheck(name+"/live_objects",
			float64(b.LiveObjects), float64(c.LiveObjects))
		rep.timeCheckGMP(name+"/elapsed_ms", b.ElapsedMs, c.ElapsedMs,
			effGMP(b.GoMaxProcs, base.GoMaxProcs), effGMP(c.GoMaxProcs, cand.GoMaxProcs))
	}
	return rep.finish()
}

// detectSchema classifies a benchmark JSON by its first row's keys.
func detectSchema(data []byte) (string, error) {
	var probe struct {
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", err
	}
	if len(probe.Rows) == 0 {
		return "", fmt.Errorf("no rows")
	}
	if _, ok := probe.Rows[0]["policy"]; ok {
		// Before the generic "tenants"/"requests" keys could confuse
		// anything: only servebench rows name an over-budget policy.
		return "servebench", nil
	}
	if _, ok := probe.Rows[0]["pause_mode"]; ok {
		// Before the generic "mutators" probe: pause rows carry both.
		return "pausebench", nil
	}
	if _, ok := probe.Rows[0]["mode"]; ok {
		return "sweepbench", nil
	}
	if _, ok := probe.Rows[0]["workers"]; ok {
		return "markbench", nil
	}
	if _, ok := probe.Rows[0]["profile"]; ok {
		return "allocbench", nil
	}
	if _, ok := probe.Rows[0]["mutators"]; ok {
		return "mutbench", nil
	}
	if _, ok := probe.Rows[0]["leak_key_alerts"]; ok {
		return "leakwatch", nil
	}
	if _, ok := probe.Rows[0]["round"]; ok {
		return "retention", nil
	}
	return "", fmt.Errorf("rows have no \"policy\", \"pause_mode\", \"mode\", \"workers\", \"profile\", \"mutators\", \"leak_key_alerts\" or \"round\" keys")
}

// Gate loads the baseline, obtains a candidate (from candidatePath or a
// fresh in-process run matched to the baseline's parameters), and
// returns the comparison report.
func Gate(baselinePath, candidatePath string, tol float64) (*Report, error) {
	baseData, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	schema, err := detectSchema(baseData)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", baselinePath, err)
	}
	var candData []byte
	if candidatePath != "" {
		candData, err = os.ReadFile(candidatePath)
		if err != nil {
			return nil, err
		}
		candSchema, err := detectSchema(candData)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", candidatePath, err)
		}
		if candSchema != schema {
			return nil, fmt.Errorf("schema mismatch: baseline %s, candidate %s", schema, candSchema)
		}
	}
	switch schema {
	case "markbench":
		var base repro.MarkBenchResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, err
		}
		var cand repro.MarkBenchResult
		if candData != nil {
			if err := json.Unmarshal(candData, &cand); err != nil {
				return nil, err
			}
		} else {
			var workers []int
			for _, r := range base.Rows {
				workers = append(workers, r.Workers)
			}
			res, _, err := repro.MarkBench(repro.MarkBenchOptions{
				Workers: workers, Lists: base.Lists, Nodes: base.Nodes,
			})
			if err != nil {
				return nil, err
			}
			cand = *res
		}
		return CompareMark(&base, &cand, tol), nil
	case "sweepbench":
		var base repro.SweepBenchResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, err
		}
		var cand repro.SweepBenchResult
		if candData != nil {
			if err := json.Unmarshal(candData, &cand); err != nil {
				return nil, err
			}
		} else {
			cycles := 0
			if len(base.Rows) > 0 {
				cycles = base.Rows[0].Cycles
			}
			res, _, err := repro.SweepBench(repro.SweepBenchOptions{
				Lists: base.Lists, Nodes: base.Nodes, Cycles: cycles,
			})
			if err != nil {
				return nil, err
			}
			if base.Mark != nil {
				var workers []int
				for _, r := range base.Mark.Rows {
					workers = append(workers, r.Workers)
				}
				mark, _, err := repro.MarkBench(repro.MarkBenchOptions{
					Workers: workers, Lists: base.Mark.Lists, Nodes: base.Mark.Nodes,
				})
				if err != nil {
					return nil, err
				}
				res.Mark = mark
			}
			cand = *res
		}
		return CompareSweep(&base, &cand, tol), nil
	case "mutbench":
		var base repro.MutBenchResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, err
		}
		var cand repro.MutBenchResult
		if candData != nil {
			if err := json.Unmarshal(candData, &cand); err != nil {
				return nil, err
			}
		} else {
			var counts []int
			for _, r := range base.Rows {
				counts = append(counts, r.Mutators)
			}
			res, _, err := repro.MutBench(repro.MutBenchOptions{
				Mutators: counts, Allocs: base.Allocs,
			})
			if err != nil {
				return nil, err
			}
			cand = *res
		}
		return CompareMut(&base, &cand, tol), nil
	case "allocbench":
		var base repro.AllocBenchResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, err
		}
		var cand repro.AllocBenchResult
		if candData != nil {
			if err := json.Unmarshal(candData, &cand); err != nil {
				return nil, err
			}
		} else {
			var counts []int
			seen := map[int]bool{}
			for _, r := range base.Rows {
				if !seen[r.Mutators] {
					seen[r.Mutators] = true
					counts = append(counts, r.Mutators)
				}
			}
			res, _, err := repro.AllocBench(repro.AllocBenchOptions{
				Mutators: counts, Allocs: base.Allocs,
			})
			if err != nil {
				return nil, err
			}
			cand = *res
		}
		return CompareAlloc(&base, &cand, tol), nil
	case "pausebench":
		var base repro.PauseBenchResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, err
		}
		var cand repro.PauseBenchResult
		if candData != nil {
			if err := json.Unmarshal(candData, &cand); err != nil {
				return nil, err
			}
		} else {
			var widths []int
			seen := map[int]bool{}
			for _, r := range base.Rows {
				if !seen[r.GoMaxProcs] {
					seen[r.GoMaxProcs] = true
					widths = append(widths, r.GoMaxProcs)
				}
			}
			res, _, err := repro.PauseBench(repro.PauseBenchOptions{
				Mutators: base.Mutators, Ops: base.Ops, Widths: widths,
			})
			if err != nil {
				return nil, err
			}
			cand = *res
		}
		return ComparePause(&base, &cand, tol), nil
	case "servebench":
		var base repro.ServeBenchResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, err
		}
		var cand repro.ServeBenchResult
		if candData != nil {
			if err := json.Unmarshal(candData, &cand); err != nil {
				return nil, err
			}
		} else {
			// The collect-first row's attempt count is opts.Requests
			// requests of 4 allocations each; the other tapes are fixed.
			reqs := 0
			for _, r := range base.Rows {
				if r.Policy == "collect-first" {
					reqs = r.Requests / 4
				}
			}
			res, _, err := repro.ServeBench(repro.ServeBenchOptions{
				Tenants: base.Tenants, Requests: reqs,
			})
			if err != nil {
				return nil, err
			}
			cand = *res
		}
		return CompareServe(&base, &cand, tol), nil
	case "retention":
		var base repro.RetentionBenchResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, err
		}
		var cand repro.RetentionBenchResult
		if candData != nil {
			if err := json.Unmarshal(candData, &cand); err != nil {
				return nil, err
			}
		} else {
			res, _, err := repro.RetentionBench(repro.RetentionBenchOptions{
				Rounds: base.Rounds, Steps: base.StepsPerRound,
			})
			if err != nil {
				return nil, err
			}
			cand = *res
		}
		return CompareRetention(&base, &cand, tol), nil
	case "leakwatch":
		var base repro.LeakBenchResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, err
		}
		var cand repro.LeakBenchResult
		if candData != nil {
			if err := json.Unmarshal(candData, &cand); err != nil {
				return nil, err
			}
		} else {
			res, _, err := repro.LeakBench(repro.LeakBenchOptions{
				Rounds: base.Rounds, SampleEvery: base.SampleEvery,
				Window: base.Window, MinGrowthBytes: base.MinGrowthBytes,
			})
			if err != nil {
				return nil, err
			}
			cand = *res
		}
		return CompareLeak(&base, &cand, tol), nil
	}
	return nil, fmt.Errorf("unreachable schema %q", schema)
}

func main() {
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		flag.Usage()
		os.Exit(2)
	}
	// Name the schema detected for each input file up front: with eight
	// BENCH_*.json schemas in the tree, a gate failure that silently
	// compared the wrong benchmark family is much harder to diagnose
	// than one that announced what it detected.
	for _, path := range []string{*baselinePath, *candidatePath} {
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			continue // Gate reports read errors with proper exit status.
		}
		if schema, err := detectSchema(data); err == nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: detected schema %s\n", path, schema)
		}
	}
	rep, err := Gate(*baselinePath, *candidatePath, *tolerance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if !rep.Pass {
		for _, c := range rep.Checks {
			if !c.Pass {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %g > limit %g (baseline %g)\n",
					c.Name, c.Candidate, c.Limit, c.Baseline)
			}
		}
		os.Exit(1)
	}
}
