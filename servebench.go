package repro

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/stats"
	"repro/internal/workload"
)

// ServeBenchOptions parameterises the multi-tenant serving
// measurement.
type ServeBenchOptions struct {
	// Tenants is how many concurrent tenant sessions each policy row
	// runs (default 1000). Every tenant gets its own goroutine, Mutator
	// handle, and private root slots.
	Tenants int
	// Requests is the collect-first row's request count per session
	// (default 12; the fail and evict rows' tapes are fixed by their
	// budget arithmetic instead).
	Requests int
	// Trace, when non-nil, records collector events (budget denials,
	// evictions, cycle phases) from every measured world.
	Trace *TraceRecorder
}

// ServeBenchRow is one over-budget policy's serving profile. Each
// tenant replays a deterministic session tape against a deterministic
// budget, so the allocation, denial, eviction, reclamation, liveness
// and fairness columns are exact invariants the regression gate
// compares bit-for-bit — concurrency changes when collections fire,
// never what each tenant's budget admits. The latency and pause
// percentiles are timing and stay advisory.
type ServeBenchRow struct {
	// Policy is "fail", "collect-first" or "evict".
	Policy  string `json:"policy"`
	Tenants int    `json:"tenants"`
	// Requests is the allocation attempts each tenant's tape makes.
	Requests int `json:"requests"`
	// ObjectsAllocated sums successful allocations over all tenants;
	// the same count is cross-checked against the central allocator
	// (exact conservation) before the row is returned.
	ObjectsAllocated uint64 `json:"objects_allocated"`
	// ObjectsLive is the heap's live-object count after teardown
	// collections: tenants*budget for fail (everything rooted), the
	// tape-determined survivor count for collect-first, 0 for evict.
	ObjectsLive uint64 `json:"objects_live"`
	// Denials/Evictions/ReclaimedObjects sum the tenants' counters.
	Denials          uint64 `json:"denials"`
	Evictions        uint64 `json:"evictions"`
	ReclaimedObjects uint64 `json:"reclaimed_objects"`
	// FairnessSpread is max-min of per-tenant successful allocations:
	// identical tapes against identical budgets must admit identical
	// counts, so any nonzero spread means budget enforcement leaked
	// between tenants.
	FairnessSpread uint64 `json:"fairness_spread"`
	// ForcedCollections counts collect-first collections run on the
	// tenants' behalf. Advisory: a collection one tenant forces credits
	// every tenant's garbage at the barrier, so the count depends on
	// goroutine interleaving.
	ForcedCollections uint64 `json:"forced_collections"`
	// Collections is the world's cycle count at teardown (advisory).
	Collections int `json:"collections"`
	// Allocation latency distribution over every attempt (successes
	// and denials), in nanoseconds. Timing columns — advisory.
	AllocP50Ns float64 `json:"alloc_p50_ns"`
	AllocP99Ns float64 `json:"alloc_p99_ns"`
	// PauseP99Ns is the p99 mutator-visible pause (final pauses for
	// concurrent cycles, full duration for stop-the-world ones).
	PauseP99Ns     float64 `json:"pause_p99_ns"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	Oversubscribed bool    `json:"oversubscribed"`
}

// ServeBenchResult is the full measurement with the environment it ran
// in.
type ServeBenchResult struct {
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	Tenants    int             `json:"tenants"`
	Rows       []ServeBenchRow `json:"rows"`
}

// serveTape is one policy row's deterministic per-tenant script.
type serveTape struct {
	policy  TenantPolicy
	session workload.ServeSessionParams
	// budgetObjs is the tenant budget in objects of session.ObjWords.
	budgetObjs int
	// Expected per-tenant outcomes; every tenant must match exactly.
	wantAllocated uint64
	wantDenials   uint64
	wantEvicted   bool
}

// ServeBench measures the multi-tenant serving layer under its three
// over-budget policies: thousands of concurrent tenant sessions (the
// scheme- and leak-style bodies from internal/workload) allocating
// against per-tenant budgets on one shared heap, with concurrent
// marking and background sweep underneath. Each policy row checks its
// budget contract exactly — per tenant, not just in aggregate — and
// records the allocation-latency and pause distributions the serving
// SLO cares about.
func ServeBench(opts ServeBenchOptions) (*ServeBenchResult, *stats.Table, error) {
	if opts.Tenants == 0 {
		opts.Tenants = 1000
	}
	if opts.Requests == 0 {
		opts.Requests = 12
	}
	res := &ServeBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Tenants:    opts.Tenants,
	}
	const objWords = 8 // charges one 32-byte size class
	tapes := []serveTape{
		// Fail: a leak-style session (nothing ever unrooted) against a
		// 16-object budget, driven for 24 attempts. The budget admits
		// exactly 16; the remaining 8 attempts are denials, every time,
		// for every tenant.
		{
			policy: TenantFail,
			session: workload.ServeSessionParams{
				Kind: workload.ServeLeak, Requests: 6, AllocsPerRequest: 4,
				ObjWords: objWords, Slots: 24,
			},
			budgetObjs:    16,
			wantAllocated: 16,
			wantDenials:   8,
		},
		// Collect-first: a scheme-style session (rotating roots, no
		// links) against a 16-object budget. Live never exceeds the 8
		// root slots once a collection runs, so every over-budget
		// charge is satisfied by the forced collection and all
		// attempts succeed with zero denials.
		{
			policy: TenantCollectFirst,
			session: workload.ServeSessionParams{
				Kind: workload.ServeScheme, Requests: opts.Requests, AllocsPerRequest: 4,
				ObjWords: objWords, Slots: 8,
			},
			budgetObjs:    16,
			wantAllocated: uint64(opts.Requests * 4),
			wantDenials:   0,
		},
		// Evict: the leak session against a 16-object budget with 20
		// attempts. The 17th allocation evicts the tenant — its 16
		// objects are reclaimed wholesale despite being rooted — and
		// the session stops.
		{
			policy: TenantEvict,
			session: workload.ServeSessionParams{
				Kind: workload.ServeLeak, Requests: 5, AllocsPerRequest: 4,
				ObjWords: objWords, Slots: 20,
			},
			budgetObjs:    16,
			wantAllocated: 16,
			wantEvicted:   true,
		},
	}
	for _, tape := range tapes {
		row, err := serveBenchRun(opts, tape)
		if err != nil {
			return nil, nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	tab := stats.NewTable(
		fmt.Sprintf("Multi-tenant serving: %d concurrent tenants per policy (NumCPU=%d)",
			opts.Tenants, res.NumCPU),
		"policy", "tenants", "allocated", "denied", "evicted", "reclaimed", "live", "alloc p50", "alloc p99", "pause p99")
	us := func(ns float64) string { return fmt.Sprintf("%.1fus", ns/1e3) }
	for _, r := range res.Rows {
		tab.AddF(r.Policy, r.Tenants, r.ObjectsAllocated, r.Denials, r.Evictions,
			r.ReclaimedObjects, r.ObjectsLive, us(r.AllocP50Ns), us(r.AllocP99Ns), us(r.PauseP99Ns))
	}
	return res, tab, nil
}

func serveBenchRun(opts ServeBenchOptions, tape serveTape) (*ServeBenchRow, error) {
	// The serving heap runs the repo's most concurrent collector: four
	// detached mark workers, rate-paced assists, background sweep.
	w, err := NewWorld(Config{
		InitialHeapBytes: 8 << 20, ReserveHeapBytes: 64 << 20,
		GCDivisor: 16, ConcurrentMark: true, MarkQuantum: 4096,
		ConcMarkWorkers: 4, ConcurrentSweep: true,
	})
	if err != nil {
		return nil, err
	}
	w.SetTracer(opts.Trace)
	n := opts.Tenants
	sess := tape.session.WithDefaults()
	slotBytes := sess.Slots * 4
	data, err := w.Space.MapNew("roots", KindData, 0x2000, n*slotBytes, n*slotBytes)
	if err != nil {
		return nil, err
	}
	var pauses []float64
	w.SetCollectionHook(func(st CollectionStats) {
		if st.Concurrent {
			pauses = append(pauses, float64(st.PauseFinalNs), float64(st.PauseSnapshotNs))
		} else {
			pauses = append(pauses, float64(st.Duration.Nanoseconds()))
		}
	})
	charge := uint64(tape.budgetObjs) * uint64(sess.ObjWords) * 4
	tens := make([]*Tenant, n)
	muts := make([]*Mutator, n)
	for i := range tens {
		tens[i] = w.NewTenant(TenantConfig{
			Name:        fmt.Sprintf("t%d", i),
			BudgetBytes: charge,
			Policy:      tape.policy,
		})
		muts[i] = tens[i].NewMutator()
	}
	results := make([]*workload.ServeSessionResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := sess
			p.Seed = uint64(i)*0x9e3779b97f4a7c15 + 1
			results[i], errs[i] = workload.RunServeSession(muts[i], data, Addr(0x2000+i*slotBytes), p)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("servebench: tenant %d: %w", i, err)
		}
	}
	// Teardown: land any in-flight cycle while the hook still samples,
	// then settle the heap so per-tenant reclamation and the live count
	// are final.
	w.FinishConcurrentCycle()
	cycles := w.Collections()
	w.SetCollectionHook(nil)
	w.Collect()
	w.Collect()
	w.FinishSweep()
	if err := w.VerifyIntegrity(); err != nil {
		return nil, fmt.Errorf("servebench: %w", err)
	}
	row := &ServeBenchRow{
		Policy:         tape.policy.String(),
		Tenants:        n,
		Requests:       sess.Requests * sess.AllocsPerRequest,
		Collections:    cycles,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Oversubscribed: n > runtime.GOMAXPROCS(0),
	}
	var allocNs []float64
	minAlloc, maxAlloc := ^uint64(0), uint64(0)
	for i, r := range results {
		st := tens[i].Stats()
		// The budget contract holds per tenant, exactly: same tape +
		// same budget = same admissions, no matter how the scheduler
		// interleaved 1000 sessions.
		if r.Allocated != tape.wantAllocated || st.AllocatedObjects != tape.wantAllocated {
			return nil, fmt.Errorf("servebench: %s: tenant %d allocated %d (stats %d), tape admits exactly %d",
				row.Policy, i, r.Allocated, st.AllocatedObjects, tape.wantAllocated)
		}
		if r.Denials != tape.wantDenials || st.BudgetDenials != tape.wantDenials {
			return nil, fmt.Errorf("servebench: %s: tenant %d denied %d times, want exactly %d",
				row.Policy, i, r.Denials, tape.wantDenials)
		}
		if r.Evicted != tape.wantEvicted || st.Evicted != tape.wantEvicted {
			return nil, fmt.Errorf("servebench: %s: tenant %d evicted=%v, want %v",
				row.Policy, i, r.Evicted, tape.wantEvicted)
		}
		// Settled attribution: the tenant's budget counter agrees with
		// the allocator's ownership table to the byte.
		if owned := tens[i].OwnedBytes(); st.LiveBytes != owned {
			return nil, fmt.Errorf("servebench: %s: tenant %d live %d bytes vs %d owned (attribution drift)",
				row.Policy, i, st.LiveBytes, owned)
		}
		row.ObjectsAllocated += st.AllocatedObjects
		row.Denials += st.BudgetDenials
		row.ReclaimedObjects += st.ReclaimedObjects
		row.ForcedCollections += st.ForcedCollections
		if st.Evicted {
			row.Evictions++
		}
		if st.AllocatedObjects < minAlloc {
			minAlloc = st.AllocatedObjects
		}
		if st.AllocatedObjects > maxAlloc {
			maxAlloc = st.AllocatedObjects
		}
		for _, ns := range r.AllocNs {
			allocNs = append(allocNs, float64(ns))
		}
	}
	row.FairnessSpread = maxAlloc - minAlloc
	// Exact conservation: every allocation in the row went through a
	// tenant handle and is visible in the central stats exactly once.
	hs := w.Heap.Stats()
	if hs.ObjectsAllocated != row.ObjectsAllocated {
		return nil, fmt.Errorf("servebench: %s: central ObjectsAllocated %d, tenants allocated %d",
			row.Policy, hs.ObjectsAllocated, row.ObjectsAllocated)
	}
	row.ObjectsLive = hs.ObjectsLive
	row.AllocP50Ns = pausePercentile(allocNs, 50)
	row.AllocP99Ns = pausePercentile(allocNs, 99)
	row.PauseP99Ns = pausePercentile(pauses, 99)
	return row, nil
}
