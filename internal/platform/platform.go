// Package platform reconstructs the five process-image environments of
// the paper's table 1: statically and dynamically linked SunOS/SPARC,
// SGI/IRIX, OS/2 on a 486, and PCR running inside a Cedar world.
//
// A profile is a parameterised description of everything in a process
// image that can produce false references to program T's heap:
//
//   - static data containing "seemingly random integer values"
//     (the SunOS static libc's base-conversion tables, >35 KB);
//   - packed, unaligned string constants whose boundaries read as
//     big-endian words of the form 0x00XXYYZZ — addresses between
//     roughly 2.1 MB and 8.4 MB (appendix B, SPARC), versus the SGI
//     compiler's word-aligned strings, which produce none;
//   - register windows polluted by "kernel calls and/or context
//     switches", both long-lived (blacklistable) and mid-run;
//   - uncleared thread stacks and statics that mutate mid-run (PCR),
//     which defeat the startup blacklist and account for the residual
//     leakage in the blacklisting column;
//   - other live data sharing the heap (the Cedar world's 1.5–13 MB).
//
// The retention percentages in the reproduction are emergent: a profile
// fixes only the pollution inputs, described above from the paper's own
// appendix B, and the collector does the rest.
package platform

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mark"
	"repro/internal/mem"
	"repro/internal/simrand"
	"repro/internal/workload"
)

// NoiseSpec describes register pollution: count values uniform in
// [Lo, Hi).
type NoiseSpec struct {
	Count  int
	Lo, Hi uint32
}

// ThreadStackSpec describes one uncleared thread stack scanned as a
// root (PCR scans all thread stacks; "the PCR collector does not
// attempt to clear thread stacks").
type ThreadStackSpec struct {
	Bytes   int
	Density float64 // fraction of words holding garbage values
	Lo, Hi  uint32
}

// Profile describes one table-1 environment.
type Profile struct {
	Name      string
	Optimized bool

	// Heap geometry.
	HeapBase    mem.Addr
	HeapReserve int
	InitialHeap int
	GCDivisor   int

	// Static data image.
	StaticArrayBase mem.Addr // program T's a[] array
	StaticBase      mem.Addr
	Tables          []TableSpec
	StringBytes     int
	StringsAligned  bool

	// Machine.
	RegisterWindows bool
	FrameSlop       int
	StackBytes      int
	BuildRegNoise   NoiseSpec // present from startup: blacklistable
	MidRegNoise     NoiseSpec // appears mid-run: evades the blacklist

	// PCR extras.
	ThreadStacks    []ThreadStackSpec
	MidThreadPokes  int // mid-run stale values written into thread stacks
	MutatingStatics int // statics rewritten mid-run with heap-derived values
	OtherLiveBytes  int // live Cedar data sharing the heap

	// Program T parameters.
	NLists       int
	NodesPerList int
	NodeWords    int

	// MarkWorkers shards the mark phase across this many workers
	// (0 or 1 = serial). The paper's measurements are serial; parallel
	// runs mark the identical object set (see core.Config.MarkWorkers)
	// and exist for wall-clock speedups, not for different numbers.
	MarkWorkers int

	// LazySweep defers sweep work out of the collection pause (see
	// core.Config.LazySweep). Reclamation totals are unchanged, so
	// table-1 retention numbers are identical either way; the knob
	// exists for pause-time measurements over profile workloads.
	LazySweep bool
}

// ListBytes returns the payload bytes of one program-T list.
func (p Profile) ListBytes() int { return p.NodesPerList * p.NodeWords * mem.WordBytes }

// Env is a built environment ready to run program T.
type Env struct {
	Profile Profile
	World   *core.World
	Machine *machine.Machine

	statics      *mem.Segment
	threadStacks []*mem.Segment
	rng          *simrand.Rand
}

// Build constructs the world for a profile: address space, static data
// pollution, thread stacks, machine, other live data — and runs the
// startup collection the paper's blacklisting scheme requires ("at
// least one (normally very fast) garbage collection occurring just
// after system start up before any allocation has taken place").
func (p Profile) Build(seed uint64, blacklisting bool) (*Env, error) {
	mixed := seed
	if p.Optimized {
		// Optimized builds see different (but identically distributed)
		// run-to-run noise: the paper's optimized rows differ from the
		// unoptimized ones only within that noise.
		mixed ^= 0xA11A0C8ED5EED
	}
	rng := simrand.New(mixed)
	// The static image — tables and string constants — is a property of
	// the platform's compiler and libraries, NOT of the run: the paper's
	// OS/2 results were "completely reproducible ... though probably not
	// across compiler versions". Derive its stream from the profile
	// identity alone, so run-to-run ranges come only from register and
	// kernel noise, as in the paper.
	staticSeed := uint64(0x57A71C)
	for _, c := range p.Name {
		staticSeed = staticSeed*131 + uint64(c)
	}
	// The optimization level does not change the C library's data, so
	// optimized and unoptimized builds share the static image.
	staticRng := simrand.New(staticSeed)
	mode := core.BlacklistOff
	if blacklisting {
		mode = core.BlacklistDense
	}
	w, err := core.NewWorld(nil, core.Config{
		HeapBase:         p.HeapBase,
		InitialHeapBytes: p.InitialHeap,
		ReserveHeapBytes: p.HeapReserve,
		Pointer:          mark.PointerInterior, // program T forces interior pointers
		Blacklisting:     mode,
		GCDivisor:        p.GCDivisor,
		MarkWorkers:      p.MarkWorkers,
		LazySweep:        p.LazySweep,
		AllocatorResidue: true,
		// "In the PCedar environment, there are enough allocations of
		// small objects known to be pointer-free that blacklisted pages
		// can still be allocated" — harmless to allow everywhere.
		AllowAtomicOnBlacklisted: true,
	})
	if err != nil {
		return nil, fmt.Errorf("platform %s: %w", p.Name, err)
	}
	env := &Env{Profile: p, World: w, rng: rng}

	// Static data image: integer tables, then string constants.
	staticBytes := p.StringBytes
	for _, t := range p.Tables {
		staticBytes += t.Bytes
	}
	staticBytes = int(mem.AlignWordUp(mem.Addr(staticBytes + 64)))
	if staticBytes > 0 {
		seg, err := w.Space.MapNew("static", mem.KindData, p.StaticBase, staticBytes, staticBytes)
		if err != nil {
			return nil, err
		}
		off := p.StaticBase
		for _, t := range p.Tables {
			off = fillIntTables(seg, off, t, staticRng.Split())
		}
		fillStrings(seg, off, p.StringBytes, p.StringsAligned, staticRng.Split())
		env.statics = seg
	}

	// Uncleared thread stacks (roots).
	for i, ts := range p.ThreadStacks {
		base := mem.Addr(0xE0000000) + mem.Addr(i*0x20000)
		seg, err := w.Space.MapNew(fmt.Sprintf("thread%d", i), mem.KindStack, base, ts.Bytes, ts.Bytes)
		if err != nil {
			return nil, err
		}
		seg.SetRoot(true)
		fillStaleStack(seg, ts.Density, ts.Lo, ts.Hi, rng.Split())
		env.threadStacks = append(env.threadStacks, seg)
	}

	// The mutator machine.
	stackBytes := p.StackBytes
	if stackBytes == 0 {
		stackBytes = 1 << 20
	}
	m, err := machine.New(w.Space, machine.Config{
		StackTop:        0xF0000000,
		StackBytes:      stackBytes,
		FrameSlopWords:  p.FrameSlop,
		RegisterWindows: p.RegisterWindows,
		Seed:            rng.Uint64(),
	})
	if err != nil {
		return nil, err
	}
	w.SetMutator(m)
	env.Machine = m
	if n := p.BuildRegNoise; n.Count > 0 {
		m.PolluteRegisters(nil, n.Count, n.Lo, n.Hi)
	}

	// Other live data (the Cedar world): a chain of composite objects
	// holding pointers to each other and small integers, rooted in a
	// dedicated static slot.
	if p.OtherLiveBytes > 0 {
		if err := env.buildOtherLive(); err != nil {
			return nil, err
		}
	}

	// Startup collection: blacklists every long-lived false reference
	// present in the image before any program-T allocation.
	w.Collect()
	return env, nil
}

// buildOtherLive allocates the profile's other live data.
func (e *Env) buildOtherLive() error {
	const objWords = 64
	n := e.Profile.OtherLiveBytes / (objWords * mem.WordBytes)
	root, err := e.World.Space.MapNew("otherlive.root", mem.KindData, 0x3800, 64, 64)
	if err != nil {
		return err
	}
	var prev mem.Addr
	for i := 0; i < n; i++ {
		obj, err := e.World.Allocate(objWords, false)
		if err != nil {
			return err
		}
		// Interior pointers to the previous object plus small-integer
		// payload, like ordinary live program data.
		if prev != 0 {
			e.World.Store(obj, mem.Word(prev))
			e.World.Store(obj+4, mem.Word(prev+8*mem.WordBytes))
		}
		for j := 2; j < 6; j++ {
			e.World.Store(obj+mem.Addr(4*j), mem.Word(e.rng.Uint32n(4096)))
		}
		prev = obj
	}
	return root.Store(0x3800, mem.Word(prev))
}

// midRun injects the noise that arrives during a run and therefore
// evades the startup blacklist: fresh register garbage from kernel
// calls, allocator garbage on other threads' stacks, and (PCR's
// appendix-B leak source #1) statics that changed after startup.
func (e *Env) midRun() error {
	if n := e.Profile.MidRegNoise; n.Count > 0 {
		e.Machine.PolluteRegisters(nil, n.Count, n.Lo, n.Hi)
	}
	heapLo := uint32(e.World.Heap.Base())
	heapHi := uint32(e.World.Heap.Limit())
	for i := 0; i < e.Profile.MidThreadPokes && len(e.threadStacks) > 0; i++ {
		seg := e.threadStacks[e.rng.Intn(len(e.threadStacks))]
		slot := seg.Base() + mem.Addr(e.rng.Intn(seg.Size()/4)*4)
		if err := seg.Store(slot, mem.Word(e.rng.Range(heapLo, heapHi))); err != nil {
			return err
		}
	}
	// "In several runs the only variables responsible for such leakage
	// basically contained the heap size, but were maintained by parts
	// of PCR outside the collector."
	for i := 0; i < e.Profile.MutatingStatics && e.statics != nil; i++ {
		slot := e.statics.Base() + mem.Addr(e.statics.Size()) - mem.Addr(4*(i+1))
		v := heapLo + e.rng.Uint32n(heapHi-heapLo)
		if err := e.statics.Store(slot, mem.Word(v)); err != nil {
			return err
		}
	}
	return nil
}

// RunProgramT executes the profile's program-T variant in the built
// environment and returns the retention result.
func (e *Env) RunProgramT() (*workload.ProgramTResult, error) {
	return workload.RunProgramT(e.World, e.Machine, workload.ProgramTParams{
		NLists:          e.Profile.NLists,
		NodesPerList:    e.Profile.NodesPerList,
		NodeWords:       e.Profile.NodeWords,
		StaticArrayBase: e.Profile.StaticArrayBase,
		MidRun:          e.midRun,
	})
}

// RunCell builds the environment and runs program T once, returning the
// retained fraction — one seed's contribution to one table-1 cell.
func RunCell(p Profile, blacklisting bool, seed uint64) (float64, error) {
	env, err := p.Build(seed, blacklisting)
	if err != nil {
		return 0, err
	}
	res, err := env.RunProgramT()
	if err != nil {
		return 0, err
	}
	return res.RetainedFraction(), nil
}
