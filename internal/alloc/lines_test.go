package alloc

import (
	"testing"

	"repro/internal/mem"
)

// lineCfg is the standard line-profile test configuration.
func lineCfg() Config { return Config{LineAlloc: true} }

// spanAddrs expands a span into the slot addresses it will hand out.
func spanAddrs(s Span) []mem.Addr {
	var out []mem.Addr
	step := mem.Addr(s.Words * mem.WordBytes)
	for p := s.Cursor; p < s.Limit; p += step {
		out = append(out, p)
	}
	return out
}

func TestLineAllocBasicSpan(t *testing.T) {
	_, a := newTestAllocator(t, lineCfg())
	s, err := a.AllocSpan(64, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Words != 64 {
		t.Fatalf("span words = %d, want 64", s.Words)
	}
	slots := spanAddrs(s)
	// A fresh 64-word-class block has every line free: one span covers
	// the whole block's usable slots.
	if want := mem.PageWords / 64; len(slots) != want {
		t.Fatalf("fresh-block span holds %d slots, want %d", len(slots), want)
	}
	// Every slot is allocated (bits set at carve) and zeroed.
	for _, p := range slots {
		if got, _ := a.FindObject(p, false); got != p {
			t.Fatalf("span slot %#x not an object base", uint32(p))
		}
		for w := 0; w < 64; w++ {
			v, err := a.loadWord(p + mem.Addr(w*mem.WordBytes))
			if err != nil {
				t.Fatal(err)
			}
			if v != 0 {
				t.Fatalf("span slot %#x word %d = %#x, want 0", uint32(p), w, v)
			}
		}
	}
	if err := a.CheckIntegrity(nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineAllocReturnSpanExact(t *testing.T) {
	_, a := newTestAllocator(t, lineCfg())
	s, err := a.AllocSpan(64, false)
	if err != nil {
		t.Fatal(err)
	}
	// Consume two slots, return the tail, and re-carve: the next span
	// must resume at exactly the returned cursor.
	step := mem.Addr(64 * mem.WordBytes)
	cursor := s.Cursor + 2*step
	if n := a.ReturnSpan(cursor, s.Limit); n != s.slots(64)-2 {
		t.Fatalf("ReturnSpan returned %d slots", n)
	}
	s2, err := a.AllocSpan(64, false)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cursor != cursor || s2.Limit != s.Limit {
		t.Fatalf("re-carve = [%#x,%#x), want [%#x,%#x)",
			uint32(s2.Cursor), uint32(s2.Limit), uint32(cursor), uint32(s.Limit))
	}
	if err := a.CheckIntegrity(nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineAllocStatsDeferredToConsumption(t *testing.T) {
	_, a := newTestAllocator(t, lineCfg())
	before := a.Stats()
	s, err := a.AllocSpan(64, false)
	if err != nil {
		t.Fatal(err)
	}
	after := a.Stats()
	if after.ObjectsAllocated != before.ObjectsAllocated || after.BytesAllocated != before.BytesAllocated {
		t.Fatalf("carve counted stats: %+v -> %+v", before, after)
	}
	n := uint64(s.slots(64))
	a.CommitAllocs(n, n*64*mem.WordBytes)
	if got := a.Stats().ObjectsAllocated; got != before.ObjectsAllocated+n {
		t.Fatalf("after commit ObjectsAllocated = %d", got)
	}
	a.FlushSpans()
}

func TestLineAllocRejectsFreeListAPIs(t *testing.T) {
	_, a := newTestAllocator(t, lineCfg())
	if _, err := a.AllocRun(4, false, 8, nil); err == nil {
		t.Fatal("AllocRun succeeded under LineAlloc")
	}
	if _, err := a.AllocSpan(MaxSmallWords+1, false); err == nil {
		t.Fatal("AllocSpan of a large object succeeded")
	}
	_, b := newTestAllocator(t, Config{})
	if _, err := b.AllocSpan(4, false); err == nil {
		t.Fatal("AllocSpan succeeded without LineAlloc")
	}
}

func TestLineSweepReclaimsAndZeroes(t *testing.T) {
	_, a := newTestAllocator(t, lineCfg())
	// Allocate a block's worth of 8-word objects, mark every other one,
	// sweep, and check dead slots are whole-zeroed and reclaimable.
	var objs []mem.Addr
	for i := 0; i < mem.PageWords/8; i++ {
		p, err := a.Alloc(8, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.storeWord(p, mem.Word(0xdeadbeef)); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, p)
	}
	for i, p := range objs {
		if i%2 == 0 {
			a.Mark(p)
		}
	}
	res := a.Sweep()
	if int(res.ObjectsFreed) != len(objs)/2 {
		t.Fatalf("freed %d, want %d", res.ObjectsFreed, len(objs)/2)
	}
	for i, p := range objs {
		if i%2 == 0 {
			continue
		}
		for w := 0; w < 8; w++ {
			v, err := a.loadWord(p + mem.Addr(w*mem.WordBytes))
			if err != nil {
				t.Fatal(err)
			}
			if v != 0 {
				t.Fatalf("dead slot %#x word %d = %#x after line sweep", uint32(p), w, v)
			}
		}
	}
	if err := a.CheckIntegrity(nil); err != nil {
		t.Fatal(err)
	}
	// The freed slots are carvable again.
	if _, err := a.Alloc(8, false); err != nil {
		t.Fatal(err)
	}
}

func TestLineStatsAccounting(t *testing.T) {
	_, a := newTestAllocator(t, lineCfg())
	// One fresh 64-word-class block, half consumed.
	half := mem.PageWords / 64 / 2
	for i := 0; i < half; i++ {
		if _, err := a.Alloc(64, false); err != nil {
			t.Fatal(err)
		}
	}
	a.FlushSpans()
	ls := a.LineStats()
	if ls.LineBlocks != 1 {
		t.Fatalf("LineBlocks = %d, want 1", ls.LineBlocks)
	}
	if ls.TotalLines != LinesPerBlock {
		t.Fatalf("TotalLines = %d, want %d", ls.TotalLines, LinesPerBlock)
	}
	if ls.LiveLines+ls.FreeLines != ls.TotalLines {
		t.Fatalf("live %d + free %d != total %d", ls.LiveLines, ls.FreeLines, ls.TotalLines)
	}
	// 64-word slots tile lines exactly: no waste is possible.
	if ls.WasteSlots != 0 || ls.WasteBytes != 0 {
		t.Fatalf("line-aligned class shows waste: %+v", ls)
	}
}

func TestLineAllocFreeRequeues(t *testing.T) {
	_, a := newTestAllocator(t, lineCfg())
	p, err := a.Alloc(64, false)
	if err != nil {
		t.Fatal(err)
	}
	a.FlushSpans()
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	// The freed slot's block was requeued: the next allocation of the
	// class carves it again, lowest free run first.
	q, err := a.Alloc(64, false)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("after Free, Alloc = %#x, want the freed slot %#x", uint32(q), uint32(p))
	}
	a.FlushSpans()
	if err := a.CheckIntegrity(nil); err != nil {
		t.Fatal(err)
	}
}
