package repro

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// MarkBenchOptions parameterises the parallel-mark scaling measurement.
type MarkBenchOptions struct {
	Workers []int // worker counts to measure; default {1, 2, 4, 8}
	Lists   int   // rooted lists (default 64)
	Nodes   int   // nodes per list (default 4000)
	Iters   int   // mark phases per measurement (default 10)
	// Trace, when non-nil, records collector events from every measured
	// world into the given ring buffer (cmd/gcbench -trace).
	Trace *TraceRecorder
}

// MarkBenchRow is one worker count's measurement.
type MarkBenchRow struct {
	Workers       int     `json:"workers"`
	NsPerMark     float64 `json:"ns_per_mark"`
	MBPerSec      float64 `json:"mb_per_sec"`
	ObjectsMarked uint64  `json:"objects_marked"`
	// Speedup is serial time over this row's time — but only when the
	// workers had real cores to run on. An oversubscribed row (more
	// workers than GOMAXPROCS) reports 0: its workers serialise, so a
	// "speedup" there is scheduler noise presented as a result.
	Speedup        float64 `json:"speedup_vs_serial"`
	Oversubscribed bool    `json:"oversubscribed"`
	// GoMaxProcs records the scheduler width the row ran under; the
	// regression gate treats timing columns as advisory when baseline
	// and candidate rows disagree here.
	GoMaxProcs int `json:"gomaxprocs"`
}

// MarkBenchResult is the full measurement with the environment it ran
// in. GoMaxProcs and NumCPU matter for interpretation: on a single-CPU
// machine the workers serialise and the multi-worker rows measure pure
// coordination overhead, not speedup.
type MarkBenchResult struct {
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"numcpu"`
	Lists      int            `json:"lists"`
	Nodes      int            `json:"nodes"`
	Rows       []MarkBenchRow `json:"rows"`
}

// MarkBench measures mark-phase wall-clock time against the worker
// count over a heap of rooted lists: the same marked object set every
// time (the differential tests assert this), so any time difference is
// the parallelisation itself.
func MarkBench(opts MarkBenchOptions) (*MarkBenchResult, *stats.Table, error) {
	if len(opts.Workers) == 0 {
		// Default to worker counts the machine can actually run in
		// parallel. Explicit oversubscribed counts are still honoured,
		// but their rows are flagged and report no speedup.
		for w := 1; w <= runtime.GOMAXPROCS(0); w *= 2 {
			opts.Workers = append(opts.Workers, w)
		}
	}
	if opts.Lists == 0 {
		opts.Lists = 64
	}
	if opts.Nodes == 0 {
		opts.Nodes = 4000
	}
	if opts.Iters == 0 {
		opts.Iters = 10
	}
	res := &MarkBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Lists:      opts.Lists,
		Nodes:      opts.Nodes,
	}
	bytesPerMark := float64(opts.Lists * opts.Nodes * 8)
	var serialNs float64
	for _, workers := range opts.Workers {
		w, err := NewWorld(Config{
			InitialHeapBytes: 16 << 20, ReserveHeapBytes: 32 << 20,
			GCDivisor: -1, MarkWorkers: workers,
		})
		if err != nil {
			return nil, nil, err
		}
		w.SetTracer(opts.Trace)
		data, err := w.Space.MapNew("data", KindData, 0x2000, 4096, 4096)
		if err != nil {
			return nil, nil, err
		}
		for i := 0; i < opts.Lists; i++ {
			head, err := workload.MakeList(w, opts.Nodes)
			if err != nil {
				return nil, nil, err
			}
			data.Store(0x2000+Addr(i*8), Word(head))
		}
		w.MarkOnly() // warm up caches and the worker pool
		var objs uint64
		start := time.Now()
		for i := 0; i < opts.Iters; i++ {
			objs, _ = w.MarkOnly()
		}
		elapsed := time.Since(start)
		if want := uint64(opts.Lists * opts.Nodes); objs != want {
			return nil, nil, fmt.Errorf("markbench: marked %d objects, want %d", objs, want)
		}
		ns := float64(elapsed.Nanoseconds()) / float64(opts.Iters)
		if workers == 1 {
			serialNs = ns
		}
		over := workers > res.GoMaxProcs
		speedup := 0.0
		if serialNs > 0 && !over {
			speedup = serialNs / ns
		}
		res.Rows = append(res.Rows, MarkBenchRow{
			Workers:        workers,
			NsPerMark:      ns,
			MBPerSec:       bytesPerMark / ns * 1e3, // ns → MB/s
			ObjectsMarked:  objs,
			Speedup:        speedup,
			Oversubscribed: over,
			GoMaxProcs:     runtime.GOMAXPROCS(0),
		})
	}
	tab := stats.NewTable(
		fmt.Sprintf("Parallel mark scaling (%d lists x %d nodes, GOMAXPROCS=%d, NumCPU=%d)",
			opts.Lists, opts.Nodes, res.GoMaxProcs, res.NumCPU),
		"workers", "ms/mark", "MB/s", "speedup")
	for _, r := range res.Rows {
		speedup := fmt.Sprintf("%.2fx", r.Speedup)
		if r.Oversubscribed {
			speedup = "n/a (oversubscribed)"
		}
		tab.AddF(r.Workers,
			fmt.Sprintf("%.2f", r.NsPerMark/1e6),
			fmt.Sprintf("%.1f", r.MBPerSec),
			speedup)
	}
	return res, tab, nil
}
