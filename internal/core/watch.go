package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/mark"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/watch"
)

// Online leak detection: a retention watcher that piggybacks on the
// collection barrier. StartRetentionWatch enables provenance recording
// and, every SampleEvery-th collection, folds the harvested provenance
// map into lightweight per-attribution-key retention totals — one key
// per first-marking root slot, plus optional structure-label and
// per-tenant keys — and feeds them to an internal/watch.Watcher. The
// watcher diffs successive snapshots into windowed trend series and
// raises LeakAlerts for keys with sustained growth; alerts carry a
// bounded why-live path for a sample retained object and flow to the
// subscriber channel, the trace (EvLeakAlert), and the leak_* metrics.
//
// Cost model: an unwatched collection pays one nil compare at the
// barrier and allocates nothing (TestCollectZeroAllocsUnwatched pins
// this); a watched-but-unsampled collection adds one modulo. A sampled
// collection walks the provenance map once — O(live objects) with a
// memoized parent-chain resolution — which the leak_snapshot_diff_ns
// histogram prices. Compare GetRetentionReport: one full mark pass per
// root slot, unusable as a continuous monitor.

// WatchConfig parameterises StartRetentionWatch. The zero value is a
// usable default: sample every collection, window 8, alert on 4 KiB
// growth at 0.75 confidence.
type WatchConfig struct {
	// SampleEvery samples every Nth collection (default 1: all).
	SampleEvery int
	// Window is the trend ring size in samples (default 8); a key must
	// fill its window before it can alert.
	Window int
	// MinGrowthBytes is the windowed growth floor for an alert
	// (default 4096), and the re-arm increment after one fires.
	MinGrowthBytes uint64
	// Confidence is the minimum fraction of growing sample-to-sample
	// intervals in the window (default 0.75). Monotone leaks score 1.0;
	// churn oscillates near 0.5 and stays silent.
	Confidence float64
	// EWMAAlpha smooths the bytes-per-cycle growth rate (default 0.3).
	EWMAAlpha float64
	// TopSuspects caps RetentionSuspects' default ranking (default 5).
	TopSuspects int
	// Label, when non-nil, adds a "label:<name>" attribution key per
	// retained object. Unlike RetentionOptions.Label it is called UNDER
	// the world lock at the collection barrier, so it must classify from
	// the address alone and must not call back into the World.
	Label func(base mem.Addr) string
	// Buffer is the alert channel capacity (default 16). The barrier
	// never blocks on a slow subscriber: when the buffer is full the
	// alert is dropped and counted (leak_alerts_dropped).
	Buffer int
	// PathHops bounds the why-live path attached to each alert (default
	// 8 hops; negative disables path capture entirely).
	PathHops int
}

// LeakAlert is one sustained-growth detection, delivered on the
// channel StartRetentionWatch returns and mirrored as an EvLeakAlert
// trace event (args: cycle, growth bytes, confidence in per-mille).
type LeakAlert struct {
	// Key is the attribution key: a root slot ("segment[0+0] @0x2000"),
	// a "label:..." structure label, or a "tenant:..." owner.
	Key string
	// Cycle is the collection cycle of the sample that tripped the
	// alert.
	Cycle int
	// GrowthObjects/GrowthBytes are the retained growth across the
	// window; Cycles is the window span in collection cycles.
	GrowthObjects int64
	GrowthBytes   int64
	Cycles        int
	// Confidence is the fraction of growing intervals in the window.
	Confidence float64
	// EWMABytesPerCycle is the smoothed growth rate.
	EWMABytesPerCycle float64
	// HighWaterBytes and the Last* levels describe the key's series.
	HighWaterBytes uint64
	LastObjects    uint64
	LastBytes      uint64
	// SampleWhyLivePath is a bounded root-first retention path for one
	// sample object under the key ("" when PathHops < 0 or no sample
	// object was resolvable).
	SampleWhyLivePath string
}

// LeakTrend re-exports the watcher's per-key trend summary.
type LeakTrend = watch.Trend

// retWatch is the installed watcher state, nil on unwatched worlds.
type retWatch struct {
	cfg      WatchConfig
	watcher  *watch.Watcher
	ch       chan LeakAlert
	prevProv bool // provenance state to restore on stop
}

// StartRetentionWatch installs the retention watcher and returns its
// alert channel. It enables provenance recording (restored to its
// prior state by StopRetentionWatch); the first sampled collection
// after the next full cycle seeds the trend series. Errors if a watch
// is already running.
func (w *World) StartRetentionWatch(cfg WatchConfig) (<-chan LeakAlert, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.watch != nil {
		return nil, fmt.Errorf("core: StartRetentionWatch: watch already running")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 16
	}
	if cfg.PathHops == 0 {
		cfg.PathHops = 8
	}
	rw := &retWatch{
		cfg: cfg,
		watcher: watch.New(watch.Config{
			SampleEvery:    cfg.SampleEvery,
			Window:         cfg.Window,
			MinGrowthBytes: cfg.MinGrowthBytes,
			Confidence:     cfg.Confidence,
			EWMAAlpha:      cfg.EWMAAlpha,
			TopSuspects:    cfg.TopSuspects,
		}),
		ch:       make(chan LeakAlert, cfg.Buffer),
		prevProv: w.prov.enabled,
	}
	w.prov.enabled = true
	w.watch = rw
	return rw.ch, nil
}

// StopRetentionWatch uninstalls the watcher, closes the alert channel
// (subscribers see it drain then end), restores the provenance
// recording state StartRetentionWatch found, and returns the final
// trend series sorted by key. No-op returning nil when not watching.
func (w *World) StopRetentionWatch() []LeakTrend {
	w.mu.Lock()
	defer w.mu.Unlock()
	rw := w.watch
	if rw == nil {
		return nil
	}
	trends := rw.watcher.Trends()
	close(rw.ch)
	w.prov.enabled = rw.prevProv
	w.watch = nil
	return trends
}

// RetentionWatching reports whether a watcher is installed.
func (w *World) RetentionWatching() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.watch != nil
}

// RetentionTrends returns the current trend series sorted by key, nil
// when not watching.
func (w *World) RetentionTrends() []LeakTrend {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.watch == nil {
		return nil
	}
	return w.watch.watcher.Trends()
}

// RetentionSuspects ranks the current positive-growth keys by windowed
// growth (descending; k <= 0 applies the configured TopSuspects cap).
func (w *World) RetentionSuspects(k int) []LeakTrend {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.watch == nil {
		return nil
	}
	return w.watch.watcher.Suspects(k)
}

// watchSampleLocked runs one watcher sample at the collection barrier.
// Callers hold w.mu with the mutators stopped and w.watch non-nil.
func (w *World) watchSampleLocked() {
	rw := w.watch
	if w.collections%rw.cfg.SampleEvery != 0 {
		return
	}
	if !w.prov.valid {
		return // watch started mid-cycle: nothing harvested yet
	}
	start := time.Now()
	totals, reps := w.watchTotalsLocked(rw)
	alerts := rw.watcher.Observe(w.collections, totals)
	w.met.leakWatched.Inc()
	w.met.leakSuspects.Set(int64(len(rw.watcher.Suspects(1 << 30))))
	for _, a := range alerts {
		la := LeakAlert{
			Key:               a.Key,
			Cycle:             a.Cycle,
			GrowthObjects:     a.GrowthObjects,
			GrowthBytes:       a.GrowthBytes,
			Cycles:            a.Cycles,
			Confidence:        a.Confidence,
			EWMABytesPerCycle: a.EWMABytesPerCycle,
			HighWaterBytes:    a.HighWaterBytes,
			LastObjects:       a.LastObjects,
			LastBytes:         a.LastBytes,
		}
		if rw.cfg.PathHops > 0 {
			if base, ok := reps[a.Key]; ok {
				la.SampleWhyLivePath = w.renderPathLocked(base, rw.cfg.PathHops)
			}
		}
		w.tracer.Emit(trace.EvLeakAlert,
			int64(a.Cycle), a.GrowthBytes, int64(a.Confidence*1000))
		w.met.leakAlerts.Inc()
		if a.GrowthBytes > 0 {
			w.met.leakAlertBytes.Add(uint64(a.GrowthBytes))
		}
		select {
		case rw.ch <- la:
		default:
			w.met.leakDropped.Inc()
		}
	}
	w.met.leakDiffHist.Record(uint64(time.Since(start).Nanoseconds()))
}

// watchTotalsLocked folds the harvested provenance map into retention
// totals per attribution key, plus one representative object per key
// (the highest base address, for a deterministic why-live sample).
// Callers hold w.mu.
func (w *World) watchTotalsLocked(rw *retWatch) (map[string]watch.Totals, map[string]mem.Addr) {
	totals := make(map[string]watch.Totals)
	reps := make(map[string]mem.Addr)
	memo := make(map[mem.Addr]string, len(w.prov.records))
	add := func(key string, bytes uint64, base mem.Addr) {
		t := totals[key]
		t.Objects++
		t.Bytes += bytes
		totals[key] = t
		if base > reps[key] {
			reps[key] = base
		}
	}
	hasOwners := w.Heap.HasOwners()
	// Block-state reads (ObjectSpan) are excluded against detached
	// sweepers, like every other barrier-time heap read.
	w.lockHeapLocked(func() {
		for base := range w.prov.records {
			words, _ := w.Heap.ObjectSpan(base)
			bytes := uint64(words * mem.WordBytes)
			add(w.watchRootKey(base, memo), bytes, base)
			if rw.cfg.Label != nil {
				add("label:"+rw.cfg.Label(base), bytes, base)
			}
			if hasOwners {
				if id, ok := w.Heap.OwnerOf(base); ok && id >= 1 && int(id) <= len(w.tenants) {
					add("tenant:"+w.tenants[id-1].Name(), bytes, base)
				}
			}
		}
	})
	return totals, reps
}

// watchUnattributed keys objects whose provenance chain ends without a
// root slot (plain MarkWords scans, or records clipped by a minor).
const watchUnattributed = "(unattributed)"

// watchRootKey resolves the root slot ultimately retaining base by
// walking its parent chain, memoizing the answer for every object on
// the chain so a shared spine is walked once per sample.
func (w *World) watchRootKey(base mem.Addr, memo map[mem.Addr]string) string {
	if k, ok := memo[base]; ok {
		return k
	}
	var chain []mem.Addr
	key := watchUnattributed
	for cur := base; ; {
		if k, ok := memo[cur]; ok {
			key = k
			break
		}
		chain = append(chain, cur)
		rec, ok := w.prov.records[cur]
		if !ok || len(chain) > len(w.prov.records) {
			break // clipped record or a provenance cycle
		}
		if rec.Kind != mark.RootNone {
			key = RootSlotID{Kind: rec.Kind, Src: rec.Src, Index: rec.Index, Addr: rec.Parent}.String()
			break
		}
		if rec.Parent == 0 {
			break
		}
		cur = rec.Parent
	}
	for _, o := range chain {
		memo[o] = key
	}
	return key
}

// renderPathLocked renders a compact root-first why-live path for base,
// bounded to maxHops heap objects ("..." marks the elision). Callers
// hold w.mu with a valid provenance map.
func (w *World) renderPathLocked(base mem.Addr, maxHops int) string {
	path, _ := w.whyLiveLocked(base)
	if len(path) == 0 {
		return ""
	}
	var parts []string
	if last := path[len(path)-1]; last.Kind != mark.RootNone {
		parts = append(parts, RootSlotID{
			Kind: last.Kind, Src: last.Src, Index: last.Index, Addr: last.Parent,
		}.String())
		path = path[:len(path)-1]
	}
	if len(path) > maxHops {
		parts = append(parts, "...")
		path = path[:maxHops]
	}
	for i := len(path) - 1; i >= 0; i-- {
		parts = append(parts, fmt.Sprintf("%#x", path[i].Obj))
	}
	return strings.Join(parts, " -> ")
}
