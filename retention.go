package repro

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/stats"
)

// RetentionBenchOptions parameterises the retention-attribution
// measurement.
type RetentionBenchOptions struct {
	Rounds int // report rounds (default 4)
	Steps  int // lazy-stream steps per round (default 1500)
	// Trace, when non-nil, records collector events (cycles, provenance
	// harvests, retention reports) from the measured world.
	Trace *TraceRecorder
}

// RetentionBenchRow is one round's report. Every count is deterministic
// — the workload is single-threaded and the stream grows by exactly
// Steps cells per round — so the regression gate checks them all
// exactly: a marker change that retains one extra object, or a
// provenance change that loses one record, diverges here.
type RetentionBenchRow struct {
	Round             int     `json:"round"`
	Steps             int     `json:"steps"` // cumulative stream steps
	LiveObjects       uint64  `json:"live_objects"`
	LiveBytes         uint64  `json:"live_bytes"`
	GenuineObjects    uint64  `json:"genuine_objects"`
	SpuriousObjects   uint64  `json:"spurious_objects"`
	SpuriousBytes     uint64  `json:"spurious_bytes"`
	CensoredRoots     int     `json:"censored_roots"`
	RootSlots         int     `json:"root_slots"`
	TopSoleObjects    uint64  `json:"top_sole_objects"`
	ProvenanceRecords uint64  `json:"provenance_records"`
	ReportMs          float64 `json:"report_ms"`
	// GoMaxProcs records the scheduler width the row ran under; the
	// regression gate treats timing columns as advisory when baseline
	// and candidate rows disagree here.
	GoMaxProcs int `json:"gomaxprocs"`
}

// RetentionBenchResult is the full measurement.
type RetentionBenchResult struct {
	GoMaxProcs    int                 `json:"gomaxprocs"`
	NumCPU        int                 `json:"numcpu"`
	Rounds        int                 `json:"rounds"`
	StepsPerRound int                 `json:"steps_per_round"`
	GCTrace       string              `json:"gctrace_summary"`
	Rows          []RetentionBenchRow `json:"rows"`
}

// RetentionBench measures the retention-provenance subsystem on the
// paper's section-4 lazy-stream scenario: a stale stack slot holds the
// stream's first cell, so the memoised chain grows by Steps cells every
// round while the genuine live set stays O(1). Each round collects with
// provenance recording on and runs a retention report with the planted
// slot declared false; the spurious counts must track the chain
// exactly.
func RetentionBench(opts RetentionBenchOptions) (*RetentionBenchResult, *stats.Table, error) {
	if opts.Rounds == 0 {
		opts.Rounds = 4
	}
	if opts.Steps == 0 {
		opts.Steps = 1500
	}
	w, err := NewWorld(Config{Blacklisting: BlacklistDense, LazySweep: true})
	if err != nil {
		return nil, nil, err
	}
	w.SetTracer(opts.Trace)
	roots, err := w.Space.MapNew("roots", KindData, 0x2000, 4096, 4096)
	if err != nil {
		return nil, nil, err
	}
	mach, err := NewMachine(w, MachineConfig{
		StackTop: 0x100000, StackBytes: 64 << 10, Clear: ClearNone,
	})
	if err != nil {
		return nil, nil, err
	}
	frame, err := mach.PushFrame(8)
	if err != nil {
		return nil, nil, err
	}

	s := NewLazyStream(w)
	first, err := s.First()
	if err != nil {
		return nil, nil, err
	}
	if err := frame.Store(0, Word(first)); err != nil {
		return nil, nil, err
	}
	slotAddr := frame.Addr(0)
	w.EnableProvenance(true)

	res := &RetentionBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Rounds: opts.Rounds, StepsPerRound: opts.Steps,
	}
	cur := first
	for round := 1; round <= opts.Rounds; round++ {
		for i := 0; i < opts.Steps; i++ {
			if err := roots.Store(0x2000, Word(cur)); err != nil {
				return nil, nil, err
			}
			if cur, err = s.Force(cur); err != nil {
				return nil, nil, err
			}
		}
		st := w.Collect()
		start := time.Now()
		rep := w.GetRetentionReport(RetentionOptions{FalseRefs: []Addr{slotAddr}})
		reportMs := float64(time.Since(start).Nanoseconds()) / 1e6
		var topSole uint64
		if len(rep.SoleRetainers) > 0 {
			topSole = rep.SoleRetainers[0].Objects
		}
		res.Rows = append(res.Rows, RetentionBenchRow{
			Round:             round,
			Steps:             round * opts.Steps,
			LiveObjects:       rep.LiveObjects,
			LiveBytes:         rep.LiveBytes,
			GenuineObjects:    rep.GenuineObjects,
			SpuriousObjects:   rep.SpuriousObjects,
			SpuriousBytes:     rep.SpuriousBytes,
			CensoredRoots:     rep.CensoredRoots,
			RootSlots:         rep.RootSlots,
			TopSoleObjects:    topSole,
			ProvenanceRecords: st.ProvenanceRecords,
			ReportMs:          reportMs,
			GoMaxProcs:        runtime.GOMAXPROCS(0),
		})
	}
	res.GCTrace = w.GCTraceSummary()

	tab := stats.NewTable(
		fmt.Sprintf("Retention attribution: lazy stream + planted false stack ref (%d steps/round)",
			opts.Steps),
		"round", "live objs", "genuine", "spurious", "spurious KB", "slots", "report ms")
	for _, r := range res.Rows {
		tab.AddF(r.Round, r.LiveObjects, r.GenuineObjects, r.SpuriousObjects,
			fmt.Sprintf("%.1f", float64(r.SpuriousBytes)/1024),
			r.RootSlots,
			fmt.Sprintf("%.2f", r.ReportMs))
	}
	return res, tab, nil
}
