package repro

import (
	"fmt"
	"sync"

	"repro/internal/platform"
	"repro/internal/stats"
)

// PCRSweepRow is one world size's retention (E9).
type PCRSweepRow struct {
	OtherLiveMB    float64
	NoBlacklisting stats.Range
	Blacklisting   stats.Range
}

// PCRSweep reproduces appendix B's PCR observation: "the experiments
// were run with very different sized Cedar address spaces, ranging from
// 1.5 to about 13 MB of other live data... Interestingly, the number of
// loaded packages had minimal effect on the amount of retained
// storage." Retention should be roughly invariant in the other-live-
// data size, because the false references come from PCR's own statics
// and thread stacks, not from the loaded packages.
func PCRSweep(otherLiveMB []float64, seeds, parallel int) ([]PCRSweepRow, *stats.Table, error) {
	if len(otherLiveMB) == 0 {
		otherLiveMB = []float64{1.5, 4, 8, 13}
	}
	if seeds <= 0 {
		seeds = 2
	}
	if parallel <= 0 {
		parallel = 8
	}
	type key struct {
		row       int
		blacklist bool
	}
	results := make(map[key][]float64)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallel)
	for i, mb := range otherLiveMB {
		p := platform.PCR(int(mb * (1 << 20)))
		for _, bl := range []bool{false, true} {
			for s := 0; s < seeds; s++ {
				wg.Add(1)
				go func(i int, p Profile, bl bool, seed uint64) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					f, err := platform.RunCell(p, bl, seed)
					mu.Lock()
					defer mu.Unlock()
					if err != nil && firstErr == nil {
						firstErr = fmt.Errorf("PCR %v: %w", bl, err)
						return
					}
					results[key{i, bl}] = append(results[key{i, bl}], f)
				}(i, p, bl, uint64(s)+1)
			}
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	var rows []PCRSweepRow
	tab := stats.NewTable("Appendix B: PCR retention vs Cedar world size",
		"Other live data", "No Blacklisting", "Blacklisting")
	for i, mb := range otherLiveMB {
		r := PCRSweepRow{
			OtherLiveMB:    mb,
			NoBlacklisting: stats.NewRange(results[key{i, false}]),
			Blacklisting:   stats.NewRange(results[key{i, true}]),
		}
		rows = append(rows, r)
		tab.AddF(fmt.Sprintf("%.1f MB", mb), r.NoBlacklisting.PctString(), r.Blacklisting.PctString())
	}
	return rows, tab, nil
}
