// Package machine simulates the mutator's processor state: general
// registers organised as SPARC-style register windows, and a downward-
// growing call stack, both of which the collector scans conservatively.
//
// The paper's section 3.1 attributes much "apparently live" garbage to
// exactly this state:
//
//   - "these architectures tend to encourage unnecessarily large stack
//     frames, parts of which are never written. As a consequence, a
//     pointer may be written to a stack location, the stack may be
//     popped to well below that pointer's location, the stack may grow
//     again, and the garbage collector may be invoked, with the pointer
//     again appearing live, since it failed to be overwritten during
//     the second stack expansion."
//
//   - "Contents of unused registers appear to be nondeterministic,
//     since newly allocated register windows are not cleared."
//     (appendix B, SPARC)
//
// The machine reproduces both effects: PopFrame leaves frame contents
// in place, frames carry configurable slop words that are reserved but
// never written, and register windows rotate without clearing, so a
// window reused after eight calls still holds values from its previous
// occupant.
//
// The two countermeasures the paper found useful are implemented as
// clearing policies: ClearCheap amortises small clearing bursts over
// allocation calls ("the allocator should occasionally try to clear
// areas in the stack beyond the most recently activated frame"), and
// ClearEager clears the whole dead region on every allocation, as an
// upper bound.
package machine

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/simrand"
)

// Register window geometry, following the SPARC: 8 globals plus a ring
// of windows of 16 registers (8 locals + 8 in/out shared with the
// caller; we simplify to 16 private registers per window).
const (
	NumGlobals     = 8
	WindowSize     = 16
	NumWindows     = 8
	TotalRegisters = NumGlobals + NumWindows*WindowSize
)

// ClearPolicy selects the stack-hygiene strategy (paper section 3.1).
type ClearPolicy int

// Clearing policies.
const (
	// ClearNone never clears dead stack: the configuration whose "very
	// unrealistically heavy" retention the paper reports for small
	// benchmarks.
	ClearNone ClearPolicy = iota
	// ClearCheap clears a bounded chunk of dead stack on each
	// allocation hook, plus a periodic full clear to the low-water
	// mark: the paper's "very cheap stack clearing algorithm".
	ClearCheap
	// ClearEager clears the entire dead region on every allocation
	// hook; an upper bound on what clearing can achieve.
	ClearEager
)

func (p ClearPolicy) String() string {
	switch p {
	case ClearCheap:
		return "cheap"
	case ClearEager:
		return "eager"
	default:
		return "none"
	}
}

// Config parameterises a Machine.
type Config struct {
	// StackTop is the address just past the stack; the stack grows
	// down from it. Must be word-aligned and nonzero.
	StackTop mem.Addr
	// StackBytes is the reserved stack size.
	StackBytes int
	// FrameSlopWords is added to every frame request: reserved words
	// that the "compiler" never writes, modelling oversized RISC
	// frames. Popped garbage shows through these holes.
	FrameSlopWords int
	// Clear selects the stack clearing policy.
	Clear ClearPolicy
	// ClearChunkWords bounds the per-allocation clearing burst under
	// ClearCheap (default 64 words).
	ClearChunkWords int
	// ClearFullEvery makes ClearCheap clear the whole dead region every
	// N allocation hooks (default 32).
	ClearFullEvery int
	// RegisterWindows enables SPARC-style uncleaned window rotation.
	// When false, Call/Return still work but registers behave like a
	// flat file that Return restores, leaving no residue.
	RegisterWindows bool
	// Seed seeds the noise used by PolluteRegisters.
	Seed uint64
}

// Machine is a simulated mutator.
type Machine struct {
	cfg      Config
	seg      *mem.Segment
	sp       mem.Addr // current stack pointer (grows down)
	lowWater mem.Addr // lowest sp ever observed
	clearCur mem.Addr // ClearCheap progress cursor
	frames   []frameRec
	globals  [NumGlobals]mem.Word
	windows  [NumWindows][WindowSize]mem.Word
	cwp      int // current window pointer
	depth    int // call depth (windows wrap modulo NumWindows)
	hooks    int // allocation hooks seen
	rng      *simrand.Rand
}

type frameRec struct {
	base  mem.Addr // lowest address of the frame
	words int
}

// New creates a machine and maps its stack segment into space. The
// stack segment is not flagged as a root: the collector must scan only
// the live portion [SP, StackTop), which it obtains via LiveStack.
func New(space *mem.AddressSpace, cfg Config) (*Machine, error) {
	if cfg.StackTop == 0 || !mem.WordAligned(cfg.StackTop) {
		return nil, fmt.Errorf("machine: bad stack top %#x", uint32(cfg.StackTop))
	}
	if cfg.StackBytes <= 0 || cfg.StackBytes%mem.WordBytes != 0 {
		return nil, fmt.Errorf("machine: bad stack size %d", cfg.StackBytes)
	}
	if cfg.ClearChunkWords <= 0 {
		cfg.ClearChunkWords = 64
	}
	if cfg.ClearFullEvery <= 0 {
		cfg.ClearFullEvery = 32
	}
	base := cfg.StackTop - mem.Addr(cfg.StackBytes)
	seg, err := mem.NewSegment("stack", mem.KindStack, base, cfg.StackBytes, cfg.StackBytes)
	if err != nil {
		return nil, err
	}
	if err := space.Map(seg); err != nil {
		return nil, err
	}
	return &Machine{
		cfg:      cfg,
		seg:      seg,
		sp:       cfg.StackTop,
		lowWater: cfg.StackTop,
		clearCur: cfg.StackTop,
		rng:      simrand.New(cfg.Seed),
	}, nil
}

// Seg returns the stack segment.
func (m *Machine) Seg() *mem.Segment { return m.seg }

// SP returns the current stack pointer.
func (m *Machine) SP() mem.Addr { return m.sp }

// LowWater returns the lowest stack pointer observed so far.
func (m *Machine) LowWater() mem.Addr { return m.lowWater }

// Depth returns the current call depth.
func (m *Machine) Depth() int { return len(m.frames) }

// A Frame is a live activation record. Slot 0 is the lowest word.
type Frame struct {
	m     *Machine
	index int // position in m.frames
}

// PushFrame allocates an activation record of the requested number of
// words plus the configured slop. The frame's contents are NOT cleared:
// whatever the popped frames left there shows through until the new
// occupant overwrites it, which is the paper's stale-pointer mechanism.
func (m *Machine) PushFrame(words int) (*Frame, error) {
	if words < 0 {
		return nil, fmt.Errorf("machine: negative frame size")
	}
	total := words + m.cfg.FrameSlopWords
	newSP := m.sp - mem.Addr(total*mem.WordBytes)
	if newSP < m.seg.Base() || newSP > m.sp {
		return nil, fmt.Errorf("machine: stack overflow (depth %d)", len(m.frames))
	}
	m.sp = newSP
	if m.sp < m.lowWater {
		m.lowWater = m.sp
	}
	m.frames = append(m.frames, frameRec{base: m.sp, words: total})
	if m.cfg.RegisterWindows {
		// Rotate to the next window. Its contents are whatever the
		// previous occupant (8 calls ago) left: no clearing.
		m.depth++
		m.cwp = m.depth % NumWindows
	}
	return &Frame{m: m, index: len(m.frames) - 1}, nil
}

// PopFrame releases the top frame. Its contents are left in place.
func (m *Machine) PopFrame() error {
	if len(m.frames) == 0 {
		return fmt.Errorf("machine: pop on empty stack")
	}
	f := m.frames[len(m.frames)-1]
	m.frames = m.frames[:len(m.frames)-1]
	m.sp = f.base + mem.Addr(f.words*mem.WordBytes)
	if m.cfg.RegisterWindows {
		m.depth--
		m.cwp = ((m.depth % NumWindows) + NumWindows) % NumWindows
	}
	return nil
}

// top returns the top frame record, panicking if there is none (an
// internal bug, not a client error).
func (f *Frame) rec() frameRec {
	if f.index >= len(f.m.frames) {
		panic("machine: use of popped frame")
	}
	return f.m.frames[f.index]
}

// Words returns the frame's usable size (excluding slop).
func (f *Frame) Words() int { return f.rec().words - f.m.cfg.FrameSlopWords }

// Addr returns the address of frame slot i.
func (f *Frame) Addr(i int) mem.Addr {
	r := f.rec()
	if i < 0 || i >= r.words {
		panic(fmt.Sprintf("machine: frame slot %d out of %d", i, r.words))
	}
	return r.base + mem.Addr(i*mem.WordBytes)
}

// Store writes v to frame slot i.
func (f *Frame) Store(i int, v mem.Word) error { return f.m.seg.Store(f.Addr(i), v) }

// Load reads frame slot i.
func (f *Frame) Load(i int) (mem.Word, error) { return f.m.seg.Load(f.Addr(i)) }

// Clear zeroes the frame's written slots and its slop, modelling the
// paper's "have the allocator and collector carefully clean up after
// themselves, clearing local variables before function exit".
func (f *Frame) Clear() {
	r := f.rec()
	for i := 0; i < r.words; i++ {
		f.m.seg.Store(r.base+mem.Addr(i*mem.WordBytes), 0)
	}
}

// WithFrame pushes a frame, runs fn, and pops, propagating errors. It
// lets Go recursion mirror simulated-stack recursion one-to-one.
func (m *Machine) WithFrame(words int, fn func(*Frame) error) error {
	f, err := m.PushFrame(words)
	if err != nil {
		return err
	}
	defer m.PopFrame()
	return fn(f)
}

// SetGlobal writes global register i.
func (m *Machine) SetGlobal(i int, v mem.Word) { m.globals[i] = v }

// Global reads global register i.
func (m *Machine) Global(i int) mem.Word { return m.globals[i] }

// SetLocal writes register i of the current window.
func (m *Machine) SetLocal(i int, v mem.Word) { m.windows[m.cwp][i] = v }

// Local reads register i of the current window.
func (m *Machine) Local(i int) mem.Word { return m.windows[m.cwp][i] }

// Registers returns the complete register state the collector must
// scan: all globals and every window, since on a real SPARC the whole
// register file may be flushed to memory at any point.
func (m *Machine) Registers() []mem.Word {
	out := make([]mem.Word, 0, TotalRegisters)
	out = append(out, m.globals[:]...)
	for w := range m.windows {
		out = append(out, m.windows[w][:]...)
	}
	return out
}

// PolluteRegisters overwrites a random selection of window registers
// with the given values interleaved with noise, modelling "register
// values left over from kernel calls and/or context switches". Values
// drawn from vals land in random windows; the rest get random noise in
// [noiseLo, noiseHi).
func (m *Machine) PolluteRegisters(vals []mem.Word, count int, noiseLo, noiseHi uint32) {
	for i := 0; i < count; i++ {
		w := m.rng.Intn(NumWindows)
		r := m.rng.Intn(WindowSize)
		if len(vals) > 0 && m.rng.Bool(0.5) {
			m.windows[w][r] = vals[m.rng.Intn(len(vals))]
		} else if noiseHi > noiseLo {
			m.windows[w][r] = mem.Word(m.rng.Range(noiseLo, noiseHi))
		}
	}
}

// ClearRegisters zeroes all register state.
func (m *Machine) ClearRegisters() {
	m.globals = [NumGlobals]mem.Word{}
	m.windows = [NumWindows][WindowSize]mem.Word{}
}

// LiveStack returns the live stack words [SP, StackTop) and the address
// of the first returned word; this is what the collector scans.
func (m *Machine) LiveStack() ([]mem.Word, mem.Addr) {
	all := m.seg.Words()
	start := int(m.sp-m.seg.Base()) / mem.WordBytes
	return all[start:], m.sp
}

// DeadBytes returns the size of the dead region [lowWater, SP): stack
// that has been occupied but is currently popped.
func (m *Machine) DeadBytes() int { return int(m.sp - m.lowWater) }

// OnAllocate is the allocator hook implementing the clearing policies.
// The collector calls it on every allocation.
func (m *Machine) OnAllocate() {
	m.hooks++
	switch m.cfg.Clear {
	case ClearNone:
		return
	case ClearEager:
		m.clearDead(m.lowWater, m.sp)
		m.lowWater = m.sp
	case ClearCheap:
		if m.hooks%m.cfg.ClearFullEvery == 0 {
			// Periodic full clear to the low-water mark: "particularly
			// useful when the allocator is invoked on a stack that is
			// much shorter than the largest one encountered so far".
			m.clearDead(m.lowWater, m.sp)
			m.lowWater = m.sp
			m.clearCur = m.sp
			return
		}
		// Bounded burst just beyond the live frame, advancing a cursor
		// downward through the dead region.
		if m.clearCur > m.sp || m.clearCur <= m.lowWater {
			m.clearCur = m.sp
		}
		lo := m.clearCur - mem.Addr(m.cfg.ClearChunkWords*mem.WordBytes)
		if lo < m.lowWater {
			lo = m.lowWater
		}
		m.clearDead(lo, m.clearCur)
		m.clearCur = lo
	}
}

// clearDead zeroes stack words in [lo, hi).
func (m *Machine) clearDead(lo, hi mem.Addr) {
	if lo < m.seg.Base() {
		lo = m.seg.Base()
	}
	words := m.seg.Words()
	i := int(lo-m.seg.Base()) / mem.WordBytes
	j := int(hi-m.seg.Base()) / mem.WordBytes
	for ; i < j; i++ {
		words[i] = 0
	}
}

// SimulateCallResidue models the allocator's (or collector's) own
// transient call frame: a short-lived frame holding the given values —
// typically the freshly allocated pointer — is pushed and immediately
// popped, leaving the values as dead-stack residue. "Often the initial
// pointer value that is then accidentally preserved is stored by the
// allocator or collector itself... it may pay to have the allocator
// and collector carefully clean up after themselves, clearing local
// variables before function exit" (section 3.1): clean simulates that
// discipline.
func (m *Machine) SimulateCallResidue(clean bool, vals ...mem.Word) {
	f, err := m.PushFrame(len(vals) + 2)
	if err != nil {
		return
	}
	for i, v := range vals {
		f.Store(i, v)
	}
	if clean {
		f.Clear()
	}
	m.PopFrame()
}

// ClearDeadStack forces a full clear of the dead region regardless of
// policy (used by experiments as a baseline reset).
func (m *Machine) ClearDeadStack() {
	m.clearDead(m.lowWater, m.sp)
	m.lowWater = m.sp
	m.clearCur = m.sp
}
