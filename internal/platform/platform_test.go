package platform

import (
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/simrand"
)

func TestFillIntTables(t *testing.T) {
	seg, err := mem.NewSegment("d", mem.KindData, 0x2000, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	spec := TableSpec{Bytes: 4096, SmallFrac: 0.5, Lo: 0x100000, Hi: 0x200000}
	end := fillIntTables(seg, 0x2000, spec, simrand.New(1))
	if end != 0x3000 {
		t.Fatalf("end = %#x", uint32(end))
	}
	small, ranged := 0, 0
	for _, w := range seg.Words() {
		v := uint32(w)
		switch {
		case v < 0x10000:
			small++
		case v >= 0x100000 && v < 0x200000:
			ranged++
		default:
			t.Fatalf("value %#x outside both bands", v)
		}
	}
	if small < 400 || ranged < 400 {
		t.Fatalf("mixture wrong: %d small, %d ranged", small, ranged)
	}
}

// bandValues counts word values of the figure-1 form 0x00XXYYZZ with
// printable XX,YY,ZZ — the values unaligned string boundaries produce.
func bandValues(seg *mem.Segment) int {
	n := 0
	for _, w := range seg.Words() {
		v := uint32(w)
		b1, b2, b3 := byte(v>>16), byte(v>>8), byte(v)
		if v>>24 == 0 && b1 >= 0x20 && b1 < 0x7F && b2 >= 0x20 && b2 < 0x7F && b3 >= 0x20 && b3 < 0x7F {
			n++
		}
	}
	return n
}

func TestUnalignedStringsFormPointerLikeWords(t *testing.T) {
	mk := func(aligned bool) *mem.Segment {
		seg, _ := mem.NewSegment("d", mem.KindData, 0x2000, 8192, 8192)
		fillStrings(seg, 0x2000, 8192, aligned, simrand.New(2))
		return seg
	}
	packed := bandValues(mk(false))
	aligned := bandValues(mk(true))
	// Packed strings: roughly 1/4 of ~900 boundaries read as 0x00XXYYZZ.
	if packed < 100 {
		t.Fatalf("packed strings produced only %d pointer-like words", packed)
	}
	if aligned != 0 {
		t.Fatalf("aligned strings produced %d pointer-like words, want 0", aligned)
	}
}

func TestFillStaleStackDensity(t *testing.T) {
	seg, _ := mem.NewSegment("ts", mem.KindStack, 0x2000, 64*1024, 64*1024)
	fillStaleStack(seg, 0.1, 0x100000, 0x200000, simrand.New(3))
	nonzero := 0
	for _, w := range seg.Words() {
		if w != 0 {
			nonzero++
		}
	}
	frac := float64(nonzero) / float64(len(seg.Words()))
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("density = %.3f, want ~0.1", frac)
	}
}

func TestProfilesConstruct(t *testing.T) {
	for _, p := range Table1Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			env, err := p.Build(1, true)
			if err != nil {
				t.Fatal(err)
			}
			if env.World.Collections() != 1 {
				t.Fatalf("startup collection missing: %d", env.World.Collections())
			}
			if env.Machine == nil {
				t.Fatal("no machine")
			}
			if p.OtherLiveBytes > 0 {
				st := env.World.Heap.Stats()
				if st.BytesLive < uint64(p.OtherLiveBytes)/2 {
					t.Fatalf("other live data missing: %d live bytes", st.BytesLive)
				}
			}
			if len(p.ThreadStacks) != len(env.threadStacks) {
				t.Fatal("thread stacks not mapped")
			}
		})
	}
}

func TestListBytesMatchPaper(t *testing.T) {
	// Every profile's lists are 100 KB, as in the paper.
	for _, p := range Table1Profiles() {
		if p.ListBytes() != 100000 {
			t.Fatalf("%s list bytes = %d", p.Name, p.ListBytes())
		}
	}
	// And the OS/2 variant allocates 100 lists (10 MB total).
	if OS2(false).NLists != 100 {
		t.Fatal("OS/2 should allocate 100 lists")
	}
	if p := PCR(0); p.NodeWords != 2 || p.NodesPerList != 12500 {
		t.Fatal("PCR should use 12500 8-byte cells")
	}
}

func TestRunCellDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full program-T run")
	}
	a, err := RunCell(SPARCDynamic(false), true, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(SPARCDynamic(false), true, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
}

// TestTable1Shape verifies the qualitative content of table 1 on one
// seed per cell: blacklisting collapses retention near zero everywhere,
// and the no-blacklist ordering is
// SPARC(static) > PCR > OS/2 > SPARC(dynamic) > SGI.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("several full program-T runs")
	}
	profiles := []Profile{SPARCStatic(false), SPARCDynamic(false), SGI(false), OS2(false), PCR(0)}
	type cell struct {
		off, on float64
	}
	results := make([]cell, len(profiles))
	var wg sync.WaitGroup
	for i, p := range profiles {
		for _, bl := range []bool{false, true} {
			wg.Add(1)
			go func(i int, p Profile, bl bool) {
				defer wg.Done()
				f, err := RunCell(p, bl, 7)
				if err != nil {
					t.Error(err)
					return
				}
				if bl {
					results[i].on = f
				} else {
					results[i].off = f
				}
			}(i, p, bl)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	static, dynamic, sgi, os2, pcr := results[0], results[1], results[2], results[3], results[4]
	if !(static.off > pcr.off && pcr.off > os2.off && os2.off > dynamic.off && dynamic.off > sgi.off) {
		t.Errorf("no-blacklist ordering wrong: static=%.2f pcr=%.2f os2=%.2f dyn=%.2f sgi=%.2f",
			static.off, pcr.off, os2.off, dynamic.off, sgi.off)
	}
	if static.off < 0.6 || static.off > 0.95 {
		t.Errorf("SPARC static off-band: %.2f", static.off)
	}
	for i, c := range results {
		if c.on > 0.05 {
			t.Errorf("%s: blacklisting left %.1f%%", profiles[i].Name, 100*c.on)
		}
		if c.on > c.off {
			t.Errorf("%s: blacklisting increased retention", profiles[i].Name)
		}
	}
	// The PCR and OS/2 residuals are nonzero (mutating statics / thread
	// stacks evade the startup blacklist), unlike SGI's.
	if pcr.on == 0 {
		t.Error("PCR residual should be nonzero")
	}
}
