// Command programt runs the paper's appendix-A test program once on a
// chosen platform profile and prints the retention result, the direct
// analogue of running the original C program on one machine.
//
// Usage:
//
//	programt -platform sparc-static -blacklist=false -seed 3
//	programt -platform pcr -otherlive 13
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/inspect"
)

var (
	platformName = flag.String("platform", "sparc-static", "sparc-static|sparc-dynamic|sgi|os2|pcr")
	optimized    = flag.Bool("optimized", false, "simulate the optimized compile")
	blacklist    = flag.Bool("blacklist", true, "enable page blacklisting")
	seed         = flag.Uint64("seed", 1, "random seed (the paper's runs vary; seeds reproduce the ranges)")
	otherliveMB  = flag.Float64("otherlive", 4, "PCR only: other live data in MB (paper: 1.5-13)")
	trace        = flag.Bool("trace", false, "print a gctrace-style line per collection")
)

func main() {
	flag.Parse()
	var profile repro.Profile
	switch strings.ToLower(*platformName) {
	case "sparc-static":
		profile = repro.SPARCStatic(*optimized)
	case "sparc-dynamic":
		profile = repro.SPARCDynamic(*optimized)
	case "sgi":
		profile = repro.SGI(*optimized)
	case "os2":
		profile = repro.OS2(*optimized)
	case "pcr":
		profile = repro.PCR(int(*otherliveMB * (1 << 20)))
	default:
		fmt.Fprintf(os.Stderr, "programt: unknown platform %q\n", *platformName)
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("program T on %s (optimized=%v, blacklisting=%v, seed=%d)\n",
		profile.Name, *optimized, *blacklist, *seed)
	fmt.Printf("  %d lists x %d nodes x %d bytes = %.1f MB of cyclic lists\n",
		profile.NLists, profile.NodesPerList, profile.NodeWords*4,
		float64(profile.NLists*profile.ListBytes())/(1<<20))

	start := time.Now()
	env, err := profile.Build(*seed, *blacklist)
	if err != nil {
		fmt.Fprintf(os.Stderr, "programt: %v\n", err)
		os.Exit(1)
	}
	if *trace {
		n := env.World.Collections()
		env.World.SetCollectionHook(func(st repro.CollectionStats) {
			n++
			fmt.Println("  " + inspect.TraceLine(n, st))
		})
	}
	res, err := env.RunProgramT()
	if err != nil {
		fmt.Fprintf(os.Stderr, "programt: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	fmt.Printf("\n  lists retained:   %d / %d (%.1f%%)\n",
		res.RetainedLists, res.TotalLists, 100*res.RetainedFraction())
	fmt.Printf("  collections:      %d\n", res.Collections)
	fmt.Printf("  final heap:       %.1f MB\n", float64(res.HeapBytes)/(1<<20))
	fmt.Printf("  blacklisted:      %d pages\n", env.World.Blacklist.Len())
	fmt.Printf("  elapsed:          %v\n", elapsed)
}
