// Benchmarks regenerating the paper's tables and figures as testing.B
// benchmarks, one family per artifact (see DESIGN.md's experiment
// index). Sizes are reduced where a full paper-scale run per iteration
// would be excessive; cmd/gcbench runs everything at paper scale.
package repro

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/blacklist"
	"repro/internal/mark"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/simrand"
	"repro/internal/workload"
)

// --- E1 / Table 1: program T retention runs ---

func benchProgramT(b *testing.B, profile Profile, blacklisting bool) {
	b.ReportAllocs()
	// Reduced program T: same structure, an eighth of the data.
	profile.NodesPerList /= 8
	profile.InitialHeap /= 4
	for i := 0; i < b.N; i++ {
		env, err := profile.Build(uint64(i)+1, blacklisting)
		if err != nil {
			b.Fatal(err)
		}
		res, err := env.RunProgramT()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.RetainedFraction(), "%retained")
	}
}

func BenchmarkTable1SPARCStaticNoBlacklist(b *testing.B) {
	benchProgramT(b, platform.SPARCStatic(false), false)
}

func BenchmarkTable1SPARCStaticBlacklist(b *testing.B) {
	benchProgramT(b, platform.SPARCStatic(false), true)
}

func BenchmarkTable1SPARCDynamicNoBlacklist(b *testing.B) {
	benchProgramT(b, platform.SPARCDynamic(false), false)
}

func BenchmarkTable1SPARCDynamicBlacklist(b *testing.B) {
	benchProgramT(b, platform.SPARCDynamic(false), true)
}

func BenchmarkTable1SGIBlacklist(b *testing.B) {
	benchProgramT(b, platform.SGI(false), true)
}

func BenchmarkTable1OS2Blacklist(b *testing.B) {
	benchProgramT(b, platform.OS2(false), true)
}

func BenchmarkTable1PCRBlacklist(b *testing.B) {
	benchProgramT(b, platform.PCR(1<<20), true)
}

// --- E2 / Figure 1: candidate extraction alignment ---

func benchFigure1(b *testing.B, align AlignPolicy) {
	for i := 0; i < b.N; i++ {
		rows, _, err := Figure1(Figure1Options{
			StaticWords:   8192,
			HeapFillBytes: 1 << 20,
			Seed:          uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Alignment == align && !r.SkipBoundarySlot {
				b.ReportMetric(float64(r.Misidentified), "misidentified")
			}
		}
	}
}

func BenchmarkFigure1Aligned(b *testing.B)   { benchFigure1(b, AlignedWords) }
func BenchmarkFigure1Unaligned(b *testing.B) { benchFigure1(b, AnyByteOffset) }

// --- E5 / section 3.1: stack clearing ---

func benchReversal(b *testing.B, mode ReverseMode, clear ClearPolicy) {
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(Config{
			InitialHeapBytes: 1 << 20,
			ReserveHeapBytes: 16 << 20,
			AllocatorResidue: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		m, err := NewMachine(w, MachineConfig{
			StackTop: 0xF0000000, StackBytes: 1 << 20,
			FrameSlopWords: 12, RegisterWindows: true,
			Clear: clear, ClearChunkWords: 24, ClearFullEvery: 4096,
			Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.RunReversal(w, m, ReverseParams{
			ListLen: 250, Iterations: 120, Mode: mode, SampleEvery: 10, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MaxLiveCells), "maxlive")
	}
}

func BenchmarkStackClearingNone(b *testing.B) {
	benchReversal(b, ReverseRecursive, ClearNone)
}

func BenchmarkStackClearingCheap(b *testing.B) {
	benchReversal(b, ReverseRecursive, ClearCheap)
}

func BenchmarkStackClearingLoop(b *testing.B) {
	benchReversal(b, ReverseLoop, ClearNone)
}

// --- E4 / figures 3 and 4: grid representations ---

func benchGrid(b *testing.B, kind GridKind) {
	w, err := NewWorld(Config{
		InitialHeapBytes: 8 << 20, ReserveHeapBytes: 16 << 20, GCDivisor: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	g, err := BuildGrid(w, 60, 60, kind)
	if err != nil {
		b.Fatal(err)
	}
	rng := simrand.New(1)
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		objs, _ := workload.FalseRefTrial(w, g.Objects, rng)
		total += objs
	}
	b.ReportMetric(float64(total)/float64(b.N), "retained/op")
}

func BenchmarkGridRetentionEmbedded(b *testing.B) { benchGrid(b, GridEmbedded) }
func BenchmarkGridRetentionSeparate(b *testing.B) { benchGrid(b, GridSeparate) }

// --- E6 / section 4: trees and queues ---

func BenchmarkTreeRetention(b *testing.B) {
	w, err := NewWorld(Config{
		InitialHeapBytes: 8 << 20, ReserveHeapBytes: 16 << 20, GCDivisor: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	t, err := workload.BuildBalancedTree(w, 14)
	if err != nil {
		b.Fatal(err)
	}
	rng := simrand.New(1)
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		objs, _ := workload.FalseRefTrial(w, t.Nodes, rng)
		total += objs
	}
	b.ReportMetric(float64(total)/float64(b.N), "retained/op")
}

func benchQueue(b *testing.B, clearLinks bool) {
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(Config{
			InitialHeapBytes: 2 << 20, ReserveHeapBytes: 32 << 20, GCDivisor: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		root, err := w.Space.MapNew("roots", KindData, 0x2000, 4096, 4096)
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.RunQueueChurn(w, 50, 5000, clearLinks, root, 0x2000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.FinalLiveObjects), "finallive")
	}
}

func BenchmarkQueueClearingOff(b *testing.B) { benchQueue(b, false) }
func BenchmarkQueueClearingOn(b *testing.B)  { benchQueue(b, true) }

// --- E7 / footnote 3: allocation latency and blacklisting cost ---

func benchAlloc8(b *testing.B, mode BlacklistMode) {
	w, err := NewWorld(Config{
		InitialHeapBytes: 8 << 20,
		ReserveHeapBytes: 8 << 20,
		Blacklisting:     mode,
		GCDivisor:        -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Allocate(2, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlloc8BlacklistOff(b *testing.B) { benchAlloc8(b, BlacklistOff) }
func BenchmarkAlloc8BlacklistOn(b *testing.B)  { benchAlloc8(b, BlacklistDense) }

// BenchmarkBlacklistOverhead isolates the figure-2 bookkeeping: marking
// a polluted root set with and without a live blacklist.
func benchMarkRoots(b *testing.B, useBlacklist bool) {
	space := mem.NewAddressSpace()
	var bl blacklist.List = blacklist.Disabled{}
	if useBlacklist {
		bl, _ = blacklist.NewDense(0x400000, 0x400000+(16<<20), mem.PageBytes)
	}
	heap, err := alloc.New(space, alloc.Config{
		HeapBase: 0x400000, InitialBytes: 8 << 20, ReserveBytes: 16 << 20, Blacklist: bl,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := mark.New(heap, mark.Config{Blacklist: bl})
	// Roots: a mixture of valid pointers, near-heap misses, and junk.
	rng := simrand.New(9)
	roots := make([]mem.Word, 65536)
	var objs []mem.Addr
	for i := 0; i < 1000; i++ {
		p, err := heap.Alloc(2, false)
		if err != nil {
			b.Fatal(err)
		}
		objs = append(objs, p)
	}
	for i := range roots {
		switch rng.Intn(3) {
		case 0:
			roots[i] = mem.Word(objs[rng.Intn(len(objs))])
		case 1:
			roots[i] = mem.Word(0x400000 + rng.Uint32n(16<<20)) // near heap
		default:
			roots[i] = mem.Word(rng.Uint32())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MarkWords(roots)
		m.Drain()
		b.StopTimer()
		heap.ClearMarks()
		m.Reset()
		b.StartTimer()
	}
}

func BenchmarkBlacklistOverheadOff(b *testing.B) { benchMarkRoots(b, false) }
func BenchmarkBlacklistOverheadOn(b *testing.B)  { benchMarkRoots(b, true) }

// --- E8 / observation 7: large objects under a polluted blacklist ---

func BenchmarkLargeObjects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := LargeObjects(LargeObjectsOptions{
			HeapBytes: 4 << 20,
			SizesKB:   []int{100},
			Seed:      uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].CapacityInterior), "interior-cap")
		b.ReportMetric(float64(rows[0].CapacityBase), "base-cap")
	}
}

// --- E10 / conclusions: free-block policy fragmentation ---

func benchFragmentation(b *testing.B, policy FreeBlockPolicy) {
	for i := 0; i < b.N; i++ {
		space := mem.NewAddressSpace()
		a, err := alloc.New(space, alloc.Config{
			HeapBase: 0x400000, InitialBytes: 8 << 20, ReserveBytes: 8 << 20,
			FreeBlocks: policy,
		})
		if err != nil {
			b.Fatal(err)
		}
		rng := simrand.New(uint64(i))
		var live []mem.Addr
		for round := 0; round < 4; round++ {
			for {
				p, err := a.Alloc((1+rng.Intn(4))*mem.PageWords, false)
				if err != nil {
					break
				}
				live = append(live, p)
			}
			rng.Shuffle(len(live), func(x, y int) { live[x], live[y] = live[y], live[x] })
			keep := len(live) * 2 / 5
			for _, p := range live[keep:] {
				if err := a.Free(p); err != nil {
					b.Fatal(err)
				}
			}
			live = live[:keep]
		}
		b.ReportMetric(float64(a.LargestFreeSpan()), "largest-span")
	}
}

func BenchmarkFragmentationAddressOrdered(b *testing.B) {
	benchFragmentation(b, AddressOrdered)
}

func BenchmarkFragmentationLIFO(b *testing.B) {
	benchFragmentation(b, LIFO)
}

// --- E11 / footnote 4: dual-run certification ---

func BenchmarkDualRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := DualRun(DualRunOptions{
			Lists: 30, NodesPerList: 500, FalseRoots: 200, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SingleRunRetained), "single-retained")
		b.ReportMetric(float64(res.DualRunRetained), "dual-retained")
	}
}

// --- Collector throughput: a full collection over a live list heap ---

func BenchmarkCollectLiveList(b *testing.B) {
	w, err := NewWorld(Config{
		InitialHeapBytes: 8 << 20, ReserveHeapBytes: 16 << 20, GCDivisor: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	data, err := w.Space.MapNew("data", KindData, 0x2000, 4096, 4096)
	if err != nil {
		b.Fatal(err)
	}
	head, err := MakeList(w, 200000)
	if err != nil {
		b.Fatal(err)
	}
	data.Store(0x2000, Word(head))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := w.Collect()
		if st.Sweep.ObjectsLive != 200000 {
			b.Fatalf("live = %d", st.Sweep.ObjectsLive)
		}
	}
	b.SetBytes(200000 * 8)
}

// --- Parallel marking: mark-phase throughput by worker count ---

// benchParallelMark measures one mark phase (MarkOnly: mark from roots,
// count, clear) over a heap of 64 rooted lists, with the mark phase
// sharded across the given worker count. Single-CPU containers will
// show no speedup — the point of the 1-worker row is the serial
// baseline, and the multi-worker rows additionally carry the CAS and
// queue overhead; run on a multi-core host for the scaling curve.
func benchParallelMark(b *testing.B, workers int) {
	w, err := NewWorld(Config{
		InitialHeapBytes: 16 << 20, ReserveHeapBytes: 32 << 20,
		GCDivisor: -1, MarkWorkers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	data, err := w.Space.MapNew("data", KindData, 0x2000, 4096, 4096)
	if err != nil {
		b.Fatal(err)
	}
	const lists, nodes = 64, 4000
	for i := 0; i < lists; i++ {
		head, err := MakeList(w, nodes)
		if err != nil {
			b.Fatal(err)
		}
		data.Store(0x2000+Addr(i*8), Word(head))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs, _ := w.MarkOnly()
		if objs != lists*nodes {
			b.Fatalf("marked %d, want %d", objs, lists*nodes)
		}
	}
	b.SetBytes(lists * nodes * 8)
}

func BenchmarkParallelMark1(b *testing.B) { benchParallelMark(b, 1) }
func BenchmarkParallelMark2(b *testing.B) { benchParallelMark(b, 2) }
func BenchmarkParallelMark4(b *testing.B) { benchParallelMark(b, 4) }
func BenchmarkParallelMark8(b *testing.B) { benchParallelMark(b, 8) }

// BenchmarkFindObjectMiss measures the candidate-rejection fast path:
// root words that are NOT heap pointers, the overwhelmingly common case
// in real root scans. Half the words fall outside the reserved hull
// (rejected by two compares), half inside but invalid (full lookup).
func BenchmarkFindObjectMiss(b *testing.B) {
	space := mem.NewAddressSpace()
	heap, err := alloc.New(space, alloc.Config{
		HeapBase: 0x400000, InitialBytes: 8 << 20, ReserveBytes: 16 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := mark.New(heap, mark.Config{})
	rng := simrand.New(3)
	roots := make([]mem.Word, 65536)
	for i := range roots {
		if i%2 == 0 {
			roots[i] = mem.Word(rng.Uint32() | 0x80000000) // far outside
		} else {
			roots[i] = mem.Word(0x400000 + (8 << 20) + rng.Uint32n(8<<20)) // vicinity
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MarkWords(roots)
	}
	b.SetBytes(int64(len(roots) * 4))
}

// --- E12 / section 3.1 end: generational ceiling ---

func benchGenerational(b *testing.B, clear ClearPolicy) {
	for i := 0; i < b.N; i++ {
		rows, _, err := GenerationalCeiling(GenerationalOptions{
			Iterations: 100, BatchCells: 100, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Clear == clear {
				b.ReportMetric(float64(r.GarbageTenured), "garbage-tenured")
			}
		}
	}
}

func BenchmarkGenerationalCeilingNoClear(b *testing.B) { benchGenerational(b, ClearNone) }
func BenchmarkGenerationalCeilingEager(b *testing.B)   { benchGenerational(b, ClearEager) }

// BenchmarkMinorVsFullCollection compares the per-cycle cost of minor
// and full collections over a mostly-old heap, the payoff generational
// collection exists for.
func BenchmarkMinorCollection(b *testing.B) { benchMinorFull(b, true) }
func BenchmarkFullCollection(b *testing.B)  { benchMinorFull(b, false) }

func benchMinorFull(b *testing.B, minor bool) {
	w, err := NewWorld(Config{
		InitialHeapBytes: 8 << 20, ReserveHeapBytes: 16 << 20,
		Generational: true, GCDivisor: -1, MinorDivisor: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	data, err := w.Space.MapNew("data", KindData, 0x2000, 4096, 4096)
	if err != nil {
		b.Fatal(err)
	}
	head, err := workload.MakeListRooted(w, 100000, data, 0x2000)
	if err != nil {
		b.Fatal(err)
	}
	data.Store(0x2000, Word(head))
	w.Collect() // tenure the list
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if minor {
			w.CollectMinor()
		} else {
			w.Collect()
		}
	}
}
