package alloc

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/mem"
)

// Card support for the generational extension (DESIGN.md, E12).
//
// The paper's last section-3.1 paragraph observes that stray stack
// pointers "significantly lengthen the lifetime of some objects, thus
// placing a ceiling on the effectiveness of generational collection",
// citing the generational-conservative design of Demers et al. (its
// reference [13]). That design keeps mark bits *sticky* across minor
// collections — a marked object is old, an unmarked one young — and
// uses page-granularity dirty bits so that old objects whose pages were
// written since the last collection can be rescanned for old-to-young
// pointers. Both pieces live here: one dirty bit per heap block, set by
// the collector's write barrier, and a sweep variant that preserves
// mark bits.

// MarkDirty records a mutation of the block containing a (which must be
// a committed heap address; other addresses are ignored). It reports
// whether the block was newly dirtied — the concurrent-mark barrier
// counts those transitions without a separate lookup.
func (a *Allocator) MarkDirty(addr mem.Addr) bool {
	if !a.InCommitted(addr) {
		return false
	}
	bi := a.blockIndex(addr)
	bit := uint64(1) << (uint(bi) & 63)
	was := a.dirty[bi>>6]
	a.dirty[bi>>6] = was | bit
	return was&bit == 0
}

// DirtyBlocks calls fn with each dirty block index.
func (a *Allocator) DirtyBlocks(fn func(bi int)) {
	for w, v := range a.dirty {
		for v != 0 {
			i := w<<6 + bits.TrailingZeros64(v)
			if i < len(a.blocks) {
				fn(i)
			}
			v &= v - 1
		}
	}
}

// ClearDirty resets all dirty bits; the collector calls it after each
// minor collection.
func (a *Allocator) ClearDirty() {
	for i := range a.dirty {
		a.dirty[i] = 0
	}
}

// CountDirty returns the number of dirty blocks.
func (a *Allocator) CountDirty() int {
	n := 0
	a.DirtyBlocks(func(int) { n++ })
	return n
}

// ForEachMarkedObject calls fn with the base address of every marked
// allocated object in block bi. The minor collection uses it to rescan
// old objects on dirty blocks. The bitmaps are walked a word at a time:
// the mark summary rejects fully-unmarked blocks outright, words with
// no marked allocated slot are skipped whole, and set bits are resolved
// with trailing-zero scans instead of per-slot bitGet.
func (a *Allocator) ForEachMarkedObject(bi int, fn func(base mem.Addr)) {
	b := &a.blocks[bi]
	switch b.state {
	case blockLargeHead:
		if b.markBits[0]&1 != 0 {
			fn(a.blockBase(bi))
		}
	case blockLargeCont:
		// The object belongs to its head block; a write to a
		// continuation page dirties the head's object as well.
		head := bi - int(b.spanLen)
		if a.blocks[head].markBits[0]&1 != 0 {
			fn(a.blockBase(head))
		}
	case blockSmall:
		if b.markedCount == 0 {
			return
		}
		objBytes := int(b.objWords) * mem.WordBytes
		base := a.blockBase(bi)
		for wi, mv := range b.markBits {
			for w := mv & b.allocBits[wi]; w != 0; w &= w - 1 {
				slot := wi<<6 + bits.TrailingZeros64(w)
				fn(base + mem.Addr(slot*objBytes))
			}
		}
	}
}

// ForEachMarkedObjectAtomic is ForEachMarkedObject with the mark bits
// read atomically, for use while parallel mark workers may be CASing
// them concurrently. A rescan task racing a concurrent first-mark of
// the same object may or may not see it — exactly as a serial minor
// collection may process the dirty block before or after the root scan
// marks the object — so either outcome is sound.
func (a *Allocator) ForEachMarkedObjectAtomic(bi int, fn func(base mem.Addr)) {
	b := &a.blocks[bi]
	switch b.state {
	case blockLargeHead:
		if atomic.LoadUint64(&b.markBits[0])&1 != 0 {
			fn(a.blockBase(bi))
		}
	case blockLargeCont:
		head := bi - int(b.spanLen)
		if atomic.LoadUint64(&a.blocks[head].markBits[0])&1 != 0 {
			fn(a.blockBase(head))
		}
	case blockSmall:
		// One atomic load per bitmap word instead of one per slot; a
		// racing first-mark that lands after the word is read is missed,
		// which the contract above already permits. Alloc bits are
		// stable during a mark phase, so they are read plainly.
		objBytes := int(b.objWords) * mem.WordBytes
		base := a.blockBase(bi)
		for wi := range b.markBits {
			mv := atomic.LoadUint64(&b.markBits[wi])
			for w := mv & b.allocBits[wi]; w != 0; w &= w - 1 {
				slot := wi<<6 + bits.TrailingZeros64(w)
				fn(base + mem.Addr(slot*objBytes))
			}
		}
	}
}

// ForEachObject calls fn with the base address of every currently
// allocated object, in address order. Objects in sweep-pending blocks
// follow the IsAllocated rule: an unmarked one was classified dead by
// the last collection (only its reclamation is deferred), so it is
// skipped. Heap-snapshot exports and retention reports use this to
// enumerate the heap without probing every slot address.
func (a *Allocator) ForEachObject(fn func(base mem.Addr)) {
	for bi := range a.blocks {
		b := &a.blocks[bi]
		switch b.state {
		case blockLargeHead:
			if !b.pendingSweep || b.markBits[0]&1 != 0 {
				fn(a.blockBase(bi))
			}
		case blockSmall:
			objBytes := int(b.objWords) * mem.WordBytes
			base := a.blockBase(bi)
			for wi, av := range b.allocBits {
				w := av
				if b.pendingSweep {
					w &= b.markBits[wi]
				}
				for ; w != 0; w &= w - 1 {
					slot := wi<<6 + bits.TrailingZeros64(w)
					fn(base + mem.Addr(slot*objBytes))
				}
			}
		}
	}
}

// SweepSticky is Sweep with mark bits preserved: unmarked objects are
// freed, marked objects stay marked ("old"). Together with MarkDirty
// and a root re-scan it implements the sticky-mark-bit minor collection
// of the generational-conservative design. Under LazySweep the deferred
// block sweeps preserve marks the same way, so a block holding any
// old-marked object (markedCount > 0) is never released by a minor
// collection, pending or not.
func (a *Allocator) SweepSticky() SweepResult {
	if a.cfg.LazySweep {
		return a.sweepLazy(false)
	}
	return a.sweep(false)
}

// Sweep reclaims every unmarked object, rebuilds the free lists, and
// clears mark bits for the next full cycle. See also SweepSticky.
func (a *Allocator) Sweep() SweepResult {
	if a.cfg.LazySweep {
		return a.sweepLazy(true)
	}
	return a.sweep(true)
}
