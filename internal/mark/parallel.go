// Parallel marking: the mark phase sharded across several workers.
//
// Boehm's figure-2 algorithm is embarrassingly parallel once the mark
// bits are set with compare-and-swap: every candidate can be classified
// independently, and the transitive closure is a monotone fixpoint, so
// any interleaving of workers marks exactly the serial object set. The
// shape here follows the standard parallel tracer design (as in the
// real collector's parallel mark and Nofl-style block tracers):
//
//   - each worker owns a Marker shard with a private mark stack, so the
//     hot push/pop path is uncontended;
//   - a worker whose stack grows past spillThreshold sheds chunks of
//     gray objects onto a shared, mutex-guarded overflow queue, from
//     which idle workers steal;
//   - root areas and dirty-page rescans are enqueued as chunk tasks, so
//     initial work is balanced dynamically rather than statically. The
//     root areas include every stopped mutator handle's registers and
//     simulated stack (core's safepoint protocol parks and flushes the
//     handles before any worker starts, so the sources are quiescent);
//   - termination is detected with an idle-worker count: when every
//     worker is idle and the shared queue is empty, no gray objects can
//     exist anywhere, so the fixpoint is reached;
//   - per-worker statistics and blacklist additions are aggregated at
//     the barrier. Near-heap misses buffer locally and flush to the
//     shared (mutex-wrapped) blacklist either when the buffer fills or
//     at the barrier; the blacklist is cycle-stamped and therefore
//     order-independent, so the final pages equal the serial run's.
//
// Equivalence with serial marking (asserted by the differential tests):
// ObjectsMarked, BytesMarked, AtomicSkipped and the marked object set
// are bit-for-bit identical — the CAS admits exactly one winner per
// object. Root-scan counters (WordsScanned, Candidates) are identical
// too, because chunking preserves the candidate sequence (including
// unaligned straddles, via one word of chunk overlap). Only dirty-page
// rescans in minor cycles may scan an object that a racing worker
// marked moments earlier — the same double scan a serial minor cycle
// performs for large objects spanning several dirty pages — which can
// shift FieldsScanned but never the marked set.
package mark

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/blacklist"
	"repro/internal/mem"
	"repro/internal/trace"
)

const (
	// rootChunkWords is the root-area task granularity: small enough
	// that a handful of root segments spread across all workers, large
	// enough that queue traffic is negligible against scan cost.
	rootChunkWords = 2048
	// grayChunk is the number of gray objects a spilling worker sheds
	// per queue task.
	grayChunk = 512
	// flushAt bounds a worker's local blacklist buffer; beyond it the
	// buffer drains to the shared locked list mid-cycle.
	flushAt = 1024
)

// taskKind discriminates queue entries.
type taskKind uint8

const (
	taskRoots  taskKind = iota // scan words as a root chunk
	taskSparse                 // registers: nonzero words only, no straddles
	taskGray                   // already-marked objects awaiting scanning
	taskDirty                  // minor cycle: rescan marked objects of one block
)

// task is one unit of stealable work.
type task struct {
	kind  taskKind
	words []mem.Word
	tail  int // taskRoots: trailing straddle-context words
	addrs []mem.Addr
	block int // taskDirty: block index
	// org and off attribute the chunk for provenance recording:
	// the root area's identity and the index of words[0] within it.
	// Ignored (zero) when the cycle does not record.
	org RootOrigin
	off int32
}

// taskQueue is the shared overflow/work queue. A mutex-guarded LIFO is
// sufficient here: workers touch it only to refill an empty local stack
// or shed a over-full one, both rare against the per-object work.
type taskQueue struct {
	mu    sync.Mutex
	tasks []task
	size  atomic.Int32 // mirrored length, readable without the lock
}

func (q *taskQueue) push(t task) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.size.Store(int32(len(q.tasks)))
	q.mu.Unlock()
}

func (q *taskQueue) pop() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return task{}, false
	}
	t := q.tasks[len(q.tasks)-1]
	q.tasks[len(q.tasks)-1] = task{}
	q.tasks = q.tasks[:len(q.tasks)-1]
	q.size.Store(int32(len(q.tasks)))
	return t, true
}

// addrBuffer is a worker-local blacklist that batches Add calls,
// flushing to the shared locked list when full; Parallel.Run drains the
// remainder at the barrier. Queries pass through (the marker never
// issues them during a cycle).
type addrBuffer struct {
	addrs  []mem.Addr
	shared *blacklist.Locked
}

var _ blacklist.List = (*addrBuffer)(nil)

func (b *addrBuffer) Add(a mem.Addr) {
	b.addrs = append(b.addrs, a)
	if len(b.addrs) >= flushAt {
		b.flush()
	}
}

func (b *addrBuffer) flush() {
	for _, a := range b.addrs {
		b.shared.Add(a)
	}
	b.addrs = b.addrs[:0]
}

func (b *addrBuffer) Contains(a mem.Addr) bool           { return b.shared.Contains(a) }
func (b *addrBuffer) ContainsRange(lo, hi mem.Addr) bool { return b.shared.ContainsRange(lo, hi) }
func (b *addrBuffer) Len() int                           { return b.shared.Len() }
func (b *addrBuffer) Clear()                             { b.addrs = b.addrs[:0]; b.shared.Clear() }
func (b *addrBuffer) BeginCycle()                        { b.shared.BeginCycle() }
func (b *addrBuffer) Expire(maxAge uint32) int           { return b.shared.Expire(maxAge) }
func (b *addrBuffer) Stats() blacklist.Stats             { return b.shared.Stats() }

// worker couples a Marker shard with its blacklist buffer. The back
// pointer lets Run spawn `go w.run()` — a closure-free go statement —
// so a cycle's only per-worker allocation is the spawn itself.
type worker struct {
	m       *Marker
	pending *addrBuffer
	p       *Parallel
}

// run is one worker goroutine's cycle entry point.
func (w *worker) run() {
	defer w.p.wg.Done()
	w.p.runWorker(w)
}

// Parallel is a reusable parallel mark phase over one heap. Build it
// once, then per collection cycle: AddRoots / AddSparseRoots /
// AddDirtyBlock, then Run.
type Parallel struct {
	heap    *alloc.Allocator
	cfg     Config
	shared  *blacklist.Locked
	workers []*worker
	// assist is a dedicated marker shard for mutator slow-path assists
	// during detached concurrent cycles (detached.go). It shares the
	// queue and blacklist like a worker but is never spawned by Run or
	// RunBounded, so an assist under the world lock can run while the
	// detached worker goroutines own the regular shards.
	assist  *worker
	queue   taskQueue
	idle    atomic.Int32
	credits atomic.Int64 // bounded-run scan budget (see bounded.go)
	staged  []task       // tasks accumulated between cycles, moved to queue by Run
	// steals counts tasks fetched from the shared queue, cumulatively
	// across cycles: root chunks claimed, gray chunks stolen, dirty
	// blocks taken. It is the registry's mark-steal metric.
	steals atomic.Uint64
	tracer *trace.Recorder
	wg     sync.WaitGroup // reused across cycles so Run does not allocate it
}

// NewParallel creates a parallel marker with the given worker count
// (minimum 2; use a plain Marker for serial marking).
func NewParallel(heap *alloc.Allocator, cfg Config, workers int) *Parallel {
	if workers < 2 {
		workers = 2
	}
	bl := cfg.Blacklist
	if bl == nil {
		bl = blacklist.Disabled{}
	}
	p := &Parallel{heap: heap, cfg: cfg, shared: blacklist.NewLocked(bl)}
	for i := 0; i <= workers; i++ {
		buf := &addrBuffer{shared: p.shared}
		wcfg := cfg
		wcfg.Blacklist = buf
		m := New(heap, wcfg)
		m.atomicMark = true
		m.overflow = p.spill
		w := &worker{m: m, pending: buf, p: p}
		if i == workers {
			p.assist = w
		} else {
			p.workers = append(p.workers, w)
		}
	}
	return p
}

// Workers returns the worker count.
func (p *Parallel) Workers() int { return len(p.workers) }

// Steals returns the cumulative number of tasks workers fetched from
// the shared queue (root chunks, stolen gray chunks, dirty blocks).
func (p *Parallel) Steals() uint64 { return p.steals.Load() }

// SetTracer attaches r to the phase and every worker's marker (nil
// detaches): workers emit blacklist additions and spill events, the
// phase itself nothing — core emits the span events around Run.
func (p *Parallel) SetTracer(r *trace.Recorder) {
	p.tracer = r
	for _, w := range p.workers {
		w.m.SetTracer(r)
	}
	p.assist.m.SetTracer(r)
}

// EachWorkerStats calls fn with every worker's statistics from the
// last Run, in worker order. A callback rather than a slice so the
// trace path stays allocation-free.
func (p *Parallel) EachWorkerStats(fn func(i int, s Stats)) {
	for i, w := range p.workers {
		fn(i, w.m.Stats())
	}
}

// AddRoots stages a root area for the next Run, chunked for dynamic
// balancing. Under the unaligned regime each chunk carries one word of
// straddle context so chunk boundaries hide no candidates.
func (p *Parallel) AddRoots(words []mem.Word) {
	p.AddRootsOrigin(RootOrigin{}, words)
}

// AddRootsOrigin is AddRoots with the area's provenance identity, so a
// recording cycle can attribute first-marks to the exact root word even
// when the area is split across workers.
func (p *Parallel) AddRootsOrigin(org RootOrigin, words []mem.Word) {
	overlap := 0
	if p.cfg.Alignment == AnyByteOffset {
		overlap = 1
	}
	for lo := 0; lo < len(words); lo += rootChunkWords {
		hi := lo + rootChunkWords
		tail := overlap
		if hi >= len(words) {
			hi = len(words)
			tail = 0
		}
		p.staged = append(p.staged, task{
			kind: taskRoots, words: words[lo : hi+tail], tail: tail,
			org: org, off: int32(lo),
		})
	}
}

// AddSparseRoots stages a register file: nonzero words are marked as
// individual candidates, with no word-count or straddle accounting,
// mirroring the serial collector's register scan.
func (p *Parallel) AddSparseRoots(words []mem.Word) {
	p.AddSparseRootsOrigin(RootOrigin{}, words)
}

// AddSparseRootsOrigin is AddSparseRoots with the register file's
// provenance identity.
func (p *Parallel) AddSparseRootsOrigin(org RootOrigin, words []mem.Word) {
	if len(words) > 0 {
		p.staged = append(p.staged, task{kind: taskSparse, words: words, org: org})
	}
}

// StartRecording begins provenance recording on every worker for the
// next Run. The mark-bit CAS admits exactly one winner per object, and
// only the winner appends a record, so the merged set is duplicate-free
// without further synchronisation.
func (p *Parallel) StartRecording() {
	for _, w := range p.workers {
		w.m.StartRecording()
	}
	p.assist.m.StartRecording()
}

// Recording reports whether the workers are recording provenance.
func (p *Parallel) Recording() bool { return p.workers[0].m.Recording() }

// StopRecording ends recording and returns every worker's records,
// merged (order is worker-major and otherwise unspecified; each marked
// object appears exactly once).
func (p *Parallel) StopRecording() []ParentRecord {
	var out []ParentRecord
	for _, w := range p.workers {
		out = append(out, w.m.StopRecording()...)
	}
	out = append(out, p.assist.m.StopRecording()...)
	return out
}

// AddDirtyBlock stages a minor-cycle rescan of the marked objects in
// block bi.
func (p *Parallel) AddDirtyBlock(bi int) {
	p.staged = append(p.staged, task{kind: taskDirty, block: bi})
}

// spill sheds the older half of a worker's mark stack onto the shared
// queue in grayChunk pieces, keeping the newest (hottest) entries
// local.
func (p *Parallel) spill(m *Marker) {
	half := len(m.stack) / 2
	p.tracer.Emit(trace.EvMarkSpill, int64(half), 0, 0)
	for lo := 0; lo < half; lo += grayChunk {
		hi := lo + grayChunk
		if hi > half {
			hi = half
		}
		chunk := make([]mem.Addr, hi-lo)
		copy(chunk, m.stack[lo:hi])
		p.queue.push(task{kind: taskGray, addrs: chunk})
	}
	n := copy(m.stack, m.stack[half:])
	m.stack = m.stack[:n]
}

// Run executes the mark phase over the staged tasks and returns the
// aggregated statistics. At return every reachable object is marked,
// all blacklist buffers are flushed, and the Parallel is ready for the
// next cycle.
func (p *Parallel) Run() Stats {
	p.queue.tasks = append(p.queue.tasks[:0], p.staged...)
	p.queue.size.Store(int32(len(p.queue.tasks)))
	p.staged = p.staged[:0]
	p.idle.Store(0)
	p.assist.m.Reset()
	p.wg.Add(len(p.workers))
	for _, w := range p.workers {
		w.m.Reset()
		go w.run()
	}
	p.wg.Wait()
	for _, w := range p.workers {
		w.pending.flush()
	}
	p.assist.pending.flush()
	return p.AggStats()
}

// AggStats sums every worker's statistics. After Run it equals the
// cycle's totals; during a concurrent cycle it is the running total
// across the bounded runs executed so far (ResetCycle zeroes it).
func (p *Parallel) AggStats() Stats {
	var agg Stats
	for _, w := range p.workers {
		agg.add(w.m.Stats())
	}
	agg.add(p.assist.m.Stats())
	return agg
}

// add accumulates o into s field by field.
func (s *Stats) add(o Stats) {
	s.WordsScanned += o.WordsScanned
	s.Candidates += o.Candidates
	s.ObjectsMarked += o.ObjectsMarked
	s.BytesMarked += o.BytesMarked
	s.FieldsScanned += o.FieldsScanned
	s.FalseNearHeap += o.FalseNearHeap
	s.AtomicSkipped += o.AtomicSkipped
	s.InteriorResolved += o.InteriorResolved
}

// runWorker is one worker's loop: drain the local stack, then steal
// from the shared queue, then negotiate termination.
func (p *Parallel) runWorker(w *worker) {
	for {
		w.m.Drain()
		t, ok := p.queue.pop()
		if !ok {
			if p.goIdle() {
				return
			}
			continue
		}
		p.steals.Add(1)
		p.process(w, t)
	}
}

// goIdle registers this worker as out of work and waits until either
// the shared queue has work again (return false: retry) or every
// worker is idle with an empty queue (return true: the fixpoint is
// reached). Tasks are pushed only by non-idle workers, so "all idle and
// queue empty" is stable once observed.
func (p *Parallel) goIdle() (done bool) {
	p.idle.Add(1)
	for {
		if p.queue.size.Load() > 0 {
			p.idle.Add(-1)
			return false
		}
		if p.idle.Load() == int32(len(p.workers)) {
			return true
		}
		runtime.Gosched()
	}
}

// process executes one stolen task; any gray objects it produces land
// on the worker's local stack, drained by the caller.
func (p *Parallel) process(w *worker, t task) {
	switch t.kind {
	case taskRoots:
		w.m.markRootChunk(t.org, t.off, t.words, t.tail)
	case taskSparse:
		w.m.MarkSparseRoots(t.org, t.words)
	case taskGray:
		w.m.stack = append(w.m.stack, t.addrs...)
	case taskDirty:
		p.heap.ForEachMarkedObjectAtomic(t.block, w.m.ScanObject)
	}
}
