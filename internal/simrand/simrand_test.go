package simrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := r.Uint64()
	r.Uint64()
	r.Seed(7)
	if r.Uint64() != first {
		t.Fatal("Seed did not reset the stream")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	want := New(0).Uint64()
	if r.Uint64() != want {
		t.Fatal("zero value does not behave as New(0)")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	// Roughly uniform: each bucket within 40% of expectation.
	for v, c := range counts {
		if c < 600 || c > 1400 {
			t.Errorf("bucket %d count %d far from uniform", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Range(100, 200)
		if v < 100 || v >= 200 {
			t.Fatalf("Range(100,200) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty Range did not panic")
		}
	}()
	r.Range(5, 5)
}

func TestFloat64InUnitInterval(t *testing.T) {
	r := New(9)
	f := func(skip uint8) bool {
		for i := 0; i < int(skip)%16; i++ {
			r.Uint64()
		}
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.23 || got > 0.27 {
		t.Fatalf("Bool(0.25) hit rate %.4f", got)
	}
}

func TestPrintableByte(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		b := r.PrintableByte()
		if b < 0x20 || b > 0x7E {
			t.Fatalf("PrintableByte = %#x", b)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(21)
	child := r.Split()
	c1 := child.Uint64()
	// Recreate the same split from the same parent state.
	r2 := New(21)
	child2 := r2.Split()
	if child2.Uint64() != c1 {
		t.Fatal("Split not deterministic")
	}
	// A child stream differs from the parent stream.
	r3, c3 := New(21), New(21).Split()
	diff := false
	for i := 0; i < 32; i++ {
		if r3.Uint64() != c3.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("child stream identical to parent stream")
	}
}

func TestUint32nAndByte(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		if v := r.Uint32n(77); v >= 77 {
			t.Fatalf("Uint32n(77) = %d", v)
		}
	}
	r.Byte() // coverage; any byte is valid
	defer func() {
		if recover() == nil {
			t.Fatal("Uint32n(0) did not panic")
		}
	}()
	r.Uint32n(0)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
