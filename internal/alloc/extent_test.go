package alloc

import (
	"testing"

	"repro/internal/mem"
)

func newDiscontiguous(t *testing.T) (*mem.AddressSpace, *Allocator) {
	t.Helper()
	space := mem.NewAddressSpace()
	a, err := New(space, Config{
		HeapBase:            0x400000,
		InitialBytes:        4 * mem.PageBytes,
		ReserveBytes:        4 * mem.PageBytes,
		ExpandIncrement:     mem.PageBytes,
		DiscontiguousGrowth: true,
		ExtentGapBytes:      1 << 20,
		ExtentReserveBytes:  8 * mem.PageBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return space, a
}

func fill(t *testing.T, a *Allocator) []mem.Addr {
	t.Helper()
	var objs []mem.Addr
	for {
		p, err := a.Alloc(mem.PageWords, false) // one block each
		if err == ErrNeedMemory {
			return objs
		}
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, p)
	}
}

func TestDiscontiguousExpandAddsExtent(t *testing.T) {
	space, a := newDiscontiguous(t)
	first := fill(t, a)
	if len(first) != 4 || a.Extents() != 1 {
		t.Fatalf("first extent: %d objects, %d extents", len(first), a.Extents())
	}
	if err := a.Expand(mem.PageBytes); err != nil {
		t.Fatal(err)
	}
	if a.Extents() != 2 {
		t.Fatalf("Extents = %d after exhausting the first reservation", a.Extents())
	}
	// The new extent is non-adjacent.
	seg2 := space.Segment("heap1")
	if seg2 == nil {
		t.Fatal("second extent not mapped")
	}
	if seg2.Base() < a.Seg().ReservedLimit()+1<<20 {
		t.Fatalf("second extent at %#x not past the gap", uint32(seg2.Base()))
	}
	// Allocation proceeds into it.
	p, err := a.Alloc(mem.PageWords, false)
	if err != nil {
		t.Fatal(err)
	}
	if !seg2.Contains(p) {
		t.Fatalf("object %#x not in second extent", uint32(p))
	}
	// Address resolution across extents.
	if base, ok := a.FindObject(p+100, true); !ok || base != p {
		t.Fatal("FindObject broken in second extent")
	}
	if bi := a.blockIndex(p); a.blockBase(bi) != p {
		t.Fatal("block index arithmetic broken across extents")
	}
	// Vicinity covers both reservations but not the gap.
	if !a.InVicinity(seg2.Base() + 5*mem.PageBytes) {
		t.Fatal("second extent reservation not in vicinity")
	}
	if a.InVicinity(a.Seg().ReservedLimit() + 0x1000) {
		t.Fatal("gap between extents wrongly in vicinity")
	}
}

func TestDiscontiguousMarkSweepAcrossExtents(t *testing.T) {
	_, a := newDiscontiguous(t)
	fill(t, a) // exhaust extent 1 (all garbage)
	if err := a.Expand(mem.PageBytes); err != nil {
		t.Fatal(err)
	}
	keep, err := a.Alloc(2, false) // lives in extent 2
	if err != nil {
		t.Fatal(err)
	}
	drop, err := a.Alloc(2, false)
	if err != nil {
		t.Fatal(err)
	}
	a.Mark(keep)
	r := a.Sweep()
	if r.ObjectsLive != 1 {
		t.Fatalf("live = %d", r.ObjectsLive)
	}
	if !a.IsAllocated(keep) || a.IsAllocated(drop) {
		t.Fatal("cross-extent sweep wrong")
	}
	// Every extent-1 block is free again; spans must not have been
	// coalesced across the extent boundary.
	for _, sp := range a.FreeSpans() {
		e := a.extentOfBlock(sp[0])
		if a.extentOfBlock(sp[0]+sp[1]-1) != e {
			t.Fatalf("span %v crosses extents", sp)
		}
	}
}

func TestDiscontiguousCanExpandUntilAddressSpaceEnds(t *testing.T) {
	space := mem.NewAddressSpace()
	a, err := New(space, Config{
		HeapBase:            0xFF000000, // near the top of the space
		InitialBytes:        mem.PageBytes,
		ReserveBytes:        mem.PageBytes,
		ExpandIncrement:     mem.PageBytes,
		DiscontiguousGrowth: true,
		ExtentGapBytes:      4 << 20,
		ExtentReserveBytes:  8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	for a.CanExpand() {
		if err := a.Expand(mem.PageBytes); err != nil {
			t.Fatalf("Expand with CanExpand true: %v", err)
		}
	}
	if err := a.Expand(mem.PageBytes); err == nil {
		t.Fatal("expand past the address space succeeded")
	}
}

func TestContiguousDefaultStillExhausts(t *testing.T) {
	_, a := newTestAllocator(t, Config{
		InitialBytes: 2 * mem.PageBytes,
		ReserveBytes: 2 * mem.PageBytes,
	})
	if a.CanExpand() {
		t.Fatal("contiguous full heap claims expandability")
	}
	if err := a.Expand(mem.PageBytes); err != ErrHeapExhausted {
		t.Fatalf("want ErrHeapExhausted, got %v", err)
	}
}
