package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mem"
)

// Concurrency battery: N goroutines allocate, link, free and collect
// through their own Mutator handles while the allocator's slot
// accounting is audited mid-flight. Runs under -race via `make race`.
//
// The liveness discipline mirrors a real mutator: every object a
// goroutine intends to revisit is rooted *atomically with its
// allocation* (AllocateRooted), because between a plain Allocate
// returning and a root store landing, another mutator's collection
// could reclaim — and another handle re-carve — the slot. Objects
// allocated without rooting are pure garbage and never touched again.

// churnMutator is one battery goroutine's script: ops operations mixed
// from rooted allocations, garbage allocations, links between own live
// objects, explicit frees, and collections. Returns how many objects
// it successfully allocated.
func churnMutator(w *World, m *Mutator, data *mem.Segment, base mem.Addr, seed uint32, ops int) (uint64, error) {
	const slots = 16
	var roots [slots]mem.Addr
	var atomicRoot [slots]bool
	sizes := []int{1, 2, 3, 5, 8, 12, 16, 32, 64, 128, 600}
	rng := seed
	next := func(n uint32) uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng % n
	}
	var allocs uint64
	for i := 0; i < ops; i++ {
		size := sizes[next(uint32(len(sizes)))]
		switch next(10) {
		case 0, 1, 2, 3, 4:
			// Allocate rooted into one of this goroutine's private data
			// slots; whatever the slot held becomes garbage.
			j := next(slots)
			atomic := next(5) == 0
			p, err := m.AllocateRooted(data, base+mem.Addr(4*j), size, atomic)
			if err != nil {
				return allocs, err
			}
			allocs++
			roots[j] = p
			atomicRoot[j] = atomic
		case 5, 6, 7:
			// Garbage: allocated, never rooted, never touched again.
			if _, err := m.Allocate(size, next(5) == 0); err != nil {
				return allocs, err
			}
			allocs++
		case 8:
			// Link one of our live objects into another. Both are rooted,
			// so both are guaranteed allocated; the target must not be
			// atomic (pointer-free objects hold no pointers).
			j, k := next(slots), next(slots)
			if roots[j] != 0 && !atomicRoot[j] && roots[k] != 0 {
				if err := m.Store(roots[j], mem.Word(roots[k])); err != nil {
					return allocs, err
				}
			}
		case 9:
			// Free one of our rooted objects: rooted continuously since
			// allocation, so still allocated and owned by us. Free first,
			// clear the root after — the brief stale root is harmless,
			// while the reverse order would leave an unrooted live window.
			j := next(slots)
			if roots[j] != 0 {
				if err := m.Free(roots[j]); err != nil {
					return allocs, err
				}
				if err := m.Store(base+mem.Addr(4*j), 0); err != nil {
					return allocs, err
				}
				roots[j] = 0
			}
		}
		if next(97) == 0 {
			if next(2) == 0 {
				m.Collect()
			} else {
				m.CollectMinor()
			}
		}
		if i%64 == 63 {
			if err := w.VerifyIntegrity(); err != nil {
				return allocs, fmt.Errorf("op %d: %w", i, err)
			}
		}
	}
	return allocs, nil
}

// TestConcurrentMutatorBattery runs the battery across collector
// configurations: every mode's safepoint protocol must flush caches
// and park mutators such that no slot is ever carved twice and the
// central allocation stats stay exact.
func TestConcurrentMutatorBattery(t *testing.T) {
	configs := map[string]Config{
		"full":          {GCDivisor: 6},
		"gen-lazy":      {Generational: true, MinorDivisor: 6, FullEvery: 3, LazySweep: true},
		"par-lazy":      {GCDivisor: 6, MarkWorkers: 4, LazySweep: true},
		"incremental":   {Incremental: true, GCDivisor: 6, MarkQuantum: 64},
		"line":          {GCDivisor: 6, LineAlloc: true},
		"line-gen-lazy": {Generational: true, MinorDivisor: 6, FullEvery: 3, LazySweep: true, LineAlloc: true},
		"line-par-lazy": {GCDivisor: 6, MarkWorkers: 4, LazySweep: true, LineAlloc: true},
		// Concurrent marking: cycles trigger on allocation pressure and
		// mark on a background driver goroutine while the battery's
		// mutators keep storing through the insertion barrier.
		"conc":          {ConcurrentMark: true, GCDivisor: 6},
		"conc-par":      {ConcurrentMark: true, GCDivisor: 6, MarkWorkers: 4, LazySweep: true},
		"conc-gen-lazy": {ConcurrentMark: true, Generational: true, MinorDivisor: 6, FullEvery: 3, LazySweep: true},
		"conc-line":     {ConcurrentMark: true, GCDivisor: 6, LineAlloc: true},
		// Detached background marking plus the background sweeper: four
		// worker goroutines pull the gray set without the world lock
		// while the mutators allocate, store, and free. The race battery
		// entry for the full no-lock machinery (CAS mark bits, atomic
		// heap words, heapMu exclusion, pacer assists).
		"conc-workers": {ConcurrentMark: true, GCDivisor: 6, ConcMarkWorkers: 4, ConcurrentSweep: true},
		// Sixteen budgeted tenants under the full no-lock machinery: the
		// race entry for the ownership table, the fast-path budget CAS,
		// the barrier reconcile, and collect-first's forced collections
		// racing the detached workers. Budgets are generous enough that
		// collect-first always finds headroom, so the battery's
		// no-operation-errors invariant still holds.
		"tenants": {ConcurrentMark: true, GCDivisor: 6, ConcMarkWorkers: 4, ConcurrentSweep: true},
	}
	ops := 400
	if testing.Short() {
		ops = 120
	}
	for name, cfg := range configs {
		cfg := cfg
		nMut := 8
		tenanted := name == "tenants"
		if tenanted {
			nMut = 16
		}
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, cfg)
			const slotBytes = 16 * 4
			data := addData(t, w, "roots", 0x2000, nMut*slotBytes)
			muts := make([]*Mutator, nMut)
			tens := make([]*Tenant, nMut)
			for g := range muts {
				if tenanted {
					tens[g] = w.NewTenant(TenantConfig{BudgetBytes: 1 << 20, Policy: TenantCollectFirst})
					muts[g] = tens[g].NewMutator()
				} else {
					muts[g] = w.NewMutator()
				}
			}
			var (
				wg     sync.WaitGroup
				counts = make([]uint64, nMut)
				errs   = make([]error, nMut)
			)
			for g := 0; g < nMut; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := mem.Addr(0x2000 + g*slotBytes)
					counts[g], errs[g] = churnMutator(w, muts[g], data, base, uint32(g)*2654435761+1, ops)
				}(g)
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Fatalf("mutator %d: %v", g, err)
				}
			}
			w.Collect()
			w.FinishSweep()
			if err := w.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
			// Conservation of objects: every successful allocation — fast
			// path or slow — is visible in the central stats after the
			// final safepoint published all local counters.
			var total uint64
			for _, c := range counts {
				total += c
			}
			if got := w.Heap.Stats().ObjectsAllocated; got != total {
				t.Fatalf("central ObjectsAllocated = %d, mutators allocated %d", got, total)
			}
			if tenanted {
				// Per-tenant conservation and settled attribution: the
				// tenants' own counters see exactly the battery's
				// allocations, and after the final collection each
				// tenant's budget counter matches the ownership table.
				w.Collect()
				w.FinishSweep()
				var byTenants uint64
				for g, ten := range tens {
					st := ten.Stats()
					byTenants += st.AllocatedObjects
					if st.AllocatedObjects != counts[g] {
						t.Fatalf("tenant %d: AllocatedObjects = %d, mutator allocated %d",
							g, st.AllocatedObjects, counts[g])
					}
					if owned := ten.OwnedBytes(); st.LiveBytes != owned {
						t.Fatalf("tenant %d: LiveBytes %d != owned bytes %d", g, st.LiveBytes, owned)
					}
				}
				if byTenants != total {
					t.Fatalf("sum of tenant AllocatedObjects = %d, want %d", byTenants, total)
				}
			}
			// No double-carve: the goroutines' surviving roots are
			// pairwise distinct addresses.
			seen := make(map[mem.Addr]int)
			for g := 0; g < nMut; g++ {
				for j := 0; j < 16; j++ {
					v, err := w.Load(mem.Addr(0x2000 + g*slotBytes + 4*j))
					if err != nil {
						t.Fatal(err)
					}
					if v == 0 {
						continue
					}
					if prev, dup := seen[mem.Addr(v)]; dup {
						t.Fatalf("address %#x rooted by mutators %d and %d", uint32(v), prev, g)
					}
					seen[mem.Addr(v)] = g
				}
			}
		})
	}
}

// TestConcurrentMutatorStress is a heavier single-config run with more
// mutators than GOMAXPROCS typically provides, forcing preemption
// inside the fast path and contention on the central lock.
func TestConcurrentMutatorStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress battery skipped in -short")
	}
	cfg := Config{Generational: true, MinorDivisor: 5, FullEvery: 4, MarkWorkers: 4, LazySweep: true}
	w := newWorld(t, cfg)
	const nMut = 16
	const slotBytes = 16 * 4
	data := addData(t, w, "roots", 0x2000, nMut*slotBytes)
	var (
		wg     sync.WaitGroup
		counts [nMut]uint64
		errs   [nMut]error
	)
	for g := 0; g < nMut; g++ {
		m := w.NewMutator()
		wg.Add(1)
		go func(g int, m *Mutator) {
			defer wg.Done()
			base := mem.Addr(0x2000 + g*slotBytes)
			counts[g], errs[g] = churnMutator(w, m, data, base, uint32(g)*0x9e3779b9+7, 500)
		}(g, m)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("mutator %d: %v", g, err)
		}
	}
	w.Collect()
	if err := w.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if got := w.Heap.Stats().ObjectsAllocated; got != total {
		t.Fatalf("central ObjectsAllocated = %d, mutators allocated %d", got, total)
	}
}

// FuzzConcurrentAlloc fuzzes interleavings of allocation sizes, atomic
// flags, frees, links and collection triggers across 2–4 concurrent
// mutators. Each input byte is one operation for one mutator
// (round-robin): 2 op bits, 3 slot bits, 3 size bits. The invariants
// are the battery's: no operation errors, the final integrity audit
// passes, and the object count is conserved.
func FuzzConcurrentAlloc(f *testing.F) {
	f.Add(uint8(2), uint8(0), []byte{0x00, 0x41, 0x9a, 0xe3, 0x07, 0xff, 0x22, 0x6d})
	f.Add(uint8(3), uint8(2), []byte{0xe0, 0xe4, 0xe8, 0x02, 0x03, 0x83, 0x43, 0x23, 0x13, 0x0b})
	f.Add(uint8(4), uint8(3), []byte{0x00, 0x01, 0x02, 0x03, 0x40, 0x41, 0x42, 0x43, 0x80, 0x81, 0x82, 0x83, 0xc0, 0xc1, 0xc2, 0xc3})
	f.Add(uint8(4), uint8(4), []byte{0x07, 0x07, 0x07, 0x07, 0x0f, 0x0f, 0x0f, 0x0f, 0xc3, 0xc7, 0xcb, 0xcf})
	fuzzConcurrent(f, []Config{
		{GCDivisor: 4},
		{GCDivisor: 4, LazySweep: true},
		{Generational: true, MinorDivisor: 5, FullEvery: 2, LazySweep: true},
		{Incremental: true, GCDivisor: 4, MarkQuantum: 32},
		{GCDivisor: 4, MarkWorkers: 2, LazySweep: true},
	})
}

// FuzzLineAlloc is the bump-profile variant: the same interleaving
// fuzz across 2–4 concurrent mutators, with every configuration under
// Config.LineAlloc. Span carves, safepoint span flushes, and the freed
// LIFO replace run carves and free-list threading on these paths.
func FuzzLineAlloc(f *testing.F) {
	f.Add(uint8(2), uint8(0), []byte{0x00, 0x41, 0x9a, 0xe3, 0x07, 0xff, 0x22, 0x6d})
	f.Add(uint8(3), uint8(1), []byte{0xe0, 0xe4, 0xe8, 0x02, 0x03, 0x83, 0x43, 0x23, 0x13, 0x0b})
	f.Add(uint8(4), uint8(2), []byte{0x07, 0x07, 0x07, 0x07, 0x0f, 0x0f, 0x0f, 0x0f, 0xc3, 0xc7, 0xcb, 0xcf})
	fuzzConcurrent(f, []Config{
		{GCDivisor: 4, LineAlloc: true},
		{GCDivisor: 4, LazySweep: true, LineAlloc: true},
		{Generational: true, MinorDivisor: 5, FullEvery: 2, LazySweep: true, LineAlloc: true},
		{GCDivisor: 4, MarkWorkers: 2, LazySweep: true, LineAlloc: true},
	})
}

// FuzzTenantBudget fuzzes budget enforcement: 2–4 tenants with small
// budgets run a byte-scripted mix of rooted allocations, frees and
// unroots under a fuzz-chosen collector config and over-budget policy.
// Budget denials, cancellations and evictions are expected outcomes;
// the invariants are that no other error ever surfaces, the final
// integrity audit passes, object counts are conserved through the
// tenants' own counters, and settled budget accounting matches the
// allocator's ownership table exactly (evicted tenants at zero).
func FuzzTenantBudget(f *testing.F) {
	f.Add(uint8(2), uint8(0), []byte{0x00, 0x41, 0x9a, 0xe3, 0x07, 0xff, 0x22, 0x6d})
	f.Add(uint8(3), uint8(1), []byte{0xe0, 0xe4, 0xe8, 0x02, 0x03, 0x83, 0x43, 0x23, 0x13, 0x0b})
	f.Add(uint8(4), uint8(2), []byte{0x07, 0x07, 0x07, 0x07, 0x0f, 0x0f, 0x0f, 0x0f, 0xc3, 0xc7, 0xcb, 0xcf})
	f.Add(uint8(2), uint8(0x15), []byte{0x00, 0x20, 0x40, 0x60, 0x80, 0xa0, 0xc0, 0xe0, 0x01, 0x21})
	f.Add(uint8(3), uint8(0x23), []byte{0xff, 0xdf, 0xbf, 0x9f, 0x7f, 0x5f, 0x3f, 0x1f})
	cfgs := []Config{
		{GCDivisor: 4},
		{GCDivisor: 4, LazySweep: true},
		{Generational: true, MinorDivisor: 5, FullEvery: 2, LazySweep: true},
		{GCDivisor: 4, LineAlloc: true},
		{ConcurrentMark: true, GCDivisor: 4, ConcMarkWorkers: 2, ConcurrentSweep: true},
	}
	f.Fuzz(func(t *testing.T, nt, mode uint8, prog []byte) {
		nTen := 2 + int(nt)%3
		if len(prog) > 512 {
			prog = prog[:512]
		}
		cfg := cfgs[int(mode)%len(cfgs)]
		policy := TenantPolicy(int(mode>>4) % 3)
		w := newWorld(t, cfg)
		const slots = 8
		const slotBytes = slots * 4
		data := addData(t, w, "roots", 0x2000, 4*slotBytes)
		tens := make([]*Tenant, nTen)
		muts := make([]*Mutator, nTen)
		for g := range tens {
			tens[g] = w.NewTenant(TenantConfig{BudgetBytes: 2 << 10, Policy: policy})
			muts[g] = tens[g].NewMutator()
		}
		sizes := []int{1, 2, 4, 8, 16, 32, 64, 600}
		counts := make([]uint64, nTen)
		roots := make([][slots]mem.Addr, nTen)
		for i, b := range prog {
			g := i % nTen
			ten, m := tens[g], muts[g]
			base := mem.Addr(0x2000 + g*slotBytes)
			op := b & 3
			j := uint32(b>>2) & 7
			si := int(b >> 5)
			switch op {
			case 0, 1: // rooted allocation (op 1: atomic)
				p, err := m.AllocateRooted(data, base+mem.Addr(4*j), sizes[si], op == 1)
				if err != nil {
					if !errors.Is(err, ErrBudgetExceeded) && !errors.Is(err, ErrTenantCancelled) {
						t.Fatalf("tenant %d op %d: %v", g, i, err)
					}
					if ten.Evicted() {
						// Eviction freed every root; drop the dangling slots.
						for k := 0; k < slots; k++ {
							if err := w.Store(base+mem.Addr(4*k), 0); err != nil {
								t.Fatal(err)
							}
							roots[g][k] = 0
						}
					}
					continue
				}
				counts[g]++
				roots[g][j] = p
			case 2: // free the rooted object, then clear the root
				if roots[g][j] == 0 {
					continue
				}
				if err := m.Free(roots[g][j]); err != nil {
					t.Fatalf("tenant %d op %d: free: %v", g, i, err)
				}
				if err := w.Store(base+mem.Addr(4*j), 0); err != nil {
					t.Fatal(err)
				}
				roots[g][j] = 0
			case 3: // unroot (make garbage) or collect, by size bits
				if si%2 == 0 {
					if err := w.Store(base+mem.Addr(4*j), 0); err != nil {
						t.Fatal(err)
					}
					roots[g][j] = 0
				} else {
					m.Collect()
				}
			}
		}
		w.Collect()
		w.FinishSweep()
		w.Collect()
		w.FinishSweep()
		if err := w.VerifyIntegrity(); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for g, ten := range tens {
			st := ten.Stats()
			total += st.AllocatedObjects
			if st.AllocatedObjects != counts[g] {
				t.Fatalf("tenant %d: AllocatedObjects = %d, counted %d", g, st.AllocatedObjects, counts[g])
			}
			if st.Evicted && st.LiveBytes != 0 {
				t.Fatalf("tenant %d: evicted with LiveBytes %d", g, st.LiveBytes)
			}
			if owned := ten.OwnedBytes(); st.LiveBytes != owned {
				t.Fatalf("tenant %d: LiveBytes %d != owned bytes %d", g, st.LiveBytes, owned)
			}
		}
		if got := w.Heap.Stats().ObjectsAllocated; got != total {
			t.Fatalf("central ObjectsAllocated = %d, tenants allocated %d", got, total)
		}
	})
}

// fuzzConcurrent is the shared fuzz body; mode selects from cfgs.
func fuzzConcurrent(f *testing.F, cfgs []Config) {
	f.Fuzz(func(t *testing.T, nm, mode uint8, prog []byte) {
		nMut := 2 + int(nm)%3
		if len(prog) > 512 {
			prog = prog[:512]
		}
		cfg := cfgs[int(mode)%len(cfgs)]
		w := newWorld(t, cfg)
		const slots = 8
		const slotBytes = slots * 4
		data := addData(t, w, "roots", 0x2000, 4*slotBytes)

		// Deal the program round-robin: byte i goes to mutator i%nMut.
		progs := make([][]byte, nMut)
		for i, b := range prog {
			progs[i%nMut] = append(progs[i%nMut], b)
		}
		sizes := []int{1, 2, 4, 8, 16, 32, 64, 600}
		var (
			wg     sync.WaitGroup
			counts = make([]uint64, nMut)
			errs   = make([]error, nMut)
		)
		for g := 0; g < nMut; g++ {
			m := w.NewMutator()
			wg.Add(1)
			go func(g int, m *Mutator, ops []byte) {
				defer wg.Done()
				base := mem.Addr(0x2000 + g*slotBytes)
				var roots [slots]mem.Addr
				var atomicRoot [slots]bool
				for _, b := range ops {
					op := b & 3
					j := uint32(b>>2) & 7
					si := int(b >> 5)
					switch op {
					case 0, 1: // rooted allocation (op 1: atomic)
						p, err := m.AllocateRooted(data, base+mem.Addr(4*j), sizes[si], op == 1)
						if err != nil {
							errs[g] = err
							return
						}
						counts[g]++
						roots[j] = p
						atomicRoot[j] = op == 1
					case 2: // free the rooted object, then clear the root
						if roots[j] == 0 {
							continue
						}
						if err := m.Free(roots[j]); err != nil {
							errs[g] = err
							return
						}
						if err := m.Store(base+mem.Addr(4*j), 0); err != nil {
							errs[g] = err
							return
						}
						roots[j] = 0
					case 3: // link, collect, or garbage, by size bits
						switch si % 4 {
						case 0:
							m.Collect()
						case 1:
							m.CollectMinor()
						case 2:
							if _, err := m.Allocate(sizes[si], false); err != nil {
								errs[g] = err
								return
							}
							counts[g]++
						case 3:
							k := (j + 1) % slots
							if roots[j] != 0 && !atomicRoot[j] && roots[k] != 0 {
								if err := m.Store(roots[j], mem.Word(roots[k])); err != nil {
									errs[g] = err
									return
								}
							}
						}
					}
				}
			}(g, m, progs[g])
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				t.Fatalf("mutator %d: %v", g, err)
			}
		}
		w.Collect()
		w.FinishSweep()
		if err := w.VerifyIntegrity(); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, c := range counts {
			total += c
		}
		if got := w.Heap.Stats().ObjectsAllocated; got != total {
			t.Fatalf("central ObjectsAllocated = %d, mutators allocated %d", got, total)
		}
	})
}
