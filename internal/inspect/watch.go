package inspect

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Renderers for the online retention watcher (core/watch.go): one-line
// alert formatting for streaming consumers (cmd/heapdump -watch) and a
// trend-table summary for end-of-run reporting.

// LeakAlertText renders one alert as a single line:
//
//	leak: segment[0+0] @0x2000 +12288 B over 12 cycles (conf 1.00, 1024 B/cycle, now 49152 B / 384 objs) via segment[0+0] @0x2000 -> 0x4a000
func LeakAlertText(a core.LeakAlert) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "leak: %s %+d B over %d cycles (conf %.2f, %.0f B/cycle, now %d B / %d objs)",
		a.Key, a.GrowthBytes, a.Cycles, a.Confidence, a.EWMABytesPerCycle,
		a.LastBytes, a.LastObjects)
	if a.SampleWhyLivePath != "" {
		fmt.Fprintf(&sb, " via %s", a.SampleWhyLivePath)
	}
	return sb.String()
}

// LeakTrendsText renders a trend series (World.RetentionTrends or the
// StopRetentionWatch result) as an aligned table, one key per line,
// alerted keys flagged with a leading '!'.
func LeakTrendsText(trends []core.LeakTrend) string {
	if len(trends) == 0 {
		return "leak trends: (none)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "leak trends (%d keys):\n", len(trends))
	for _, t := range trends {
		flag := ' '
		if t.Alerted {
			flag = '!'
		}
		fmt.Fprintf(&sb, "%c %-40s %8d B %6d objs  growth %+8d B/%d cycles  conf %.2f  ewma %7.0f B/cycle  high %d B\n",
			flag, t.Key, t.LastBytes, t.LastObjects,
			t.GrowthBytes, t.WindowCycles, t.Confidence, t.EWMABytesPerCycle,
			t.HighWaterBytes)
	}
	return sb.String()
}
