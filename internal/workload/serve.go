package workload

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/simrand"
)

// Request-driven tenant sessions for the multi-tenant serving
// experiment (servebench.go, DESIGN.md section 5i). A session is one
// tenant's request loop against its own Mutator handle and a private
// range of root slots; the bodies are scaled-down versions of the
// example programs — ServeScheme is the minischeme-style churn (cons
// cells allocated, linked, and dropped as evaluation frames retire)
// and ServeLeak is the leakdetective-style accumulator (every object
// stays rooted, so a budgeted tenant must eventually hit its
// over-budget policy).

// ServeKind selects a session body.
type ServeKind int

const (
	// ServeScheme allocates into rotating root slots, overwriting old
	// roots as it goes: steady-state live set of at most Slots objects,
	// the rest reclaimable garbage. A collect-first tenant with a
	// budget above Slots objects never sees a denial.
	ServeScheme ServeKind = iota
	// ServeLeak allocates into consecutive root slots and never drops
	// one: live bytes grow monotonically until the budget policy acts
	// (denial for fail tenants, eviction for evict tenants).
	ServeLeak
)

func (k ServeKind) String() string {
	if k == ServeLeak {
		return "leak"
	}
	return "scheme"
}

// ServeSessionParams scripts one session.
type ServeSessionParams struct {
	Kind ServeKind
	// Requests is how many requests the session serves; each request
	// performs AllocsPerRequest allocations of ObjWords words.
	Requests         int
	AllocsPerRequest int
	ObjWords         int
	// Slots is the session's root-slot count; the session owns the
	// addresses [Base, Base+Slots*4).
	Slots int
	// Seed drives the deterministic request mix (linking and unrooting
	// decisions; allocation order is fixed).
	Seed uint64
	// Links lets scheme sessions chain fresh objects to earlier ones.
	// Chains keep overwritten roots reachable, so a linked session's
	// worst-case live set is its whole allocation history — leave false
	// where an experiment's budget math assumes live <= Slots objects.
	Links bool
}

// WithDefaults fills zero fields with the standard session shape.
func (p ServeSessionParams) WithDefaults() ServeSessionParams {
	if p.Requests == 0 {
		p.Requests = 8
	}
	if p.AllocsPerRequest == 0 {
		p.AllocsPerRequest = 4
	}
	if p.ObjWords == 0 {
		p.ObjWords = 8
	}
	if p.Slots == 0 {
		p.Slots = 16
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// ServeSessionResult is one session's outcome.
type ServeSessionResult struct {
	// Allocated counts successful allocations; Denials counts
	// allocations denied with a budget error. Allocated+Denials+
	// (1 if Evicted) equals the attempts made before any stop.
	Allocated uint64
	Denials   uint64
	// Evicted/Cancelled report that the session stopped early because
	// its tenant was reclaimed or cancelled.
	Evicted   bool
	Cancelled bool
	// AllocNs holds one wall-clock sample per allocation attempt
	// (successes and denials both — a denial's latency is the cost the
	// tenant observed).
	AllocNs []int64
}

// RunServeSession drives one session to completion. Budget denials and
// eviction are expected outcomes recorded in the result; any other
// allocation failure is returned as an error. The caller owns the root
// slots [base, base+Slots*4) of data.
func RunServeSession(m *core.Mutator, data *mem.Segment, base mem.Addr, p ServeSessionParams) (*ServeSessionResult, error) {
	p = p.WithDefaults()
	rng := simrand.New(p.Seed)
	res := &ServeSessionResult{AllocNs: make([]int64, 0, p.Requests*p.AllocsPerRequest)}
	slot := 0
	for r := 0; r < p.Requests; r++ {
		for a := 0; a < p.AllocsPerRequest; a++ {
			at := base + mem.Addr(4*(slot%p.Slots))
			t0 := time.Now()
			ptr, err := m.AllocateRooted(data, at, p.ObjWords, false)
			res.AllocNs = append(res.AllocNs, time.Since(t0).Nanoseconds())
			if err != nil {
				switch {
				case errors.Is(err, core.ErrTenantEvicted):
					res.Evicted = true
					return res, nil
				case errors.Is(err, core.ErrTenantCancelled):
					res.Cancelled = true
					return res, nil
				case errors.Is(err, core.ErrBudgetExceeded):
					res.Denials++
					continue
				default:
					return res, fmt.Errorf("workload: serve session: request %d: %w", r, err)
				}
			}
			res.Allocated++
			slot++
			// Linked scheme bodies occasionally chain the fresh object to
			// the previous root, mimicking cons-cell chains; the store is
			// to an owned, just-rooted object.
			if p.Links && p.Kind == ServeScheme && slot > 1 && rng.Bool(0.25) {
				prev := base + mem.Addr(4*((slot-2)%p.Slots))
				v, err := m.Load(prev)
				if err != nil {
					return res, err
				}
				if v != 0 {
					if err := m.Store(ptr, v); err != nil {
						return res, err
					}
				}
			}
		}
		// Scheme sessions retire the request's frame: drop a random root
		// so the steady-state live set stays bounded. Leak sessions keep
		// everything.
		if p.Kind == ServeScheme && rng.Bool(0.5) {
			j := rng.Intn(p.Slots)
			if err := m.Store(base+mem.Addr(4*j), 0); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}
