package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/blacklist"
	"repro/internal/machine"
	"repro/internal/mark"
	"repro/internal/mem"
)

// buildParallelWorld constructs a world with the given worker count and
// a deterministic mixed workload: rooted chains, dead garbage, a wide
// fan-out, atomic objects, register roots, and near-heap junk in the
// static segment. Returns the world and every allocated address.
func buildParallelWorld(t *testing.T, cfg Config) (*World, []mem.Addr) {
	t.Helper()
	cfg.GCDivisor = -1
	if cfg.Blacklisting == 0 {
		cfg.Blacklisting = BlacklistDense
	}
	if cfg.InitialHeapBytes == 0 {
		cfg.InitialHeapBytes = 4 << 20
	}
	w := newWorld(t, cfg)
	m := withMachine(t, w, machine.Config{})
	data := addData(t, w, "data", 0x2000, 64*1024)
	var objs []mem.Addr
	allocObj := func(words int, atomic bool) mem.Addr {
		p, err := w.Allocate(words, atomic)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, p)
		return p
	}
	slot := 0
	root := func(v mem.Word) {
		data.Store(0x2000+mem.Addr(slot*mem.WordBytes), v)
		slot++
	}
	for c := 0; c < 16; c++ {
		var head mem.Addr
		for i := 0; i < 80; i++ {
			n := allocObj(4, false)
			w.Store(n, mem.Word(head))
			head = n
			if i%3 == 0 {
				allocObj(3, false) // dead
			}
		}
		root(mem.Word(head))
	}
	fan := allocObj(2000, false)
	for i := 0; i < 2000; i++ {
		leaf := allocObj(2, false)
		w.Store(fan+mem.Addr(i*mem.WordBytes), mem.Word(leaf))
	}
	root(mem.Word(fan))
	for i := 0; i < 4; i++ {
		root(mem.Word(allocObj(16, true))) // atomic
	}
	// Register roots: a live object and a near-heap junk value.
	m.SetGlobal(1, mem.Word(allocObj(8, false)))
	m.SetGlobal(2, mem.Word(w.Heap.Limit()+0x40))
	// Static near-heap junk: blacklisted by the collection.
	root(mem.Word(w.Heap.Limit() - 2))
	root(mem.Word(w.Heap.Limit() + 0x200))
	return w, objs
}

// denseGranules extracts the blacklisted granules, which must match
// across worker counts.
func denseGranules(t *testing.T, w *World) []mem.Addr {
	t.Helper()
	d, ok := w.Blacklist.(*blacklist.Dense)
	if !ok {
		t.Fatalf("blacklist is %T, want *Dense", w.Blacklist)
	}
	return d.Granules()
}

func survivors(w *World, objs []mem.Addr) []bool {
	out := make([]bool, len(objs))
	for i, p := range objs {
		out[i] = w.Heap.IsAllocated(p)
	}
	return out
}

func TestParallelCollectMatchesSerial(t *testing.T) {
	type outcome struct {
		mark  mark.Stats
		live  uint64
		freed uint64
		surv  []bool
		bl    []mem.Addr
	}
	run := func(workers int) outcome {
		w, objs := buildParallelWorld(t, Config{MarkWorkers: workers})
		st := w.Collect()
		return outcome{
			mark:  st.Mark,
			live:  st.Sweep.ObjectsLive,
			freed: st.Sweep.ObjectsFreed,
			surv:  survivors(w, objs),
			bl:    denseGranules(t, w),
		}
	}
	want := run(1)
	if want.mark.ObjectsMarked == 0 || want.freed == 0 || len(want.bl) == 0 {
		t.Fatalf("workload not exercising enough: %+v", want.mark)
	}
	for _, n := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			got := run(n)
			if got.mark != want.mark {
				t.Errorf("mark stats diverge:\nserial   %+v\nparallel %+v", want.mark, got.mark)
			}
			if got.live != want.live || got.freed != want.freed {
				t.Errorf("sweep diverges: live %d/%d freed %d/%d",
					got.live, want.live, got.freed, want.freed)
			}
			for i := range want.surv {
				if got.surv[i] != want.surv[i] {
					t.Fatalf("object %d survival = %v, serial %v", i, got.surv[i], want.surv[i])
				}
			}
			if len(got.bl) != len(want.bl) {
				t.Fatalf("blacklist granules %d, serial %d", len(got.bl), len(want.bl))
			}
			for i := range want.bl {
				if got.bl[i] != want.bl[i] {
					t.Fatalf("blacklist granule %d diverges", i)
				}
			}
		})
	}
}

func TestParallelMinorCollectMatchesSerial(t *testing.T) {
	// Generational: full cycle establishes the old generation, mutation
	// through the write barrier creates old-to-young edges, then a minor
	// cycle runs with dirty-block rescans sharded across workers. The
	// marked set, promotion count and byte totals must match serial;
	// scan-effort counters (FieldsScanned, Candidates) legitimately may
	// not, since racing rescans can scan an object twice.
	type outcome struct {
		promoted uint64
		bytes    uint64
		surv     []bool
		bl       []mem.Addr
	}
	run := func(workers int) outcome {
		w, objs := buildParallelWorld(t, Config{
			MarkWorkers:  workers,
			Generational: true,
			MinorDivisor: -1,
		})
		w.Collect()
		// Young objects reachable only through old ones, via the barrier.
		old := objs[0]
		for i := 0; i < 64; i++ {
			p, err := w.Allocate(4, false)
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, p)
			if err := w.Store(old+mem.Addr((i%4)*mem.WordBytes), mem.Word(p)); err != nil {
				t.Fatal(err)
			}
			old = p
		}
		// Young garbage too.
		for i := 0; i < 200; i++ {
			p, err := w.Allocate(4, false)
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, p)
		}
		st := w.CollectMinor()
		if !st.Minor || st.DirtyBlocks == 0 {
			t.Fatalf("minor cycle not exercised: %+v", st)
		}
		return outcome{
			promoted: st.Promoted,
			bytes:    st.Mark.BytesMarked,
			surv:     survivors(w, objs),
			bl:       denseGranules(t, w),
		}
	}
	want := run(1)
	if want.promoted == 0 {
		t.Fatal("no promotions in the serial run")
	}
	for _, n := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			got := run(n)
			if got.promoted != want.promoted || got.bytes != want.bytes {
				t.Errorf("promoted %d/%d, bytes %d/%d",
					got.promoted, want.promoted, got.bytes, want.bytes)
			}
			for i := range want.surv {
				if got.surv[i] != want.surv[i] {
					t.Fatalf("object %d survival = %v, serial %v", i, got.surv[i], want.surv[i])
				}
			}
			if len(got.bl) != len(want.bl) {
				t.Fatalf("blacklist granules %d, serial %d", len(got.bl), len(want.bl))
			}
		})
	}
}

func TestParallelMarkOnlyMatchesSerial(t *testing.T) {
	w1, _ := buildParallelWorld(t, Config{MarkWorkers: 1})
	wantObjs, wantBytes := w1.MarkOnly()
	for _, n := range []int{2, 4} {
		wn, _ := buildParallelWorld(t, Config{MarkWorkers: n})
		objs, bytes := wn.MarkOnly()
		if objs != wantObjs || bytes != wantBytes {
			t.Fatalf("workers=%d MarkOnly = %d, %d; serial %d, %d",
				n, objs, bytes, wantObjs, wantBytes)
		}
	}
}

func TestMarkWorkersDefaultIsAdaptive(t *testing.T) {
	w := newWorld(t, Config{})
	if w.cfg.MarkWorkers != 0 {
		t.Fatalf("default MarkWorkers = %d, want 0 (adaptive)", w.cfg.MarkWorkers)
	}
	if w.par != nil {
		t.Fatal("fresh world built a parallel marker eagerly")
	}
	// A fresh world has no measured live bytes, so the adaptive pick is
	// serial regardless of GOMAXPROCS: parallel coordination on an empty
	// heap would be pure overhead.
	if got := w.effectiveMarkWorkers(); got != 1 {
		t.Fatalf("fresh world effectiveMarkWorkers = %d, want 1", got)
	}
	w.Collect()
	if w.lastMarkWorkers != 1 {
		t.Fatalf("first cycle used %d workers, want 1", w.lastMarkWorkers)
	}
	if w.par != nil {
		t.Fatal("serial first cycle built a parallel marker")
	}
}

func TestAutoMarkWorkersTable(t *testing.T) {
	const mib = 1 << 20
	cases := []struct {
		procs int
		live  uint64
		want  int
	}{
		// Uniprocessor: always serial.
		{1, 1 << 30, 1},
		{0, 1 << 30, 1},
		// Tiny live heaps mark serially on any machine.
		{16, 0, 1},
		{16, 8*mib - 1, 1},
		// Bands: <32MiB -> 2, <128MiB -> 4, else 8 — each capped by procs.
		{16, 8 * mib, 2},
		{16, 32*mib - 1, 2},
		{2, 16 * mib, 2},
		{16, 32 * mib, 4},
		{16, 128*mib - 1, 4},
		{3, 64 * mib, 3},
		{16, 128 * mib, 8},
		{16, 1 << 30, 8},
		{6, 1 << 30, 6},
		{64, 1 << 32, 8},
	}
	for _, c := range cases {
		if got := AutoMarkWorkers(c.procs, c.live); got != c.want {
			t.Errorf("AutoMarkWorkers(%d, %d) = %d, want %d", c.procs, c.live, got, c.want)
		}
	}
}

func TestAdaptiveMarkWorkersRebuild(t *testing.T) {
	// Grow the live heap across the adaptive bands and check the world
	// rebuilds its parallel marker at the matching widths, with stats
	// identical to a pinned-serial world's.
	prev := runtime.GOMAXPROCS(4) // the selection reads GOMAXPROCS, not nproc
	defer runtime.GOMAXPROCS(prev)
	w := newWorld(t, Config{InitialHeapBytes: 64 << 20, ReserveHeapBytes: 128 << 20, GCDivisor: -1})
	var keep []mem.Addr
	// ~12 MiB live: inside the [8MiB, 32MiB) band -> 2 workers.
	for i := 0; i < 3*1024; i++ {
		p, err := w.Allocate(1024, false)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		keep = append(keep, p)
	}
	root := rootHolder{addrs: keep}
	w.SetMutator(&root)
	w.Collect() // first cycle: serial (live estimate still 0)
	if w.lastMarkWorkers != 1 {
		t.Fatalf("first cycle used %d workers, want 1", w.lastMarkWorkers)
	}
	st := w.Collect() // live estimate now ~12MiB -> the 2-worker band
	if w.lastMarkWorkers < 2 {
		t.Fatalf("second cycle used %d workers, want >= 2", w.lastMarkWorkers)
	}
	if w.par == nil || w.parWorkers != w.lastMarkWorkers {
		t.Fatalf("parallel marker not cached at the used width: par=%v workers=%d used=%d",
			w.par != nil, w.parWorkers, w.lastMarkWorkers)
	}
	if st.Mark.ObjectsMarked != uint64(len(keep)) {
		t.Fatalf("adaptive cycle marked %d objects, want %d", st.Mark.ObjectsMarked, len(keep))
	}
}

// rootHolder is a minimal RootSource pinning addresses via registers.
type rootHolder struct{ addrs []mem.Addr }

func (r *rootHolder) Registers() []mem.Word {
	regs := make([]mem.Word, len(r.addrs))
	for i, a := range r.addrs {
		regs[i] = mem.Word(a)
	}
	return regs
}
func (r *rootHolder) LiveStack() ([]mem.Word, mem.Addr) { return nil, 0 }
func (r *rootHolder) OnAllocate()                       {}
