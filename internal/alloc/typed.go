package alloc

import (
	"fmt"

	"repro/internal/mem"
)

// Typed allocation: the paper's introduction notes that conservative
// systems "vary greatly in their degree of conservativism, i.e. in how
// much information about data structure layout they maintain. Some
// maintain complete information on the location of pointers in the
// heap, and only scan the stack conservatively." This file provides
// that operating point (the real collector's GC_malloc_explicitly_typed):
// objects allocated against a registered layout descriptor have only
// their pointer fields scanned, eliminating misidentification from
// non-pointer fields entirely.
//
// Like the real collector, typed objects of the same size but different
// descriptors never share a block: the descriptor is block metadata.

// DescID identifies a registered layout descriptor.
type DescID int32

// Reserved pseudo-descriptors stored in blockDesc.desc.
const (
	descConservative DescID = -1 // every word is a potential pointer
	descAtomic       DescID = -2 // no word is a pointer
)

// Descriptor is a registered object layout: Words is the object size,
// and bit i of Pointers (LSB-first across the slice) is set when word i
// may hold a pointer.
type Descriptor struct {
	Words    int
	Pointers []uint64
}

// PointerAt reports whether word i may hold a pointer.
func (d Descriptor) PointerAt(i int) bool {
	return i < d.Words && d.Pointers[i>>6]&(1<<(uint(i)&63)) != 0
}

// RegisterDescriptor registers a layout given as a per-word pointer
// mask and returns its id. Identical layouts may be registered more
// than once; each registration gets its own id (and thus its own
// blocks), which keeps the implementation simple and matches typical
// per-type registration in clients.
func (a *Allocator) RegisterDescriptor(ptrMask []bool) (DescID, error) {
	if len(ptrMask) == 0 || len(ptrMask) > MaxSmallWords {
		return 0, fmt.Errorf("alloc: descriptor of %d words out of range", len(ptrMask))
	}
	d := Descriptor{
		Words:    len(ptrMask),
		Pointers: make([]uint64, (len(ptrMask)+63)/64),
	}
	for i, isPtr := range ptrMask {
		if isPtr {
			d.Pointers[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	a.descriptors = append(a.descriptors, d)
	return DescID(len(a.descriptors) - 1), nil
}

// Descriptor returns the registered descriptor for id.
func (a *Allocator) Descriptor(id DescID) (Descriptor, error) {
	if id < 0 || int(id) >= len(a.descriptors) {
		return Descriptor{}, fmt.Errorf("alloc: unknown descriptor %d", id)
	}
	return a.descriptors[id], nil
}

// AllocTyped allocates an object with the given registered layout. The
// collector will scan exactly the descriptor's pointer words.
func (a *Allocator) AllocTyped(id DescID) (mem.Addr, error) {
	d, err := a.Descriptor(id)
	if err != nil {
		return 0, err
	}
	class, words := ClassFor(d.Words)
	key := typedKey{class: class, desc: id}
	if a.typedFree[key] == 0 {
		if err := a.refillTyped(class, words, id, key); err != nil {
			return 0, err
		}
	}
	p := a.typedFree[key]
	next, err := a.loadWord(p)
	if err != nil {
		return 0, fmt.Errorf("alloc: corrupt typed free list: %v", err)
	}
	a.typedFree[key] = mem.Addr(next)
	if err := a.storeWord(p, 0); err != nil {
		return 0, err
	}
	bi := a.blockIndex(p)
	b := &a.blocks[bi]
	slot := int(p-a.blockBase(bi)) / (words * mem.WordBytes)
	bitSet(b.allocBits, slot)
	b.liveSlots++
	a.stats.ObjectsAllocated++
	a.stats.BytesAllocated += uint64(words * mem.WordBytes)
	a.stats.BytesSinceGC += uint64(words * mem.WordBytes)
	return p, nil
}

// refillTyped replenishes the (class, descriptor) free list, first by
// sweeping pending blocks of the same layout, then by dedicating and
// threading a fresh block.
func (a *Allocator) refillTyped(class, words int, id DescID, key typedKey) error {
	if q, ok := a.sweepPendingTyped[key]; ok && len(q) > 0 {
		for a.typedFree[key] == 0 {
			bi, ok := a.popPending(&q)
			if !ok {
				break
			}
			a.sweepBlock(bi)
		}
		a.sweepPendingTyped[key] = q
		if a.typedFree[key] != 0 {
			return nil
		}
	}
	bi, ok := a.acquireSpan(1, false)
	if !ok {
		return ErrNeedMemory
	}
	nslots := slotsPerBlock(words)
	nbitWords := (nslots + 63) / 64
	a.blocks[bi] = blockDesc{
		state:     blockSmall,
		class:     uint8(class),
		desc:      id,
		objWords:  int32(words),
		allocBits: make([]uint64, nbitWords),
		markBits:  make([]uint64, nbitWords),
	}
	base := a.blockBase(bi)
	hw := a.blockWords(bi)
	for i := range hw {
		hw[i] = 0
	}
	head := a.typedFree[key]
	for slot := nslots - 1; slot >= a.firstSlot(words); slot-- {
		p := base + mem.Addr(slot*words*mem.WordBytes)
		hw[slot*words] = mem.Word(head)
		head = p
	}
	a.typedFree[key] = head
	return nil
}

// ScanKind tells the marker how to scan an object's contents.
type ScanKind int

// Scan kinds.
const (
	// ScanConservative treats every word as a candidate pointer.
	ScanConservative ScanKind = iota
	// ScanAtomic scans nothing.
	ScanAtomic
	// ScanTyped scans only the descriptor's pointer words.
	ScanTyped
)

// ScanInfo returns how to scan the object at base: its size, scan kind,
// and (for ScanTyped) the layout descriptor.
func (a *Allocator) ScanInfo(base mem.Addr) (words int, kind ScanKind, desc Descriptor) {
	b := &a.blocks[a.blockIndex(base)]
	words = int(b.objWords)
	switch {
	case b.atomic:
		kind = ScanAtomic
	case b.state == blockSmall && b.desc >= 0:
		kind = ScanTyped
		desc = a.descriptors[b.desc]
	default:
		kind = ScanConservative
	}
	return words, kind, desc
}
