package repro

import (
	"repro/internal/stats"
	"repro/internal/workload"
)

// StackClearRow is one configuration of the section-3.1 experiment
// (E5): the list-reversal program under a stack-hygiene strategy.
type StackClearRow struct {
	Label        string
	Mode         ReverseMode
	Clear        ClearPolicy
	SelfClean    bool // allocator clears its own frame
	MaxLiveCells uint64
	EndLiveCells uint64
	Collections  int
}

// StackClearOptions configures the experiment.
type StackClearOptions struct {
	ListLen    int // default 1000, as in the paper
	Iterations int // default 1000
	Seed       uint64
}

// StackClearing reproduces section 3.1's measurements: "a simple
// program (compiled unoptimized on a SPARC) that recursively and
// nondestructively reverses a 1000 element list 1000 times resulted in
// a maximum of between 40,000 and 100,000 apparently accessible
// cons-cells at one point. With a very cheap stack-clearing algorithm
// added, we never saw the maximum exceed 18,000... The optimized
// version of the program never resulted in many more than 2000
// cons-cells".
func StackClearing(opt StackClearOptions) ([]StackClearRow, *stats.Table, error) {
	if opt.ListLen == 0 {
		opt.ListLen = 1000
	}
	if opt.Iterations == 0 {
		opt.Iterations = 1000
	}

	configs := []struct {
		label     string
		mode      ReverseMode
		clear     ClearPolicy
		selfClean bool
	}{
		{"unoptimized, no clearing", ReverseRecursive, ClearNone, false},
		{"unoptimized, cheap clearing", ReverseRecursive, ClearCheap, true},
		{"unoptimized, eager clearing", ReverseRecursive, ClearEager, true},
		{"optimized (tail call -> loop)", ReverseLoop, ClearNone, false},
	}
	var rows []StackClearRow
	for _, cfg := range configs {
		w, err := NewWorld(Config{
			InitialHeapBytes:   2 << 20,
			ReserveHeapBytes:   32 << 20,
			GCDivisor:          3,
			Pointer:            PointerBase,
			AllocatorResidue:   true,
			AllocatorSelfClean: cfg.selfClean,
		})
		if err != nil {
			return nil, nil, err
		}
		m, err := NewMachine(w, MachineConfig{
			StackTop:        0xF0000000,
			StackBytes:      2 << 20,
			FrameSlopWords:  12,
			RegisterWindows: true,
			Clear:           cfg.clear,
			ClearChunkWords: 24,
			ClearFullEvery:  4096,
			Seed:            opt.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		res, err := workload.RunReversal(w, m, ReverseParams{
			ListLen:    opt.ListLen,
			Iterations: opt.Iterations,
			Mode:       cfg.mode,
			Seed:       opt.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, StackClearRow{
			Label:        cfg.label,
			Mode:         cfg.mode,
			Clear:        cfg.clear,
			SelfClean:    cfg.selfClean,
			MaxLiveCells: res.MaxLiveCells,
			EndLiveCells: res.EndLiveCells,
			Collections:  res.Collections,
		})
	}

	tab := stats.NewTable("Section 3.1: apparently accessible cons cells during list reversal",
		"Configuration", "Max live cells", "Live at end", "Collections")
	for _, r := range rows {
		tab.AddF(r.Label, r.MaxLiveCells, r.EndLiveCells, r.Collections)
	}
	return rows, tab, nil
}
