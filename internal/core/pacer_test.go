package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func findMetric(t *testing.T, samples []metrics.Sample, name string) metrics.Sample {
	t.Helper()
	for _, s := range samples {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("metric %q not registered", name)
	return metrics.Sample{}
}

func countPacerEvents(rec *trace.Recorder) int {
	n := 0
	for _, ev := range rec.Events() {
		if ev.Kind == trace.EvPacerAssist {
			n++
		}
	}
	return n
}

// TestPacerAssistAccounting pins the rate-based assist deterministically:
// ConcMarkWorkers is 1 (lock-chunked, no detached workers) and the cycle
// is started explicitly (no background driver goroutine), so the only
// thing crediting or debiting the pacer is this test's own allocations.
// An allocation burst against the open cycle must run proportional
// assists (trace events + pacer_assist_ns), and allocations outside a
// cycle must run none.
func TestPacerAssistAccounting(t *testing.T) {
	w := newWorld(t, Config{ConcurrentMark: true, ConcMarkWorkers: 1, GCDivisor: -1})
	rec := w.EnableTracing(0)
	data := addData(t, w, "data", 0x2000, 4096)

	// Root a chain of large objects so the cycle has real marking work
	// for assists to pull.
	var prev mem.Addr
	for i := 0; i < 64; i++ {
		p, err := w.Allocate(128, false)
		if err != nil {
			t.Fatal(err)
		}
		if prev == 0 {
			if err := data.Store(0x2000, mem.Word(p)); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := w.Store(prev, mem.Word(p)); err != nil {
				t.Fatal(err)
			}
		}
		prev = p
	}

	if err := w.StartConcurrentCycle(); err != nil {
		t.Fatal(err)
	}
	// Burst: every slow-path allocation while the cycle is open debits
	// the pacer by bytes*ratio. The first allocation after the snapshot
	// carries no debt (delta accounting starts at the snapshot cursor),
	// so from the second onwards the debt is positive until assists
	// repay it. Assert at least one assist fired, not an exact count —
	// how much one chunk credits depends on object scan order.
	for i := 0; i < 16; i++ {
		if _, err := w.Allocate(600, false); err != nil {
			t.Fatal(err)
		}
	}
	burstAssists := countPacerEvents(rec)
	if burstAssists < 1 {
		t.Fatalf("allocation burst against an open cycle ran %d assists, want >= 1", burstAssists)
	}
	if s := findMetric(t, w.MetricsSnapshot(), "pacer_assist_ns"); s.Kind != "counter" {
		t.Fatalf("pacer_assist_ns registered as %q, want counter", s.Kind)
	}
	findMetric(t, w.MetricsSnapshot(), "pacer_credit_bytes")

	for steps := 0; !w.ConcurrentStep(16); steps++ {
		if steps > 1_000_000 {
			t.Fatal("cycle did not terminate")
		}
	}

	// Idle: no cycle active, so allocations must not assist at all.
	after := countPacerEvents(rec)
	for i := 0; i < 16; i++ {
		if _, err := w.Allocate(600, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := countPacerEvents(rec); got != after {
		t.Fatalf("allocations outside a cycle emitted %d assist events", got-after)
	}
}

// TestPacerCreditSuppressesAssist pins the other direction: when marking
// is already ahead of allocation (the whole gray set drained before the
// mutator allocates), the accrued credit covers the allocation debt and
// the slow path never assists.
func TestPacerCreditSuppressesAssist(t *testing.T) {
	w := newWorld(t, Config{ConcurrentMark: true, ConcMarkWorkers: 1, GCDivisor: -1})
	rec := w.EnableTracing(0)
	data := addData(t, w, "data", 0x2000, 4096)
	p, err := w.Allocate(600, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.Store(0x2000, mem.Word(p)); err != nil {
		t.Fatal(err)
	}
	if err := w.StartConcurrentCycle(); err != nil {
		t.Fatal(err)
	}
	// Mark the 2400-byte root up front: its credit far exceeds the
	// debt the small allocations below accrue, so none of them assists.
	w.ConcurrentStep(16)
	for i := 0; i < 16; i++ {
		if _, err := w.Allocate(2, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := countPacerEvents(rec); got != 0 {
		t.Fatalf("mutator allocating behind a healthy mark phase saw %d assist events, want 0", got)
	}
	for steps := 0; !w.ConcurrentStep(16); steps++ {
		if steps > 1_000_000 {
			t.Fatal("cycle did not terminate")
		}
	}
}
