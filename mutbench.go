package repro

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/stats"
)

// MutBenchOptions parameterises the concurrent-mutator throughput
// measurement.
type MutBenchOptions struct {
	Mutators []int // mutator counts to measure; default powers of two up to GOMAXPROCS
	Allocs   int   // allocations per mutator (default 40000)
	// Trace, when non-nil, records collector events (safepoints, cache
	// refills, cycles) from every measured world (cmd/gcbench -trace).
	Trace *TraceRecorder
}

// MutBenchRow is one mutator count's measurement.
type MutBenchRow struct {
	Mutators     int     `json:"mutators"`
	NsPerAlloc   float64 `json:"ns_per_alloc"`
	AllocsPerSec float64 `json:"allocs_per_sec"`
	// ObjectsAllocated is deterministic — every goroutine performs
	// exactly Allocs allocations — so the regression gate checks it
	// exactly: a missed cache flush or double-carve breaks conservation
	// and shows up here or in the world's integrity audit.
	ObjectsAllocated uint64 `json:"objects_allocated"`
	// FastFraction is the share of allocations served from per-mutator
	// caches without the central lock. Collections and StwStops are
	// informational: automatic triggers depend on goroutine
	// interleaving, so the gate does not compare them.
	FastFraction float64 `json:"fast_fraction"`
	Collections  int     `json:"collections"`
	// Speedup is serial throughput over this row's — only meaningful
	// with real cores, so oversubscribed rows (more mutators than
	// GOMAXPROCS) report 0, as in MarkBench.
	Speedup        float64 `json:"speedup_vs_serial"`
	Oversubscribed bool    `json:"oversubscribed"`
	// GoMaxProcs records the scheduler width the row ran under; the
	// regression gate treats timing columns as advisory when baseline
	// and candidate rows disagree here.
	GoMaxProcs int `json:"gomaxprocs"`
}

// MutBenchResult is the full measurement with the environment it ran
// in.
type MutBenchResult struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	Allocs     int           `json:"allocs_per_mutator"`
	Rows       []MutBenchRow `json:"rows"`
}

// MutBench measures allocation throughput against the mutator count:
// every goroutine churns through the same per-goroutine allocation
// script (mostly garbage, every eighth object rooted in its private
// data slot), so contention on the central lock and safepoint stops
// are the only things that change between rows.
func MutBench(opts MutBenchOptions) (*MutBenchResult, *stats.Table, error) {
	if len(opts.Mutators) == 0 {
		for n := 1; n <= runtime.GOMAXPROCS(0); n *= 2 {
			opts.Mutators = append(opts.Mutators, n)
		}
	}
	if opts.Allocs == 0 {
		opts.Allocs = 40000
	}
	res := &MutBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Allocs:     opts.Allocs,
	}
	var serialNs float64
	for _, n := range opts.Mutators {
		w, err := NewWorld(Config{
			InitialHeapBytes: 16 << 20, ReserveHeapBytes: 64 << 20,
			GCDivisor: 8, LazySweep: true,
		})
		if err != nil {
			return nil, nil, err
		}
		w.SetTracer(opts.Trace)
		const slots = 8
		data, err := w.Space.MapNew("roots", KindData, 0x2000, n*slots*4, n*slots*4)
		if err != nil {
			return nil, nil, err
		}
		muts := make([]*Mutator, n)
		for g := range muts {
			muts[g] = w.NewMutator()
		}
		sizes := []int{2, 4, 8, 16}
		var wg sync.WaitGroup
		errs := make([]error, n)
		start := time.Now()
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				m := muts[g]
				base := Addr(0x2000 + g*slots*4)
				for i := 0; i < opts.Allocs; i++ {
					size := sizes[i&3]
					if i&7 == 0 {
						slot := Addr(4 * ((i >> 3) % slots))
						if _, err := m.AllocateRooted(data, base+slot, size, false); err != nil {
							errs[g] = err
							return
						}
					} else if _, err := m.Allocate(size, false); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for g, err := range errs {
			if err != nil {
				return nil, nil, fmt.Errorf("mutbench: mutator %d: %w", g, err)
			}
		}
		// The final collection publishes every handle's counters; the
		// integrity audit would catch a double-carved or leaked slot.
		w.Collect()
		if err := w.VerifyIntegrity(); err != nil {
			return nil, nil, fmt.Errorf("mutbench: %w", err)
		}
		total := uint64(n * opts.Allocs)
		if got := w.Heap.Stats().ObjectsAllocated; got != total {
			return nil, nil, fmt.Errorf("mutbench: %d objects allocated centrally, mutators performed %d", got, total)
		}
		var fast uint64
		for _, m := range muts {
			fast += m.Stats().FastAllocs
		}
		ns := float64(elapsed.Nanoseconds()) / float64(total)
		if n == 1 {
			serialNs = ns
		}
		over := n > res.GoMaxProcs
		speedup := 0.0
		if serialNs > 0 && !over {
			speedup = serialNs / ns
		}
		res.Rows = append(res.Rows, MutBenchRow{
			Mutators:         n,
			NsPerAlloc:       ns,
			AllocsPerSec:     1e9 / ns,
			ObjectsAllocated: total,
			FastFraction:     float64(fast) / float64(total),
			Collections:      w.Collections(),
			Speedup:          speedup,
			Oversubscribed:   over,
			GoMaxProcs:       runtime.GOMAXPROCS(0),
		})
	}
	tab := stats.NewTable(
		fmt.Sprintf("Concurrent mutator throughput (%d allocs each, GOMAXPROCS=%d, NumCPU=%d)",
			opts.Allocs, res.GoMaxProcs, res.NumCPU),
		"mutators", "ns/alloc", "Mallocs/s", "fast%", "collections", "speedup")
	for _, r := range res.Rows {
		speedup := fmt.Sprintf("%.2fx", r.Speedup)
		if r.Oversubscribed {
			speedup = "n/a (oversubscribed)"
		}
		tab.AddF(r.Mutators,
			fmt.Sprintf("%.1f", r.NsPerAlloc),
			fmt.Sprintf("%.2f", r.AllocsPerSec/1e6),
			fmt.Sprintf("%.1f", r.FastFraction*100),
			r.Collections,
			speedup)
	}
	return res, tab, nil
}
