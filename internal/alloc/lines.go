package alloc

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Line-structured allocation (Config.LineAlloc), after the block/line
// heap organisation of Immix-style collectors (see PAPERS.md, Nofl):
// each small-object block is partitioned into fixed-size lines, and
// instead of threading free slots into per-class linked lists the
// sweep classifies blocks by line occupancy. Allocation carves a
// {cursor, limit} bump span over a run of wholly-free lines and hands
// objects out by pointer increment — no heap loads or stores on the
// hot path at all, where the free-list pop costs a simulated load and
// store per object.
//
// The slot grid is unchanged: lines are a reclamation and carving
// granularity laid over the same class-sized slots, so FindObject,
// mark bitmaps and the mark summaries are untouched. A line is free
// when no allocated slot overlaps it (the per-block lineLive mask
// caches this, derived from the alloc bitmap — the mark path needs no
// line maintenance, because a marked slot always has its alloc bit
// set already). Free slots that overlap a live line are unreachable
// by bump allocation until the line's other objects die; that
// stranded space is the line-waste the paper-style space-overhead
// metric reports (LineStats).
//
// The contract that keeps allocation addresses bit-for-bit identical
// to the free-list profile on line-aligned workloads (classes whose
// slot size is a whole number of lines — 64, 128, 256 and 512 words):
//
//   - Sweep queues partially-free blocks in ascending block order and
//     carving pops from the back, exactly the order the rebuilt free
//     lists would pop blocks; within a block, runs are carved in
//     ascending address order, the order threading hands slots out.
//   - A span is carved whole (one run of free lines) and consumed by
//     ascending address; slots get their alloc bits and liveSlots
//     accounting at carve time, like AllocRun carves, with the
//     allocation stats deferred to consumption.
//   - ReturnSpan clears the unconsumed tail's bits and requeues the
//     block at the back of its class queue, so the very next carve
//     re-issues the same cursor — the analogue of ReturnRun pushing a
//     cached run back onto the list head.
//
// Every outstanding span must be returned (mutator caches via the
// safepoint flush, the central spans via FlushSpans) before a mark
// phase: span slots are allocated-but-unreachable, so marking would
// see phantom objects and the sweep after it would reclaim memory a
// mutator still holds a cursor into.

// LineWords is the line size in words (256 bytes): big enough that a
// line span amortises carving over many small objects, small enough
// that a block partitions into a useful number of reclamation units.
const LineWords = 64

// LinesPerBlock is how many lines partition one block.
const LinesPerBlock = mem.PageWords / LineWords

// lineMaskAll has one bit per line of a block.
const lineMaskAll = 1<<LinesPerBlock - 1

// Span is one carved bump run: the slots at [Cursor, Limit) in steps
// of Words*WordBytes are allocated (bits set) but not yet handed out.
type Span struct {
	Cursor, Limit mem.Addr
	Words         int
}

// slots returns how many slots the span still covers.
func (s Span) slots(words int) int {
	if s.Cursor >= s.Limit {
		return 0
	}
	return int(s.Limit-s.Cursor) / (words * mem.WordBytes)
}

// isLineBlock reports whether b is managed at line granularity: small
// untyped blocks under Config.LineAlloc. Typed blocks keep threaded
// free lists (their per-descriptor lists are shared and cold), as do
// all blocks when the profile is off.
func (a *Allocator) isLineBlock(b *blockDesc) bool {
	return a.cfg.LineAlloc && b.state == blockSmall && b.desc < 0
}

// lineIdx returns the free-list index space slot of a line block's
// class: the same (class, +NumClasses if atomic) indexing the free
// lists use, reused for the line span and partial-block queues.
func lineIdx(b *blockDesc) int {
	idx := int(b.class)
	if b.atomic {
		idx += NumClasses
	}
	return idx
}

// nextFreeRun returns the lowest maximal run [l0, l1) of set bits in
// free, which must be nonzero.
func nextFreeRun(free uint32) (l0, l1 int) {
	l0 = bits.TrailingZeros32(free)
	l1 = l0 + bits.TrailingZeros32(^(free >> uint(l0)))
	return
}

// runMask returns the mask of lines [l0, l1).
func runMask(l0, l1 int) uint32 {
	return (1<<uint(l1) - 1) &^ (1<<uint(l0) - 1)
}

// slotLines returns the mask of lines overlapped by slots [sLo, sHi)
// of a block of the given class size; sHi must exceed sLo.
func slotLines(sLo, sHi, words int) uint16 {
	lo := sLo * words / LineWords
	hi := (sHi*words - 1) / LineWords
	return uint16(runMask(lo, hi+1))
}

// lineLiveOf recomputes a block's live-line mask from its alloc
// bitmap: a line is live when any allocated slot overlaps it.
func (a *Allocator) lineLiveOf(bi int) uint16 {
	b := &a.blocks[bi]
	words := int(b.objWords)
	var lm uint16
	for wi, bw := range b.allocBits {
		for ; bw != 0; bw &= bw - 1 {
			s := wi<<6 + bits.TrailingZeros64(bw)
			lm |= slotLines(s, s+1, words)
		}
	}
	return lm
}

// requeueLineBlock puts a block back on its class's partial queue if
// it has a wholly-free line and is not queued already. Callers have
// just cleared alloc bits (ReturnSpan, Free) or swept the block.
func (a *Allocator) requeueLineBlock(bi int, b *blockDesc) {
	if b.bumpQueued || ^uint32(b.lineLive)&lineMaskAll == 0 {
		return
	}
	b.bumpQueued = true
	idx := lineIdx(b)
	a.linePartial[idx] = append(a.linePartial[idx], bi)
}

// carveRun carves the block's lowest run of free lines into a bump
// span: alloc bits set, liveSlots counted, lineLive extended — the
// stats are deferred to consumption, as with AllocRun. Runs too
// fragmented to hold a whole slot are skipped; ok is false when no
// run yields a slot. If free lines remain past the carved span the
// block goes back on the partial queue.
func (a *Allocator) carveRun(bi, idx, words int) (Span, bool) {
	b := &a.blocks[bi]
	nslots := slotsPerBlock(words)
	first := a.firstSlot(words)
	base := a.blockBase(bi)
	free := ^uint32(b.lineLive) & lineMaskAll
	for free != 0 {
		l0, l1 := nextFreeRun(free)
		free &^= runMask(l0, l1)
		sLo := (l0*LineWords + words - 1) / words
		if sLo < first {
			sLo = first
		}
		sHi := l1 * LineWords / words
		if sHi > nslots {
			sHi = nslots
		}
		if sHi <= sLo {
			continue
		}
		for s := sLo; s < sHi; s++ {
			bitSet(b.allocBits, s)
		}
		b.liveSlots += int32(sHi - sLo)
		b.lineLive |= slotLines(sLo, sHi, words)
		a.requeueLineBlock(bi, b)
		sp := Span{
			Cursor: base + mem.Addr(sLo*words*mem.WordBytes),
			Limit:  base + mem.Addr(sHi*words*mem.WordBytes),
			Words:  words,
		}
		a.tracer.Emit(trace.EvSpanRefill, int64(sp.Cursor), int64(sHi-sLo), int64(words))
		return sp, true
	}
	return Span{}, false
}

// nextSpan produces the next bump span for a class: first from the
// partial-block queue (line-sweeping lazy-pending blocks on demand,
// like refill drains sweepPending), then by dedicating a fresh block
// under the same blacklist policy as the free-list refill.
func (a *Allocator) nextSpan(class int, atomicObj bool, idx int, desperate bool) (Span, error) {
	words := classWords[class]
	for {
		q := &a.linePartial[idx]
		n := len(*q)
		if n == 0 {
			break
		}
		bi := (*q)[n-1]
		*q = (*q)[:n-1]
		b := &a.blocks[bi]
		b.bumpQueued = false
		if b.state != blockSmall {
			continue
		}
		if b.pendingSweep {
			a.sweepBlock(bi)
		}
		if sp, ok := a.carveRun(bi, idx, words); ok {
			return sp, nil
		}
	}
	anyPageOK := desperate || (atomicObj && a.cfg.AllowAtomicOnBlacklisted &&
		words <= a.cfg.AtomicBlacklistMaxWords)
	bi, ok := a.acquireSpan(1, anyPageOK)
	if !ok {
		return Span{}, ErrNeedMemory
	}
	if desperate && a.cfg.Blacklist.Contains(a.blockBase(bi)) {
		a.stats.DesperateAllocs++
		a.tracer.Emit(trace.EvDesperateAlloc, int64(a.blockBase(bi)), 0, 0)
	}
	nslots := slotsPerBlock(words)
	nbitWords := (nslots + 63) / 64
	desc := descConservative
	if atomicObj {
		desc = descAtomic
	}
	a.blocks[bi] = blockDesc{
		state:     blockSmall,
		atomic:    atomicObj,
		class:     uint8(class),
		desc:      desc,
		objWords:  int32(words),
		allocBits: make([]uint64, nbitWords),
		markBits:  make([]uint64, nbitWords),
	}
	hw := a.blockWords(bi)
	for i := range hw {
		hw[i] = 0
	}
	sp, ok := a.carveRun(bi, idx, words)
	if !ok {
		// A fresh block is one whole free run; every class fits at
		// least one slot in it.
		panic(fmt.Sprintf("alloc: fresh block %d carved no span for class %d", bi, class))
	}
	return sp, nil
}

// freeLineSlot is Free's line-profile path. The slot keeps its alloc
// bit and joins the class's freed LIFO, which allocation serves before
// any bump span — the exact analogue of the threaded list's
// push-to-head, so Free/realloc address order matches the free-list
// profile. The bit comes off at the next flush barrier (FlushSpans) if
// the slot was not re-issued by then. The body is zeroed here, link
// word included, so a re-issue hands out clean memory.
func (a *Allocator) freeLineSlot(bi int, b *blockDesc, base mem.Addr, slot, words int) error {
	idx := lineIdx(b)
	// The alloc bit alone cannot reject a double free (it stays set
	// while the slot waits on the LIFO), and a slot inside the central
	// span was never handed out; both are caller errors.
	if s := a.lineSpans[idx]; base >= s.Cursor && base < s.Limit {
		return fmt.Errorf("alloc: Free(%#x): not allocated", uint32(base))
	}
	for _, q := range a.lineFreed[idx] {
		if q == base {
			return fmt.Errorf("alloc: Free(%#x): not allocated", uint32(base))
		}
	}
	if bitGet(b.markBits, slot) {
		bitClear(b.markBits, slot)
		b.markedCount--
	}
	hw := a.blockWords(bi)
	for w := 0; w < words; w++ {
		hw[slot*words+w] = 0
	}
	a.lineFreed[idx] = append(a.lineFreed[idx], base)
	return nil
}

// popFreed serves the most recently freed slot of a class, if any.
func (a *Allocator) popFreed(idx int) (mem.Addr, bool) {
	q := a.lineFreed[idx]
	if len(q) == 0 {
		return 0, false
	}
	p := q[len(q)-1]
	a.lineFreed[idx] = q[:len(q)-1]
	return p, true
}

// allocLine is the central allocation path under LineAlloc: serve the
// freed LIFO first, then consume the class's central span by pointer
// bump, refilling it from the partial queue or a fresh block when
// exhausted. The object's memory is already zero — dead slots are
// zeroed whole by the line sweep and fresh blocks at dedication — so
// the hand-out touches no heap words.
func (a *Allocator) allocLine(class, words int, atomicObj bool, idx int, desperate bool) (mem.Addr, error) {
	objBytes := uint64(words * mem.WordBytes)
	if p, ok := a.popFreed(idx); ok {
		a.stats.ObjectsAllocated++
		a.stats.BytesAllocated += objBytes
		a.stats.BytesSinceGC += objBytes
		return p, nil
	}
	s := &a.lineSpans[idx]
	if s.Cursor >= s.Limit {
		ns, err := a.nextSpan(class, atomicObj, idx, desperate)
		if err != nil {
			return 0, err
		}
		*s = ns
	}
	p := s.Cursor
	s.Cursor += mem.Addr(words * mem.WordBytes)
	a.stats.ObjectsAllocated++
	a.stats.BytesAllocated += objBytes
	a.stats.BytesSinceGC += objBytes
	return p, nil
}

// AllocSpan carves a whole bump span of the small size class for
// nwords, for a mutator cache (core.Mutator). A non-empty central
// span is handed over first — the analogue of AllocRun popping the
// central list head, so flushed remainders are re-issued before new
// carving. Stats are deferred: the consumer counts hand-outs locally
// and publishes via CommitAllocs; ReturnSpan gives an unconsumed tail
// back. ErrNeedMemory propagates with nothing carved.
func (a *Allocator) AllocSpan(nwords int, atomicObj bool) (Span, error) {
	if !a.cfg.LineAlloc {
		return Span{}, fmt.Errorf("alloc: AllocSpan without LineAlloc")
	}
	if nwords < 1 || IsLarge(nwords) {
		return Span{}, fmt.Errorf("alloc: AllocSpan of %d words", nwords)
	}
	class, words := ClassFor(nwords)
	idx := class
	if atomicObj {
		idx += NumClasses
	}
	// Freed slots are served before spans, one-slot spans in LIFO order,
	// exactly as AllocRun would pop them off the rebuilt list head.
	if p, ok := a.popFreed(idx); ok {
		return Span{Cursor: p, Limit: p + mem.Addr(words*mem.WordBytes), Words: words}, nil
	}
	if s := a.lineSpans[idx]; s.Cursor < s.Limit {
		a.lineSpans[idx] = Span{}
		return s, nil
	}
	return a.nextSpan(class, atomicObj, idx, false)
}

// ReturnSpan gives the unconsumed tail [cursor, limit) of a carved
// span back: alloc bits cleared, liveSlots and the line mask
// recomputed, and the block requeued at the back of its class queue —
// so the next carve re-issues exactly this cursor, as ReturnRun's
// push-to-head does for cached runs. It returns the slot count
// returned. Stats are untouched (the slots were never counted).
func (a *Allocator) ReturnSpan(cursor, limit mem.Addr) int {
	if cursor >= limit {
		return 0
	}
	bi := a.blockIndex(cursor)
	b := &a.blocks[bi]
	words := int(b.objWords)
	slotBytes := words * mem.WordBytes
	n := int(limit-cursor) / slotBytes
	s0 := int(cursor-a.blockBase(bi)) / slotBytes
	for i := 0; i < n; i++ {
		bitClear(b.allocBits, s0+i)
		// Drop any mark bit too (born-grey carves and conservative
		// mid-cycle hits both set them): a returned slot must not count
		// toward markedCount, which sweeps treat as the live survey.
		if bitGet(b.markBits, s0+i) {
			bitClear(b.markBits, s0+i)
			b.markedCount--
		}
	}
	b.liveSlots -= int32(n)
	b.lineLive = a.lineLiveOf(bi)
	a.requeueLineBlock(bi, b)
	return n
}

// FlushSpans returns every central bump span, so no carved-but-unissued
// slot survives into a mark phase (the collector calls it wherever it
// finishes deferred sweeps; see the package comment above). It returns
// the number of slots returned; a no-op without LineAlloc or with no
// outstanding spans.
func (a *Allocator) FlushSpans() int {
	n := 0
	for idx := range a.lineSpans {
		s := a.lineSpans[idx]
		if s.Cursor >= s.Limit {
			continue
		}
		a.lineSpans[idx] = Span{}
		n += a.ReturnSpan(s.Cursor, s.Limit)
	}
	// Drain the freed LIFO: waiting slots finally drop their alloc bits
	// and become line-free space (the sweep that follows must not count
	// them live, matching the free-list profile where Free cleared the
	// bit immediately).
	for idx := range a.lineFreed {
		for _, p := range a.lineFreed[idx] {
			bi := a.blockIndex(p)
			b := &a.blocks[bi]
			words := int(b.objWords)
			bitClear(b.allocBits, int(p-a.blockBase(bi))/(words*mem.WordBytes))
			b.liveSlots--
			b.lineLive = a.lineLiveOf(bi)
			a.requeueLineBlock(bi, b)
			n++
		}
		a.lineFreed[idx] = a.lineFreed[idx][:0]
	}
	return n
}

// lineSpanSlots reports the central spans' outstanding slots per index
// (integrity audits account them like mutator-cached slots).
func (a *Allocator) lineSpanSlots(fn func(p mem.Addr)) {
	for idx := range a.lineSpans {
		s := a.lineSpans[idx]
		for p := s.Cursor; p < s.Limit; p += mem.Addr(s.Words * mem.WordBytes) {
			fn(p)
		}
	}
	for idx := range a.lineFreed {
		for _, p := range a.lineFreed[idx] {
			fn(p)
		}
	}
}

// LineStats is the line-heap space accounting: the paper-style
// space-overhead view of bump allocation. WasteSlots counts free
// slots that overlap a live line — space no bump span can reach until
// the rest of the line dies; wholly-free lines are not waste (they
// are carvable). Sweep-pending blocks are skipped: their bitmaps
// still describe the previous cycle.
type LineStats struct {
	LineBlocks int    // small untyped blocks under line management
	TotalLines int    // lines across those blocks
	LiveLines  int    // lines overlapped by an allocated slot
	FreeLines  int    // wholly-free (carvable) lines
	WasteSlots int    // free slots stranded in live lines
	WasteBytes uint64 // the same in bytes
}

// LineStats computes the line-heap space accounting by walking the
// block table; empty (zero) when LineAlloc is off.
func (a *Allocator) LineStats() LineStats {
	var ls LineStats
	if !a.cfg.LineAlloc {
		return ls
	}
	for bi := range a.blocks {
		b := &a.blocks[bi]
		if !a.isLineBlock(b) || b.pendingSweep {
			continue
		}
		words := int(b.objWords)
		nslots := slotsPerBlock(words)
		first := a.firstSlot(words)
		live := bits.OnesCount16(b.lineLive)
		ls.LineBlocks++
		ls.TotalLines += LinesPerBlock
		ls.LiveLines += live
		ls.FreeLines += LinesPerBlock - live
		carvable := 0
		free := ^uint32(b.lineLive) & lineMaskAll
		for free != 0 {
			l0, l1 := nextFreeRun(free)
			free &^= runMask(l0, l1)
			sLo := (l0*LineWords + words - 1) / words
			if sLo < first {
				sLo = first
			}
			sHi := l1 * LineWords / words
			if sHi > nslots {
				sHi = nslots
			}
			if sHi > sLo {
				carvable += sHi - sLo
			}
		}
		if waste := nslots - first - int(b.liveSlots) - carvable; waste > 0 {
			ls.WasteSlots += waste
			ls.WasteBytes += uint64(waste * words * mem.WordBytes)
		}
	}
	return ls
}

// lineSweepSmall sweeps one line block in place: dead slots are freed
// with their whole body zeroed (the link word included — line slots
// carry no threading, so a future bump hand-out finds clean memory),
// marks are cleared when requested, and the live-line mask is
// recomputed from the surviving alloc bits. No free list is touched.
// Like sweepSmall it does no accounting; the SweepResult was computed
// from the mark summary at the barrier.
func (a *Allocator) lineSweepSmall(bi int, clearMarks bool) {
	b := &a.blocks[bi]
	words := int(b.objWords)
	nslots := slotsPerBlock(words)
	first := a.firstSlot(words)
	hw := a.blockWords(bi)
	for wi := range b.allocBits {
		valid := sweepWordMask(wi, first, nslots)
		if valid != 0 {
			slot0 := wi << 6
			am := b.allocBits[wi] & valid
			mm := b.markBits[wi] & am
			if dead := am &^ mm; dead != 0 {
				b.allocBits[wi] &^= dead
				for m := dead; m != 0; m &= m - 1 {
					slot := slot0 + bits.TrailingZeros64(m)
					for w := 0; w < words; w++ {
						hw[slot*words+w] = 0
					}
				}
			}
		}
		if clearMarks {
			b.markBits[wi] = 0
		}
	}
	b.liveSlots = b.markedCount
	if clearMarks {
		b.markedCount = 0
	}
	b.lineLive = a.lineLiveOf(bi)
}

// resetLineQueues empties every partial-block queue (and the queued
// flags) ahead of a sweep barrier's reclassification, mirroring the
// free-list rebuild.
func (a *Allocator) resetLineQueues() {
	if !a.cfg.LineAlloc {
		return
	}
	for idx := range a.linePartial {
		for _, bi := range a.linePartial[idx] {
			if a.blocks[bi].state == blockSmall {
				a.blocks[bi].bumpQueued = false
			}
		}
		a.linePartial[idx] = a.linePartial[idx][:0]
	}
}
