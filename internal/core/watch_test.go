package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/mark"
	"repro/internal/mem"
	"repro/internal/trace"
)

// watchConfigs are the collector configurations the retention watcher
// must compose with: the battery churns goroutines against each under
// -race via `make race`, and the differential pins bit-identical-off.
var watchConfigs = map[string]Config{
	"full":         {GCDivisor: -1},
	"conc":         {ConcurrentMark: true, GCDivisor: -1},
	"conc-workers": {ConcurrentMark: true, ConcMarkWorkers: 4, GCDivisor: -1},
	"line":         {LineAlloc: true, GCDivisor: -1},
	"tenant":       {GCDivisor: -1},
}

// growLeak prepends n cons cells to the list rooted at slot, via plain
// world stores (single-threaded deterministic workloads).
func growLeak(t *testing.T, w *World, data *mem.Segment, slot mem.Addr, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		prev, err := data.Load(slot)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := w.Allocate(2, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Store(cell+mem.WordBytes, prev); err != nil {
			t.Fatal(err)
		}
		if err := data.Store(slot, mem.Word(cell)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWatchLeakDetection pins the end-to-end alert surface on one
// world: a planted monotone leak alerts on its exact root-slot key
// with a why-live path, the alert is mirrored as an EvLeakAlert trace
// event and in the leak_* metrics, and the trends/suspects accessors
// see the same growth.
func TestWatchLeakDetection(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1, LazySweep: true})
	data := addData(t, w, "roots", 0x2000, 4096)
	r := w.EnableTracing(1024)
	alerts, err := w.StartRetentionWatch(WatchConfig{
		SampleEvery: 1, Window: 4, MinGrowthBytes: 512, Buffer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.RetentionWatching() {
		t.Fatal("RetentionWatching() = false after start")
	}
	if _, err := w.StartRetentionWatch(WatchConfig{}); err == nil {
		t.Fatal("second StartRetentionWatch did not error")
	}
	leakKey := RootSlotID{Kind: mark.RootSegment, Src: 0, Index: 0, Addr: 0x2000}.String()
	for round := 1; round <= 8; round++ {
		growLeak(t, w, data, 0x2000, 32) // 256 B per cycle
		w.Collect()
	}
	sus := w.RetentionSuspects(0)
	if len(sus) == 0 || sus[0].Key != leakKey {
		t.Fatalf("suspects = %+v, want %q first", sus, leakKey)
	}
	trends := w.StopRetentionWatch()
	if w.RetentionWatching() {
		t.Fatal("RetentionWatching() = true after stop")
	}
	var got []LeakAlert
	for a := range alerts {
		got = append(got, a)
	}
	if len(got) == 0 {
		t.Fatal("planted leak raised no alerts")
	}
	for _, a := range got {
		if a.Key != leakKey {
			t.Fatalf("alert on key %q, want %q", a.Key, leakKey)
		}
		if a.SampleWhyLivePath == "" || !strings.HasPrefix(a.SampleWhyLivePath, leakKey) {
			t.Fatalf("alert path %q does not start with the root slot", a.SampleWhyLivePath)
		}
	}
	if got[0].Cycle != 4 { // window 4, sampling every cycle
		t.Errorf("first alert at cycle %d, want 4", got[0].Cycle)
	}
	var leakEvents int
	for _, ev := range r.Events() {
		if ev.Kind == trace.EvLeakAlert {
			leakEvents++
		}
	}
	if leakEvents != len(got) {
		t.Errorf("%d EvLeakAlert events for %d alerts", leakEvents, len(got))
	}
	reg := w.Metrics()
	if n := reg.Counter("leak_alerts").Load(); n != uint64(len(got)) {
		t.Errorf("leak_alerts = %d, want %d", n, len(got))
	}
	if n := reg.Counter("leak_watched_cycles").Load(); n != 8 {
		t.Errorf("leak_watched_cycles = %d, want 8", n)
	}
	if n := reg.Counter("leak_alerted_bytes").Load(); n == 0 {
		t.Error("leak_alerted_bytes = 0")
	}
	if reg.Histogram("leak_snapshot_diff_ns_hist").Count() != 8 {
		t.Error("leak_snapshot_diff_ns_hist did not record every sample")
	}
	var found bool
	for _, tr := range trends {
		if tr.Key == leakKey {
			found = true
			if !tr.Alerted || tr.GrowthBytes <= 0 {
				t.Errorf("leak trend %+v, want alerted with positive growth", tr)
			}
		}
	}
	if !found {
		t.Fatalf("final trends %+v missing the leak key", trends)
	}
	if !strings.Contains(w.GCTraceSummary(), "leakwatch 8 samples") {
		t.Errorf("GCTraceSummary %q missing leakwatch segment", w.GCTraceSummary())
	}
}

// TestWatchSampleEvery pins the sampling divisor: only every Nth
// collection builds a snapshot, the rest pay the modulo and return.
func TestWatchSampleEvery(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "roots", 0x2000, 4096)
	if _, err := w.StartRetentionWatch(WatchConfig{SampleEvery: 3}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 9; round++ {
		growLeak(t, w, data, 0x2000, 8)
		w.Collect()
	}
	w.StopRetentionWatch()
	if n := w.Metrics().Counter("leak_watched_cycles").Load(); n != 3 {
		t.Fatalf("leak_watched_cycles = %d over 9 collections with SampleEvery 3, want 3", n)
	}
}

// TestWatchLabelAndTenantKeys pins the optional attribution
// dimensions: a Label callback adds label: keys and a budgeted
// tenant's objects show up under its tenant: key.
func TestWatchLabelAndTenantKeys(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "roots", 0x2000, 4096)
	ten := w.NewTenant(TenantConfig{Name: "acme", BudgetBytes: 1 << 20})
	m := ten.NewMutator()
	if _, err := w.StartRetentionWatch(WatchConfig{
		SampleEvery: 1,
		Label:       func(base mem.Addr) string { return fmt.Sprintf("size-bucket-%d", base%2) },
	}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if _, err := m.AllocateRooted(data, 0x2000, 4, false); err != nil {
			t.Fatal(err)
		}
		m.Collect()
	}
	trends := w.StopRetentionWatch()
	var labels, tenants int
	for _, tr := range trends {
		if strings.HasPrefix(tr.Key, "label:") {
			labels++
		}
		if tr.Key == "tenant:acme" {
			tenants++
			if tr.LastObjects == 0 {
				t.Errorf("tenant trend %+v has no objects", tr)
			}
		}
	}
	if labels == 0 {
		t.Errorf("no label: keys in trends %+v", trends)
	}
	if tenants != 1 {
		t.Errorf("tenant:acme appears %d times in trends %+v", tenants, trends)
	}
}

// TestWatchBitIdenticalOff is the zero-cost-when-off guarantee at the
// next level up from provenance: the same workload with a retention
// watcher running and without one yields identical allocation
// addresses and identical CollectionStats up to timing and the
// provenance fields the watcher turns on, in every collector mode.
func TestWatchBitIdenticalOff(t *testing.T) {
	for name, cfg := range watchConfigs {
		cfg := cfg
		tenanted := name == "tenant"
		t.Run(name, func(t *testing.T) {
			run := func(watched bool) ([]mem.Addr, []CollectionStats) {
				w := newWorld(t, cfg)
				data := addData(t, w, "data", 0x2000, 4096)
				var m *Mutator
				if tenanted {
					m = w.NewTenant(TenantConfig{Name: "t0", BudgetBytes: 1 << 20}).NewMutator()
				}
				if watched {
					if _, err := w.StartRetentionWatch(WatchConfig{SampleEvery: 1, Buffer: 256}); err != nil {
						t.Fatal(err)
					}
				}
				var addrs []mem.Addr
				var stats []CollectionStats
				for round := 0; round < 4; round++ {
					if tenanted {
						for i := 0; i < 48; i++ {
							a, err := m.AllocateRooted(data, 0x2000+mem.Addr(4*(i%16)), 2, false)
							if err != nil {
								t.Fatal(err)
							}
							addrs = append(addrs, a)
						}
					} else {
						addrs = append(addrs, churn(t, w, data, 0x2000, 48)...)
					}
					stats = append(stats, w.Collect())
				}
				if watched {
					w.StopRetentionWatch()
				}
				return addrs, stats
			}
			offAddrs, offStats := run(false)
			onAddrs, onStats := run(true)
			if len(offAddrs) != len(onAddrs) {
				t.Fatalf("allocation counts diverge: %d off, %d on", len(offAddrs), len(onAddrs))
			}
			for i := range offAddrs {
				if offAddrs[i] != onAddrs[i] {
					t.Fatalf("allocation %d diverges: %#x off, %#x on",
						i, uint32(offAddrs[i]), uint32(onAddrs[i]))
				}
			}
			for i := range offStats {
				a, b := offStats[i], onStats[i]
				if !b.Provenance {
					t.Fatalf("cycle %d did not record provenance while watched: %+v", i, b)
				}
				if a.Provenance || a.ProvenanceRecords != 0 {
					t.Fatalf("cycle %d recorded provenance while unwatched: %+v", i, a)
				}
				normalizeTimes(&a, &b)
				b.Provenance, b.ProvenanceRecords = false, 0
				if a != b {
					t.Fatalf("cycle %d stats diverge:\noff %+v\non  %+v", i, a, b)
				}
			}
		})
	}
}

// TestWatchBattery churns goroutines against a watched world in every
// collector mode while a planted leak grows: the watcher must survive
// concurrent mutators and background marking (the race detector checks
// via `make race`) and still flag the planted slot.
func TestWatchBattery(t *testing.T) {
	for name, cfg := range watchConfigs {
		cfg := cfg
		cfg.GCDivisor = 16 // let allocation pressure trigger cycles too
		tenanted := name == "tenant"
		t.Run(name, func(t *testing.T) {
			const nMut, slots = 4, 16
			w := newWorld(t, cfg)
			data := addData(t, w, "roots", 0x2000, (nMut*slots+1)*4)
			leakSlot := mem.Addr(0x2000 + nMut*slots*4)
			alerts, err := w.StartRetentionWatch(WatchConfig{
				SampleEvery: 1, Window: 4, MinGrowthBytes: 1024, Buffer: 1024,
			})
			if err != nil {
				t.Fatal(err)
			}
			var leakKeyAlerts int
			leakKey := RootSlotID{
				Kind: mark.RootSegment, Src: 0,
				Index: int32(nMut * slots), Addr: leakSlot,
			}.String()
			maint := w.NewMutator()
			muts := make([]*Mutator, nMut)
			for g := range muts {
				if tenanted {
					muts[g] = w.NewTenant(TenantConfig{
						Name: fmt.Sprintf("t%d", g), BudgetBytes: 1 << 20,
					}).NewMutator()
				} else {
					muts[g] = w.NewMutator()
				}
			}
			for round := 1; round <= 8; round++ {
				// The planted leak: 128 cells (1 KiB) per round through a
				// mutator handle, so the concurrent write barrier applies.
				for i := 0; i < 128; i++ {
					prev, err := maint.Load(leakSlot)
					if err != nil {
						t.Fatal(err)
					}
					cell, err := maint.AllocateRooted(data, leakSlot, 2, false)
					if err != nil {
						t.Fatal(err)
					}
					if err := maint.Store(cell+mem.WordBytes, prev); err != nil {
						t.Fatal(err)
					}
				}
				var wg sync.WaitGroup
				errs := make([]error, nMut)
				for g := 0; g < nMut; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						base := mem.Addr(0x2000 + g*slots*4)
						_, errs[g] = churnMutator(w, muts[g], data, base,
							uint32(round*nMut+g+1), 300)
					}(g)
				}
				wg.Wait()
				for g, err := range errs {
					if err != nil {
						t.Fatalf("round %d mutator %d: %v", round, g, err)
					}
				}
				w.Collect()
				for drained := false; !drained; {
					select {
					case a := <-alerts:
						if a.Key == leakKey {
							leakKeyAlerts++
						}
					default:
						drained = true
					}
				}
			}
			// Detection phase: with the churn goroutines quiesced, grow only
			// the leak for a window-plus-slack of rounds. Every sampled
			// interval from here on shows the leak key gaining, so the
			// confidence model must converge and alert regardless of how
			// many automatic collections the churn phase interleaved.
			for round := 0; round < 6; round++ {
				growLeak(t, w, data, leakSlot, 512) // 4 KiB per round
				w.Collect()
			}
			trends := w.StopRetentionWatch()
			for a := range alerts {
				if a.Key == leakKey {
					leakKeyAlerts++
				}
			}
			if leakKeyAlerts == 0 {
				t.Fatalf("planted leak never alerted (%d trend keys)", len(trends))
			}
			if err := w.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCollectZeroAllocsUnwatched closes the overhead budget: after a
// watcher has run and been stopped, steady-state collections are
// allocation-free again — the barrier is back to one nil compare.
func TestCollectZeroAllocsUnwatched(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	churn(t, w, data, 0x2000, 64)
	if _, err := w.StartRetentionWatch(WatchConfig{SampleEvery: 1}); err != nil {
		t.Fatal(err)
	}
	w.Collect()
	w.Collect()
	w.StopRetentionWatch()
	w.Collect()
	avg := testing.AllocsPerRun(10, func() { w.Collect() })
	if avg != 0 {
		t.Fatalf("unwatched Collect allocates %v times per cycle, want 0", avg)
	}
}

// TestTraceJSONHistograms pins the histogram export: a recorder
// attached with SetTracer carries the world's pause distributions in
// its JSON dump.
func TestTraceJSONHistograms(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	r := w.EnableTracing(256)
	churn(t, w, data, 0x2000, 64)
	w.Collect()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"histograms"`) {
		t.Fatalf("trace JSON has no histograms section:\n%s", out)
	}
	for _, name := range []string{"mark_pause_ns_hist", "sweep_pause_ns_hist"} {
		if !strings.Contains(out, name) {
			t.Errorf("trace JSON missing histogram %q", name)
		}
	}
}
