package mem

import (
	"testing"
	"testing/quick"
)

func TestPageArithmetic(t *testing.T) {
	tests := []struct {
		addr Addr
		page uint32
	}{
		{0, 0},
		{1, 0},
		{PageBytes - 1, 0},
		{PageBytes, 1},
		{PageBytes + 1, 1},
		{10 * PageBytes, 10},
		{0xFFFFFFFF, (1 << 32) / PageBytes * PageBytes / PageBytes}, // last page
	}
	for _, tt := range tests {
		if got := PageOf(tt.addr); tt.addr != 0xFFFFFFFF && got != tt.page {
			t.Errorf("PageOf(%#x) = %d, want %d", uint32(tt.addr), got, tt.page)
		}
	}
	if PageOf(0xFFFFFFFF) != (1<<32-1)/PageBytes {
		t.Errorf("PageOf(max) wrong")
	}
	if PageBase(3) != 3*PageBytes {
		t.Errorf("PageBase(3) = %#x", uint32(PageBase(3)))
	}
}

func TestPageCount(t *testing.T) {
	tests := []struct {
		bytes, pages int
	}{
		{0, 0}, {1, 1}, {PageBytes, 1}, {PageBytes + 1, 2}, {3 * PageBytes, 3},
	}
	for _, tt := range tests {
		if got := PageCount(tt.bytes); got != tt.pages {
			t.Errorf("PageCount(%d) = %d, want %d", tt.bytes, got, tt.pages)
		}
	}
}

func TestAlignment(t *testing.T) {
	if !WordAligned(8) || WordAligned(9) || WordAligned(10) || WordAligned(11) || !WordAligned(12) {
		t.Error("WordAligned wrong")
	}
	if AlignWordDown(11) != 8 || AlignWordUp(9) != 12 || AlignWordUp(12) != 12 {
		t.Error("word alignment rounding wrong")
	}
	if AlignPageDown(PageBytes+5) != PageBytes || AlignPageUp(PageBytes+5) != 2*PageBytes {
		t.Error("page alignment rounding wrong")
	}
	if AlignPageUp(PageBytes) != PageBytes {
		t.Error("AlignPageUp not idempotent on aligned input")
	}
}

func TestAlignmentProperties(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw)
		d, u := AlignWordDown(a), AlignWordUp(a)
		if !WordAligned(d) || d > a {
			return false
		}
		if uint64(raw) <= 1<<32-WordBytes {
			if !WordAligned(u) || u < a || u-d >= WordBytes*2 {
				return false
			}
		}
		pd := AlignPageDown(a)
		return pd <= a && pd%PageBytes == 0 && PageOf(a) == PageOf(pd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrailingZeros(t *testing.T) {
	tests := []struct {
		a Addr
		n int
	}{
		{0, 32}, {1, 0}, {2, 1}, {8, 3}, {0x90000, 16}, {0x80000000, 31},
	}
	for _, tt := range tests {
		if got := TrailingZeros(tt.a); got != tt.n {
			t.Errorf("TrailingZeros(%#x) = %d, want %d", uint32(tt.a), got, tt.n)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindHeap.String() != "heap" || KindData.String() != "data" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

func TestNewSegmentValidation(t *testing.T) {
	cases := []struct {
		name      string
		base      Addr
		committed int
		reserved  int
		ok        bool
	}{
		{"zero base", 0, 64, 64, false},
		{"unaligned base", 2, 64, 64, false},
		{"negative", 0x1000, -4, 64, false},
		{"not word multiple", 0x1000, 6, 64, false},
		{"committed over reserved", 0x1000, 128, 64, false},
		{"past end of space", 0xFFFFF000, 0, 2 * PageBytes, false},
		{"valid", 0x1000, 64, 128, true},
		{"valid zero committed", 0x1000, 0, 128, true},
		{"valid at end", 0xFFFFF000, PageBytes, PageBytes, true},
	}
	for _, tt := range cases {
		_, err := NewSegment("s", KindData, tt.base, tt.committed, tt.reserved)
		if (err == nil) != tt.ok {
			t.Errorf("%s: err=%v, want ok=%v", tt.name, err, tt.ok)
		}
	}
}

func TestSegmentGeometry(t *testing.T) {
	s, err := NewSegment("d", KindData, 0x2000, 2*PageBytes, 4*PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	if s.Base() != 0x2000 || s.Limit() != 0x2000+2*PageBytes || s.ReservedLimit() != 0x2000+4*PageBytes {
		t.Fatalf("geometry wrong: base=%#x limit=%#x rlimit=%#x",
			uint32(s.Base()), uint32(s.Limit()), uint32(s.ReservedLimit()))
	}
	if s.Size() != 2*PageBytes || s.ReservedSize() != 4*PageBytes {
		t.Fatal("sizes wrong")
	}
	if !s.Contains(0x2000) || !s.Contains(0x2000+2*PageBytes-4) || s.Contains(0x2000+2*PageBytes) {
		t.Fatal("Contains wrong")
	}
	if !s.InReserved(0x2000+3*PageBytes) || s.InReserved(0x2000+4*PageBytes) || s.InReserved(0x1FFC) {
		t.Fatal("InReserved wrong")
	}
}

func TestSegmentGrow(t *testing.T) {
	s, err := NewSegment("h", KindHeap, 0x4000, PageBytes, 3*PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Grow(PageBytes); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 2*PageBytes {
		t.Fatalf("size after grow = %d", s.Size())
	}
	// Newly committed memory reads as zero.
	w, err := s.Load(0x4000 + PageBytes)
	if err != nil || w != 0 {
		t.Fatalf("new memory = %v, %v", w, err)
	}
	if err := s.Grow(2 * PageBytes); err == nil {
		t.Fatal("grow past reservation should fail")
	}
	if err := s.Grow(-4); err == nil {
		t.Fatal("negative grow should fail")
	}
	if err := s.Grow(3); err == nil {
		t.Fatal("non-word grow should fail")
	}
}

func TestLoadStore(t *testing.T) {
	s, _ := NewSegment("d", KindData, 0x2000, 64, 64)
	if err := s.Store(0x2004, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	w, err := s.Load(0x2004)
	if err != nil || w != 0xDEADBEEF {
		t.Fatalf("Load = %#x, %v", uint32(w), err)
	}
	// Unaligned and out-of-range accesses fail.
	if _, err := s.Load(0x2005); err == nil {
		t.Error("unaligned load should fail")
	}
	if _, err := s.Load(0x2000 + 64); err == nil {
		t.Error("out-of-range load should fail")
	}
	if err := s.Store(0x1FFC, 1); err == nil {
		t.Error("store below base should fail")
	}
}

func TestByteAccessBigEndian(t *testing.T) {
	s, _ := NewSegment("d", KindData, 0x2000, 64, 64)
	if err := s.Store(0x2000, 0x11223344); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x11, 0x22, 0x33, 0x44}
	for i, wb := range want {
		b, err := s.LoadByte(0x2000 + Addr(i))
		if err != nil || b != wb {
			t.Fatalf("LoadByte(+%d) = %#x, %v; want %#x", i, b, err, wb)
		}
	}
	// StoreByte modifies only the addressed byte.
	if err := s.StoreByte(0x2001, 0xAB); err != nil {
		t.Fatal(err)
	}
	w, _ := s.Load(0x2000)
	if w != 0x11AB3344 {
		t.Fatalf("after StoreByte word = %#x", uint32(w))
	}
	if _, err := s.LoadByte(0x2000 + 64); err == nil {
		t.Error("out-of-range byte load should fail")
	}
}

func TestByteWordRoundTrip(t *testing.T) {
	s, _ := NewSegment("d", KindData, 0x2000, 256, 256)
	f := func(off uint8, b byte) bool {
		a := 0x2000 + Addr(off)
		if err := s.StoreByte(a, b); err != nil {
			return false
		}
		got, err := s.LoadByte(a)
		return err == nil && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFillAndWords(t *testing.T) {
	s, _ := NewSegment("d", KindData, 0x2000, 64, 64)
	s.Fill(0x5A5A5A5A)
	for i, w := range s.Words() {
		if w != 0x5A5A5A5A {
			t.Fatalf("word %d = %#x after Fill", i, uint32(w))
		}
	}
	if len(s.Words()) != 16 {
		t.Fatalf("Words len = %d", len(s.Words()))
	}
}

func TestRootFlag(t *testing.T) {
	d, _ := NewSegment("d", KindData, 0x2000, 64, 64)
	h, _ := NewSegment("h", KindHeap, 0x4000, 64, 64)
	if !d.Root() {
		t.Error("data segments should default to root")
	}
	if h.Root() {
		t.Error("heap segments should not default to root")
	}
	d.SetRoot(false)
	if d.Root() {
		t.Error("SetRoot(false) had no effect")
	}
}

func TestAddressSpaceMapFindUnmap(t *testing.T) {
	as := NewAddressSpace()
	mk := func(name string, base Addr, size int) *Segment {
		s, err := NewSegment(name, KindData, base, size, size)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Map out of order; Find must still work via sorted order.
	for _, s := range []*Segment{
		mk("c", 0x30000, PageBytes),
		mk("a", 0x10000, PageBytes),
		mk("b", 0x20000, PageBytes),
	} {
		if err := as.Map(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := as.Find(0x20004); got == nil || got.Name() != "b" {
		t.Fatalf("Find(0x20004) = %v", got)
	}
	if as.Find(0x10000+PageBytes) != nil {
		t.Error("Find just past a segment should be nil")
	}
	if as.Find(0xFFC) != nil {
		t.Error("Find before all segments should be nil")
	}
	if as.Segment("b") == nil || as.Segment("zz") != nil {
		t.Error("Segment lookup wrong")
	}
	segs := as.Segments()
	if len(segs) != 3 || segs[0].Name() != "a" || segs[2].Name() != "c" {
		t.Fatalf("segments not sorted: %v", segs)
	}
	if !as.Unmap("b") || as.Unmap("b") {
		t.Error("Unmap wrong")
	}
	if as.Find(0x20004) != nil {
		t.Error("unmapped segment still found")
	}
}

func TestAddressSpaceOverlapRejected(t *testing.T) {
	as := NewAddressSpace()
	a, _ := NewSegment("a", KindData, 0x10000, PageBytes, 4*PageBytes)
	if err := as.Map(a); err != nil {
		t.Fatal(err)
	}
	// Overlaps the *reserved* region of a, even though a has only
	// committed one page.
	b, _ := NewSegment("b", KindData, 0x10000+2*PageBytes, PageBytes, PageBytes)
	if err := as.Map(b); err == nil {
		t.Fatal("overlap with reserved region should be rejected")
	}
	c, _ := NewSegment("c", KindData, 0x10000+4*PageBytes, PageBytes, PageBytes)
	if err := as.Map(c); err != nil {
		t.Fatalf("adjacent segment rejected: %v", err)
	}
}

func TestAddressSpaceLoadStore(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.MapNew("d", KindData, 0x2000, 64, 64); err != nil {
		t.Fatal(err)
	}
	if err := as.Store(0x2008, 42); err != nil {
		t.Fatal(err)
	}
	w, err := as.Load(0x2008)
	if err != nil || w != 42 {
		t.Fatalf("Load = %v, %v", w, err)
	}
	if _, err := as.Load(0x9000); err == nil {
		t.Error("load from unmapped address should fail")
	}
	if err := as.Store(0x9000, 1); err == nil {
		t.Error("store to unmapped address should fail")
	}
}

func TestRoots(t *testing.T) {
	as := NewAddressSpace()
	d, _ := as.MapNew("data", KindData, 0x2000, 64, 64)
	as.MapNew("heap", KindHeap, 0x100000, PageBytes, PageBytes)
	s, _ := as.MapNew("stack", KindStack, 0x200000, PageBytes, PageBytes)
	s.SetRoot(true)
	roots := as.Roots()
	if len(roots) != 2 || roots[0] != d || roots[1] != s {
		t.Fatalf("Roots = %v", roots)
	}
}

func TestFindIsConsistentWithInReserved(t *testing.T) {
	as := NewAddressSpace()
	as.MapNew("a", KindData, 0x10000, PageBytes, 2*PageBytes)
	as.MapNew("b", KindHeap, 0x40000, PageBytes, 8*PageBytes)
	f := func(raw uint32) bool {
		a := Addr(raw)
		s := as.Find(a)
		for _, t := range as.Segments() {
			if t.InReserved(a) {
				return s == t
			}
		}
		return s == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestReadOnlySegment(t *testing.T) {
	s, _ := NewSegment("rodata", KindData, 0x2000, 64, 64)
	s.Store(0x2000, 0x1234)
	s.SetWritable(false)
	if s.Writable() {
		t.Fatal("SetWritable(false) had no effect")
	}
	if err := s.Store(0x2004, 1); err == nil {
		t.Fatal("store to read-only segment succeeded")
	}
	if err := s.StoreByte(0x2001, 1); err == nil {
		t.Fatal("byte store to read-only segment succeeded")
	}
	// Loads still work.
	if v, err := s.Load(0x2000); err != nil || v != 0x1234 {
		t.Fatalf("load from read-only segment: %v, %v", v, err)
	}
	s.SetWritable(true)
	if err := s.Store(0x2004, 1); err != nil {
		t.Fatal("store after unprotect failed")
	}
}
