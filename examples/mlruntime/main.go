// Mlruntime: an ML-compiler-style typed runtime on the conservative
// collector.
//
// The paper's introduction lists "portable implementations of ...
// ML [11, 10]" among the systems built on conservative collection, and
// notes that such systems "vary greatly in their degree of
// conservativism ... Some maintain complete information on the
// location of pointers in the heap, and only scan the stack
// conservatively." This example is that design point: an ML-ish
// runtime whose heap records are allocated with exact layout
// descriptors (the compiler knows every record type), while the
// runtime stack is still scanned conservatively — no stack maps, no
// safe points.
//
// The payoff measured below: integer-heavy records (hash values,
// lengths, file offsets) never masquerade as pointers, so a workload
// that would pin megabytes under fully conservative heap scanning pins
// nothing, while the stack remains as cheap to support as in any C
// program.
package main

import (
	"fmt"
	"log"

	"repro"
)

// Record layouts, as an ML compiler would emit them.
//
//	type entry = { ofs : int; key : string(atomic); next : entry }
//	  -> words: [ofs int][key ptr][next ptr]
//	type tree  = { left : tree; right : tree; size : int }
//	  -> words: [left ptr][right ptr][size int]
type runtime struct {
	w       *repro.World
	m       *repro.Machine
	entryTy repro.DescID
	treeTy  repro.DescID
	roots   *repro.Segment
}

func newRuntime(typed bool) *runtime {
	w, err := repro.NewWorld(repro.Config{
		InitialHeapBytes: 2 << 20,
		ReserveHeapBytes: 64 << 20,
		Blacklisting:     repro.BlacklistDense,
		// Interior pointers, as ML arrays passed by reference require —
		// the paper's unfavourable operating point.
		Pointer: repro.PointerInterior,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := repro.NewMachine(w, repro.MachineConfig{
		StackTop:   0x80000000,
		StackBytes: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	roots, err := w.Space.MapNew("ml.roots", repro.KindData, 0x2000, 4096, 4096)
	if err != nil {
		log.Fatal(err)
	}
	rt := &runtime{w: w, m: m, roots: roots}
	if typed {
		rt.entryTy, err = w.RegisterLayout([]bool{false, true, true})
		if err != nil {
			log.Fatal(err)
		}
		rt.treeTy, err = w.RegisterLayout([]bool{true, true, false})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rt.entryTy, rt.treeTy = -1, -1
	}
	return rt
}

func (rt *runtime) allocRecord(ty repro.DescID) repro.Addr {
	var p repro.Addr
	var err error
	if ty >= 0 {
		p, err = rt.w.AllocateTyped(ty)
	} else {
		p, err = rt.w.Allocate(3, false)
	}
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// allocString allocates an atomic byte payload (ML strings carry no
// pointers; both regimes know that).
func (rt *runtime) allocString(words int) repro.Addr {
	p, err := rt.w.Allocate(words, true)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// buildTable builds an index of n entries whose integer fields are
// byte offsets into a multi-megabyte log file — values in exactly the
// range where the heap lives, the integer data a fully conservative
// heap scan misreads as pointers.
func (rt *runtime) buildTable(n int, seed uint32) repro.Addr {
	var head repro.Addr
	h := seed
	for i := 0; i < n; i++ {
		e := rt.allocRecord(rt.entryTy)
		h = h*1664525 + 1013904223
		ofs := h % (8 << 20) // an offset into the 8 MB log
		rt.w.Store(e, repro.Word(ofs))
		rt.w.Store(e+4, repro.Word(rt.allocString(2)))
		rt.w.Store(e+8, repro.Word(head))
		head = e
		rt.roots.Store(0x2000, repro.Word(head))
	}
	return head
}

func main() {
	for _, typed := range []bool{false, true} {
		rt := newRuntime(typed)

		// Phase 1: transient working set — a large tree built and
		// dropped, exactly the garbage the table's hash fields might pin.
		err := rt.m.WithFrame(2, func(f *repro.Frame) error {
			var build func(depth int) repro.Addr
			build = func(depth int) repro.Addr {
				t := rt.allocRecord(rt.treeTy)
				if depth > 1 {
					rt.w.Store(t, repro.Word(build(depth-1)))
					rt.w.Store(t+4, repro.Word(build(depth-1)))
				}
				rt.w.Store(t+8, repro.Word(depth))
				return t
			}
			f.Store(0, repro.Word(build(15))) // 32767 nodes, rooted on stack
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}

		// Phase 2: the long-lived table, whose hash words cover the
		// address range where the dead tree still sits.
		rt.buildTable(30000, 0x9E3779B9)

		st := rt.w.Collect()
		mode := "conservative heap"
		if typed {
			mode = "typed heap      "
		}
		fmt.Printf("%s: %7d objects live (%5d KiB), %8d heap words scanned, %d collections\n",
			mode, st.Sweep.ObjectsLive, st.Sweep.BytesLive/1024,
			st.Mark.FieldsScanned, rt.w.Collections())
	}
	fmt.Println("\nThe typed runtime keeps exact pointer maps for heap records (as its")
	fmt.Println("compiler can) while the stack stays conservative (as its compiler prefers):")
	fmt.Println("the paper's middle \"degree of conservativism\", with none of the integer-")
	fmt.Println("as-pointer retention and a fraction of the marking work.")
}
