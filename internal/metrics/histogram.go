package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket i holds values whose
// bit length is i, i.e. [2^(i-1), 2^i), with bucket 0 holding zero.
// 40 buckets cover pause times up to ~9 minutes in nanoseconds;
// larger values clamp into the last bucket.
const histBuckets = 40

// Histogram is a fixed-size log₂-bucketed histogram for pause-time
// distributions: Record is a handful of lock-free atomic adds with no
// allocation, so the collector can feed it from inside a pause without
// perturbing the zero-alloc guarantee. A nil *Histogram no-ops, like
// the other metric kinds.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	if h == nil {
		return
	}
	b := bits.Len64(v)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Buckets returns a copy of the bucket counts: index i counts values
// in [2^(i-1), 2^i) (index 0: zeros; the last bucket also holds any
// clamped larger values).
func (h *Histogram) Buckets() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, histBuckets)
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketUpperBound returns bucket i's exclusive upper bound.
func BucketUpperBound(i int) uint64 {
	if i <= 0 {
		return 1
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return uint64(1) << uint(i)
}

// Quantile returns an upper bound for the q-quantile observation
// (0 <= q <= 1): the upper bound of the log₂ bucket holding it,
// tightened by the recorded maximum. Concurrent Records may skew a
// snapshot by the in-flight observations; for the post-hoc summaries
// this backs, that imprecision is irrelevant.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			ub := BucketUpperBound(i) - 1
			if m := h.Max(); ub > m {
				ub = m
			}
			return ub
		}
	}
	return h.Max()
}

// Histogram returns the histogram registered under name, creating it
// on first use. Histograms live in their own namespace and are not
// part of Snapshot (whose samples are scalar by design); enumerate
// them with HistogramNames.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if r.hists == nil {
		r.hists = map[string]*Histogram{}
	}
	h := &Histogram{}
	r.hists[name] = h
	r.horder = append(r.horder, name)
	return h
}

// HistogramBucket is one non-empty bucket in a histogram sample:
// the bucket's inclusive upper bound and its observation count.
type HistogramBucket struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramSample is one histogram's state at snapshot time: the
// scalar aggregates, the standard quantiles, and the non-empty log₂
// buckets. It is the JSON-exportable complement to Sample for the
// distribution metrics Snapshot deliberately omits.
type HistogramSample struct {
	Name    string            `json:"name"`
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Max     uint64            `json:"max"`
	P50     uint64            `json:"p50"`
	P95     uint64            `json:"p95"`
	P99     uint64            `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// sample snapshots one histogram under a name.
func (h *Histogram) sample(name string) HistogramSample {
	s := HistogramSample{
		Name:  name,
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   h.Quantile(0.5),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i, c := range h.Buckets() {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{
				UpperBound: BucketUpperBound(i) - 1, Count: c,
			})
		}
	}
	return s
}

// HistogramSnapshot returns every registered histogram's state in
// registration order, non-empty distributions only — the export the
// gcbench -trace JSON dump carries so pause percentiles survive
// outside the GCTraceSummary text.
func (r *Registry) HistogramSnapshot() []HistogramSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, len(r.horder))
	copy(names, r.horder)
	hists := make([]*Histogram, len(names))
	for i, n := range names {
		hists[i] = r.hists[n]
	}
	r.mu.Unlock()
	var out []HistogramSample
	for i, h := range hists {
		if h.Count() > 0 {
			out = append(out, h.sample(names[i]))
		}
	}
	return out
}

// HistogramNames returns the registered histogram names in
// registration order.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.horder))
	copy(out, r.horder)
	return out
}
