# CI entry points. `make ci` is what a pipeline should run; the
# individual targets exist for local iteration.

GO ?= go

.PHONY: ci fmt vet lint build test race bench bench-smoke markbench sweepbench mutbench allocbench retentionbench pausebench servebench leakbench soak tenantsoak leaksoak benchgate heapdump-smoke fuzz-smoke

ci: fmt vet lint build test race

# gofmt is a gate, not a fixer: fail listing the offending files.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Both tools are optional locally (the CI
# workflow installs them); skip with a note when absent so `make ci`
# stays runnable on a bare toolchain.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel mark phase must be clean under the race detector. The
# internal packages hold most of its tests (differential, fuzz seeds);
# the root package adds the bench drivers and trace plumbing.
race:
	$(GO) test -race . ./internal/...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

# One-iteration pass over every benchmark in the repo: catches bit-rot
# in benchmark code without waiting for real measurements. The tiny
# allocbench run smokes the free-list-vs-line-heap driver the same way.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x ./...
	$(GO) run ./cmd/gcbench -experiment allocbench -mutators 1,2 > /dev/null
	$(GO) run ./cmd/gcbench -experiment servebench -tenants 32 -requests 6 > /dev/null
	$(GO) run ./cmd/gcbench -experiment leakbench > /dev/null

# Regenerates BENCH_1.json (parallel mark scaling, machine-readable).
# Worker counts above GOMAXPROCS are measured but flagged
# "oversubscribed" and report no speedup: they exist to show the
# coordination overhead, not to claim scaling a 1-CPU box cannot show.
markbench:
	$(GO) run ./cmd/gcbench -experiment markbench -workers 1,2,4,8 -benchjson BENCH_1.json

# Regenerates BENCH_2.json (collection pauses, eager vs lazy sweeping,
# plus the parallel-mark measurement in the same artifact).
sweepbench:
	$(GO) run ./cmd/gcbench -experiment sweepbench -benchjson BENCH_2.json

# Regenerates BENCH_3.json (concurrent-mutator allocation throughput).
# Mutator counts above GOMAXPROCS are measured but flagged
# "oversubscribed": their timing is scheduler contention, so only the
# deterministic object counts are gated for those rows.
mutbench:
	$(GO) run ./cmd/gcbench -experiment mutbench -mutators 1,2,4,8 -benchjson BENCH_3.json

# Regenerates BENCH_4.json (retention attribution on the section-4 lazy
# stream with a planted false stack reference). Single-threaded and
# fully deterministic: every count column is gated exactly.
retentionbench:
	$(GO) run ./cmd/gcbench -experiment retention -benchjson BENCH_4.json

# Regenerates BENCH_5.json (free-list vs line-heap allocation profiles,
# single and 8-mutator). Object counts are exact invariants in both
# profiles; the line rows also carry the line-waste space accounting.
allocbench:
	$(GO) run ./cmd/gcbench -experiment allocbench -mutators 1,8 -benchjson BENCH_5.json

# Regenerates BENCH_6.json (stop-the-world vs concurrent marking pause
# percentiles under 8 mutators; three modes per width — stw, the pinned
# single-driver concurrent cycle, and detached concurrent-workers with
# the background sweeper). Object and live counts are exact invariants;
# pause percentiles, the p99 reduction, and the conc_phase mark
# throughput are advisory timing (rows record gomaxprocs/conc_workers
# and the oversubscribed flag so the gate knows when timing is
# meaningless — on a 1-CPU box the worker rows measure contention).
pausebench:
	$(GO) run ./cmd/gcbench -experiment pausebench -mutators 8 -benchjson BENCH_6.json

# Regenerates BENCH_7.json (multi-tenant serving under the three
# over-budget policies, 1000 concurrent tenants per row). Admissions,
# denials, evictions, reclamation, liveness and the fairness spread are
# exact per-tenant invariants gated bit-for-bit; allocation-latency and
# pause percentiles are advisory timing.
servebench:
	$(GO) run ./cmd/gcbench -experiment servebench -benchjson BENCH_7.json

# Regenerates BENCH_8.json (online leak detection: planted slow leak
# vs churn-only control under the retention watcher). Single-threaded
# and fully deterministic: detection counts, first-alert cycle,
# attributed growth and false-positive counts are gated bit-for-bit;
# only elapsed time is advisory.
leakbench:
	$(GO) run ./cmd/gcbench -experiment leakbench -benchjson BENCH_8.json

# Multi-mutator soak: many allocation/collection rounds against one
# generational + lazy-sweep world, with a full allocator integrity
# audit after every round. Not part of `make ci`; run it when touching
# the safepoint protocol or the allocation caches.
soak:
	$(GO) run ./cmd/gcbench -experiment soak -mutators 8 -soak-cycles 100

# Multi-tenant soak: wall-clock-bounded rounds of concurrent tenant
# sessions (collect-first churn plus one eviction per round) with a
# heap integrity audit and an exact attribution check for every tenant
# after every round. Not part of `make ci`; the nightly workflow runs
# it for five minutes.
TENANT_SOAK_SECONDS ?= 60
tenantsoak:
	$(GO) run ./cmd/gcbench -experiment tenantsoak -tenants 64 -soak-seconds $(TENANT_SOAK_SECONDS)

# Leak-watch soak: wall-clock-bounded rounds of concurrent churn
# against a concurrent-marking world with the retention watcher live
# and a planted leak growing; fails on zero leak alerts or any
# false-positive alert. Not part of `make ci`; the nightly workflow
# runs it for five minutes.
LEAK_SOAK_SECONDS ?= 60
leaksoak:
	$(GO) run ./cmd/gcbench -experiment leaksoak -mutators 4 -soak-seconds $(LEAK_SOAK_SECONDS)

# Benchmark regression gate: rerun each benchmark in-process and diff
# it against the checked-in baseline. Deterministic invariants (objects
# marked, objects/bytes freed, deferred blocks) must match exactly;
# timing may drift up to BENCHGATE_TOLERANCE x (generous because CI
# hardware differs from the baseline machine — the gate catches
# order-of-magnitude regressions and broken invariants, not jitter).
BENCHGATE_TOLERANCE ?= 2
benchgate:
	@set -e; for b in BENCH_*.json; do \
		echo "benchgate: $$b"; \
		$(GO) run ./cmd/benchgate -baseline $$b -tolerance $(BENCHGATE_TOLERANCE); \
	done

# Self-checking retention demo: plant a false stack reference retaining
# a lazy stream (paper, section 4) and assert that the retention report
# censors the declared slot, attributes the chain as spurious, and that
# the sole-retention ranking names the same slot unprompted.
heapdump-smoke:
	$(GO) run ./cmd/heapdump -plantfalse

# Short fuzzing pass over every fuzz target. Each -fuzz pattern must
# match exactly one target per package, hence one invocation apiece.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run XXX -fuzz '^FuzzAllocatorOps$$' -fuzztime $(FUZZTIME) ./internal/alloc
	$(GO) test -run XXX -fuzz '^FuzzConcurrentMark$$' -fuzztime $(FUZZTIME) ./internal/alloc
	$(GO) test -run XXX -fuzz '^FuzzMarkValue$$' -fuzztime $(FUZZTIME) ./internal/mark
	$(GO) test -run XXX -fuzz '^FuzzMarkWords$$' -fuzztime $(FUZZTIME) ./internal/mark
	$(GO) test -run XXX -fuzz '^FuzzConcurrentAlloc$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run XXX -fuzz '^FuzzLineAlloc$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run XXX -fuzz '^FuzzConcurrentMark$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run XXX -fuzz '^FuzzTenantBudget$$' -fuzztime $(FUZZTIME) ./internal/core
