package repro

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// FragmentationRow summarises one free-block policy's state after churn
// (E10).
type FragmentationRow struct {
	Policy           FreeBlockPolicy
	FreeSpans        int
	LargestFreeSpan  int // blocks
	MaxAllocatableKB int // largest single object placeable afterwards
}

// FragmentationOptions configures the churn.
type FragmentationOptions struct {
	HeapBytes int // default 16 MiB
	Rounds    int // default 8
	Seed      uint64
}

// Fragmentation operationalises the paper's concluding argument: "even
// a completely nonmoving conservative collector should gain a slight
// advantage over a malloc/free implementation, in that it is usually
// much less expensive to keep free lists sorted by address. This
// increases the probability that related objects are allocated
// together, and thus increases the probability of large chunks of
// adjacent space becoming available in the future, decreasing
// fragmentation."
//
// Both allocators run the same random allocate/free churn of block-
// sized objects; afterwards we compare the shape of the free store and
// the largest object each can still place.
func Fragmentation(opt FragmentationOptions) ([]FragmentationRow, *stats.Table, error) {
	if opt.HeapBytes == 0 {
		opt.HeapBytes = 16 << 20
	}
	if opt.Rounds == 0 {
		opt.Rounds = 8
	}

	run := func(policy FreeBlockPolicy) (*FragmentationRow, error) {
		space := mem.NewAddressSpace()
		a, err := alloc.New(space, alloc.Config{
			HeapBase:     0x400000,
			InitialBytes: opt.HeapBytes,
			ReserveBytes: opt.HeapBytes,
			FreeBlocks:   policy,
		})
		if err != nil {
			return nil, err
		}
		rng := simrand.New(opt.Seed)
		var live []mem.Addr
		for round := 0; round < opt.Rounds; round++ {
			// Allocate block-span objects of 1..4 blocks until ~70% full.
			for {
				blocks := 1 + rng.Intn(4)
				p, err := a.Alloc(blocks*mem.PageWords, false)
				if errors.Is(err, alloc.ErrNeedMemory) {
					break
				}
				if err != nil {
					return nil, err
				}
				live = append(live, p)
			}
			// Free a random 60%.
			rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
			keep := len(live) * 2 / 5
			for _, p := range live[keep:] {
				if err := a.Free(p); err != nil {
					return nil, err
				}
			}
			live = live[:keep]
		}
		// Probe the largest object still placeable.
		maxKB := 0
		for kb := 4; kb <= opt.HeapBytes/1024; kb *= 2 {
			p, err := a.Alloc(kb*1024/mem.WordBytes, false)
			if errors.Is(err, alloc.ErrNeedMemory) {
				break
			}
			if err != nil {
				return nil, err
			}
			maxKB = kb
			if err := a.Free(p); err != nil {
				return nil, err
			}
		}
		return &FragmentationRow{
			Policy:           policy,
			FreeSpans:        len(a.FreeSpans()),
			LargestFreeSpan:  a.LargestFreeSpan(),
			MaxAllocatableKB: maxKB,
		}, nil
	}

	var rows []FragmentationRow
	for _, policy := range []FreeBlockPolicy{AddressOrdered, LIFO} {
		r, err := run(policy)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, *r)
	}
	tab := stats.NewTable("Conclusions: free-block policy vs fragmentation after churn",
		"Policy", "Free spans", "Largest span (blocks)", "Max allocatable")
	for _, r := range rows {
		name := "address-ordered"
		if r.Policy == LIFO {
			name = "LIFO (malloc-like)"
		}
		tab.AddF(name, r.FreeSpans, r.LargestFreeSpan, fmt.Sprintf("%d KB", r.MaxAllocatableKB))
	}
	return rows, tab, nil
}
