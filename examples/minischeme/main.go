// Minischeme: a tiny Scheme interpreter whose entire runtime heap lives
// in the conservatively collected simulated world.
//
// The paper's motivating application is exactly this: "conservative
// garbage collection also makes it possible to easily compile other
// programming languages that require garbage collection into efficient
// C", citing Scheme->C, ML and Lisp systems. Here the interpreter plays
// the compiled program's role: cons cells, closures and environments
// are allocated from the simulated collected heap, the evaluator's
// temporaries live in simulated stack frames, and collections are
// forced to run mid-evaluation to show that conservative stack scanning
// keeps every intermediate value alive with no cooperation from the
// "compiler".
//
// Value representation (as a Scheme->C compiler would choose):
//
//	odd word          -> fixnum (n<<1 | 1)
//	0                 -> nil
//	2-word object     -> cons (car, cdr)
//	3-word object     -> closure (params, body, env)
//	1-word atomic     -> symbol (index into the Go-side symbol table)
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro"
)

// value is a tagged simulated-heap word.
type value = repro.Word

type interp struct {
	w         *repro.World
	m         *repro.Machine
	syms      []string
	intern    map[string]int
	globalEnv value
	envRoot   *repro.Segment // pins the global environment
}

func newInterp() *interp {
	w, err := repro.NewWorld(repro.Config{
		InitialHeapBytes: 64 * 1024,
		ReserveHeapBytes: 8 << 20,
		Blacklisting:     repro.BlacklistDense,
		GCDivisor:        2, // collect eagerly: stress mid-eval safety
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := repro.NewMachine(w, repro.MachineConfig{
		StackTop:   0x80000000,
		StackBytes: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	root, err := w.Space.MapNew("scheme.globals", repro.KindData, 0x2000, 4096, 4096)
	if err != nil {
		log.Fatal(err)
	}
	return &interp{w: w, m: m, intern: map[string]int{}, envRoot: root}
}

// Tagging helpers.

func fixnum(n int) value    { return value(uint32(n)<<1 | 1) }
func isFixnum(v value) bool { return v&1 == 1 }
func fixnumVal(v value) int { return int(int32(v) >> 1) }
func isNil(v value) bool    { return v == 0 }

func (in *interp) isCons(v value) bool {
	if v == 0 || v&1 == 1 {
		return false
	}
	base, ok := in.w.Heap.FindObject(repro.Addr(v), false)
	if !ok || base != repro.Addr(v) {
		return false
	}
	words, atomic := in.w.Heap.ObjectSpan(base)
	return words == 2 && !atomic
}

func (in *interp) isClosure(v value) bool {
	if v == 0 || v&1 == 1 {
		return false
	}
	words, atomic := in.w.Heap.ObjectSpan(repro.Addr(v))
	return words == 3 && !atomic
}

func (in *interp) isSymbol(v value) bool {
	if v == 0 || v&1 == 1 {
		return false
	}
	words, atomic := in.w.Heap.ObjectSpan(repro.Addr(v))
	return words == 1 && atomic
}

// Allocation. Every allocation may trigger a collection, so callers
// must have parked any unrooted temporaries in a frame first.

func (in *interp) cons(car, cdr value, f *repro.Frame, s0, s1 int) value {
	// Park the arguments: the allocation below may collect.
	f.Store(s0, car)
	f.Store(s1, cdr)
	cell, err := in.w.Allocate(2, false)
	if err != nil {
		log.Fatal(err)
	}
	in.w.Store(repro.Addr(cell), car)
	in.w.Store(repro.Addr(cell)+4, cdr)
	return value(cell)
}

func (in *interp) car(v value) value {
	w, _ := in.w.Load(repro.Addr(v))
	return w
}

func (in *interp) cdr(v value) value {
	w, _ := in.w.Load(repro.Addr(v) + 4)
	return w
}

func (in *interp) symbol(name string) value {
	idx, ok := in.intern[name]
	if !ok {
		idx = len(in.syms)
		in.syms = append(in.syms, name)
		in.intern[name] = idx
	}
	// Each mention allocates a fresh 1-word atomic heap object holding
	// the symbol's interned index; symbol equality compares indices
	// (via symbolName), not addresses. Atomic objects are never
	// scanned, so the index can never masquerade as a pointer.
	sym, err := in.w.Allocate(1, true)
	if err != nil {
		log.Fatal(err)
	}
	in.w.Store(repro.Addr(sym), value(idx))
	return value(sym)
}

func (in *interp) symbolName(v value) string {
	idx, _ := in.w.Load(repro.Addr(v))
	return in.syms[idx]
}

func (in *interp) closure(params, body, env value, f *repro.Frame) value {
	f.Store(0, params)
	f.Store(1, body)
	f.Store(2, env)
	c, err := in.w.Allocate(3, false)
	if err != nil {
		log.Fatal(err)
	}
	in.w.Store(repro.Addr(c), params)
	in.w.Store(repro.Addr(c)+4, body)
	in.w.Store(repro.Addr(c)+8, env)
	return value(c)
}

// Parsing: Go-side tokens into simulated-heap s-expressions.

func tokenize(src string) []string {
	src = strings.ReplaceAll(src, "(", " ( ")
	src = strings.ReplaceAll(src, ")", " ) ")
	return strings.Fields(src)
}

func (in *interp) parse(tokens []string, pos int) (value, int) {
	tok := tokens[pos]
	switch tok {
	case "(":
		pos++
		var items []value
		for tokens[pos] != ")" {
			var v value
			v, pos = in.parse(tokens, pos)
			items = append(items, v)
		}
		// Build the list back to front. Parser results are rooted via a
		// frame so mid-parse collections are safe.
		var list value
		err := in.m.WithFrame(2+len(items), func(f *repro.Frame) error {
			for i, v := range items {
				f.Store(2+i, v)
			}
			for i := len(items) - 1; i >= 0; i-- {
				list = in.cons(items[i], list, f, 0, 1)
				items[i] = list // keep the partial list visible
				f.Store(2+i, list)
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return list, pos + 1
	case ")":
		log.Fatal("unexpected )")
		return 0, pos
	default:
		if n, err := strconv.Atoi(tok); err == nil {
			return fixnum(n), pos + 1
		}
		return in.symbol(tok), pos + 1
	}
}

// Environments: assoc lists of (symbol . value) pairs, themselves in
// the collected heap.

func (in *interp) lookup(env value, name string) (value, bool) {
	for e := env; !isNil(e); e = in.cdr(e) {
		pair := in.car(e)
		if in.symbolName(in.car(pair)) == name {
			return in.cdr(pair), true
		}
	}
	return 0, false
}

func (in *interp) define(env value, name string, v value) value {
	var out value
	err := in.m.WithFrame(4, func(f *repro.Frame) error {
		f.Store(2, v)
		f.Store(3, env)
		sym := in.symbol(name)
		pair := in.cons(sym, v, f, 0, 1)
		out = in.cons(pair, env, f, 0, 1)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return out
}

// eval evaluates an expression. Temporaries are parked in a simulated
// frame at every step, mirroring what a Scheme->C compiler's generated
// code keeps in locals — which is all the conservative collector needs.
func (in *interp) eval(expr, env value) value {
	if isFixnum(expr) || isNil(expr) {
		return expr
	}
	if in.isSymbol(expr) {
		name := in.symbolName(expr)
		if v, ok := in.lookup(env, name); ok {
			return v
		}
		log.Fatalf("unbound symbol %q", name)
	}
	// A form: (op args...)
	op := in.car(expr)
	if in.isSymbol(op) {
		switch in.symbolName(op) {
		case "quote":
			return in.car(in.cdr(expr))
		case "if":
			test := in.eval(in.car(in.cdr(expr)), env)
			if !isNil(test) && test != fixnum(0) {
				return in.eval(in.car(in.cdr(in.cdr(expr))), env)
			}
			return in.eval(in.car(in.cdr(in.cdr(in.cdr(expr)))), env)
		case "lambda":
			var c value
			err := in.m.WithFrame(3, func(f *repro.Frame) error {
				c = in.closure(in.car(in.cdr(expr)), in.car(in.cdr(in.cdr(expr))), env, f)
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			return c
		}
	}
	// Application: evaluate operator and operands left to right,
	// parking each result in the frame.
	var result value
	err := in.m.WithFrame(18, func(f *repro.Frame) error {
		fn := in.eval(op, env)
		f.Store(2, fn)
		var args []value
		i := 3
		for a := in.cdr(expr); !isNil(a); a = in.cdr(a) {
			v := in.eval(in.car(a), env)
			f.Store(i, v)
			args = append(args, v)
			i++
		}
		result = in.apply(fn, args, f)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return result
}

func (in *interp) apply(fn value, args []value, f *repro.Frame) value {
	if in.isSymbol(fn) { // builtin
		name := in.symbolName(fn)
		switch name {
		case "+", "-", "*", "<", "=":
			a, b := fixnumVal(args[0]), fixnumVal(args[1])
			switch name {
			case "+":
				return fixnum(a + b)
			case "-":
				return fixnum(a - b)
			case "*":
				return fixnum(a * b)
			case "<":
				if a < b {
					return fixnum(1)
				}
				return 0
			case "=":
				if a == b {
					return fixnum(1)
				}
				return 0
			}
		case "cons":
			return in.cons(args[0], args[1], f, 0, 1)
		case "car":
			return in.car(args[0])
		case "cdr":
			return in.cdr(args[0])
		case "null?":
			if isNil(args[0]) {
				return fixnum(1)
			}
			return 0
		}
		log.Fatalf("not a function: %s", name)
	}
	if !in.isClosure(fn) {
		log.Fatalf("not applicable: %#x", uint32(fn))
	}
	params := in.car(value(fn))
	body, _ := in.w.Load(repro.Addr(fn) + 4)
	env, _ := in.w.Load(repro.Addr(fn) + 8)
	i := 0
	for p := params; !isNil(p); p = in.cdr(p) {
		env = in.define(env, in.symbolName(in.car(p)), args[i])
		i++
	}
	return in.eval(body, env)
}

func (in *interp) show(v value) string {
	switch {
	case isNil(v):
		return "()"
	case isFixnum(v):
		return strconv.Itoa(fixnumVal(v))
	case in.isSymbol(v):
		return in.symbolName(v)
	case in.isClosure(v):
		return "#<closure>"
	default:
		var parts []string
		for ; in.isCons(v); v = in.cdr(v) {
			parts = append(parts, in.show(in.car(v)))
		}
		if !isNil(v) {
			parts = append(parts, ".", in.show(v))
		}
		return "(" + strings.Join(parts, " ") + ")"
	}
}

// run parses and evaluates one expression, keeping the global
// environment rooted in static data across collections.
func (in *interp) run(src string) value {
	tokens := tokenize(src)
	var result value
	err := in.m.WithFrame(2, func(f *repro.Frame) error {
		expr, _ := in.parse(tokens, 0)
		f.Store(0, expr)
		result = in.eval(expr, in.globalEnv)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return result
}

func (in *interp) defineGlobal(name, src string) {
	v := in.run(src)
	in.globalEnv = in.define(in.globalEnv, name, v)
	in.envRoot.Store(0x2000, in.globalEnv) // pin in static data
}

func main() {
	in := newInterp()

	// Builtins are bound to their own symbols.
	for _, b := range []string{"+", "-", "*", "<", "=", "cons", "car", "cdr", "null?"} {
		in.globalEnv = in.define(in.globalEnv, b, in.symbol(b))
	}
	in.envRoot.Store(0x2000, in.globalEnv)

	fmt.Println("minischeme on a conservative collector")
	in.defineGlobal("range", `(lambda (n)
		((lambda (go) (go go n ()))
		 (lambda (go n acc)
		   (if (= n 0) acc (go go (- n 1) (cons n acc))))))`)
	in.defineGlobal("sum", `(lambda (l)
		((lambda (go) (go go l 0))
		 (lambda (go l acc)
		   (if (null? l) acc (go go (cdr l) (+ acc (car l)))))))`)
	in.defineGlobal("map2x", `(lambda (l)
		((lambda (go) (go go l))
		 (lambda (go l)
		   (if (null? l) () (cons (* 2 (car l)) (go go (cdr l)))))))`)

	progs := []string{
		"(sum (range 100))",
		"(sum (map2x (range 100)))",
		"(car (cdr (quote (1 2 3))))",
		"(sum (map2x (map2x (range 250))))",
	}
	for _, p := range progs {
		fmt.Printf("  %s = %s\n", p, in.show(in.run(p)))
	}

	st := in.w.Heap.Stats()
	fmt.Printf("\nheap after run: %d objects live (%d KiB), %d collections, %d objects allocated in total\n",
		st.ObjectsLive, st.BytesLive/1024, in.w.Collections(), st.ObjectsAllocated)
	fmt.Println("every collection ran mid-evaluation against the simulated stack —")
	fmt.Println("no pointer maps, no compiler cooperation, nothing lost.")
}
