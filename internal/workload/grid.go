package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mark"
	"repro/internal/mem"
	"repro/internal/simrand"
)

// GridKind selects the representation of the section-4 rectangular
// grid of vertices "linked both horizontally and vertically".
type GridKind int

// Grid representations.
const (
	// GridEmbedded embeds the right/down links in the vertices
	// themselves (figure 3): "a false reference can be expected to
	// result in the retention of a large fraction of the structure".
	GridEmbedded GridKind = iota
	// GridSeparate threads rows and columns through separate lisp-style
	// cons cells (figure 4): "at most a single row or column is
	// affected".
	GridSeparate
)

func (k GridKind) String() string {
	if k == GridSeparate {
		return "separate-cons"
	}
	return "embedded-links"
}

// Grid is a built rectangular grid, with bookkeeping for retention
// measurement.
type Grid struct {
	Kind       GridKind
	Rows, Cols int
	// Objects is every heap object belonging to the structure (vertices,
	// cons cells, headers).
	Objects []mem.Addr
	// RowHeaders and ColHeaders are the traversal entry points.
	RowHeaders []mem.Addr
	ColHeaders []mem.Addr
}

// vertexWordsEmbedded: right, down, payload.
const vertexWordsEmbedded = 3

// BuildGrid allocates a rows×cols grid in the given representation.
// Nothing keeps the structure alive except the returned header slices;
// callers wanting it collectable simply drop the Grid.
func BuildGrid(w *core.World, rows, cols int, kind GridKind) (*Grid, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("workload: bad grid %dx%d", rows, cols)
	}
	g := &Grid{Kind: kind, Rows: rows, Cols: cols}
	switch kind {
	case GridEmbedded:
		return g, buildEmbedded(w, g)
	case GridSeparate:
		return g, buildSeparate(w, g)
	}
	return nil, fmt.Errorf("workload: unknown grid kind %d", kind)
}

func buildEmbedded(w *core.World, g *Grid) error {
	vertices := make([][]mem.Addr, g.Rows)
	for r := range vertices {
		vertices[r] = make([]mem.Addr, g.Cols)
		for c := range vertices[r] {
			v, err := w.Allocate(vertexWordsEmbedded, false)
			if err != nil {
				return err
			}
			if err := w.Store(v+8, mem.Word(r*g.Cols+c)); err != nil { // payload
				return err
			}
			vertices[r][c] = v
			g.Objects = append(g.Objects, v)
		}
	}
	// Link right (word 0) and down (word 1).
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			v := vertices[r][c]
			if c+1 < g.Cols {
				if err := w.Store(v, mem.Word(vertices[r][c+1])); err != nil {
					return err
				}
			}
			if r+1 < g.Rows {
				if err := w.Store(v+4, mem.Word(vertices[r+1][c])); err != nil {
					return err
				}
			}
		}
	}
	for r := 0; r < g.Rows; r++ {
		g.RowHeaders = append(g.RowHeaders, vertices[r][0])
	}
	for c := 0; c < g.Cols; c++ {
		g.ColHeaders = append(g.ColHeaders, vertices[0][c])
	}
	return nil
}

func buildSeparate(w *core.World, g *Grid) error {
	// Vertices carry only their payload: no links.
	vertices := make([][]mem.Addr, g.Rows)
	for r := range vertices {
		vertices[r] = make([]mem.Addr, g.Cols)
		for c := range vertices[r] {
			v, err := w.Allocate(1, false)
			if err != nil {
				return err
			}
			if err := w.Store(v, mem.Word(r*g.Cols+c)); err != nil {
				return err
			}
			vertices[r][c] = v
			g.Objects = append(g.Objects, v)
		}
	}
	// Rows and columns are separate cons-cell lists over the vertices.
	buildList := func(vs []mem.Addr) (mem.Addr, error) {
		var head mem.Word
		for i := len(vs) - 1; i >= 0; i-- {
			cell, err := cons(w, mem.Word(vs[i]), head)
			if err != nil {
				return 0, err
			}
			head = mem.Word(cell)
			g.Objects = append(g.Objects, cell)
		}
		return mem.Addr(head), nil
	}
	for r := 0; r < g.Rows; r++ {
		h, err := buildList(vertices[r])
		if err != nil {
			return err
		}
		g.RowHeaders = append(g.RowHeaders, h)
	}
	for c := 0; c < g.Cols; c++ {
		col := make([]mem.Addr, g.Rows)
		for r := 0; r < g.Rows; r++ {
			col[r] = vertices[r][c]
		}
		h, err := buildList(col)
		if err != nil {
			return err
		}
		g.ColHeaders = append(g.ColHeaders, h)
	}
	return nil
}

// FalseRefTrial injects a single false reference to a uniformly random
// word inside a random object of the structure, marks from it alone,
// and reports how many of the structure's objects and bytes would be
// retained. Marks are cleared afterwards; the heap is not swept.
//
// This is the paper's section-4 thought experiment made operational:
// "the impact of an individual false reference is greatly dependent on
// the data structures involved".
func FalseRefTrial(w *core.World, objects []mem.Addr, rng *simrand.Rand) (objectsRetained, bytesRetained uint64) {
	target := objects[rng.Intn(len(objects))]
	p := target
	if w.Config().Pointer == mark.PointerInterior {
		// Under the interior policy any byte of the object is a hit;
		// vary the offset for realism.
		words, _ := w.Heap.ObjectSpan(target)
		p += mem.Addr(rng.Intn(words * mem.WordBytes))
	}
	w.Marker.Reset()
	w.Marker.MarkValue(mem.Word(p))
	w.Marker.Drain()
	objectsRetained, bytesRetained = w.Heap.CountMarked()
	w.Heap.ClearMarks()
	return objectsRetained, bytesRetained
}

// GridRetentionStats summarises FalseRefTrial over many trials.
type GridRetentionStats struct {
	Kind            GridKind
	Rows, Cols      int
	Trials          int
	TotalObjects    int
	MeanRetained    float64 // objects
	MaxRetained     uint64
	MeanFractionPct float64 // of the structure's object count
}

// MeasureGridRetention builds a grid, drops all intentional references,
// and runs trials single-false-reference experiments against it.
func MeasureGridRetention(w *core.World, rows, cols int, kind GridKind, trials int, seed uint64) (*GridRetentionStats, error) {
	g, err := BuildGrid(w, rows, cols, kind)
	if err != nil {
		return nil, err
	}
	rng := simrand.New(seed)
	var sum, max uint64
	for i := 0; i < trials; i++ {
		objs, _ := FalseRefTrial(w, g.Objects, rng)
		sum += objs
		if objs > max {
			max = objs
		}
	}
	n := len(g.Objects)
	mean := float64(sum) / float64(trials)
	return &GridRetentionStats{
		Kind:            kind,
		Rows:            rows,
		Cols:            cols,
		Trials:          trials,
		TotalObjects:    n,
		MeanRetained:    mean,
		MaxRetained:     max,
		MeanFractionPct: 100 * mean / float64(n),
	}, nil
}
