package repro

import (
	"fmt"
	"runtime"

	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SweepBenchOptions parameterises the lazy-vs-eager sweep pause
// measurement.
type SweepBenchOptions struct {
	Lists  int    // rooted lists kept live (default 48)
	Nodes  int    // nodes per list (default 1500)
	Cycles int    // churn/collect cycles per mode (default 20)
	Churn  int    // lists replaced per cycle (default 12)
	Seed   uint64 // churn schedule seed (default 1)
	// Trace, when non-nil, records collector events from every measured
	// world into the given ring buffer (cmd/gcbench -trace).
	Trace *TraceRecorder
}

// SweepBenchRow is one sweep strategy's aggregate over the churn run.
type SweepBenchRow struct {
	Mode            string  `json:"mode"` // "eager" | "lazy"
	Cycles          int     `json:"cycles"`
	AvgPauseNs      float64 `json:"avg_pause_ns"`
	MaxPauseNs      int64   `json:"max_pause_ns"`
	AvgSweepPauseNs float64 `json:"avg_sweep_pause_ns"`
	MaxSweepPauseNs int64   `json:"max_sweep_pause_ns"`
	// DeferredBlocks is the total number of blocks whose per-slot sweep
	// was pushed out of the pause (always 0 for eager).
	DeferredBlocks int `json:"deferred_blocks"`
	// ObjectsFreed/BytesFreed are the run totals; the lazy row must
	// equal the eager row exactly (checked) — lazy sweeping moves work,
	// it never changes what is reclaimed.
	ObjectsFreed uint64 `json:"objects_freed"`
	BytesFreed   uint64 `json:"bytes_freed"`
	// GoMaxProcs records the scheduler width the row ran under; the
	// regression gate treats timing columns as advisory when baseline
	// and candidate rows disagree here.
	GoMaxProcs int `json:"gomaxprocs"`
}

// SweepBenchResult is the full measurement with the environment it ran
// in. Unlike parallel-mark speedups, the sweep-pause reduction does not
// need multiple cores: it moves per-slot work out of the pause on any
// machine, so GOMAXPROCS=1 numbers are honest here.
type SweepBenchResult struct {
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	Lists      int             `json:"lists"`
	Nodes      int             `json:"nodes"`
	Rows       []SweepBenchRow `json:"rows"`
	// Mark carries the parallel-mark scaling measurement taken in the
	// same run, so one artifact covers both pause mechanisms.
	Mark *MarkBenchResult `json:"mark"`
}

// sweepBenchRun drives one world through the churn schedule and
// aggregates its collection pauses.
func sweepBenchRun(mode string, lazy bool, opts SweepBenchOptions) (SweepBenchRow, error) {
	row := SweepBenchRow{Mode: mode, Cycles: opts.Cycles, GoMaxProcs: runtime.GOMAXPROCS(0)}
	w, err := NewWorld(Config{
		InitialHeapBytes: 16 << 20, ReserveHeapBytes: 32 << 20,
		GCDivisor: -1, LazySweep: lazy,
	})
	if err != nil {
		return row, err
	}
	w.SetTracer(opts.Trace)
	data, err := w.Space.MapNew("data", KindData, 0x2000, 4096, 4096)
	if err != nil {
		return row, err
	}
	for i := 0; i < opts.Lists; i++ {
		head, err := workload.MakeList(w, opts.Nodes)
		if err != nil {
			return row, err
		}
		data.Store(0x2000+Addr(i*4), Word(head))
	}
	w.SetCollectionHook(func(st CollectionStats) {
		ns := st.Duration.Nanoseconds()
		row.AvgPauseNs += float64(ns)
		row.MaxPauseNs = max(row.MaxPauseNs, ns)
		row.AvgSweepPauseNs += float64(st.PauseSweepNs)
		row.MaxSweepPauseNs = max(row.MaxSweepPauseNs, st.PauseSweepNs)
		row.DeferredBlocks += st.SweepDeferredBlocks
		row.ObjectsFreed += st.Sweep.ObjectsFreed
		row.BytesFreed += st.Sweep.BytesFreed
	})
	defer w.SetCollectionHook(nil)
	w.Collect() // baseline cycle before any churn
	rng := simrand.New(opts.Seed)
	for cycle := 0; cycle < opts.Cycles; cycle++ {
		// Drop Churn random lists and grow replacements in their slots:
		// the mutator phase where lazy sweeping pays its deferred work.
		for i := 0; i < opts.Churn; i++ {
			slot := 0x2000 + Addr(rng.Intn(opts.Lists)*4)
			if err := data.Store(slot, 0); err != nil {
				return row, err
			}
			head, err := workload.MakeList(w, opts.Nodes)
			if err != nil {
				return row, err
			}
			if err := data.Store(slot, Word(head)); err != nil {
				return row, err
			}
		}
		w.Collect()
	}
	w.FinishSweep()
	n := float64(opts.Cycles + 1)
	row.AvgPauseNs /= n
	row.AvgSweepPauseNs /= n
	return row, nil
}

// SweepBench measures collection pauses of the eager and lazy sweep
// strategies over the identical list-churn schedule. Both runs allocate
// at the same addresses and reclaim the same objects (the differential
// tests assert this; the run totals are re-checked here), so any pause
// difference is purely where the sweep work happens: inside the pause
// as a per-slot heap walk, or deferred behind an O(blocks) summary
// scan and paid during allocation.
func SweepBench(opts SweepBenchOptions) (*SweepBenchResult, *stats.Table, error) {
	if opts.Lists == 0 {
		opts.Lists = 48
	}
	if opts.Nodes == 0 {
		opts.Nodes = 1500
	}
	if opts.Cycles == 0 {
		opts.Cycles = 20
	}
	if opts.Churn == 0 {
		opts.Churn = 12
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	res := &SweepBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Lists:      opts.Lists,
		Nodes:      opts.Nodes,
	}
	for _, m := range []struct {
		name string
		lazy bool
	}{{"eager", false}, {"lazy", true}} {
		row, err := sweepBenchRun(m.name, m.lazy, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("sweepbench %s: %w", m.name, err)
		}
		res.Rows = append(res.Rows, row)
	}
	eager, lazy := res.Rows[0], res.Rows[1]
	if eager.ObjectsFreed != lazy.ObjectsFreed || eager.BytesFreed != lazy.BytesFreed {
		return nil, nil, fmt.Errorf(
			"sweepbench: reclamation diverged: eager freed %d objs/%d bytes, lazy %d/%d",
			eager.ObjectsFreed, lazy.ObjectsFreed, eager.BytesFreed, lazy.BytesFreed)
	}
	tab := stats.NewTable(
		fmt.Sprintf("Sweep pause, eager vs lazy (%d lists x %d nodes, %d cycles, GOMAXPROCS=%d)",
			opts.Lists, opts.Nodes, opts.Cycles, res.GoMaxProcs),
		"mode", "avg pause ms", "max pause ms", "avg sweep ms", "max sweep ms",
		"deferred blocks", "objects freed")
	for _, r := range res.Rows {
		tab.AddF(r.Mode,
			fmt.Sprintf("%.3f", r.AvgPauseNs/1e6),
			fmt.Sprintf("%.3f", float64(r.MaxPauseNs)/1e6),
			fmt.Sprintf("%.3f", r.AvgSweepPauseNs/1e6),
			fmt.Sprintf("%.3f", float64(r.MaxSweepPauseNs)/1e6),
			r.DeferredBlocks, r.ObjectsFreed)
	}
	return res, tab, nil
}
